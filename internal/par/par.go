// Package par provides the small static work-partitioning helpers the
// pipeline uses for its "OpenMP threads within a task" parallelism. All
// scheduling is static: METAPREP's index tables (§3.1) exist precisely so
// that work can be split without dynamic scheduling or synchronization.
package par

import "sync"

// Run starts workers goroutines, calling fn(w) for w in [0, workers), and
// waits for all of them. With workers ≤ 1 it calls fn(0) inline.
func Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Block returns the half-open range [lo, hi) of items worker w of `workers`
// owns out of n items, distributing the remainder to the lowest-numbered
// workers so block sizes differ by at most one.
func Block(n, workers, w int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// For runs fn(i) for every i in [0, n), statically split across workers.
func For(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	Run(workers, func(w int) {
		lo, hi := Block(n, workers, w)
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
