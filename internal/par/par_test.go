package par

import (
	"sync/atomic"
	"testing"
)

func TestBlockCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for w := 0; w < workers; w++ {
				lo, hi := Block(n, workers, w)
				if lo != prev {
					t.Fatalf("n=%d workers=%d w=%d: lo=%d want %d", n, workers, w, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d w=%d: hi=%d < lo=%d", n, workers, w, hi, lo)
				}
				if hi-lo > n/workers+1 {
					t.Fatalf("n=%d workers=%d w=%d: block too big (%d)", n, workers, w, hi-lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d workers=%d: blocks cover %d", n, workers, prev)
			}
		}
	}
}

func TestForVisitsEachOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		n := 1000
		seen := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var n int32
	For(16, 3, func(i int) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Fatalf("visited %d items, want 3", n)
	}
}

func TestRunAllWorkers(t *testing.T) {
	var mask int64
	Run(8, func(w int) { atomic.OrInt64(&mask, 1<<w) })
	if mask != 0xFF {
		t.Fatalf("worker mask = %x, want ff", mask)
	}
}
