package diginorm

import (
	"math/rand"
	"sort"
	"testing"

	"metaprep/internal/kmer"
)

// compat_test.go pins the double-hashing change: deriving per-row sketch
// cells as h1 + i·h2 from one mix of the k-mer must make the same keep/drop
// decisions as the original scheme that rehashed the k-mer per row. The two
// schemes place counters differently, but on the fixture scale — a few
// thousand distinct k-mers against a 2^16×4 sketch — both are collision-
// free, so every estimate equals the true count and the decision streams
// must be identical. A divergence means the new hash family changed
// observable behavior, not just cell placement.

// refNormalizer reimplements the pre-hoist normalizer: per-row chained
// splitmix64 rehashing with modulo range reduction.
type refNormalizer struct {
	opts   Options
	sketch [][]uint8
	counts []int
}

func newRef(opts Options) *refNormalizer {
	n := &refNormalizer{opts: opts}
	n.sketch = make([][]uint8, opts.SketchDepth)
	for d := range n.sketch {
		n.sketch[d] = make([]uint8, opts.SketchWidth)
	}
	return n
}

func refMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

func (n *refNormalizer) estimate(km uint64) uint8 {
	est := uint8(255)
	h := km
	for d := range n.sketch {
		h = refMix(h + uint64(d))
		c := n.sketch[d][h%uint64(len(n.sketch[d]))]
		if c < est {
			est = c
		}
	}
	return est
}

func (n *refNormalizer) insert(km uint64) {
	est := n.estimate(km)
	if est == 255 {
		return
	}
	h := km
	for d := range n.sketch {
		h = refMix(h + uint64(d))
		c := &n.sketch[d][h%uint64(len(n.sketch[d]))]
		if *c == est {
			*c = est + 1
		}
	}
}

func (n *refNormalizer) Keep(seq []byte) bool {
	n.counts = n.counts[:0]
	kmer.ForEach64(seq, n.opts.K, func(_ int, m kmer.Kmer64) {
		n.counts = append(n.counts, int(n.estimate(uint64(m))))
	})
	if len(n.counts) == 0 {
		return true
	}
	sort.Ints(n.counts)
	if n.counts[len(n.counts)/2] >= n.opts.Target {
		return false
	}
	kmer.ForEach64(seq, n.opts.K, func(_ int, m kmer.Kmer64) {
		n.insert(uint64(m))
	})
	return true
}

func TestDoubleHashCompat(t *testing.T) {
	fixtures := map[string][][]byte{}
	// High-coverage fixture: 50× of one genome (TestHighCoverageIsFlattened).
	rng := rand.New(rand.NewSource(1))
	genome := randGenome(rng, 2000)
	var high [][]byte
	for i := 0; i < 1000; i++ {
		pos := rng.Intn(len(genome) - 100)
		high = append(high, genome[pos:pos+100])
	}
	fixtures["high-coverage"] = high
	// Exact-duplicate fixture (TestOrderMatters).
	read := randGenome(rand.New(rand.NewSource(3)), 100)
	var dup [][]byte
	for i := 0; i < 20; i++ {
		dup = append(dup, read)
	}
	fixtures["duplicates"] = dup

	for name, reads := range fixtures {
		cur, err := New(tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		ref := newRef(tinyOpts())
		for i, seq := range reads {
			got, want := cur.Keep(seq), ref.Keep(seq)
			if got != want {
				t.Fatalf("%s read %d: double-hashed sketch keeps=%v, per-row rehash keeps=%v",
					name, i, got, want)
			}
		}
	}
}
