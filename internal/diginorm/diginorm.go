// Package diginorm implements digital normalization (Brown et al., cited
// by the paper as Howe et al.'s companion preprocessing strategy [2]):
// a streaming filter that discards reads whose k-mers have already been
// seen at sufficient coverage, flattening coverage variation and shrinking
// datasets before assembly.
//
// The algorithm is khmer's: maintain an approximate k-mer counter (a
// count–min sketch of saturating 8-bit counters); for each read, estimate
// its coverage as the median count of its k-mers; if the estimate is below
// the target, keep the read and count its k-mers, otherwise drop it.
// Decisions depend on previous decisions, so normalization is inherently
// streaming and single-threaded — exactly why the paper's partitioning
// approach, which parallelizes, is attractive for large data.
//
// Diginorm composes with METAPREP: normalize first to cut volume, then
// partition. The package exists as the reproduction's extension of the
// paper's §2 background.
package diginorm

import (
	"fmt"
	"io"
	"os"
	"sort"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
	"metaprep/internal/sketch"
)

// Options configures normalization.
type Options struct {
	// K is the k-mer length (≤ 31; khmer's default is 20).
	K int
	// Target is the coverage threshold C: reads whose median k-mer count
	// has reached Target are dropped (khmer's classic C=20).
	Target int
	// SketchWidth is the number of counters per hash row; SketchDepth the
	// number of rows. Bigger sketches under-count less. Defaults: 1<<20 × 4.
	SketchWidth int
	SketchDepth int
}

// Defaults returns khmer-like settings: k=20, C=20, a 4 MiB sketch.
func Defaults() Options {
	return Options{K: 20, Target: 20, SketchWidth: 1 << 20, SketchDepth: 4}
}

// Validate checks option invariants.
func (o Options) Validate() error {
	if err := kmer.CheckK64(o.K); err != nil {
		return err
	}
	if o.Target < 1 {
		return fmt.Errorf("diginorm: target %d < 1", o.Target)
	}
	if o.SketchWidth < 1 || o.SketchDepth < 1 {
		return fmt.Errorf("diginorm: sketch %d×%d invalid", o.SketchWidth, o.SketchDepth)
	}
	return nil
}

// Stats reports a normalization run.
type Stats struct {
	// Kept and Dropped count reads (records).
	Kept, Dropped int64
	// KeptBases is the retained volume.
	KeptBases int64
}

// Normalizer is the streaming filter: a thin consumer of the shared
// count–min sketch in internal/sketch (which also carries the hash family —
// per-row cells come from double hashing one (h1, h2) pair, not from
// rehashing the k-mer per row). It is not safe for concurrent use.
type Normalizer struct {
	opts   Options
	cm     *sketch.CountMin
	counts []int // scratch for median computation
}

// New returns a Normalizer.
func New(opts Options) (*Normalizer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Normalizer{opts: opts, cm: sketch.NewCountMin(opts.SketchWidth, opts.SketchDepth)}, nil
}

// estimate returns the sketch's count for a k-mer (the minimum over rows).
func (n *Normalizer) estimate(km uint64) uint8 {
	h1, h2 := sketch.Hash(0, km)
	return n.cm.Estimate(h1, h2)
}

// insert increments a k-mer's counters (saturating, conservative update).
func (n *Normalizer) insert(km uint64) {
	h1, h2 := sketch.Hash(0, km)
	n.cm.Add(h1, h2)
}

// Keep decides whether seq passes normalization. If it does, the read's
// k-mers are counted so later duplicates are seen as covered. Reads with
// no valid k-mers (too short, all Ns) are kept — dropping them is the
// caller's policy decision, not coverage's.
func (n *Normalizer) Keep(seq []byte) bool {
	n.counts = n.counts[:0]
	kmer.ForEach64(seq, n.opts.K, func(_ int, m kmer.Kmer64) {
		n.counts = append(n.counts, int(n.estimate(uint64(m))))
	})
	if len(n.counts) == 0 {
		return true
	}
	sort.Ints(n.counts)
	if n.counts[len(n.counts)/2] >= n.opts.Target {
		return false
	}
	kmer.ForEach64(seq, n.opts.K, func(_ int, m kmer.Kmer64) {
		n.insert(uint64(m))
	})
	return true
}

// NormalizeSeqs filters a sequence set, returning the kept indices.
func NormalizeSeqs(seqs [][]byte, opts Options) ([]int, Stats, error) {
	n, err := New(opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var kept []int
	var stats Stats
	for i, seq := range seqs {
		if n.Keep(seq) {
			kept = append(kept, i)
			stats.Kept++
			stats.KeptBases += int64(len(seq))
		} else {
			stats.Dropped++
		}
	}
	return kept, stats, nil
}

// NormalizeFiles streams FASTQ files through the filter into outPath.
// Paired mode keeps or drops mates together (records 2i, 2i+1): the pair
// survives if either mate is below coverage, preserving pairing for the
// downstream pipeline.
func NormalizeFiles(paths []string, outPath string, paired bool, opts Options) (Stats, error) {
	n, err := New(opts)
	if err != nil {
		return Stats{}, err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return Stats{}, err
	}
	defer out.Close()
	w := fastq.NewWriter(out)
	var stats Stats

	emit := func(recs []fastq.Record) error {
		keep := false
		for i := range recs {
			if n.Keep(recs[i].Seq) {
				keep = true
			}
		}
		for i := range recs {
			if keep {
				if err := w.Write(recs[i]); err != nil {
					return err
				}
				stats.Kept++
				stats.KeptBases += int64(len(recs[i].Seq))
			} else {
				stats.Dropped++
			}
		}
		return nil
	}

	var pending []fastq.Record
	for _, path := range paths {
		f, err := fastq.Open(path)
		if err != nil {
			return stats, err
		}
		r := fastq.NewReader(f)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return stats, err
			}
			pending = append(pending, rec.Clone())
			if !paired || len(pending) == 2 {
				if err := emit(pending); err != nil {
					f.Close()
					return stats, err
				}
				pending = pending[:0]
			}
		}
		f.Close()
	}
	if len(pending) > 0 {
		if err := emit(pending); err != nil {
			return stats, err
		}
	}
	return stats, w.Flush()
}
