package diginorm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
)

func randGenome(rng *rand.Rand, n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tinyOpts() Options {
	return Options{K: 15, Target: 5, SketchWidth: 1 << 16, SketchDepth: 4}
}

func TestHighCoverageIsFlattened(t *testing.T) {
	// 50× coverage of one genome: normalization to C=5 must drop the vast
	// majority of reads while keeping roughly C× worth.
	rng := rand.New(rand.NewSource(1))
	genome := randGenome(rng, 2000)
	var reads [][]byte
	for i := 0; i < 1000; i++ {
		pos := rng.Intn(len(genome) - 100)
		reads = append(reads, genome[pos:pos+100])
	}
	kept, stats, err := NormalizeSeqs(reads, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept+stats.Dropped != 1000 {
		t.Fatalf("accounting: %+v", stats)
	}
	// 1000 reads × 100 bp over 2000 bp = 50×; target 5 should keep well
	// under a quarter of the reads but at least ~C× coverage worth.
	if len(kept) > 350 {
		t.Errorf("kept %d of 1000 reads at 50x coverage (target 5)", len(kept))
	}
	if len(kept) < 2000*5/100/2 {
		t.Errorf("kept only %d reads — below the coverage target", len(kept))
	}
	// The kept reads must still cover (nearly) all genome k-mers, the
	// property that makes diginorm assembly-safe.
	covered := map[uint64]bool{}
	for _, i := range kept {
		kmer.ForEach64(reads[i], 15, func(_ int, m kmer.Kmer64) { covered[uint64(m)] = true })
	}
	all := map[uint64]bool{}
	for _, r := range reads {
		kmer.ForEach64(r, 15, func(_ int, m kmer.Kmer64) { all[uint64(m)] = true })
	}
	if float64(len(covered)) < 0.95*float64(len(all)) {
		t.Errorf("kept reads cover %d of %d k-mers", len(covered), len(all))
	}
}

func TestLowCoverageIsKept(t *testing.T) {
	// 2× coverage: nothing reaches the C=5 threshold, everything stays.
	rng := rand.New(rand.NewSource(2))
	genome := randGenome(rng, 5000)
	var reads [][]byte
	for i := 0; i < 100; i++ {
		pos := rng.Intn(len(genome) - 100)
		reads = append(reads, genome[pos:pos+100])
	}
	kept, _, err := NormalizeSeqs(reads, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) < 95 {
		t.Errorf("kept %d of 100 low-coverage reads", len(kept))
	}
}

func TestOrderMatters(t *testing.T) {
	// The first occurrences of a region are kept, later duplicates dropped.
	rng := rand.New(rand.NewSource(3))
	read := randGenome(rng, 100)
	var reads [][]byte
	for i := 0; i < 20; i++ {
		reads = append(reads, read)
	}
	kept, _, err := NormalizeSeqs(reads, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) < 4 || len(kept) > 7 {
		t.Errorf("kept %d exact duplicates, want ≈ target 5", len(kept))
	}
	for i, k := range kept {
		if k != i {
			t.Errorf("kept indices %v are not the first occurrences", kept)
			break
		}
	}
}

func TestShortAndNReadsKept(t *testing.T) {
	reads := [][]byte{
		[]byte("ACGT"),                // shorter than k
		bytes.Repeat([]byte("N"), 50), // no valid k-mers
	}
	kept, _, err := NormalizeSeqs(reads, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("kept %d degenerate reads, want 2", len(kept))
	}
}

func TestValidate(t *testing.T) {
	bad := []Options{
		{K: 0, Target: 5, SketchWidth: 16, SketchDepth: 1},
		{K: 15, Target: 0, SketchWidth: 16, SketchDepth: 1},
		{K: 15, Target: 5, SketchWidth: 0, SketchDepth: 1},
		{K: 15, Target: 5, SketchWidth: 16, SketchDepth: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted %+v", i, o)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNormalizeFilesPaired(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	genome := randGenome(rng, 1000)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.fastq")
	f, _ := os.Create(in)
	w := fastq.NewWriter(f)
	qual := bytes.Repeat([]byte("I"), 80)
	// 100 pairs at high coverage.
	for i := 0; i < 100; i++ {
		pos := rng.Intn(len(genome) - 200)
		_ = w.Write(fastq.Record{ID: []byte("a/1"), Seq: genome[pos : pos+80], Qual: qual})
		_ = w.Write(fastq.Record{ID: []byte("a/2"), Seq: genome[pos+120 : pos+200], Qual: qual})
	}
	_ = w.Flush()
	f.Close()

	out := filepath.Join(dir, "out.fastq")
	stats, err := NormalizeFiles([]string{in}, out, true, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept%2 != 0 {
		t.Errorf("paired normalization kept %d records — a pair was split", stats.Kept)
	}
	if stats.Kept == 0 || stats.Dropped == 0 {
		t.Errorf("stats = %+v, want both kept and dropped", stats)
	}
	g, _ := os.Open(out)
	n, err := fastq.CountRecords(g)
	g.Close()
	if err != nil || n != stats.Kept {
		t.Errorf("output holds %d records, stats say %d (%v)", n, stats.Kept, err)
	}
}

func TestSketchSaturation(t *testing.T) {
	// Saturating counters must never wrap: hammer one k-mer far past 255.
	n, err := New(Options{K: 15, Target: 300, SketchWidth: 64, SketchDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq := randGenome(rand.New(rand.NewSource(5)), 15)
	for i := 0; i < 1000; i++ {
		n.Keep(seq)
	}
	km, _ := kmer.Encode64(seq)
	if got := n.estimate(uint64(kmer.Canonical64(km, 15))); got != 255 {
		t.Errorf("estimate after 1000 inserts = %d, want saturated 255", got)
	}
}

func BenchmarkNormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	genome := randGenome(rng, 10000)
	var reads [][]byte
	for i := 0; i < 2000; i++ {
		pos := rng.Intn(len(genome) - 100)
		reads = append(reads, genome[pos:pos+100])
	}
	opts := Defaults()
	b.SetBytes(int64(len(reads) * 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NormalizeSeqs(reads, opts); err != nil {
			b.Fatal(err)
		}
	}
}
