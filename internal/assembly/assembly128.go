package assembly

import (
	"sort"

	"metaprep/internal/kmer"
	"metaprep/internal/par"
)

// assembly128.go is the k ≤ 63 de Bruijn graph round, used when a k-list
// entry exceeds the 64-bit representation's 31-base limit. It mirrors
// assembleK exactly, over kmer.Kmer128 nodes, which lets the multi-k
// defaults follow MEGAHIT's real k-list spacing (…, 39, 59) on ~100 bp
// reads.

// assembleK128 runs one multi-k round at 31 < k ≤ 63.
func assembleK128(seqs, prevContigs [][]byte, k int, opts Options, final bool) ([][]byte, Stats, error) {
	// Phase 1: canonical k-mer counting.
	W := opts.Workers
	partial := make([]map[kmer.Kmer128]uint32, W)
	par.Run(W, func(w int) {
		m := make(map[kmer.Kmer128]uint32)
		lo, hi := par.Block(len(seqs), W, w)
		for _, seq := range seqs[lo:hi] {
			kmer.ForEach128(seq, k, func(_ int, km kmer.Kmer128) {
				m[km]++
			})
		}
		partial[w] = m
	})
	counts := partial[0]
	for _, m := range partial[1:] {
		for km, c := range m {
			counts[km] += c
		}
	}
	// Phase 2: solid set = frequent read k-mers + all prior-contig k-mers.
	solid := make(map[kmer.Kmer128]struct{}, len(counts))
	for km, c := range counts {
		if c >= opts.MinCount {
			solid[km] = struct{}{}
		}
	}
	counts = nil
	for _, c := range prevContigs {
		kmer.ForEach128(c, k, func(_ int, km kmer.Kmer128) {
			solid[km] = struct{}{}
		})
	}

	// Phase 3: deterministic unitig walking.
	order := make([]kmer.Kmer128, 0, len(solid))
	for km := range solid {
		order = append(order, km)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Less(order[j]) })

	g := graph128{k: k, solid: solid, visited: make(map[kmer.Kmer128]struct{}, len(solid))}
	var contigs [][]byte
	for _, km := range order {
		if _, ok := g.visited[km]; ok {
			continue
		}
		c := g.unitig(km)
		if !final && len(c) < 2*k {
			continue
		}
		contigs = append(contigs, c)
	}

	stats := ContigStats(contigs)
	stats.SolidKmers = len(solid)
	return contigs, stats, nil
}

// graph128 walks unitigs over the implicit canonical-Kmer128 dBG.
type graph128 struct {
	k       int
	solid   map[kmer.Kmer128]struct{}
	visited map[kmer.Kmer128]struct{}
}

func (g *graph128) succ(cur kmer.Kmer128, dst []kmer.Kmer128) []kmer.Kmer128 {
	dst = dst[:0]
	for c := uint8(0); c < 4; c++ {
		next := cur.ShiftLeft2().OrBase(c).And(g.k)
		if _, ok := g.solid[kmer.Canonical128(next, g.k)]; ok {
			dst = append(dst, next)
		}
	}
	return dst
}

func (g *graph128) pred(cur kmer.Kmer128, dst []kmer.Kmer128) []kmer.Kmer128 {
	dst = dst[:0]
	for b := uint8(0); b < 4; b++ {
		prev := cur.ShiftRight2().OrBaseAt(b, g.k)
		if _, ok := g.solid[kmer.Canonical128(prev, g.k)]; ok {
			dst = append(dst, prev)
		}
	}
	return dst
}

func (g *graph128) unitig(start kmer.Kmer128) []byte {
	k := g.k
	g.visited[start] = struct{}{}
	var buf, backBuf [4]kmer.Kmer128

	extend := func(cur kmer.Kmer128, forward bool) []byte {
		var out []byte
		for {
			var nexts []kmer.Kmer128
			if forward {
				nexts = g.succ(cur, buf[:0])
			} else {
				nexts = g.pred(cur, buf[:0])
			}
			if len(nexts) != 1 {
				return out
			}
			next := nexts[0]
			canon := kmer.Canonical128(next, k)
			if _, seen := g.visited[canon]; seen {
				return out
			}
			var backs []kmer.Kmer128
			if forward {
				backs = g.pred(next, backBuf[:0])
			} else {
				backs = g.succ(next, backBuf[:0])
			}
			if len(backs) != 1 {
				return out
			}
			g.visited[canon] = struct{}{}
			if forward {
				out = append(out, kmer.CharOf(uint8(next.Lo&3)))
			} else {
				out = append(out, kmer.CharOf(next.FirstBase(k)))
			}
			cur = next
		}
	}

	fwd := extend(start, true)
	bwd := extend(start, false)
	contig := make([]byte, 0, len(bwd)+k+len(fwd))
	for i := len(bwd) - 1; i >= 0; i-- {
		contig = append(contig, bwd[i])
	}
	contig = append(contig, kmer.String128(start, k)...)
	contig = append(contig, fwd...)
	return contig
}
