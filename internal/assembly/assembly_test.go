package assembly

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metaprep/internal/fastq"
)

func randGenome(rng *rand.Rand, n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func revComp(s []byte) []byte {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = comp[c]
	}
	return out
}

// tile produces error-free reads covering the genome with the given step.
func tile(genome []byte, readLen, step int) [][]byte {
	var reads [][]byte
	for pos := 0; pos+readLen <= len(genome); pos += step {
		reads = append(reads, genome[pos:pos+readLen])
	}
	reads = append(reads, genome[len(genome)-readLen:])
	return reads
}

func TestPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genome := randGenome(rng, 3000)
	reads := tile(genome, 100, 7)
	opts := Options{K: 21, MinCount: 1, Workers: 1}
	contigs, stats, err := Assemble(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs, want 1 (lengths: %v)", len(contigs), lengths(contigs))
	}
	got := contigs[0]
	if !bytes.Equal(got, genome) && !bytes.Equal(got, revComp(genome)) {
		t.Fatalf("contig (len %d) is not the genome (len %d)", len(got), len(genome))
	}
	if stats.MaxBp != len(genome) || stats.N50 != len(genome) || stats.Contigs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func lengths(contigs [][]byte) []int {
	var ls []int
	for _, c := range contigs {
		ls = append(ls, len(c))
	}
	return ls
}

func TestTwoGenomesTwoContigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g1 := randGenome(rng, 1500)
	g2 := randGenome(rng, 1000)
	reads := append(tile(g1, 80, 5), tile(g2, 80, 5)...)
	contigs, stats, err := Assemble(reads, Options{K: 21, MinCount: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 2 {
		t.Fatalf("got %d contigs, want 2 (%v)", len(contigs), lengths(contigs))
	}
	if stats.TotalBp != 2500 {
		t.Errorf("TotalBp = %d, want 2500", stats.TotalBp)
	}
	if stats.MaxBp != 1500 || stats.N50 != 1500 {
		t.Errorf("Max=%d N50=%d", stats.MaxBp, stats.N50)
	}
}

func TestMinCountDropsSequencingErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := randGenome(rng, 2000)
	reads := tile(genome, 100, 4)
	// Corrupt one base of some reads (simulating sequencing errors); each
	// error's k-mers are unique, so MinCount=2 removes them.
	for i := 0; i < len(reads); i += 6 {
		r := append([]byte(nil), reads[i]...)
		r[50] = "ACGT"[(int(r[50])+1)%4]
		reads[i] = r
	}
	withFilter, statsF, err := Assemble(reads, Options{K: 21, MinCount: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	noFilter, statsN, err := Assemble(reads, Options{K: 21, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if statsF.SolidKmers >= statsN.SolidKmers {
		t.Errorf("filter kept %d k-mers, unfiltered %d", statsF.SolidKmers, statsN.SolidKmers)
	}
	if len(withFilter) >= len(noFilter) {
		t.Errorf("filtered assembly has %d contigs, unfiltered %d (errors should fragment the unfiltered graph)",
			len(withFilter), len(noFilter))
	}
	if statsF.MaxBp < 1800 {
		t.Errorf("filtered assembly max contig %d, want near genome length", statsF.MaxBp)
	}
}

func TestRepeatSplitsContigs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Genome: A + R + B + R + C — the repeated R (longer than k) forces
	// branch points that end unitigs.
	r := randGenome(rng, 200)
	a, b, c := randGenome(rng, 800), randGenome(rng, 800), randGenome(rng, 800)
	genome := bytes.Join([][]byte{a, r, b, r, c}, nil)
	reads := tile(genome, 100, 3)
	contigs, _, err := Assemble(reads, Options{K: 21, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) < 3 {
		t.Errorf("repeat did not split assembly: %d contigs (%v)", len(contigs), lengths(contigs))
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genome := randGenome(rng, 1000)
	reads := tile(genome, 60, 9)
	a, _, err := Assemble(reads, Options{K: 15, MinCount: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Assemble(reads, Options{K: 15, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("contig counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("contig %d differs between runs", i)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	contigs, stats, err := Assemble(nil, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 0 || stats.TotalBp != 0 || stats.N50 != 0 {
		t.Errorf("empty assembly: %d contigs, stats %+v", len(contigs), stats)
	}
}

func TestReadsWithNs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	genome := randGenome(rng, 800)
	reads := tile(genome, 80, 6)
	for i := range reads {
		if i%4 == 0 {
			r := append([]byte(nil), reads[i]...)
			r[40] = 'N'
			reads[i] = r
		}
	}
	_, stats, err := Assemble(reads, Options{K: 21, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalBp == 0 {
		t.Error("assembly produced nothing")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{K: 0, MinCount: 1, Workers: 1},
		{K: 20, MinCount: 1, Workers: 1}, // even k
		{K: 65, MinCount: 1, Workers: 1},
		{K: 21, MinCount: 1, Workers: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Error(err)
	}
}

func TestContigStatsN50(t *testing.T) {
	mk := func(ls ...int) [][]byte {
		var cs [][]byte
		for _, l := range ls {
			cs = append(cs, bytes.Repeat([]byte("A"), l))
		}
		return cs
	}
	cases := []struct {
		lens []int
		n50  int
	}{
		{[]int{100}, 100},
		{[]int{50, 50}, 50},
		{[]int{90, 10}, 90},
		{[]int{40, 30, 20, 10}, 30}, // total 100; 40+30 = 70 ≥ 50
		{nil, 0},
	}
	for _, c := range cases {
		s := ContigStats(mk(c.lens...))
		if s.N50 != c.n50 {
			t.Errorf("N50(%v) = %d, want %d", c.lens, s.N50, c.n50)
		}
	}
}

func TestAssembleFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	genome := randGenome(rng, 600)
	reads := tile(genome, 70, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	f, _ := os.Create(path)
	w := fastq.NewWriter(f)
	for _, r := range reads {
		_ = w.Write(fastq.Record{ID: []byte("r"), Seq: r, Qual: bytes.Repeat([]byte("I"), len(r))})
	}
	_ = w.Flush()
	f.Close()
	contigs, stats, err := AssembleFiles([]string{path}, Options{K: 21, MinCount: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 || stats.MaxBp != 600 {
		t.Errorf("contigs=%d max=%d", len(contigs), stats.MaxBp)
	}
}

func BenchmarkAssemble(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	genome := randGenome(rng, 20000)
	reads := tile(genome, 100, 5)
	opts := Options{K: 21, MinCount: 1, Workers: 1}
	b.SetBytes(int64(len(reads) * 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Assemble(reads, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiKAssembly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	genome := randGenome(rng, 2500)
	reads := tile(genome, 100, 6)
	opts := Options{KList: []int{15, 21, 27}, MinCount: 1, Workers: 1}
	contigs, stats, err := Assemble(reads, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("multi-k: %d contigs (%v)", len(contigs), lengths(contigs))
	}
	got := contigs[0]
	if !bytes.Equal(got, genome) && !bytes.Equal(got, revComp(genome)) {
		t.Fatalf("multi-k contig (len %d) is not the genome (len %d)", len(got), len(genome))
	}
	if stats.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestMultiKImprovesOnLowCoverage(t *testing.T) {
	// Sparse coverage with errors: small k connects where large k cannot;
	// multi-k must do at least as well as the largest single k.
	rng := rand.New(rand.NewSource(9))
	genome := randGenome(rng, 4000)
	var reads [][]byte
	for i := 0; i < 260; i++ {
		pos := rng.Intn(len(genome) - 90)
		r := append([]byte(nil), genome[pos:pos+90]...)
		if rng.Intn(4) == 0 {
			r[rng.Intn(90)] = "ACGT"[rng.Intn(4)]
		}
		reads = append(reads, r)
	}
	single, sStats, err := Assemble(reads, Options{K: 27, MinCount: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, mStats, err := Assemble(reads, Options{KList: []int{15, 21, 27}, MinCount: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = single
	if mStats.N50 < sStats.N50 {
		t.Errorf("multi-k N50 %d worse than single-k %d", mStats.N50, sStats.N50)
	}
	if len(multi) == 0 {
		t.Fatal("multi-k produced nothing")
	}
}

func TestKListValidation(t *testing.T) {
	bad := []Options{
		{KList: []int{21, 21}, Workers: 1},
		{KList: []int{27, 21}, Workers: 1},
		{KList: []int{21, 28}, Workers: 1},
		{KList: []int{0}, Workers: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted %+v", i, o)
		}
	}
	if err := (Options{KList: []int{15, 21, 31}, Workers: 1}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestSingleK128Reconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	genome := randGenome(rng, 2000)
	reads := tile(genome, 100, 6)
	contigs, stats, err := Assemble(reads, Options{K: 55, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("k=55: %d contigs (%v)", len(contigs), lengths(contigs))
	}
	got := contigs[0]
	if !bytes.Equal(got, genome) && !bytes.Equal(got, revComp(genome)) {
		t.Fatalf("k=55 contig (len %d) is not the genome", len(got))
	}
	if stats.MaxBp != 2000 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMultiKAcrossRepresentations(t *testing.T) {
	// A k-list spanning the 64-bit/128-bit boundary must hand contigs
	// across rounds seamlessly.
	rng := rand.New(rand.NewSource(11))
	genome := randGenome(rng, 3000)
	reads := tile(genome, 100, 5)
	contigs, _, err := Assemble(reads, Options{KList: []int{21, 29, 39, 59}, MinCount: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("mixed-width multi-k: %d contigs (%v)", len(contigs), lengths(contigs))
	}
	if !bytes.Equal(contigs[0], genome) && !bytes.Equal(contigs[0], revComp(genome)) {
		t.Fatal("mixed-width multi-k did not reconstruct the genome")
	}
}

func TestLargeKResolvesRepeats(t *testing.T) {
	// A repeat of length 45 (> k=31, < k=59) fragments the 31-mer graph
	// but not the 59-mer graph — the reason MEGAHIT iterates to large k.
	rng := rand.New(rand.NewSource(12))
	r := randGenome(rng, 45)
	a, b, c := randGenome(rng, 700), randGenome(rng, 700), randGenome(rng, 700)
	genome := bytes.Join([][]byte{a, r, b, r, c}, nil)
	reads := tile(genome, 100, 3)
	small, _, err := Assemble(reads, Options{K: 31, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := Assemble(reads, Options{K: 59, MinCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(large) >= len(small) {
		t.Errorf("k=59 gave %d contigs, k=31 gave %d — large k should resolve the repeat",
			len(large), len(small))
	}
	if len(large) != 1 {
		t.Errorf("k=59: %d contigs (%v), want 1", len(large), lengths(large))
	}
}
