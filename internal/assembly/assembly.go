// Package assembly implements a de Bruijn graph unitig assembler used as
// the MEGAHIT stand-in for the preprocessing-impact experiments (Tables 8
// and 9). It builds the canonical-k-mer de Bruijn graph of the reads,
// drops weak k-mers (the same frequency filter every dBG assembler applies
// during graph construction), and emits the maximal non-branching paths
// (unitigs) as contigs, reporting the contig statistics the paper's
// Table 9 lists: contig count, total bases, longest contig and N50.
//
// It is deliberately a single-k, no-error-correction assembler: the
// experiments only need assembly wall time and output statistics to respond
// to input partitioning the way a real assembler does.
package assembly

import (
	"fmt"
	"io"
	"sort"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
	"metaprep/internal/par"
)

// Options configures the assembler.
type Options struct {
	// K is the de Bruijn k-mer length for single-k assembly. It must be
	// odd (odd k rules out reverse-complement palindromes, as in MEGAHIT's
	// k lists) and ≤ 63.
	K int
	// KList, when non-empty, selects MEGAHIT-style iterative multi-k
	// assembly: each round assembles at the next (ascending, odd) k with
	// the previous round's contigs added to the graph, so small k recovers
	// low-coverage regions and larger k resolves repeats (§2 of the
	// paper). K is ignored when KList is set.
	KList []int
	// MinCount drops read k-mers seen fewer times (2 removes singleton
	// errors); contig k-mers from earlier rounds are always kept.
	MinCount uint32
	// Workers parallelizes the counting phase.
	Workers int
}

// Defaults returns MEGAHIT-style multi-k assembly with MinCount=2 and one
// worker. MEGAHIT's default k list is 21, 29, 39, 59, 79, 99; with ~100 bp
// reads the useful range ends at 59, which the 128-bit k-mer path supports.
func Defaults() Options {
	return Options{KList: []int{21, 29, 39, 59}, MinCount: 2, Workers: 1}
}

// Validate checks option invariants.
func (o Options) Validate() error {
	ks := o.KList
	if len(ks) == 0 {
		ks = []int{o.K}
	}
	for i, k := range ks {
		if err := kmer.CheckK128(k); err != nil {
			return err
		}
		if k%2 == 0 {
			return fmt.Errorf("assembly: k must be odd, got %d", k)
		}
		if i > 0 && k <= ks[i-1] {
			return fmt.Errorf("assembly: k list must be strictly ascending, got %v", ks)
		}
	}
	if o.Workers < 1 {
		return fmt.Errorf("assembly: workers %d < 1", o.Workers)
	}
	return nil
}

// Stats summarizes an assembly, matching Table 9's columns.
type Stats struct {
	// Contigs is the number of contigs emitted.
	Contigs int
	// TotalBp is the summed contig length.
	TotalBp int64
	// MaxBp is the longest contig's length.
	MaxBp int
	// N50 is the standard N50 statistic: the largest length L such that
	// contigs of length ≥ L cover at least half of TotalBp.
	N50 int
	// SolidKmers is the number of distinct k-mers that survived MinCount.
	SolidKmers int
	// Elapsed is the assembly wall time (the Table 8 quantity).
	Elapsed time.Duration
}

// Assemble builds contigs from read sequences: single-k when opts.KList is
// empty, MEGAHIT-style iterative multi-k otherwise.
func Assemble(seqs [][]byte, opts Options) ([][]byte, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	ks := opts.KList
	if len(ks) == 0 {
		ks = []int{opts.K}
	}
	var contigs [][]byte
	var stats Stats
	for round, k := range ks {
		final := round == len(ks)-1
		var err error
		if k <= kmer.MaxK64 {
			contigs, stats, err = assembleK(seqs, contigs, k, opts, final)
		} else {
			contigs, stats, err = assembleK128(seqs, contigs, k, opts, final)
		}
		if err != nil {
			return nil, Stats{}, err
		}
	}
	stats.Elapsed = time.Since(start)
	return contigs, stats, nil
}

// assembleK runs one round: the de Bruijn graph of the reads at k, with the
// previous round's contigs injected as always-solid sequence. Intermediate
// rounds drop short tip contigs (they re-form from reads at the next k);
// the final round keeps everything.
func assembleK(seqs, prevContigs [][]byte, k int, opts Options, final bool) ([][]byte, Stats, error) {
	// Phase 1: canonical k-mer counting (per-worker maps, merged).
	W := opts.Workers
	partial := make([]map[uint64]uint32, W)
	par.Run(W, func(w int) {
		m := make(map[uint64]uint32)
		lo, hi := par.Block(len(seqs), W, w)
		for _, seq := range seqs[lo:hi] {
			kmer.ForEach64(seq, k, func(_ int, km kmer.Kmer64) {
				m[uint64(km)]++
			})
		}
		partial[w] = m
	})
	counts := partial[0]
	for _, m := range partial[1:] {
		for km, c := range m {
			counts[km] += c
		}
	}
	// Phase 2: solid k-mer set — frequent read k-mers plus every k-mer of
	// the previous round's contigs.
	solid := make(map[uint64]struct{}, len(counts))
	for km, c := range counts {
		if c >= opts.MinCount {
			solid[km] = struct{}{}
		}
	}
	counts = nil
	for _, c := range prevContigs {
		kmer.ForEach64(c, k, func(_ int, km kmer.Kmer64) {
			solid[uint64(km)] = struct{}{}
		})
	}

	// Phase 3: unitig walking. Deterministic start order (sorted solid
	// k-mers) so output is reproducible.
	order := make([]uint64, 0, len(solid))
	for km := range solid {
		order = append(order, km)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	g := graph{k: k, solid: solid, visited: make(map[uint64]struct{}, len(solid))}
	var contigs [][]byte
	for _, km := range order {
		if _, ok := g.visited[km]; ok {
			continue
		}
		c := g.unitig(kmer.Kmer64(km))
		if !final && len(c) < 2*k {
			continue // tip removal between rounds, as in MEGAHIT's cleaning
		}
		contigs = append(contigs, c)
	}

	stats := ContigStats(contigs)
	stats.SolidKmers = len(solid)
	return contigs, stats, nil
}

// AssembleFiles assembles the reads of FASTQ files.
func AssembleFiles(paths []string, opts Options) ([][]byte, Stats, error) {
	var seqs [][]byte
	for _, path := range paths {
		f, err := fastq.Open(path)
		if err != nil {
			return nil, Stats{}, err
		}
		r := fastq.NewReader(f)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, Stats{}, err
			}
			seqs = append(seqs, append([]byte(nil), rec.Seq...))
		}
		f.Close()
	}
	return Assemble(seqs, opts)
}

// graph walks unitigs over the implicit canonical-k-mer de Bruijn graph.
type graph struct {
	k       int
	solid   map[uint64]struct{}
	visited map[uint64]struct{}
}

// succ returns the oriented successors of oriented k-mer cur that are solid:
// for each base c, the k-mer cur[1:]+c. It reports their oriented values.
func (g *graph) succ(cur kmer.Kmer64, dst []kmer.Kmer64) []kmer.Kmer64 {
	mask := kmer.Mask64(g.k)
	dst = dst[:0]
	for c := uint64(0); c < 4; c++ {
		next := kmer.Kmer64((uint64(cur)<<2 | c) & mask)
		if _, ok := g.solid[uint64(kmer.Canonical64(next, g.k))]; ok {
			dst = append(dst, next)
		}
	}
	return dst
}

// pred returns the oriented predecessors of cur: for each base b, b+cur[:k-1].
func (g *graph) pred(cur kmer.Kmer64, dst []kmer.Kmer64) []kmer.Kmer64 {
	dst = dst[:0]
	shift := 2 * uint(g.k-1)
	for b := uint64(0); b < 4; b++ {
		prev := kmer.Kmer64(b<<shift | uint64(cur)>>2)
		if _, ok := g.solid[uint64(kmer.Canonical64(prev, g.k))]; ok {
			dst = append(dst, prev)
		}
	}
	return dst
}

// unitig emits the maximal non-branching path through start (oriented
// arbitrarily as its canonical form), marking every node on it visited.
func (g *graph) unitig(start kmer.Kmer64) []byte {
	k := g.k
	g.visited[uint64(start)] = struct{}{}

	var fwdBuf, bwdBuf [4]kmer.Kmer64

	// extend walks from cur while the path is non-branching in both
	// directions, appending one base per step, and returns the appended
	// bases.
	extend := func(cur kmer.Kmer64, forward bool) []byte {
		var out []byte
		for {
			var nexts []kmer.Kmer64
			if forward {
				nexts = g.succ(cur, fwdBuf[:0])
			} else {
				nexts = g.pred(cur, fwdBuf[:0])
			}
			if len(nexts) != 1 {
				return out
			}
			next := nexts[0]
			canon := uint64(kmer.Canonical64(next, k))
			if _, seen := g.visited[canon]; seen {
				return out // loop or already claimed by another unitig
			}
			// The step is only safe if next's unique extension back toward
			// us is cur (no branch converging into next).
			var backs []kmer.Kmer64
			if forward {
				backs = g.pred(next, bwdBuf[:0])
			} else {
				backs = g.succ(next, bwdBuf[:0])
			}
			if len(backs) != 1 {
				return out
			}
			g.visited[canon] = struct{}{}
			if forward {
				out = append(out, kmer.CharOf(uint8(uint64(next)&3)))
			} else {
				out = append(out, kmer.CharOf(uint8(uint64(next)>>(2*uint(k-1))&3)))
			}
			cur = next
		}
	}

	fwd := extend(start, true)
	bwd := extend(start, false)

	// Contig = reverse(bwd) + start + fwd.
	contig := make([]byte, 0, len(bwd)+k+len(fwd))
	for i := len(bwd) - 1; i >= 0; i-- {
		contig = append(contig, bwd[i])
	}
	contig = append(contig, kmer.String64(start, k)...)
	contig = append(contig, fwd...)
	return contig
}

// ContigStats computes Table 9's statistics for a contig set.
func ContigStats(contigs [][]byte) Stats {
	s := Stats{Contigs: len(contigs)}
	lens := make([]int, len(contigs))
	for i, c := range contigs {
		lens[i] = len(c)
		s.TotalBp += int64(len(c))
		if len(c) > s.MaxBp {
			s.MaxBp = len(c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	var cum int64
	for _, l := range lens {
		cum += int64(l)
		if cum*2 >= s.TotalBp {
			s.N50 = l
			break
		}
	}
	return s
}
