package mpirt

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestISendBeyondChannelCapacity posts far more nonblocking sends than the
// per-pair channel buffer holds before the receiver drains any, checking
// ISend never blocks the caller and per-pair FIFO order is preserved.
func TestISendBeyondChannelCapacity(t *testing.T) {
	const n = 100 // channel cap is 8
	w := NewWorld(2, nil)
	err := w.Run(func(task *Task) error {
		switch task.Rank() {
		case 0:
			reqs := make([]*Request, 0, n)
			for i := 0; i < n; i++ {
				reqs = append(reqs, task.ISend(1, 7, i, 4))
			}
			task.WaitAll(reqs)
		case 1:
			// Receive with the blocking primitive: interleaving blocking
			// and request-based calls on the same pair must stay FIFO.
			for i := 0; i < n; i++ {
				got := task.Recv(0, 7).(int)
				if got != i {
					t.Errorf("message %d arrived out of order: got %d", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIRecvMatchesISend pairs the two nonblocking primitives and checks
// payloads, tags, and the self-send path.
func TestIRecvMatchesISend(t *testing.T) {
	w := NewWorld(3, nil)
	err := w.Run(func(task *Task) error {
		p := task.Size()
		for i := 0; i < p; i++ {
			dst := (task.Rank() + i) % p
			src := (task.Rank() - i + p) % p
			sr := task.ISend(dst, 40+i, task.Rank()*100+dst, 8)
			rr := task.IRecv(src, 40+i)
			got := task.Wait(rr).(int)
			if want := src*100 + task.Rank(); got != want {
				t.Errorf("rank %d stage %d: payload = %d, want %d", task.Rank(), i, got, want)
			}
			task.Wait(sr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitChargesCommTimeAtCompletion checks the NetworkModel charge lands
// on the communication clock at Wait, not at the ISend call, and that
// double-waiting a request charges exactly once.
func TestWaitChargesCommTimeAtCompletion(t *testing.T) {
	model := &NetworkModel{Latency: time.Millisecond, BandwidthBytesPerSec: 1e6}
	w := NewWorld(2, model)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			r := task.ISend(1, 3, "x", 2000) // 1ms + 2ms serialization
			if d := task.TakeCommTime(); d != 0 {
				t.Errorf("commTime charged at ISend: %v, want 0", d)
			}
			task.Wait(r)
			want := model.Cost(2000)
			if d := task.TakeCommTime(); d != want {
				t.Errorf("commTime after Wait = %v, want %v", d, want)
			}
			task.Wait(r) // idempotent
			if d := task.TakeCommTime(); d != 0 {
				t.Errorf("double Wait charged again: %v", d)
			}
			if task.BytesSent() != 2000 {
				t.Errorf("BytesSent = %d, want 2000", task.BytesSent())
			}
			// Self-sends are free.
			sr := task.ISend(0, 4, "y", 500)
			task.Wait(task.IRecv(0, 4))
			task.Wait(sr)
			if d := task.TakeCommTime(); d != 0 {
				t.Errorf("self-send charged commTime %v", d)
			}
		} else {
			task.Recv(0, 3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCancelWhileInflight cancels the world while rank 0 has nonblocking
// sends queued behind a full channel (receiver never drains) and a Wait
// blocked on one of them. Every rank must wake and RunContext must report
// the cancellation; run under -race this exercises the flusher abort path.
func TestCancelWhileInflight(t *testing.T) {
	w := NewWorld(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan struct{})
	go func() {
		<-blocked
		cancel()
	}()
	var once sync.Once
	err := w.RunContext(ctx, func(task *Task) error {
		if task.Rank() == 0 {
			reqs := make([]*Request, 0, 64)
			for i := 0; i < 64; i++ { // far beyond channel cap; rank 1 never receives
				reqs = append(reqs, task.ISend(1, 9, i, 8))
			}
			once.Do(func() { close(blocked) })
			task.WaitAll(reqs) // must wake via abort, not deadlock
			t.Error("WaitAll returned despite receiver never draining")
		} else {
			<-task.Failed() // idle until the abort propagates
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext: err = %v, want context.Canceled", err)
	}
}

// TestWorldAbortWakesWaiters checks a peer error (rather than ctx cancel)
// wakes both a Wait blocked on an undrained ISend and a Wait blocked on an
// IRecv that will never be satisfied, and that Guard converts the abort
// panic in a task-spawned goroutine into ErrPeerFailed.
func TestWorldAbortWakesWaiters(t *testing.T) {
	boom := errors.New("rank 2 failed")
	w := NewWorld(3, nil)
	guardErr := make(chan error, 1)
	err := w.Run(func(task *Task) error {
		switch task.Rank() {
		case 0:
			// Sends beyond capacity to a rank that never receives, then
			// waits from a spawned goroutine under Guard.
			reqs := make([]*Request, 0, 32)
			for i := 0; i < 32; i++ {
				reqs = append(reqs, task.ISend(1, 5, i, 8))
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				guardErr <- Guard(func() { task.WaitAll(reqs) })
			}()
			<-done
			// The body itself must still observe the abort for RunContext's
			// bookkeeping; a blocked Barrier does that.
			task.Barrier()
		case 1:
			task.Wait(task.IRecv(2, 77)) // rank 2 errors instead of sending
		case 2:
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run: err = %v, want %v", err, boom)
	}
	select {
	case ge := <-guardErr:
		if !errors.Is(ge, ErrPeerFailed) {
			t.Fatalf("Guard returned %v, want ErrPeerFailed", ge)
		}
	default:
		t.Fatal("guarded goroutine never reported")
	}
}

// TestAbortReleasesPeers checks Task.Abort fails the world from inside a
// body: a peer blocked in Recv wakes with ErrPeerFailed while the aborting
// rank returns its own error, which RunContext prefers.
func TestAbortReleasesPeers(t *testing.T) {
	boom := errors.New("local step failed")
	w := NewWorld(2, nil)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			task.Abort()
			return boom
		}
		task.Recv(0, 1) // never sent; must wake via the abort
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run: err = %v, want %v", err, boom)
	}
}
