package mpirt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2, nil)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			task.Send(1, 7, "hello", 5)
			if got := task.Recv(1, 8).(int); got != 42 {
				return fmt.Errorf("rank 0 got %d", got)
			}
		} else {
			if got := task.Recv(0, 7).(string); got != "hello" {
				return fmt.Errorf("rank 1 got %q", got)
			}
			task.Send(0, 8, 42, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(3, nil)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrier(t *testing.T) {
	const p = 8
	w := NewWorld(p, nil)
	var phase int32
	err := w.Run(func(task *Task) error {
		for round := int32(1); round <= 3; round++ {
			atomic.AddInt32(&phase, 1)
			task.Barrier()
			if got := atomic.LoadInt32(&phase); got < round*p {
				return fmt.Errorf("rank %d: phase %d after barrier round %d", task.Rank(), got, round)
			}
			task.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		w := NewWorld(p, nil)
		// Each rank r sends value r*100+dst to dst; verify everyone receives
		// the right value from every src.
		err := w.Run(func(task *Task) error {
			got := make([]int, p)
			task.AllToAll(1,
				func(dst int) (any, int) { return task.Rank()*100 + dst, 8 },
				func(src int, payload any) { got[src] = payload.(int) },
			)
			for src := 0; src < p; src++ {
				if got[src] != src*100+task.Rank() {
					return fmt.Errorf("p=%d rank %d: from %d got %d", p, task.Rank(), src, got[src])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllToAllRepeated(t *testing.T) {
	// Multi-pass pipelines run several all-to-alls back to back; FIFO
	// channels must keep passes ordered even without barriers.
	const p, passes = 4, 5
	w := NewWorld(p, nil)
	err := w.Run(func(task *Task) error {
		for pass := 0; pass < passes; pass++ {
			task.AllToAll(pass,
				func(dst int) (any, int) { return pass*1000 + task.Rank(), 8 },
				func(src int, payload any) {
					if got := payload.(int); got != pass*1000+src {
						panic(fmt.Sprintf("pass %d rank %d: from %d got %d", pass, task.Rank(), src, got))
					}
				},
			)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTreeMerge(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 16, 17} {
		w := NewWorld(p, nil)
		// Each rank holds the singleton set {rank}; the merged state at rank
		// 0 must be the full set.
		err := w.Run(func(task *Task) error {
			sum := task.Rank()
			root := task.TreeMerge(2,
				func(dst int) (any, int) { return sum, 8 },
				func(src int, payload any) { sum += payload.(int) },
			)
			if root != (task.Rank() == 0) {
				return fmt.Errorf("p=%d rank %d: root=%v", p, task.Rank(), root)
			}
			if root && sum != p*(p-1)/2 {
				return fmt.Errorf("p=%d: merged sum %d, want %d", p, sum, p*(p-1)/2)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 16, 17} {
		w := NewWorld(p, nil)
		err := w.Run(func(task *Task) error {
			value := -1
			if task.Rank() == 0 {
				value = 12345
			}
			task.Broadcast(3,
				func(dst int) (any, int) { return value, 8 },
				func(src int, payload any) { value = payload.(int) },
			)
			if value != 12345 {
				return fmt.Errorf("p=%d rank %d: value %d after broadcast", p, task.Rank(), value)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNetworkModelCost(t *testing.T) {
	m := &NetworkModel{Latency: time.Microsecond, BandwidthBytesPerSec: 1e9}
	if got := m.Cost(0); got != time.Microsecond {
		t.Errorf("Cost(0) = %v", got)
	}
	// 1 GB at 1 GB/s = 1 s (+1 µs latency).
	if got := m.Cost(1e9); got != time.Second+time.Microsecond {
		t.Errorf("Cost(1e9) = %v", got)
	}
	var nilModel *NetworkModel
	if nilModel.Cost(100) != 0 {
		t.Error("nil model should cost 0")
	}
}

func TestCommTimeAccounting(t *testing.T) {
	model := &NetworkModel{Latency: time.Millisecond, BandwidthBytesPerSec: 1e6}
	w := NewWorld(2, model)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			task.Send(1, 1, nil, 1000) // 1 ms latency + 1 ms transfer
			task.Send(0, 1, nil, 1000) // self-send: free
			task.Recv(0, 1)
			if d := task.TakeCommTime(); d != 2*time.Millisecond {
				return fmt.Errorf("comm time = %v, want 2ms", d)
			}
			if d := task.TakeCommTime(); d != 0 {
				return fmt.Errorf("comm time after take = %v", d)
			}
			if task.BytesSent() != 1000 {
				return fmt.Errorf("bytes sent = %d", task.BytesSent())
			}
		} else {
			task.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEdisonNetwork(t *testing.T) {
	m := EdisonNetwork()
	// 8 GB at 8 GB/s ≈ 1 s.
	got := m.Cost(8e9)
	if got < 990*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("Edison Cost(8GB) = %v, want ≈1 s", got)
	}
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := NewWorld(2, nil)
	done := make(chan bool, 1)
	_ = w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			task.Send(1, 1, nil, 0)
			return nil
		}
		defer func() {
			done <- recover() != nil
		}()
		task.Recv(0, 99)
		return nil
	})
	if !<-done {
		t.Error("tag mismatch did not panic")
	}
}

func BenchmarkAllToAll8(b *testing.B) {
	w := NewWorld(8, nil)
	payload := make([]uint64, 1024)
	b.ResetTimer()
	_ = w.Run(func(task *Task) error {
		for i := 0; i < b.N; i++ {
			task.AllToAll(i,
				func(dst int) (any, int) { return payload, len(payload) * 8 },
				func(src int, p any) { _ = p.([]uint64) },
			)
		}
		return nil
	})
}

func TestRunAbortsBlockedPeersOnFailure(t *testing.T) {
	// Rank 1 fails immediately; rank 0 would block forever in Recv without
	// abort propagation. Run must return rank 1's error promptly.
	w := NewWorld(3, nil)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(task *Task) error {
			switch task.Rank() {
			case 1:
				return fmt.Errorf("rank 1 exploded")
			case 0:
				task.Recv(2, 9) // never sent
			default:
				task.Barrier() // never completed
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil || err.Error() != "rank 1 exploded" {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked on a failed peer")
	}
}

func TestRunAbortReportsPeerFailure(t *testing.T) {
	// When the only error is the abort itself, ErrPeerFailed surfaces.
	w := NewWorld(2, nil)
	err := w.Run(func(task *Task) error {
		if task.Rank() == 0 {
			return fmt.Errorf("root cause")
		}
		task.Recv(0, 1)
		return nil
	})
	if err == nil || err.Error() != "root cause" {
		t.Fatalf("err = %v", err)
	}
}
