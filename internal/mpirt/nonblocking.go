package mpirt

import (
	"fmt"
	"sync"
	"time"
)

// This file adds nonblocking point-to-point primitives — ISend/IRecv
// returning request handles plus Wait/WaitAll — used by the streaming tuple
// exchange to overlap k-mer enumeration with communication.
//
// Semantics mirror MPI's nonblocking calls, adapted to the in-process
// runtime:
//
//   - ISend never blocks the caller. The message is handed to the
//     destination channel immediately when it has room; otherwise it is
//     appended to a per-(src,dst) outbox drained in FIFO order by a flusher
//     goroutine, so per-pair message ordering matches blocking Send.
//   - IRecv is lazy: the matching channel receive happens inside Wait.
//     Because each (src,dst) pair is a FIFO channel, this is equivalent to
//     posting the receive eagerly — the channel itself is the posted buffer.
//   - Wait completes the request. For sends, the modeled transfer time is
//     charged to the task's communication clock at completion, not at the
//     ISend call: under the NetworkModel, communication cost materializes
//     when the program actually synchronizes on the transfer, which is what
//     lets the pipeline observe overlap as max(T_gen, T_comm) instead of a
//     sum.
//   - Abort/cancel propagation wakes blocked waiters: when the world fails,
//     flusher goroutines abort their queues and Wait panics with the same
//     worldAborted sentinel the blocking primitives use (recovered by
//     RunContext, or by Guard in pipeline-owned goroutines).

// Request is an in-flight nonblocking operation returned by ISend or IRecv
// and completed by Wait. A Request must be waited by exactly one goroutine.
type Request struct {
	// Send-side fields.
	msg  message
	dst  int
	cost time.Duration
	// done closes when the message has been handed to the destination
	// channel (or the request was aborted). Closed-with-aborted-set is
	// ordered before Wait's read by the channel-close happens-before edge.
	done    chan struct{}
	aborted bool

	// Recv-side fields.
	isRecv bool
	src    int
	tag    int

	bytes     int
	payload   any
	completed bool
}

// outbox holds nonblocking sends for one (src,dst) pair that did not fit in
// the destination channel's buffer. While active, a flusher goroutine owns
// the head of the queue and drains it in order.
type outbox struct {
	mu     sync.Mutex
	queue  []*Request
	active bool
}

// ISend starts a nonblocking send of payload to dst and returns a request
// handle; the caller must eventually Wait it. ISend itself never blocks:
// if the destination channel is full the message is queued on the pair's
// outbox and delivered asynchronously, preserving FIFO order with respect
// to every other send from this rank to dst. The modeled transfer cost is
// computed here but charged to the communication clock only when Wait
// completes the request.
func (t *Task) ISend(dst, tag int, payload any, bytes int) *Request {
	w := t.world
	r := &Request{dst: dst, bytes: bytes, done: make(chan struct{})}
	if dst != t.rank {
		r.cost = w.model.Cost(bytes)
	}
	m := message{tag: tag, payload: payload, bytes: bytes}
	ob := w.outs[dst][t.rank]
	ob.mu.Lock()
	if !ob.active {
		// Queue is empty and no flusher owns the pair: a direct
		// nonblocking hand-off keeps FIFO order and skips the goroutine.
		select {
		case w.chans[dst][t.rank] <- m:
			ob.mu.Unlock()
			close(r.done)
			return r
		default:
		}
		ob.active = true
		r.msg = m
		ob.queue = append(ob.queue, r)
		ob.mu.Unlock()
		go w.flushOutbox(ob, dst, t.rank)
		return r
	}
	r.msg = m
	ob.queue = append(ob.queue, r)
	ob.mu.Unlock()
	return r
}

// flushOutbox drains one pair's outbox in FIFO order, blocking on the
// destination channel. On world failure it aborts the head request and the
// whole remaining queue so every waiter wakes.
func (w *World) flushOutbox(ob *outbox, dst, src int) {
	ch := w.chans[dst][src]
	for {
		ob.mu.Lock()
		if len(ob.queue) == 0 {
			ob.active = false
			ob.mu.Unlock()
			return
		}
		r := ob.queue[0]
		ob.queue = ob.queue[1:]
		ob.mu.Unlock()
		select {
		case ch <- r.msg:
			close(r.done)
		case <-w.failed:
			r.aborted = true
			close(r.done)
			ob.mu.Lock()
			rest := ob.queue
			ob.queue = nil
			ob.active = false
			ob.mu.Unlock()
			for _, q := range rest {
				q.aborted = true
				close(q.done)
			}
			return
		}
	}
}

// IRecv posts a nonblocking receive for the next message from src with the
// given tag. The actual channel receive happens in Wait; the per-pair FIFO
// channel is the posted buffer, so matching order is identical to eager
// posting.
func (t *Task) IRecv(src, tag int) *Request {
	return &Request{isRecv: true, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received payload
// (nil for sends). For sends, the modeled transfer time and byte count are
// charged to this task's communication clock here — at completion — so
// overlapped schedules account cost where the program synchronizes. Wait on
// an already-completed request is a cheap no-op returning the same payload.
// If the world was aborted before the request could complete, Wait panics
// with the abort sentinel (recovered by RunContext, or Guard).
func (t *Task) Wait(r *Request) any {
	if r.completed {
		return r.payload
	}
	r.completed = true
	w := t.world
	if r.isRecv {
		var m message
		select {
		case m = <-w.chans[t.rank][r.src]:
		case <-w.failed:
			// A message may have raced in just as the world failed;
			// prefer completing over aborting if one is ready.
			select {
			case m = <-w.chans[t.rank][r.src]:
			default:
				panic(worldAborted{})
			}
		}
		if m.tag != r.tag {
			panic(fmt.Sprintf("mpirt: rank %d expected tag %d from %d, got %d",
				t.rank, r.tag, r.src, m.tag))
		}
		r.payload = m.payload
		r.bytes = m.bytes
		return m.payload
	}
	select {
	case <-r.done:
	case <-w.failed:
		// The flusher owns the request and will close done promptly after
		// observing the failure (or already delivered it).
		<-r.done
	}
	if r.aborted {
		panic(worldAborted{})
	}
	if r.dst != t.rank {
		t.commTime += r.cost
		t.bytesSent += int64(r.bytes)
	}
	return nil
}

// WaitAll completes every request in order.
func (t *Task) WaitAll(rs []*Request) {
	for _, r := range rs {
		t.Wait(r)
	}
}

// Abort fails the whole world from inside a task body, waking every peer
// blocked in a communication call. The pipeline uses it when a local step
// error must release exchange goroutines that are still blocked on sends or
// receives before the body can join them and return the error.
func (t *Task) Abort() { t.world.fail() }

// Failed returns a channel that closes when the world has been aborted
// (peer error, Abort, or context cancellation). Pipeline-owned goroutines
// select on it alongside their own work channels so they wake on failure.
func (t *Task) Failed() <-chan struct{} { return t.world.failed }

// Guard runs f, converting the runtime's abort panic into ErrPeerFailed.
// Goroutines spawned by a task body (rather than by Run itself) must wrap
// their communication in Guard: the abort sentinel is unexported, so an
// unrecovered panic in such a goroutine would crash the process instead of
// unwinding into RunContext's recovery.
func Guard(f func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(worldAborted); ok {
				err = ErrPeerFailed
				return
			}
			panic(rec)
		}
	}()
	f()
	return nil
}
