// Package mpirt is a small in-process message-passing runtime standing in
// for MPI in the METAPREP pipeline. Each "task" (the paper's MPI rank,
// typically one per compute node) runs as a goroutine group with a rank and
// point-to-point channels to every other task.
//
// The runtime reproduces the paper's communication schedules rather than
// hiding them behind a collective library:
//
//   - the custom all-to-all of §3.3 (P stages, stage i sends to rank+i mod
//     P), built from point-to-point messages exactly because MPI_Alltoallv's
//     32-bit counts could not address the paper's buffer sizes;
//   - the ⌈log P⌉-round component merge tree of §3.6 (Fig. 4), in which
//     higher ranks send their component arrays to lower ranks and drop out;
//   - a tree broadcast for returning the global component array.
//
// Because all tasks share one address space here, transfers would otherwise
// be free; an optional NetworkModel charges each message α + bytes/β
// (latency plus serialization at link bandwidth) to the sender's
// communication clock. The pipeline folds those clocks into its
// communication step times, restoring the inter-node costs the paper
// measures on the Cray XC30 (8 GB/s links).
package mpirt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"metaprep/internal/obsv"
)

// NetworkModel describes the simulated interconnect. The zero value (or a
// nil pointer) disables communication-time accounting.
type NetworkModel struct {
	// Latency is the per-message setup cost (α).
	Latency time.Duration
	// BandwidthBytesPerSec is the point-to-point link bandwidth (β).
	BandwidthBytesPerSec float64
}

// EdisonNetwork returns a model of the machine used in the paper's
// evaluation: NERSC Edison's 8 GB/s point-to-point links with ~1 µs
// latency.
func EdisonNetwork() *NetworkModel {
	return &NetworkModel{Latency: time.Microsecond, BandwidthBytesPerSec: 8e9}
}

// Cost returns the modeled transfer time of a message of the given size.
func (m *NetworkModel) Cost(bytes int) time.Duration {
	if m == nil || bytes < 0 {
		return 0
	}
	d := m.Latency
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(bytes) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	return d
}

// message is one point-to-point transfer.
type message struct {
	tag     int
	payload any
	bytes   int
}

// worldAborted is the sentinel panic value blocked operations raise when a
// peer task fails; Run recovers it so a single failure aborts the whole run
// instead of deadlocking the survivors.
type worldAborted struct{}

// ErrPeerFailed is reported by tasks that were aborted because another task
// returned an error first.
var ErrPeerFailed = errors.New("mpirt: aborted because a peer task failed")

// World is a communicator over P tasks.
type World struct {
	p     int
	model *NetworkModel
	// obs, when non-nil, records every point-to-point transfer as a trace
	// span (category "comm", tid obsv.TidComm, pid = rank) carrying the
	// wire size and the modeled transfer-time charge as span metadata.
	obs *obsv.Collector
	// chans[dst][src] carries messages from src to dst.
	chans [][]chan message
	// outs[dst][src] queues nonblocking sends from src to dst that did not
	// fit in the channel buffer; a per-pair flusher goroutine drains it in
	// FIFO order (see ISend).
	outs [][]*outbox

	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierC   *sync.Cond

	// failed closes when any task returns an error, waking every blocked
	// communication call.
	failed   chan struct{}
	failOnce sync.Once
}

// fail marks the world failed, releasing all blocked operations.
func (w *World) fail() {
	w.failOnce.Do(func() {
		close(w.failed)
		// Wake barrier waiters so they can observe the failure.
		w.barrierMu.Lock()
		w.barrierGen++
		w.barrierC.Broadcast()
		w.barrierMu.Unlock()
	})
}

// aborted reports whether the world has failed.
func (w *World) aborted() bool {
	select {
	case <-w.failed:
		return true
	default:
		return false
	}
}

// NewWorld creates a communicator for p tasks with an optional network
// model (nil for no communication-time accounting).
func NewWorld(p int, model *NetworkModel) *World {
	if p < 1 {
		panic("mpirt: world size must be ≥ 1")
	}
	w := &World{p: p, model: model, failed: make(chan struct{})}
	w.chans = make([][]chan message, p)
	w.outs = make([][]*outbox, p)
	for d := range w.chans {
		w.chans[d] = make([]chan message, p)
		w.outs[d] = make([]*outbox, p)
		for s := range w.chans[d] {
			w.chans[d][s] = make(chan message, 8)
			w.outs[d][s] = &outbox{}
		}
	}
	w.barrierC = sync.NewCond(&w.barrierMu)
	return w
}

// Size returns the number of tasks.
func (w *World) Size() int { return w.p }

// SetCollector attaches an observability collector to the world. Call
// before Run; a nil collector (the default) keeps communication
// unobserved and free of any tracing overhead.
func (w *World) SetCollector(c *obsv.Collector) { w.obs = c }

// Task is one rank's endpoint in a World. A Task must only be used by the
// goroutine running that rank (per-task state, like the paper's per-process
// buffers, is single-owner); its communication clock is read by the
// pipeline between steps.
type Task struct {
	world *World
	rank  int

	// commTime accumulates modeled transfer time for messages this task
	// sent or self-delivered. Read with TakeCommTime between steps.
	commTime time.Duration
	// bytesSent accumulates payload bytes this task sent to other ranks.
	bytesSent int64
}

// Rank returns this task's rank in [0, Size).
func (t *Task) Rank() int { return t.rank }

// Size returns the world size.
func (t *Task) Size() int { return t.world.p }

// Send delivers payload to dst with the given tag. bytes is the payload's
// wire size, charged to this task's communication clock under the network
// model (self-sends are free). Send blocks only if dst's inbound channel
// from this rank is full.
func (t *Task) Send(dst, tag int, payload any, bytes int) {
	var cost time.Duration
	if dst != t.rank {
		cost = t.world.model.Cost(bytes)
		t.commTime += cost
		t.bytesSent += int64(bytes)
	}
	obs := t.world.obs
	var sp obsv.Span
	if obs != nil {
		sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "send")
	}
	select {
	case t.world.chans[dst][t.rank] <- message{tag: tag, payload: payload, bytes: bytes}:
	case <-t.world.failed:
		panic(worldAborted{})
	}
	if obs != nil {
		// The span's wall duration is the (tiny) in-process hand-off; the
		// simulated inter-node charge rides along as metadata so Perfetto
		// shows both the real and the modeled cost.
		sp.EndArgs(map[string]any{
			"dst": dst, "tag": tag, "bytes": bytes,
			"model_cost_us": float64(cost.Nanoseconds()) / 1e3,
		})
	}
}

// Recv receives the next message from src, which must carry the expected
// tag; a tag mismatch is a protocol bug and panics. It returns the payload.
func (t *Task) Recv(src, tag int) any {
	obs := t.world.obs
	var sp obsv.Span
	if obs != nil {
		sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "recv")
	}
	var m message
	select {
	case m = <-t.world.chans[t.rank][src]:
	case <-t.world.failed:
		panic(worldAborted{})
	}
	if obs != nil {
		sp.EndArgs(map[string]any{"src": src, "tag": m.tag, "bytes": m.bytes})
	}
	if m.tag != tag {
		panic(fmt.Sprintf("mpirt: rank %d expected tag %d from %d, got %d", t.rank, tag, src, m.tag))
	}
	return m.payload
}

// TakeCommTime returns the modeled communication time accumulated since the
// previous call and resets the clock. The pipeline calls this at step
// boundaries to attribute transfer cost to the right step.
func (t *Task) TakeCommTime() time.Duration {
	d := t.commTime
	t.commTime = 0
	return d
}

// BytesSent returns the total payload bytes sent to other ranks.
func (t *Task) BytesSent() int64 { return t.bytesSent }

// Barrier blocks until every task in the world has called it (a cyclic
// barrier, reusable across steps).
func (t *Task) Barrier() {
	w := t.world
	w.barrierMu.Lock()
	if w.aborted() {
		w.barrierMu.Unlock()
		panic(worldAborted{})
	}
	gen := w.barrierGen
	w.barrierN++
	if w.barrierN == w.p {
		w.barrierN = 0
		w.barrierGen++
		w.barrierC.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierC.Wait()
		}
	}
	aborted := w.aborted()
	w.barrierMu.Unlock()
	if aborted {
		panic(worldAborted{})
	}
}

// Run executes body once per rank on its own goroutine and waits for all of
// them, returning the first non-nil error. When any task fails, peers
// blocked in Send, Recv or Barrier are aborted (they report ErrPeerFailed),
// so a single failure terminates the whole run instead of deadlocking it.
func (w *World) Run(body func(t *Task) error) error {
	return w.RunContext(context.Background(), body)
}

// RunContext is Run with cancellation: when ctx is cancelled the world is
// failed through the same abort-propagation path a crashed peer uses, so
// every task blocked in Send, Recv or Barrier wakes promptly instead of
// deadlocking, and RunContext returns ctx.Err(). Tasks that are mid-compute
// are not preempted — long compute loops must poll ctx themselves (the core
// pipeline checks it at chunk and step boundaries).
func (w *World) RunContext(ctx context.Context, body func(t *Task) error) error {
	done := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.fail()
			case <-done:
			}
		}()
	}
	errs := make([]error, w.p)
	var wg sync.WaitGroup
	wg.Add(w.p)
	for r := 0; r < w.p; r++ {
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(worldAborted); ok {
						errs[r] = ErrPeerFailed
						return
					}
					panic(rec)
				}
			}()
			errs[r] = body(&Task{world: w, rank: r})
			if errs[r] != nil {
				w.fail()
			}
		}(r)
	}
	wg.Wait()
	close(done)
	// A cancelled context is the root cause, whatever shape the per-task
	// aborts took.
	if err := ctx.Err(); err != nil {
		return err
	}
	// Prefer a root-cause error over the peers' ErrPeerFailed echoes.
	var peerErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrPeerFailed) {
			return err
		}
		if err != nil && peerErr == nil {
			peerErr = err
		}
	}
	return peerErr
}

// AllToAll runs the paper's custom all-to-all schedule: P stages, where in
// stage i this rank sends to (rank+i) mod P and receives from (rank-i) mod
// P. Stage 0 is the self-exchange. send must return the payload and wire
// size destined for dst; recv consumes the payload that arrived from src.
//
// The schedule serializes a task's stages, exactly like the paper's
// implementation, so each task's modeled communication time is the sum of
// its per-stage transfer costs.
func (t *Task) AllToAll(tag int, send func(dst int) (any, int), recv func(src int, payload any)) {
	p := t.world.p
	obs := t.world.obs
	for i := 0; i < p; i++ {
		dst := (t.rank + i) % p
		src := (t.rank - i + p) % p
		payload, bytes := send(dst)
		t.Send(dst, tag, payload, bytes)
		if obs != nil {
			// Per-stage volume: the skew across stages is the §3.3
			// all-to-all's load-imbalance signal (cf. Fig. 8).
			obs.Counter(t.rank, fmt.Sprintf("alltoall/stage%03d/bytes", i)).Add(uint64(bytes))
		}
		recv(src, t.Recv(src, tag))
	}
}

// TreeMerge runs the ⌈log P⌉-round reduction of §3.6 (Fig. 4). In round r
// the surviving ranks are the multiples of 2^r; of those, ranks with bit r
// set send their state to (rank − 2^r) and drop out, and the receivers fold
// the received state into their own. send produces this task's state and
// its wire size; recv folds a peer's state in. TreeMerge reports whether
// this task survived every round (true exactly for rank 0), i.e. holds the
// fully merged state.
func (t *Task) TreeMerge(tag int, send func(dst int) (any, int), recv func(src int, payload any)) bool {
	p := t.world.p
	obs := t.world.obs
	round := 0
	for step := 1; step < p; step <<= 1 {
		if t.rank&(step-1) != 0 {
			break // dropped out in an earlier round
		}
		if t.rank&step != 0 {
			dst := t.rank - step
			var sp obsv.Span
			if obs != nil {
				sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "merge-round")
			}
			payload, bytes := send(dst)
			t.Send(dst, tag, payload, bytes)
			if obs != nil {
				sp.EndArgs(map[string]any{"round": round, "role": "send", "dst": dst, "bytes": bytes})
			}
			return false
		}
		if src := t.rank + step; src < p {
			var sp obsv.Span
			if obs != nil {
				sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "merge-round")
			}
			recv(src, t.Recv(src, tag))
			if obs != nil {
				sp.EndArgs(map[string]any{"round": round, "role": "recv+fold", "src": src})
			}
		}
		round++
	}
	return t.rank == 0
}

// Broadcast distributes rank 0's state to every task along a binomial tree
// (the reverse of TreeMerge's schedule). On rank 0, send must produce the
// payload for each destination; on other ranks recv first consumes the
// payload, after which the task relays it onward using send. size gives the
// wire size of the relayed payload.
func (t *Task) Broadcast(tag int, send func(dst int) (any, int), recv func(src int, payload any)) {
	p := t.world.p
	// Find the highest step at which this rank receives: rank r (> 0)
	// receives from r with its lowest set bit cleared.
	if t.rank != 0 {
		low := t.rank & -t.rank
		src := t.rank ^ low
		recv(src, t.Recv(src, tag))
		// Relay to ranks below the lowest set bit.
		for step := low >> 1; step >= 1; step >>= 1 {
			if dst := t.rank + step; dst < p {
				payload, bytes := send(dst)
				t.Send(dst, tag, payload, bytes)
			}
		}
		return
	}
	// Rank 0 seeds the tree from the top bit down.
	top := 1
	for top < p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		if dst := t.rank + step; dst < p {
			payload, bytes := send(dst)
			t.Send(dst, tag, payload, bytes)
		}
	}
}
