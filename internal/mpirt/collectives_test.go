package mpirt

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// collectives_test.go covers the back-half collectives: the pipelined delta
// tree merge (rank 0 must reconstruct the same global state the one-shot
// TreeMerge produces, from multi-round incremental payloads) and the
// tree/star broadcasts (delivery plus NetworkModel charging).

// deltaSet is the test stand-in for the DSU: a set of ints with shadow
// tracking, so snapshot(j) yields only elements added since the previous
// snapshot — exactly the contract core's SnapshotDelta implements.
type deltaSet struct {
	state  map[int]bool
	shadow map[int]bool
}

func (d *deltaSet) add(vals ...int) {
	for _, v := range vals {
		d.state[v] = true
	}
}

func (d *deltaSet) snapshot() []int {
	var out []int
	for v := range d.state {
		if !d.shadow[v] {
			d.shadow[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// rankItems is each rank's initial contribution: a deterministic, per-rank
// distinct set so a dropped or duplicated payload is visible in the union.
func rankItems(rank int) []int {
	n := rank%3 + 1
	items := make([]int, n)
	for i := range items {
		items[i] = rank*100 + i
	}
	return items
}

func TestPipelinedTreeMergeMatchesTreeMerge(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 17} {
		// Reference: the one-shot TreeMerge union.
		want := map[int]bool{}
		for r := 0; r < p; r++ {
			for _, v := range rankItems(r) {
				want[v] = true
			}
		}

		var mu sync.Mutex
		got := map[int]bool{}
		w := NewWorld(p, nil)
		err := w.Run(func(task *Task) error {
			ds := &deltaSet{state: map[int]bool{}, shadow: map[int]bool{}}
			ds.add(rankItems(task.Rank())...)
			root := task.PipelinedTreeMerge(10,
				func(round int) (any, int) {
					delta := ds.snapshot()
					return delta, 8 * len(delta)
				},
				func(src, round int, payload any) {
					ds.add(payload.([]int)...)
				},
			)
			if root != (task.Rank() == 0) {
				return fmt.Errorf("p=%d rank %d: root=%v", p, task.Rank(), root)
			}
			if root {
				mu.Lock()
				for v := range ds.state {
					got[v] = true
				}
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: merged %d items, want %d", p, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("p=%d: merged state missing %d", p, v)
			}
		}
	}
}

// TestPipelinedTreeMergeDeltaPayloads checks the pipelining contract itself:
// after round 0's baseline, each payload carries only the sender's newly
// absorbed items, so the total wire volume stays O(items · depth) rather than
// resending full state every round, and rounds arrive in order per child.
func TestPipelinedTreeMergeDeltaPayloads(t *testing.T) {
	const p = 8
	type recvRec struct{ src, round, n int }
	var mu sync.Mutex
	recvs := map[int][]recvRec{} // receiver rank → sequence
	w := NewWorld(p, nil)
	err := w.Run(func(task *Task) error {
		ds := &deltaSet{state: map[int]bool{}, shadow: map[int]bool{}}
		ds.add(task.Rank())
		task.PipelinedTreeMerge(10,
			func(round int) (any, int) {
				delta := ds.snapshot()
				return delta, 8 * len(delta)
			},
			func(src, round int, payload any) {
				vals := payload.([]int)
				mu.Lock()
				recvs[task.Rank()] = append(recvs[task.Rank()], recvRec{src, round, len(vals)})
				mu.Unlock()
				ds.add(vals...)
			},
		)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-derived schedule for P=8. Rank 0's children are 1 (round 0 only),
	// 2 (rounds 0–1) and 4 (rounds 0–2); rank 4's are 5 and 6; rank 2's and
	// 6's are their +1 neighbours. Every rank starts with exactly one item
	// and each delta forwards what was just absorbed, so payload sizes are
	// forced: rank 4 sends 1 item in round 0 (itself), 2 in round 1 (it
	// absorbed 5's and 6's baselines during round 0), and 1 in round 2
	// (7's item, relayed through 6's round-1 delta).
	want := map[int][]recvRec{
		0: {{1, 0, 1}, {2, 0, 1}, {4, 0, 1}, {2, 1, 1}, {4, 1, 2}, {4, 2, 1}},
		2: {{3, 0, 1}},
		4: {{5, 0, 1}, {6, 0, 1}, {6, 1, 1}},
		6: {{7, 0, 1}},
	}
	for rank, seq := range want {
		got := recvs[rank]
		if len(got) != len(seq) {
			t.Fatalf("rank %d received %v, want %v", rank, got, seq)
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("rank %d recv[%d] = %+v, want %+v", rank, i, got[i], seq[i])
			}
		}
	}
	for rank := range recvs {
		if _, ok := want[rank]; !ok {
			t.Fatalf("rank %d received %v, want nothing (leaf)", rank, recvs[rank])
		}
	}
}

func TestTreeBroadcastDelivers(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 17} {
		w := NewWorld(p, nil)
		err := w.Run(func(task *Task) error {
			value := -1
			if task.Rank() == 0 {
				value = 777
			}
			task.TreeBroadcast(4,
				func(dst int) (any, int) { return value, 8 },
				func(src int, payload any) {
					// The parent in the binomial tree is the rank with this
					// rank's lowest set bit cleared.
					if want := task.Rank() ^ (task.Rank() & -task.Rank()); src != want {
						panic(fmt.Sprintf("p=%d rank %d: parent %d, want %d", p, task.Rank(), src, want))
					}
					value = payload.(int)
				},
			)
			if value != 777 {
				return fmt.Errorf("p=%d rank %d: value %d after broadcast", p, task.Rank(), value)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBroadcastCharging pins the accounting difference that motivates
// TreeBroadcast: under a latency-only network model each message costs
// exactly Latency, so rank 0's clock reads (#children at rank 0)·Latency for
// the tree versus (P−1)·Latency for the star, and interior tree ranks carry
// their own relay cost.
func TestBroadcastCharging(t *testing.T) {
	const p = 8
	const lat = time.Millisecond
	run := func(bcast func(*Task, int, func(int) (any, int), func(int, any))) map[int]time.Duration {
		var mu sync.Mutex
		charged := map[int]time.Duration{}
		w := NewWorld(p, &NetworkModel{Latency: lat})
		err := w.Run(func(task *Task) error {
			task.TakeCommTime() // reset
			bcast(task, 5,
				func(dst int) (any, int) { return 1, 0 },
				func(src int, payload any) {},
			)
			mu.Lock()
			charged[task.Rank()] = task.TakeCommTime()
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return charged
	}

	tree := run((*Task).TreeBroadcast)
	// Rank 0 fans out to 4, 2, 1; rank 4 relays to 6 and 5; ranks 2 and 6
	// relay once; odd ranks are leaves.
	wantTree := map[int]time.Duration{0: 3 * lat, 2: lat, 4: 2 * lat, 6: lat}
	for rank := 0; rank < p; rank++ {
		if tree[rank] != wantTree[rank] {
			t.Errorf("tree: rank %d charged %v, want %v", rank, tree[rank], wantTree[rank])
		}
	}

	star := run((*Task).StarBroadcast)
	for rank := 0; rank < p; rank++ {
		want := time.Duration(0)
		if rank == 0 {
			want = (p - 1) * lat
		}
		if star[rank] != want {
			t.Errorf("star: rank %d charged %v, want %v", rank, star[rank], want)
		}
	}
}

func TestStarBroadcastDelivers(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(p, nil)
		err := w.Run(func(task *Task) error {
			value := -1
			if task.Rank() == 0 {
				value = 31337
			}
			task.StarBroadcast(6,
				func(dst int) (any, int) { return value, 4 },
				func(src int, payload any) {
					if src != 0 {
						panic(fmt.Sprintf("star parent %d, want 0", src))
					}
					value = payload.(int)
				},
			)
			if value != 31337 {
				return fmt.Errorf("p=%d rank %d: value %d", p, task.Rank(), value)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
