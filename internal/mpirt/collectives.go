package mpirt

import "metaprep/internal/obsv"

// This file adds the back-half collectives: the pipelined delta tree merge
// (MergeCC's §3.6 reduction restructured so rounds stream sparse deltas over
// the nonblocking primitives) and the tree/star broadcasts used to return
// the global component array.

// PipelinedTreeMerge runs the §3.6 merge tree as a multi-round pipeline of
// incremental payloads instead of one shot per rank.
//
// In the classic TreeMerge a rank snapshots its whole state exactly once, in
// the round its low bit selects. Here every non-zero rank x sends to its
// fixed tree parent d(x) = x − lowbit(x) in each round j = 0 … r(x) (where
// r(x) is the index of x's lowest set bit): round 0 carries x's baseline
// state and each later round carries only what changed after absorbing the
// previous round's children. Receivers fold children in ascending subtree
// order; rank 0, the root, receives in every round and never sends.
//
// snapshot(j) must produce the round-j payload and its wire size; ownership
// of the payload transfers to the receiver (the sender must not reuse the
// buffer — deltas after round 0 are small, so per-round allocation is the
// intended idiom). absorb(src, j, payload) folds a child's round-j payload
// into local state. Sends use ISend so a round's transfer overlaps the
// parent's absorb of the previous round; per-round tags occupy
// [tag, tag+⌈log₂P⌉).
//
// It reports whether this task holds the fully merged state (true exactly
// for rank 0).
func (t *Task) PipelinedTreeMerge(tag int, snapshot func(round int) (any, int), absorb func(src, round int, payload any)) bool {
	p := t.world.p
	if p == 1 {
		return true
	}
	obs := t.world.obs
	// rounds = ⌈log₂ p⌉: the number of rounds rank 0 participates in.
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	// r(x): index of the lowest set bit — the last round x sends in.
	last := rounds - 1
	if t.rank != 0 {
		last = 0
		for t.rank&(1<<last) == 0 {
			last++
		}
	}
	dst := t.rank - (t.rank & -t.rank)
	for j := 0; ; j++ {
		var req *Request
		if t.rank != 0 && j <= last {
			var sp obsv.Span
			if obs != nil {
				sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "merge-delta")
			}
			payload, bytes := snapshot(j)
			req = t.ISend(dst, tag+j, payload, bytes)
			if obs != nil {
				sp.EndArgs(map[string]any{"round": j, "role": "send", "dst": dst, "bytes": bytes})
			}
		}
		// Receive round-j deltas from every child that is still sending:
		// child x+2^u (u ≥ j) sends through its round u, so in round j the
		// still-active children are those with u ≥ j. For rank ≠ 0 this loop
		// only runs while j < r(x); rank 0 receives in every round.
		for u := j; 1<<u < p; u++ {
			if t.rank&((1<<(u+1))-1) != 0 {
				break // bit u (or lower) set: no children at step 2^u or above
			}
			src := t.rank + 1<<u
			if src >= p {
				break
			}
			var sp obsv.Span
			if obs != nil {
				sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "merge-delta")
			}
			absorb(src, j, t.Recv(src, tag+j))
			if obs != nil {
				sp.EndArgs(map[string]any{"round": j, "role": "recv+fold", "src": src})
			}
		}
		if req != nil {
			t.Wait(req)
		}
		if t.rank != 0 && j == last {
			return false
		}
		if t.rank == 0 && j == rounds-1 {
			return true
		}
	}
}

// TreeBroadcast distributes rank 0's state to every task along the binomial
// tree that mirrors TreeMerge's schedule, fanning out to all children with
// nonblocking sends so the subtree transfers overlap. Each relay's sends are
// charged to its own communication clock under the NetworkModel, so the
// modeled critical path is ⌈log₂P⌉ hops instead of the star's P−1 serialized
// sends from rank 0. On rank 0, send produces the payload per destination;
// on other ranks recv consumes the inbound payload first and the task then
// relays using send.
func (t *Task) TreeBroadcast(tag int, send func(dst int) (any, int), recv func(src int, payload any)) {
	p := t.world.p
	obs := t.world.obs
	relay := func(maxStep int) {
		var reqs []*Request
		var sp obsv.Span
		total, children := 0, 0
		if obs != nil {
			sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "bcast-fanout")
		}
		for step := maxStep; step >= 1; step >>= 1 {
			if dst := t.rank + step; dst < p {
				payload, bytes := send(dst)
				reqs = append(reqs, t.ISend(dst, tag, payload, bytes))
				total += bytes
				children++
			}
		}
		t.WaitAll(reqs)
		if obs != nil {
			sp.EndArgs(map[string]any{"children": children, "bytes": total})
		}
	}
	if t.rank != 0 {
		low := t.rank & -t.rank
		src := t.rank ^ low
		var sp obsv.Span
		if obs != nil {
			sp = obs.StartSpan(t.rank, obsv.TidComm, "comm", "bcast-recv")
		}
		recv(src, t.Recv(src, tag))
		if obs != nil {
			sp.EndArgs(map[string]any{"src": src})
		}
		relay(low >> 1)
		return
	}
	top := 1
	for top < p {
		top <<= 1
	}
	relay(top >> 1)
}

// StarBroadcast distributes rank 0's state with P−1 direct sends — the flat
// schedule TreeBroadcast replaces, kept as an ablation path. All transfer
// cost lands on rank 0's communication clock.
func (t *Task) StarBroadcast(tag int, send func(dst int) (any, int), recv func(src int, payload any)) {
	p := t.world.p
	if t.rank != 0 {
		recv(0, t.Recv(0, tag))
		return
	}
	reqs := make([]*Request, 0, p-1)
	for dst := 1; dst < p; dst++ {
		payload, bytes := send(dst)
		reqs = append(reqs, t.ISend(dst, tag, payload, bytes))
	}
	t.WaitAll(reqs)
}
