package mpirt

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunContextCancelWakesBlockedComm cancels a world whose ranks are
// deadlocked in communication primitives (a Recv that will never be
// satisfied, a Barrier missing a participant) and checks every rank wakes
// through the abort propagation and RunContext reports the cancellation.
func TestRunContextCancelWakesBlockedComm(t *testing.T) {
	w := NewWorld(4, nil)
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{}, 4)
	var once sync.Once
	go func() {
		// Cancel only after every rank is committed to blocking.
		for i := 0; i < 4; i++ {
			<-started
		}
		cancel()
	}()

	doneAt := make(chan time.Time, 1)
	err := w.RunContext(ctx, func(task *Task) error {
		started <- struct{}{}
		switch task.Rank() {
		case 0:
			task.Recv(1, 99) // rank 1 never sends tag 99
		default:
			task.Barrier() // rank 0 never arrives
		}
		once.Do(func() { doneAt <- time.Now() })
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after cancel: err = %v, want context.Canceled", err)
	}
	select {
	case <-doneAt:
		t.Fatalf("a blocked rank ran to completion despite the deadlock")
	default:
	}
}

// TestRunContextCompletesNormally checks a live context leaves RunContext's
// behaviour identical to Run, including error propagation.
func TestRunContextCompletesNormally(t *testing.T) {
	w := NewWorld(3, nil)
	err := w.RunContext(context.Background(), func(task *Task) error {
		task.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}

	boom := errors.New("rank 1 failed")
	w2 := NewWorld(3, nil)
	err = w2.RunContext(context.Background(), func(task *Task) error {
		task.Barrier()
		if task.Rank() == 1 {
			return boom
		}
		task.Barrier()
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunContext error propagation: err = %v, want %v", err, boom)
	}
}
