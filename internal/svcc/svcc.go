// Package svcc implements a Shiloach–Vishkin connected-components baseline
// over the read graph, standing in for the AP_LB partitioning tool of Flick
// et al. that Table 4 compares METAPREP against.
//
// AP_LB's distributed algorithm is an iterative, sort-based (and therefore
// bulk-synchronous) variant of Shiloach–Vishkin; the paper's comparison
// point is that its iteration count grows with component diameter (O(log M)
// rounds — 19–21 on the evaluation datasets) whereas METAPREP's union–find
// merge needs only log P communication rounds. This package runs
// bulk-synchronous hook-and-shortcut SV on the same edge set the pipeline's
// LocalCC consumes: each iteration reads labels from the previous
// iteration's snapshot, exactly like a sorting-based exchange would, so the
// iteration count reflects the algorithm's true sequential depth.
package svcc

import (
	"sync/atomic"

	"metaprep/internal/par"
	"metaprep/internal/unionfind"
)

// Result carries the SV labeling and its iteration count.
type Result struct {
	// Labels maps each vertex to its component label (the minimum vertex
	// ID of the component once converged).
	Labels []uint32
	// Iterations is the number of hook+shortcut rounds until stabilization
	// — the quantity Table 4 reports for AP_LB (19–21 on the paper's
	// datasets). Each iteration corresponds to one communication round of
	// the distributed algorithm.
	Iterations int
}

// casMin atomically lowers *addr to val if val is smaller, reporting
// whether it changed the value.
func casMin(addr *uint32, val uint32) bool {
	for {
		cur := atomic.LoadUint32(addr)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, cur, val) {
			return true
		}
	}
}

// Run computes connected components of the n-vertex graph with the given
// edges using bulk-synchronous Shiloach–Vishkin with workers parallel
// threads.
//
// Per iteration: (1) conditional hook — for each edge whose endpoints had
// different labels in the snapshot, the larger label's root vertex adopts
// the smaller label; (2) shortcut — every vertex jumps one step,
// d[v] ← prev[prev[v]]. Writes go through an atomic min so concurrent
// workers combine rather than clobber. Iterations repeat until a full round
// changes nothing.
func Run(n int, edges []unionfind.Edge, workers int) Result {
	if workers < 1 {
		workers = 1
	}
	d := make([]uint32, n)
	prev := make([]uint32, n)
	for i := range d {
		d[i] = uint32(i)
	}
	if n == 0 {
		return Result{Labels: d}
	}
	changed := make([]bool, workers)
	iters := 0
	for {
		iters++
		copy(prev, d)
		for w := range changed {
			changed[w] = false
		}
		par.Run(workers, func(w int) {
			lo, hi := par.Block(len(edges), workers, w)
			for _, e := range edges[lo:hi] {
				lu, lv := prev[e.U], prev[e.V]
				if lu == lv {
					continue
				}
				big, small := lu, lv
				if big < small {
					big, small = small, big
				}
				// Hook only at snapshot roots, like the sort-based variant:
				// non-root labels catch up via later shortcut rounds.
				if prev[big] == big && casMin(&d[big], small) {
					changed[w] = true
				}
			}
		})
		par.Run(workers, func(w int) {
			lo, hi := par.Block(n, workers, w)
			for v := lo; v < hi; v++ {
				if casMin(&d[v], prev[prev[v]]) {
					changed[w] = true
				}
			}
		})
		any := false
		for _, c := range changed {
			if c {
				any = true
			}
		}
		if !any {
			return Result{Labels: d, Iterations: iters}
		}
	}
}
