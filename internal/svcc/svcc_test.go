package svcc

import (
	"math/rand"
	"testing"

	"metaprep/internal/unionfind"
)

func randEdges(rng *rand.Rand, n, m int) []unionfind.Edge {
	edges := make([]unionfind.Edge, m)
	for i := range edges {
		edges[i] = unionfind.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	return edges
}

// ufLabels produces canonical (min-vertex) labels via union–find.
func ufLabels(n int, edges []unionfind.Edge) []uint32 {
	d := unionfind.New(n)
	d.ProcessEdges(edges, 1)
	labels := d.Flatten(1)
	minOf := make(map[uint32]uint32)
	for i, l := range labels {
		if m, ok := minOf[l]; !ok || uint32(i) < m {
			minOf[l] = uint32(i)
		}
	}
	out := make([]uint32, n)
	for i, l := range labels {
		out[i] = minOf[l]
	}
	return out
}

func TestSVMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(500)
		edges := randEdges(rng, n, rng.Intn(3*n))
		want := ufLabels(n, edges)
		for _, workers := range []int{1, 4} {
			res := Run(n, edges, workers)
			for v := range want {
				if res.Labels[v] != want[v] {
					t.Fatalf("trial %d workers %d vertex %d: SV %d, UF %d",
						trial, workers, v, res.Labels[v], want[v])
				}
			}
		}
	}
}

func TestSVEmpty(t *testing.T) {
	res := Run(0, nil, 2)
	if len(res.Labels) != 0 {
		t.Fatal("nonempty labels for empty graph")
	}
	res = Run(5, nil, 2)
	for v, l := range res.Labels {
		if l != uint32(v) {
			t.Fatalf("vertex %d labeled %d with no edges", v, l)
		}
	}
}

func TestSVIterationsGrowWithDiameter(t *testing.T) {
	// A long path needs more SV iterations than a star: the iteration count
	// tracks component diameter, the property Table 4 exploits (AP_LB's
	// 19-21 iterations vs METAPREP's log P rounds).
	n := 1 << 12
	path := make([]unionfind.Edge, n-1)
	for i := range path {
		path[i] = unionfind.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	star := make([]unionfind.Edge, n-1)
	for i := range star {
		star[i] = unionfind.Edge{U: 0, V: uint32(i + 1)}
	}
	pathIters := Run(n, path, 1).Iterations
	starIters := Run(n, star, 1).Iterations
	if pathIters <= starIters {
		t.Errorf("path iterations (%d) not greater than star iterations (%d)", pathIters, starIters)
	}
	if pathIters < 5 {
		t.Errorf("path of %d vertices took only %d iterations", n, pathIters)
	}
}

func TestSVSelfLoops(t *testing.T) {
	res := Run(3, []unionfind.Edge{{U: 1, V: 1}}, 2)
	for v, l := range res.Labels {
		if l != uint32(v) {
			t.Fatalf("self loop merged vertex %d", v)
		}
	}
}

func BenchmarkSV(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	edges := randEdges(rng, n, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(n, edges, 1)
	}
}
