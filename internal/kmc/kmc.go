// Package kmc implements a KMC 2-style two-stage k-mer counter, the
// baseline Figure 9 compares METAPREP's KmerGen/LocalSort against.
//
// Like KMC 2 it is built on minimizers and super k-mers:
//
//   - Stage 1 scans the reads once. Consecutive k-mers of a read that share
//     a minimizer (their "signature") are stored as one super k-mer — a
//     single substring of length k+run-1, 2-bit packed — in the bin of that
//     signature. Compaction is the stage's point: a super k-mer of r
//     windows costs ~(k+r-1)/4 bytes instead of r full k-mers.
//   - Stage 2 processes bins independently: each bin's super k-mers are
//     expanded back into canonical k-mers, radix sorted, and run-length
//     compacted into (k-mer, count) pairs.
//
// The structural trade-off the paper measures holds here too: Stage 1 pays
// extra per-window work (minimizers, packing) to shrink the data Stage 2
// must sort, whereas METAPREP's KmerGen emits full 12-byte tuples and its
// LocalSort pays for sorting all of them.
package kmc

import (
	"fmt"
	"io"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
	"metaprep/internal/par"
	"metaprep/internal/radix"
)

// Options configures the counter.
type Options struct {
	// K is the k-mer length, 1..31.
	K int
	// M is the minimizer length (KMC 2 uses 7 by default), 1 ≤ M ≤ K.
	M int
	// Bins is the number of signature bins (KMC 2 uses 512).
	Bins int
	// Workers is the thread count for both stages.
	Workers int
}

// Defaults mirrors KMC 2's defaults at the paper's k.
func Defaults() Options {
	return Options{K: 27, M: 7, Bins: 512, Workers: 1}
}

// Validate checks option invariants.
func (o Options) Validate() error {
	if err := kmer.CheckK64(o.K); err != nil {
		return err
	}
	if o.M < 1 || o.M > o.K {
		return fmt.Errorf("kmc: minimizer length %d out of range", o.M)
	}
	if o.Bins < 1 {
		return fmt.Errorf("kmc: bins %d < 1", o.Bins)
	}
	if o.Workers < 1 {
		return fmt.Errorf("kmc: workers %d < 1", o.Workers)
	}
	return nil
}

// Counts is the final output: parallel slices sorted by k-mer.
type Counts struct {
	Kmers  []uint64
	Counts []uint32
}

// Len returns the number of distinct k-mers.
func (c *Counts) Len() int { return len(c.Kmers) }

// Get returns the count of a canonical k-mer (0 if absent) by binary
// search.
func (c *Counts) Get(km uint64) uint32 {
	lo, hi := 0, len(c.Kmers)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Kmers[mid] < km {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.Kmers) && c.Kmers[lo] == km {
		return c.Counts[lo]
	}
	return 0
}

// Stats reports the per-stage timings and compaction effectiveness that
// Figure 9's comparison uses.
type Stats struct {
	// Stage1 covers reading, minimizer computation and super-k-mer binning.
	Stage1 time.Duration
	// Stage2 covers per-bin expansion, sorting and compaction.
	Stage2 time.Duration
	// SuperKmers is the number of super k-mers produced.
	SuperKmers int
	// TotalKmers is the number of k-mer instances counted.
	TotalKmers int
	// PackedBytes is the bytes of packed super-k-mer payload — the volume
	// Stage 2 receives (versus 12·TotalKmers for METAPREP's tuples).
	PackedBytes int64
}

// bin accumulates packed super k-mers: data is the concatenated 2-bit
// payloads, and winCounts holds each super k-mer's window count (its
// sequence length is windows+K-1 bases).
type bin struct {
	data      []byte
	winCounts []uint32
}

// CountSeqs counts the canonical k-mers of the given sequences. Windows
// containing non-ACGT bytes are skipped, exactly as in the pipeline.
func CountSeqs(seqs [][]byte, opts Options) (*Counts, *Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	stats := &Stats{}

	// Stage 1: per-worker bin sets, merged afterwards (KMC 2 splitters
	// likewise keep private bin buffers).
	t0 := time.Now()
	W := opts.Workers
	workerBins := make([][]bin, W)
	par.Run(W, func(w int) {
		bins := make([]bin, opts.Bins)
		lo, hi := par.Block(len(seqs), W, w)
		sp := splitter{opts: opts, bins: bins}
		for _, seq := range seqs[lo:hi] {
			sp.split(seq)
		}
		workerBins[w] = bins
	})
	bins := make([]bin, opts.Bins)
	for _, wb := range workerBins {
		for b := range wb {
			bins[b].data = append(bins[b].data, wb[b].data...)
			bins[b].winCounts = append(bins[b].winCounts, wb[b].winCounts...)
		}
	}
	for b := range bins {
		stats.SuperKmers += len(bins[b].winCounts)
		stats.PackedBytes += int64(len(bins[b].data))
	}
	stats.Stage1 = time.Since(t0)

	// Stage 2: expand, sort and compact each bin.
	t0 = time.Now()
	type binOut struct {
		kmers  []uint64
		counts []uint32
	}
	outs := make([]binOut, opts.Bins)
	par.For(W, opts.Bins, func(b int) {
		keys := expandBin(&bins[b], opts.K)
		if len(keys) == 0 {
			return
		}
		radix.SortKeys64(keys, make([]uint64, len(keys)), 8)
		var o binOut
		for i := 0; i < len(keys); {
			j := i + 1
			for j < len(keys) && keys[j] == keys[i] {
				j++
			}
			o.kmers = append(o.kmers, keys[i])
			o.counts = append(o.counts, uint32(j-i))
			i = j
		}
		outs[b] = o
	})
	// Bins do not partition the key space (signature → bin is modular), so
	// merge and re-sort the compacted pairs for a globally sorted result.
	res := &Counts{}
	for _, o := range outs {
		res.Kmers = append(res.Kmers, o.kmers...)
		res.Counts = append(res.Counts, o.counts...)
	}
	radix.SortPairs64(res.Kmers, res.Counts,
		make([]uint64, len(res.Kmers)), make([]uint32, len(res.Counts)), 8)
	for _, c := range res.Counts {
		stats.TotalKmers += int(c)
	}
	stats.Stage2 = time.Since(t0)
	return res, stats, nil
}

// CountFiles counts k-mers across FASTQ files.
func CountFiles(paths []string, opts Options) (*Counts, *Stats, error) {
	var seqs [][]byte
	for _, path := range paths {
		f, err := fastq.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r := fastq.NewReader(f)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			seqs = append(seqs, append([]byte(nil), rec.Seq...))
		}
		f.Close()
	}
	return CountSeqs(seqs, opts)
}

// splitter builds super k-mers over one read at a time.
type splitter struct {
	opts Options
	bins []bin
	// deque is the monotone queue of (m-mer position, canonical m-mer
	// value) used for the sliding-window signature.
	deque []mmerEntry
}

type mmerEntry struct {
	pos int
	val uint64
}

// split scans a read and appends maximal equal-signature runs of k-mer
// windows as packed super k-mers. The signature of a window is its
// smallest canonical m-mer, maintained incrementally with a monotone deque
// (amortized O(1) per window), the same scheme KMC 2's splitters use.
// Signatures are strand-symmetric: a window and its reverse complement
// share the canonical m-mer set, hence the minimum.
func (sp *splitter) split(seq []byte) {
	k := sp.opts.K
	i := 0
	for i < len(seq) {
		if _, ok := kmer.CodeOf(seq[i]); !ok {
			i++
			continue
		}
		j := i + 1
		for j < len(seq) {
			if _, ok := kmer.CodeOf(seq[j]); !ok {
				break
			}
			j++
		}
		if j-i >= k {
			sp.splitRun(seq, i, j)
		}
		i = j + 1
	}
}

// splitRun handles one maximal ACGT run seq[lo:hi].
func (sp *splitter) splitRun(seq []byte, lo, hi int) {
	k, m := sp.opts.K, sp.opts.M
	span := k - m + 1 // m-mer positions per k-mer window
	mask := kmer.Mask64(m)
	rcShift := 2 * uint(m-1)
	dq := sp.deque[:0]
	var fwd, rc uint64
	runStart, runSig := -1, uint64(0)
	flush := func(endPos int) {
		if runStart >= 0 {
			sp.emit(seq, lo+runStart, endPos-runStart, runSig)
			runStart = -1
		}
	}
	for i := lo; i < hi; i++ {
		c64, _ := kmer.CodeOf(seq[i])
		c := uint64(c64)
		fwd = (fwd<<2 | c) & mask
		rc = rc>>2 | (^c&3)<<rcShift
		p := i - lo - m + 1 // m-mer position within the run
		if p < 0 {
			continue
		}
		cm := fwd
		if rc < cm {
			cm = rc
		}
		// Monotone deque: drop larger values from the back, expired
		// positions from the front.
		for len(dq) > 0 && dq[len(dq)-1].val > cm {
			dq = dq[:len(dq)-1]
		}
		dq = append(dq, mmerEntry{pos: p, val: cm})
		w := p - span + 1 // k-mer window position within the run
		if w < 0 {
			continue
		}
		for dq[0].pos < w {
			dq = dq[1:]
		}
		sig := dq[0].val
		if runStart < 0 {
			runStart, runSig = w, sig
		} else if sig != runSig {
			flush(w)
			runStart, runSig = w, sig
		}
	}
	flush(hi - lo - k + 1)
	sp.deque = dq[:0]
}

// emit packs seq[pos : pos+windows+k-1] into the bin of the run's
// signature.
func (sp *splitter) emit(seq []byte, pos, windows int, sig uint64) {
	k := sp.opts.K
	b := &sp.bins[int(sig)%sp.opts.Bins]
	b.winCounts = append(b.winCounts, uint32(windows))
	b.data = packBases(b.data, seq[pos:pos+windows+k-1])
}

// packBases appends the 2-bit packing of an ACGT sequence to dst.
func packBases(dst, seq []byte) []byte {
	var cur byte
	nb := 0
	for _, c := range seq {
		code, _ := kmer.CodeOf(c)
		cur = cur<<2 | code
		nb++
		if nb == 4 {
			dst = append(dst, cur)
			cur, nb = 0, 0
		}
	}
	if nb > 0 {
		dst = append(dst, cur<<(2*uint(4-nb)))
	}
	return dst
}

// expandBin turns a bin's packed super k-mers back into canonical k-mer
// keys, rolling directly over the 2-bit payload (no ASCII round trip — the
// expansion is Stage 2's inner loop).
func expandBin(b *bin, k int) []uint64 {
	total := 0
	for _, wins := range b.winCounts {
		total += int(wins)
	}
	keys := make([]uint64, 0, total)
	mask := kmer.Mask64(k)
	rcShift := 2 * uint(k-1)
	off := 0
	for _, wins := range b.winCounts {
		nBases := int(wins) + k - 1
		nBytes := (nBases + 3) / 4
		data := b.data[off : off+nBytes]
		off += nBytes
		var fwd, rc uint64
		for i := 0; i < nBases; i++ {
			c := uint64(data[i/4] >> (2 * uint(3-i%4)) & 3)
			fwd = (fwd<<2 | c) & mask
			rc = rc>>2 | (^c&3)<<rcShift
			if i >= k-1 {
				if rc < fwd {
					keys = append(keys, rc)
				} else {
					keys = append(keys, fwd)
				}
			}
		}
	}
	return keys
}

// unpackBases decodes n bases from packed data into ASCII.
func unpackBases(dst, data []byte, n int) []byte {
	for i := 0; i < n; i++ {
		byteIdx := i / 4
		shift := 2 * uint(3-i%4)
		code := data[byteIdx] >> shift & 3
		dst = append(dst, kmer.CharOf(code))
	}
	return dst
}
