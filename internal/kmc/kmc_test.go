package kmc

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
)

func naiveCounts(seqs [][]byte, k int) map[uint64]uint32 {
	m := make(map[uint64]uint32)
	for _, seq := range seqs {
		kmer.ForEach64(seq, k, func(_ int, km kmer.Kmer64) {
			m[uint64(km)]++
		})
	}
	return m
}

func randSeqs(rng *rand.Rand, n, length int, withN bool) [][]byte {
	seqs := make([][]byte, n)
	for i := range seqs {
		s := make([]byte, length)
		for j := range s {
			if withN && rng.Intn(40) == 0 {
				s[j] = 'N'
			} else {
				s[j] = "ACGT"[rng.Intn(4)]
			}
		}
		seqs[i] = s
	}
	return seqs
}

func assertMatchesNaive(t *testing.T, seqs [][]byte, opts Options) *Stats {
	t.Helper()
	got, stats, err := CountSeqs(seqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveCounts(seqs, opts.K)
	if got.Len() != len(want) {
		t.Fatalf("distinct k-mers: got %d, want %d", got.Len(), len(want))
	}
	total := 0
	for i, km := range got.Kmers {
		if i > 0 && got.Kmers[i-1] >= km {
			t.Fatalf("output not strictly sorted at %d", i)
		}
		if want[km] != got.Counts[i] {
			t.Fatalf("k-mer %s: count %d, want %d",
				kmer.String64(kmer.Kmer64(km), opts.K), got.Counts[i], want[km])
		}
		total += int(got.Counts[i])
	}
	if stats.TotalKmers != total {
		t.Fatalf("stats.TotalKmers=%d, sum=%d", stats.TotalKmers, total)
	}
	return stats
}

func TestCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := Options{K: 11, M: 5, Bins: 64, Workers: 1}
	assertMatchesNaive(t, randSeqs(rng, 100, 80, true), opts)
}

func TestCountOverlappingReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := randSeqs(rng, 1, 2000, false)[0]
	var seqs [][]byte
	for i := 0; i < 300; i++ {
		pos := rng.Intn(len(genome) - 60)
		seqs = append(seqs, genome[pos:pos+60])
	}
	opts := Options{K: 21, M: 7, Bins: 128, Workers: 1}
	stats := assertMatchesNaive(t, seqs, opts)
	// Compaction: packed super k-mers must be far smaller than 12 bytes per
	// k-mer instance (the METAPREP tuple volume).
	if stats.PackedBytes >= int64(stats.TotalKmers*12) {
		t.Errorf("no compaction: %d packed bytes for %d k-mers", stats.PackedBytes, stats.TotalKmers)
	}
	if stats.SuperKmers >= stats.TotalKmers {
		t.Errorf("super k-mers (%d) not fewer than k-mers (%d)", stats.SuperKmers, stats.TotalKmers)
	}
}

func TestCountParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seqs := randSeqs(rng, 200, 70, true)
	opts := Options{K: 15, M: 6, Bins: 32, Workers: 4}
	assertMatchesNaive(t, seqs, opts)
}

func TestCountSingleBin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seqs := randSeqs(rng, 50, 50, false)
	assertMatchesNaive(t, seqs, Options{K: 9, M: 3, Bins: 1, Workers: 2})
}

func TestCountEmptyAndShort(t *testing.T) {
	opts := Options{K: 11, M: 5, Bins: 16, Workers: 1}
	got, stats, err := CountSeqs(nil, opts)
	if err != nil || got.Len() != 0 || stats.TotalKmers != 0 {
		t.Fatalf("empty input: %v %d %d", err, got.Len(), stats.TotalKmers)
	}
	// Reads shorter than k contribute nothing.
	got, _, err = CountSeqs([][]byte{[]byte("ACGT")}, opts)
	if err != nil || got.Len() != 0 {
		t.Fatalf("short read: %v %d", err, got.Len())
	}
}

func TestGet(t *testing.T) {
	seqs := [][]byte{[]byte("ACGTACGTACGT")}
	opts := Options{K: 5, M: 3, Bins: 8, Workers: 1}
	got, _, err := CountSeqs(seqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for km, want := range naiveCounts(seqs, 5) {
		if got.Get(km) != want {
			t.Errorf("Get(%d) = %d, want %d", km, got.Get(km), want)
		}
	}
	if got.Get(^uint64(0)) != 0 {
		t.Error("Get of absent k-mer != 0")
	}
}

func TestCountFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqs := randSeqs(rng, 60, 50, true)
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	f, _ := os.Create(path)
	w := fastq.NewWriter(f)
	for _, s := range seqs {
		_ = w.Write(fastq.Record{ID: []byte("r"), Seq: s, Qual: bytes.Repeat([]byte("I"), len(s))})
	}
	_ = w.Flush()
	f.Close()
	got, _, err := CountFiles([]string{path}, Options{K: 13, M: 5, Bins: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveCounts(seqs, 13)
	if got.Len() != len(want) {
		t.Fatalf("distinct: %d vs %d", got.Len(), len(want))
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{K: 0, M: 1, Bins: 1, Workers: 1},
		{K: 32, M: 1, Bins: 1, Workers: 1},
		{K: 11, M: 0, Bins: 1, Workers: 1},
		{K: 11, M: 12, Bins: 1, Workers: 1},
		{K: 11, M: 5, Bins: 0, Workers: 1},
		{K: 11, M: 5, Bins: 4, Workers: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		seq := randSeqs(rng, 1, n, false)[0]
		packed := packBases(nil, seq)
		if len(packed) != (n+3)/4 {
			t.Fatalf("packed %d bases into %d bytes", n, len(packed))
		}
		got := unpackBases(nil, packed, n)
		if !bytes.Equal(got, seq) {
			t.Fatalf("round trip failed for %q: got %q", seq, got)
		}
	}
}

func BenchmarkCountSeqs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	genome := randSeqs(rng, 1, 10000, false)[0]
	var seqs [][]byte
	for i := 0; i < 2000; i++ {
		pos := rng.Intn(len(genome) - 100)
		seqs = append(seqs, genome[pos:pos+100])
	}
	opts := Defaults()
	b.SetBytes(int64(2000 * 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CountSeqs(seqs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCountFilesGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := randSeqs(rng, 40, 50, false)
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	var raw bytes.Buffer
	w := fastq.NewWriter(&raw)
	for _, s := range seqs {
		_ = w.Write(fastq.Record{ID: []byte("r"), Seq: s, Qual: bytes.Repeat([]byte("I"), len(s))})
	}
	_ = w.Flush()
	f, _ := os.Create(path)
	gz := gzip.NewWriter(f)
	gz.Write(raw.Bytes())
	gz.Close()
	f.Close()
	got, _, err := CountFiles([]string{path}, Options{K: 13, M: 5, Bins: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(naiveCounts(seqs, 13)) {
		t.Fatalf("gzip counting found %d distinct k-mers", got.Len())
	}
}
