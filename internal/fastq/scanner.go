package fastq

import (
	"bytes"
	"fmt"
	"io"
)

// ChunkScanner parses FASTQ records in place from a byte buffer that is
// already fully resident in memory — the situation of every pipeline chunk
// consumer, which reads a whole FASTQPart chunk with one ReadAt. Unlike
// Reader it performs no buffering and no copying: the returned Record's ID,
// Seq and Qual are sub-slices of the scanned buffer, valid for as long as
// the buffer is (not merely until the next Next call).
//
// ChunkScanner accepts exactly the inputs Reader accepts and reports the
// same errors (see the parity fuzz test); the one behavioural difference is
// the lifetime guarantee above.
type ChunkScanner struct {
	buf []byte
	// pos is the byte offset of the next unread byte.
	pos int
	// n is the number of records returned so far.
	n int64
}

// NewChunkScanner returns a scanner over buf.
func NewChunkScanner(buf []byte) *ChunkScanner {
	s := &ChunkScanner{}
	s.Reset(buf)
	return s
}

// Reset rewinds the scanner onto a new buffer, allowing one scanner to walk
// many chunks without allocation.
func (s *ChunkScanner) Reset(buf []byte) {
	s.buf = buf
	s.pos = 0
	s.n = 0
}

// Offset returns the byte offset of the next unread record.
func (s *ChunkScanner) Offset() int64 { return int64(s.pos) }

// Count returns the number of records returned so far.
func (s *ChunkScanner) Count() int64 { return s.n }

// line returns the next newline-terminated line as a sub-slice of the
// buffer, stripping the trailing '\n' (and '\r' for CRLF input). A final
// line without a trailing newline is returned as-is; io.EOF is returned
// only once the buffer is exhausted.
func (s *ChunkScanner) line() ([]byte, error) {
	if s.pos >= len(s.buf) {
		return nil, io.EOF
	}
	ln := s.buf[s.pos:]
	if i := bytes.IndexByte(ln, '\n'); i >= 0 {
		ln = ln[:i]
		s.pos += i + 1
	} else {
		s.pos = len(s.buf)
	}
	if len(ln) > 0 && ln[len(ln)-1] == '\r' {
		ln = ln[:len(ln)-1]
	}
	return ln, nil
}

// Next returns the next record, or io.EOF after the last one. The returned
// record's fields are sub-slices of the scanned buffer.
func (s *ChunkScanner) Next() (Record, error) {
	hdr, err := s.line()
	if err != nil {
		return Record{}, err
	}
	if len(hdr) == 0 || hdr[0] != '@' {
		return Record{}, fmt.Errorf("%w: record %d: header %q does not start with '@'", ErrFormat, s.n, clip(hdr))
	}
	seq, err := s.line()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated after header", ErrFormat, s.n)
	}
	sep, err := s.line()
	if err != nil || len(sep) == 0 || sep[0] != '+' {
		return Record{}, fmt.Errorf("%w: record %d: bad '+' separator line", ErrFormat, s.n)
	}
	qual, err := s.line()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated quality line", ErrFormat, s.n)
	}
	if len(qual) != len(seq) {
		return Record{}, fmt.Errorf("%w: record %d: quality length %d != sequence length %d",
			ErrFormat, s.n, len(qual), len(seq))
	}
	s.n++
	return Record{ID: hdr[1:], Seq: seq, Qual: qual}, nil
}
