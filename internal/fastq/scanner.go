package fastq

import (
	"bytes"
	"fmt"
	"io"
)

// ChunkScanner parses FASTQ records in place from a byte buffer that is
// already fully resident in memory — the situation of every pipeline chunk
// consumer, which reads a whole FASTQPart chunk with one ReadAt. Unlike
// Reader it performs no buffering and no copying: the returned Record's ID,
// Seq and Qual are sub-slices of the scanned buffer, valid for as long as
// the buffer is (not merely until the next Next call).
//
// ChunkScanner accepts exactly the inputs Reader accepts and reports the
// same errors (see the parity fuzz test); the one behavioural difference is
// the lifetime guarantee above.
type ChunkScanner struct {
	buf []byte
	// pos is the byte offset of the next unread byte.
	pos int
	// n is the number of records returned so far.
	n int64
}

// NewChunkScanner returns a scanner over buf.
func NewChunkScanner(buf []byte) *ChunkScanner {
	s := &ChunkScanner{}
	s.Reset(buf)
	return s
}

// Reset rewinds the scanner onto a new buffer, allowing one scanner to walk
// many chunks without allocation.
func (s *ChunkScanner) Reset(buf []byte) {
	s.buf = buf
	s.pos = 0
	s.n = 0
}

// Offset returns the byte offset of the next unread record.
func (s *ChunkScanner) Offset() int64 { return int64(s.pos) }

// Count returns the number of records returned so far.
func (s *ChunkScanner) Count() int64 { return s.n }

// line returns the next newline-terminated line as a sub-slice of the
// buffer, stripping the trailing '\n' (and '\r' for CRLF input). A final
// line without a trailing newline is returned as-is; io.EOF is returned
// only once the buffer is exhausted.
func (s *ChunkScanner) line() ([]byte, error) {
	ln, _, _, err := s.rawLine()
	return ln, err
}

// rawLine is line() extended with the two facts the verbatim check needs:
// whether the line was '\n'-terminated in the buffer and whether a '\r' was
// stripped.
func (s *ChunkScanner) rawLine() (ln []byte, nl, cr bool, err error) {
	if s.pos >= len(s.buf) {
		return nil, false, false, io.EOF
	}
	ln = s.buf[s.pos:]
	if i := bytes.IndexByte(ln, '\n'); i >= 0 {
		ln = ln[:i]
		s.pos += i + 1
		nl = true
	} else {
		s.pos = len(s.buf)
	}
	if len(ln) > 0 && ln[len(ln)-1] == '\r' {
		ln = ln[:len(ln)-1]
		cr = true
	}
	return ln, nl, cr, nil
}

// Next returns the next record, or io.EOF after the last one. The returned
// record's fields are sub-slices of the scanned buffer.
func (s *ChunkScanner) Next() (Record, error) {
	hdr, err := s.line()
	if err != nil {
		return Record{}, err
	}
	if len(hdr) == 0 || hdr[0] != '@' {
		return Record{}, fmt.Errorf("%w: record %d: header %q does not start with '@'", ErrFormat, s.n, clip(hdr))
	}
	seq, err := s.line()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated after header", ErrFormat, s.n)
	}
	sep, err := s.line()
	if err != nil || len(sep) == 0 || sep[0] != '+' {
		return Record{}, fmt.Errorf("%w: record %d: bad '+' separator line", ErrFormat, s.n)
	}
	qual, err := s.line()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated quality line", ErrFormat, s.n)
	}
	if len(qual) != len(seq) {
		return Record{}, fmt.Errorf("%w: record %d: quality length %d != sequence length %d",
			ErrFormat, s.n, len(qual), len(seq))
	}
	s.n++
	return Record{ID: hdr[1:], Seq: seq, Qual: qual}, nil
}

// NextRaw is Next extended with the record's raw byte span in the scanned
// buffer and whether that span is byte-identical to the record's canonical
// serialization (Record.Bytes): '\n'-only line endings, a bare '+'
// separator, and a trailing newline. When verbatim is true the caller can
// blit raw instead of re-encoding — the zero-copy CC-I/O path; when false
// (CRLF input, '+ID' separators, or a missing final newline) re-encoding is
// required for the output to stay canonical. Parse errors are identical to
// Next's.
func (s *ChunkScanner) NextRaw() (rec Record, raw []byte, verbatim bool, err error) {
	start := s.pos
	hdr, _, crH, err := s.rawLine()
	if err != nil {
		return Record{}, nil, false, err
	}
	if len(hdr) == 0 || hdr[0] != '@' {
		return Record{}, nil, false, fmt.Errorf("%w: record %d: header %q does not start with '@'", ErrFormat, s.n, clip(hdr))
	}
	seq, _, crS, err := s.rawLine()
	if err != nil {
		return Record{}, nil, false, fmt.Errorf("%w: record %d: truncated after header", ErrFormat, s.n)
	}
	sep, _, crP, err := s.rawLine()
	if err != nil || len(sep) == 0 || sep[0] != '+' {
		return Record{}, nil, false, fmt.Errorf("%w: record %d: bad '+' separator line", ErrFormat, s.n)
	}
	qual, nlQ, crQ, err := s.rawLine()
	if err != nil {
		return Record{}, nil, false, fmt.Errorf("%w: record %d: truncated quality line", ErrFormat, s.n)
	}
	if len(qual) != len(seq) {
		return Record{}, nil, false, fmt.Errorf("%w: record %d: quality length %d != sequence length %d",
			ErrFormat, s.n, len(qual), len(seq))
	}
	s.n++
	// Interior lines missing their '\n' would have truncated the parse above,
	// so only the quality line's terminator, the separator's bareness and any
	// stripped '\r' distinguish the raw span from the canonical encoding.
	verbatim = nlQ && len(sep) == 1 && !(crH || crS || crP || crQ)
	return Record{ID: hdr[1:], Seq: seq, Qual: qual}, s.buf[start:s.pos], verbatim, nil
}
