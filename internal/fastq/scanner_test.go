package fastq

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drainReader collects every record (cloned) and the terminating error from
// the streaming Reader.
func drainReader(data []byte) ([]Record, []int64, error) {
	r := NewReader(bytes.NewReader(data))
	var recs []Record
	var offs []int64
	for {
		rec, err := r.Next()
		if err != nil {
			return recs, offs, err
		}
		recs = append(recs, rec.Clone())
		offs = append(offs, r.Offset())
	}
}

// drainScanner collects every record and the terminating error from the
// zero-copy ChunkScanner. No cloning: scanner records stay valid.
func drainScanner(data []byte) ([]Record, []int64, error) {
	s := NewChunkScanner(data)
	var recs []Record
	var offs []int64
	for {
		rec, err := s.Next()
		if err != nil {
			return recs, offs, err
		}
		recs = append(recs, rec)
		offs = append(offs, s.Offset())
	}
}

// checkParity asserts the two parsers agree byte-for-byte on records,
// per-record offsets, and the terminating error.
func checkParity(t *testing.T, data []byte) {
	t.Helper()
	rRecs, rOffs, rErr := drainReader(data)
	sRecs, sOffs, sErr := drainScanner(data)
	if len(rRecs) != len(sRecs) {
		t.Fatalf("record count: Reader %d, ChunkScanner %d", len(rRecs), len(sRecs))
	}
	for i := range rRecs {
		if !Equal(rRecs[i], sRecs[i]) {
			t.Fatalf("record %d differs: Reader %q/%q/%q, ChunkScanner %q/%q/%q",
				i, rRecs[i].ID, rRecs[i].Seq, rRecs[i].Qual,
				sRecs[i].ID, sRecs[i].Seq, sRecs[i].Qual)
		}
		if rOffs[i] != sOffs[i] {
			t.Fatalf("record %d offset: Reader %d, ChunkScanner %d", i, rOffs[i], sOffs[i])
		}
	}
	if (rErr == nil) != (sErr == nil) {
		t.Fatalf("error presence differs: Reader %v, ChunkScanner %v", rErr, sErr)
	}
	if errors.Is(rErr, io.EOF) != errors.Is(sErr, io.EOF) ||
		errors.Is(rErr, ErrFormat) != errors.Is(sErr, ErrFormat) {
		t.Fatalf("error class differs: Reader %v, ChunkScanner %v", rErr, sErr)
	}
	if rErr != nil && !errors.Is(rErr, io.EOF) && rErr.Error() != sErr.Error() {
		t.Fatalf("error text differs:\n  Reader:       %v\n  ChunkScanner: %v", rErr, sErr)
	}
}

func TestChunkScannerParity(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"single":            "@r1\nACGT\n+\nIIII\n",
		"two records":       "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+\nJJJJ\n",
		"no final newline":  "@r1\nACGT\n+\nIIII",
		"crlf":              "@r1\r\nACGT\r\n+\r\nIIII\r\n",
		"crlf no final LF":  "@r1\r\nACGT\r\n+\r\nIIII\r",
		"plus with comment": "@r1\nACGT\n+r1 extra\nIIII\n",
		"empty seq":         "@r1\n\n+\n\n",
		"missing at":        "r1\nACGT\n+\nIIII\n",
		"empty header":      "\nACGT\n+\nIIII\n",
		"truncated header":  "@r1",
		"truncated seq":     "@r1\nACGT",
		"truncated sep":     "@r1\nACGT\n",
		"bad sep":           "@r1\nACGT\n-\nIIII\n",
		"empty sep":         "@r1\nACGT\n\nIIII\n",
		"truncated qual":    "@r1\nACGT\n+\n",
		"qual length":       "@r1\nACGT\n+\nIII\n",
		"second record bad": "@r1\nACGT\n+\nIIII\n@r2\nAC\n+\nI\n",
		"garbage":           "not fastq at all",
		"only newlines":     "\n\n\n\n",
		"blank then record": "\n@r1\nACGT\n+\nIIII\n",
		"lone cr line":      "@r1\nAC\rGT\n+\nIIIII\n",
		"nul bytes":         "@r\x001\nAC\n+\nII\n",
		"many records":      strings.Repeat("@r\nA\n+\nI\n", 500),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) { checkParity(t, []byte(data)) })
	}
}

// TestChunkScannerParityLongLine covers lines beyond the streaming Reader's
// 256 KiB bufio buffer, which exercise its ErrBufferFull accumulation path.
func TestChunkScannerParityLongLine(t *testing.T) {
	long := bytes.Repeat([]byte("ACGT"), 80<<10) // 320 KiB sequence
	var in bytes.Buffer
	in.WriteString("@long read 1\n")
	in.Write(long)
	in.WriteString("\n+\n")
	in.Write(bytes.Repeat([]byte("I"), len(long)))
	in.WriteString("\n@tail\nAC\n+\nII\n")
	checkParity(t, in.Bytes())

	// And a truncated variant ending inside the long quality line.
	trunc := in.Bytes()[:in.Len()/2]
	checkParity(t, trunc)
}

func TestChunkScannerZeroCopy(t *testing.T) {
	buf := []byte("@id one\nACGT\n+\nIIII\n")
	s := NewChunkScanner(buf)
	rec, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The record's fields must alias buf, not copies of it.
	buf[1] = 'X'
	buf[8] = 'T'
	if string(rec.ID) != "Xd one" || string(rec.Seq) != "TCGT" {
		t.Fatalf("fields are not views into the buffer: ID=%q Seq=%q", rec.ID, rec.Seq)
	}
}

func TestChunkScannerReset(t *testing.T) {
	s := NewChunkScanner([]byte("@a\nA\n+\nI\n"))
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	s.Reset([]byte("@b\nCC\n+\nII\n"))
	if s.Count() != 0 || s.Offset() != 0 {
		t.Fatal("Reset did not rewind counters")
	}
	rec, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.ID) != "b" || string(rec.Seq) != "CC" {
		t.Fatalf("wrong record after Reset: %q/%q", rec.ID, rec.Seq)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after last record, got %v", err)
	}
}
