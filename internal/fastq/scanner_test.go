package fastq

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drainReader collects every record (cloned) and the terminating error from
// the streaming Reader.
func drainReader(data []byte) ([]Record, []int64, error) {
	r := NewReader(bytes.NewReader(data))
	var recs []Record
	var offs []int64
	for {
		rec, err := r.Next()
		if err != nil {
			return recs, offs, err
		}
		recs = append(recs, rec.Clone())
		offs = append(offs, r.Offset())
	}
}

// drainScanner collects every record and the terminating error from the
// zero-copy ChunkScanner. No cloning: scanner records stay valid.
func drainScanner(data []byte) ([]Record, []int64, error) {
	s := NewChunkScanner(data)
	var recs []Record
	var offs []int64
	for {
		rec, err := s.Next()
		if err != nil {
			return recs, offs, err
		}
		recs = append(recs, rec)
		offs = append(offs, s.Offset())
	}
}

// checkParity asserts the two parsers agree byte-for-byte on records,
// per-record offsets, and the terminating error.
func checkParity(t *testing.T, data []byte) {
	t.Helper()
	rRecs, rOffs, rErr := drainReader(data)
	sRecs, sOffs, sErr := drainScanner(data)
	if len(rRecs) != len(sRecs) {
		t.Fatalf("record count: Reader %d, ChunkScanner %d", len(rRecs), len(sRecs))
	}
	for i := range rRecs {
		if !Equal(rRecs[i], sRecs[i]) {
			t.Fatalf("record %d differs: Reader %q/%q/%q, ChunkScanner %q/%q/%q",
				i, rRecs[i].ID, rRecs[i].Seq, rRecs[i].Qual,
				sRecs[i].ID, sRecs[i].Seq, sRecs[i].Qual)
		}
		if rOffs[i] != sOffs[i] {
			t.Fatalf("record %d offset: Reader %d, ChunkScanner %d", i, rOffs[i], sOffs[i])
		}
	}
	if (rErr == nil) != (sErr == nil) {
		t.Fatalf("error presence differs: Reader %v, ChunkScanner %v", rErr, sErr)
	}
	if errors.Is(rErr, io.EOF) != errors.Is(sErr, io.EOF) ||
		errors.Is(rErr, ErrFormat) != errors.Is(sErr, ErrFormat) {
		t.Fatalf("error class differs: Reader %v, ChunkScanner %v", rErr, sErr)
	}
	if rErr != nil && !errors.Is(rErr, io.EOF) && rErr.Error() != sErr.Error() {
		t.Fatalf("error text differs:\n  Reader:       %v\n  ChunkScanner: %v", rErr, sErr)
	}
}

func TestChunkScannerParity(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"single":            "@r1\nACGT\n+\nIIII\n",
		"two records":       "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+\nJJJJ\n",
		"no final newline":  "@r1\nACGT\n+\nIIII",
		"crlf":              "@r1\r\nACGT\r\n+\r\nIIII\r\n",
		"crlf no final LF":  "@r1\r\nACGT\r\n+\r\nIIII\r",
		"plus with comment": "@r1\nACGT\n+r1 extra\nIIII\n",
		"empty seq":         "@r1\n\n+\n\n",
		"missing at":        "r1\nACGT\n+\nIIII\n",
		"empty header":      "\nACGT\n+\nIIII\n",
		"truncated header":  "@r1",
		"truncated seq":     "@r1\nACGT",
		"truncated sep":     "@r1\nACGT\n",
		"bad sep":           "@r1\nACGT\n-\nIIII\n",
		"empty sep":         "@r1\nACGT\n\nIIII\n",
		"truncated qual":    "@r1\nACGT\n+\n",
		"qual length":       "@r1\nACGT\n+\nIII\n",
		"second record bad": "@r1\nACGT\n+\nIIII\n@r2\nAC\n+\nI\n",
		"garbage":           "not fastq at all",
		"only newlines":     "\n\n\n\n",
		"blank then record": "\n@r1\nACGT\n+\nIIII\n",
		"lone cr line":      "@r1\nAC\rGT\n+\nIIIII\n",
		"nul bytes":         "@r\x001\nAC\n+\nII\n",
		"many records":      strings.Repeat("@r\nA\n+\nI\n", 500),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) { checkParity(t, []byte(data)) })
	}
}

// TestChunkScannerParityLongLine covers lines beyond the streaming Reader's
// 256 KiB bufio buffer, which exercise its ErrBufferFull accumulation path.
func TestChunkScannerParityLongLine(t *testing.T) {
	long := bytes.Repeat([]byte("ACGT"), 80<<10) // 320 KiB sequence
	var in bytes.Buffer
	in.WriteString("@long read 1\n")
	in.Write(long)
	in.WriteString("\n+\n")
	in.Write(bytes.Repeat([]byte("I"), len(long)))
	in.WriteString("\n@tail\nAC\n+\nII\n")
	checkParity(t, in.Bytes())

	// And a truncated variant ending inside the long quality line.
	trunc := in.Bytes()[:in.Len()/2]
	checkParity(t, trunc)
}

func TestChunkScannerZeroCopy(t *testing.T) {
	buf := []byte("@id one\nACGT\n+\nIIII\n")
	s := NewChunkScanner(buf)
	rec, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The record's fields must alias buf, not copies of it.
	buf[1] = 'X'
	buf[8] = 'T'
	if string(rec.ID) != "Xd one" || string(rec.Seq) != "TCGT" {
		t.Fatalf("fields are not views into the buffer: ID=%q Seq=%q", rec.ID, rec.Seq)
	}
}

func TestChunkScannerReset(t *testing.T) {
	s := NewChunkScanner([]byte("@a\nA\n+\nI\n"))
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	s.Reset([]byte("@b\nCC\n+\nII\n"))
	if s.Count() != 0 || s.Offset() != 0 {
		t.Fatal("Reset did not rewind counters")
	}
	rec, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.ID) != "b" || string(rec.Seq) != "CC" {
		t.Fatalf("wrong record after Reset: %q/%q", rec.ID, rec.Seq)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after last record, got %v", err)
	}
}

// drainScannerRaw collects records, raw spans and verbatim flags from
// NextRaw, plus the terminating error.
func drainScannerRaw(data []byte) ([]Record, [][]byte, []bool, error) {
	s := NewChunkScanner(data)
	var recs []Record
	var raws [][]byte
	var verbs []bool
	for {
		rec, raw, verbatim, err := s.NextRaw()
		if err != nil {
			return recs, raws, verbs, err
		}
		recs = append(recs, rec)
		raws = append(raws, raw)
		verbs = append(verbs, verbatim)
	}
}

// TestNextRawParity asserts NextRaw parses and fails exactly like Next on the
// full ChunkScanner corpus, and that its extras obey their contracts: raw
// spans tile the consumed buffer with no gaps, and verbatim is true exactly
// when raw equals the record's canonical Bytes encoding.
func TestNextRawParity(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"single":            "@r1\nACGT\n+\nIIII\n",
		"two records":       "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+\nJJJJ\n",
		"no final newline":  "@r1\nACGT\n+\nIIII",
		"crlf":              "@r1\r\nACGT\r\n+\r\nIIII\r\n",
		"cr qual only":      "@r1\nACGT\n+\nIIII\r\n@r2\nGG\n+\nJJ\n",
		"plus with comment": "@r1\nACGT\n+r1 extra\nIIII\n",
		"empty seq":         "@r1\n\n+\n\n",
		"missing at":        "r1\nACGT\n+\nIIII\n",
		"truncated seq":     "@r1\nACGT",
		"bad sep":           "@r1\nACGT\n-\nIIII\n",
		"qual length":       "@r1\nACGT\n+\nIII\n",
		"second record bad": "@r1\nACGT\n+\nIIII\n@r2\nAC\n+\nI\n",
		"mixed verbatim":    "@a\nAC\n+\nII\n@b\nGG\n+x\nJJ\n@c\nTT\n+\nKK\n",
		"many records":      strings.Repeat("@r\nA\n+\nI\n", 500),
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			data := []byte(input)
			nRecs, _, nErr := drainScanner(data)
			rRecs, raws, verbs, rErr := drainScannerRaw(data)
			if len(nRecs) != len(rRecs) {
				t.Fatalf("record count: Next %d, NextRaw %d", len(nRecs), len(rRecs))
			}
			if (nErr == nil) != (rErr == nil) ||
				errors.Is(nErr, io.EOF) != errors.Is(rErr, io.EOF) ||
				errors.Is(nErr, ErrFormat) != errors.Is(rErr, ErrFormat) {
				t.Fatalf("errors differ: Next %v, NextRaw %v", nErr, rErr)
			}
			if nErr != nil && !errors.Is(nErr, io.EOF) && nErr.Error() != rErr.Error() {
				t.Fatalf("error text differs:\n  Next:    %v\n  NextRaw: %v", nErr, rErr)
			}
			pos := 0
			for i := range rRecs {
				if !Equal(nRecs[i], rRecs[i]) {
					t.Fatalf("record %d differs between Next and NextRaw", i)
				}
				// Raw spans must tile the buffer: each starts where the
				// previous ended.
				if &raws[i][0] != &data[pos] {
					t.Fatalf("record %d: raw span does not start at offset %d", i, pos)
				}
				pos += len(raws[i])
				canon := rRecs[i].Bytes(nil)
				if got := bytes.Equal(raws[i], canon); got != verbs[i] {
					t.Fatalf("record %d: verbatim=%v but raw==canonical is %v (raw %q, canonical %q)",
						i, verbs[i], got, raws[i], canon)
				}
			}
		})
	}
}

// TestNextRawVerbatimFlags pins the verbatim decision per non-canonical
// feature: CRLF anywhere, a decorated '+' line, or a missing final newline
// must force re-encoding; canonical records must not.
func TestNextRawVerbatimFlags(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []bool
	}{
		{"canonical", "@r1\nACGT\n+\nIIII\n", []bool{true}},
		{"crlf", "@r1\r\nACGT\r\n+\r\nIIII\r\n", []bool{false}},
		{"cr on qual only", "@r1\nACGT\n+\nIIII\r\n", []bool{false}},
		{"plus comment", "@r1\nACGT\n+r1\nIIII\n", []bool{false}},
		{"no final newline", "@r1\nACGT\n+\nIIII", []bool{false}},
		{"mixed", "@a\nAC\n+\nII\n@b\nGG\n+x\nJJ\n@c\nTT\n+\nKK", []bool{true, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, verbs, err := drainScannerRaw([]byte(tc.input))
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			if len(verbs) != len(tc.want) {
				t.Fatalf("got %d records, want %d", len(verbs), len(tc.want))
			}
			for i := range tc.want {
				if verbs[i] != tc.want[i] {
					t.Errorf("record %d: verbatim = %v, want %v", i, verbs[i], tc.want[i])
				}
			}
		})
	}
}

// TestWriteRawMatchesWrite checks the two writer paths produce identical
// output and identical accounting for canonical input.
func TestWriteRawMatchesWrite(t *testing.T) {
	input := []byte("@r1 pair/1\nACGTACGT\n+\nIIIIJJJJ\n@r2\nGG\n+\nKK\n")

	var viaWrite bytes.Buffer
	wr := NewWriter(&viaWrite)
	var viaRaw bytes.Buffer
	rw := NewWriter(&viaRaw)

	s := NewChunkScanner(input)
	for {
		rec, raw, verbatim, err := s.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !verbatim {
			t.Fatalf("canonical input flagged non-verbatim: %q", raw)
		}
		if err := wr.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := rw.WriteRaw(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaWrite.Bytes(), viaRaw.Bytes()) {
		t.Fatalf("outputs differ:\n  Write:    %q\n  WriteRaw: %q", viaWrite.Bytes(), viaRaw.Bytes())
	}
	if !bytes.Equal(viaRaw.Bytes(), input) {
		t.Fatalf("WriteRaw did not round-trip the input")
	}
	if wr.Count() != rw.Count() || wr.BytesWritten() != rw.BytesWritten() {
		t.Fatalf("accounting differs: Write (%d, %d), WriteRaw (%d, %d)",
			wr.Count(), wr.BytesWritten(), rw.Count(), rw.BytesWritten())
	}
}

// TestReaderVerbatim checks Reader.Verbatim agrees with the scanner's
// NextRaw verbatim classification on the same inputs — the index builder
// relies on it to mark chunks the zero-copy CC-I/O path may blit unparsed.
func TestReaderVerbatim(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []bool
	}{
		{"canonical", "@r1\nACGT\n+\nIIII\n", []bool{true}},
		{"crlf", "@r1\r\nACGT\r\n+\r\nIIII\r\n", []bool{false}},
		{"cr on qual only", "@r1\nACGT\n+\nIIII\r\n", []bool{false}},
		{"plus comment", "@r1\nACGT\n+r1\nIIII\n", []bool{false}},
		{"no final newline", "@r1\nACGT\n+\nIIII", []bool{false}},
		{"mixed", "@a\nAC\n+\nII\n@b\nGG\n+x\nJJ\n@c\nTT\n+\nKK", []bool{true, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.input))
			var got []bool
			for {
				_, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, r.Verbatim())
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d records, want %d", len(got), len(tc.want))
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("record %d: Verbatim = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
