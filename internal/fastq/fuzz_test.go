package fastq

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the parser: it must never panic, and
// everything it accepts must round-trip through the writer.
func FuzzReader(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("@x\nACGT\n+\nIIII"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("@a\r\nAC\r\n+\r\nII\r\n"))
	f.Add(bytes.Repeat([]byte("@r\nA\n+\nI\n"), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			// Fields containing '\r' parse fine but cannot be re-encoded
			// faithfully (the reader normalizes CRLF), so exclude them from
			// the round-trip oracle.
			if bytes.ContainsRune(rec.ID, '\r') || bytes.ContainsRune(rec.Seq, '\r') ||
				bytes.ContainsRune(rec.Qual, '\r') {
				continue
			}
			recs = append(recs, rec.Clone())
		}
		// Round trip whatever parsed.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rr := NewReader(&buf)
		for i := range recs {
			got, err := rr.Next()
			if err != nil {
				t.Fatalf("record %d did not round trip: %v", i, err)
			}
			if !Equal(got, recs[i]) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
		if _, err := rr.Next(); err != io.EOF {
			t.Fatalf("extra records after round trip: %v", err)
		}
	})
}

// FuzzScannerParity checks that the zero-copy ChunkScanner and the streaming
// Reader are observationally identical on arbitrary bytes: same records in
// the same order, same terminating error class and text.
func FuzzScannerParity(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("@x\nACGT\n+\nIIII"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("@a\r\nAC\r\n+\r\nII\r\n"))
	f.Add(bytes.Repeat([]byte("@r\nA\n+\nI\n"), 100))
	f.Add([]byte("@r1\nACGT\n+\nIII\n"))
	f.Add([]byte("@r1\nACGT\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		s := NewChunkScanner(data)
		for i := 0; ; i++ {
			rRec, rErr := r.Next()
			sRec, sErr := s.Next()
			if (rErr == nil) != (sErr == nil) {
				t.Fatalf("record %d: Reader err %v, ChunkScanner err %v", i, rErr, sErr)
			}
			if rErr != nil {
				if (rErr == io.EOF) != (sErr == io.EOF) ||
					rErr != io.EOF && rErr.Error() != sErr.Error() {
					t.Fatalf("record %d: errors differ:\n  Reader:       %v\n  ChunkScanner: %v", i, rErr, sErr)
				}
				return
			}
			if !Equal(rRec, sRec) {
				t.Fatalf("record %d differs: Reader %q/%q/%q, ChunkScanner %q/%q/%q",
					i, rRec.ID, rRec.Seq, rRec.Qual, sRec.ID, sRec.Seq, sRec.Qual)
			}
			if r.Offset() != s.Offset() || r.Count() != s.Count() {
				t.Fatalf("record %d: offset/count diverge: Reader %d/%d, ChunkScanner %d/%d",
					i, r.Offset(), r.Count(), s.Offset(), s.Count())
			}
		}
	})
}

// FuzzTrimQuality checks the trimmer's invariants on arbitrary inputs.
func FuzzTrimQuality(f *testing.F) {
	f.Add([]byte("ACGT"), []byte("IIII"), 20)
	f.Add([]byte(""), []byte(""), 5)
	f.Fuzz(func(t *testing.T, seq, qual []byte, minQ int) {
		if len(seq) != len(qual) {
			return
		}
		got := TrimQuality(Record{Seq: seq, Qual: qual}, minQ)
		if len(got.Seq) != len(got.Qual) {
			t.Fatal("seq/qual parity broken")
		}
		if len(got.Seq) > len(seq) {
			t.Fatal("trim grew the read")
		}
		for i := range got.Seq {
			_ = got.Seq[i]
		}
	})
}
