package fastq

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the parser: it must never panic, and
// everything it accepts must round-trip through the writer.
func FuzzReader(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("@x\nACGT\n+\nIIII"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("@a\r\nAC\r\n+\r\nII\r\n"))
	f.Add(bytes.Repeat([]byte("@r\nA\n+\nI\n"), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			// Fields containing '\r' parse fine but cannot be re-encoded
			// faithfully (the reader normalizes CRLF), so exclude them from
			// the round-trip oracle.
			if bytes.ContainsRune(rec.ID, '\r') || bytes.ContainsRune(rec.Seq, '\r') ||
				bytes.ContainsRune(rec.Qual, '\r') {
				continue
			}
			recs = append(recs, rec.Clone())
		}
		// Round trip whatever parsed.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rr := NewReader(&buf)
		for i := range recs {
			got, err := rr.Next()
			if err != nil {
				t.Fatalf("record %d did not round trip: %v", i, err)
			}
			if !Equal(got, recs[i]) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
		if _, err := rr.Next(); err != io.EOF {
			t.Fatalf("extra records after round trip: %v", err)
		}
	})
}

// FuzzTrimQuality checks the trimmer's invariants on arbitrary inputs.
func FuzzTrimQuality(f *testing.F) {
	f.Add([]byte("ACGT"), []byte("IIII"), 20)
	f.Add([]byte(""), []byte(""), 5)
	f.Fuzz(func(t *testing.T, seq, qual []byte, minQ int) {
		if len(seq) != len(qual) {
			return
		}
		got := TrimQuality(Record{Seq: seq, Qual: qual}, minQ)
		if len(got.Seq) != len(got.Qual) {
			t.Fatal("seq/qual parity broken")
		}
		if len(got.Seq) > len(seq) {
			t.Fatal("trim grew the read")
		}
		for i := range got.Seq {
			_ = got.Seq[i]
		}
	})
}
