// Package fastq implements reading, writing and logical chunking of FASTQ
// sequence files, the input and output format of the METAPREP pipeline.
//
// A FASTQ record is four lines: an @-prefixed header, the base sequence, a
// +-prefixed separator, and a quality string of the same length as the
// sequence. The pipeline never interprets quality values; it carries them
// through to the partitioned output files.
//
// Paired-end data is handled in interleaved form: records 2i and 2i+1 are
// the two mates of pair i and share a single global read ID, as required by
// §3.2 of the paper ("we use a single read identifier for both ends of a
// paired-end read"). The Interleave helper converts two mate files into
// this form.
package fastq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
)

// Record is a single FASTQ entry. The byte slices returned by Reader.Next
// are views into an internal buffer and are only valid until the following
// Next call; use Clone to retain one.
type Record struct {
	// ID is the header line without the leading '@'.
	ID []byte
	// Seq is the base sequence (typically ACGT and N).
	Seq []byte
	// Qual is the per-base quality string, the same length as Seq.
	Qual []byte
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	return Record{
		ID:   append([]byte(nil), r.ID...),
		Seq:  append([]byte(nil), r.Seq...),
		Qual: append([]byte(nil), r.Qual...),
	}
}

// Bytes appends the four-line FASTQ encoding of the record to dst and
// returns the extended slice.
func (r Record) Bytes(dst []byte) []byte {
	dst = append(dst, '@')
	dst = append(dst, r.ID...)
	dst = append(dst, '\n')
	dst = append(dst, r.Seq...)
	dst = append(dst, "\n+\n"...)
	dst = append(dst, r.Qual...)
	dst = append(dst, '\n')
	return dst
}

// EncodedLen returns the number of bytes Bytes would append.
func (r Record) EncodedLen() int {
	return 1 + len(r.ID) + 1 + len(r.Seq) + 3 + len(r.Qual) + 1
}

// ErrFormat reports malformed FASTQ input.
var ErrFormat = errors.New("fastq: malformed input")

// Reader streams FASTQ records from an io.Reader and tracks byte offsets,
// which the index builder uses to place chunk boundaries at record starts.
type Reader struct {
	br  *bufio.Reader
	rec Record
	// off is the byte offset of the next unread record relative to the
	// start of the underlying reader.
	off int64
	// n is the number of records returned so far.
	n int64
	// lineNL and lineCR describe the last readLine call: whether the line
	// was '\n'-terminated and whether a trailing '\r' was stripped.
	lineNL, lineCR bool
	// verbatim reports whether the last record's on-disk bytes equal its
	// canonical Record.Bytes encoding (see Verbatim).
	verbatim bool
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 256<<10)}
}

// Offset returns the byte offset of the next unread record.
func (r *Reader) Offset() int64 { return r.off }

// Count returns the number of records read so far.
func (r *Reader) Count() int64 { return r.n }

// readLine reads one newline-terminated line, stripping the trailing '\n'
// (and '\r' for CRLF input), appending into buf and returning the line.
func (r *Reader) readLine() ([]byte, error) {
	r.lineNL, r.lineCR = false, false
	line, err := r.br.ReadSlice('\n')
	n := len(line)
	if err == bufio.ErrBufferFull {
		// Very long line: fall back to accumulation.
		acc := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.br.ReadSlice('\n')
			acc = append(acc, line...)
		}
		n = len(acc)
		line = acc
	}
	if err != nil {
		if err == io.EOF && n > 0 {
			// Final line without trailing newline (still strip a stray '\r'
			// so CRLF input parses identically with or without the last LF).
			r.off += int64(n)
			if line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
				r.lineCR = true
			}
			return line, nil
		}
		return nil, err
	}
	r.off += int64(n)
	r.lineNL = true
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
		r.lineCR = true
	}
	return line, nil
}

// Next returns the next record, or io.EOF after the last one. The returned
// record's slices are valid only until the following Next call.
func (r *Reader) Next() (Record, error) {
	hdr, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	verb := r.lineNL && !r.lineCR
	if len(hdr) == 0 || hdr[0] != '@' {
		return Record{}, fmt.Errorf("%w: record %d: header %q does not start with '@'", ErrFormat, r.n, clip(hdr))
	}
	r.rec.ID = append(r.rec.ID[:0], hdr[1:]...)
	seq, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated after header", ErrFormat, r.n)
	}
	verb = verb && r.lineNL && !r.lineCR
	r.rec.Seq = append(r.rec.Seq[:0], seq...)
	sep, err := r.readLine()
	if err != nil || len(sep) == 0 || sep[0] != '+' {
		return Record{}, fmt.Errorf("%w: record %d: bad '+' separator line", ErrFormat, r.n)
	}
	verb = verb && r.lineNL && !r.lineCR && len(sep) == 1
	qual, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: truncated quality line", ErrFormat, r.n)
	}
	verb = verb && r.lineNL && !r.lineCR
	if len(qual) != len(seq) {
		return Record{}, fmt.Errorf("%w: record %d: quality length %d != sequence length %d",
			ErrFormat, r.n, len(qual), len(seq))
	}
	r.rec.Qual = append(r.rec.Qual[:0], qual...)
	r.verbatim = verb
	r.n++
	return r.rec, nil
}

// Verbatim reports whether the record most recently returned by Next was
// stored in canonical form — '\n'-only line endings, a bare '+' separator,
// and a trailing newline — i.e. its on-disk bytes equal Record.Bytes. The
// index builder records this per chunk so the zero-copy CC-I/O path can blit
// whole chunks without re-parsing them.
func (r *Reader) Verbatim() bool { return r.verbatim }

func clip(b []byte) []byte {
	if len(b) > 40 {
		return b[:40]
	}
	return b
}

// Writer buffers and writes FASTQ records.
type Writer struct {
	bw    *bufio.Writer
	n     int64
	bytes int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 256<<10)}
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	w.n++
	buf := w.bw.AvailableBuffer()
	n, err := w.bw.Write(rec.Bytes(buf))
	w.bytes += int64(n)
	return err
}

// WriteRaw appends one record's pre-serialized bytes verbatim — the
// zero-copy CC-I/O path. raw must be exactly one record in canonical form
// (ChunkScanner.NextRaw's verbatim contract), so Count and BytesWritten stay
// consistent with the Write path.
func (w *Writer) WriteRaw(raw []byte) error { return w.WriteRawN(raw, 1) }

// WriteRawN appends a contiguous span of n canonical records in one write —
// the run-coalesced blit of the zero-copy CC-I/O path, which batches every
// adjacent record bound for the same output file into a single copy.
func (w *Writer) WriteRawN(raw []byte, n int64) error {
	w.n += n
	m, err := w.bw.Write(raw)
	w.bytes += int64(m)
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// BytesWritten returns the serialized size of every record written so far
// (buffered or flushed) — the CC-I/O output-volume figure the pipeline's
// counter snapshot reports.
func (w *Writer) BytesWritten() int64 { return w.bytes }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Interleave merges two mate files (streams) into interleaved paired FASTQ
// on w: mate1[i] then mate2[i] for each pair i. It returns the number of
// pairs written, and an error if the streams have different record counts.
func Interleave(mate1, mate2 io.Reader, w io.Writer) (int64, error) {
	r1, r2 := NewReader(mate1), NewReader(mate2)
	out := NewWriter(w)
	var pairs int64
	for {
		a, err1 := r1.Next()
		b, err2 := r2.Next()
		if err1 == io.EOF && err2 == io.EOF {
			return pairs, out.Flush()
		}
		if err1 != nil || err2 != nil {
			if err1 == io.EOF || err2 == io.EOF {
				return pairs, fmt.Errorf("%w: mate files have different record counts", ErrFormat)
			}
			if err1 != nil {
				return pairs, err1
			}
			return pairs, err2
		}
		if err := out.Write(a); err != nil {
			return pairs, err
		}
		if err := out.Write(b); err != nil {
			return pairs, err
		}
		pairs++
	}
}

// CountRecords scans r and returns the number of FASTQ records it holds.
func CountRecords(r io.Reader) (int64, error) {
	fr := NewReader(r)
	for {
		_, err := fr.Next()
		if err == io.EOF {
			return fr.Count(), nil
		}
		if err != nil {
			return fr.Count(), err
		}
	}
}

// Equal reports whether two records have identical ID, sequence and quality.
func Equal(a, b Record) bool {
	return bytes.Equal(a.ID, b.ID) && bytes.Equal(a.Seq, b.Seq) && bytes.Equal(a.Qual, b.Qual)
}

// TrimQuality trims low-quality tails from a record in place, the standard
// pre-assembly cleanup: scanning from each end, bases whose Phred score
// (Qual byte − 33) is below minQ are removed until a passing base is found.
// It returns the trimmed record (views into the same backing arrays).
func TrimQuality(rec Record, minQ int) Record {
	lo, hi := 0, len(rec.Seq)
	for lo < hi && int(rec.Qual[lo])-33 < minQ {
		lo++
	}
	for hi > lo && int(rec.Qual[hi-1])-33 < minQ {
		hi--
	}
	rec.Seq = rec.Seq[lo:hi]
	rec.Qual = rec.Qual[lo:hi]
	return rec
}

// Open opens a FASTQ file for streaming, transparently decompressing
// gzip-compressed inputs (".gz" suffix or gzip magic bytes). The returned
// ReadCloser must be closed by the caller.
//
// Only the streaming consumers (normalization, counting, assembly,
// interleaving) accept gzip: the pipeline itself requires uncompressed
// files because FASTQPart chunking needs random access (§3.1.2).
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1F && magic[1] == 0x8B {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fastq: %s: %w", path, err)
		}
		return &gzFile{gz: gz, f: f}, nil
	}
	return &bufFile{br: br, f: f}, nil
}

// gzFile couples a gzip reader with its underlying file for Close.
type gzFile struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzFile) Read(p []byte) (int, error) { return g.gz.Read(p) }
func (g *gzFile) Close() error {
	gerr := g.gz.Close()
	ferr := g.f.Close()
	if gerr != nil {
		return gerr
	}
	return ferr
}

// bufFile couples the peeked buffered reader with its file.
type bufFile struct {
	br *bufio.Reader
	f  *os.File
}

func (b *bufFile) Read(p []byte) (int, error) { return b.br.Read(p) }
func (b *bufFile) Close() error               { return b.f.Close() }
