package fastq

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = "@r1 first\nACGT\n+\nIIII\n@r2\nGGCC\n+r2\nJJJJ\n"

func TestReaderBasic(t *testing.T) {
	r := NewReader(strings.NewReader(sample))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.ID) != "r1 first" || string(rec.Seq) != "ACGT" || string(rec.Qual) != "IIII" {
		t.Errorf("record 1 = %q %q %q", rec.ID, rec.Seq, rec.Qual)
	}
	if r.Offset() != 22 {
		t.Errorf("offset after record 1 = %d, want 22", r.Offset())
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.ID) != "r2" || string(rec.Seq) != "GGCC" {
		t.Errorf("record 2 = %q %q", rec.ID, rec.Seq)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d, want 2", r.Count())
	}
}

func TestReaderRecordViewInvalidation(t *testing.T) {
	r := NewReader(strings.NewReader(sample))
	rec1, _ := r.Next()
	keep := rec1.Clone()
	_, _ = r.Next()
	if string(keep.Seq) != "ACGT" {
		t.Error("Clone did not preserve record across Next")
	}
}

func TestReaderCRLF(t *testing.T) {
	r := NewReader(strings.NewReader("@a\r\nACGT\r\n+\r\nIIII\r\n"))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Seq) != "ACGT" || string(rec.Qual) != "IIII" {
		t.Errorf("CRLF parse = %q %q", rec.Seq, rec.Qual)
	}
}

func TestReaderNoTrailingNewline(t *testing.T) {
	r := NewReader(strings.NewReader("@a\nACGT\n+\nIIII"))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Qual) != "IIII" {
		t.Errorf("qual = %q", rec.Qual)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestReaderQualityStartingWithAtAndPlus(t *testing.T) {
	// Quality strings may begin with '@' or '+'; the 4-line structure must
	// disambiguate.
	in := "@a\nACGT\n+\n@+I+\n@b\nTTTT\n+\n++++\n"
	r := NewReader(strings.NewReader(in))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("parsed %d records, want 2", n)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no-at", "r1\nACGT\n+\nIIII\n"},
		{"bad-sep", "@r1\nACGT\n-\nIIII\n"},
		{"qual-len", "@r1\nACGT\n+\nII\n"},
		{"truncated", "@r1\nACGT\n"},
		{"empty-header", "\nACGT\n+\nIIII\n"},
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c.in))
		if _, err := r.Next(); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", c.name, err)
		}
	}
}

func TestReaderVeryLongLine(t *testing.T) {
	seq := strings.Repeat("ACGT", 200<<10/4) // 200 KiB, larger than buffer
	in := "@long\n" + seq + "\n+\n" + strings.Repeat("I", len(seq)) + "\n@next\nAC\n+\nII\n"
	r := NewReader(strings.NewReader(in))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Seq) != len(seq) {
		t.Fatalf("long seq len = %d, want %d", len(rec.Seq), len(seq))
	}
	rec, err = r.Next()
	if err != nil || string(rec.ID) != "next" {
		t.Fatalf("record after long line: %v %q", err, rec.ID)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var recs []Record
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(200)
		seq := make([]byte, n)
		qual := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGTN"[rng.Intn(5)]
			qual[j] = byte('!' + rng.Intn(40))
		}
		recs = append(recs, Record{
			ID:   []byte(strings.Repeat("x", 1+rng.Intn(20))),
			Seq:  seq,
			Qual: qual,
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	total := 0
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		total += rec.EncodedLen()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Errorf("writer Count = %d", w.Count())
	}
	if buf.Len() != total {
		t.Errorf("encoded size = %d, EncodedLen sum = %d", buf.Len(), total)
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !Equal(got, want) {
			t.Fatalf("record %d: got %q %q %q", i, got.ID, got.Seq, got.Qual)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestOffsetsAreRecordBoundaries(t *testing.T) {
	// Reading from any recorded offset must yield the remaining records.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		seq := bytes.Repeat([]byte{"ACGT"[i%4]}, i+1)
		_ = w.Write(Record{ID: []byte{byte('a' + i)}, Seq: seq, Qual: bytes.Repeat([]byte("I"), i+1)})
	}
	_ = w.Flush()
	data := buf.Bytes()

	r := NewReader(bytes.NewReader(data))
	var offs []int64
	for {
		offs = append(offs, r.Offset())
		if _, err := r.Next(); err == io.EOF {
			break
		}
	}
	for i, off := range offs[:len(offs)-1] {
		sub := NewReader(bytes.NewReader(data[off:]))
		rec, err := sub.Next()
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if rec.ID[0] != byte('a'+i) {
			t.Fatalf("offset %d: got record %q, want %c", off, rec.ID, 'a'+i)
		}
	}
}

func TestInterleave(t *testing.T) {
	m1 := "@p1/1\nAAAA\n+\nIIII\n@p2/1\nCCCC\n+\nIIII\n"
	m2 := "@p1/2\nGGGG\n+\nIIII\n@p2/2\nTTTT\n+\nIIII\n"
	var out bytes.Buffer
	pairs, err := Interleave(strings.NewReader(m1), strings.NewReader(m2), &out)
	if err != nil || pairs != 2 {
		t.Fatalf("Interleave = %d, %v", pairs, err)
	}
	r := NewReader(&out)
	wantIDs := []string{"p1/1", "p1/2", "p2/1", "p2/2"}
	for _, want := range wantIDs {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.ID) != want {
			t.Errorf("got %q want %q", rec.ID, want)
		}
	}
}

func TestInterleaveMismatchedCounts(t *testing.T) {
	m1 := "@p1/1\nAAAA\n+\nIIII\n@p2/1\nCCCC\n+\nIIII\n"
	m2 := "@p1/2\nGGGG\n+\nIIII\n"
	var out bytes.Buffer
	if _, err := Interleave(strings.NewReader(m1), strings.NewReader(m2), &out); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestCountRecords(t *testing.T) {
	n, err := CountRecords(strings.NewReader(sample))
	if err != nil || n != 2 {
		t.Errorf("CountRecords = %d, %v", n, err)
	}
	n, err = CountRecords(strings.NewReader(""))
	if err != nil || n != 0 {
		t.Errorf("CountRecords(empty) = %d, %v", n, err)
	}
}

func BenchmarkReader(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	seq := bytes.Repeat([]byte("ACGT"), 25)
	qual := bytes.Repeat([]byte("I"), 100)
	for i := 0; i < 1000; i++ {
		_ = w.Write(Record{ID: []byte("read"), Seq: seq, Qual: qual})
	}
	_ = w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			}
		}
	}
}

func BenchmarkWriter(b *testing.B) {
	seq := bytes.Repeat([]byte("ACGT"), 25)
	qual := bytes.Repeat([]byte("I"), 100)
	rec := Record{ID: []byte("read"), Seq: seq, Qual: qual}
	b.SetBytes(int64(rec.EncodedLen()))
	w := NewWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Write(rec)
	}
	_ = w.Flush()
}

func TestTrimQuality(t *testing.T) {
	cases := []struct {
		seq, qual string
		minQ      int
		want      string
	}{
		{"ACGTACGT", "IIIIIIII", 20, "ACGTACGT"}, // all high quality
		{"ACGTACGT", "##IIII##", 20, "GTAC"},     // both tails trimmed ('#'=Q2)
		{"ACGTACGT", "########", 20, ""},         // everything trimmed
		{"ACGT", "II#I", 20, "ACGT"},             // interior low-quality kept
		{"ACGT", "#III", 20, "CGT"},              // leading only
		{"ACGT", "III#", 20, "ACG"},              // trailing only
	}
	for _, c := range cases {
		got := TrimQuality(Record{Seq: []byte(c.seq), Qual: []byte(c.qual)}, c.minQ)
		if string(got.Seq) != c.want {
			t.Errorf("TrimQuality(%q,%q,%d) = %q, want %q", c.seq, c.qual, c.minQ, got.Seq, c.want)
		}
		if len(got.Seq) != len(got.Qual) {
			t.Errorf("trim broke seq/qual parity: %d vs %d", len(got.Seq), len(got.Qual))
		}
	}
}

func TestOpenPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	content := []byte(sample)
	plain := filepath.Join(dir, "plain.fastq")
	os.WriteFile(plain, content, 0o644)
	gzPath := filepath.Join(dir, "comp.fastq.gz")
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	gw.Write(content)
	gw.Close()
	os.WriteFile(gzPath, buf.Bytes(), 0o644)

	for _, path := range []string{plain, gzPath} {
		f, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		n, err := CountRecords(f)
		f.Close()
		if err != nil || n != 2 {
			t.Fatalf("%s: %d records, %v", path, n, err)
		}
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("Open accepted missing file")
	}
	// Corrupt gzip header after magic bytes.
	bad := filepath.Join(dir, "bad.gz")
	os.WriteFile(bad, []byte{0x1F, 0x8B, 0xFF}, 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("Open accepted corrupt gzip")
	}
}
