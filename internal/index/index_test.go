package index

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
)

// writeFastq writes n random records of the given read length to a file in
// dir and returns its path along with the record sequences.
func writeFastq(t *testing.T, dir, name string, rng *rand.Rand, n, readLen int) (string, [][]byte) {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	var seqs [][]byte
	for i := 0; i < n; i++ {
		seq := make([]byte, readLen)
		for j := range seq {
			if rng.Intn(50) == 0 {
				seq[j] = 'N'
			} else {
				seq[j] = "ACGT"[rng.Intn(4)]
			}
		}
		seqs = append(seqs, seq)
		qual := bytes.Repeat([]byte("I"), readLen)
		if err := w.Write(fastq.Record{ID: []byte{'r', byte('0' + i%10)}, Seq: seq, Qual: qual}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, seqs
}

// naiveHist computes the m-mer prefix histogram of all canonical k-mers.
func naiveHist(seqs [][]byte, k, m int) []uint64 {
	hist := make([]uint64, 1<<(2*uint(m)))
	for _, seq := range seqs {
		kmer.ForEach64(seq, k, func(_ int, km kmer.Kmer64) {
			hist[kmer.Prefix64(km, k, m)]++
		})
	}
	return hist
}

func smallOpts() Options {
	return Options{K: 11, M: 4, ChunkSize: 2000}
}

func TestBuildBasic(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	path, seqs := writeFastq(t, dir, "a.fastq", rng, 200, 80)
	idx, err := Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Records != 200 || idx.Reads != 200 {
		t.Errorf("Records=%d Reads=%d", idx.Records, idx.Reads)
	}
	if idx.TotalBases != 200*80 {
		t.Errorf("TotalBases=%d", idx.TotalBases)
	}
	want := naiveHist(seqs, 11, 4)
	if !reflect.DeepEqual(idx.MerHist, want) {
		t.Error("MerHist differs from naive histogram")
	}
	var totalK uint64
	for _, v := range want {
		totalK += v
	}
	if idx.TotalKmers != totalK {
		t.Errorf("TotalKmers=%d want %d", idx.TotalKmers, totalK)
	}
	if len(idx.Chunks) < 2 {
		t.Errorf("expected multiple chunks, got %d", len(idx.Chunks))
	}
}

func TestChunksCoverFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	p1, _ := writeFastq(t, dir, "a.fastq", rng, 150, 60)
	p2, _ := writeFastq(t, dir, "b.fastq", rng, 75, 100)
	idx, err := Build([]string{p1, p2}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Per file: chunks must tile [0, fileSize) without gaps, and record
	// counts must sum to the file's records.
	for fi, path := range idx.Files {
		st, _ := os.Stat(path)
		var off int64
		var recs int32
		for _, c := range idx.Chunks {
			if int(c.File) != fi {
				continue
			}
			if c.Offset != off {
				t.Fatalf("file %d: chunk at %d, expected %d", fi, c.Offset, off)
			}
			off += c.Size
			recs += c.Records
		}
		if off != st.Size() {
			t.Fatalf("file %d: chunks cover %d of %d bytes", fi, off, st.Size())
		}
		wantRecs := int32(150)
		if fi == 1 {
			wantRecs = 75
		}
		if recs != wantRecs {
			t.Fatalf("file %d: %d records, want %d", fi, recs, wantRecs)
		}
	}
	// FirstRead must be cumulative across files.
	if idx.Chunks[0].FirstRead != 0 {
		t.Error("first chunk FirstRead != 0")
	}
	if idx.Reads != 225 {
		t.Errorf("Reads=%d want 225", idx.Reads)
	}
}

func TestChunkBoundariesAreRecordStarts(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	path, _ := writeFastq(t, dir, "a.fastq", rng, 300, 70)
	idx, err := Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	for ci, c := range idx.Chunks {
		r := fastq.NewReader(io.NewSectionReader(f, c.Offset, c.Size))
		n := int32(0)
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
			n++
		}
		if n != c.Records {
			t.Fatalf("chunk %d: parsed %d records from range, table says %d", ci, n, c.Records)
		}
	}
}

func TestPairedReadIDs(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	path, _ := writeFastq(t, dir, "a.fastq", rng, 100, 90)
	opts := smallOpts()
	opts.Paired = true
	idx, err := Build([]string{path}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Reads != 50 {
		t.Errorf("paired Reads=%d want 50", idx.Reads)
	}
	// Chunks must start at even records: FirstRead*2 records precede them.
	var cum int32
	for ci := range idx.Chunks {
		c := &idx.Chunks[ci]
		if uint32(cum/2) != c.FirstRead {
			t.Fatalf("chunk %d: FirstRead=%d, %d records precede", ci, c.FirstRead, cum)
		}
		if cum%2 != 0 {
			t.Fatalf("chunk %d starts at odd record %d", ci, cum)
		}
		// ReadIDOf: mates share IDs.
		if c.Records >= 2 {
			if idx.ReadIDOf(c, 0) != idx.ReadIDOf(c, 1) {
				t.Fatal("mates 0,1 have different read IDs")
			}
			if c.Records >= 3 && idx.ReadIDOf(c, 2) != idx.ReadIDOf(c, 0)+1 {
				t.Fatal("read IDs not consecutive across pairs")
			}
		}
		cum += c.Records
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	p1, _ := writeFastq(t, dir, "a.fastq", rng, 200, 75)
	p2, _ := writeFastq(t, dir, "b.fastq", rng, 120, 75)
	seq, err := Build([]string{p1, p2}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	parl, err := BuildParallel([]string{p1, p2}, smallOpts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.MerHist, parl.MerHist) {
		t.Error("parallel MerHist differs")
	}
	if len(seq.Chunks) != len(parl.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(seq.Chunks), len(parl.Chunks))
	}
	for i := range seq.Chunks {
		a, b := seq.Chunks[i], parl.Chunks[i]
		if a.Offset != b.Offset || a.Size != b.Size || a.FirstRead != b.FirstRead || a.Records != b.Records {
			t.Fatalf("chunk %d metadata differs: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Hist, b.Hist) {
			t.Fatalf("chunk %d histogram differs", i)
		}
	}
}

func TestChunkHistsSumToGlobal(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	path, _ := writeFastq(t, dir, "a.fastq", rng, 250, 85)
	idx, err := Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]uint64, idx.Opts.Bins())
	for ci := range idx.Chunks {
		for b, v := range idx.Chunks[ci].Hist {
			sum[b] += uint64(v)
		}
	}
	if !reflect.DeepEqual(sum, idx.MerHist) {
		t.Error("chunk histograms do not sum to global histogram")
	}
}

func TestBuild128Path(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	path, seqs := writeFastq(t, dir, "a.fastq", rng, 60, 120)
	opts := Options{K: 63, M: 4, ChunkSize: 4000}
	idx, err := Build([]string{path}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, opts.Bins())
	for _, seq := range seqs {
		kmer.ForEach128(seq, 63, func(_ int, km kmer.Kmer128) {
			want[kmer.Prefix128(km, 63, 4)]++
		})
	}
	if !reflect.DeepEqual(idx.MerHist, want) {
		t.Error("63-mer MerHist differs from naive")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{K: 0, M: 4, ChunkSize: 100},
		{K: 64, M: 4, ChunkSize: 100},
		{K: 27, M: 0, ChunkSize: 100},
		{K: 27, M: 13, ChunkSize: 100},
		{K: 3, M: 4, ChunkSize: 100},
		{K: 27, M: 8, ChunkSize: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Errorf("Defaults invalid: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, smallOpts()); err == nil {
		t.Error("Build with no files succeeded")
	}
	if _, err := Build([]string{"/nonexistent/x.fastq"}, smallOpts()); err == nil {
		t.Error("Build with missing file succeeded")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fastq")
	os.WriteFile(bad, []byte("not fastq\n"), 0o644)
	if _, err := Build([]string{bad}, smallOpts()); err == nil {
		t.Error("Build with malformed file succeeded")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	p1, _ := writeFastq(t, dir, "a.fastq", rng, 180, 65)
	opts := smallOpts()
	opts.Paired = true
	idx, err := Build([]string{p1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.idx")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, got) {
		t.Error("round-tripped index differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	os.WriteFile(path, []byte("definitely not an index"), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("Load accepted garbage")
	}
	os.WriteFile(path, []byte(fileMagic+"trunc"), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("Load accepted truncated index")
	}
}

func TestMemoryBytes(t *testing.T) {
	idx := &Index{Opts: Options{K: 27, M: 4, ChunkSize: 100}}
	idx.Chunks = make([]Chunk, 3)
	// 8*256 + 4*256*3 = 2048 + 3072.
	if got := idx.MemoryBytes(); got != 2048+3072 {
		t.Errorf("MemoryBytes = %d", got)
	}
}

func TestPartitionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hist := make([]uint64, 256)
	for i := range hist {
		hist[i] = uint64(rng.Intn(1000))
	}
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {8, 16, 24}, {4, 2, 1}} {
		s, p, tt := dims[0], dims[1], dims[2]
		pt, err := NewPartition(hist, s, p, tt)
		if err != nil {
			t.Fatal(err)
		}
		// Pass ranges tile the bin space; task ranges tile each pass; thread
		// ranges tile each task.
		if lo, _ := pt.PassRange(0); lo != 0 {
			t.Fatal("first pass does not start at 0")
		}
		if _, hi := pt.PassRange(s - 1); hi != 256 {
			t.Fatal("last pass does not end at bin count")
		}
		for si := 0; si < s; si++ {
			plo, phi := pt.PassRange(si)
			if si > 0 {
				_, prevHi := pt.PassRange(si - 1)
				if plo != prevHi {
					t.Fatal("pass ranges do not tile")
				}
			}
			tlo, _ := pt.TaskRange(si, 0)
			_, thi := pt.TaskRange(si, p-1)
			if tlo != plo || thi != phi {
				t.Fatal("task ranges do not tile the pass")
			}
			for pi := 0; pi < p; pi++ {
				alo, ahi := pt.TaskRange(si, pi)
				wlo, _ := pt.ThreadRange(si, pi, 0)
				_, whi := pt.ThreadRange(si, pi, tt-1)
				if wlo != alo || whi != ahi {
					t.Fatal("thread ranges do not tile the task")
				}
			}
		}
	}
}

func TestPartitionOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	hist := make([]uint64, 1024)
	for i := range hist {
		hist[i] = uint64(rng.Intn(100))
	}
	pt, err := NewPartition(hist, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 1024; b++ {
		s := pt.PassOf(b)
		lo, hi := pt.PassRange(s)
		if b < lo || b >= hi {
			t.Fatalf("bin %d: PassOf=%d but range [%d,%d)", b, s, lo, hi)
		}
		p := pt.TaskOf(s, b)
		lo, hi = pt.TaskRange(s, p)
		if b < lo || b >= hi {
			t.Fatalf("bin %d: TaskOf=%d but range [%d,%d)", b, p, lo, hi)
		}
		th := pt.ThreadOf(s, p, b)
		lo, hi = pt.ThreadRange(s, p, th)
		if b < lo || b >= hi {
			t.Fatalf("bin %d: ThreadOf=%d but range [%d,%d)", b, th, lo, hi)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	// Uniform weights must split nearly evenly.
	hist := make([]uint64, 4096)
	for i := range hist {
		hist[i] = 10
	}
	pt, _ := NewPartition(hist, 4, 4, 1)
	total := uint64(4096 * 10)
	for s := 0; s < 4; s++ {
		lo, hi := pt.PassRange(s)
		w := RangeCount64(hist, lo, hi)
		if w < total/4-20 || w > total/4+20 {
			t.Errorf("pass %d weight %d, want ≈%d", s, w, total/4)
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	// More parts than bins: must stay monotone; empty ranges own nothing.
	hist := []uint64{5, 7}
	pt, err := NewPartition(hist, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		p := pt.TaskOf(0, b)
		lo, hi := pt.TaskRange(0, p)
		if b < lo || b >= hi {
			t.Fatalf("bin %d misowned by task %d [%d,%d)", b, p, lo, hi)
		}
	}
	if _, err := NewPartition(hist, 0, 1, 1); err == nil {
		t.Error("accepted S=0")
	}
}

func TestSegmentCounts(t *testing.T) {
	hist := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	cuts := []int{0, 3, 3, 8}
	got := SegmentCounts(nil, hist, cuts)
	want := []uint64{6, 0, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegmentCounts = %v, want %v", got, want)
	}
	if RangeCount(hist, 2, 5) != 12 {
		t.Error("RangeCount wrong")
	}
}

func TestVerify(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(40))
	path, _ := writeFastq(t, dir, "a.fastq", rng, 100, 70)
	idx, err := Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Verify(); err != nil {
		t.Fatalf("fresh index failed Verify: %v", err)
	}
	// Truncate the file: Verify must notice.
	if err := os.Truncate(path, 100); err != nil {
		t.Fatal(err)
	}
	if err := idx.Verify(); err == nil {
		t.Error("Verify accepted a truncated input")
	}
	// Remove it entirely.
	os.Remove(path)
	if err := idx.Verify(); err == nil {
		t.Error("Verify accepted a missing input")
	}
}

func TestMatePairsIndex(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(50))
	// Two file pairs: (a1,a2) with 60 pairs, (b1,b2) with 40 pairs.
	a1, _ := writeFastq(t, dir, "a1.fastq", rng, 60, 70)
	a2, _ := writeFastq(t, dir, "a2.fastq", rng, 60, 70)
	b1, _ := writeFastq(t, dir, "b1.fastq", rng, 40, 70)
	b2, _ := writeFastq(t, dir, "b2.fastq", rng, 40, 70)
	opts := smallOpts()
	opts.MatePairs = true
	idx, err := Build([]string{a1, a2, b1, b2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Reads != 100 {
		t.Fatalf("Reads = %d, want 100 pairs", idx.Reads)
	}
	if idx.Records != 200 {
		t.Fatalf("Records = %d", idx.Records)
	}
	// Read IDs: file a1 and a2 share IDs 0..59; b1/b2 share 60..99.
	idOf := func(fi int, rec int32) uint32 {
		for ci := range idx.Chunks {
			c := &idx.Chunks[ci]
			if int(c.File) == fi && rec >= int32(0) {
				// locate the chunk containing record rec of file fi
				var cum int32
				for cj := range idx.Chunks {
					d := &idx.Chunks[cj]
					if int(d.File) != fi {
						continue
					}
					if rec < cum+d.Records {
						return idx.ReadIDOf(d, rec-cum)
					}
					cum += d.Records
				}
			}
		}
		t.Fatalf("record %d of file %d not found", rec, fi)
		return 0
	}
	for _, rec := range []int32{0, 1, 33, 59} {
		if idOf(0, rec) != idOf(1, rec) {
			t.Fatalf("mates of pair %d have different IDs: %d vs %d", rec, idOf(0, rec), idOf(1, rec))
		}
		if idOf(0, rec) != uint32(rec) {
			t.Fatalf("pair %d has ID %d", rec, idOf(0, rec))
		}
	}
	if idOf(2, 0) != 60 || idOf(3, 39) != 99 {
		t.Fatalf("second file pair IDs wrong: %d, %d", idOf(2, 0), idOf(3, 39))
	}
	// Round-trips through serialization.
	path := filepath.Join(dir, "mp.idx")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Opts.MatePairs {
		t.Error("MatePairs flag lost in serialization")
	}
}

func TestMatePairsValidation(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(51))
	a1, _ := writeFastq(t, dir, "a1.fastq", rng, 30, 50)
	a2, _ := writeFastq(t, dir, "a2.fastq", rng, 20, 50) // mismatched count
	opts := smallOpts()
	opts.MatePairs = true
	if _, err := Build([]string{a1, a2}, opts); err == nil {
		t.Error("mismatched mate counts accepted")
	}
	if _, err := Build([]string{a1}, opts); err == nil {
		t.Error("odd file count accepted")
	}
	opts.Paired = true
	if err := opts.Validate(); err == nil {
		t.Error("Paired+MatePairs accepted")
	}
}

func TestBuildRejectsGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	os.WriteFile(path, []byte{0x1F, 0x8B, 0x08, 0x00}, 0o644)
	_, err := Build([]string{path}, smallOpts())
	if err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("gzip input not rejected clearly: %v", err)
	}
}

func TestPartitionPropertyQuick(t *testing.T) {
	// Property: for random histograms and dimensions, every bin is owned by
	// exactly the (pass, task, thread) whose ranges contain it, and ranges
	// tile each level.
	f := func(weights []uint16, sRaw, pRaw, tRaw uint8) bool {
		if len(weights) == 0 {
			weights = []uint16{1}
		}
		if len(weights) > 512 {
			weights = weights[:512]
		}
		hist := make([]uint64, len(weights))
		for i, w := range weights {
			hist[i] = uint64(w)
		}
		s := int(sRaw)%4 + 1
		p := int(pRaw)%5 + 1
		tt := int(tRaw)%5 + 1
		pt, err := NewPartition(hist, s, p, tt)
		if err != nil {
			return false
		}
		for b := range hist {
			si := pt.PassOf(b)
			lo, hi := pt.PassRange(si)
			if b < lo || b >= hi {
				return false
			}
			pi := pt.TaskOf(si, b)
			lo, hi = pt.TaskRange(si, pi)
			if b < lo || b >= hi {
				return false
			}
			ti := pt.ThreadOf(si, pi, b)
			lo, hi = pt.ThreadRange(si, pi, ti)
			if b < lo || b >= hi {
				return false
			}
		}
		if lo, _ := pt.PassRange(0); lo != 0 {
			return false
		}
		if _, hi := pt.PassRange(s - 1); hi != len(hist) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestChunkCanonicalFlag checks the per-chunk Canonical marker: canonical
// files mark every chunk, CRLF files mark none, and a file whose only
// deviation is a missing final newline taints just its last chunk.
func TestChunkCanonicalFlag(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(91))
	canon, _ := writeFastq(t, dir, "canon.fastq", rng, 120, 70)

	idx, err := Build([]string{canon}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Chunks) < 2 {
		t.Fatalf("want multiple chunks, got %d", len(idx.Chunks))
	}
	for ci := range idx.Chunks {
		if !idx.Chunks[ci].Canonical {
			t.Errorf("canonical file: chunk %d not marked Canonical", ci)
		}
	}

	// CRLF line endings: every chunk is tainted.
	data, err := os.ReadFile(canon)
	if err != nil {
		t.Fatal(err)
	}
	crlf := filepath.Join(dir, "crlf.fastq")
	if err := os.WriteFile(crlf, bytes.ReplaceAll(data, []byte("\n"), []byte("\r\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	cidx, err := Build([]string{crlf}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for ci := range cidx.Chunks {
		if cidx.Chunks[ci].Canonical {
			t.Errorf("CRLF file: chunk %d marked Canonical", ci)
		}
	}

	// Missing final newline: only the last chunk is tainted.
	trunc := filepath.Join(dir, "trunc.fastq")
	if err := os.WriteFile(trunc, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	tidx, err := Build([]string{trunc}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for ci := range tidx.Chunks {
		want := ci != len(tidx.Chunks)-1
		if tidx.Chunks[ci].Canonical != want {
			t.Errorf("truncated file: chunk %d Canonical = %v, want %v", ci, tidx.Chunks[ci].Canonical, want)
		}
	}

	// The flag survives serialization.
	path := filepath.Join(dir, "t.idx")
	if err := tidx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range got.Chunks {
		if got.Chunks[ci].Canonical != tidx.Chunks[ci].Canonical {
			t.Errorf("round-trip: chunk %d Canonical flipped", ci)
		}
	}
}
