package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// io.go serializes the index tables to disk. The paper writes merHist and
// FASTQPart "to disk in binary format" so a dataset's index can be reused
// across runs and machines; this format does the same: a magic header,
// fixed-width little-endian fields, and raw histogram arrays.

// fileMagic identifies a serialized Index; the trailing digit is the format
// version. Version 2 added the per-chunk flags word (bit 0: Canonical).
const fileMagic = "MPREPIX2"

// Write serializes the index to w.
func (idx *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }

	paired := uint64(0)
	if idx.Opts.Paired {
		paired = 1
	}
	if idx.Opts.MatePairs {
		paired = 2
	}
	writeU64(uint64(idx.Opts.K))
	writeU64(uint64(idx.Opts.M))
	writeU64(uint64(idx.Opts.ChunkSize))
	writeU64(paired)
	writeU64(uint64(len(idx.Files)))
	for _, f := range idx.Files {
		writeU64(uint64(len(f)))
		bw.WriteString(f)
	}
	writeU64(uint64(idx.Reads))
	writeU64(uint64(idx.Records))
	writeU64(uint64(idx.TotalBases))
	writeU64(idx.TotalKmers)
	for _, v := range idx.MerHist {
		writeU64(v)
	}
	writeU64(uint64(len(idx.Chunks)))
	for ci := range idx.Chunks {
		c := &idx.Chunks[ci]
		writeU32(uint32(c.File))
		writeU64(uint64(c.Offset))
		writeU64(uint64(c.Size))
		writeU32(c.FirstRead)
		writeU32(uint32(c.Records))
		var flags uint32
		if c.Canonical {
			flags |= 1
		}
		writeU32(flags)
		for _, v := range c.Hist {
			writeU32(v)
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes an index written by Write.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("index: bad magic %q (not an index file or wrong version)", magic)
	}
	le := binary.LittleEndian
	var rerr error
	readU64 := func() uint64 {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil && rerr == nil {
			rerr = err
		}
		return le.Uint64(b[:])
	}
	readU32 := func() uint32 {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil && rerr == nil {
			rerr = err
		}
		return le.Uint32(b[:])
	}

	idx := &Index{}
	idx.Opts.K = int(readU64())
	idx.Opts.M = int(readU64())
	idx.Opts.ChunkSize = int64(readU64())
	pairMode := readU64()
	idx.Opts.Paired = pairMode == 1
	idx.Opts.MatePairs = pairMode == 2
	if rerr != nil {
		return nil, fmt.Errorf("index: truncated header: %w", rerr)
	}
	if err := idx.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("index: corrupt header: %w", err)
	}
	nf := readU64()
	if nf > 1<<20 {
		return nil, fmt.Errorf("index: implausible file count %d", nf)
	}
	for i := uint64(0); i < nf; i++ {
		n := readU64()
		if n > 1<<16 || rerr != nil {
			return nil, fmt.Errorf("index: corrupt file table")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: truncated file table: %w", err)
		}
		idx.Files = append(idx.Files, string(buf))
	}
	idx.Reads = uint32(readU64())
	idx.Records = int64(readU64())
	idx.TotalBases = int64(readU64())
	idx.TotalKmers = readU64()
	bins := idx.Opts.Bins()
	idx.MerHist = make([]uint64, bins)
	for b := range idx.MerHist {
		idx.MerHist[b] = readU64()
	}
	nc := readU64()
	if rerr != nil {
		return nil, fmt.Errorf("index: truncated tables: %w", rerr)
	}
	if nc > 1<<28 {
		return nil, fmt.Errorf("index: implausible chunk count %d", nc)
	}
	idx.Chunks = make([]Chunk, nc)
	for ci := range idx.Chunks {
		c := &idx.Chunks[ci]
		c.File = int32(readU32())
		c.Offset = int64(readU64())
		c.Size = int64(readU64())
		c.FirstRead = readU32()
		c.Records = int32(readU32())
		c.Canonical = readU32()&1 != 0
		c.Hist = make([]uint32, bins)
		for b := range c.Hist {
			c.Hist[b] = readU32()
		}
		if rerr != nil {
			return nil, fmt.Errorf("index: truncated chunk table: %w", rerr)
		}
	}
	return idx, nil
}

// Save writes the index to path atomically (via a temp file rename).
func (idx *Index) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := idx.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads an index from path.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
