package index

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"path/filepath"
)

// digest.go computes a stable content digest of an index — the dataset half
// of the job service's result-cache key. Two indexes built from the same
// inputs with the same options digest identically; any change to the data
// (and therefore to the chunk table or histogram) changes the digest.

// digestVersion is bumped whenever the digested fields change, so stale
// cache entries can never alias new ones.
const digestVersion = 1

// Digest returns a stable hex digest of the index's content: the build
// options, the input file base names (base names, not absolute paths, so
// relocating a dataset does not invalidate cached results — content
// changes are caught by the chunk table and histogram, which cover every
// record boundary and every canonical k-mer), the chunk table's location
// fields and the global m-mer histogram.
func (idx *Index) Digest() string {
	h := sha256.New()
	le := binary.LittleEndian
	var buf [8]byte
	wu64 := func(v uint64) { le.PutUint64(buf[:], v); h.Write(buf[:]) }
	wi64 := func(v int64) { wu64(uint64(v)) }
	wbool := func(v bool) {
		if v {
			wu64(1)
		} else {
			wu64(0)
		}
	}
	wu64(digestVersion)
	wi64(int64(idx.Opts.K))
	wi64(int64(idx.Opts.M))
	wi64(idx.Opts.ChunkSize)
	wbool(idx.Opts.Paired)
	wbool(idx.Opts.MatePairs)
	wi64(int64(len(idx.Files)))
	for _, path := range idx.Files {
		fmt.Fprintf(h, "%s\n", filepath.Base(path))
	}
	wu64(uint64(idx.Reads))
	wi64(idx.Records)
	wi64(idx.TotalBases)
	wu64(idx.TotalKmers)
	wi64(int64(len(idx.Chunks)))
	for ci := range idx.Chunks {
		c := &idx.Chunks[ci]
		wi64(int64(c.File))
		wi64(c.Offset)
		wi64(c.Size)
		wu64(uint64(c.FirstRead))
		wi64(int64(c.Records))
	}
	for _, v := range idx.MerHist {
		wu64(v)
	}
	return hex.EncodeToString(h.Sum(nil))
}
