package index

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// syntheticIndex builds an Index struct literal (no files on disk) so the
// golden digest cannot depend on temp-dir paths or build machinery.
func syntheticIndex() *Index {
	return &Index{
		Opts:  Options{K: 27, M: 10, ChunkSize: 4096, Paired: true},
		Files: []string{"/data/run1/sample_1.fastq", "/data/run1/sample_2.fastq"},
		MerHist: func() []uint64 {
			h := make([]uint64, 16)
			for i := range h {
				h[i] = uint64(i * 7)
			}
			return h
		}(),
		Chunks: []Chunk{
			{File: 0, Offset: 0, Size: 4000, FirstRead: 0, Records: 40},
			{File: 1, Offset: 0, Size: 3900, FirstRead: 20, Records: 40},
		},
		Reads:      40,
		Records:    80,
		TotalBases: 8000,
		TotalKmers: 5920,
	}
}

// TestDigestGolden pins the exact digest encoding. If this fails because
// the encoding legitimately changed, bump digestVersion and re-pin.
func TestDigestGolden(t *testing.T) {
	const want = "f8980f34f05386e1881e52954c9496918a4318c2f0372dbd29310e441c36862f"
	if got := syntheticIndex().Digest(); got != want {
		t.Errorf("Digest() = %s, want %s", got, want)
	}
}

// TestDigestIgnoresFileDirectories checks that relocating a dataset (same
// base names, different directories) leaves the digest unchanged, and that
// renaming a file changes it.
func TestDigestIgnoresFileDirectories(t *testing.T) {
	a := syntheticIndex()
	b := syntheticIndex()
	b.Files = []string{"sample_1.fastq", "elsewhere/sample_2.fastq"}
	if a.Digest() != b.Digest() {
		t.Errorf("digest depends on file directories")
	}
	c := syntheticIndex()
	c.Files[0] = "/data/run1/other_1.fastq"
	if a.Digest() == c.Digest() {
		t.Errorf("digest ignored a file rename")
	}
}

// TestDigestSensitivity checks that each content field perturbs the digest.
func TestDigestSensitivity(t *testing.T) {
	base := syntheticIndex().Digest()
	mutations := map[string]func(*Index){
		"k":                func(i *Index) { i.Opts.K = 31 },
		"m":                func(i *Index) { i.Opts.M = 8 },
		"chunk size":       func(i *Index) { i.Opts.ChunkSize = 8192 },
		"paired":           func(i *Index) { i.Opts.Paired = false },
		"reads":            func(i *Index) { i.Reads = 41 },
		"records":          func(i *Index) { i.Records = 81 },
		"total bases":      func(i *Index) { i.TotalBases = 8001 },
		"total kmers":      func(i *Index) { i.TotalKmers = 5921 },
		"chunk size field": func(i *Index) { i.Chunks[1].Size = 3901 },
		"chunk offset":     func(i *Index) { i.Chunks[1].Offset = 17 },
		"hist bin":         func(i *Index) { i.MerHist[3] = 999 },
		"dropped chunk":    func(i *Index) { i.Chunks = i.Chunks[:1] },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		idx := syntheticIndex()
		mutate(idx)
		d := idx.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[d] = name
	}
}

// TestDigestBuildDeterminism checks the end-to-end property the result
// cache relies on: building an index twice from the same data — including
// from a relocated copy of the data — digests identically, and different
// data digests differently.
func TestDigestBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	path, _ := writeFastq(t, dir, "reads.fastq", rng, 60, 50)
	opts := Options{K: 15, M: 6, ChunkSize: 1024}

	idx1, err := Build([]string{path}, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := Build([]string{path}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx1.Digest() != idx2.Digest() {
		t.Errorf("building twice from the same file digests differently")
	}

	// Relocate: copy the file byte-for-byte into another directory.
	dir2 := filepath.Join(t.TempDir(), "moved")
	if err := os.MkdirAll(dir2, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir2, "reads.fastq")
	if err := os.WriteFile(moved, data, 0o644); err != nil {
		t.Fatal(err)
	}
	idx3, err := Build([]string{moved}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx1.Digest() != idx3.Digest() {
		t.Errorf("relocated dataset digests differently")
	}

	// Different data must digest differently.
	other, _ := writeFastq(t, dir, "other.fastq", rng, 60, 50)
	idx4, err := Build([]string{other}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d4 := idx4.Digest(); d4 == idx1.Digest() {
		t.Errorf("different data digests identically")
	}

	// Different build options over the same data must digest differently.
	idx5, err := Build([]string{path}, Options{K: 17, M: 6, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if idx5.Digest() == idx1.Digest() {
		t.Errorf("different K digests identically")
	}
}
