package index

import (
	"fmt"
	"sort"
)

// Partition is a three-level balanced split of the m-mer bin space
// [0, 4^m): first into S pass ranges, each pass range into P task ranges,
// and each task range into T thread ranges. All ranges are contiguous, so a
// k-mer's owner at every level is found by binary search on its prefix bin,
// and every range corresponds to a contiguous slice of the sorted tuple
// space (§3.1.1).
type Partition struct {
	S, P, T int
	// passCut has S+1 monotone bin boundaries; pass s owns bins
	// [passCut[s], passCut[s+1]).
	passCut []int
	// taskCut[s] has P+1 boundaries within pass s.
	taskCut [][]int
	// threadCut[s][p] has T+1 boundaries within (pass s, task p).
	threadCut [][][]int
}

// NewPartition splits the bin space described by the global histogram into
// S×P×T ranges, each level balanced by cumulative k-mer count. S, P and T
// must be ≥ 1.
func NewPartition(merHist []uint64, s, p, t int) (*Partition, error) {
	if s < 1 || p < 1 || t < 1 {
		return nil, fmt.Errorf("index: partition dims S=%d P=%d T=%d must be ≥ 1", s, p, t)
	}
	pt := &Partition{S: s, P: p, T: t}
	pt.passCut = splitBalanced(merHist, 0, len(merHist), s)
	pt.taskCut = make([][]int, s)
	pt.threadCut = make([][][]int, s)
	for si := 0; si < s; si++ {
		pt.taskCut[si] = splitBalanced(merHist, pt.passCut[si], pt.passCut[si+1], p)
		pt.threadCut[si] = make([][]int, p)
		for pi := 0; pi < p; pi++ {
			pt.threadCut[si][pi] = splitBalanced(merHist, pt.taskCut[si][pi], pt.taskCut[si][pi+1], t)
		}
	}
	return pt, nil
}

// splitBalanced cuts bins [lo, hi) into parts contiguous ranges whose
// weight sums are as even as a greedy left-to-right walk can make them.
// It returns parts+1 monotone boundaries starting at lo and ending at hi;
// ranges may be empty when there are fewer bins (or all weight is
// concentrated in fewer bins) than parts — empty ranges simply own no
// k-mers.
func splitBalanced(w []uint64, lo, hi, parts int) []int {
	cuts := make([]int, parts+1)
	cuts[0] = lo
	cuts[parts] = hi
	var total uint64
	for _, x := range w[lo:hi] {
		total += x
	}
	var acc uint64
	b := lo
	for part := 1; part < parts; part++ {
		// Advance until the accumulated weight reaches this part's share.
		target := total * uint64(part) / uint64(parts)
		for b < hi && acc < target {
			acc += w[b]
			b++
		}
		cuts[part] = b
	}
	return cuts
}

// PassRange returns the bin range [lo, hi) of pass s.
func (pt *Partition) PassRange(s int) (lo, hi int) {
	return pt.passCut[s], pt.passCut[s+1]
}

// TaskRange returns the bin range of task p within pass s.
func (pt *Partition) TaskRange(s, p int) (lo, hi int) {
	return pt.taskCut[s][p], pt.taskCut[s][p+1]
}

// ThreadRange returns the bin range of thread t of task p within pass s.
func (pt *Partition) ThreadRange(s, p, t int) (lo, hi int) {
	return pt.threadCut[s][p][t], pt.threadCut[s][p][t+1]
}

// TaskOf returns which task owns bin b in pass s. The bin must lie inside
// the pass range.
func (pt *Partition) TaskOf(s, b int) int {
	cuts := pt.taskCut[s]
	// Find the last boundary ≤ b.
	return sort.SearchInts(cuts[1:], b+1)
}

// ThreadOf returns which thread of task p owns bin b in pass s.
func (pt *Partition) ThreadOf(s, p, b int) int {
	cuts := pt.threadCut[s][p]
	return sort.SearchInts(cuts[1:], b+1)
}

// PassOf returns which pass owns bin b.
func (pt *Partition) PassOf(b int) int {
	return sort.SearchInts(pt.passCut[1:], b+1)
}

// SegmentCounts sums hist over each of the len(cuts)-1 ranges delimited by
// cuts, appending results to dst. This is the primitive from which all
// pipeline buffer offsets are precomputed (per §3.2.2: counts for chunks ×
// destination ranges, prefix-summed).
func SegmentCounts(dst []uint64, hist []uint32, cuts []int) []uint64 {
	for i := 0; i+1 < len(cuts); i++ {
		var sum uint64
		for _, c := range hist[cuts[i]:cuts[i+1]] {
			sum += uint64(c)
		}
		dst = append(dst, sum)
	}
	return dst
}

// RangeCount sums hist over the bin range [lo, hi).
func RangeCount(hist []uint32, lo, hi int) uint64 {
	var sum uint64
	for _, c := range hist[lo:hi] {
		sum += uint64(c)
	}
	return sum
}

// RangeCount64 sums a 64-bit histogram over the bin range [lo, hi).
func RangeCount64(hist []uint64, lo, hi int) uint64 {
	var sum uint64
	for _, c := range hist[lo:hi] {
		sum += c
	}
	return sum
}

// TaskCuts returns the task boundary slice of pass s (P+1 entries), for
// callers that binary-search many bins at once.
func (pt *Partition) TaskCuts(s int) []int { return pt.taskCut[s] }

// ThreadCuts returns the thread boundary slice of (pass s, task p).
func (pt *Partition) ThreadCuts(s, p int) []int { return pt.threadCut[s][p] }
