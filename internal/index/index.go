// Package index implements METAPREP's IndexCreate step (§3.1): the merHist
// and FASTQPart tables that make every later pipeline step statically
// schedulable.
//
// merHist counts, for every m-mer value in [0, 4^m), how many canonical
// k-mers in the whole dataset have that m-mer as their prefix. Because
// packed k-mers sort lexicographically, a contiguous range of m-mer bins is
// a contiguous range of the k-mer key space, so splitting the bin space by
// cumulative count yields balanced key ranges for passes, tasks and threads.
//
// FASTQPart logically partitions the input FASTQ files into chunks of
// roughly equal byte size. Each chunk records its file, byte offset, size,
// the global read ID of its first record, and its own m-mer histogram
// (Fig. 2). From those per-chunk histograms every send/receive buffer offset
// in the pipeline is precomputed, which is what lets threads write shared
// buffers without synchronization (§3.2.2, §3.3, §3.4).
//
// The tables are written to disk in a binary format and reused across runs
// on different task/thread configurations, as in the paper.
package index

import (
	"fmt"
	"io"
	"os"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
	"metaprep/internal/par"
)

// Options configures index creation. The zero value is not valid; use
// Defaults and override.
type Options struct {
	// K is the k-mer length, 1..63 (27 in most of the paper's experiments).
	K int
	// M is the m-mer prefix length defining histogram bins (4^M bins).
	// The paper uses m=10; the default here is 8, proportionate to the
	// scaled datasets. Must satisfy 1 ≤ M ≤ min(K, 12).
	M int
	// ChunkSize is the target chunk size in bytes.
	ChunkSize int64
	// Paired marks the input as interleaved paired-end: records 2i and
	// 2i+1 share global read ID i, preserving pairing through partitioning
	// (§3.2). Chunk boundaries are aligned to pair starts.
	Paired bool
	// MatePairs marks the input as separate mate files: files come in
	// consecutive pairs (mate-1 file, mate-2 file) whose i-th records are
	// the two ends of one pair and share a global read ID — the layout
	// §4.3 describes ("the same read has to be located in the other FASTQ
	// file"). Mutually exclusive with Paired; both files of a pair must
	// hold the same number of records.
	MatePairs bool
}

// Defaults returns the options used throughout the evaluation: k=27, m=8,
// 4 MiB chunks, unpaired.
func Defaults() Options {
	return Options{K: 27, M: 8, ChunkSize: 4 << 20}
}

// Validate checks the option invariants.
func (o Options) Validate() error {
	if err := kmer.CheckK128(o.K); err != nil {
		return err
	}
	if o.M < 1 || o.M > 12 || o.M > o.K {
		return fmt.Errorf("index: m=%d out of range (1..min(k,12))", o.M)
	}
	if o.ChunkSize < 1 {
		return fmt.Errorf("index: chunk size %d < 1", o.ChunkSize)
	}
	if o.Paired && o.MatePairs {
		return fmt.Errorf("index: Paired and MatePairs are mutually exclusive")
	}
	return nil
}

// Bins returns the number of histogram bins, 4^M.
func (o Options) Bins() int { return 1 << (2 * uint(o.M)) }

// Use64 reports whether the 64-bit k-mer representation suffices for K.
func (o Options) Use64() bool { return o.K <= kmer.MaxK64 }

// Chunk is one FASTQPart record: a logical piece of one FASTQ file plus its
// private m-mer histogram.
type Chunk struct {
	// File indexes Index.Files.
	File int32
	// Offset is the byte offset of the chunk's first record.
	Offset int64
	// Size is the chunk's length in bytes.
	Size int64
	// FirstRead is the global read ID of the chunk's first record.
	FirstRead uint32
	// Records is the number of FASTQ records in the chunk.
	Records int32
	// Canonical reports that every record in the chunk is stored in
	// canonical FASTQ form ('\n'-only line endings, bare '+' separator,
	// trailing newline), so the chunk's raw bytes are exactly the
	// concatenation of its records' canonical encodings. The zero-copy
	// CC-I/O path uses this to blit record runs without parsing.
	Canonical bool
	// Hist counts canonical k-mers in this chunk by m-mer prefix bin.
	Hist []uint32
}

// Index is the pair of tables produced by IndexCreate.
type Index struct {
	// Opts are the options the index was built with. Runs using the index
	// must use the same K, M and Paired settings.
	Opts Options
	// Files lists the input FASTQ paths, in order.
	Files []string
	// MerHist is the global m-mer histogram (the per-chunk histograms
	// summed), with 64-bit counts so the largest datasets cannot overflow.
	MerHist []uint64
	// Chunks is the FASTQPart table.
	Chunks []Chunk
	// Reads is R, the number of global read IDs (pairs count once).
	Reads uint32
	// Records is the total number of FASTQ records.
	Records int64
	// TotalBases is the cumulative sequence length (the paper's M, in bp).
	TotalBases int64
	// TotalKmers is the total number of canonical k-mers enumerated.
	TotalKmers uint64
}

// Build runs the sequential IndexCreate step over the given FASTQ files.
// It makes a single pass, simultaneously placing chunk boundaries and
// accumulating per-chunk histograms, exactly the work §3.1 describes.
func Build(files []string, opts Options) (*Index, error) {
	return build(files, opts, 1)
}

// BuildParallel is Build with the histogram phase parallelized over chunks
// (the paper notes IndexCreate "can be parallelized in the same manner" as
// KmerGen; Table 5 reports the sequential version). The chunk table is
// discovered in a sequential record-boundary scan that does no k-mer work,
// then workers histogram chunks independently.
func BuildParallel(files []string, opts Options, workers int) (*Index, error) {
	if workers <= 1 {
		return Build(files, opts)
	}
	return build(files, opts, workers)
}

func build(files []string, opts Options, workers int) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("index: no input files")
	}
	if opts.MatePairs && len(files)%2 != 0 {
		return nil, fmt.Errorf("index: MatePairs needs an even number of files, got %d", len(files))
	}
	idx := &Index{
		Opts:  opts,
		Files: append([]string(nil), files...),
	}
	if err := idx.scanChunks(workers == 1); err != nil {
		return nil, err
	}
	if workers == 1 {
		// Histograms were filled during the scan.
	} else {
		var firstErr error
		errs := make([]error, len(idx.Chunks))
		par.For(workers, len(idx.Chunks), func(ci int) {
			errs[ci] = idx.histogramChunk(ci)
		})
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	idx.MerHist = make([]uint64, opts.Bins())
	for ci := range idx.Chunks {
		for b, c := range idx.Chunks[ci].Hist {
			idx.MerHist[b] += uint64(c)
		}
	}
	for b := range idx.MerHist {
		idx.TotalKmers += idx.MerHist[b]
	}
	return idx, nil
}

// scanChunks performs the sequential pass over all files: it places chunk
// boundaries at record starts (aligned to pair starts in paired mode),
// assigns global read IDs, and — when withHist is true — also histograms
// canonical k-mers into the current chunk.
func (idx *Index) scanChunks(withHist bool) error {
	opts := idx.Opts
	bins := opts.Bins()
	var globalRecord int64
	// Mate-pair bookkeeping: the pair ID of file fi's record j is
	// pairBase + j, where pairBase is the pair count of earlier file
	// pairs; both files of a pair share the base.
	var pairBase uint32
	var mate1Records int64
	for fi, path := range idx.Files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		var magic [2]byte
		if n, _ := f.ReadAt(magic[:], 0); n == 2 && magic[0] == 0x1F && magic[1] == 0x8B {
			f.Close()
			return fmt.Errorf("index: %s is gzip-compressed; the pipeline needs random access for chunking — decompress it first", path)
		}
		if opts.MatePairs && fi%2 == 0 && fi > 0 {
			pairBase += uint32(mate1Records)
		}
		r := fastq.NewReader(f)
		var cur *Chunk
		flush := func(end int64) {
			if cur != nil {
				cur.Size = end - cur.Offset
				idx.Chunks = append(idx.Chunks, *cur)
				cur = nil
			}
		}
		var fileRecords int64
		for {
			off := r.Offset()
			rec, err := r.Next()
			if err == io.EOF {
				flush(off)
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("index: %s: %w", path, err)
			}
			atPairStart := !opts.Paired || globalRecord%2 == 0
			if cur == nil || (atPairStart && off-cur.Offset >= opts.ChunkSize) {
				flush(off)
				first := idx.readID(globalRecord)
				if opts.MatePairs {
					first = pairBase + uint32(fileRecords)
				}
				cur = &Chunk{
					File:      int32(fi),
					Offset:    off,
					FirstRead: first,
					Canonical: true,
				}
				if withHist {
					cur.Hist = make([]uint32, bins)
				}
			}
			cur.Records++
			cur.Canonical = cur.Canonical && r.Verbatim()
			idx.Records++
			fileRecords++
			idx.TotalBases += int64(len(rec.Seq))
			globalRecord++
			if withHist {
				histSeq(cur.Hist, rec.Seq, opts)
			}
		}
		f.Close()
		if opts.MatePairs {
			if fi%2 == 0 {
				mate1Records = fileRecords
			} else if fileRecords != mate1Records {
				return fmt.Errorf("index: mate files %s and %s hold %d vs %d records",
					idx.Files[fi-1], path, mate1Records, fileRecords)
			}
		}
	}
	switch {
	case opts.MatePairs:
		idx.Reads = pairBase + uint32(mate1Records)
	case idx.Records > 0:
		idx.Reads = idx.readID(idx.Records-1) + 1
	}
	return nil
}

// histogramChunk fills chunk ci's histogram by reading its byte range with
// one ReadAt and scanning the records in place (chunks are sized to be
// buffer-resident, so the zero-copy ChunkScanner applies).
func (idx *Index) histogramChunk(ci int) error {
	c := &idx.Chunks[ci]
	c.Hist = make([]uint32, idx.Opts.Bins())
	f, err := os.Open(idx.Files[c.File])
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, c.Size)
	if _, err := io.ReadFull(io.NewSectionReader(f, c.Offset, c.Size), buf); err != nil {
		return fmt.Errorf("index: chunk %d of %s: %w", ci, idx.Files[c.File], err)
	}
	sc := fastq.NewChunkScanner(buf)
	for n := int32(0); n < c.Records; n++ {
		rec, err := sc.Next()
		if err != nil {
			return fmt.Errorf("index: chunk %d of %s: %w", ci, idx.Files[c.File], err)
		}
		histSeq(c.Hist, rec.Seq, idx.Opts)
	}
	return nil
}

// histSeq adds the canonical k-mer m-mer-prefix counts of one sequence.
func histSeq(hist []uint32, seq []byte, opts Options) {
	if opts.Use64() {
		kmer.ForEach64(seq, opts.K, func(_ int, m kmer.Kmer64) {
			hist[kmer.Prefix64(m, opts.K, opts.M)]++
		})
	} else {
		kmer.ForEach128(seq, opts.K, func(_ int, m kmer.Kmer128) {
			hist[kmer.Prefix128(m, opts.K, opts.M)]++
		})
	}
}

// readID maps a global record number to its global read ID.
func (idx *Index) readID(record int64) uint32 {
	if idx.Opts.Paired {
		return uint32(record / 2)
	}
	return uint32(record)
}

// ReadIDOf returns the global read ID of the i-th record (0-based) within
// chunk c.
func (idx *Index) ReadIDOf(c *Chunk, i int32) uint32 {
	if idx.Opts.Paired {
		// FirstRead*2 is the chunk's first global record (chunks are
		// pair-aligned), so the record number is FirstRead*2 + i.
		return c.FirstRead + uint32(i)/2
	}
	// Unpaired and MatePairs both advance one read ID per record: in
	// mate-pair mode consecutive records of one file are consecutive
	// pairs, and the matching records of the mate file repeat the IDs.
	return c.FirstRead + uint32(i)
}

// MemoryBytes returns the in-memory size of the index tables: 8·4^m for the
// global histogram plus 4·4^m per chunk (the paper's 4^{m+1}(C+1) figure,
// §3.7, with the global table at 64-bit counts).
func (idx *Index) MemoryBytes() int64 {
	bins := int64(idx.Opts.Bins())
	return 8*bins + 4*bins*int64(len(idx.Chunks))
}

// Verify checks that the index still matches the files on disk: every file
// must exist with a size covering its chunks. It catches the most common
// staleness failure — a FASTQ regenerated or truncated since IndexCreate —
// before the pipeline fails mid-run with a count mismatch.
func (idx *Index) Verify() error {
	need := make([]int64, len(idx.Files))
	for ci := range idx.Chunks {
		c := &idx.Chunks[ci]
		if end := c.Offset + c.Size; end > need[c.File] {
			need[c.File] = end
		}
	}
	for fi, path := range idx.Files {
		st, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("index: stale: %w", err)
		}
		if st.Size() < need[fi] {
			return fmt.Errorf("index: stale: %s is %d bytes, chunks need %d — rebuild the index",
				path, st.Size(), need[fi])
		}
	}
	return nil
}
