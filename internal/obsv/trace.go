package obsv

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// trace.go serializes recorded events in the Chrome trace-event JSON
// format (the "JSON Array Format" with an object wrapper), which Perfetto
// and chrome://tracing load directly. Timestamps and durations are
// microseconds; sub-microsecond precision is kept as fractions.

// traceEvent is the wire form of one event.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the object wrapper Perfetto accepts.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace writes every recorded event as Chrome trace-event JSON.
// Metadata events come first, then spans sorted by ascending timestamp
// (ties broken by pid, tid, then name), so consumers — including
// `metaprep checktrace` — can rely on monotonically ordered timestamps.
// A nil collector writes an empty, still-loadable trace.
func (c *Collector) WriteTrace(w io.Writer) error {
	events := c.Events()
	sort.SliceStable(events, func(i, j int) bool {
		ei, ej := events[i], events[j]
		im, jm := ei.Phase == phaseMeta, ej.Phase == phaseMeta
		if im != jm {
			return im
		}
		if ei.Ts != ej.Ts {
			return ei.Ts < ej.Ts
		}
		if ei.Pid != ej.Pid {
			return ei.Pid < ej.Pid
		}
		if ei.Tid != ej.Tid {
			return ei.Tid < ej.Tid
		}
		return ei.Name < ej.Name
	})

	out := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"tool": "metaprep"},
	}
	if c != nil && c.ringCap > 0 {
		// Flight-recorder provenance: a consumer can tell a bounded
		// last-N-spans window from a complete trace.
		out.OtherData["ring_capacity"] = c.ringCap
		out.OtherData["dropped_events"] = c.Dropped()
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   e.Phase,
			Ts:   float64(e.Ts.Nanoseconds()) / 1e3,
			Pid:  e.Pid,
			Tid:  e.Tid,
			Args: e.Args,
		}
		if e.Phase == phaseComplete {
			dur := float64(e.Dur.Nanoseconds()) / 1e3
			te.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SaveTrace writes the trace to a file.
func (c *Collector) SaveTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
