package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"

	"metaprep/internal/stats"
)

// RankGlobal is the rank label of counters that describe the whole run
// rather than a single task (e.g. the process-wide radix pass tallies).
const RankGlobal = -1

// counterKey identifies one registered counter: a step-scoped name plus
// the owning rank (RankGlobal for run-wide counters).
type counterKey struct {
	name string
	rank int
}

// Counter is a monotonically increasing atomic counter. A nil *Counter —
// what a nil collector hands out — is a no-op, so instrumentation sites
// can hold and Add to counters unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on nil (does nothing).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the counter registered under (rank, name), creating it
// on first use. Registration takes a mutex; subsequent Adds are lock-free
// atomics. Callers on hot paths should resolve the counter once and keep
// the pointer. A nil collector returns a nil (no-op) counter.
func (c *Collector) Counter(rank int, name string) *Counter {
	if c == nil {
		return nil
	}
	k := counterKey{name: name, rank: rank}
	c.cmu.Lock()
	ctr, ok := c.counters[k]
	if !ok {
		ctr = &Counter{}
		c.counters[k] = ctr
	}
	c.cmu.Unlock()
	return ctr
}

// CounterValue is one entry of a counter snapshot.
type CounterValue struct {
	// Name is the step-scoped counter name, e.g. "kmergen/bytes_read".
	Name string `json:"name"`
	// Rank is the owning task's rank, or -1 for run-wide counters.
	Rank int `json:"rank"`
	// Value is the count at snapshot time.
	Value uint64 `json:"value"`
}

// Counters returns a snapshot of every registered counter, sorted by name
// then rank — a deterministic order, so identical runs yield identical
// snapshots (see TestCounterSnapshotDeterminism).
func (c *Collector) Counters() []CounterValue {
	if c == nil {
		return nil
	}
	c.cmu.Lock()
	out := make([]CounterValue, 0, len(c.counters))
	for k, ctr := range c.counters {
		out = append(out, CounterValue{Name: k.name, Rank: k.rank, Value: ctr.Value()})
	}
	c.cmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// CountersTable renders the counter snapshot as an aligned text table in
// the repo's usual stats.Table style. Run-wide counters show rank "-".
func (c *Collector) CountersTable() *stats.Table {
	t := stats.NewTable("Counter", "Rank", "Value")
	for _, cv := range c.Counters() {
		rank := any(cv.Rank)
		if cv.Rank == RankGlobal {
			rank = "-"
		}
		t.AddRow(cv.Name, rank, cv.Value)
	}
	return t
}

// WriteCountersJSON writes the counter snapshot as a JSON array.
func (c *Collector) WriteCountersJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snapshot := c.Counters()
	if snapshot == nil {
		snapshot = []CounterValue{}
	}
	return enc.Encode(snapshot)
}

// WriteCountersCSV writes the counter snapshot as CSV with a header row.
func (c *Collector) WriteCountersCSV(w io.Writer) error {
	return c.CountersTable().WriteCSV(w)
}
