// Package obsv is the pipeline's observability layer: low-overhead span
// tracing and typed atomic counters, exported as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and as machine-readable
// counter snapshots (text table, JSON, CSV).
//
// The central type is Collector. A nil *Collector is the no-op default:
// every method is safe to call on nil and does nothing, so instrumented
// code carries no "if enabled" branches and the disabled hot path costs a
// single nil check per call site — no allocations, no atomics
// (BenchmarkPipelineObsv in internal/core verifies neutrality).
//
// Conventions used by the pipeline:
//
//   - pid is the simulated MPI rank (one Perfetto "process" per task);
//   - tid is a per-task track: 0 = the step timeline, 1 = mpirt
//     communication, 10+t = worker thread t, 100+t = thread t's prefetch
//     reader;
//   - category "step" is reserved for the paper's eight pipeline steps.
//     Step spans are recorded with RecordSpan using the exact duration
//     charged to core.StepTimes (including modeled network time), so the
//     per-task sum of "step" spans equals StepTimes.Total exactly — the
//     invariant `metaprep checktrace` enforces.
package obsv

import (
	"sync"
	"time"
)

// Track-ID conventions (the tid values the pipeline uses; exported so the
// instrumentation sites and the trace reader agree).
const (
	TidSteps    = 0   // the per-task step timeline
	TidComm     = 1   // mpirt point-to-point communication
	TidExchange = 2   // streaming exchange: the chunk-drain (send) goroutine
	TidExchRecv = 3   // streaming exchange: the chunk-landing (recv) goroutine
	TidSpill    = 4   // out-of-core LocalSort: the spill sort/write worker
	TidArtifact = 5   // persistent-artifact emit/assembly and reload
	TidWorker   = 10  // + thread index: worker threads
	TidPrefetch = 100 // + thread index: prefetch reader goroutines
)

// Span phases of the Chrome trace-event format that the collector emits.
const (
	phaseComplete = "X" // a span with ts + dur
	phaseMeta     = "M" // process/thread naming metadata
)

// Event is one recorded trace event. Ts and Dur are nanoseconds relative
// to the collector's epoch; the JSON writer converts to the microsecond
// unit the trace-event format specifies.
type Event struct {
	Name  string
	Cat   string
	Phase string
	Pid   int
	Tid   int
	Ts    time.Duration
	Dur   time.Duration
	Args  map[string]any
}

// Collector gathers spans and counters for one run. Create with New; the
// nil collector is the valid, allocation-free no-op.
//
// Spans are appended under a mutex (span ends are orders of magnitude
// rarer than the per-tuple work they measure); counters are lock-free
// atomics after a mutex-guarded first registration.
//
// A collector created with NewRing is a flight recorder: span events live
// in a fixed-capacity ring, the oldest overwritten once it fills, so an
// always-on collector holds a bounded window of recent activity no matter
// how long the run. Metadata events (process/thread names — a handful per
// rank) are kept outside the ring so a wrapped trace still names every
// track.
type Collector struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event // meta + spans (unbounded mode); meta only (ring mode)

	// Ring mode (ringCap > 0): span events circulate through ring; start
	// is the oldest live slot and dropped counts overwritten events. Slots
	// are overwritten in place — a full ring allocates nothing per span.
	ringCap int
	ring    []Event
	start   int
	dropped uint64

	cmu      sync.Mutex
	counters map[counterKey]*Counter
	hists    map[counterKey]*Histogram
}

// New returns an enabled collector whose span clock starts now and whose
// event log grows without bound (the offline-trace default).
func New() *Collector {
	return &Collector{
		epoch:    time.Now(),
		counters: make(map[counterKey]*Counter),
		hists:    make(map[counterKey]*Histogram),
	}
}

// DefaultRingEvents is the flight-recorder capacity NewRing(0) uses: deep
// enough to hold the full span set of a multi-pass daemon job at default
// trace granularity, ~1 MB of bounded memory.
const DefaultRingEvents = 8192

// NewRing returns a flight-recorder collector: counters and histograms
// behave exactly as with New, but only the most recent `capacity` span
// events are retained (capacity ≤ 0 selects DefaultRingEvents). The ring
// is what lets the daemon run every job with tracing always on — memory
// stays bounded, and a trace of the last-N spans can be dumped on demand
// or on failure.
func NewRing(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	c := New()
	c.ringCap = capacity
	return c
}

// Dropped returns how many span events the ring has overwritten (0 for nil
// or unbounded collectors).
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Enabled reports whether the collector records anything (false for nil).
func (c *Collector) Enabled() bool { return c != nil }

// Epoch returns the collector's time origin (zero time for nil).
func (c *Collector) Epoch() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.epoch
}

// Span is an in-flight span handle returned by StartSpan. The zero Span
// (from a nil collector) is a no-op; End on it does nothing.
type Span struct {
	c     *Collector
	name  string
	cat   string
	pid   int
	tid   int
	start time.Time
}

// StartSpan begins a wall-clock span on (pid, tid). Pair with End or
// EndArgs.
func (c *Collector) StartSpan(pid, tid int, cat, name string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, name: name, cat: cat, pid: pid, tid: tid, start: time.Now()}
}

// End records the span with its measured wall duration.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs records the span with the given metadata attached (args must be
// JSON-serializable values).
func (s Span) EndArgs(args map[string]any) {
	if s.c == nil {
		return
	}
	s.c.RecordSpan(s.pid, s.tid, s.cat, s.name, s.start, time.Since(s.start), args)
}

// RecordSpan records a complete span with an explicit start time and
// duration. Instrumentation uses this when the duration was already
// measured by the surrounding code — the pipeline records each step span
// with exactly the duration it adds to StepTimes, including modeled
// network transfer time, so trace sums reconcile with the step report.
func (c *Collector) RecordSpan(pid, tid int, cat, name string, start time.Time, dur time.Duration, args map[string]any) {
	if c == nil {
		return
	}
	ts := start.Sub(c.epoch)
	if ts < 0 {
		ts = 0
	}
	if dur < 0 {
		dur = 0
	}
	ev := Event{
		Name: name, Cat: cat, Phase: phaseComplete,
		Pid: pid, Tid: tid, Ts: ts, Dur: dur, Args: args,
	}
	c.mu.Lock()
	if c.ringCap > 0 {
		if len(c.ring) < c.ringCap {
			c.ring = append(c.ring, ev)
		} else {
			// Full: overwrite the oldest slot in place.
			c.ring[c.start] = ev
			c.start++
			if c.start == c.ringCap {
				c.start = 0
			}
			c.dropped++
		}
	} else {
		c.events = append(c.events, ev)
	}
	c.mu.Unlock()
}

// SetProcessName names a pid's track group in the trace viewer (the
// pipeline uses "task N" per rank).
func (c *Collector) SetProcessName(pid int, name string) {
	c.meta(pid, 0, "process_name", name)
}

// SetThreadName names a (pid, tid) track in the trace viewer.
func (c *Collector) SetThreadName(pid, tid int, name string) {
	c.meta(pid, tid, "thread_name", name)
}

func (c *Collector) meta(pid, tid int, kind, name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, Event{
		Name: kind, Phase: phaseMeta, Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
	c.mu.Unlock()
}

// Events returns a copy of the recorded events (nil for a nil collector).
// In ring mode the copy holds the metadata events followed by the retained
// span window, oldest first.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.events)+len(c.ring))
	out = append(out, c.events...)
	out = append(out, c.ring[c.start:]...)
	out = append(out, c.ring[:c.start]...)
	return out
}
