package obsv

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// slog.go is the structured-logging half of the observability layer: a
// shared logger constructor (text or JSON lines) and the job-scoped
// correlation ID that rides the context from the HTTP request through the
// jobs layer into the pipeline ranks, so every record of one job's
// lifetime carries the same "job" attribute regardless of which layer
// emitted it.

// ctxKey is the private context-key namespace.
type ctxKey int

const jobIDKey ctxKey = iota

// WithJobID returns a context carrying the job correlation ID. The jobs
// layer stamps it when a job starts running; every logger built by
// NewLogger extracts it automatically.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey, id)
}

// JobIDFrom returns the context's job correlation ID ("" when absent).
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey).(string)
	return id
}

// jobIDHandler decorates a slog.Handler with the context's job ID.
type jobIDHandler struct {
	slog.Handler
}

func (h jobIDHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := JobIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("job", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h jobIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return jobIDHandler{h.Handler.WithAttrs(attrs)}
}

func (h jobIDHandler) WithGroup(name string) slog.Handler {
	return jobIDHandler{h.Handler.WithGroup(name)}
}

// NewLogger builds the service logger: format is "text" (the default for
// terminals) or "json" (one object per line, for log aggregators). Every
// record logged with a context that passed through WithJobID carries the
// job ID as a "job" attribute.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obsv: unknown log format %q (text or json)", format)
	}
	return slog.New(jobIDHandler{h}), nil
}

// NopLogger returns a logger that discards every record — the nil-safe
// default for layers whose callers did not configure logging.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
