package obsv

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"
)

// profile.go wires the standard Go profilers into the CLI's observability
// flags: -cpuprofile, -memprofile and the live -pprof endpoint.

// StartCPUProfile begins a CPU profile into path and returns a stop
// function that ends the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obsv: starting CPU profile: %w", err)
	}
	return func() error {
		rpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, the
// convention of `go test -memprofile`) and writes the heap profile to
// path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obsv: writing heap profile: %w", err)
	}
	return f.Close()
}

// StartPprofServer binds addr (e.g. ":6060") and serves the
// net/http/pprof endpoints from a dedicated mux — the default mux is left
// untouched. Bind errors are returned synchronously; the server then runs
// until the process exits, reporting any later serve failure on the
// returned channel. The bound address (useful with ":0") is also
// returned.
func StartPprofServer(addr string) (bound string, errs <-chan error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	return ln.Addr().String(), errc, nil
}
