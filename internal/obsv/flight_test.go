package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestRingRetainsRecentSpans fills a small ring past capacity and checks
// that exactly the newest spans survive, oldest first, that metadata
// events are never evicted, and that the dropped count is exact.
func TestRingRetainsRecentSpans(t *testing.T) {
	c := NewRing(4)
	c.SetProcessName(0, "task 0")
	c.SetThreadName(0, 0, "steps")
	base := c.Epoch()
	for i := 0; i < 10; i++ {
		c.RecordSpan(0, 0, "step", fmt.Sprintf("s%d", i),
			base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, nil)
	}
	if got := c.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := c.Events()
	var metas, spans []string
	for _, ev := range evs {
		if ev.Phase == "M" {
			metas = append(metas, ev.Name)
		} else {
			spans = append(spans, ev.Name)
		}
	}
	if len(metas) != 2 {
		t.Fatalf("metadata events = %v, want 2 entries", metas)
	}
	want := []string{"s6", "s7", "s8", "s9"}
	if fmt.Sprint(spans) != fmt.Sprint(want) {
		t.Fatalf("retained spans = %v, want %v", spans, want)
	}
}

// TestRingTraceValid writes a wrapped ring as a trace and checks the
// output is loadable, ordered, and carries the flight-recorder provenance.
func TestRingTraceValid(t *testing.T) {
	c := NewRing(3)
	c.SetProcessName(1, "task 1")
	base := c.Epoch()
	for i := 0; i < 8; i++ {
		c.RecordSpan(1, 0, "step", fmt.Sprintf("s%d", i),
			base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, nil)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("ring trace is not JSON: %v", err)
	}
	if doc.OtherData["ring_capacity"] != float64(3) || doc.OtherData["dropped_events"] != float64(5) {
		t.Fatalf("otherData = %v, want ring_capacity 3 / dropped_events 5", doc.OtherData)
	}
	lastTs := -1.0
	seenSpan := false
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if seenSpan {
				t.Fatalf("event %d: metadata after spans", i)
			}
		case "X":
			seenSpan = true
			if ev.Ts < lastTs {
				t.Fatalf("event %d (%s): ts decreases", i, ev.Name)
			}
			lastTs = ev.Ts
		}
	}
	if !seenSpan {
		t.Fatal("no spans in ring trace")
	}
}

// TestHistogramBucketGolden pins the bucket boundaries. Changing them
// breaks comparability of scraped series across versions — if this test
// fails, that is a deliberate breaking change, not a refactor.
func TestHistogramBucketGolden(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != NumHistogramBuckets {
		t.Fatalf("%d bounds, want %d", len(bounds), NumHistogramBuckets)
	}
	want := []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond,
		8 * time.Microsecond, 16 * time.Microsecond, 32 * time.Microsecond,
		64 * time.Microsecond, 128 * time.Microsecond, 256 * time.Microsecond,
		512 * time.Microsecond, 1024 * time.Microsecond, 2048 * time.Microsecond,
		4096 * time.Microsecond, 8192 * time.Microsecond, 16384 * time.Microsecond,
		32768 * time.Microsecond, 65536 * time.Microsecond, 131072 * time.Microsecond,
		262144 * time.Microsecond, 524288 * time.Microsecond, 1048576 * time.Microsecond,
	}
	for i, w := range want {
		if bounds[i] != w {
			t.Fatalf("bounds[%d] = %v, want %v", i, bounds[i], w)
		}
	}
	// The last finite bucket must comfortably exceed any realistic job.
	if last := bounds[len(bounds)-1]; last < 8*time.Hour {
		t.Fatalf("last bound %v is too small", last)
	}
}

// TestHistogramObserveAndQuantile checks bucket placement at and around
// the boundaries, plus the coarse quantile read-out.
func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{
		0, time.Microsecond, // bucket 0
		time.Microsecond + 1, 2 * time.Microsecond, // bucket 1
		3 * time.Microsecond, // bucket 2
		100 * time.Hour,      // +Inf
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", s.Buckets[:4])
	}
	if s.Buckets[NumHistogramBuckets] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Buckets[NumHistogramBuckets])
	}
	wantSum := int64(0 + 1000 + 1001 + 2000 + 3000 + (100 * time.Hour).Nanoseconds())
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
	if q := s.Quantile(0.5); q != 2*time.Microsecond {
		t.Fatalf("p50 = %v, want 2µs", q)
	}
}

// TestHistogramMerge folds one snapshot into another histogram and checks
// bucket-wise addition.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Microsecond)
	a.Observe(5 * time.Microsecond)
	b.Observe(5 * time.Microsecond)
	b.Merge(a.Snapshot())
	s := b.Snapshot()
	if s.Count != 3 || s.Buckets[0] != 1 || s.Buckets[3] != 2 {
		t.Fatalf("merged snapshot = %+v", s)
	}
	if s.SumNanos != 11000 {
		t.Fatalf("merged sum = %d", s.SumNanos)
	}
}

// TestCollectorHistogramsNilAndSorted covers the registry: nil safety and
// the deterministic snapshot order.
func TestCollectorHistogramsNilAndSorted(t *testing.T) {
	var nilC *Collector
	nilC.Histogram(0, "x").Observe(time.Second) // must not panic
	if hv := nilC.Histograms(); hv != nil {
		t.Fatalf("nil collector has histograms: %v", hv)
	}

	c := New()
	c.Histogram(1, "step/b").Observe(time.Millisecond)
	c.Histogram(0, "step/b").Observe(time.Millisecond)
	c.Histogram(0, "step/a").Observe(time.Millisecond)
	c.Histogram(1, "step/b").Observe(2 * time.Millisecond) // same registration
	hv := c.Histograms()
	if len(hv) != 3 {
		t.Fatalf("%d histograms, want 3", len(hv))
	}
	order := fmt.Sprintf("%s/%d %s/%d %s/%d", hv[0].Name, hv[0].Rank, hv[1].Name, hv[1].Rank, hv[2].Name, hv[2].Rank)
	if order != "step/a/0 step/b/0 step/b/1" {
		t.Fatalf("order = %s", order)
	}
	if hv[2].Snap.Count != 2 {
		t.Fatalf("re-registered histogram count = %d, want 2", hv[2].Snap.Count)
	}
}

// TestLoggerJobID checks the correlation-ID plumbing: a context that went
// through WithJobID stamps every record, in both formats, including
// through WithAttrs/WithGroup derivations.
func TestLoggerJobID(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		var buf bytes.Buffer
		lg, err := NewLogger(&buf, format, slog.LevelInfo)
		if err != nil {
			t.Fatal(err)
		}
		ctx := WithJobID(context.Background(), "j42")
		lg.InfoContext(ctx, "job started", "rank", 3)
		lg.With("component", "jobs").InfoContext(ctx, "derived")
		lg.InfoContext(context.Background(), "no job here")
		out := buf.String()
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 3 {
			t.Fatalf("%s: %d lines", format, len(lines))
		}
		if !strings.Contains(lines[0], "j42") || !strings.Contains(lines[1], "j42") {
			t.Fatalf("%s: job ID missing: %q", format, out)
		}
		if strings.Contains(lines[2], "j42") {
			t.Fatalf("%s: job ID leaked into unrelated record: %q", format, lines[2])
		}
	}
	if _, err := NewLogger(&bytes.Buffer{}, "yaml", slog.LevelInfo); err == nil {
		t.Fatal("unknown format accepted")
	}
	// Debug below the configured level is suppressed.
	var buf bytes.Buffer
	lg, _ := NewLogger(&buf, "text", slog.LevelInfo)
	lg.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug record leaked: %q", buf.String())
	}
}
