package obsv

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// histogram.go implements the fixed log-bucket latency histogram behind
// the per-step and jobs-layer latency distributions: bounded memory,
// lock-free Observe, mergeable snapshots, and bucket boundaries that are
// pinned (TestHistogramBucketGolden) so series scraped across versions and
// across processes stay comparable.

// NumHistogramBuckets is the number of finite buckets; one overflow
// (+Inf) bucket follows them.
const NumHistogramBuckets = 36

// histBucket0 is the first bucket's upper bound. Buckets double from
// there: 1µs, 2µs, 4µs, … — 36 finite buckets reach 2^35 µs ≈ 9.5 h,
// beyond any step or job this pipeline runs; everything above lands in
// the +Inf bucket.
const histBucket0 = time.Microsecond

// HistogramBounds returns the fixed upper bounds of the finite buckets.
// The slice is freshly allocated; callers may keep it.
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, NumHistogramBuckets)
	for i := range out {
		out[i] = histBucket0 << uint(i)
	}
	return out
}

// histBucketOf returns the index of the smallest bucket whose upper bound
// is ≥ d (NumHistogramBuckets for the +Inf bucket). Non-positive
// durations land in bucket 0.
func histBucketOf(d time.Duration) int {
	if d <= histBucket0 {
		return 0
	}
	// Smallest i with d ≤ 1µs·2^i  ⇔  i = bits.Len(⌈d/1µs⌉ − 1).
	q := (uint64(d) + uint64(histBucket0) - 1) / uint64(histBucket0)
	i := bits.Len64(q - 1)
	if i > NumHistogramBuckets {
		return NumHistogramBuckets
	}
	return i
}

// Histogram is a fixed log-bucket latency histogram. Observe is lock-free
// (one atomic add per bucket/count/sum); snapshots are deterministic for
// a quiesced histogram. A nil *Histogram — what a nil collector hands out
// — is a no-op, so instrumentation sites observe unconditionally.
type Histogram struct {
	buckets [NumHistogramBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty standalone histogram (the jobs layer owns
// its queue/run/total histograms directly, outside any collector).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Safe on nil (does nothing).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[histBucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// counts (not cumulative), the total observation count and the duration
// sum. Snapshots merge with Merge, so per-rank and per-job histograms
// fold into fleet-wide ones without losing distribution shape.
type HistogramSnapshot struct {
	// Buckets[i] counts observations in (bound[i-1], bound[i]]; the last
	// entry is the +Inf overflow bucket.
	Buckets [NumHistogramBuckets + 1]uint64 `json:"buckets"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// SumNanos is the sum of all observed durations.
	SumNanos int64 `json:"sum_nanos"`
}

// Snapshot copies the histogram's current state (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	return s
}

// Merge folds a snapshot into the histogram (bucket-wise addition — the
// mergeability that makes per-job histograms aggregate into service-level
// ones). Safe on nil (does nothing).
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil {
		return
	}
	for i, n := range s.Buckets {
		if n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.SumNanos)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (0 for an empty histogram, the last finite bound
// for the +Inf bucket) — the scrape-free way to read p50/p99 locally.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if i >= NumHistogramBuckets {
				return histBucket0 << uint(NumHistogramBuckets-1)
			}
			return histBucket0 << uint(i)
		}
	}
	return histBucket0 << uint(NumHistogramBuckets-1)
}

// Histogram returns the histogram registered under (rank, name), creating
// it on first use — the same registration pattern as Counter. A nil
// collector returns a nil (no-op) histogram.
func (c *Collector) Histogram(rank int, name string) *Histogram {
	if c == nil {
		return nil
	}
	k := counterKey{name: name, rank: rank}
	c.cmu.Lock()
	h, ok := c.hists[k]
	if !ok {
		h = &Histogram{}
		c.hists[k] = h
	}
	c.cmu.Unlock()
	return h
}

// HistogramValue is one entry of a histogram snapshot set.
type HistogramValue struct {
	// Name is the scoped histogram name, e.g. "step/LocalSort".
	Name string `json:"name"`
	// Rank is the owning task's rank, or -1 for run-wide histograms.
	Rank int `json:"rank"`
	// Snap is the histogram's state at snapshot time.
	Snap HistogramSnapshot `json:"snap"`
}

// Histograms returns a snapshot of every registered histogram, sorted by
// name then rank — deterministic, like Counters.
func (c *Collector) Histograms() []HistogramValue {
	if c == nil {
		return nil
	}
	c.cmu.Lock()
	out := make([]HistogramValue, 0, len(c.hists))
	for k, h := range c.hists {
		out = append(out, HistogramValue{Name: k.name, Rank: k.rank, Snap: h.Snapshot()})
	}
	c.cmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}
