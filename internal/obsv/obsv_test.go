package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollectorNoOps verifies the no-op contract: every operation on a
// nil collector (and the nil counters and zero spans it hands out) must be
// safe and side-effect free — this is what keeps the disabled hot path
// branch-only.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	sp := c.StartSpan(0, 0, "step", "x")
	sp.End()
	sp.EndArgs(map[string]any{"k": 1})
	c.RecordSpan(0, 0, "step", "x", time.Now(), time.Second, nil)
	c.SetProcessName(0, "p")
	c.SetThreadName(0, 0, "t")
	ctr := c.Counter(0, "n")
	ctr.Add(5)
	if got := ctr.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	if ev := c.Events(); ev != nil {
		t.Fatalf("nil collector has events: %v", ev)
	}
	if cv := c.Counters(); cv != nil {
		t.Fatalf("nil collector has counters: %v", cv)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not JSON: %v", err)
	}
}

func TestCounters(t *testing.T) {
	c := New()
	a := c.Counter(1, "alpha")
	a.Add(3)
	c.Counter(0, "alpha").Add(2)
	c.Counter(RankGlobal, "beta").Add(7)
	// Re-registration returns the same counter.
	c.Counter(1, "alpha").Add(1)

	got := c.Counters()
	want := []CounterValue{
		{Name: "alpha", Rank: 0, Value: 2},
		{Name: "alpha", Rank: 1, Value: 4},
		{Name: "beta", Rank: RankGlobal, Value: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	table := c.CountersTable().String()
	for _, s := range []string{"alpha", "beta", "Counter", "Rank", "Value"} {
		if !strings.Contains(table, s) {
			t.Errorf("table missing %q:\n%s", s, table)
		}
	}
	var csv bytes.Buffer
	if err := c.WriteCountersCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "beta,-,7") {
		t.Errorf("CSV missing run-global beta row:\n%s", csv.String())
	}
	var js bytes.Buffer
	if err := c.WriteCountersJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back []CounterValue
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("counters JSON round-trip: %v", err)
	}
	if len(back) != len(want) {
		t.Fatalf("JSON snapshot has %d entries, want %d", len(back), len(want))
	}
}

func TestCounterConcurrency(t *testing.T) {
	c := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctr := c.Counter(0, "shared")
			for i := 0; i < per; i++ {
				ctr.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Counter(0, "shared").Value(); got != workers*per {
		t.Fatalf("shared counter = %d, want %d", got, workers*per)
	}
}

// TestWriteTraceOrdering checks the trace writer's output contract:
// metadata first, then complete events with monotonically non-decreasing
// microsecond timestamps, each with the fields the trace-event format
// requires.
func TestWriteTraceOrdering(t *testing.T) {
	c := New()
	base := c.Epoch()
	c.SetProcessName(1, "task 1")
	c.SetThreadName(1, 0, "steps")
	// Record out of order; the writer must sort.
	c.RecordSpan(1, 0, "step", "later", base.Add(50*time.Millisecond), 10*time.Millisecond, nil)
	c.RecordSpan(0, 0, "step", "earlier", base.Add(10*time.Millisecond), 20*time.Millisecond,
		map[string]any{"pass": 0})
	c.RecordSpan(1, 0, "step", "middle", base.Add(30*time.Millisecond), 5*time.Millisecond, nil)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	// Metadata first.
	for i, e := range doc.TraceEvents[:2] {
		if e.Ph != "M" {
			t.Errorf("event %d: phase %q, want M", i, e.Ph)
		}
	}
	lastTs := -1.0
	for i, e := range doc.TraceEvents[2:] {
		if e.Ph != "X" {
			t.Errorf("span %d: phase %q, want X", i, e.Ph)
		}
		if e.Name == "" || e.Pid == nil || e.Tid == nil || e.Dur == nil {
			t.Errorf("span %d missing required fields: %+v", i, e)
		}
		if e.Ts < lastTs {
			t.Errorf("span %d: ts %v < previous %v (not monotonic)", i, e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
	// Spot-check units: "earlier" started 10 ms after epoch = 10 000 µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "earlier" {
			if e.Ts < 9_999 || e.Ts > 10_001 {
				t.Errorf("earlier ts = %v µs, want ~10000", e.Ts)
			}
			if e.Dur == nil || *e.Dur < 19_999 || *e.Dur > 20_001 {
				t.Errorf("earlier dur = %v µs, want ~20000", e.Dur)
			}
			if e.Args["pass"] != float64(0) {
				t.Errorf("earlier args = %v", e.Args)
			}
		}
	}
}

func TestSpanWallClock(t *testing.T) {
	c := New()
	sp := c.StartSpan(2, 3, "detail", "sleepy")
	time.Sleep(2 * time.Millisecond)
	sp.EndArgs(map[string]any{"bytes": int64(42)})
	ev := c.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events", len(ev))
	}
	e := ev[0]
	if e.Pid != 2 || e.Tid != 3 || e.Cat != "detail" || e.Name != "sleepy" {
		t.Errorf("event = %+v", e)
	}
	if e.Dur < 2*time.Millisecond {
		t.Errorf("dur = %v, want ≥ 2ms", e.Dur)
	}
	if e.Args["bytes"] != int64(42) {
		t.Errorf("args = %v", e.Args)
	}
}
