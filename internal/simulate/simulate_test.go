package simulate

import (
	"io"
	"os"
	"testing"

	"metaprep/internal/fastq"
)

func tinySpec() CommunitySpec {
	return CommunitySpec{
		Name:    "tiny",
		Species: 4, GenomeLen: 2000,
		AbundanceSigma: 0.5,
		SharedRepeats:  2, RepeatLen: 150, RepeatsPerGenome: 2,
		Pairs: 200, ReadLen: 60,
		Paired: true, InsertMin: 120, InsertMax: 200,
		ErrorRate: 0.01, NRate: 0.002,
		Files: 2, Seed: 7,
	}
}

func TestGenerateBasics(t *testing.T) {
	dir := t.TempDir()
	ds, err := Generate(tinySpec(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Files) != 2 {
		t.Fatalf("files: %d", len(ds.Files))
	}
	if ds.Records != 400 {
		t.Errorf("records = %d, want 400", ds.Records)
	}
	if ds.Bases != 400*60 {
		t.Errorf("bases = %d", ds.Bases)
	}
	if len(ds.Origin) != 200 {
		t.Errorf("origin entries = %d", len(ds.Origin))
	}
	if len(ds.Genomes) != 4 {
		t.Errorf("genomes = %d", len(ds.Genomes))
	}
	// All origins valid.
	for _, g := range ds.Origin {
		if g < 0 || g >= 4 {
			t.Fatalf("bad origin %d", g)
		}
	}
	// Files parse as FASTQ with the right record split.
	var total int64
	for _, path := range ds.Files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := fastq.CountRecords(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if n%2 != 0 {
			t.Errorf("%s holds %d records — a pair was split across files", path, n)
		}
		total += n
	}
	if total != 400 {
		t.Errorf("total records in files = %d", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := Generate(tinySpec(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(tinySpec(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Files {
		b1, _ := os.ReadFile(d1.Files[i])
		b2, _ := os.ReadFile(d2.Files[i])
		if string(b1) != string(b2) {
			t.Fatalf("file %d differs between identically-seeded runs", i)
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	s2 := tinySpec()
	s2.Seed = 8
	d1, _ := Generate(tinySpec(), t.TempDir())
	d2, _ := Generate(s2, t.TempDir())
	b1, _ := os.ReadFile(d1.Files[0])
	b2, _ := os.ReadFile(d2.Files[0])
	if string(b1) == string(b2) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateUnpaired(t *testing.T) {
	spec := tinySpec()
	spec.Paired = false
	spec.Files = 1
	ds, err := Generate(spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Records != 200 {
		t.Errorf("records = %d, want 200", ds.Records)
	}
}

func TestReadsComeFromGenomes(t *testing.T) {
	// With no errors or Ns, every read must be an exact substring of its
	// origin genome (possibly reverse-complemented).
	spec := tinySpec()
	spec.ErrorRate = 0
	spec.NRate = 0
	spec.Files = 1
	ds, err := Generate(spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(ds.Files[0])
	defer f.Close()
	r := fastq.NewReader(f)
	rec := 0
	for {
		record, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		genome := ds.Genomes[ds.Origin[rec/2]]
		seq := string(record.Seq)
		rc := string(revCompInPlace(append([]byte(nil), record.Seq...)))
		if !contains(genome, seq) && !contains(genome, rc) {
			t.Fatalf("record %d is not a substring of its origin genome", rec)
		}
		rec++
	}
}

func contains(genome []byte, s string) bool {
	g := string(genome)
	for i := 0; i+len(s) <= len(g); i++ {
		if g[i:i+len(s)] == s {
			return true
		}
	}
	return false
}

func TestAbundanceSkew(t *testing.T) {
	spec := tinySpec()
	spec.AbundanceSigma = 2.0
	spec.Pairs = 1000
	ds, err := Generate(spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, spec.Species)
	for _, g := range ds.Origin {
		counts[g]++
	}
	total := 0
	maxC := 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if total != 1000 {
		t.Fatalf("apportioned %d pairs", total)
	}
	// With σ=2 the distribution must be visibly skewed.
	if maxC <= total/spec.Species {
		t.Errorf("no abundance skew: max species has %d of %d", maxC, total)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*CommunitySpec){
		func(s *CommunitySpec) { s.Species = 0 },
		func(s *CommunitySpec) { s.Pairs = 0 },
		func(s *CommunitySpec) { s.ReadLen = s.GenomeLen },
		func(s *CommunitySpec) { s.InsertMin = 10 },
		func(s *CommunitySpec) { s.Files = 0 },
		func(s *CommunitySpec) { s.ErrorRate = 2 },
	}
	for i, mutate := range bad {
		s := tinySpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
		if spec.TotalBases() <= 0 {
			t.Errorf("%s: no volume", name)
		}
	}
	// Scaling.
	full, _ := Preset("MM", 1.0)
	tenth, _ := Preset("MM", 0.1)
	if tenth.Pairs != full.Pairs/10 {
		t.Errorf("scale 0.1: %d pairs, want %d", tenth.Pairs, full.Pairs/10)
	}
	// Aliases.
	if _, err := Preset("hgsim", 1); err != nil {
		t.Error("alias hgsim rejected")
	}
	if _, err := Preset("bogus", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	// Relative volumes follow Table 2's ordering HG < LL < MM < IS.
	var prev int64
	for _, name := range PresetNames() {
		spec, _ := Preset(name, 1.0)
		if spec.TotalBases() <= prev {
			t.Errorf("%s volume %d not greater than previous %d", name, spec.TotalBases(), prev)
		}
		prev = spec.TotalBases()
	}
}

func TestGenerateTinyScale(t *testing.T) {
	spec, _ := Preset("HG", 0.01)
	ds, err := Generate(spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Records != int64(2*spec.Pairs) {
		t.Errorf("records = %d", ds.Records)
	}
}

func TestStrainVariants(t *testing.T) {
	spec := tinySpec()
	spec.Strains = 3
	spec.StrainDivergence = 0.02
	spec.ErrorRate = 0
	spec.NRate = 0
	spec.Files = 1
	ds, err := Generate(spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// With strains, reads need not be substrings of the base genome (they
	// come from diverged variants) — but most bases still match; count
	// reads that are exact substrings of the base genome: with 2% per-base
	// divergence and 60 bp reads, roughly (0.98^60 ≈ 30%) of strain-variant
	// reads mutate; reads from strain 0 always match. Just assert both
	// kinds exist.
	f, _ := os.Open(ds.Files[0])
	defer f.Close()
	r := fastq.NewReader(f)
	exact, inexact := 0, 0
	rec := 0
	for {
		record, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		genome := ds.Genomes[ds.Origin[rec/2]]
		seq := string(record.Seq)
		rc := string(revCompInPlace(append([]byte(nil), record.Seq...)))
		if contains(genome, seq) || contains(genome, rc) {
			exact++
		} else {
			inexact++
		}
		rec++
	}
	if exact == 0 || inexact == 0 {
		t.Fatalf("strain mix: %d exact, %d diverged — want both", exact, inexact)
	}
}

func TestStrainValidation(t *testing.T) {
	spec := tinySpec()
	spec.Strains = 3
	if err := spec.Validate(); err == nil {
		t.Error("strains without divergence accepted")
	}
	spec.StrainDivergence = 0.9
	if err := spec.Validate(); err == nil {
		t.Error("divergence 0.9 accepted")
	}
	spec.StrainDivergence = 0.01
	if err := spec.Validate(); err != nil {
		t.Error(err)
	}
}
