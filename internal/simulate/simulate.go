// Package simulate generates synthetic metagenomic communities and
// sequencing reads, standing in for the paper's gated datasets (Table 2:
// NCBI human gut, Lake Lanier, mock microbial community and the JGI Iowa
// continuous-corn soil set, 2.3–223 Gbp).
//
// The generator controls exactly the dataset properties the evaluation
// depends on:
//
//   - per-species sequencing coverage — reads of the same species overlap
//     (share k-mers) only when coverage is high enough, which determines
//     whether a species' reads form one read-graph component;
//   - shared repeats — sequences inserted into many genomes glue the
//     species components into the giant component the paper observes
//     (§4.4: 76–99.5 % of reads in the largest component);
//   - repeat copy number — repeat k-mers occur at high frequency, so the
//     k-mer frequency filter (KF) cuts exactly those edges, splitting the
//     giant component as in Table 7;
//   - sequencing errors and N bases — exercising the low-frequency filter
//     and the enumeration's N handling.
//
// Each read records its source species, giving experiments a ground truth
// the real datasets lack.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"metaprep/internal/fastq"
)

// CommunitySpec describes a synthetic metagenome.
type CommunitySpec struct {
	// Name labels the dataset in reports (e.g. "HGsim").
	Name string
	// Species is the number of distinct genomes.
	Species int
	// GenomeLen is the mean genome length in bases.
	GenomeLen int
	// GenomeLenSigma is the lognormal σ of genome lengths (0 = uniform).
	GenomeLenSigma float64
	// AbundanceSigma is the lognormal σ of species abundances (0 = equal
	// abundance). Larger values skew coverage across species, the
	// metagenome-specific property the paper's intro highlights.
	AbundanceSigma float64
	// SharedRepeats is the number of distinct repeat sequences shared
	// across genomes; RepeatLen is their length; RepeatsPerGenome is how
	// many repeat insertions each genome receives. Repeat k-mers occur at
	// high frequency (copies × coverage), so they are the glue a KF≤30
	// filter removes.
	SharedRepeats    int
	RepeatLen        int
	RepeatsPerGenome int
	// HomologSegments models conserved homologous sequence: each segment
	// of HomologLen bases is inserted once into HomologSharers randomly
	// chosen genomes. Its k-mers occur at frequency ≈ sharers × coverage —
	// the mid-frequency band that survives the paper's filters and keeps
	// the largest component substantial even under 10 ≤ KF ≤ 30 (Table 7).
	HomologSegments int
	HomologLen      int
	HomologSharers  int
	// RareSpecies adds a "rare biosphere": RareFraction of the read pairs
	// are drawn uniformly from RareSpecies extra genomes of RareGenomeLen
	// bases each, carrying no shared repeats or homologs. Their coverage
	// sits below the read-overlap percolation threshold, so their reads
	// stay outside the giant component even unfiltered — the reason the
	// paper's diverse Lake Lanier dataset has only 76.3 % of reads in the
	// largest component while the mock community has 99.5 %.
	RareSpecies   int
	RareGenomeLen int
	RareFraction  float64
	// Strains models the paper's §2 challenge (i): "closely related
	// strains from the same species might be present in the community".
	// When > 1, each main species becomes Strains variant genomes derived
	// from a common ancestor by substituting bases at StrainDivergence
	// rate; reads of a species are drawn from a random strain but carry
	// the species as their Origin (strains are not separable ground
	// truth, exactly as in real communities).
	Strains          int
	StrainDivergence float64
	// Pairs is the number of read pairs (2·Pairs records) when Paired,
	// or the number of single reads otherwise.
	Pairs int
	// ReadLen is the per-read length.
	ReadLen int
	// Paired emits interleaved paired-end reads with the given insert size
	// span [InsertMin, InsertMax] (outer distance between mate starts).
	Paired    bool
	InsertMin int
	InsertMax int
	// ErrorRate is the per-base substitution probability; NRate the
	// per-base probability of an unreadable 'N'.
	ErrorRate float64
	NRate     float64
	// Files splits the output across this many FASTQ files (≥ 1).
	Files int
	// Seed makes generation reproducible.
	Seed int64
}

// Validate checks spec invariants.
func (s CommunitySpec) Validate() error {
	if s.Species < 1 || s.GenomeLen < 1 || s.Pairs < 1 || s.ReadLen < 1 {
		return fmt.Errorf("simulate: species/genome/pairs/readlen must be ≥ 1 (%+v)", s)
	}
	if s.ReadLen > s.GenomeLen/2 {
		return fmt.Errorf("simulate: read length %d too large for genome length %d", s.ReadLen, s.GenomeLen)
	}
	if s.Paired && (s.InsertMin < s.ReadLen || s.InsertMax < s.InsertMin) {
		return fmt.Errorf("simulate: bad insert range [%d,%d] for read length %d", s.InsertMin, s.InsertMax, s.ReadLen)
	}
	if s.Files < 1 {
		return fmt.Errorf("simulate: files %d < 1", s.Files)
	}
	if s.ErrorRate < 0 || s.ErrorRate > 1 || s.NRate < 0 || s.NRate > 1 {
		return fmt.Errorf("simulate: rates out of [0,1]")
	}
	if s.RareFraction < 0 || s.RareFraction >= 1 {
		return fmt.Errorf("simulate: rare fraction %v out of [0,1)", s.RareFraction)
	}
	if s.RareFraction > 0 && (s.RareSpecies < 1 || s.RareGenomeLen < 2*s.ReadLen) {
		return fmt.Errorf("simulate: rare species misconfigured (%d species of %d bases)",
			s.RareSpecies, s.RareGenomeLen)
	}
	if s.Strains > 1 && (s.StrainDivergence <= 0 || s.StrainDivergence > 0.5) {
		return fmt.Errorf("simulate: strain divergence %v out of (0, 0.5]", s.StrainDivergence)
	}
	if s.Paired && s.RareFraction > 0 && s.InsertMax > s.RareGenomeLen {
		return fmt.Errorf("simulate: insert max %d exceeds rare genome length %d", s.InsertMax, s.RareGenomeLen)
	}
	return nil
}

// TotalBases returns the dataset's read volume in bases.
func (s CommunitySpec) TotalBases() int64 {
	reads := int64(s.Pairs)
	if s.Paired {
		reads *= 2
	}
	return reads * int64(s.ReadLen)
}

// Dataset is a generated community: its genomes, reads on disk, and ground
// truth.
type Dataset struct {
	Spec CommunitySpec
	// Files are the FASTQ paths written.
	Files []string
	// Genomes holds the species sequences (repeat insertions applied).
	Genomes [][]byte
	// Origin[i] is the source species of read pair i (or read i when
	// unpaired) — ground truth for partition-purity analysis.
	Origin []int32
	// Records and Bases summarize the written output.
	Records int64
	Bases   int64
}

// Generate builds the community and writes its reads as FASTQ under dir.
func Generate(spec CommunitySpec, dir string) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ds := &Dataset{Spec: spec}

	// Shared repeat library.
	repeats := make([][]byte, spec.SharedRepeats)
	for i := range repeats {
		repeats[i] = randSeq(rng, spec.RepeatLen)
	}

	// Genomes with repeat insertions (overwrite-in-place keeps lengths
	// deterministic).
	ds.Genomes = make([][]byte, spec.Species)
	for g := range ds.Genomes {
		length := spec.GenomeLen
		if spec.GenomeLenSigma > 0 {
			length = int(float64(spec.GenomeLen) * math.Exp(rng.NormFloat64()*spec.GenomeLenSigma))
			if min := 2 * spec.ReadLen; length < min {
				length = min
			}
		}
		genome := randSeq(rng, length)
		for r := 0; r < spec.RepeatsPerGenome && len(repeats) > 0; r++ {
			rep := repeats[rng.Intn(len(repeats))]
			if len(rep) >= len(genome) {
				continue
			}
			pos := rng.Intn(len(genome) - len(rep))
			copy(genome[pos:], rep)
		}
		ds.Genomes[g] = genome
	}

	// Homologous segments: one copy in each of HomologSharers genomes.
	for h := 0; h < spec.HomologSegments; h++ {
		seg := randSeq(rng, spec.HomologLen)
		sharers := rng.Perm(spec.Species)
		n := spec.HomologSharers
		if n > len(sharers) {
			n = len(sharers)
		}
		for _, g := range sharers[:n] {
			genome := ds.Genomes[g]
			if len(seg) >= len(genome) {
				continue
			}
			pos := rng.Intn(len(genome) - len(seg))
			copy(genome[pos:], seg)
		}
	}

	// Strain variants (§2 challenge (i)): each main species may exist as
	// several near-identical genomes; reads sample a random strain.
	var strains [][][]byte
	if spec.Strains > 1 {
		strains = make([][][]byte, spec.Species)
		for g := 0; g < spec.Species; g++ {
			variants := make([][]byte, spec.Strains)
			variants[0] = ds.Genomes[g]
			for s := 1; s < spec.Strains; s++ {
				v := append([]byte(nil), ds.Genomes[g]...)
				for i := range v {
					if rng.Float64() < spec.StrainDivergence {
						v[i] = "ACGT"[(baseIndex(v[i])+1+rng.Intn(3))%4]
					}
				}
				variants[s] = v
			}
			strains[g] = variants
		}
	}

	// The rare biosphere: extra small genomes with no shared sequence.
	for r := 0; r < spec.RareSpecies && spec.RareFraction > 0; r++ {
		ds.Genomes = append(ds.Genomes, randSeq(rng, spec.RareGenomeLen))
	}

	// Abundance-weighted read allocation (largest-remainder rounding keeps
	// the total exact). Rare species split their fixed share evenly.
	rarePairs := int(spec.RareFraction * float64(spec.Pairs))
	mainPairs := spec.Pairs - rarePairs
	weights := make([]float64, len(ds.Genomes))
	var wsum float64
	for g := 0; g < spec.Species; g++ {
		w := 1.0
		if spec.AbundanceSigma > 0 {
			w = math.Exp(rng.NormFloat64() * spec.AbundanceSigma)
		}
		weights[g] = w
		wsum += w
	}
	pairsOf := apportion(weights[:spec.Species], wsum, mainPairs)
	if rarePairs > 0 {
		rareW := make([]float64, spec.RareSpecies)
		for i := range rareW {
			rareW[i] = 1
		}
		pairsOf = append(pairsOf, apportion(rareW, float64(spec.RareSpecies), rarePairs)...)
	}

	// Ground-truth origin per pair, shuffled so consecutive reads mix
	// species like a real sequencing run.
	ds.Origin = make([]int32, 0, spec.Pairs)
	for g, n := range pairsOf {
		for i := 0; i < n; i++ {
			ds.Origin = append(ds.Origin, int32(g))
		}
	}
	rng.Shuffle(len(ds.Origin), func(i, j int) {
		ds.Origin[i], ds.Origin[j] = ds.Origin[j], ds.Origin[i]
	})

	// Write reads, splitting pairs across files without breaking pairs.
	writers := make([]*fastq.Writer, spec.Files)
	files := make([]*os.File, spec.Files)
	for i := range writers {
		path := filepath.Join(dir, fmt.Sprintf("%s_%02d.fastq", nameOrReads(spec.Name), i))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files[i] = f
		writers[i] = fastq.NewWriter(f)
		ds.Files = append(ds.Files, path)
	}
	perFile := (spec.Pairs + spec.Files - 1) / spec.Files
	var qualBuf []byte
	for pair, g := range ds.Origin {
		w := writers[min(pair/perFile, spec.Files-1)]
		genome := ds.Genomes[g]
		if strains != nil && int(g) < spec.Species {
			// Both mates come from the same strain — they are one fragment.
			genome = strains[g][rng.Intn(spec.Strains)]
		}
		if spec.Paired {
			insert := spec.InsertMin
			if spec.InsertMax > spec.InsertMin {
				insert += rng.Intn(spec.InsertMax - spec.InsertMin + 1)
			}
			if insert > len(genome) {
				insert = len(genome)
			}
			start := rng.Intn(len(genome) - insert + 1)
			m1 := readFrom(rng, genome, start, spec)
			m2 := readFrom(rng, genome, start+insert-spec.ReadLen, spec)
			m2 = revCompInPlace(m2)
			qualBuf = qual(qualBuf, spec.ReadLen)
			if err := w.Write(fastq.Record{ID: pairID(pair, g, 1), Seq: m1, Qual: qualBuf}); err != nil {
				return nil, err
			}
			if err := w.Write(fastq.Record{ID: pairID(pair, g, 2), Seq: m2, Qual: qualBuf}); err != nil {
				return nil, err
			}
			ds.Records += 2
			ds.Bases += int64(2 * spec.ReadLen)
		} else {
			start := rng.Intn(len(genome) - spec.ReadLen + 1)
			seq := readFrom(rng, genome, start, spec)
			if rng.Intn(2) == 1 {
				seq = revCompInPlace(seq)
			}
			qualBuf = qual(qualBuf, spec.ReadLen)
			if err := w.Write(fastq.Record{ID: pairID(pair, g, 0), Seq: seq, Qual: qualBuf}); err != nil {
				return nil, err
			}
			ds.Records++
			ds.Bases += int64(spec.ReadLen)
		}
	}
	for i := range writers {
		if err := writers[i].Flush(); err != nil {
			return nil, err
		}
		if err := files[i].Close(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// apportion distributes total items over weights with largest-remainder
// rounding.
func apportion(weights []float64, wsum float64, total int) []int {
	n := len(weights)
	counts := make([]int, n)
	type frac struct {
		g int
		f float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for g, w := range weights {
		exact := w / wsum * float64(total)
		counts[g] = int(exact)
		assigned += counts[g]
		fracs[g] = frac{g, exact - float64(counts[g])}
	}
	// Hand out the remainder to the largest fractional parts.
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i].f > fracs[best].f {
				best = i
			}
		}
		counts[fracs[best].g]++
		fracs[best].f = -1
		assigned++
	}
	return counts
}

// readFrom extracts a read at start with substitution errors and Ns.
func readFrom(rng *rand.Rand, genome []byte, start int, spec CommunitySpec) []byte {
	if start < 0 {
		start = 0
	}
	if start+spec.ReadLen > len(genome) {
		start = len(genome) - spec.ReadLen
	}
	seq := append([]byte(nil), genome[start:start+spec.ReadLen]...)
	for i := range seq {
		if spec.ErrorRate > 0 && rng.Float64() < spec.ErrorRate {
			seq[i] = "ACGT"[(baseIndex(seq[i])+1+rng.Intn(3))%4]
		}
		if spec.NRate > 0 && rng.Float64() < spec.NRate {
			seq[i] = 'N'
		}
	}
	return seq
}

func baseIndex(b byte) int {
	switch b {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	default:
		return 3
	}
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func revCompInPlace(s []byte) []byte {
	comp := [256]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A', 'N': 'N'}
	for i, j := 0, len(s)-1; i <= j; i, j = i+1, j-1 {
		s[i], s[j] = comp[s[j]], comp[s[i]]
	}
	return s
}

func qual(buf []byte, n int) []byte {
	if len(buf) != n {
		buf = make([]byte, n)
		for i := range buf {
			buf[i] = 'I'
		}
	}
	return buf
}

func pairID(pair int, species int32, mate int) []byte {
	if mate == 0 {
		return []byte(fmt.Sprintf("s%d_p%d", species, pair))
	}
	return []byte(fmt.Sprintf("s%d_p%d/%d", species, pair, mate))
}

func nameOrReads(name string) string {
	if name == "" {
		return "reads"
	}
	return name
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
