package simulate

import "fmt"

// presets.go defines the scaled stand-ins for the paper's four evaluation
// datasets (Table 2). Volumes are ~1000× below the originals so the whole
// evaluation runs on one machine; the community structure is tuned so the
// downstream observables match the paper's shape:
//
//   - HGsim (human gut): moderate diversity, skewed abundance, enough
//     shared repeats that the unfiltered largest component is very large
//     (paper: 95.5 % of reads at k=27).
//   - LLsim (Lake Lanier): high diversity and low per-species coverage, so
//     the unfiltered largest component is noticeably smaller (paper:
//     76.3 %).
//   - MMsim (mock community): few species at high coverage — the largest
//     component swallows nearly everything (paper: 99.5 %).
//   - ISsim (Iowa corn soil): the big one, used for the multi-node and
//     multi-pass experiments (Fig. 7); very high diversity.
//
// Scale multiplies the read-pair count (1.0 = the standard scaled size).

// Preset returns the named dataset spec ("HG", "LL", "MM", "IS", with or
// without the "sim" suffix) at the given scale.
func Preset(name string, scale float64) (CommunitySpec, error) {
	if scale <= 0 {
		scale = 1
	}
	var s CommunitySpec
	switch canon(name) {
	case "HG":
		s = CommunitySpec{
			Name:    "HGsim",
			Species: 12, GenomeLen: 9_000, GenomeLenSigma: 0.3,
			AbundanceSigma: 0.7,
			SharedRepeats:  6, RepeatLen: 90, RepeatsPerGenome: 15,
			HomologSegments: 12, HomologLen: 400, HomologSharers: 2,
			RareSpecies: 60, RareGenomeLen: 4_000, RareFraction: 0.05,
			Pairs: 11_500, ReadLen: 100,
			Paired: true, InsertMin: 250, InsertMax: 400,
			ErrorRate: 0.002, NRate: 0.0008,
			Files: 1, Seed: 42,
		}
	case "LL":
		s = CommunitySpec{
			Name:    "LLsim",
			Species: 24, GenomeLen: 9_000, GenomeLenSigma: 0.4,
			AbundanceSigma: 0.65,
			SharedRepeats:  8, RepeatLen: 90, RepeatsPerGenome: 10,
			HomologSegments: 30, HomologLen: 400, HomologSharers: 2,
			RareSpecies: 250, RareGenomeLen: 5_000, RareFraction: 0.24,
			Pairs: 21_500, ReadLen: 100,
			Paired: true, InsertMin: 250, InsertMax: 400,
			ErrorRate: 0.002, NRate: 0.0008,
			Files: 2, Seed: 43,
		}
	case "MM":
		s = CommunitySpec{
			Name:    "MMsim",
			Species: 14, GenomeLen: 20_000, GenomeLenSigma: 0.25,
			AbundanceSigma: 0.5,
			SharedRepeats:  6, RepeatLen: 90, RepeatsPerGenome: 12,
			HomologSegments: 8, HomologLen: 400, HomologSharers: 2,
			RareSpecies: 10, RareGenomeLen: 4_000, RareFraction: 0.005,
			Pairs: 55_000, ReadLen: 100,
			Paired: true, InsertMin: 250, InsertMax: 400,
			ErrorRate: 0.002, NRate: 0.0008,
			Files: 2, Seed: 44,
		}
	case "IS":
		s = CommunitySpec{
			Name:    "ISsim",
			Species: 100, GenomeLen: 12_000, GenomeLenSigma: 0.4,
			AbundanceSigma: 0.9,
			SharedRepeats:  20, RepeatLen: 90, RepeatsPerGenome: 10,
			HomologSegments: 120, HomologLen: 400, HomologSharers: 3,
			RareSpecies: 500, RareGenomeLen: 5_000, RareFraction: 0.15,
			Pairs: 250_000, ReadLen: 100,
			Paired: true, InsertMin: 250, InsertMax: 400,
			ErrorRate: 0.002, NRate: 0.0008,
			Files: 4, Seed: 45,
		}
	default:
		return s, fmt.Errorf("simulate: unknown preset %q (want HG, LL, MM or IS)", name)
	}
	// Scaling reduces the read volume and the community size together so
	// per-species coverage — the property that decides whether a species'
	// reads form one component — is preserved at every scale.
	s.Pairs = int(float64(s.Pairs) * scale)
	if s.Pairs < 1 {
		s.Pairs = 1
	}
	if scale < 1 {
		s.Species = int(float64(s.Species) * scale)
		if s.Species < 2 {
			s.Species = 2
		}
		if s.SharedRepeats = int(float64(s.SharedRepeats) * scale); s.SharedRepeats < 2 {
			s.SharedRepeats = 2
		}
		if s.RareSpecies = int(float64(s.RareSpecies) * scale); s.RareSpecies < 1 {
			s.RareSpecies = 1
		}
	}
	return s, nil
}

// PresetNames lists the available presets in Table 2's order.
func PresetNames() []string { return []string{"HG", "LL", "MM", "IS"} }

func canon(name string) string {
	switch name {
	case "HG", "hg", "HGsim", "hgsim":
		return "HG"
	case "LL", "ll", "LLsim", "llsim":
		return "LL"
	case "MM", "mm", "MMsim", "mmsim":
		return "MM"
	case "IS", "is", "ISsim", "issim":
		return "IS"
	}
	return name
}
