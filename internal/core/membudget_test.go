package core

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAutoSpillBudget(t *testing.T) {
	const gib = int64(1) << 30

	t.Run("cgroup-v2", func(t *testing.T) {
		root := t.TempDir()
		writeFixture(t, root, "sys/fs/cgroup/memory.max", "2147483648\n")
		if got := autoSpillBudget(root, 1); got != gib {
			t.Fatalf("got %d, want %d", got, gib)
		}
		// Divided across ranks.
		if got := autoSpillBudget(root, 4); got != gib/4 {
			t.Fatalf("P=4: got %d, want %d", got, gib/4)
		}
	})

	t.Run("cgroup-v2-unlimited-falls-through", func(t *testing.T) {
		root := t.TempDir()
		writeFixture(t, root, "sys/fs/cgroup/memory.max", "max\n")
		writeFixture(t, root, "sys/fs/cgroup/memory/memory.limit_in_bytes", "1073741824\n")
		if got := autoSpillBudget(root, 1); got != gib/2 {
			t.Fatalf("got %d, want %d", got, gib/2)
		}
	})

	t.Run("cgroup-v1-unlimited-falls-through", func(t *testing.T) {
		root := t.TempDir()
		// PAGE_COUNTER_MAX-style huge value means unset.
		writeFixture(t, root, "sys/fs/cgroup/memory/memory.limit_in_bytes", "9223372036854771712\n")
		writeFixture(t, root, "proc/meminfo", "MemTotal:       8388608 kB\nMemAvailable:   4194304 kB\n")
		if got := autoSpillBudget(root, 1); got != 2*gib {
			t.Fatalf("got %d, want %d", got, 2*gib)
		}
	})

	t.Run("meminfo-fallback", func(t *testing.T) {
		root := t.TempDir()
		writeFixture(t, root, "proc/meminfo", "MemTotal:       2097152 kB\nMemAvailable:   1048576 kB\nSwapTotal: 0 kB\n")
		if got := autoSpillBudget(root, 2); got != gib/4 {
			t.Fatalf("got %d, want %d", got, gib/4)
		}
	})

	t.Run("floor", func(t *testing.T) {
		root := t.TempDir()
		writeFixture(t, root, "sys/fs/cgroup/memory.max", "1048576\n")
		if got := autoSpillBudget(root, 8); got != MinSpillBudgetBytes {
			t.Fatalf("got %d, want floor %d", got, int64(MinSpillBudgetBytes))
		}
	})

	t.Run("nothing-discoverable", func(t *testing.T) {
		root := t.TempDir()
		if got := autoSpillBudget(root, 1); got != 0 {
			t.Fatalf("got %d, want 0", got)
		}
	})

	t.Run("host", func(t *testing.T) {
		// On any Linux host something must be discoverable, and the result
		// must validate.
		got := AutoSpillBudget(2)
		if got != 0 && got < MinSpillBudgetBytes {
			t.Fatalf("budget %d below floor", got)
		}
	})
}
