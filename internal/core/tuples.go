package core

import "metaprep/internal/radix"

// tupleBuf is a structure-of-arrays buffer of (k-mer, value) tuples. The
// value is a 32-bit global read ID — or, under the §3.5.1 multi-pass
// optimization, a component ID. In 64-bit mode (k ≤ 31) a tuple is the
// paper's 12 bytes (8-byte key + 4-byte value); in 128-bit mode (k ≤ 63) a
// second key word brings it to the paper's 20 bytes.
type tupleBuf struct {
	lo  []uint64
	hi  []uint64 // nil in 64-bit mode
	val []uint32
}

// newTupleBuf allocates capacity for n tuples.
func newTupleBuf(n uint64, wide bool) *tupleBuf {
	b := &tupleBuf{
		lo:  make([]uint64, n),
		val: make([]uint32, n),
	}
	if wide {
		b.hi = make([]uint64, n)
	}
	return b
}

// wide reports whether the buffer is in 128-bit mode.
func (b *tupleBuf) wide() bool { return b.hi != nil }

// bytesPerTuple returns the wire size of one tuple.
func (b *tupleBuf) bytesPerTuple() int {
	if b.wide() {
		return 20
	}
	return 12
}

// memBytes returns the allocated size of the buffer.
func (b *tupleBuf) memBytes() int64 {
	n := int64(len(b.lo))
	per := int64(12)
	if b.wide() {
		per = 20
	}
	return n * per
}

// set stores a tuple at index i.
func (b *tupleBuf) set(i uint64, hi, lo uint64, val uint32) {
	b.lo[i] = lo
	b.val[i] = val
	if b.hi != nil {
		b.hi[i] = hi
	}
}

// copyRange copies cnt tuples from src[srcOff:] into b[dstOff:]. It is the
// receive side of the tuple exchange: the "transfer" of a message into the
// receiver's kmerIn buffer at its precomputed offset.
func (b *tupleBuf) copyRange(dstOff uint64, src *tupleBuf, srcOff, cnt uint64) {
	copy(b.lo[dstOff:dstOff+cnt], src.lo[srcOff:srcOff+cnt])
	copy(b.val[dstOff:dstOff+cnt], src.val[srcOff:srcOff+cnt])
	if b.hi != nil {
		copy(b.hi[dstOff:dstOff+cnt], src.hi[srcOff:srcOff+cnt])
	}
}

// moveTuple copies tuple src[i] to b[j].
func (b *tupleBuf) moveTuple(j uint64, src *tupleBuf, i uint64) {
	b.lo[j] = src.lo[i]
	b.val[j] = src.val[i]
	if b.hi != nil {
		b.hi[j] = src.hi[i]
	}
}

// keyRange bounds the packed keys of one LocalSort thread partition: every
// key's m-mer prefix bin (key >> shift) lies in [binLo, binHi), so the bits
// above the highest bit the range leaves free never need a radix pass.
// binCounts, when non-nil, is the global per-bin tuple count slice
// (merHist[binLo:binHi]) — the exact MSD histogram the index tables already
// hold, letting the sort scatter into bin order without a counting scan.
type keyRange struct {
	binLo, binHi int
	// shift is the bit position of the bin field: 2(k-m).
	shift     uint
	binCounts []uint64
}

// sortRange sorts tuples [off, off+cnt) by key ascending using the serial
// out-of-place radix sort of §3.4, with the corresponding range of scratch
// as the ping-pong buffer (the pipeline passes kmerIn here, reusing the
// exchange buffer exactly as the paper does). kr bounds the keys in the
// range: the sort runs only the passes the partitioning has not already
// decided (a canonical k-mer has 2k significant bits, and the partition's
// bin range pins the high-order ones), and with exact per-bin counts it
// replaces the high-bit passes with a single scatter into bin order.
func (b *tupleBuf) sortRange(off, cnt uint64, kr keyRange, scratch *tupleBuf) {
	if cnt < 2 {
		return
	}
	lo := b.lo[off : off+cnt]
	val := b.val[off : off+cnt]
	sLo := scratch.lo[off : off+cnt]
	sVal := scratch.val[off : off+cnt]
	if b.wide() {
		hi := b.hi[off : off+cnt]
		sHi := scratch.hi[off : off+cnt]
		minHi, minLo := shift128(uint64(kr.binLo), kr.shift)
		maxHi, maxLo := shift128(uint64(kr.binHi), kr.shift)
		if maxLo == 0 { // 128-bit decrement: max = (binHi << shift) - 1
			maxHi--
		}
		maxLo--
		radix.SortPairs128Range(hi, lo, val, sHi, sLo, sVal, minHi, minLo, maxHi, maxLo)
		return
	}
	if kr.binCounts != nil &&
		radix.SortPairs64Binned(lo, val, sLo, sVal, kr.shift, kr.binLo, kr.binCounts) {
		return
	}
	minK := uint64(kr.binLo) << kr.shift
	maxK := uint64(kr.binHi)<<kr.shift - 1
	radix.SortPairs64Range(lo, val, sLo, sVal, minK, maxK)
}

// shift128 computes v << s in 128 bits, returned as (hi, lo).
func shift128(v uint64, s uint) (hi, lo uint64) {
	switch {
	case s >= 64:
		return v << (s - 64), 0
	case s == 0:
		return 0, v
	default:
		return v >> (64 - s), v << s
	}
}

// keyEqual reports whether tuples i and j hold the same k-mer.
func (b *tupleBuf) keyEqual(i, j uint64) bool {
	if b.lo[i] != b.lo[j] {
		return false
	}
	return b.hi == nil || b.hi[i] == b.hi[j]
}

// forRuns calls fn(start, end) for every maximal run [start, end) of equal
// keys within [off, off+cnt). The range must already be sorted.
func (b *tupleBuf) forRuns(off, cnt uint64, fn func(start, end uint64)) {
	end := off + cnt
	for i := off; i < end; {
		j := i + 1
		for j < end && b.keyEqual(i, j) {
			j++
		}
		fn(i, j)
		i = j
	}
}

// tupleMsg is the payload of one all-to-all exchange message: views into
// the sender's kmerOut region bound for one destination.
type tupleMsg struct {
	lo  []uint64
	hi  []uint64
	val []uint32
}

// msgFor builds the message for a region [off, off+cnt) of b.
func (b *tupleBuf) msgFor(off, cnt uint64) tupleMsg {
	m := tupleMsg{
		lo:  b.lo[off : off+cnt],
		val: b.val[off : off+cnt],
	}
	if b.hi != nil {
		m.hi = b.hi[off : off+cnt]
	}
	return m
}

// receive copies a message into b at dstOff and returns the tuple count.
func (b *tupleBuf) receive(dstOff uint64, m tupleMsg) uint64 {
	cnt := uint64(len(m.lo))
	copy(b.lo[dstOff:dstOff+cnt], m.lo)
	copy(b.val[dstOff:dstOff+cnt], m.val)
	if b.hi != nil {
		copy(b.hi[dstOff:dstOff+cnt], m.hi)
	}
	return cnt
}
