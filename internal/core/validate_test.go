package core

import (
	"errors"
	"strings"
	"testing"

	"metaprep/internal/index"
	"metaprep/internal/kmer"
)

// validatableConfig returns a config over a synthetic in-memory index that
// passes Validate, for tests to break one field at a time. No dataset is
// needed: Validate only inspects the index options.
func validatableConfig() Config {
	idx := &index.Index{Opts: index.Options{K: 27, M: 10, ChunkSize: 1 << 20}}
	return Default(idx)
}

func TestValidateAccepts(t *testing.T) {
	cfg := validatableConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate() on a well-formed config: %v", err)
	}
	cfg.Tasks, cfg.Threads, cfg.Passes = 4, 8, 3
	cfg.Filter = Filter{Min: 2, Max: 100}
	cfg.PrefetchChunks = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate() with explicit fields: %v", err)
	}
	// k up to the 128-bit ceiling is in range.
	cfg.Index = &index.Index{Opts: index.Options{K: kmer.MaxK128, M: 10, ChunkSize: 1 << 20}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate() at k=MaxK128: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"nil index", func(c *Config) { c.Index = nil }, "Index"},
		{"k zero", func(c *Config) { c.Index.Opts.K = 0 }, "Index.Opts.K"},
		{"k beyond 128-bit path", func(c *Config) { c.Index.Opts.K = kmer.MaxK128 + 1 }, "Index.Opts.K"},
		{"m equals k", func(c *Config) { c.Index.Opts.M = c.Index.Opts.K }, "Index.Opts.M"},
		{"m exceeds k", func(c *Config) { c.Index.Opts.M = c.Index.Opts.K + 3 }, "Index.Opts.M"},
		{"tasks zero", func(c *Config) { c.Tasks = 0 }, "Tasks"},
		{"threads negative", func(c *Config) { c.Threads = -2 }, "Threads"},
		{"passes zero", func(c *Config) { c.Passes = 0 }, "Passes"},
		{"filter inverted", func(c *Config) { c.Filter = Filter{Min: 9, Max: 3} }, "Filter"},
		{"split components negative", func(c *Config) { c.SplitComponents = -1 }, "SplitComponents"},
		{"prefetch negative", func(c *Config) { c.PrefetchChunks = -1 }, "PrefetchChunks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validatableConfig()
			// Copy the index so mutations don't leak across subtests.
			if cfg.Index != nil {
				idx := *cfg.Index
				cfg.Index = &idx
			}
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate() accepted an invalid config")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("errors.Is(err, ErrInvalidConfig) = false for %v", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("errors.As(*ConfigError) = false for %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error text %q does not mention field %q", err.Error(), tc.field)
			}
		})
	}
}

// TestRunRejectsInvalidConfig checks the pipeline entry point surfaces the
// typed error rather than crashing downstream.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := validatableConfig()
	cfg.Tasks = 0
	if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Run() with Tasks=0: err = %v, want ErrInvalidConfig", err)
	}
}
