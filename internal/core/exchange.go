package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
)

// exchange.go implements the streaming chunked variant of the §3.3 tuple
// exchange (Config.ExchangeChunkTuples > 0), overlapping KmerGen with
// KmerGen-Comm.
//
// The bulk reference path is strictly phased: all of KmerGen runs, then the
// whole kmerOut buffer ships through the P-stage all-to-all. Streaming cuts
// each (pass, destination) send region into fixed-size tuple chunks and
// runs three actors per task concurrently:
//
//   - the KmerGen worker threads, whose per-(dst,thread) cursors already
//     tile every destination region, additionally count tuples into the
//     chunk they land in (chunkTracker) and publish a chunk the moment its
//     fill count reaches the chunk's size;
//   - a sender goroutine that walks the paper's P-stage schedule (stage i
//     sends to rank+i mod P) chunk by chunk, waiting for each chunk's
//     publication, shipping it with the nonblocking ISend, and keeping at
//     most two transfers in flight (double buffering) before Wait-ing the
//     oldest — which is where the NetworkModel charges transfer time, so
//     modeled communication accrues while enumeration still runs;
//   - a receiver goroutine that walks the mirrored schedule (stage i
//     receives from rank-i mod P) and lands each chunk at its precomputed
//     offset in kmerIn while later chunks are still being enumerated.
//
// Both sides derive every chunk count and offset from the index tables, so
// the schedule needs no control messages; per-(src,dst) FIFO delivery makes
// (stage, chunk) order unambiguous. Chunks are zero-copy views into
// kmerOut, immutable once published; the end-of-pass barrier (as in the
// bulk path) keeps the buffer alive until every peer has landed its copy.
//
// Deadlock freedom: a sender only ever blocks on chunk publication (KmerGen
// progress, which terminates or aborts) or on a Wait of its own earlier
// ISend; ISend itself never blocks (mpirt outbox). A receiver only blocks
// on the message its peer's sender has not shipped yet. Order all messages
// by (stage, chunk): the globally-first undelivered message's sender is
// blocked only on publication or on strictly earlier messages, so by
// induction every message is delivered. Abort propagation (peer error,
// cancellation, or a local KmerGen failure routed through Task.Abort) wakes
// both goroutines through the mpirt failure channel.

// chunkTracker counts tuples into exchange chunks as KmerGen writes them
// and publishes each chunk when it is full. Worker threads contribute
// disjoint tuple ranges, so the fill counters are the only shared state
// (one atomic add per contribution, not per tuple).
type chunkTracker struct {
	chunkTuples uint64
	dstOff      []uint64
	chunkBase   []int
	// want[f] is the size of flat chunk f; filled[f] counts landed tuples.
	want   []uint64
	filled []atomic.Uint64
	// pub carries published flat chunk indices to the sender goroutine. It
	// is buffered to the total chunk count, so publishing never blocks a
	// worker thread.
	pub chan int
}

func newChunkTracker(gl genLayout) *chunkTracker {
	tr := &chunkTracker{
		chunkTuples: gl.chunkTuples,
		dstOff:      gl.dstOff,
		chunkBase:   gl.chunkBase,
		want:        make([]uint64, gl.chunkTotal),
		filled:      make([]atomic.Uint64, gl.chunkTotal),
		pub:         make(chan int, gl.chunkTotal),
	}
	for dst := range gl.dstOff {
		nc := gl.chunksFor(dst)
		for c := 0; c < nc; c++ {
			sz := gl.chunkTuples
			if rem := gl.dstCnt[dst] - uint64(c)*gl.chunkTuples; rem < sz {
				sz = rem
			}
			tr.want[gl.chunkBase[dst]+c] = sz
		}
	}
	return tr
}

// add records that tuples [lo, hi) of dst's send region have been written.
// The range never straddles a chunk boundary (KmerGen flushes at every
// boundary), so it contributes to exactly one chunk; when that chunk's fill
// count reaches its size, the chunk is published. The fetch-add makes the
// last contributor — whichever thread it is — the publisher, exactly once.
func (tr *chunkTracker) add(dst int, lo, hi uint64) {
	if hi == lo {
		return
	}
	f := tr.chunkBase[dst] + int((lo-tr.dstOff[dst])/tr.chunkTuples)
	if tr.filled[f].Add(hi-lo) == tr.want[f] {
		tr.pub <- f
	}
}

// nextBound returns the first chunk-flush position after pos in dst's send
// region: the next chunk boundary, clamped to lim (a thread's sub-region
// can end mid-chunk; the partial contribution flushes there and the next
// thread completes the chunk).
func (tr *chunkTracker) nextBound(dst int, pos, lim uint64) uint64 {
	b := tr.dstOff[dst] + ((pos-tr.dstOff[dst])/tr.chunkTuples+1)*tr.chunkTuples
	if b > lim {
		b = lim
	}
	return b
}

// exchStream is one pass's streaming exchange: the sender and receiver
// goroutines plus their shared accounting.
type exchStream struct {
	st      *taskState
	tracker *chunkTracker
	start   time.Time

	wg       sync.WaitGroup
	sendErr  error
	recvErr  error
	pubWait  time.Duration // sender time spent waiting on unpublished chunks
	peakBack int           // peak published-but-unsent chunk backlog
}

// startStream launches the exchange goroutines for pass s and installs the
// chunk tracker KmerGen publishes through. Call before kmerGen; join after.
func (st *taskState) startStream(s int, gl genLayout, rl recvLayout) *exchStream {
	ex := &exchStream{st: st, tracker: newChunkTracker(gl), start: time.Now()}
	st.exchTracker = ex.tracker
	ex.wg.Add(2)
	go ex.runSender(s, gl)
	go ex.runReceiver(s, rl)
	return ex
}

// join waits for both goroutines and reports the first error. It must be
// called even on the error path (after Task.Abort) so no goroutine leaks.
func (ex *exchStream) join() error {
	ex.wg.Wait()
	ex.st.exchTracker = nil
	ex.st.pfTracker = nil
	if ex.sendErr != nil {
		return ex.sendErr
	}
	return ex.recvErr
}

// sendWindow is the double-buffering depth: how many chunk transfers a
// sender keeps in flight before Wait-ing the oldest.
const sendWindow = 2

func (ex *exchStream) runSender(s int, gl genLayout) {
	defer ex.wg.Done()
	err := mpirt.Guard(func() {
		if e := ex.sendLoop(s, gl); e != nil && ex.sendErr == nil {
			ex.sendErr = e
		}
	})
	if err != nil && ex.sendErr == nil {
		ex.sendErr = err
	}
}

func (ex *exchStream) sendLoop(s int, gl genLayout) error {
	st := ex.st
	t := st.t
	P := t.Size()
	tr := ex.tracker
	obs := st.obs
	published := make([]bool, gl.chunkTotal)
	backlog := 0
	var inflight []*mpirt.Request
	var sent int
	for i := 0; i < P; i++ {
		dst := (st.rank + i) % P
		nc := gl.chunksFor(dst)
		for c := 0; c < nc; c++ {
			f := gl.chunkBase[dst] + c
			// Opportunistically drain publications so the backlog gauge
			// reflects chunks that filled while earlier ones were shipping.
		drain:
			for {
				select {
				case j := <-tr.pub:
					published[j] = true
					backlog++
				default:
					break drain
				}
			}
			// Wait for the chunk to be published, draining the publish
			// channel (chunks fill in data order, not schedule order).
			if waited := !published[f]; waited {
				sp := obs.StartSpan(st.rank, obsv.TidExchange, "detail", "publish-wait")
				w0 := time.Now()
				for !published[f] {
					select {
					case j := <-tr.pub:
						published[j] = true
						backlog++
					case <-t.Failed():
						return mpirt.ErrPeerFailed
					}
				}
				ex.pubWait += time.Since(w0)
				sp.EndArgs(map[string]any{"dst": dst, "chunk": c, "backlog": backlog})
			}
			if backlog > ex.peakBack {
				ex.peakBack = backlog
			}
			backlog--
			s0 := time.Now()
			off := gl.dstOff[dst] + uint64(c)*tr.chunkTuples
			cnt := tr.want[f]
			req := t.ISend(dst, tagTuples+s, st.out.msgFor(off, cnt),
				int(cnt)*st.out.bytesPerTuple())
			inflight = append(inflight, req)
			sent++
			if obs != nil {
				obs.RecordSpan(st.rank, obsv.TidExchange, "detail", "chunk-send", s0, time.Since(s0),
					map[string]any{"dst": dst, "chunk": c, "tuples": cnt, "inflight": len(inflight)})
			}
			// Double buffering: cap the in-flight window so modeled
			// transfer time accrues as the pass runs rather than all at
			// the end, and backpressure bounds the sender's lead.
			if len(inflight) > sendWindow {
				t.Wait(inflight[0])
				inflight = inflight[1:]
			}
		}
	}
	t.WaitAll(inflight)
	if obs != nil {
		st.counter("exchange/chunks_sent").Add(uint64(sent))
		st.counter("exchange/publish_wait_us").Add(uint64(ex.pubWait.Microseconds()))
		st.counter("exchange/backlog_peak_chunks").Add(uint64(ex.peakBack))
	}
	return nil
}

func (ex *exchStream) runReceiver(s int, rl recvLayout) {
	defer ex.wg.Done()
	err := mpirt.Guard(func() {
		if e := ex.recvLoop(s, rl); e != nil && ex.recvErr == nil {
			ex.recvErr = e
		}
	})
	if err != nil && ex.recvErr == nil {
		ex.recvErr = err
	}
}

func (ex *exchStream) recvLoop(s int, rl recvLayout) error {
	st := ex.st
	t := st.t
	P := t.Size()
	obs := st.obs
	var mismatch error
	var landed int
	for i := 0; i < P; i++ {
		src := (st.rank - i + P) % P
		nc := rl.chunksFrom(src)
		var got uint64
		for c := 0; c < nc; c++ {
			r0 := time.Now()
			m := t.Wait(t.IRecv(src, tagTuples+s)).(tupleMsg)
			var n uint64
			if st.spill != nil {
				// Out-of-core path: the chunk lands straight in the run
				// builders, so peak receive memory is runs-in-flight, not
				// partition size. Chunks arrive in deterministic (stage,
				// chunk) order, making run contents reproducible.
				n = st.spill.receive(m)
			} else {
				off := rl.srcOff[src] + uint64(c)*rl.chunkTuples
				n = st.in.receive(off, m)
			}
			got += n
			landed++
			if obs != nil {
				obs.RecordSpan(st.rank, obsv.TidExchRecv, "detail", "chunk-land", r0, time.Since(r0),
					map[string]any{"src": src, "chunk": c, "tuples": n})
			}
		}
		if st.exchTupleCounters != nil {
			st.exchTupleCounters[src].Add(got)
		}
		if got != rl.srcCnt[src] && mismatch == nil {
			mismatch = fmt.Errorf("core: task %d received %d tuples from %d, index predicts %d",
				st.rank, got, src, rl.srcCnt[src])
		}
	}
	if obs != nil {
		st.counter("exchange/chunks_recv").Add(uint64(landed))
	}
	return mismatch
}

// genExchange runs KmerGen and the tuple exchange for pass s, dispatching
// between the bulk-synchronous reference path and the streaming overlapped
// path on Config.ExchangeChunkTuples. Results are bit-identical; only the
// schedule (and therefore the step-time split) differs.
func (st *taskState) genExchange(s int, gl genLayout, rl recvLayout) error {
	if st.keep != nil {
		// The prefilter makes tuple counts dynamic; its twin dispatcher
		// routes through compaction (bulk) or chunk publication (streaming).
		return st.genExchangeFiltered(s, gl, rl)
	}
	if st.p.cfg.ExchangeChunkTuples == 0 {
		if err := st.kmerGen(s, gl); err != nil {
			return err
		}
		return st.exchange(s, gl, rl)
	}
	ex := st.startStream(s, gl, rl)
	if err := st.kmerGen(s, gl); err != nil {
		// Fail the world before joining: the exchange goroutines (ours and
		// every peer's) may be blocked in sends, receives, or publish
		// waits that only the abort propagation can wake.
		st.t.Abort()
		ex.join()
		return err
	}
	genEnd := time.Now()
	err := ex.join()
	// As in the bulk path, the barrier keeps kmerOut alive until every
	// peer has landed its zero-copy chunks, and keeps passes in lockstep.
	st.t.Barrier()
	if err != nil {
		return err
	}
	st.streamTail(ex, genEnd)
	return nil
}

// streamTail is the streaming exchange's step accounting, shared by the
// exact and prefiltered paths. The modeled transfer time accrued at the
// sender's Waits; the portion that fits inside the enumeration wall time is
// overlapped (hidden), and only the remainder is exposed communication.
// KmerGen-Comm therefore charges the measured post-enumeration drain (the
// real tail: final chunks, peer skew, barrier) plus the exposed modeled
// time — summed with KmerGen's charge this yields the overlapped total
// max(T_gen, T_comm) + ε the cost model predicts.
func (st *taskState) streamTail(ex *exchStream, genEnd time.Time) {
	tail := time.Since(genEnd)
	commModel := st.t.TakeCommTime()
	total := commModel
	if hidden := genEnd.Sub(ex.start); commModel > hidden {
		commModel -= hidden
	} else {
		commModel = 0
	}
	if st.obs != nil {
		st.counter("exchange/comm_hidden_us").Add(uint64((total - commModel).Microseconds()))
	}
	d := tail + commModel
	st.rep.Steps.KmerGenComm += d
	st.stepSpan("KmerGen-Comm", genEnd, d)
}
