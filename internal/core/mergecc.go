package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/par"
)

// mergecc.go implements MergeCC (§3.6): the ⌈log P⌉-round tree merge of
// local component arrays, the broadcast of the global result, and the
// partitioned FASTQ output.

// mergeResult is what rank 0 broadcasts after the merge: the flattened
// component label array, the largest component, and — when component
// splitting is on — the roots of the components that get their own output
// file sets (largest first).
type mergeResult struct {
	labels      []uint32
	largestRoot uint32
	largestSize int
	topRoots    []uint32
}

// mergeCC folds all tasks' disjoint-set arrays into rank 0, flattens the
// result into component labels, and broadcasts labels plus the largest
// component to every task. All tasks return the same mergeResult (the
// labels slice is shared read-only across tasks).
func (st *taskState) mergeCC() mergeResult {
	T := st.p.cfg.Threads
	sparse := st.p.cfg.SparseMerge

	// Tree merge: senders snapshot their parent array (the transfer's
	// payload: 4R bytes dense, or 8 bytes per non-singleton entry sparse);
	// receivers absorb the payload as implicit edges.
	var mergeTime time.Duration
	tm0 := time.Now()
	st.t.TreeMerge(tagMerge,
		func(dst int) (any, int) {
			if sparse {
				pairs := st.dsu.SnapshotSparse(nil)
				return pairs, 4 * len(pairs)
			}
			snap := st.dsu.Snapshot(nil)
			return snap, 4 * len(snap)
		},
		func(src int, payload any) {
			t0 := time.Now()
			if sparse {
				st.dsu.AbsorbPairs(payload.([]uint32), T)
			} else {
				st.dsu.Absorb(payload.([]uint32), T)
			}
			mergeTime += time.Since(t0)
		},
	)
	commDur := st.t.TakeCommTime()
	st.rep.Steps.MergeComm += commDur
	st.stepSpan("Merge-Comm", tm0, commDur)

	// Rank 0 flattens, finds the largest component, and — for component
	// splitting — the N largest roots.
	var res mergeResult
	if st.rank == 0 {
		t0 := time.Now()
		labels := st.dsu.Flatten(T)
		root, size := st.dsu.LargestComponent()
		res = mergeResult{labels: labels, largestRoot: root, largestSize: size}
		if n := st.p.cfg.SplitComponents; n > 0 {
			res.topRoots = topComponents(st.dsu.ComponentSizes(), n)
		}
		mergeTime += time.Since(t0)
	}
	st.rep.Steps.MergeCC += mergeTime
	st.stepSpan("MergeCC", tm0.Add(commDur), mergeTime)

	// Broadcast the global component list (§3.6: "The global components
	// list in Rank 0 is broadcast to all other tasks").
	tb0 := time.Now()
	st.t.Broadcast(tagBcast,
		func(dst int) (any, int) { return res, 4 * len(res.labels) },
		func(src int, payload any) { res = payload.(mergeResult) },
	)
	bcastDur := st.t.TakeCommTime()
	st.rep.Steps.MergeComm += bcastDur
	st.stepSpan("Merge-Comm", tb0, bcastDur)
	return res
}

// topComponents returns the roots of the n largest components, largest
// first, ties broken toward the smaller root.
func topComponents(sizes map[uint32]int, n int) []uint32 {
	type comp struct {
		root uint32
		size int
	}
	all := make([]comp, 0, len(sizes))
	for r, s := range sizes {
		all = append(all, comp{r, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].size != all[j].size {
			return all[i].size > all[j].size
		}
		return all[i].root < all[j].root
	})
	if n > len(all) {
		n = len(all)
	}
	roots := make([]uint32, n)
	for i := range roots {
		roots[i] = all[i].root
	}
	return roots
}

// writeOutput is the CC-I/O step: each thread re-reads its FASTQ chunks and
// appends every record to one of its private output files (§3.6: "Each
// thread writes to separate FASTQ files"). By default there are two groups
// per thread — the largest component and the rest; with SplitComponents
// there is one group per top component plus the rest. The returned slice is
// indexed [group][thread].
func (st *taskState) writeOutput(res mergeResult) ([][]string, error) {
	cfg := st.p.cfg
	idx := st.p.idx
	T := cfg.Threads

	roots := res.topRoots
	if len(roots) == 0 {
		roots = []uint32{res.largestRoot}
	}
	groupOf := make(map[uint32]int, len(roots))
	for g, r := range roots {
		groupOf[r] = g
	}
	other := len(roots) // the remainder group
	groupName := func(g int) string {
		switch {
		case g == other:
			return "other"
		case len(res.topRoots) == 0:
			return "lc"
		default:
			return fmt.Sprintf("comp%03d", g)
		}
	}

	t0 := time.Now()
	paths := make([][]string, other+1)
	for g := range paths {
		paths[g] = make([]string, T)
	}
	errs := make([]error, T)
	bytesOut := make([]int64, T)
	recsOut := make([]int64, T)
	par.Run(T, func(t int) {
		files := make([]*os.File, other+1)
		writers := make([]*fastq.Writer, other+1)
		for g := range files {
			path := filepath.Join(cfg.OutDir,
				fmt.Sprintf("%s_p%03d_t%03d.fastq", groupName(g), st.rank, t))
			paths[g][t] = path
			f, err := os.Create(path)
			if err != nil {
				errs[t] = err
				return
			}
			defer f.Close()
			files[g] = f
			writers[g] = fastq.NewWriter(f)
		}
		for _, ci := range st.p.threadChunks[st.rank][t] {
			c := &idx.Chunks[ci]
			r := fastq.NewReader(io.NewSectionReader(st.files[c.File], c.Offset, c.Size))
			for n := int32(0); n < c.Records; n++ {
				rec, err := r.Next()
				if err != nil {
					errs[t] = fmt.Errorf("core: output re-read chunk %d: %w", ci, err)
					return
				}
				g, ok := groupOf[res.labels[idx.ReadIDOf(c, n)]]
				if !ok {
					g = other
				}
				if err := writers[g].Write(rec); err != nil {
					errs[t] = err
					return
				}
			}
		}
		for _, w := range writers {
			if err := w.Flush(); err != nil {
				errs[t] = err
				return
			}
			bytesOut[t] += w.BytesWritten()
			recsOut[t] += w.Count()
		}
	})
	d := time.Since(t0)
	st.rep.Steps.CCIO += d
	st.stepSpan("CC-I/O", t0, d)
	if st.obs != nil {
		var b, r int64
		for t := 0; t < T; t++ {
			b += bytesOut[t]
			r += recsOut[t]
		}
		st.counter("ccio/bytes_written").Add(uint64(b))
		st.counter("ccio/records").Add(uint64(r))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// concatFiles concatenates src files into dst (a convenience for callers
// that want a single LC file; the pipeline itself writes per-thread files
// as the paper does).
func concatFiles(dst string, srcs []string) error {
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)
	for _, s := range srcs {
		f, err := os.Open(s)
		if err != nil {
			return err
		}
		if _, err := io.Copy(bw, f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return bw.Flush()
}
