package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/obsv"
	"metaprep/internal/par"
)

// mergecc.go implements MergeCC (§3.6): the ⌈log P⌉-round tree merge of
// local component arrays, the broadcast of the global result, and the
// partitioned FASTQ output.

// mergeResult is what rank 0 broadcasts after the merge: the flattened
// component label array, the largest component, and — when component
// splitting is on — the roots of the components that get their own output
// file sets (largest first).
type mergeResult struct {
	labels      []uint32
	largestRoot uint32
	largestSize int
	topRoots    []uint32
}

// mergeCC folds all tasks' disjoint-set arrays into rank 0, flattens the
// result into component labels, and broadcasts labels plus the largest
// component to every task. All tasks return the same mergeResult (the
// labels slice is shared read-only across tasks).
//
// Three merge payload encodings exist: the default pipelined delta schedule
// (SparseDeltaMerge — each non-root rank streams only the parent entries
// that changed since its previous snapshot, round 0 being the full sparse
// baseline), the one-shot sparse pairs (SparseMerge), and the one-shot
// dense 4R-byte array. The label broadcast runs over the binomial tree by
// default, or rank 0's flat star under the StarBroadcast ablation knob.
func (st *taskState) mergeCC() mergeResult {
	T := st.p.cfg.Threads

	// Tree merge: senders snapshot their parent array (the transfer's
	// payload: 4R bytes dense, 8 bytes per non-singleton entry sparse, or 8
	// bytes per changed entry in the delta schedule); receivers absorb the
	// payload as implicit edges.
	var mergeTime time.Duration
	tm0 := time.Now()
	switch {
	case st.p.cfg.SparseDeltaMerge:
		st.t.PipelinedTreeMerge(tagDelta,
			func(round int) (any, int) {
				// Ownership of the pairs slice transfers to the receiver, so
				// each round snapshots into a fresh slice; rounds after the
				// baseline carry only what the previous round's absorbs
				// changed, which is where the wire-byte saving comes from.
				t0 := time.Now()
				pairs := st.dsu.SnapshotDelta(nil)
				mergeTime += time.Since(t0)
				return pairs, 4 * len(pairs)
			},
			func(src, round int, payload any) {
				t0 := time.Now()
				st.dsu.AbsorbPairs(payload.([]uint32), T)
				mergeTime += time.Since(t0)
			},
		)
	case st.p.cfg.SparseMerge:
		st.t.TreeMerge(tagMerge,
			func(dst int) (any, int) {
				pairs := st.dsu.SnapshotSparse(nil)
				return pairs, 4 * len(pairs)
			},
			func(src int, payload any) {
				t0 := time.Now()
				st.dsu.AbsorbPairs(payload.([]uint32), T)
				mergeTime += time.Since(t0)
			},
		)
	default:
		st.t.TreeMerge(tagMerge,
			func(dst int) (any, int) {
				snap := st.dsu.Snapshot(nil)
				return snap, 4 * len(snap)
			},
			func(src int, payload any) {
				t0 := time.Now()
				st.dsu.Absorb(payload.([]uint32), T)
				mergeTime += time.Since(t0)
			},
		)
	}
	commDur := st.t.TakeCommTime()
	st.rep.Steps.MergeComm += commDur
	st.stepSpan("Merge-Comm", tm0, commDur)

	// Rank 0 flattens, sizes the components once (in parallel), and derives
	// the largest component plus — for component splitting — the N largest
	// roots from that single count.
	var res mergeResult
	if st.rank == 0 {
		t0 := time.Now()
		labels := st.dsu.Flatten(T)
		sizes := st.dsu.ComponentSizesPar(T)
		var root uint32
		var size int
		for r, s := range sizes {
			if s > size || (s == size && r < root) {
				root, size = r, s
			}
		}
		res = mergeResult{labels: labels, largestRoot: root, largestSize: size}
		if n := st.p.cfg.SplitComponents; n > 0 {
			res.topRoots = topComponents(sizes, n)
		}
		mergeTime += time.Since(t0)
	}
	st.rep.Steps.MergeCC += mergeTime
	st.stepSpan("MergeCC", tm0.Add(commDur), mergeTime)

	// Broadcast the global component list (§3.6: "The global components
	// list in Rank 0 is broadcast to all other tasks").
	tb0 := time.Now()
	bcast := st.t.TreeBroadcast
	if st.p.cfg.StarBroadcast {
		bcast = st.t.StarBroadcast
	}
	bcast(tagBcast,
		func(dst int) (any, int) { return res, 4 * len(res.labels) },
		func(src int, payload any) { res = payload.(mergeResult) },
	)
	bcastDur := st.t.TakeCommTime()
	st.rep.Steps.MergeComm += bcastDur
	st.stepSpan("Merge-Comm", tb0, bcastDur)
	return res
}

// topComponents returns the roots of the n largest components, largest
// first, ties broken toward the smaller root. Selection is bounded: a
// size-n heap ordered worst-at-top replaces the full sort, so a run with C
// components pays O(C log n) instead of O(C log C).
func topComponents(sizes map[uint32]int, n int) []uint32 {
	type comp struct {
		root uint32
		size int
	}
	if n > len(sizes) {
		n = len(sizes)
	}
	if n <= 0 {
		return nil
	}
	// worse orders the heap: the kept component easiest to evict (smallest
	// size, then largest root) sits at index 0.
	worse := func(a, b comp) bool {
		if a.size != b.size {
			return a.size < b.size
		}
		return a.root > b.root
	}
	heap := make([]comp, 0, n)
	siftDown := func(i int) {
		for {
			m := i
			if l := 2*i + 1; l < len(heap) && worse(heap[l], heap[m]) {
				m = l
			}
			if r := 2*i + 2; r < len(heap) && worse(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for root, size := range sizes {
		c := comp{root, size}
		if len(heap) < n {
			heap = append(heap, c)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if worse(heap[0], c) {
			heap[0] = c
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	roots := make([]uint32, len(heap))
	for i, c := range heap {
		roots[i] = c.root
	}
	return roots
}

// writeOutput is the CC-I/O step: each thread re-reads its FASTQ chunks and
// appends every record to one of its private output files (§3.6: "Each
// thread writes to separate FASTQ files"). By default there are two groups
// per thread — the largest component and the rest; with SplitComponents
// there is one group per top component plus the rest. The returned slice is
// indexed [group][thread].
//
// fetchers, when non-nil, holds one per-thread chunk prefetcher (already
// streaming — the pipeline starts them before the merge so output reads
// overlap Merge-Comm/MergeCC) and selects the zero-copy path: records whose
// raw bytes are already canonical are blitted verbatim into the group
// writers. A nil fetchers slice is the reader-based reference path.
func (st *taskState) writeOutput(res mergeResult, fetchers []*chunkFetcher) ([][]string, error) {
	cfg := st.p.cfg
	T := cfg.Threads

	roots := res.topRoots
	if len(roots) == 0 {
		roots = []uint32{res.largestRoot}
	}
	groupOf := make(map[uint32]int, len(roots))
	for g, r := range roots {
		groupOf[r] = g
	}
	other := len(roots) // the remainder group
	groupName := func(g int) string {
		switch {
		case g == other:
			return "other"
		case len(res.topRoots) == 0:
			return "lc"
		default:
			return fmt.Sprintf("comp%03d", g)
		}
	}

	t0 := time.Now()
	// The zero-copy path resolves each read's output group through a flat
	// array instead of a per-record map probe; built in parallel once, it
	// costs 4R transient bytes and removes the lookup from the blit loop.
	var groupArr []int32
	if fetchers != nil {
		groupArr = make([]int32, len(res.labels))
		par.For(T, len(res.labels), func(i int) {
			if g, ok := groupOf[res.labels[i]]; ok {
				groupArr[i] = int32(g)
			} else {
				groupArr[i] = int32(other)
			}
		})
	}
	paths := make([][]string, other+1)
	for g := range paths {
		paths[g] = make([]string, T)
	}
	errs := make([]error, T)
	bytesOut := make([]int64, T)
	recsOut := make([]int64, T)
	rawRecs := make([]int64, T)
	reencRecs := make([]int64, T)
	par.Run(T, func(t int) {
		files := make([]*os.File, other+1)
		// Backstop close for the error paths; the success path below closes
		// explicitly and reports the error.
		defer func() {
			for _, f := range files {
				if f != nil {
					f.Close()
				}
			}
		}()
		writers := make([]*fastq.Writer, other+1)
		for g := range files {
			path := filepath.Join(cfg.OutDir,
				fmt.Sprintf("%s_p%03d_t%03d.fastq", groupName(g), st.rank, t))
			paths[g][t] = path
			f, err := os.Create(path)
			if err != nil {
				errs[t] = err
				return
			}
			files[g] = f
			writers[g] = fastq.NewWriter(f)
		}
		var err error
		if fetchers != nil {
			rawRecs[t], reencRecs[t], err = st.writeChunksZeroCopy(fetchers[t], groupArr, writers, t)
		} else {
			err = st.writeChunksReader(groupOf, other, res.labels, writers, t)
		}
		if err != nil {
			errs[t] = err
			return
		}
		for g, w := range writers {
			if err := w.Flush(); err != nil {
				errs[t] = err
				return
			}
			bytesOut[t] += w.BytesWritten()
			recsOut[t] += w.Count()
			f := files[g]
			files[g] = nil
			// A failed Close can drop flushed-but-unwritten data on some
			// filesystems; it must surface, not vanish into a defer.
			if err := f.Close(); err != nil {
				errs[t] = err
				return
			}
		}
	})
	d := time.Since(t0)
	st.rep.Steps.CCIO += d
	st.stepSpan("CC-I/O", t0, d)
	if st.obs != nil {
		var b, r, vr, rr int64
		for t := 0; t < T; t++ {
			b += bytesOut[t]
			r += recsOut[t]
			vr += rawRecs[t]
			rr += reencRecs[t]
		}
		st.counter("ccio/bytes_written").Add(uint64(b))
		st.counter("ccio/records").Add(uint64(r))
		st.counter("ccio/verbatim_records").Add(uint64(vr))
		st.counter("ccio/reencoded_records").Add(uint64(rr))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// writeChunksZeroCopy drains one thread's prefetched chunks, blitting each
// record's raw byte span straight into its group writer when the span is
// already in canonical form and re-encoding the rare rest (CRLF input,
// '+ID' separator lines, a missing final newline) so the output is
// bit-identical to the reader-based path. Because NextRaw's spans tile the
// chunk buffer, adjacent verbatim records bound for the same group coalesce
// into one run and ship as a single write — on clustered components (the
// common case: long stretches of a chunk belong to the largest component)
// the per-record writer call disappears from the hot loop.
func (st *taskState) writeChunksZeroCopy(fetch *chunkFetcher, groupArr []int32,
	writers []*fastq.Writer, t int) (verbatim, reencoded int64, err error) {
	defer fetch.close()
	idx := st.p.idx
	var sc fastq.ChunkScanner
	for {
		if err := st.ctx.Err(); err != nil {
			return verbatim, reencoded, err
		}
		w0 := time.Now()
		ci, buf, err := fetch.next()
		if buf == nil && err == nil {
			return verbatim, reencoded, nil
		}
		st.obs.RecordSpan(st.rank, obsv.TidWorker+t, "detail", "output-chunk-wait", w0, time.Since(w0), nil)
		if err != nil {
			return verbatim, reencoded, err
		}
		c := &idx.Chunks[ci]
		if c.Canonical {
			// The index marked every record of this chunk as canonically
			// stored, and a record's group depends only on its read ID, so
			// each same-group run of records is one contiguous blit with no
			// parsing at all. Interior run boundaries are found by counting
			// newlines (4 per record); a run reaching the chunk's end —
			// including the whole-chunk single-group case — needs no scan.
			pos := 0
			for n := int32(0); n < c.Records; {
				g := groupArr[idx.ReadIDOf(c, n)]
				runEnd := n + 1
				for runEnd < c.Records && groupArr[idx.ReadIDOf(c, runEnd)] == g {
					runEnd++
				}
				end := len(buf)
				if runEnd < c.Records {
					end = pos
					for nl := 4 * (runEnd - n); nl > 0; nl-- {
						j := bytes.IndexByte(buf[end:], '\n')
						if j < 0 {
							return verbatim, reencoded, fmt.Errorf("core: output re-read chunk %d: %w", ci, fastq.ErrFormat)
						}
						end += j + 1
					}
				}
				if err := writers[g].WriteRawN(buf[pos:end], int64(runEnd-n)); err != nil {
					return verbatim, reencoded, err
				}
				verbatim += int64(runEnd - n)
				pos = end
				n = runEnd
			}
			fetch.release(buf)
			continue
		}
		sc.Reset(buf)
		// run is the current contiguous span of same-group verbatim records;
		// extending it is a pure reslice because consecutive raw spans abut.
		var run []byte
		var runG int32
		var runN int64
		flush := func() error {
			if runN == 0 {
				return nil
			}
			err := writers[runG].WriteRawN(run, runN)
			run, runN = nil, 0
			return err
		}
		for n := int32(0); n < c.Records; n++ {
			rec, raw, verb, err := sc.NextRaw()
			if err != nil {
				return verbatim, reencoded, fmt.Errorf("core: output re-read chunk %d: %w", ci, err)
			}
			g := groupArr[idx.ReadIDOf(c, n)]
			if verb {
				verbatim++
				if runN > 0 && g == runG {
					run = run[:len(run)+len(raw)]
					runN++
					continue
				}
				if err := flush(); err != nil {
					return verbatim, reencoded, err
				}
				run, runG, runN = raw, g, 1
				continue
			}
			if err := flush(); err != nil {
				return verbatim, reencoded, err
			}
			reencoded++
			if err := writers[g].Write(rec); err != nil {
				return verbatim, reencoded, err
			}
		}
		if err := flush(); err != nil {
			return verbatim, reencoded, err
		}
		fetch.release(buf)
	}
}

// writeChunksReader is the reference CC-I/O path: re-parse every record
// through fastq.Reader over a section reader and re-serialize it. Kept for
// the zero-copy parity suite and the OverlapOutput=false fallback.
func (st *taskState) writeChunksReader(groupOf map[uint32]int, other int,
	labels []uint32, writers []*fastq.Writer, t int) error {
	idx := st.p.idx
	for _, ci := range st.p.threadChunks[st.rank][t] {
		if err := st.ctx.Err(); err != nil {
			return err
		}
		c := &idx.Chunks[ci]
		r := fastq.NewReader(io.NewSectionReader(st.files[c.File], c.Offset, c.Size))
		for n := int32(0); n < c.Records; n++ {
			rec, err := r.Next()
			if err != nil {
				return fmt.Errorf("core: output re-read chunk %d: %w", ci, err)
			}
			g, ok := groupOf[labels[idx.ReadIDOf(c, n)]]
			if !ok {
				g = other
			}
			if err := writers[g].Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// concatFiles concatenates src files into dst (a convenience for callers
// that want a single LC file; the pipeline itself writes per-thread files
// as the paper does). One copy buffer is reused across sources, and both
// the final Flush and the destination Close are error-checked — a short
// write surfacing only at close time must not be swallowed.
func concatFiles(dst string, srcs []string) (err error) {
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(out, 1<<20)
	buf := make([]byte, 256<<10)
	for _, s := range srcs {
		f, err := os.Open(s)
		if err != nil {
			return err
		}
		if _, err := io.CopyBuffer(bw, f, buf); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return bw.Flush()
}
