package core

import (
	"context"
	"time"

	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
	"metaprep/internal/radix"
)

// count.go runs the pipeline as a distributed k-mer counter — the reuse the
// paper's abstract promises ("efficient implementations of several
// computational subroutines (e.g., k-mer enumeration and counting …) that
// occur in other genomic data analysis problems"). The counter is the first
// three steps verbatim — KmerGen, KmerGen-Comm, LocalSort — with the sorted
// runs compacted into (k-mer, count) pairs instead of union–find edges.
//
// Because passes and tasks own contiguous, ascending key ranges,
// concatenating the per-(pass, task) outputs in order yields a globally
// sorted count table without any merge step.

// CountResult is the distributed counter's output: parallel slices sorted
// by k-mer. KmersHi is nil for k ≤ 31 and carries the high key words for
// the 128-bit path otherwise.
type CountResult struct {
	KmersLo []uint64
	KmersHi []uint64
	Counts  []uint32
	// Steps aggregates per-step times exactly like Result.Steps.
	Steps StepTimes
	// Tuples is the number of k-mer instances counted.
	Tuples uint64
	// Wall is the measured end-to-end time.
	Wall time.Duration
}

// Len returns the number of distinct k-mers.
func (c *CountResult) Len() int { return len(c.KmersLo) }

// Get returns the count of a 64-bit canonical k-mer (0 if absent); only
// valid for k ≤ 31 runs.
func (c *CountResult) Get(km uint64) uint32 {
	lo, hi := 0, len(c.KmersLo)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.KmersLo[mid] < km {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.KmersLo) && c.KmersLo[lo] == km {
		return c.Counts[lo]
	}
	return 0
}

// taskCounts accumulates one task's compacted counts per pass.
type taskCounts struct {
	lo, hi []uint64
	counts []uint32
}

// RunCount executes the counting pipeline. The Filter, CCOpt, OutDir and
// SplitComponents fields of cfg are ignored; everything else (tasks,
// threads, passes, network model, ablation flags) applies as in Run.
func RunCount(cfg Config) (*CountResult, error) {
	return RunCountContext(context.Background(), cfg)
}

// RunCountContext is RunCount with cancellation, with the same semantics as
// RunContext: ctx is polled at chunk and pass boundaries and blocked ranks
// are aborted through the runtime.
func RunCountContext(ctx context.Context, cfg Config) (*CountResult, error) {
	cfg.CCOpt = false // no DSU exists; tuple values stay read IDs
	pl, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}

	world := mpirt.NewWorld(cfg.Tasks, cfg.Network)
	world.SetCollector(cfg.Obs)
	if cfg.Obs != nil {
		radix.EnablePassStats()
		radix.TakePassStats() // discard tallies from earlier, unobserved sorts
		defer func() {
			ex, sk := radix.TakePassStats()
			cfg.Obs.Counter(obsv.RankGlobal, "radix/passes_executed").Add(ex)
			cfg.Obs.Counter(obsv.RankGlobal, "radix/passes_skipped").Add(sk)
			radix.DisablePassStats()
		}()
	}
	perPass := make([][]taskCounts, cfg.Passes)
	for s := range perPass {
		perPass[s] = make([]taskCounts, cfg.Tasks)
	}
	reports := make([]TaskReport, cfg.Tasks)

	start := time.Now()
	err = world.RunContext(ctx, func(task *mpirt.Task) error {
		st := newTaskState(ctx, pl, task)
		defer st.closeFiles()
		files, err := openInputs(pl.idx)
		if err != nil {
			return err
		}
		st.files = files
		wide := !pl.use64()
		st.out = cfg.acquireTupleBuf(pl.bufTuples[st.rank], wide)
		st.in = cfg.acquireTupleBuf(pl.bufTuples[st.rank], wide)
		defer func() {
			cfg.releaseTupleBuf(st.out)
			cfg.releaseTupleBuf(st.in)
		}()

		for s := 0; s < cfg.Passes; s++ {
			gl := pl.genLayout(s, st.rank)
			rl := pl.recvLayout(s, st.rank)
			if err := st.genExchange(s, gl, rl); err != nil {
				return err
			}
			sl := pl.sortLayout(s, st.rank, rl)
			st.localSort(s, sl)

			// Compact sorted runs into counts. Partitions are ascending
			// thread ranges, so appending in partition order stays sorted.
			t0 := time.Now()
			tc := &perPass[s][st.rank]
			for d := 0; d < cfg.Threads; d++ {
				st.out.forRuns(sl.partOff[d], sl.partCnt[d], func(a, b uint64) {
					tc.lo = append(tc.lo, st.out.lo[a])
					if wide {
						tc.hi = append(tc.hi, st.out.hi[a])
					}
					tc.counts = append(tc.counts, uint32(b-a))
				})
			}
			d := time.Since(t0)
			st.rep.Steps.LocalCC += d
			st.stepSpan("LocalCC", t0, d)
			task.Barrier()
		}
		st.rep.BytesSent = task.BytesSent()
		st.finishObs()
		reports[st.rank] = st.rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &CountResult{Steps: MaxOf(stepsOf(reports)), Wall: time.Since(start)}
	for s := 0; s < cfg.Passes; s++ {
		for rank := 0; rank < cfg.Tasks; rank++ {
			tc := &perPass[s][rank]
			res.KmersLo = append(res.KmersLo, tc.lo...)
			res.KmersHi = append(res.KmersHi, tc.hi...)
			res.Counts = append(res.Counts, tc.counts...)
		}
	}
	if pl.use64() {
		res.KmersHi = nil
	}
	for _, rep := range reports {
		res.Tuples += rep.Tuples
	}
	return res, nil
}

// closeFiles releases a task's input handles.
func (st *taskState) closeFiles() {
	for _, f := range st.files {
		if f != nil {
			f.Close()
		}
	}
}
