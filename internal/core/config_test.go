package core

import (
	"testing"
	"time"
)

func TestStepTimesAddAndTotal(t *testing.T) {
	a := StepTimes{KmerGenIO: 1, KmerGen: 2, KmerGenComm: 3, LocalSort: 4,
		LocalCC: 5, MergeComm: 6, MergeCC: 7, CCIO: 8}
	b := a
	b.Add(a)
	if b.KmerGen != 4 || b.CCIO != 16 {
		t.Errorf("Add: %+v", b)
	}
	if a.Total() != 36*time.Nanosecond {
		t.Errorf("Total = %v", a.Total())
	}
}

func TestMaxOf(t *testing.T) {
	a := StepTimes{KmerGen: 10, LocalSort: 1}
	b := StepTimes{KmerGen: 5, LocalSort: 20}
	m := MaxOf([]StepTimes{a, b})
	if m.KmerGen != 10 || m.LocalSort != 20 {
		t.Errorf("MaxOf = %+v", m)
	}
	if z := MaxOf(nil); z.Total() != 0 {
		t.Errorf("MaxOf(nil) = %+v", z)
	}
}

func TestFilterKeep(t *testing.T) {
	cases := []struct {
		f    Filter
		freq uint32
		want bool
	}{
		{Filter{}, 1, true},
		{Filter{Min: 10}, 9, false},
		{Filter{Min: 10}, 10, true},
		{Filter{Max: 30}, 30, true},
		{Filter{Max: 30}, 31, false},
		{Filter{Min: 10, Max: 30}, 20, true},
		{Filter{Min: 10, Max: 30}, 5, false},
		{Filter{Min: 10, Max: 30}, 50, false},
	}
	for _, c := range cases {
		if got := c.f.Keep(c.freq); got != c.want {
			t.Errorf("%v.Keep(%d) = %v", c.f, c.freq, got)
		}
	}
}
