package core

import (
	"math/rand"
	"testing"
)

// TestTuplePoolReuse checks the pool recycles buffers by size class and
// counts hits and misses.
func TestTuplePoolReuse(t *testing.T) {
	p := NewTuplePool()
	a := p.get(1000, false)
	if len(a.lo) != 1000 || len(a.val) != 1000 || a.hi != nil {
		t.Fatalf("get(1000, narrow): lo=%d val=%d wide=%v", len(a.lo), len(a.val), a.wide())
	}
	p.put(a)
	// Same class (next pow2 of 1000 is 1024): must be a hit, resliced.
	b := p.get(600, false)
	if &b.lo[0] != &a.lo[0] {
		t.Errorf("get(600) did not reuse the pooled 1024-class buffer")
	}
	if len(b.lo) != 600 {
		t.Errorf("reused buffer len = %d, want 600", len(b.lo))
	}
	// Different class: a miss.
	c := p.get(5000, false)
	if cap(c.lo) != 8192 {
		t.Errorf("class capacity = %d, want 8192", cap(c.lo))
	}
	// Wide and narrow classes are separate.
	w := p.get(600, true)
	if w.hi == nil || &w.lo[0] == &b.lo[0] {
		t.Errorf("wide get aliased a narrow buffer")
	}
	if hits, misses := p.Hits(), p.Misses(); hits != 1 || misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", hits, misses)
	}
}

// TestTuplePoolRunParity runs the full pipeline twice against one pool and
// checks the second (buffer-recycling) run is bit-identical to a pool-free
// run — stale contents from the first job must never leak into results.
func TestTuplePoolRunParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	td := overlappingDataset(t, rng, smallOpts(), 3, 400, 200, 50)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewTuplePool()
	pcfg := cfg
	pcfg.Pool = pool
	if _, err := Run(pcfg); err != nil {
		t.Fatal(err)
	}
	if pool.Misses() == 0 {
		t.Fatalf("first pooled run recorded no misses")
	}
	got, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Hits() == 0 {
		t.Fatalf("second pooled run recorded no hits: buffers were not reused")
	}
	assertSameResult(t, want, got)

	// Streaming exchange on recycled buffers, for good measure.
	scfg := pcfg
	scfg.ExchangeChunkTuples = 64
	sgot, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, sgot)
}
