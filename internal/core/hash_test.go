package core

import (
	"testing"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
)

// TestCanonicalHashGolden pins the exact canonical encoding. If this test
// fails because the encoding legitimately changed, bump canonicalHashVersion
// and re-pin — never let old cached results alias the new scheme silently.
func TestCanonicalHashGolden(t *testing.T) {
	def := Config{Tasks: 1, Threads: 1, Passes: 1, CCOpt: true}
	const wantDef = "2b25dc53ba4605aeff3d2f7b8c81915163792c704c5be3d32efb7e4142ba5844"
	if got := def.CanonicalHash(); got != wantDef {
		t.Errorf("CanonicalHash(default) = %s, want %s", got, wantDef)
	}

	full := Config{
		Tasks:            4,
		Threads:          8,
		Passes:           2,
		Filter:           Filter{Min: 2, Max: 1000},
		CCOpt:            true,
		SparseDeltaMerge: true,
		StarBroadcast:    true,
		OverlapOutput:    true,
		SplitComponents:  3,
		OutDir:           "out",
		PrefetchChunks:   4,
		DynamicOffsets:   true,
		NoVectorKmerGen:  true,
		Network:          &mpirt.NetworkModel{Latency: time.Microsecond, BandwidthBytesPerSec: 8e9},
	}
	const wantFull = "714155b18b08772aea078ee6d80c74aa69c174d6658956047ab5721f96c10e7a"
	if got := full.CanonicalHash(); got != wantFull {
		t.Errorf("CanonicalHash(full) = %s, want %s", got, wantFull)
	}
}

// TestCanonicalHashEquivalentSpellings checks that semantically-identical
// configs hash identically: zero values vs spelled-out defaults, nil vs
// zero network model, and the excluded Index/Obs fields.
func TestCanonicalHashEquivalentSpellings(t *testing.T) {
	base := Config{Tasks: 2, Threads: 2, Passes: 1, CCOpt: true}
	want := base.CanonicalHash()

	// PrefetchChunks 0 and 1 both mean double buffering.
	spelled := base
	spelled.PrefetchChunks = 1
	if got := spelled.CanonicalHash(); got != want {
		t.Errorf("PrefetchChunks 0 vs 1 hash differently: %s vs %s", want, got)
	}

	// A nil and a zero NetworkModel both mean free communication.
	zeroNet := base
	zeroNet.Network = &mpirt.NetworkModel{}
	if got := zeroNet.CanonicalHash(); got != want {
		t.Errorf("nil vs zero NetworkModel hash differently: %s vs %s", want, got)
	}

	// With prefetch ablated, the configured depth is irrelevant.
	noPre := base
	noPre.NoPrefetch = true
	noPre.PrefetchChunks = 7
	noPre2 := base
	noPre2.NoPrefetch = true
	if noPre.CanonicalHash() != noPre2.CanonicalHash() {
		t.Errorf("NoPrefetch configs with different depths hash differently")
	}
	if noPre.CanonicalHash() == want {
		t.Errorf("NoPrefetch did not change the hash")
	}

	// Where spill scratch lives can never change a result: SpillDir is
	// excluded from the hash (the budget and compression knobs are not).
	spillA := base
	spillA.SpillBudgetBytes = 1 << 20
	spillB := spillA
	spillB.SpillDir = "/scratch/elsewhere"
	if spillA.CanonicalHash() != spillB.CanonicalHash() {
		t.Errorf("SpillDir leaked into the hash")
	}
	if spillA.CanonicalHash() == want {
		t.Errorf("SpillBudgetBytes did not change the hash")
	}

	// Buffer pooling recycles allocations and can never change a result.
	pooled := base
	pooled.Pool = NewTuplePool()
	if got := pooled.CanonicalHash(); got != want {
		t.Errorf("Pool leaked into the hash: %s vs %s", want, got)
	}

	// MinCount 0 and 2 both mean "drop singletons" when the prefilter is
	// enabled, and MinCount is irrelevant while it is disabled.
	pfDefault := base
	pfDefault.Prefilter = Prefilter{BitsPerKmer: 8}
	pfSpelled := base
	pfSpelled.Prefilter = Prefilter{BitsPerKmer: 8, MinCount: 2}
	if pfDefault.CanonicalHash() != pfSpelled.CanonicalHash() {
		t.Errorf("Prefilter MinCount 0 vs 2 hash differently")
	}
	if pfDefault.CanonicalHash() == want {
		t.Errorf("Prefilter did not change the hash")
	}

	// The Index pointer and the Obs collector are not run-defining: the
	// index is the other half of the cache key, observability never
	// changes results.
	withIdx := base
	withIdx.Index = &index.Index{Opts: index.Options{K: 27, M: 10}}
	withIdx.Obs = obsv.New()
	if got := withIdx.CanonicalHash(); got != want {
		t.Errorf("Index/Obs leaked into the hash: %s vs %s", want, got)
	}
}

// TestCanonicalHashSensitivity checks that every run-defining field
// perturbs the hash, and that all perturbations are mutually distinct.
func TestCanonicalHashSensitivity(t *testing.T) {
	base := Config{Tasks: 2, Threads: 2, Passes: 1, CCOpt: true}
	mutations := map[string]func(*Config){
		"tasks":                 func(c *Config) { c.Tasks = 3 },
		"threads":               func(c *Config) { c.Threads = 4 },
		"passes":                func(c *Config) { c.Passes = 2 },
		"filter.min":            func(c *Config) { c.Filter.Min = 2 },
		"filter.max":            func(c *Config) { c.Filter.Max = 50 },
		"ccopt":                 func(c *Config) { c.CCOpt = false },
		"sparse_merge":          func(c *Config) { c.SparseMerge = true },
		"sparse_delta_merge":    func(c *Config) { c.SparseDeltaMerge = true },
		"star_broadcast":        func(c *Config) { c.StarBroadcast = true },
		"overlap_output":        func(c *Config) { c.OverlapOutput = true },
		"split_components":      func(c *Config) { c.SplitComponents = 2 },
		"out_dir":               func(c *Config) { c.OutDir = "d" },
		"prefetch_depth":        func(c *Config) { c.PrefetchChunks = 3 },
		"dynamic_offsets":       func(c *Config) { c.DynamicOffsets = true },
		"no_vector_kmergen":     func(c *Config) { c.NoVectorKmerGen = true },
		"exchange_chunk_tuples": func(c *Config) { c.ExchangeChunkTuples = 1 << 16 },
		"spill_budget_bytes":    func(c *Config) { c.SpillBudgetBytes = 1 << 20 },
		"spill_compress": func(c *Config) {
			c.SpillBudgetBytes = 1 << 20
			c.SpillCompress = true
		},
		"prefilter.bits_per_kmer": func(c *Config) { c.Prefilter.BitsPerKmer = 8 },
		"prefilter.min_count": func(c *Config) {
			c.Prefilter.BitsPerKmer = 8
			c.Prefilter.MinCount = 3
		},
		"network": func(c *Config) {
			c.Network = &mpirt.NetworkModel{Latency: time.Microsecond, BandwidthBytesPerSec: 1e9}
		},
	}
	seen := map[string]string{base.CanonicalHash(): "base"}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		h := c.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}
