package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"metaprep/internal/obsv"
)

// TestRunAttachesDriftReport checks the default drift reconciliation: a
// plain run yields a finite report with all eight steps, measured values
// matching the run's own accounting, and per-task ratios set.
func TestRunAttachesDriftReport(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 160, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Drift
	if d == nil {
		t.Fatal("no drift report on default config")
	}
	if !d.Finite() {
		t.Fatalf("non-finite drift report: %+v", d)
	}
	if d.Calibration != "edison" {
		t.Fatalf("calibration = %q", d.Calibration)
	}
	if len(d.Steps) != 8 {
		t.Fatalf("%d drift steps", len(d.Steps))
	}
	if d.TotalMeasured != res.Steps.Total() {
		t.Fatalf("measured total %v != step total %v", d.TotalMeasured, res.Steps.Total())
	}
	var wire int64
	for _, rep := range res.PerTask {
		wire += rep.BytesSent
		if rep.DriftRatio <= 0 {
			t.Fatalf("task %d: drift ratio %v", rep.Rank, rep.DriftRatio)
		}
	}
	if d.WireMeasured != wire {
		t.Fatalf("wire measured %d, tasks sent %d", d.WireMeasured, wire)
	}
	if d.SpillMeasured != 0 || d.SpillPredicted != 0 {
		t.Fatalf("in-RAM run reports spill: %d/%d", d.SpillMeasured, d.SpillPredicted)
	}
	if !strings.Contains(d.String(), "drift(edison)") {
		t.Fatalf("summary = %q", d.String())
	}
}

// TestDriftOffAndInvalid checks the off switch and the validation error.
func TestDriftOffAndInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	td := overlappingDataset(t, rng, smallOpts(), 3, 200, 80, 30)
	cfg := Default(td.idx)
	cfg.DriftCal = "off"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift != nil {
		t.Fatal("drift report despite DriftCal=off")
	}
	for _, rep := range res.PerTask {
		if rep.DriftRatio != 0 {
			t.Fatalf("per-task ratio set despite off: %v", rep.DriftRatio)
		}
	}
	cfg.DriftCal = "cray"
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("bad calibration not rejected: %v", err)
	}
}

// TestDriftMeasuresSpill runs the out-of-core path and expects both sides
// of the spill comparison populated.
func TestDriftMeasuresSpill(t *testing.T) {
	td := spillDataset(t, 23, smallOpts())
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.SpillBudgetBytes = MinSpillBudgetBytes
	requireSpill(t, cfg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for _, rep := range res.PerTask {
		spilled += rep.SpillBytes
	}
	if spilled <= 0 {
		t.Fatal("spill run wrote nothing (budget did not trigger)")
	}
	if res.Drift == nil || res.Drift.SpillMeasured != spilled {
		t.Fatalf("drift spill measured %v, tasks wrote %d", res.Drift, spilled)
	}
	if res.Drift.SpillPredicted <= 0 {
		t.Fatalf("model predicted no spill for an over-budget run")
	}
	if !res.Drift.Finite() {
		t.Fatalf("non-finite spill drift: %+v", res.Drift)
	}
}

// TestStepHistogramsPopulated checks that every "step" span lands in the
// matching per-rank step/<name> histogram with identical counts and sums.
func TestStepHistogramsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	td := overlappingDataset(t, rng, smallOpts(), 4, 300, 120, 35)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	cfg.OutDir = t.TempDir()
	cfg.Obs = obsv.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	type key struct {
		rank int
		name string
	}
	spanCount := make(map[key]uint64)
	spanSum := make(map[key]int64)
	for _, ev := range cfg.Obs.Events() {
		if ev.Cat == "step" {
			k := key{ev.Pid, "step/" + ev.Name}
			spanCount[k]++
			spanSum[k] += int64(ev.Dur)
		}
	}
	if len(spanCount) == 0 {
		t.Fatal("no step spans")
	}
	hists := make(map[key]obsv.HistogramSnapshot)
	for _, hv := range cfg.Obs.Histograms() {
		hists[key{hv.Rank, hv.Name}] = hv.Snap
	}
	for k, n := range spanCount {
		h, ok := hists[k]
		if !ok {
			t.Fatalf("%v: span recorded but no histogram", k)
		}
		if h.Count != n || h.SumNanos != spanSum[k] {
			t.Fatalf("%v: histogram count %d sum %d, spans %d sum %d",
				k, h.Count, h.SumNanos, n, spanSum[k])
		}
	}
	for k := range hists {
		if _, ok := spanCount[k]; !ok {
			t.Fatalf("%v: histogram without spans", k)
		}
	}
}
