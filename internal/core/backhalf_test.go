package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"metaprep/internal/index"
)

// backhalf_test.go covers the pipelined delta tree merge, the broadcast
// ablation and the zero-copy overlapped CC-I/O: bit-identical results and
// output files against the pre-existing reference paths, the bounded
// top-component selection, concatFiles error handling, and clean mid-output
// cancellation.

// TestDeltaMergeMatchesDense asserts the pipelined delta merge reaches the
// same global components as the one-shot dense merge across task counts
// (powers of two and not) and multiple passes.
func TestDeltaMergeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	td := overlappingDataset(t, rng, smallOpts(), 4, 300, 220, 35)
	for _, tasks := range []int{1, 2, 3, 4, 8} {
		for _, passes := range []int{1, 2} {
			t.Run(fmt.Sprintf("P%d/S%d", tasks, passes), func(t *testing.T) {
				dense := Default(td.idx)
				dense.Tasks = tasks
				dense.Passes = passes
				dense.SparseDeltaMerge = false
				want, err := Run(dense)
				if err != nil {
					t.Fatal(err)
				}
				delta := dense
				delta.SparseDeltaMerge = true
				got, err := Run(delta)
				if err != nil {
					t.Fatal(err)
				}
				assertSameLabels(t, canonLabels(want.Labels), got.Labels)
				if want.Components != got.Components ||
					want.LargestSize != got.LargestSize {
					t.Fatalf("dense %d/%d vs delta %d/%d",
						want.Components, want.LargestSize,
						got.Components, got.LargestSize)
				}
			})
		}
	}
}

// TestDeltaMergeReducesTraffic pins the wire-byte claim: on mostly-singleton
// data the delta schedule's sparse baselines plus change-only rounds must
// ship fewer MergeCC bytes than the dense 4R-per-hop tree.
func TestDeltaMergeReducesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	td := genDataset(t, rng, smallOpts(), 2, 200, 50)
	run := func(deltaMerge bool) int64 {
		cfg := Default(td.idx)
		cfg.Tasks = 4
		cfg.SparseDeltaMerge = deltaMerge
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var bytes int64
		for _, rep := range res.PerTask {
			bytes += rep.MergeBytes
		}
		return bytes
	}
	denseBytes := run(false)
	deltaBytes := run(true)
	if deltaBytes >= denseBytes {
		t.Errorf("delta merge sent %d MergeCC bytes, dense %d", deltaBytes, denseBytes)
	}
}

// readOutDir returns the contents of every .fastq file in dir keyed by file
// name — the comparison unit for byte-for-byte output parity.
func readOutDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte)
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// TestBackHalfOutputParity is the bit-identical output suite: for every
// combination of key width, task count, component splitting and filter mode,
// the full back-half (pipelined delta merge + zero-copy overlapped CC-I/O)
// must write byte-for-byte the same files as the reference back-half (dense
// one-shot merge + reader-based re-parse output), and the star-broadcast
// ablation must change nothing either.
func TestBackHalfOutputParity(t *testing.T) {
	modes := []struct {
		name string
		opts index.Options
	}{
		{"64bit", index.Options{K: 11, M: 4, ChunkSize: 1500}},
		{"128bit", index.Options{K: 45, M: 4, ChunkSize: 1500}},
	}
	filters := []struct {
		name string
		f    Filter
	}{
		{"nofilter", Filter{}},
		{"maxfilter", Filter{Max: 40}},
	}
	for mi, mode := range modes {
		rng := rand.New(rand.NewSource(int64(300 + mi)))
		td := overlappingDataset(t, rng, mode.opts, 4, 260, 160, 60)
		for _, tasks := range []int{1, 2, 4} {
			for _, split := range []int{0, 3} {
				for _, flt := range filters {
					name := fmt.Sprintf("%s/P%d/split%d/%s", mode.name, tasks, split, flt.name)
					t.Run(name, func(t *testing.T) {
						base := Default(td.idx)
						base.Tasks = tasks
						base.Threads = 2
						base.SplitComponents = split
						base.Filter = flt.f
						// Force the prefetch goroutines on even on a
						// single-CPU host, so parity covers the overlapped
						// ring path everywhere.
						base.PrefetchChunks = 2

						ref := base
						ref.SparseDeltaMerge = false
						ref.OverlapOutput = false
						ref.OutDir = t.TempDir()
						wantRes, err := Run(ref)
						if err != nil {
							t.Fatal(err)
						}
						want := readOutDir(t, ref.OutDir)

						bh := base
						bh.OutDir = t.TempDir()
						gotRes, err := Run(bh)
						if err != nil {
							t.Fatal(err)
						}
						assertSameLabels(t, canonLabels(wantRes.Labels), gotRes.Labels)

						star := base
						star.StarBroadcast = true
						star.OutDir = t.TempDir()
						if _, err := Run(star); err != nil {
							t.Fatal(err)
						}

						for variant, dir := range map[string]string{"backhalf": bh.OutDir, "star": star.OutDir} {
							got := readOutDir(t, dir)
							if len(got) != len(want) {
								t.Fatalf("%s: %d output files, reference has %d", variant, len(got), len(want))
							}
							for name, wantData := range want {
								gotData, ok := got[name]
								if !ok {
									t.Fatalf("%s: missing output file %s", variant, name)
								}
								if !bytes.Equal(gotData, wantData) {
									t.Fatalf("%s: %s differs from the reference path (%d vs %d bytes)",
										variant, name, len(gotData), len(wantData))
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestZeroCopyReencodesNonCanonicalInput feeds the pipeline CRLF input —
// which NextRaw must flag non-verbatim — and checks the partitioned output
// matches the reader-based path byte for byte (both re-encode to canonical
// form).
func TestZeroCopyReencodesNonCanonicalInput(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	dir := t.TempDir()
	genome := make([]byte, 300)
	for j := range genome {
		genome[j] = "ACGT"[rng.Intn(4)]
	}
	path := filepath.Join(dir, "crlf.fastq")
	var buf bytes.Buffer
	for i := 0; i < 120; i++ {
		pos := rng.Intn(len(genome) - 40)
		seq := genome[pos : pos+40]
		fmt.Fprintf(&buf, "@r%d\r\n%s\r\n+\r\n%s\r\n", i, seq, bytes.Repeat([]byte("I"), 40))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	ref := Default(idx)
	ref.Tasks = 2
	ref.OverlapOutput = false
	ref.OutDir = t.TempDir()
	if _, err := Run(ref); err != nil {
		t.Fatal(err)
	}
	zc := Default(idx)
	zc.Tasks = 2
	zc.OutDir = t.TempDir()
	if _, err := Run(zc); err != nil {
		t.Fatal(err)
	}
	want := readOutDir(t, ref.OutDir)
	got := readOutDir(t, zc.OutDir)
	if len(got) != len(want) {
		t.Fatalf("%d output files, reference has %d", len(got), len(want))
	}
	for name, wantData := range want {
		if !bytes.Equal(got[name], wantData) {
			t.Fatalf("%s differs between zero-copy and reader paths", name)
		}
	}
}

// TestTopComponents checks the bounded heap selection against a full-sort
// reference on random size maps with deliberate ties.
func TestTopComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	reference := func(sizes map[uint32]int, n int) []uint32 {
		type comp struct {
			root uint32
			size int
		}
		all := make([]comp, 0, len(sizes))
		for r, s := range sizes {
			all = append(all, comp{r, s})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].size != all[j].size {
				return all[i].size > all[j].size
			}
			return all[i].root < all[j].root
		})
		if n > len(all) {
			n = len(all)
		}
		if n < 0 {
			n = 0
		}
		roots := make([]uint32, n)
		for i := 0; i < n; i++ {
			roots[i] = all[i].root
		}
		return roots
	}
	for trial := 0; trial < 50; trial++ {
		sizes := make(map[uint32]int)
		c := rng.Intn(40)
		for i := 0; i < c; i++ {
			// Small size range forces ties; sparse roots exercise ordering.
			sizes[uint32(rng.Intn(1000))] = 1 + rng.Intn(6)
		}
		for _, n := range []int{0, 1, 2, 3, 10, len(sizes), len(sizes) + 5} {
			want := reference(sizes, n)
			got := topComponents(sizes, n)
			if len(got) != len(want) {
				t.Fatalf("trial %d n=%d: got %d roots, want %d", trial, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d: roots[%d] = %d, want %d (got %v, want %v)",
						trial, n, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestConcatFiles checks content, ordering and error propagation.
func TestConcatFiles(t *testing.T) {
	dir := t.TempDir()
	var srcs []string
	var want bytes.Buffer
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("src%d", i))
		data := bytes.Repeat([]byte{byte('a' + i)}, 1000*(i+1))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		want.Write(data)
		srcs = append(srcs, p)
	}
	dst := filepath.Join(dir, "out")
	if err := concatFiles(dst, srcs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("concatenated %d bytes, want %d", len(got), want.Len())
	}

	// A missing source must surface, not produce a silently short output.
	if err := concatFiles(filepath.Join(dir, "out2"),
		append(srcs, filepath.Join(dir, "missing"))); err == nil {
		t.Fatal("concatFiles with a missing source returned nil")
	}
	// An uncreatable destination must surface too.
	if err := concatFiles(filepath.Join(dir, "no", "such", "dir", "out"), srcs); err == nil {
		t.Fatal("concatFiles with an uncreatable destination returned nil")
	}
}

// TestRunContextCancelMidOutput cancels a run with overlapped zero-copy
// output in the middle of CC-I/O and checks the error surfaces, no partial
// result escapes, and no goroutine — output prefetchers included — leaks.
// Under -race this shakes out the shutdown ordering between writeOutput's
// per-thread fetcher close and the pipeline's deferred backstop close.
func TestRunContextCancelMidOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 300, 40)

	base := runtime.NumGoroutine()
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.OutDir = t.TempDir()
	// Keep the prefetch goroutines in play on single-CPU hosts too: the
	// whole point here is shaking out their shutdown ordering.
	cfg.PrefetchChunks = 2

	// Poll sites before the output loop, with S=1: KmerGen polls once per
	// chunk plus once per thread (the end-of-list iteration), each rank polls
	// once at the pass boundary and once before writeOutput. The output loop
	// then polls once per chunk again, so landing the flip half the chunks
	// past that prefix places cancellation mid-CC-I/O deterministically.
	chunks := len(td.idx.Chunks)
	limit := chunks + cfg.Tasks*cfg.Threads + 2*cfg.Tasks + chunks/2
	ctx := newChunkCancelCtx(limit)
	res, err := RunContext(ctx, cfg)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after mid-output cancel: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("RunContext returned a result alongside cancellation")
	}
	flipped := ctx.cancelledAt()
	if flipped.IsZero() {
		t.Fatalf("context never flipped: the run finished before %d polls", ctx.limit)
	}
	if lat := returned.Sub(flipped); lat > time.Second {
		t.Fatalf("cancellation latency %v, want <= 1s", lat)
	}
	waitGoroutines(t, base, 2, 5*time.Second)
}
