package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// chunkCancelCtx is a context.Context that cancels itself after its Err
// method has been polled a fixed number of times. The pipeline polls ctx.Err
// at every KmerGen chunk boundary, so a small limit deterministically places
// the cancellation in the middle of KmerGen — no sleeps, no timing races.
type chunkCancelCtx struct {
	limit int

	mu        sync.Mutex
	calls     int
	flippedAt time.Time
	done      chan struct{}
}

func newChunkCancelCtx(limit int) *chunkCancelCtx {
	return &chunkCancelCtx{limit: limit, done: make(chan struct{})}
}

func (c *chunkCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *chunkCancelCtx) Done() <-chan struct{}       { return c.done }
func (c *chunkCancelCtx) Value(key any) any           { return nil }

func (c *chunkCancelCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls >= c.limit && c.flippedAt.IsZero() {
		c.flippedAt = time.Now()
		close(c.done)
	}
	if !c.flippedAt.IsZero() {
		return context.Canceled
	}
	return nil
}

// cancelledAt reports when the context flipped to cancelled (zero if never).
func (c *chunkCancelCtx) cancelledAt() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flippedAt
}

// waitGoroutines polls until the goroutine count settles back to at most
// base+slack, failing the test if it does not within the deadline.
func waitGoroutines(t *testing.T, base, slack int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(end) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after cancel: %d goroutines (started with %d)\n%s",
				n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunContextCancelMidKmerGen cancels a multi-task run at a KmerGen chunk
// boundary and checks that RunContext returns context.Canceled promptly and
// that every pipeline goroutine (rank bodies, prefetchers, the mpirt context
// watcher) exits. Run under -race this also shakes out unsynchronized
// shutdown paths.
func TestRunContextCancelMidKmerGen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 300, 40)

	base := runtime.NumGoroutine()
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	// Keep the prefetch goroutines in play on single-CPU hosts too — this
	// test exists to check they exit.
	cfg.PrefetchChunks = 2

	ctx := newChunkCancelCtx(3)
	res, err := RunContext(ctx, cfg)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after mid-KmerGen cancel: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("RunContext returned a result alongside cancellation")
	}
	flipped := ctx.cancelledAt()
	if flipped.IsZero() {
		t.Fatalf("context never flipped: the run finished before %d chunk polls", ctx.limit)
	}
	if lat := returned.Sub(flipped); lat > time.Second {
		t.Fatalf("cancellation latency %v, want <= 1s", lat)
	}
	waitGoroutines(t, base, 2, 5*time.Second)
}

// TestRunContextPreCancelled checks that an already-cancelled context fails
// fast without partially running the pipeline.
func TestRunContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	td := genDataset(t, rng, smallOpts(), 1, 30, 40)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Default(td.idx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunContextUncancelled checks that threading a live context through the
// pipeline changes nothing: the run completes and matches Run.
func TestRunContextUncancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 120, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2

	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("label count mismatch: %d vs %d", len(got.Labels), len(want.Labels))
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("labels diverge at read %d: %d vs %d", i, got.Labels[i], want.Labels[i])
		}
	}
}
