package core

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metaprep/internal/fastq"
	"metaprep/internal/index"
	"metaprep/internal/kmer"
	"metaprep/internal/mpirt"
)

// --- test helpers ---------------------------------------------------------

// testData is a generated dataset plus its index.
type testData struct {
	paths []string
	seqs  [][]byte // per record
	idx   *index.Index
}

func genDataset(t testing.TB, rng *rand.Rand, opts index.Options, files, recsPerFile, readLen int) *testData {
	t.Helper()
	dir := t.TempDir()
	td := &testData{}
	for fi := 0; fi < files; fi++ {
		path := filepath.Join(dir, "reads"+string(rune('a'+fi))+".fastq")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := fastq.NewWriter(f)
		for i := 0; i < recsPerFile; i++ {
			seq := make([]byte, readLen)
			for j := range seq {
				if rng.Intn(60) == 0 {
					seq[j] = 'N'
				} else {
					seq[j] = "ACGT"[rng.Intn(4)]
				}
			}
			td.seqs = append(td.seqs, seq)
			if err := w.Write(fastq.Record{
				ID:   []byte{'r', byte('0' + fi), byte('0' + i%10)},
				Seq:  seq,
				Qual: bytes.Repeat([]byte("I"), readLen),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		td.paths = append(td.paths, path)
	}
	idx, err := index.Build(td.paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	td.idx = idx
	return td
}

// overlappingDataset generates reads drawn from a few synthetic genomes so
// reads genuinely share k-mers (random reads rarely do).
func overlappingDataset(t testing.TB, rng *rand.Rand, opts index.Options, genomes, genomeLen, reads, readLen int) *testData {
	t.Helper()
	dir := t.TempDir()
	gs := make([][]byte, genomes)
	for g := range gs {
		gs[g] = make([]byte, genomeLen)
		for j := range gs[g] {
			gs[g][j] = "ACGT"[rng.Intn(4)]
		}
	}
	path := filepath.Join(dir, "reads.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	td := &testData{paths: []string{path}}
	for i := 0; i < reads; i++ {
		g := gs[rng.Intn(genomes)]
		pos := rng.Intn(len(g) - readLen)
		seq := append([]byte(nil), g[pos:pos+readLen]...)
		td.seqs = append(td.seqs, seq)
		if err := w.Write(fastq.Record{
			ID:   []byte("x"),
			Seq:  seq,
			Qual: bytes.Repeat([]byte("I"), readLen),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idx, err := index.Build(td.paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	td.idx = idx
	return td
}

// naiveLabels computes read-graph component labels (canonicalized to the
// minimum read ID per component) directly: group reads by canonical k-mer,
// apply the frequency filter per k-mer, union.
func naiveLabels(td *testData, k int, paired bool, filter Filter) []uint32 {
	type key struct{ hi, lo uint64 }
	byKmer := make(map[key][]uint32)
	for rec, seq := range td.seqs {
		readID := uint32(rec)
		if paired {
			readID = uint32(rec / 2)
		}
		if k <= kmer.MaxK64 {
			kmer.ForEach64(seq, k, func(_ int, m kmer.Kmer64) {
				kk := key{0, uint64(m)}
				byKmer[kk] = append(byKmer[kk], readID)
			})
		} else {
			kmer.ForEach128(seq, k, func(_ int, m kmer.Kmer128) {
				kk := key{m.Hi, m.Lo}
				byKmer[kk] = append(byKmer[kk], readID)
			})
		}
	}
	n := len(td.seqs)
	if paired {
		n = (n + 1) / 2
	}
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, reads := range byKmer {
		if !filter.Keep(uint32(len(reads))) {
			continue
		}
		for _, r := range reads[1:] {
			a, b := find(reads[0]), find(r)
			if a != b {
				parent[a] = b
			}
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = find(uint32(i))
	}
	return canonLabels(labels)
}

// canonLabels renames labels to the minimum member of each component.
func canonLabels(labels []uint32) []uint32 {
	minOf := make(map[uint32]uint32)
	for i, l := range labels {
		if m, ok := minOf[l]; !ok || uint32(i) < m {
			minOf[l] = uint32(i)
		}
	}
	out := make([]uint32, len(labels))
	for i, l := range labels {
		out[i] = minOf[l]
	}
	return out
}

func assertSameLabels(t *testing.T, want, got []uint32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("label lengths differ: %d vs %d", len(want), len(got))
	}
	g := canonLabels(got)
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("read %d: component %d, want %d", i, g[i], want[i])
		}
	}
}

func smallOpts() index.Options {
	return index.Options{K: 11, M: 4, ChunkSize: 1500}
}

// --- tests -----------------------------------------------------------------

func TestPipelineSingleTaskMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 150, 40)
	cfg := Default(td.idx)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveLabels(td, 11, false, Filter{})
	assertSameLabels(t, want, res.Labels)
	if res.Reads != 150 {
		t.Errorf("Reads = %d", res.Reads)
	}
	if res.Tuples == 0 || res.Edges == 0 {
		t.Errorf("Tuples=%d Edges=%d", res.Tuples, res.Edges)
	}
}

func TestPipelineRandomReadsMatchesNaive(t *testing.T) {
	// Random reads (mostly singleton components, some accidental overlap).
	rng := rand.New(rand.NewSource(2))
	td := genDataset(t, rng, smallOpts(), 2, 120, 60)
	res, err := Run(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, naiveLabels(td, 11, false, Filter{}), res.Labels)
}

func TestPipelineMultiTaskMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	td := overlappingDataset(t, rng, smallOpts(), 5, 300, 200, 35)
	want := naiveLabels(td, 11, false, Filter{})
	for _, tasks := range []int{2, 3, 4} {
		for _, threads := range []int{1, 2, 3} {
			cfg := Default(td.idx)
			cfg.Tasks = tasks
			cfg.Threads = threads
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("P=%d T=%d: %v", tasks, threads, err)
			}
			assertSameLabels(t, want, res.Labels)
		}
	}
}

func TestMultiPassMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	td := overlappingDataset(t, rng, smallOpts(), 4, 350, 180, 40)
	want := naiveLabels(td, 11, false, Filter{})
	for _, passes := range []int{2, 3, 5, 8} {
		for _, ccopt := range []bool{false, true} {
			cfg := Default(td.idx)
			cfg.Tasks = 2
			cfg.Threads = 2
			cfg.Passes = passes
			cfg.CCOpt = ccopt
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("S=%d ccopt=%v: %v", passes, ccopt, err)
			}
			assertSameLabels(t, want, res.Labels)
		}
	}
}

func TestFrequencyFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	td := overlappingDataset(t, rng, smallOpts(), 3, 250, 220, 30)
	for _, filter := range []Filter{{Min: 3}, {Max: 6}, {Min: 2, Max: 10}} {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Filter = filter
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("filter %v: %v", filter, err)
		}
		assertSameLabels(t, naiveLabels(td, 11, false, filter), res.Labels)
	}
}

func TestFilterReducesLargestComponent(t *testing.T) {
	// With a Max filter, high-frequency k-mers stop gluing reads together,
	// so the largest component cannot grow.
	rng := rand.New(rand.NewSource(6))
	td := overlappingDataset(t, rng, smallOpts(), 2, 300, 300, 40)
	unfiltered, err := Run(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(td.idx)
	cfg.Filter = Filter{Max: 4}
	filtered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.LargestSize > unfiltered.LargestSize {
		t.Errorf("filter grew the largest component: %d > %d",
			filtered.LargestSize, unfiltered.LargestSize)
	}
	if filtered.Components < unfiltered.Components {
		t.Errorf("filter reduced component count: %d < %d",
			filtered.Components, unfiltered.Components)
	}
}

func TestPairedMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := smallOpts()
	opts.Paired = true
	td := overlappingDataset(t, rng, opts, 4, 300, 200, 35)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 100 {
		t.Fatalf("paired Reads = %d, want 100", res.Reads)
	}
	assertSameLabels(t, naiveLabels(td, 11, true, Filter{}), res.Labels)
}

func TestDynamicOffsetsAblationMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	want := naiveLabels(td, 11, false, Filter{})
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 3
	cfg.DynamicOffsets = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, want, res.Labels)
}

func TestScalarKmerGenMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	want := naiveLabels(td, 11, false, Filter{})
	cfg := Default(td.idx)
	cfg.NoVectorKmerGen = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, want, res.Labels)
}

func TestLargeKPath(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	opts := index.Options{K: 35, M: 4, ChunkSize: 2000}
	td := overlappingDataset(t, rng, opts, 4, 400, 120, 60)
	want := naiveLabels(td, 35, false, Filter{})
	for _, passes := range []int{1, 3} {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Passes = passes
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("S=%d: %v", passes, err)
		}
		assertSameLabels(t, want, res.Labels)
	}
}

func TestOutputPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 180, 40)
	outDir := t.TempDir()
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.OutDir = outDir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LCFiles) != 4 || len(res.OtherFiles) != 4 {
		t.Fatalf("output files: %d LC, %d other", len(res.LCFiles), len(res.OtherFiles))
	}
	countAll := func(paths []string) int {
		total := 0
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			n, err := fastq.CountRecords(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			total += int(n)
		}
		return total
	}
	lcRecs := countAll(res.LCFiles)
	otherRecs := countAll(res.OtherFiles)
	if lcRecs+otherRecs != len(td.seqs) {
		t.Fatalf("output holds %d records, input had %d", lcRecs+otherRecs, len(td.seqs))
	}
	if lcRecs != res.LargestSize {
		t.Fatalf("LC output has %d records, largest component has %d reads", lcRecs, res.LargestSize)
	}
	// Every record in the LC files must belong to the largest component.
	// Match by sequence content (IDs are not unique in this dataset).
	inLC := make(map[string]bool)
	for rec, seq := range td.seqs {
		if res.Labels[rec] == res.LargestRoot {
			inLC[string(seq)] = true
		}
	}
	for _, p := range res.LCFiles {
		f, _ := os.Open(p)
		r := fastq.NewReader(f)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !inLC[string(rec.Seq)] {
				t.Fatalf("LC file %s holds read outside the largest component", p)
			}
		}
		f.Close()
	}
	// MergeLC concatenates correctly.
	lcPath := filepath.Join(outDir, "lc.fastq")
	otherPath := filepath.Join(outDir, "other.fastq")
	if err := MergeLC(res, lcPath, otherPath); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(lcPath)
	n, err := fastq.CountRecords(f)
	f.Close()
	if err != nil || int(n) != lcRecs {
		t.Fatalf("merged LC: %d records (%v), want %d", n, err, lcRecs)
	}
}

func TestPairedOutputKeepsMatesTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	opts := smallOpts()
	opts.Paired = true
	td := overlappingDataset(t, rng, opts, 3, 300, 200, 35)
	outDir := t.TempDir()
	cfg := Default(td.idx)
	cfg.OutDir = outDir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both mates of a pair share a read ID, so the LC record count must be
	// exactly 2 × (pairs in LC).
	var lcRecs int64
	for _, p := range res.LCFiles {
		f, _ := os.Open(p)
		n, _ := fastq.CountRecords(f)
		f.Close()
		lcRecs += n
	}
	if lcRecs%2 != 0 {
		t.Fatalf("LC holds %d records — a pair was split", lcRecs)
	}
	if int(lcRecs) != 2*res.LargestSize {
		t.Fatalf("LC records %d != 2×%d", lcRecs, res.LargestSize)
	}
}

func TestStepTimesAndReports(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps.KmerGen <= 0 || res.Steps.LocalSort < 0 || res.Steps.Total() <= 0 {
		t.Errorf("step times not populated: %+v", res.Steps)
	}
	if len(res.PerTask) != 2 {
		t.Fatalf("PerTask has %d entries", len(res.PerTask))
	}
	var tuples uint64
	for _, rep := range res.PerTask {
		tuples += rep.Tuples
		if rep.MemoryBytes <= 0 {
			t.Errorf("task %d memory = %d", rep.Rank, rep.MemoryBytes)
		}
	}
	if tuples != res.Tuples || tuples != td.idx.TotalKmers {
		t.Errorf("tuple counts: sum=%d res=%d index=%d", tuples, res.Tuples, td.idx.TotalKmers)
	}
	if res.CCIterations < 1 {
		t.Errorf("CCIterations = %d", res.CCIterations)
	}
	if res.Wall <= 0 {
		t.Error("Wall not measured")
	}
}

func TestComponentAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	td := overlappingDataset(t, rng, smallOpts(), 4, 300, 160, 40)
	res, err := Run(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.ComponentSizes()
	if len(sizes) != res.Components {
		t.Errorf("Components=%d, sizes map has %d", res.Components, len(sizes))
	}
	total := 0
	maxSize := 0
	for _, s := range sizes {
		total += s
		if s > maxSize {
			maxSize = s
		}
	}
	if total != int(res.Reads) {
		t.Errorf("component sizes sum to %d, want %d", total, res.Reads)
	}
	if maxSize != res.LargestSize {
		t.Errorf("LargestSize=%d, max size=%d", res.LargestSize, maxSize)
	}
	if f := res.LargestFraction(); f <= 0 || f > 1 {
		t.Errorf("LargestFraction=%v", f)
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	td := genDataset(t, rng, smallOpts(), 1, 10, 30)
	bad := []Config{
		{},
		{Index: td.idx, Tasks: 0, Threads: 1, Passes: 1},
		{Index: td.idx, Tasks: 1, Threads: 0, Passes: 1},
		{Index: td.idx, Tasks: 1, Threads: 1, Passes: 0},
		{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1, Filter: Filter{Min: 10, Max: 2}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
}

func TestFilterString(t *testing.T) {
	cases := map[string]Filter{
		"None":       {},
		"KF<=30":     {Max: 30},
		"KF>=10":     {Min: 10},
		"10<=KF<=30": {Min: 10, Max: 30},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("Filter%+v.String() = %q, want %q", f, got, want)
		}
	}
}

func TestNetworkModelChargesCommSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	fast := Default(td.idx)
	fast.Tasks = 4
	fastRes, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	slow := fast
	// A very slow modeled network (1 KB/s) must inflate the communication
	// steps far beyond the un-modeled run, and leave labels unchanged.
	slow.Network = &mpirt.NetworkModel{BandwidthBytesPerSec: 1e3}
	slowRes, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, canonLabels(fastRes.Labels), slowRes.Labels)
	if slowRes.Steps.KmerGenComm <= fastRes.Steps.KmerGenComm {
		t.Errorf("modeled network did not inflate KmerGen-Comm: %v vs %v",
			slowRes.Steps.KmerGenComm, fastRes.Steps.KmerGenComm)
	}
	if slowRes.Steps.MergeComm <= fastRes.Steps.MergeComm {
		t.Errorf("modeled network did not inflate Merge-Comm: %v vs %v",
			slowRes.Steps.MergeComm, fastRes.Steps.MergeComm)
	}
}

func TestMoreTasksThanChunks(t *testing.T) {
	// With P greater than the chunk count some tasks own no input at all;
	// they must still participate in the exchange, merge and output.
	rng := rand.New(rand.NewSource(17))
	opts := index.Options{K: 11, M: 4, ChunkSize: 1 << 20} // one big chunk
	td := overlappingDataset(t, rng, opts, 3, 300, 120, 40)
	if len(td.idx.Chunks) >= 4 {
		t.Fatalf("test assumes few chunks, got %d", len(td.idx.Chunks))
	}
	want := naiveLabels(td, 11, false, Filter{})
	cfg := Default(td.idx)
	cfg.Tasks = 4
	cfg.Threads = 2
	cfg.OutDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, want, res.Labels)
	// All reads still present in the output.
	total := 0
	for _, paths := range [][]string{res.LCFiles, res.OtherFiles} {
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			n, _ := fastq.CountRecords(f)
			f.Close()
			total += int(n)
		}
	}
	if total != len(td.seqs) {
		t.Fatalf("output holds %d records, want %d", total, len(td.seqs))
	}
}

func TestReadsShorterThanK(t *testing.T) {
	// Reads shorter than k contribute no tuples but must keep their read
	// IDs and appear in the output as singleton components.
	rng := rand.New(rand.NewSource(18))
	dir := t.TempDir()
	path := filepath.Join(dir, "short.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	var seqs [][]byte
	for i := 0; i < 50; i++ {
		n := 5 + rng.Intn(20) // some below k=11, some above
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
		}
		seqs = append(seqs, seq)
		_ = w.Write(fastq.Record{ID: []byte("s"), Seq: seq, Qual: bytes.Repeat([]byte("I"), n)})
	}
	_ = w.Flush()
	f.Close()
	idx, err := index.Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	td := &testData{paths: []string{path}, seqs: seqs, idx: idx}
	res, err := Run(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, naiveLabels(td, 11, false, Filter{}), res.Labels)
}

func TestSingleReadDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.fastq")
	os.WriteFile(path, []byte("@r\nACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIII\n"), 0o644)
	idx, err := index.Build([]string{path}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Default(idx))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 1 || res.Components != 1 || res.LargestSize != 1 {
		t.Fatalf("single read: %+v", res)
	}
}

func TestManyPassesFewKmers(t *testing.T) {
	// More passes than distinct bins with data: some passes are empty.
	rng := rand.New(rand.NewSource(19))
	td := overlappingDataset(t, rng, smallOpts(), 2, 200, 40, 30)
	want := naiveLabels(td, 11, false, Filter{})
	cfg := Default(td.idx)
	cfg.Passes = 16
	cfg.Tasks = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, want, res.Labels)
}

func TestSparseMergeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	td := overlappingDataset(t, rng, smallOpts(), 4, 300, 200, 35)
	dense := Default(td.idx)
	dense.Tasks = 4
	dense.SparseDeltaMerge = false // one-shot dense baseline
	denseRes, err := Run(dense)
	if err != nil {
		t.Fatal(err)
	}
	sparse := dense
	sparse.SparseMerge = true
	sparseRes, err := Run(sparse)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, canonLabels(denseRes.Labels), sparseRes.Labels)
	// Both runs must agree on everything observable.
	if denseRes.Components != sparseRes.Components ||
		denseRes.LargestSize != sparseRes.LargestSize {
		t.Fatalf("dense %d/%d vs sparse %d/%d",
			denseRes.Components, denseRes.LargestSize,
			sparseRes.Components, sparseRes.LargestSize)
	}
}

func TestSparseMergeReducesTrafficOnSparseGraphs(t *testing.T) {
	// Mostly-singleton data (random reads): the sparse payload must be
	// smaller than the dense 4R-byte arrays.
	rng := rand.New(rand.NewSource(21))
	td := genDataset(t, rng, smallOpts(), 2, 200, 50)
	run := func(sparse bool) int64 {
		cfg := Default(td.idx)
		cfg.Tasks = 4
		cfg.SparseDeltaMerge = false
		cfg.SparseMerge = sparse
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var bytes int64
		for _, rep := range res.PerTask {
			bytes += rep.BytesSent
		}
		return bytes
	}
	denseBytes := run(false)
	sparseBytes := run(true)
	if sparseBytes >= denseBytes {
		t.Errorf("sparse merge sent %d bytes, dense %d", sparseBytes, denseBytes)
	}
}

func TestSplitComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	td := overlappingDataset(t, rng, smallOpts(), 5, 350, 250, 35)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.SplitComponents = 3
	cfg.OutDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SplitFiles) != 4 { // 3 components + remainder
		t.Fatalf("got %d groups, want 4", len(res.SplitFiles))
	}
	// Group sizes: descending for the top components; everything accounted.
	sizes := res.ComponentSizes()
	counts := make([]int, len(res.SplitFiles))
	total := 0
	for g, paths := range res.SplitFiles {
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			n, _ := fastq.CountRecords(f)
			f.Close()
			counts[g] += int(n)
			total += int(n)
		}
	}
	if total != len(td.seqs) {
		t.Fatalf("groups hold %d records, input had %d", total, len(td.seqs))
	}
	if counts[0] != res.LargestSize {
		t.Fatalf("group 0 has %d records, largest component %d", counts[0], res.LargestSize)
	}
	for g := 1; g < 3; g++ {
		if counts[g] > counts[g-1] {
			t.Fatalf("group %d (%d) larger than group %d (%d)", g, counts[g], g-1, counts[g-1])
		}
	}
	_ = sizes
	// LCFiles is group 0 and OtherFiles the remainder.
	if len(res.LCFiles) == 0 || res.LCFiles[0] != res.SplitFiles[0][0] {
		t.Error("LCFiles does not alias group 0")
	}
}

func TestSplitComponentsMoreThanExist(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	td := overlappingDataset(t, rng, smallOpts(), 2, 300, 60, 40)
	cfg := Default(td.idx)
	cfg.SplitComponents = 1000 // more than components exist
	cfg.OutDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SplitFiles) != res.Components+1 {
		t.Fatalf("groups=%d components=%d", len(res.SplitFiles), res.Components)
	}
}

func TestKmerFreqHist(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 3
	cfg.Passes = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The histogram must describe exactly the distinct k-mers and tuples.
	naive := map[uint64]uint32{}
	for _, seq := range td.seqs {
		kmer.ForEach64(seq, 11, func(_ int, m kmer.Kmer64) { naive[uint64(m)]++ })
	}
	want := make([]uint64, 256)
	for _, f := range naive {
		if int(f) < 255 {
			want[f]++
		} else {
			want[255]++
		}
	}
	var distinct, tuples uint64
	for f, c := range res.KmerFreqHist {
		if c != want[f] {
			t.Fatalf("freq %d: %d k-mers, want %d", f, c, want[f])
		}
		distinct += c
		tuples += uint64(f) * c
	}
	if distinct != uint64(len(naive)) {
		t.Fatalf("distinct k-mers %d, want %d", distinct, len(naive))
	}
}

func TestPipelineRandomizedConfigs(t *testing.T) {
	// Fuzz-ish sweep: random datasets and random (P, T, S, filter, flags)
	// must always match the naive reference.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		genomes := 2 + rng.Intn(4)
		reads := 60 + rng.Intn(150)
		readLen := 25 + rng.Intn(30)
		td := overlappingDataset(t, rng, smallOpts(), genomes, 250+rng.Intn(200), reads, readLen)
		filter := Filter{}
		switch rng.Intn(3) {
		case 1:
			filter = Filter{Max: uint32(3 + rng.Intn(10))}
		case 2:
			filter = Filter{Min: uint32(2 + rng.Intn(3)), Max: uint32(8 + rng.Intn(10))}
		}
		cfg := Default(td.idx)
		cfg.Tasks = 1 + rng.Intn(5)
		cfg.Threads = 1 + rng.Intn(4)
		cfg.Passes = 1 + rng.Intn(5)
		cfg.Filter = filter
		cfg.CCOpt = rng.Intn(2) == 0
		switch rng.Intn(3) { // merge payload encoding: delta (default) / sparse / dense
		case 1:
			cfg.SparseDeltaMerge, cfg.SparseMerge = false, true
		case 2:
			cfg.SparseDeltaMerge = false
		}
		cfg.StarBroadcast = rng.Intn(2) == 0
		cfg.DynamicOffsets = rng.Intn(4) == 0
		cfg.NoVectorKmerGen = rng.Intn(4) == 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		want := naiveLabels(td, 11, false, filter)
		g := canonLabels(res.Labels)
		for i := range want {
			if g[i] != want[i] {
				t.Fatalf("trial %d (P=%d T=%d S=%d %v ccopt=%v sparse=%v): read %d got %d want %d",
					trial, cfg.Tasks, cfg.Threads, cfg.Passes, filter, cfg.CCOpt, cfg.SparseMerge,
					i, g[i], want[i])
			}
		}
	}
}

func TestRunFailsCleanlyOnChangedInput(t *testing.T) {
	// Rewriting the FASTQ after indexing must produce an error (the index's
	// counts no longer match), not corrupt output.
	rng := rand.New(rand.NewSource(25))
	td := overlappingDataset(t, rng, smallOpts(), 2, 300, 80, 40)
	// Overwrite the data file with different content of similar size.
	td2 := overlappingDataset(t, rng, smallOpts(), 2, 300, 80, 40)
	data, err := os.ReadFile(td2.paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(td.paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// With one task, one thread and one pass there is no bin-range
	// granularity to violate (the pipeline would simply process the new
	// data); finer configurations must detect the stale index's counts.
	cfg := Default(td.idx)
	cfg.Tasks = 3
	cfg.Threads = 2
	cfg.Passes = 2
	if _, err := Run(cfg); err == nil {
		t.Error("Run succeeded on input changed since IndexCreate")
	}
}

func TestRunFailsCleanlyOnMissingInput(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	td := overlappingDataset(t, rng, smallOpts(), 2, 300, 60, 40)
	os.Remove(td.paths[0])
	if _, err := Run(Default(td.idx)); err == nil {
		t.Error("Run succeeded with missing input file")
	}
}

func TestMatePairFilesEndToEnd(t *testing.T) {
	// Separate mate files: record i of the two files of a pair share an ID;
	// the pipeline's components must match a reference built on that ID
	// mapping.
	rng := rand.New(rand.NewSource(30))
	dir := t.TempDir()
	genomes := make([][]byte, 4)
	for g := range genomes {
		genomes[g] = make([]byte, 400)
		for j := range genomes[g] {
			genomes[g][j] = "ACGT"[rng.Intn(4)]
		}
	}
	const pairs = 80
	mate1 := make([][]byte, pairs)
	mate2 := make([][]byte, pairs)
	for i := 0; i < pairs; i++ {
		g := genomes[rng.Intn(4)]
		p1 := rng.Intn(len(g) - 40)
		p2 := rng.Intn(len(g) - 40)
		mate1[i] = append([]byte(nil), g[p1:p1+40]...)
		mate2[i] = append([]byte(nil), g[p2:p2+40]...)
	}
	writeMate := func(name string, seqs [][]byte) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := fastq.NewWriter(f)
		for _, s := range seqs {
			_ = w.Write(fastq.Record{ID: []byte("m"), Seq: s, Qual: bytes.Repeat([]byte("I"), len(s))})
		}
		_ = w.Flush()
		f.Close()
		return path
	}
	p1 := writeMate("m1.fastq", mate1)
	p2 := writeMate("m2.fastq", mate2)
	opts := smallOpts()
	opts.MatePairs = true
	idx, err := index.Build([]string{p1, p2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != pairs {
		t.Fatalf("Reads = %d, want %d", res.Reads, pairs)
	}
	// Naive reference over pair IDs: pair i's k-mers are those of both
	// mates.
	byKmer := map[uint64][]uint32{}
	for i := 0; i < pairs; i++ {
		for _, seq := range [][]byte{mate1[i], mate2[i]} {
			kmer.ForEach64(seq, 11, func(_ int, m kmer.Kmer64) {
				byKmer[uint64(m)] = append(byKmer[uint64(m)], uint32(i))
			})
		}
	}
	parent := make([]uint32, pairs)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ids := range byKmer {
		for _, r := range ids[1:] {
			a, b := find(ids[0]), find(r)
			if a != b {
				parent[a] = b
			}
		}
	}
	want := make([]uint32, pairs)
	for i := range want {
		want[i] = find(uint32(i))
	}
	assertSameLabels(t, canonLabels(want), res.Labels)
}

func TestSaveLoadLabels(t *testing.T) {
	dir := t.TempDir()
	labels := []uint32{5, 5, 2, 9, 0}
	path := filepath.Join(dir, "labels.bin")
	if err := SaveLabels(path, labels); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLabels(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("loaded %d labels", len(got))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d: %d != %d", i, got[i], labels[i])
		}
	}
	// Empty array round-trips.
	if err := SaveLabels(path, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadLabels(path); err != nil || len(got) != 0 {
		t.Fatalf("empty labels: %v %d", err, len(got))
	}
	// Garbage rejected.
	os.WriteFile(path, []byte("nope"), 0o644)
	if _, err := LoadLabels(path); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMemoryShrinksWithPasses(t *testing.T) {
	// §3.7: the dominant memory term scales as 1/S.
	rng := rand.New(rand.NewSource(31))
	td := overlappingDataset(t, rng, smallOpts(), 3, 400, 200, 40)
	var prev int64
	for i, s := range []int{1, 2, 4, 8} {
		cfg := Default(td.idx)
		cfg.Passes = s
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MemoryPerTask >= prev {
			t.Fatalf("S=%d memory %d not below S-previous %d", s, res.MemoryPerTask, prev)
		}
		prev = res.MemoryPerTask
	}
}
