package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// hash.go defines the canonical configuration hash used as half of the job
// service's content-addressed result-cache key (the other half is the index
// digest, index.Index.Digest). Two Config values that mean the same run
// must hash identically, whatever order their fields were assigned in and
// whether semantically-equivalent defaults were spelled out or left zero —
// TestCanonicalHashGolden pins the encoding.

// canonicalHashVersion is bumped whenever the set of hashed fields or their
// normalization changes, invalidating every previously cached result rather
// than silently aliasing old entries.
const canonicalHashVersion = 6

// CanonicalHash returns a stable hex digest of the run-defining
// configuration. The encoding is canonical:
//
//   - fields are written in one fixed order with explicit labels, so the
//     hash cannot depend on struct-literal field order;
//   - semantically-equivalent spellings normalize to one form before
//     hashing: PrefetchChunks 0 and 1 (both "double buffering"), a nil and
//     a zero NetworkModel (both "free communication");
//   - non-semantic fields are excluded: the Index pointer (the cache key
//     pairs this hash with the index digest) and the Obs collector
//     (observability never changes results).
func (c Config) CanonicalHash() string {
	h := sha256.New()
	field := func(name string, v any) { fmt.Fprintf(h, "%s=%v\n", name, v) }
	field("version", canonicalHashVersion)
	field("tasks", c.Tasks)
	field("threads", c.Threads)
	field("passes", c.Passes)
	field("filter.min", c.Filter.Min)
	field("filter.max", c.Filter.Max)
	field("ccopt", c.CCOpt)
	field("sparse_merge", c.SparseMerge)
	// The back-half knobs never change results, but — like the exchange
	// schedule — they are distinct runs for caching purposes: step timings,
	// traces and wire-byte counters all differ.
	field("sparse_delta_merge", c.SparseDeltaMerge)
	field("star_broadcast", c.StarBroadcast)
	field("overlap_output", c.OverlapOutput)
	field("split_components", c.SplitComponents)
	field("out_dir", c.OutDir)
	// Normalized prefetch depth: 0 (NoPrefetch), or the requested
	// read-ahead with 0 and 1 both meaning double buffering. Deliberately
	// NOT prefetchDepth(): that folds in the host's CPU count, and a cache
	// key must hash identically on every machine.
	depth := c.PrefetchChunks
	if depth < 1 {
		depth = 1
	}
	if c.NoPrefetch {
		depth = 0
	}
	field("prefetch_depth", depth)
	field("dynamic_offsets", c.DynamicOffsets)
	// 0 is the bulk reference path; any positive value is a distinct
	// schedule knob even though results are bit-identical, because cached
	// step timings and traces differ. (Pool is excluded: buffer reuse can
	// never change a result.)
	field("exchange_chunk_tuples", c.ExchangeChunkTuples)
	// The out-of-core knobs are distinct runs for caching purposes even
	// though results are bit-identical: step timings, spill counters and
	// traces differ. SpillDir is excluded like Pool — where the scratch
	// files live can never change a result.
	field("spill_budget_bytes", c.SpillBudgetBytes)
	field("spill_compress", c.SpillCompress)
	// Incremental repartitioning computes a different result (labels over
	// base∪delta reads), so the mode and the base artifact's identity are
	// run-defining. A plain reload (ArtifactIn without ArtifactDelta)
	// produces the same labels as the direct run and hashes identically;
	// ArtifactOut is excluded like SpillDir — where the artifact lands
	// never changes the result.
	field("artifact_delta", c.ArtifactDelta)
	if c.ArtifactDelta {
		field("artifact_in", c.ArtifactIn)
	}
	// The prefilter is semantic: false positives at any sizing can keep
	// different k-mers, and MinCount > 2 changes labels outright — so both
	// knobs are run-defining. MinCount normalizes through minCount(): 0 and
	// 2 hash identically when the prefilter is on, and a disabled prefilter
	// always hashes as (0, 0).
	field("prefilter.bits_per_kmer", c.Prefilter.BitsPerKmer)
	field("prefilter.min_count", c.Prefilter.minCount())
	field("no_vector_kmergen", c.NoVectorKmerGen)
	if c.Network == nil || (c.Network.Latency == 0 && c.Network.BandwidthBytesPerSec == 0) {
		field("network", "none")
	} else {
		field("network.latency_ns", c.Network.Latency.Nanoseconds())
		field("network.bandwidth_bps", c.Network.BandwidthBytesPerSec)
	}
	return hex.EncodeToString(h.Sum(nil))
}
