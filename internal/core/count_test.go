package core

import (
	"math/rand"
	"testing"

	"metaprep/internal/kmer"
)

func TestRunCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	want := map[uint64]uint32{}
	for _, seq := range td.seqs {
		kmer.ForEach64(seq, 11, func(_ int, m kmer.Kmer64) { want[uint64(m)]++ })
	}
	for _, dims := range [][3]int{{1, 1, 1}, {3, 2, 2}, {2, 2, 4}} {
		cfg := Default(td.idx)
		cfg.Tasks, cfg.Threads, cfg.Passes = dims[0], dims[1], dims[2]
		res, err := RunCount(cfg)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if res.Len() != len(want) {
			t.Fatalf("%v: %d distinct k-mers, want %d", dims, res.Len(), len(want))
		}
		var total uint64
		for i, km := range res.KmersLo {
			if i > 0 && res.KmersLo[i-1] >= km {
				t.Fatalf("%v: output not strictly sorted at %d", dims, i)
			}
			if want[km] != res.Counts[i] {
				t.Fatalf("%v: k-mer %s count %d, want %d", dims,
					kmer.String64(kmer.Kmer64(km), 11), res.Counts[i], want[km])
			}
			total += uint64(res.Counts[i])
		}
		if total != res.Tuples || total != td.idx.TotalKmers {
			t.Fatalf("%v: counted %d instances, tuples %d, index %d",
				dims, total, res.Tuples, td.idx.TotalKmers)
		}
		if res.KmersHi != nil {
			t.Fatalf("%v: KmersHi set for k=11", dims)
		}
	}
}

func TestRunCountGet(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	td := overlappingDataset(t, rng, smallOpts(), 2, 250, 60, 35)
	res, err := RunCount(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint32{}
	for _, seq := range td.seqs {
		kmer.ForEach64(seq, 11, func(_ int, m kmer.Kmer64) { want[uint64(m)]++ })
	}
	for km, c := range want {
		if res.Get(km) != c {
			t.Fatalf("Get(%d) = %d, want %d", km, res.Get(km), c)
		}
	}
	if res.Get(^uint64(0)) != 0 {
		t.Error("absent k-mer count != 0")
	}
}

func TestRunCount128(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	opts := smallOpts()
	opts.K = 35
	td := overlappingDataset(t, rng, opts, 3, 400, 100, 60)
	res, err := RunCount(Default(td.idx))
	if err != nil {
		t.Fatal(err)
	}
	want := map[kmer.Kmer128]uint32{}
	for _, seq := range td.seqs {
		kmer.ForEach128(seq, 35, func(_ int, m kmer.Kmer128) { want[m]++ })
	}
	if res.Len() != len(want) {
		t.Fatalf("distinct: %d vs %d", res.Len(), len(want))
	}
	if len(res.KmersHi) != res.Len() {
		t.Fatalf("KmersHi length %d", len(res.KmersHi))
	}
	for i := range res.KmersLo {
		km := kmer.Kmer128{Hi: res.KmersHi[i], Lo: res.KmersLo[i]}
		if want[km] != res.Counts[i] {
			t.Fatalf("k-mer %d count %d, want %d", i, res.Counts[i], want[km])
		}
	}
}
