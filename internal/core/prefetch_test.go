package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metaprep/internal/index"
)

// runOnce executes the pipeline with the given prefetch settings applied on
// top of cfg and returns the result.
func runOnce(t *testing.T, cfg Config, noPrefetch bool, depth int) *Result {
	t.Helper()
	cfg.NoPrefetch = noPrefetch
	cfg.PrefetchChunks = depth
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("noPrefetch=%v depth=%d: %v", noPrefetch, depth, err)
	}
	return res
}

// assertIdenticalResults requires the bit-identical outputs the prefetch
// ablation promises: same Labels (not merely the same partition), Tuples,
// Edges and KmerFreqHist.
func assertIdenticalResults(t *testing.T, want, got *Result, what string) {
	t.Helper()
	if !reflect.DeepEqual(want.Labels, got.Labels) {
		t.Fatalf("%s: Labels differ", what)
	}
	if want.Tuples != got.Tuples || want.Edges != got.Edges {
		t.Fatalf("%s: Tuples/Edges %d/%d, want %d/%d",
			what, got.Tuples, got.Edges, want.Tuples, want.Edges)
	}
	if !reflect.DeepEqual(want.KmerFreqHist, got.KmerFreqHist) {
		t.Fatalf("%s: KmerFreqHist differs", what)
	}
}

// TestPrefetchAblationIdentical runs the pipeline with overlapped chunk I/O
// off (the ablation) and on at several depths; every variant must produce
// bit-identical results, since the prefetcher only changes when bytes are
// read, never what is parsed.
func TestPrefetchAblationIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	td := overlappingDataset(t, rng, smallOpts(), 5, 400, 160, 40)

	base := Default(td.idx)
	base.Tasks = 2
	base.Threads = 2
	base.Passes = 2

	want := runOnce(t, base, true, 0) // serial reads, no overlap
	assertIdenticalResults(t, want, runOnce(t, base, false, 0), "default depth")
	for _, depth := range []int{1, 2, 3} {
		res := runOnce(t, base, false, depth)
		assertIdenticalResults(t, want, res, fmt.Sprintf("depth %d", depth))
	}
	assertSameLabels(t, naiveLabels(td, 11, false, Filter{}), want.Labels)
}

// TestPrefetchLargeKAndDynamicOffsets covers the 128-bit k-mer path and the
// dynamic-offset KmerGen variant under prefetch.
func TestPrefetchLargeKAndDynamicOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	opts := index.Options{K: 35, M: 4, ChunkSize: 2000}
	td := overlappingDataset(t, rng, opts, 4, 300, 100, 60)

	base := Default(td.idx)
	base.Tasks = 2
	base.Threads = 2

	want := runOnce(t, base, true, 0)
	assertIdenticalResults(t, want, runOnce(t, base, false, 2), "large-K prefetch")

	dyn := base
	dyn.DynamicOffsets = true
	assertIdenticalResults(t, want, runOnce(t, dyn, false, 2), "dynamic offsets prefetch")
}

// TestPrefetchSingleChunkFiles exercises the serial fallback: with at most
// one chunk per thread there is nothing to overlap.
func TestPrefetchSingleChunkFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opts := index.Options{K: 11, M: 4, ChunkSize: 1 << 20} // one chunk per file
	td := overlappingDataset(t, rng, opts, 3, 200, 80, 40)

	base := Default(td.idx)
	base.Threads = 2
	want := runOnce(t, base, true, 0)
	assertIdenticalResults(t, want, runOnce(t, base, false, 4), "single chunk")
}
