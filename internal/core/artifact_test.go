package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprep/internal/artifact"
	"metaprep/internal/fastq"
	"metaprep/internal/index"
)

// --- helpers ---------------------------------------------------------------

// writeFastqFile writes one record per seq.
func writeFastqFile(t *testing.T, path string, seqs [][]byte) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	for i, seq := range seqs {
		if err := w.Write(fastq.Record{
			ID:   []byte(fmt.Sprintf("r%04d", i)),
			Seq:  seq,
			Qual: bytes.Repeat([]byte("I"), len(seq)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// genomeReads draws n reads from a shared set of synthetic genomes, so
// reads genuinely overlap.
func genomeReads(rng *rand.Rand, genomes [][]byte, n, readLen int) [][]byte {
	seqs := make([][]byte, n)
	for i := range seqs {
		g := genomes[rng.Intn(len(genomes))]
		pos := rng.Intn(len(g) - readLen)
		seqs[i] = append([]byte(nil), g[pos:pos+readLen]...)
	}
	return seqs
}

func makeGenomes(rng *rand.Rand, n, length int) [][]byte {
	gs := make([][]byte, n)
	for g := range gs {
		gs[g] = make([]byte, length)
		for j := range gs[g] {
			gs[g][j] = "ACGT"[rng.Intn(4)]
		}
	}
	return gs
}

// dirContents maps relative path → file bytes for every regular file under
// dir (the output byte-identity comparison).
func dirContents(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameDirBytes(t *testing.T, want, got string) {
	t.Helper()
	w, g := dirContents(t, want), dirContents(t, got)
	if len(w) != len(g) {
		t.Fatalf("output file counts differ: %d vs %d", len(w), len(g))
	}
	for rel, wb := range w {
		gb, ok := g[rel]
		if !ok {
			t.Fatalf("output %s missing from reload", rel)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("output %s differs between direct run and reload", rel)
		}
	}
}

// artifactMatrix is the parity grid: key width × task count × spill.
type artifactCase struct {
	name   string
	k, m   int
	tasks  int
	spill  bool
	passes int
	filter Filter
}

func artifactMatrix() []artifactCase {
	return []artifactCase{
		{name: "k11-P1", k: 11, m: 4, tasks: 1, passes: 1},
		{name: "k11-P2", k: 11, m: 4, tasks: 2, passes: 1},
		{name: "k11-P4", k: 11, m: 4, tasks: 4, passes: 1},
		{name: "k11-P2-spill", k: 11, m: 4, tasks: 2, spill: true, passes: 1},
		{name: "k11-P4-spill", k: 11, m: 4, tasks: 4, spill: true, passes: 1},
		{name: "k11-P2-2pass", k: 11, m: 4, tasks: 2, passes: 2},
		{name: "k35-P2", k: 35, m: 4, tasks: 2, passes: 1},
		{name: "k35-P2-spill", k: 35, m: 4, tasks: 2, spill: true, passes: 1},
		{name: "k11-P2-min2", k: 11, m: 4, tasks: 2, passes: 1, filter: Filter{Min: 2}},
		{name: "k11-P2-min3", k: 11, m: 4, tasks: 2, passes: 1, filter: Filter{Min: 3}},
	}
}

func (c artifactCase) apply(cfg *Config) {
	cfg.Tasks = c.tasks
	cfg.Threads = 2
	cfg.Passes = c.passes
	cfg.Filter = c.filter
	if c.spill {
		cfg.SpillBudgetBytes = MinSpillBudgetBytes
	}
}

// --- reload parity ---------------------------------------------------------

// TestArtifactReloadParity runs the pipeline with an artifact emit, reloads
// the artifact, and checks the reloaded result — labels bit-identical,
// derived fields equal, and the partitioned FASTQ output byte-identical.
func TestArtifactReloadParity(t *testing.T) {
	for _, c := range artifactMatrix() {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			opts := index.Options{K: c.k, M: c.m, ChunkSize: 1500}
			td := overlappingDataset(t, rng, opts, 4, 500, 160, 60)
			dir := t.TempDir()
			art := filepath.Join(dir, "run.mpa")

			cfg := Default(td.idx)
			c.apply(&cfg)
			cfg.ArtifactOut = art
			cfg.OutDir = filepath.Join(dir, "out-direct")
			direct, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			rcfg := Default(td.idx)
			c.apply(&rcfg)
			rcfg.ArtifactIn = art
			rcfg.OutDir = filepath.Join(dir, "out-reload")
			reload, err := Run(rcfg)
			if err != nil {
				t.Fatal(err)
			}

			if !slicesEqualU32(direct.Labels, reload.Labels) {
				t.Fatal("reloaded labels differ from the direct run's")
			}
			if direct.LargestRoot != reload.LargestRoot || direct.LargestSize != reload.LargestSize {
				t.Fatalf("largest component (%d,%d) vs (%d,%d)",
					direct.LargestRoot, direct.LargestSize, reload.LargestRoot, reload.LargestSize)
			}
			if direct.Components != reload.Components {
				t.Fatalf("components %d vs %d", direct.Components, reload.Components)
			}
			if direct.Tuples != reload.Tuples {
				t.Fatalf("tuples %d vs %d", direct.Tuples, reload.Tuples)
			}
			if !slicesEqualU64(direct.KmerFreqHist, reload.KmerFreqHist) {
				t.Fatal("frequency histograms differ")
			}
			assertSameDirBytes(t, cfg.OutDir, rcfg.OutDir)

			// The stored tuple stream must be sorted and hold exactly
			// Result.Tuples tuples.
			r, err := artifact.Open(art)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Tuples() != direct.Tuples {
				t.Fatalf("artifact holds %d tuples, run enumerated %d", r.Tuples(), direct.Tuples)
			}
			s, err := r.Kmers()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var n uint64
			var prevHi, prevLo uint64
			for {
				hi, lo, _, ok, err := s.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if n > 0 && (hi < prevHi || (hi == prevHi && lo < prevLo)) {
					t.Fatalf("tuple %d out of order", n)
				}
				prevHi, prevLo = hi, lo
				n++
			}
			if n != direct.Tuples {
				t.Fatalf("streamed %d tuples, want %d", n, direct.Tuples)
			}
		})
	}
}

func slicesEqualU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func slicesEqualU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArtifactReloadMismatch: a structurally valid artifact for the wrong
// index or filter is rejected with artifact.ErrMismatch, not used.
func TestArtifactReloadMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tdA := overlappingDataset(t, rng, smallOpts(), 2, 400, 60, 40)
	tdB := overlappingDataset(t, rng, smallOpts(), 2, 400, 60, 40)
	art := filepath.Join(t.TempDir(), "a.mpa")

	cfg := Default(tdA.idx)
	cfg.ArtifactOut = art
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	wrongIdx := Default(tdB.idx)
	wrongIdx.ArtifactIn = art
	if _, err := Run(wrongIdx); !errors.Is(err, artifact.ErrMismatch) {
		t.Fatalf("wrong index: err = %v, want ErrMismatch", err)
	}

	wrongFilter := Default(tdA.idx)
	wrongFilter.ArtifactIn = art
	wrongFilter.Filter = Filter{Min: 3}
	if _, err := Run(wrongFilter); !errors.Is(err, artifact.ErrMismatch) {
		t.Fatalf("wrong filter: err = %v, want ErrMismatch", err)
	}

	// Corrupt the file: the reload must fail with ErrBadArtifact.
	raw, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.mpa")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	badCfg := Default(tdA.idx)
	badCfg.ArtifactIn = bad
	if _, err := Run(badCfg); !errors.Is(err, artifact.ErrBadArtifact) {
		t.Fatalf("corrupt artifact: err = %v, want ErrBadArtifact", err)
	}
}

// --- incremental parity ----------------------------------------------------

// TestIncrementalParity proves incremental(base artifact + delta FASTQ) is
// label-isomorphic to full(base ∪ delta) across key widths, task counts,
// spill modes and filter bounds — and that a second delta chained off the
// merged artifact stays isomorphic too.
func TestIncrementalParity(t *testing.T) {
	for _, c := range artifactMatrix() {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			opts := index.Options{K: c.k, M: c.m, ChunkSize: 1500}
			genomes := makeGenomes(rng, 4, 500)
			dir := t.TempDir()

			basePath := filepath.Join(dir, "base.fastq")
			deltaPath := filepath.Join(dir, "delta.fastq")
			delta2Path := filepath.Join(dir, "delta2.fastq")
			writeFastqFile(t, basePath, genomeReads(rng, genomes, 120, 60))
			writeFastqFile(t, deltaPath, genomeReads(rng, genomes, 40, 60))
			writeFastqFile(t, delta2Path, genomeReads(rng, genomes, 25, 60))

			build := func(paths ...string) *index.Index {
				idx, err := index.Build(paths, opts)
				if err != nil {
					t.Fatal(err)
				}
				return idx
			}
			baseArt := filepath.Join(dir, "base.mpa")
			mergedArt := filepath.Join(dir, "merged.mpa")
			merged2Art := filepath.Join(dir, "merged2.mpa")

			// Base run with artifact emit.
			bcfg := Default(build(basePath))
			c.apply(&bcfg)
			bcfg.ArtifactOut = baseArt
			if _, err := Run(bcfg); err != nil {
				t.Fatal(err)
			}

			// Incremental: delta index + base artifact.
			icfg := Default(build(deltaPath))
			c.apply(&icfg)
			icfg.ArtifactIn = baseArt
			icfg.ArtifactDelta = true
			icfg.ArtifactOut = mergedArt
			inc, err := Run(icfg)
			if err != nil {
				t.Fatal(err)
			}

			// Full recompute over base ∪ delta (same file order, so the
			// same global read IDs as the incremental rebasing).
			fcfg := Default(build(basePath, deltaPath))
			c.apply(&fcfg)
			full, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}

			if inc.Reads != full.Reads {
				t.Fatalf("reads %d vs %d", inc.Reads, full.Reads)
			}
			assertSameLabels(t, canonLabels(full.Labels), inc.Labels)
			if inc.Tuples != full.Tuples {
				t.Fatalf("tuples %d vs %d", inc.Tuples, full.Tuples)
			}
			if !slicesEqualU64(inc.KmerFreqHist, full.KmerFreqHist) {
				t.Fatal("frequency histograms differ from full recompute")
			}
			if inc.LargestSize != full.LargestSize {
				t.Fatalf("largest size %d vs %d", inc.LargestSize, full.LargestSize)
			}

			// Chain a second delta off the merged artifact.
			i2cfg := Default(build(delta2Path))
			c.apply(&i2cfg)
			i2cfg.ArtifactIn = mergedArt
			i2cfg.ArtifactDelta = true
			i2cfg.ArtifactOut = merged2Art
			inc2, err := Run(i2cfg)
			if err != nil {
				t.Fatal(err)
			}
			f2cfg := Default(build(basePath, deltaPath, delta2Path))
			c.apply(&f2cfg)
			full2, err := Run(f2cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameLabels(t, canonLabels(full2.Labels), inc2.Labels)
			if inc2.Tuples != full2.Tuples {
				t.Fatalf("chained tuples %d vs %d", inc2.Tuples, full2.Tuples)
			}
		})
	}
}

// TestIncrementalOutput checks the delta-side FASTQ partitioning: the
// incremental run writes output for the delta reads only, grouped by the
// combined components.
func TestIncrementalOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	opts := smallOpts()
	genomes := makeGenomes(rng, 3, 400)
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.fastq")
	deltaPath := filepath.Join(dir, "delta.fastq")
	writeFastqFile(t, basePath, genomeReads(rng, genomes, 80, 50))
	deltaSeqs := genomeReads(rng, genomes, 30, 50)
	writeFastqFile(t, deltaPath, deltaSeqs)

	baseIdx, err := index.Build([]string{basePath}, opts)
	if err != nil {
		t.Fatal(err)
	}
	deltaIdx, err := index.Build([]string{deltaPath}, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseArt := filepath.Join(dir, "base.mpa")
	bcfg := Default(baseIdx)
	bcfg.Tasks = 2
	bcfg.ArtifactOut = baseArt
	if _, err := Run(bcfg); err != nil {
		t.Fatal(err)
	}

	icfg := Default(deltaIdx)
	icfg.Tasks = 2
	icfg.ArtifactIn = baseArt
	icfg.ArtifactDelta = true
	icfg.OutDir = filepath.Join(dir, "out")
	inc, err := Run(icfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.LCFiles) == 0 {
		t.Fatal("no output files")
	}
	// Every delta read appears in exactly one output group; records in the
	// LC files belong to the combined largest component.
	var lcRecords, otherRecords int
	for _, p := range inc.LCFiles {
		lcRecords += countFastqRecords(t, p)
	}
	for _, p := range inc.OtherFiles {
		otherRecords += countFastqRecords(t, p)
	}
	if lcRecords+otherRecords != len(deltaSeqs) {
		t.Fatalf("output holds %d+%d records, delta has %d reads",
			lcRecords, otherRecords, len(deltaSeqs))
	}
	deltaLabels := inc.Labels[len(inc.Labels)-len(deltaSeqs):]
	wantLC := 0
	for _, l := range deltaLabels {
		if l == inc.LargestRoot {
			wantLC++
		}
	}
	if lcRecords != wantLC {
		t.Fatalf("LC output holds %d records, %d delta reads are in the largest component",
			lcRecords, wantLC)
	}
}

func countFastqRecords(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := fastq.NewReader(f)
	n := 0
	for {
		_, err := r.Next()
		if err != nil {
			break
		}
		n++
	}
	return n
}

// --- validation and hashing ------------------------------------------------

func TestArtifactConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	td := genDataset(t, rng, smallOpts(), 1, 20, 40)
	base := Default(td.idx)

	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"delta-without-in", func(c *Config) { c.ArtifactDelta = true }, "ArtifactDelta"},
		{"delta-with-max-filter", func(c *Config) {
			c.ArtifactDelta = true
			c.ArtifactIn = "x.mpa"
			c.Filter = Filter{Min: 2, Max: 50}
		}, "ArtifactDelta"},
		{"reload-plus-out", func(c *Config) {
			c.ArtifactIn = "x.mpa"
			c.ArtifactOut = "y.mpa"
		}, "ArtifactOut"},
		{"out-in-missing-dir", func(c *Config) {
			c.ArtifactOut = filepath.Join("/nonexistent-dir-for-test", "y.mpa")
		}, "ArtifactOut"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("field = %s, want %s", ce.Field, tc.field)
			}
		})
	}
}

func TestArtifactHashSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	td := genDataset(t, rng, smallOpts(), 1, 20, 40)
	plain := Default(td.idx).CanonicalHash()

	// A reload and an artifact emit produce the same labels as the direct
	// run: same hash.
	reload := Default(td.idx)
	reload.ArtifactIn = "/some/base.mpa"
	if reload.CanonicalHash() != plain {
		t.Error("plain reload must hash like the direct run")
	}
	emit := Default(td.idx)
	emit.ArtifactOut = "/some/out.mpa"
	if emit.CanonicalHash() != plain {
		t.Error("artifact emit must hash like the direct run")
	}

	// Incremental runs compute a different result keyed on the base.
	inc := Default(td.idx)
	inc.ArtifactIn = "/some/base.mpa"
	inc.ArtifactDelta = true
	if inc.CanonicalHash() == plain {
		t.Error("incremental run must hash differently from the direct run")
	}
	inc2 := inc
	inc2.ArtifactIn = "/other/base.mpa"
	if inc2.CanonicalHash() == inc.CanonicalHash() {
		t.Error("different base artifacts must hash differently")
	}
}

// --- cancellation ----------------------------------------------------------

// armedCancelCtx cancels at the first Err poll after arm() is called.
type armedCancelCtx struct {
	armed atomic.Bool

	mu     sync.Mutex
	done   chan struct{}
	closed bool
}

func newArmedCancelCtx() *armedCancelCtx {
	return &armedCancelCtx{done: make(chan struct{})}
}

func (c *armedCancelCtx) arm() { c.armed.Store(true) }

func (c *armedCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *armedCancelCtx) Done() <-chan struct{}       { return c.done }
func (c *armedCancelCtx) Value(key any) any           { return nil }

func (c *armedCancelCtx) Err() error {
	if !c.armed.Load() {
		return nil
	}
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	c.mu.Unlock()
	return context.Canceled
}

// armOnPipelineDone is a slog.Handler that arms the context when the
// recursive delta run logs its completion — placing the cancellation
// deterministically inside the incremental merge loop, whose first ctx
// poll comes 8192 tuples in.
type armOnPipelineDone struct{ ctx *armedCancelCtx }

func (h *armOnPipelineDone) Enabled(context.Context, slog.Level) bool { return true }
func (h *armOnPipelineDone) Handle(_ context.Context, r slog.Record) error {
	if r.Message == "pipeline done" {
		h.ctx.arm()
	}
	return nil
}
func (h *armOnPipelineDone) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *armOnPipelineDone) WithGroup(string) slog.Handler      { return h }

// TestIncrementalCancelMidMerge cancels an incremental run between the
// delta sub-run and the end of the base/delta merge, then checks that no
// goroutines (merge segment readers' decode goroutines in particular) and
// no scratch files are left behind, and that no merged artifact appears.
// Run under -race this also shakes out unsynchronized shutdown paths.
func TestIncrementalCancelMidMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opts := smallOpts()
	genomes := makeGenomes(rng, 3, 500)
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.fastq")
	deltaPath := filepath.Join(dir, "delta.fastq")
	// Big enough that the merged stream crosses several 8192-tuple ctx
	// polls.
	writeFastqFile(t, basePath, genomeReads(rng, genomes, 400, 60))
	writeFastqFile(t, deltaPath, genomeReads(rng, genomes, 200, 60))

	baseIdx, err := index.Build([]string{basePath}, opts)
	if err != nil {
		t.Fatal(err)
	}
	deltaIdx, err := index.Build([]string{deltaPath}, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseArt := filepath.Join(dir, "base.mpa")
	bcfg := Default(baseIdx)
	bcfg.ArtifactOut = baseArt
	if _, err := Run(bcfg); err != nil {
		t.Fatal(err)
	}

	scratch := filepath.Join(dir, "scratch")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	baseGoroutines := runtime.NumGoroutine()

	ctx := newArmedCancelCtx()
	icfg := Default(deltaIdx)
	icfg.Tasks = 2
	icfg.ArtifactIn = baseArt
	icfg.ArtifactDelta = true
	icfg.ArtifactOut = filepath.Join(dir, "merged.mpa")
	icfg.SpillBudgetBytes = MinSpillBudgetBytes
	icfg.SpillDir = scratch
	icfg.Log = slog.New(&armOnPipelineDone{ctx: ctx})
	_, err = RunContext(ctx, icfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	waitGoroutines(t, baseGoroutines, 2, 5*time.Second)
	ents, err := os.ReadDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("scratch dir not empty after cancel: %v", ents)
	}
	if _, err := os.Stat(icfg.ArtifactOut); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("merged artifact must not exist after cancel (stat err = %v)", err)
	}
}

// TestArtifactEmitCancelLeavesNoParts cancels a run that is emitting an
// artifact and checks the part directory is removed.
func TestArtifactEmitCancelLeavesNoParts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	td := overlappingDataset(t, rng, smallOpts(), 3, 400, 200, 50)
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}

	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.ArtifactOut = filepath.Join(dir, "run.mpa")
	cfg.SpillBudgetBytes = MinSpillBudgetBytes
	cfg.SpillDir = scratch
	ctx := newChunkCancelCtx(8)
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ents, err := os.ReadDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("scratch dir not empty after cancel: %v", ents)
	}
	if _, err := os.Stat(cfg.ArtifactOut); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("artifact must not exist after cancel (stat err = %v)", err)
	}
}
