package core

import (
	"metaprep/internal/index"
	"metaprep/internal/par"
)

// plan is the static schedule derived from the index tables: which task and
// thread owns which FASTQ chunks, how the m-mer bin space is split into
// pass/task/thread key ranges, and — per pass and rank — every buffer count
// and offset the pipeline steps need to run without synchronization
// (§3.1–§3.4). Everything in a plan is derived deterministically from the
// index, so all tasks compute identical plans.
type plan struct {
	cfg Config
	idx *index.Index
	pt  *index.Partition

	// taskChunks[p] lists the chunk indices task p owns (a contiguous
	// block, so each task reads a contiguous region of the inputs).
	taskChunks [][]int
	// threadChunks[p][t] lists the chunks thread t of task p owns.
	threadChunks [][][]int

	// bufTuples[p] is the tuple capacity task p must allocate for each of
	// its two buffers (kmerOut and kmerIn): the maximum over passes of
	// tuples generated and tuples received, because kmerOut doubles as the
	// sorted output buffer (§3.4) and kmerIn as radix-sort scratch.
	// In spill mode only the generation term counts — received tuples land
	// in the bounded run builders instead of a kmerIn-sized buffer.
	bufTuples []uint64

	// spill is true when the out-of-core LocalSort path is active: a
	// SpillBudgetBytes cap is set and at least one (pass, rank) would
	// otherwise receive a partition larger than the cap. The decision is
	// global and uniform — every rank and pass takes the same path — so the
	// per-pass schedules of all tasks stay identical.
	spill bool
	// runTuples is the spill run size: the budget covers three circulating
	// run builders (two in the receive↔sort-write handoff ring plus the
	// radix scratch), so each holds budget/(3·bytesPerTuple) tuples.
	runTuples uint64
}

func newPlan(cfg Config) (*plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	idx := cfg.Index
	pt, err := index.NewPartition(idx.MerHist, cfg.Passes, cfg.Tasks, cfg.Threads)
	if err != nil {
		return nil, err
	}
	p := &plan{cfg: cfg, idx: idx, pt: pt}

	c := len(idx.Chunks)
	p.taskChunks = make([][]int, cfg.Tasks)
	p.threadChunks = make([][][]int, cfg.Tasks)
	for rank := 0; rank < cfg.Tasks; rank++ {
		lo, hi := par.Block(c, cfg.Tasks, rank)
		chunks := make([]int, 0, hi-lo)
		for ci := lo; ci < hi; ci++ {
			chunks = append(chunks, ci)
		}
		p.taskChunks[rank] = chunks
		p.threadChunks[rank] = make([][]int, cfg.Threads)
		for t := 0; t < cfg.Threads; t++ {
			tlo, thi := par.Block(len(chunks), cfg.Threads, t)
			p.threadChunks[rank][t] = chunks[tlo:thi]
		}
	}

	maxGen := make([]uint64, cfg.Tasks)
	maxRecv := make([]uint64, cfg.Tasks)
	var worstRecv uint64
	for rank := 0; rank < cfg.Tasks; rank++ {
		for s := 0; s < cfg.Passes; s++ {
			var gen uint64
			plo, phi := pt.PassRange(s)
			for _, ci := range p.taskChunks[rank] {
				gen += index.RangeCount(idx.Chunks[ci].Hist, plo, phi)
			}
			if gen > maxGen[rank] {
				maxGen[rank] = gen
			}
			tlo, thi := pt.TaskRange(s, rank)
			if recv := index.RangeCount64(idx.MerHist, tlo, thi); recv > maxRecv[rank] {
				maxRecv[rank] = recv
			}
		}
		if maxRecv[rank] > worstRecv {
			worstRecv = maxRecv[rank]
		}
	}
	if b := cfg.SpillBudgetBytes; b > 0 && worstRecv*p.bytesPerTuple() > uint64(b) {
		p.spill = true
		p.runTuples = uint64(b) / (3 * p.bytesPerTuple())
		if p.runTuples < 1 {
			p.runTuples = 1
		}
	}
	p.bufTuples = make([]uint64, cfg.Tasks)
	for rank := 0; rank < cfg.Tasks; rank++ {
		p.bufTuples[rank] = maxGen[rank]
		if !p.spill && maxRecv[rank] > maxGen[rank] {
			p.bufTuples[rank] = maxRecv[rank]
		}
	}
	return p, nil
}

// bytesPerTuple is the in-memory and on-wire tuple size: the paper's 12
// bytes for k ≤ 31, 20 for the 128-bit key path.
func (p *plan) bytesPerTuple() uint64 {
	if p.use64() {
		return 12
	}
	return 20
}

// spillRuns returns how many runs a pass with recvTotal received tuples
// spills.
func (p *plan) spillRuns(recvTotal uint64) int {
	if recvTotal == 0 {
		return 0
	}
	return int((recvTotal + p.runTuples - 1) / p.runTuples)
}

// spillBlockTuples sizes the encode blocks of a pass's spill file — the unit
// of merge read-ahead. During the merge every one of T threads holds up to
// two decoded blocks per run (one draining, one prefetching), so the block
// size is chosen to keep T·runs·2·block·bytesPerTuple within half the
// budget, clamped to [16, 4096] tuples and to the run size.
func (p *plan) spillBlockTuples(runs int) int {
	if runs < 1 {
		runs = 1
	}
	b := uint64(p.cfg.SpillBudgetBytes) /
		(4 * uint64(p.cfg.Threads) * uint64(runs) * p.bytesPerTuple())
	if b < 16 {
		b = 16
	}
	if b > 4096 {
		b = 4096
	}
	if b > p.runTuples {
		b = p.runTuples
	}
	return int(b)
}

// use64 reports whether the 64-bit k-mer path applies.
func (p *plan) use64() bool { return p.idx.Opts.Use64() }

// genLayout describes task rank's kmerOut buffer in pass s: tuples are
// grouped by destination task (so a destination's tuples ship as one
// message), and within each destination region by source thread (so each
// thread writes its own precomputed sub-region without synchronization,
// §3.2.2).
type genLayout struct {
	// dstOff[dst] / dstCnt[dst]: each destination region within kmerOut.
	dstOff, dstCnt []uint64
	// cursor[dst*T+t]: where thread t starts writing tuples bound for dst.
	cursor []uint64
	// total is the number of tuples task rank generates this pass.
	total uint64

	// Streaming-exchange chunk accounting (zero when ExchangeChunkTuples
	// is 0). Each destination region is cut into ⌈dstCnt/chunkTuples⌉
	// fixed-size chunks; chunkBase[dst] is the first flat chunk index of
	// dst's region, and chunkTotal the flat chunk count across all
	// destinations. Chunk c of dst covers tuples
	// [dstOff+c·chunkTuples, min(dstOff+(c+1)·chunkTuples, dstOff+dstCnt)).
	chunkTuples uint64
	chunkBase   []int
	chunkTotal  int
}

// chunksFor returns the number of exchange chunks in dst's send region.
func (l genLayout) chunksFor(dst int) int {
	if l.chunkTuples == 0 {
		return 0
	}
	return int((l.dstCnt[dst] + l.chunkTuples - 1) / l.chunkTuples)
}

func (p *plan) genLayout(s, rank int) genLayout {
	P, T := p.cfg.Tasks, p.cfg.Threads
	idx := p.idx
	// count[dst*T+t] = tuples thread t generates for destination dst.
	count := make([]uint64, P*T)
	for t := 0; t < T; t++ {
		for _, ci := range p.threadChunks[rank][t] {
			hist := idx.Chunks[ci].Hist
			for dst := 0; dst < P; dst++ {
				lo, hi := p.pt.TaskRange(s, dst)
				count[dst*T+t] += index.RangeCount(hist, lo, hi)
			}
		}
	}
	l := genLayout{
		dstOff: make([]uint64, P),
		dstCnt: make([]uint64, P),
		cursor: make([]uint64, P*T),
	}
	var off uint64
	for dst := 0; dst < P; dst++ {
		l.dstOff[dst] = off
		for t := 0; t < T; t++ {
			l.cursor[dst*T+t] = off
			off += count[dst*T+t]
			l.dstCnt[dst] += count[dst*T+t]
		}
	}
	l.total = off
	if c := p.cfg.ExchangeChunkTuples; c > 0 {
		l.chunkTuples = uint64(c)
		l.chunkBase = make([]int, P)
		for dst := 0; dst < P; dst++ {
			l.chunkBase[dst] = l.chunkTotal
			l.chunkTotal += l.chunksFor(dst)
		}
	}
	return l
}

// recvLayout describes task rank's kmerIn buffer in pass s: one region per
// source task, in rank order, sized from the source's chunk histograms
// (§3.3: "each task also calculates the number of tuples to be received
// from other tasks and the corresponding receive offsets in advance").
// Within a source region, tuples arrive ordered by the source's threads.
type recvLayout struct {
	srcOff, srcCnt []uint64
	// threadCnt[src*T+t] splits srcCnt by the source's thread t, needed to
	// locate scatter work regions for LocalSort.
	threadCnt []uint64
	total     uint64

	// chunkTuples mirrors genLayout's chunk accounting on the receive
	// side: source src ships ⌈srcCnt/chunkTuples⌉ chunks, chunk c landing
	// at srcOff[src]+c·chunkTuples. Both sides derive the counts from the
	// same index tables, so no control messages are needed — not even for
	// empty regions, which ship zero chunks.
	chunkTuples uint64
}

// chunksFrom returns the number of exchange chunks source src will send.
func (l recvLayout) chunksFrom(src int) int {
	if l.chunkTuples == 0 {
		return 0
	}
	return int((l.srcCnt[src] + l.chunkTuples - 1) / l.chunkTuples)
}

func (p *plan) recvLayout(s, rank int) recvLayout {
	P, T := p.cfg.Tasks, p.cfg.Threads
	lo, hi := p.pt.TaskRange(s, rank)
	l := recvLayout{
		srcOff:    make([]uint64, P),
		srcCnt:    make([]uint64, P),
		threadCnt: make([]uint64, P*T),
	}
	var off uint64
	for src := 0; src < P; src++ {
		l.srcOff[src] = off
		for t := 0; t < T; t++ {
			var cnt uint64
			for _, ci := range p.threadChunks[src][t] {
				cnt += index.RangeCount(p.idx.Chunks[ci].Hist, lo, hi)
			}
			l.threadCnt[src*T+t] = cnt
			l.srcCnt[src] += cnt
			off += cnt
		}
	}
	l.total = off
	l.chunkTuples = uint64(p.cfg.ExchangeChunkTuples)
	return l
}

// sortLayout describes the LocalSort range-partitioning of task rank's
// received tuples in pass s into T thread partitions (§3.4). The scatter's
// work units are the P×T (source task, source thread) regions of kmerIn;
// each (region, destination partition) pair gets an exclusive, precomputed
// slice of the output buffer, so T threads scatter concurrently with no
// synchronization.
type sortLayout struct {
	// partOff/partCnt: the T thread partitions of the sorted buffer.
	partOff, partCnt []uint64
	// partBinLo/partBinHi: each partition's m-mer bin range [lo, hi) — the
	// key range the partitioning has already fixed, which the key-range-
	// aware radix sort uses to skip passes over the pinned high bits.
	partBinLo, partBinHi []int
	// regionOff[r]: where region r (= src*T + srcThread) starts in kmerIn.
	regionOff []uint64
	// regionCnt[r]: tuples in region r.
	regionCnt []uint64
	// scatter[r*T+d]: write cursor for tuples of region r bound for
	// partition d.
	scatter []uint64
}

func (p *plan) sortLayout(s, rank int, rl recvLayout) sortLayout {
	P, T := p.cfg.Tasks, p.cfg.Threads
	idx := p.idx
	// Normally the scatter's work units are the P×T (source task, source
	// thread) sub-regions of kmerIn, because the precomputed-offset KmerGen
	// keeps each sender thread's tuples contiguous inside a message. The
	// DynamicOffsets ablation interleaves sender threads within a message,
	// so only whole source messages remain well-defined regions.
	perThread := !p.cfg.DynamicOffsets
	nr := P
	if perThread {
		nr = P * T
	}
	l := sortLayout{
		partOff:   make([]uint64, T),
		partCnt:   make([]uint64, T),
		partBinLo: make([]int, T),
		partBinHi: make([]int, T),
		regionOff: make([]uint64, nr),
		regionCnt: make([]uint64, nr),
		scatter:   make([]uint64, nr*T),
	}
	for d := 0; d < T; d++ {
		l.partBinLo[d], l.partBinHi[d] = p.pt.ThreadRange(s, rank, d)
	}
	// cnt[r*T+d] = tuples of region r that fall in thread partition d.
	cnt := make([]uint64, nr*T)
	for src := 0; src < P; src++ {
		for t := 0; t < T; t++ {
			r := src
			if perThread {
				r = src*T + t
			}
			for _, ci := range p.threadChunks[src][t] {
				hist := idx.Chunks[ci].Hist
				for d := 0; d < T; d++ {
					dlo, dhi := p.pt.ThreadRange(s, rank, d)
					cnt[r*T+d] += index.RangeCount(hist, dlo, dhi)
				}
			}
		}
	}
	// Region extents in kmerIn follow the receive layout.
	var off uint64
	for src := 0; src < P; src++ {
		for t := 0; t < T; t++ {
			r := src
			if perThread {
				r = src*T + t
			}
			l.regionOff[r] = off
			if perThread {
				l.regionCnt[r] = rl.threadCnt[src*T+t]
				off += rl.threadCnt[src*T+t]
			}
		}
		if !perThread {
			l.regionCnt[src] = rl.srcCnt[src]
			off += rl.srcCnt[src]
		}
	}
	// Partition extents and scatter cursors: partition-major, then region
	// order (matching the order regions are scanned).
	var pOff uint64
	for d := 0; d < T; d++ {
		l.partOff[d] = pOff
		for r := 0; r < nr; r++ {
			l.scatter[r*T+d] = pOff
			pOff += cnt[r*T+d]
			l.partCnt[d] += cnt[r*T+d]
		}
	}
	return l
}
