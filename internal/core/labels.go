package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// labels.go persists component label arrays so downstream tools can consume
// a partitioning without re-running the pipeline or rewriting FASTQ: the
// file maps every global read ID to its component root.

// labelsMagic identifies a serialized label array; the digit is the format
// version.
const labelsMagic = "MPREPLB1"

// SaveLabels writes a component label array to path atomically.
func SaveLabels(path string, labels []uint32) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	ok := func() error {
		if _, err := bw.WriteString(labelsMagic); err != nil {
			return err
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(labels)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var b [4]byte
		for _, l := range labels {
			binary.LittleEndian.PutUint32(b[:], l)
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
		return bw.Flush()
	}()
	if ok != nil {
		f.Close()
		os.Remove(tmp)
		return ok
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadLabels reads a label array written by SaveLabels.
func LoadLabels(path string) ([]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(labelsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading label magic: %w", err)
	}
	if string(magic) != labelsMagic {
		return nil, fmt.Errorf("core: %s is not a label file", path)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: truncated label header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > 1<<34 {
		return nil, fmt.Errorf("core: implausible label count %d", n)
	}
	labels := make([]uint32, n)
	buf := make([]byte, 4)
	for i := range labels {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("core: truncated labels at %d: %w", i, err)
		}
		labels[i] = binary.LittleEndian.Uint32(buf)
	}
	return labels, nil
}
