package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"metaprep/internal/extsort"
	"metaprep/internal/obsv"
	"metaprep/internal/par"
	"metaprep/internal/unionfind"
)

// spill.go implements the out-of-core LocalSort path (Config.
// SpillBudgetBytes): when a pass's received partition would exceed the
// budget, the exchange lands tuples into fixed-size run builders instead of
// a partition-sized kmerIn. Each full builder is handed to a spill worker
// that radix-sorts it in RAM (the §3.4 kernels, with the task's bin range
// pinning the high bits) and appends it to a per-(rank, pass) temp file as
// one sorted run, cut into T per-thread-bin segments. LocalCC then replaces
// the sorted-partition walk with T concurrent loser-tree merges — thread d
// merging segment d of every run — feeding the shared union–find as a
// stream. Results are bit-identical to the in-RAM path (TestSpillParity):
// union-by-index makes component roots independent of edge order, and the
// frequency spectrum and filter see exactly the same runs of equal keys.
//
// Memory: the budget covers three circulating run builders during the
// receive/sort/write phase (two in the handoff ring plus the radix
// scratch) and, during the merge, up to two decoded blocks per (thread,
// run) sized by plan.spillBlockTuples to fit in half the budget. Spill
// writes ride a write-behind double buffer (extsort.Writer); merge reads
// ride a per-segment read-ahead ring (extsort.SegReader) — the same
// overlap idiom as the KmerGen chunk prefetcher.

// spillJob is one filled run builder on its way to the spill worker.
type spillJob struct {
	buf *tupleBuf
	n   uint64
}

// spillState drives one (rank, pass)'s spill: the run file, the builder
// ring, the sort/write worker and the run directory for the merge phase.
type spillState struct {
	st *taskState
	s  int

	f    *os.File
	path string
	w    *extsort.Writer

	wide        bool
	compress    bool
	runTuples   uint64
	blockTuples int

	// kr pins the sort's key range to the task's bin range; thrCuts are the
	// bin boundaries where runs are cut into per-thread segments.
	kr      keyRange
	thrCuts []int
	k, m    int
	shift   uint

	// fill is the builder the receive path is appending to; two more
	// circulate through free (ready) and full (awaiting sort+write), and
	// scratch is the worker-owned radix ping-pong buffer.
	fill    *tupleBuf
	fillLen uint64
	free    chan *tupleBuf
	full    chan spillJob
	done    chan struct{}
	scratch *tupleBuf
	bufs    []*tupleBuf

	// infos accumulates one RunInfo per spilled run (worker-written, read
	// after done closes).
	infos []extsort.RunInfo
	err   error

	finished bool
}

// startSpill opens this (rank, pass)'s run file, acquires the builder ring
// and launches the spill worker. dir is the run-scoped temp directory the
// pipeline created (and removes on every exit path).
func (st *taskState) startSpill(s int, rl recvLayout, dir string) (*spillState, error) {
	pl := st.p
	cfg := pl.cfg
	runs := pl.spillRuns(rl.total)
	sp := &spillState{
		st: st, s: s,
		wide:        !pl.use64(),
		compress:    cfg.SpillCompress,
		runTuples:   pl.runTuples,
		blockTuples: pl.spillBlockTuples(runs),
		thrCuts:     pl.pt.ThreadCuts(s, st.rank),
		k:           pl.idx.Opts.K,
		m:           pl.idx.Opts.M,
		shift:       2 * uint(pl.idx.Opts.K-pl.idx.Opts.M),
		free:        make(chan *tupleBuf, 2),
		full:        make(chan spillJob, 2),
		done:        make(chan struct{}),
	}
	lo, hi := pl.pt.TaskRange(s, st.rank)
	sp.kr = keyRange{binLo: lo, binHi: hi, shift: sp.shift}

	sp.path = filepath.Join(dir, fmt.Sprintf("r%03d-p%03d.run", st.rank, s))
	f, err := os.Create(sp.path)
	if err != nil {
		return nil, err
	}
	sp.f = f
	w, err := extsort.NewWriter(f, sp.wide, sp.compress, sp.blockTuples)
	if err != nil {
		f.Close()
		os.Remove(sp.path)
		return nil, err
	}
	sp.w = w

	for i := 0; i < 3; i++ {
		sp.bufs = append(sp.bufs, cfg.acquireTupleBuf(sp.runTuples, sp.wide))
	}
	sp.fill, sp.scratch = sp.bufs[0], sp.bufs[2]
	sp.free <- sp.bufs[1]
	st.spillMemAdd(3 * int64(sp.runTuples) * int64(pl.bytesPerTuple()))

	go sp.worker()
	return sp, nil
}

// receive appends a received exchange message to the current run builder,
// rotating full builders to the spill worker. It replaces
// tupleBuf.receive on the spill path and is only ever called from one
// goroutine at a time (the bulk all-to-all callback or the streaming
// receiver).
func (sp *spillState) receive(m tupleMsg) uint64 {
	cnt := uint64(len(m.lo))
	var pos uint64
	for pos < cnt {
		n := sp.runTuples - sp.fillLen
		if rem := cnt - pos; rem < n {
			n = rem
		}
		b, at := sp.fill, sp.fillLen
		copy(b.lo[at:at+n], m.lo[pos:pos+n])
		copy(b.val[at:at+n], m.val[pos:pos+n])
		if b.hi != nil {
			copy(b.hi[at:at+n], m.hi[pos:pos+n])
		}
		sp.fillLen += n
		pos += n
		if sp.fillLen == sp.runTuples {
			sp.rotate()
		}
	}
	return cnt
}

// rotate hands the filled builder to the worker and takes a recycled one.
// Blocking on free is the backpressure that bounds receive memory: at most
// two builders are ever filled-but-unsorted.
func (sp *spillState) rotate() {
	sp.full <- spillJob{buf: sp.fill, n: sp.fillLen}
	sp.fill = <-sp.free
	sp.fillLen = 0
}

// worker sorts and writes each filled builder as one run. It never stops
// consuming: after an error it keeps draining (skipping the work) and
// returning builders so the receive path can never deadlock on a dead
// worker; the error surfaces at finish. Closing the writer here — after the
// channel drains — makes worker exit the single point where the file is
// known complete.
func (sp *spillState) worker() {
	defer close(sp.done)
	for job := range sp.full {
		if sp.err == nil {
			if err := sp.sortWrite(job); err != nil {
				sp.err = err
			}
		}
		sp.free <- job.buf
	}
	if err := sp.w.Close(); sp.err == nil {
		sp.err = err
	}
}

// sortWrite radix-sorts one builder in RAM and appends it as a sorted run,
// cut at the pass's thread-bin boundaries so the merge phase can hand each
// LocalCC thread an independently readable byte range. Equal keys never
// straddle a segment boundary: segments are bin ranges, and a key lives in
// exactly one bin.
func (sp *spillState) sortWrite(job spillJob) error {
	st := sp.st
	t0 := time.Now()
	n := job.n
	job.buf.sortRange(0, n, sp.kr, sp.scratch)

	T := len(sp.thrCuts) - 1
	cuts := make([]uint64, T+1)
	cuts[T] = n
	binOf := func(i int) int {
		if sp.wide {
			return binOf128(job.buf.hi[i], job.buf.lo[i], sp.k, sp.m)
		}
		return int(job.buf.lo[i] >> sp.shift)
	}
	for d := 1; d < T; d++ {
		bound := sp.thrCuts[d]
		cuts[d] = uint64(sort.Search(int(n), func(i int) bool { return binOf(i) >= bound }))
	}

	var hi []uint64
	if sp.wide {
		hi = job.buf.hi[:n]
	}
	info, err := sp.w.WriteRun(job.buf.lo[:n], hi, job.buf.val[:n], cuts)
	if err != nil {
		return err
	}
	sp.infos = append(sp.infos, info)
	if st.obs != nil {
		st.obs.RecordSpan(st.rank, obsv.TidSpill, "detail", "spill-run", t0, time.Since(t0),
			map[string]any{"run": len(sp.infos) - 1, "tuples": n})
	}
	return nil
}

// finish flushes the final partial run, joins the worker and reports the
// first spill error. Idempotent.
func (sp *spillState) finish() error {
	if !sp.finished {
		sp.finished = true
		if sp.fillLen > 0 {
			sp.rotate()
		}
		close(sp.full)
		<-sp.done
	}
	return sp.err
}

// releaseBufs returns the builder ring to the pool before the merge phase
// starts, so the sort-phase and merge-phase working sets never coexist and
// peak tuple memory stays within the budget. Idempotent.
func (sp *spillState) releaseBufs() {
	if sp.bufs == nil {
		return
	}
	for _, b := range sp.bufs {
		sp.st.p.cfg.releaseTupleBuf(b)
	}
	sp.bufs, sp.fill, sp.scratch = nil, nil, nil
	sp.st.spillMemAdd(-3 * int64(sp.runTuples) * int64(sp.st.p.bytesPerTuple()))
}

// cleanup releases every spill resource: joins the worker if an error path
// skipped finish, returns the builders, and closes and removes the run
// file. Deferred on every pass exit path, so no run files outlive their
// pass — cancellation and failure included.
func (sp *spillState) cleanup() {
	sp.finish()
	sp.releaseBufs()
	sp.f.Close()
	os.Remove(sp.path)
}

// runSpillPass is the out-of-core body of one pipeline pass: exchange into
// run builders, drain the spill, then stream the k-way merge into LocalCC.
func (st *taskState) runSpillPass(s int, gl genLayout, rl recvLayout, dir string) error {
	sp, err := st.startSpill(s, rl, dir)
	if err != nil {
		return err
	}
	defer sp.cleanup()
	st.spill = sp
	err = st.genExchange(s, gl, rl)
	st.spill = nil
	if err != nil {
		return err
	}
	if err := st.localSortSpill(sp); err != nil {
		return err
	}
	return st.localCCSpill(sp)
}

// localSortSpill is the spill path's LocalSort step: most of the sorting
// already ran on the spill worker, hidden behind the exchange; what remains
// — and what the step is charged — is the drain of the last run(s) and the
// write-behind flush.
func (st *taskState) localSortSpill(sp *spillState) error {
	t0 := time.Now()
	err := sp.finish()
	sp.releaseBufs()
	d := time.Since(t0)
	st.rep.Steps.LocalSort += d
	st.stepSpan("LocalSort", t0, d)
	if err != nil {
		return err
	}
	st.rep.SpillBytes += sp.w.BytesWritten()
	st.counter("extsort/bytes_spilled").Add(uint64(sp.w.BytesWritten()))
	st.counter("extsort/runs").Add(uint64(len(sp.infos)))
	return nil
}

// localCCSpill is the spill path's LocalCC: T concurrent loser-tree merges
// (thread d over segment d of every run) stream globally sorted tuples, so
// runs of equal keys are consumed exactly as the in-RAM forRuns walk would
// — frequency spectrum, filter and star edges included. When no frequency
// filter is active, edges feed union–find tuple by tuple without buffering
// a run; with a filter the current run's read IDs are buffered (runs are
// k-mer frequencies — tiny) until its length is known.
func (st *taskState) localCCSpill(sp *spillState) error {
	T := st.p.cfg.Threads
	filter := st.p.cfg.Filter
	// With no upper bound and a lower bound of ≤ 2, every run of length ≥ 2
	// passes the filter, so edges can stream ahead of the run's end.
	streaming := filter.Max == 0 && filter.Min <= 2

	t0 := time.Now()
	edgeCounts := make([]uint64, T)
	retries := make([][]unionfind.Edge, T)
	hists := make([][]uint64, T)
	errs := make([]error, T)
	runs := len(sp.infos)
	blockBytes := int64(runs) * 2 * int64(sp.blockTuples) * int64(st.p.bytesPerTuple())

	par.Run(T, func(d int) {
		hist := make([]uint64, freqHistSize)
		hists[d] = hist
		st.spillMemAdd(blockBytes)
		defer st.spillMemAdd(-blockBytes)

		rs := make([]*extsort.SegReader, runs)
		for i, info := range sp.infos {
			rs[i] = extsort.NewSegReader(sp.f, info.Segs[d], sp.wide, sp.compress, sp.blockTuples)
		}
		mg, err := extsort.NewMerger(rs)
		if err != nil {
			for _, r := range rs {
				r.Close()
			}
			errs[d] = err
			return
		}
		defer mg.Close()

		// With an artifact emit active, this thread tees every tuple it
		// streams out of the merge into its per-(pass,rank,thread) part
		// file — the spill-mode leg of the no-second-pass emit.
		var tee *partTee
		if st.emit != nil {
			tee, err = st.emit.newPartTee(sp.s, st.rank, d)
			if err != nil {
				errs[d] = err
				return
			}
			defer tee.discard()
		}

		m0 := time.Now()
		var retry []unionfind.Edge
		var streamed uint64
		var curHi, curLo uint64
		var f uint32
		var v0 uint32
		var vals []uint32 // buffered run reads (filtered mode only)
		endRun := func() {
			if f == 0 {
				return
			}
			if f < freqHistSize {
				hist[f]++
			} else {
				hist[freqHistSize-1]++
			}
			if !streaming && f >= 2 && filter.Keep(f) {
				for _, vi := range vals[1:] {
					edgeCounts[d]++
					if st.dsu.Connect(v0, vi) {
						retry = append(retry, unionfind.Edge{U: v0, V: vi})
					}
				}
			}
		}
		for {
			hi, lo, val, ok, err := mg.Next()
			if err != nil {
				errs[d] = err
				return
			}
			if !ok {
				break
			}
			if tee != nil {
				tee.add(hi, lo, val)
			}
			streamed++
			if streamed&8191 == 0 {
				if err := st.ctx.Err(); err != nil {
					errs[d] = err
					return
				}
			}
			if f > 0 && hi == curHi && lo == curLo {
				f++
				if streaming {
					// Same k-mer as the last tuple: one more star edge,
					// straight into the DSU.
					edgeCounts[d]++
					if st.dsu.Connect(v0, val) {
						retry = append(retry, unionfind.Edge{U: v0, V: val})
					}
				} else {
					vals = append(vals, val)
				}
				continue
			}
			endRun()
			curHi, curLo, v0, f = hi, lo, val, 1
			if !streaming {
				vals = append(vals[:0], val)
			}
		}
		endRun()
		if tee != nil {
			if err := tee.close(); err != nil {
				errs[d] = err
				return
			}
		}
		retries[d] = retry
		if st.obs != nil {
			st.obs.RecordSpan(st.rank, obsv.TidWorker+d, "detail", "spill-merge", m0, time.Since(m0),
				map[string]any{"runs": runs, "tuples": streamed})
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	st.ccFinish(t0, edgeCounts, retries, hists)
	return nil
}
