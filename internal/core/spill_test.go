package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/obsv"
)

// spillDataset generates a dataset large enough that a per-(rank, pass)
// received partition exceeds MinSpillBudgetBytes for every configuration
// the parity matrix uses — otherwise the budget would never trigger and the
// tests would silently exercise the in-RAM path.
func spillDataset(t testing.TB, seed int64, opts index.Options) *testData {
	rng := rand.New(rand.NewSource(seed))
	return overlappingDataset(t, rng, opts, 4, 600, 1500, 50)
}

// requireSpill asserts the plan actually chose the out-of-core path.
func requireSpill(t *testing.T, cfg Config) {
	t.Helper()
	pl, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.spill {
		t.Fatalf("SpillBudgetBytes=%d did not trigger spilling — dataset too small for the test to mean anything", cfg.SpillBudgetBytes)
	}
}

func sameFreqHist(t *testing.T, want, got []uint64) {
	t.Helper()
	for f := range want {
		if want[f] != got[f] {
			t.Fatalf("KmerFreqHist[%d] = %d, want %d", f, got[f], want[f])
		}
	}
}

// TestSpillParity pins the tentpole guarantee: the out-of-core path is
// bit-identical to the in-RAM path — labels, edge counts and the frequency
// spectrum — across task counts, passes, compression and both exchange
// schedules.
func TestSpillParity(t *testing.T) {
	td := spillDataset(t, 91, smallOpts())
	want := naiveLabels(td, 11, false, Filter{})

	base := Default(td.idx)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLabels(t, want, ref.Labels)

	cases := []struct {
		name     string
		tasks    int
		threads  int
		passes   int
		compress bool
		stream   int // ExchangeChunkTuples
	}{
		{"P1_T2_S1", 1, 2, 1, false, 0},
		{"P1_T2_S1_compress", 1, 2, 1, true, 0},
		{"P3_T2_S1", 3, 2, 1, false, 0},
		{"P3_T2_S2", 3, 2, 2, false, 0},
		{"P3_T2_S2_compress", 3, 2, 2, true, 0},
		{"P2_T3_S1_stream", 2, 3, 1, false, 2048},
		{"P2_T2_S2_stream_compress", 2, 2, 2, true, 2048},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default(td.idx)
			cfg.Tasks = c.tasks
			cfg.Threads = c.threads
			cfg.Passes = c.passes
			cfg.SpillBudgetBytes = MinSpillBudgetBytes
			cfg.SpillCompress = c.compress
			cfg.ExchangeChunkTuples = c.stream
			requireSpill(t, cfg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameLabels(t, want, res.Labels)
			if res.Tuples != ref.Tuples {
				t.Errorf("Tuples = %d, want %d", res.Tuples, ref.Tuples)
			}
			if res.Edges != ref.Edges {
				t.Errorf("Edges = %d, want %d", res.Edges, ref.Edges)
			}
			if res.Components != ref.Components {
				t.Errorf("Components = %d, want %d", res.Components, ref.Components)
			}
			sameFreqHist(t, ref.KmerFreqHist, res.KmerFreqHist)
		})
	}
}

// TestSpillParity128 covers the 128-bit key path (k > 31): 20-byte tuples,
// the two-word loser-tree comparisons and the wide run codec.
func TestSpillParity128(t *testing.T) {
	td := spillDataset(t, 92, index.Options{K: 35, M: 4, ChunkSize: 2000})
	want := naiveLabels(td, 35, false, Filter{})
	for _, passes := range []int{1, 2} {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Passes = passes
		cfg.SpillBudgetBytes = MinSpillBudgetBytes
		requireSpill(t, cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("S=%d: %v", passes, err)
		}
		assertSameLabels(t, want, res.Labels)
	}
}

// TestSpillParityFiltered exercises the buffered-run merge consumer (a
// frequency filter makes edge emission wait for the run's end) and checks
// the partitioned FASTQ output is byte-identical to the in-RAM path's.
func TestSpillParityFiltered(t *testing.T) {
	td := spillDataset(t, 93, smallOpts())
	filter := Filter{Min: 2, Max: 200}

	run := func(budget int64) *Result {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Filter = filter
		cfg.OutDir = t.TempDir()
		cfg.SpillBudgetBytes = budget
		if budget > 0 {
			requireSpill(t, cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	res := run(MinSpillBudgetBytes)

	assertSameLabels(t, canonLabels(ref.Labels), res.Labels)
	sameFreqHist(t, ref.KmerFreqHist, res.KmerFreqHist)
	if res.Edges != ref.Edges {
		t.Errorf("Edges = %d, want %d", res.Edges, ref.Edges)
	}
	catBytes := func(paths []string) []byte {
		var buf bytes.Buffer
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(catBytes(ref.LCFiles), catBytes(res.LCFiles)) {
		t.Errorf("largest-component output differs between in-RAM and spill paths")
	}
	if !bytes.Equal(catBytes(ref.OtherFiles), catBytes(res.OtherFiles)) {
		t.Errorf("remainder output differs between in-RAM and spill paths")
	}
}

// TestSpillBudgetCompliance pins the acceptance criterion: with a budget
// about an eighth of the partition's tuple bytes, the run completes, spills
// at least 4 runs, and the measured peak spill tuple memory stays under the
// budget.
func TestSpillBudgetCompliance(t *testing.T) {
	td := spillDataset(t, 94, smallOpts())
	obs := obsv.New()
	cfg := Default(td.idx)
	cfg.Threads = 2
	cfg.SpillBudgetBytes = MinSpillBudgetBytes
	cfg.Obs = obs
	requireSpill(t, cfg)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	peak := obs.Counter(0, "extsort/peak_tuple_bytes").Value()
	if peak == 0 {
		t.Fatalf("extsort/peak_tuple_bytes was never recorded")
	}
	if peak > uint64(cfg.SpillBudgetBytes) {
		t.Errorf("peak spill tuple memory %d exceeds budget %d", peak, cfg.SpillBudgetBytes)
	}
	if runs := obs.Counter(0, "extsort/runs").Value(); runs < 4 {
		t.Errorf("extsort/runs = %d, want >= 4", runs)
	}
	if spilled := obs.Counter(0, "extsort/bytes_spilled").Value(); spilled == 0 {
		t.Errorf("extsort/bytes_spilled = 0")
	}
}

// TestSpillCompressShrinksSpill checks the delta/varint codec actually
// reduces spill volume on sorted keys.
func TestSpillCompressShrinksSpill(t *testing.T) {
	td := spillDataset(t, 95, smallOpts())
	spilled := func(compress bool) uint64 {
		obs := obsv.New()
		cfg := Default(td.idx)
		cfg.SpillBudgetBytes = MinSpillBudgetBytes
		cfg.SpillCompress = compress
		cfg.Obs = obs
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return obs.Counter(0, "extsort/bytes_spilled").Value()
	}
	raw, comp := spilled(false), spilled(true)
	if comp >= raw {
		t.Errorf("compressed spill %d >= raw spill %d", comp, raw)
	}
}

// TestSpillCancelLeavesNoRunFiles cancels spilling runs at several poll
// depths — landing in the exchange, the spill drain and the k-way merge —
// and checks that no run files survive in SpillDir, no partial result
// escapes, and no goroutine (spill worker, segment readers, rank bodies)
// leaks. Run under -race this shakes out the shutdown ordering between the
// merge readers' stop channels and the pass's deferred cleanup.
func TestSpillCancelLeavesNoRunFiles(t *testing.T) {
	td := spillDataset(t, 96, smallOpts())
	spillDir := t.TempDir()
	chunks := len(td.idx.Chunks)

	base := runtime.NumGoroutine()
	for _, limit := range []int{3, chunks/2 + 2, chunks + 10} {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Passes = 2
		cfg.SpillBudgetBytes = MinSpillBudgetBytes
		cfg.SpillDir = spillDir
		ctx := newChunkCancelCtx(limit)
		res, err := RunContext(ctx, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("limit=%d: err = %v, want context.Canceled", limit, err)
		}
		if res != nil {
			t.Fatalf("limit=%d: partial result escaped cancellation", limit)
		}
		ents, err := os.ReadDir(spillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			var names []string
			for _, e := range ents {
				names = append(names, e.Name())
			}
			t.Fatalf("limit=%d: spill dir not empty after cancel: %v", limit, names)
		}
	}
	waitGoroutines(t, base, 2, 5*time.Second)
}

// TestSpillNotTriggeredUnderBudget: a budget at least as large as the worst
// received partition keeps the plan on the in-RAM path.
func TestSpillNotTriggeredUnderBudget(t *testing.T) {
	td := spillDataset(t, 97, smallOpts())
	cfg := Default(td.idx)
	cfg.SpillBudgetBytes = 1 << 30
	pl, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.spill {
		t.Fatalf("1 GiB budget triggered spilling on a toy dataset")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples == 0 {
		t.Fatalf("run produced no tuples")
	}
}

// TestSpillConfigValidation covers the typed errors for the out-of-core
// knobs: budget bounds, spill-dir existence/writability, and the
// compression × 128-bit-keys exclusion.
func TestSpillConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	td := genDataset(t, rng, smallOpts(), 1, 10, 30)
	tdWide := genDataset(t, rng, index.Options{K: 35, M: 4, ChunkSize: 2000}, 1, 10, 60)

	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative budget",
			Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1, SpillBudgetBytes: -1},
			"SpillBudgetBytes"},
		{"budget below minimum",
			Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1, SpillBudgetBytes: MinSpillBudgetBytes - 1},
			"SpillBudgetBytes"},
		{"compress without budget",
			Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1, SpillCompress: true},
			"SpillCompress"},
		{"compress with 128-bit keys",
			Config{Index: tdWide.idx, Tasks: 1, Threads: 1, Passes: 1,
				SpillBudgetBytes: MinSpillBudgetBytes, SpillCompress: true},
			"SpillCompress"},
		{"dir without budget",
			Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1, SpillDir: os.TempDir()},
			"SpillDir"},
		{"dir does not exist",
			Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1,
				SpillBudgetBytes: MinSpillBudgetBytes, SpillDir: "/nonexistent/metaprep-spill"},
			"SpillDir"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", c.name)
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("error does not wrap ErrInvalidConfig: %v", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *ConfigError: %v", err)
			}
			if ce.Field != c.field {
				t.Errorf("Field = %q, want %q (%v)", ce.Field, c.field, err)
			}
		})
	}

	// A regular file is not a usable spill dir.
	f := td.paths[0]
	cfg := Config{Index: td.idx, Tasks: 1, Threads: 1, Passes: 1,
		SpillBudgetBytes: MinSpillBudgetBytes, SpillDir: f}
	var ce *ConfigError
	if err := cfg.Validate(); !errors.As(err, &ce) || ce.Field != "SpillDir" {
		t.Errorf("file-as-SpillDir: err = %v, want SpillDir ConfigError", err)
	}
}
