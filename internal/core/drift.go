package core

import (
	"fmt"
	"time"

	"metaprep/internal/model"
)

// drift.go feeds each finished run back into the §3.7 performance model:
// the run's actual workload (from the index and the measured component
// structure) and cluster shape (from the Config) go into model.Predict,
// and the prediction is reconciled against the measured step times and
// byte volumes. The resulting report rides Result.Drift into the CLI
// metrics output, the job result API, the /metrics drift gauges and the
// JSONL perf trajectory — continuous validation that the model still
// describes the machine (ROADMAP item 1's predicted-vs-measured gate).

// driftCalibration resolves Config.DriftCal. ok=false means reconciliation
// is disabled.
func driftCalibration(name string) (model.Calibration, bool, error) {
	switch name {
	case "", "edison":
		return model.Edison(), true, nil
	case "ganga":
		return model.Ganga(), true, nil
	case "off":
		return model.Calibration{}, false, nil
	default:
		return model.Calibration{}, false,
			fmt.Errorf("unknown calibration %q (edison, ganga, or off)", name)
	}
}

// modelCluster maps the run configuration onto the model's cluster shape.
func (c Config) modelCluster() model.Cluster {
	m := model.Cluster{
		P:                c.Tasks,
		T:                c.Threads,
		S:                c.Passes,
		ChunkTuples:      c.ExchangeChunkTuples,
		SparseDeltaMerge: c.SparseDeltaMerge,
		StarBroadcast:    c.StarBroadcast,
		OverlapOutput:    c.OverlapOutput,
		SpillBudgetBytes: c.SpillBudgetBytes,
		SpillCompress:    c.SpillCompress,
	}
	if c.Prefilter.Enabled() {
		m.PrefilterBits = c.Prefilter.BitsPerKmer
		m.PrefilterMinCount = c.Prefilter.minCount()
	}
	return m
}

// toModelSteps converts measured StepTimes into the model's aligned Steps.
func toModelSteps(s StepTimes) model.Steps {
	return model.Steps{
		KmerGenIO:   s.KmerGenIO,
		KmerGen:     s.KmerGen,
		KmerGenComm: s.KmerGenComm,
		LocalSort:   s.LocalSort,
		LocalCC:     s.LocalCC,
		MergeComm:   s.MergeComm,
		MergeCC:     s.MergeCC,
		CCIO:        s.CCIO,
	}
}

// reconcileDrift attaches the model reconciliation to a finished run:
// Result.Drift gets the full per-step report, and each TaskReport gets its
// own total measured/predicted ratio (the load-imbalance view — one slow
// task drifts alone). nonSingletonFrac is the measured fraction of reads
// in components of size ≥ 2, the f the merge model depends on.
func reconcileDrift(cfg Config, res *Result, nonSingletonFrac float64) {
	cal, on, err := driftCalibration(cfg.DriftCal)
	if err != nil || !on {
		return
	}
	w := model.FromIndex(cfg.Index)
	w.NonSingletonFrac = nonSingletonFrac
	if res.Edges > 0 {
		w.Edges = int64(res.Edges)
	}
	if cfg.Prefilter.Enabled() && cfg.Index.TotalKmers > 0 {
		// Back out the measured droppable mass from the kept tuple count, so
		// the prediction reconciles against what this run actually shipped
		// (res.Tuples counts post-gate tuples; the index counts all windows).
		w.SingletonKmerFrac = 1 - float64(res.Tuples)/float64(cfg.Index.TotalKmers)
	}
	c := cfg.modelCluster()
	var wire, spill int64
	for _, rep := range res.PerTask {
		wire += rep.BytesSent
		spill += rep.SpillBytes
	}
	r := model.Reconcile(cal, w, c, model.Measured{
		Steps:      toModelSteps(res.Steps),
		WireBytes:  wire,
		SpillBytes: spill,
	})
	res.Drift = &r
	// Per-task ratio against the same (per-task uniform) prediction, with
	// the same ε-smoothing so it is always finite.
	const eps = time.Millisecond
	pred := r.TotalPredicted
	for i := range res.PerTask {
		res.PerTask[i].DriftRatio =
			float64(res.PerTask[i].Steps.Total()+eps) / float64(pred+eps)
	}
}
