package core

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/index"
	"metaprep/internal/kmer"
	"metaprep/internal/obsv"
	"metaprep/internal/par"
	"metaprep/internal/sketch"
)

// kmergen.go implements the KmerGen step (§3.2): each thread reads its
// FASTQ chunks and enumerates (canonical k-mer, read ID) tuples for the
// current pass directly into its precomputed sub-regions of the task's
// kmerOut buffer — no locks, no atomics (unless the DynamicOffsets ablation
// is enabled).
//
// Chunk input is overlapped with enumeration: each thread owns a small ring
// of chunk buffers and an asynchronous reader goroutine that fills buffer
// i+1 while the thread parses buffer i (depth controlled by
// Config.PrefetchChunks, ablated by Config.NoPrefetch). Records are parsed
// in place by fastq.ChunkScanner — ID/Seq/Qual are sub-slices of the
// resident chunk buffer, so the hot loop performs no per-record copies.
// KmerGen-I/O therefore accounts only the *non-overlapped* read time: the
// wait for a chunk that the prefetcher has not finished yet (the serial
// ablation path still charges full read time).

// kmerGen runs one pass of tuple enumeration on this task. On return,
// kmerOut holds gl.total tuples grouped by destination task.
func (st *taskState) kmerGen(s int, gl genLayout) error {
	cfg := st.p.cfg
	T := cfg.Threads
	passLo, passHi := st.p.pt.PassRange(s)

	// owner[bin-passLo] is the destination task of each bin in this pass's
	// range — a flat lookup so the per-k-mer cost is one array read rather
	// than a binary search.
	owner := make([]uint16, passHi-passLo)
	cuts := st.p.pt.TaskCuts(s)
	for dst := 0; dst < cfg.Tasks; dst++ {
		for b := cuts[dst]; b < cuts[dst+1]; b++ {
			owner[b-passLo] = uint16(dst)
		}
	}

	// The DynamicOffsets ablation replaces per-thread cursors with one
	// shared atomic cursor per destination region.
	var sharedCur []uint64
	if cfg.DynamicOffsets {
		sharedCur = make([]uint64, cfg.Tasks)
		copy(sharedCur, gl.dstOff)
	}

	if st.keep != nil {
		// Prefiltered passes fill only a prefix of each (dst, thread)
		// sub-region; the end cursors land here for the compaction and the
		// kept-count accounting below.
		st.genKept = make([]uint64, cfg.Tasks*T)
	}

	ioTimes := make([]time.Duration, T)
	genTimes := make([]time.Duration, T)
	errs := make([]error, T)
	phaseStart := time.Now()
	par.Run(T, func(t int) {
		errs[t] = st.kmerGenThread(s, t, gl, owner, passLo, passHi, sharedCur,
			&ioTimes[t], &genTimes[t])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// The step charge is the critical-path (max-over-threads) time, exactly
	// what the step spans report: I/O first, then enumeration, chained so the
	// two spans tile the step track without overlapping.
	ioDur, genDur := maxOfDur(ioTimes), maxOfDur(genTimes)
	st.rep.Steps.KmerGenIO += ioDur
	st.rep.Steps.KmerGen += genDur
	kept := gl.total
	if st.keep != nil {
		kept = 0
		for dst := 0; dst < cfg.Tasks; dst++ {
			for t := 0; t < T; t++ {
				kept += st.genKept[dst*T+t] - gl.cursor[dst*T+t]
			}
		}
		st.counter("prefilter/tuples_saved").Add(gl.total - kept)
	}
	st.rep.Tuples += kept
	st.stepSpan("KmerGen-I/O", phaseStart, ioDur)
	st.stepSpan("KmerGen", phaseStart.Add(ioDur), genDur)
	st.counter("kmergen/kmers").Add(kept)
	return nil
}

func (st *taskState) kmerGenThread(s, t int, gl genLayout, owner []uint16,
	passLo, passHi int, sharedCur []uint64, ioTime, genTime *time.Duration) error {

	cfg := st.p.cfg
	idx := st.p.idx
	T := cfg.Threads
	k, m := idx.Opts.K, idx.Opts.M
	use64 := st.p.use64()

	// Per-thread write cursors, one per destination task, with the hard
	// bound of each exclusive sub-region. If the input changed since
	// IndexCreate the enumeration can produce more tuples than the index
	// promised; the bound stops the overflow from stomping another
	// thread's region and turns it into a clean error below.
	cur := make([]uint64, cfg.Tasks)
	lim := make([]uint64, cfg.Tasks)
	for dst := range cur {
		cur[dst] = gl.cursor[dst*T+t]
		if t+1 < T {
			lim[dst] = gl.cursor[dst*T+t+1]
		} else {
			lim[dst] = gl.dstOff[dst] + gl.dstCnt[dst]
		}
	}
	overflow := false
	emit := func(bin int, hi, lo uint64, val uint32) {
		dst := int(owner[bin-passLo])
		var i uint64
		if sharedCur != nil {
			i = atomic.AddUint64(&sharedCur[dst], 1) - 1
			if i >= gl.dstOff[dst]+gl.dstCnt[dst] {
				overflow = true
				return
			}
		} else {
			i = cur[dst]
			if i >= lim[dst] {
				overflow = true
				return
			}
			cur[dst]++
		}
		st.out.set(i, hi, lo, val)
	}
	if tr := st.pfTracker; tr != nil {
		// Prefiltered streaming exchange: each thread publishes its kept
		// ranges at chunk-size boundaries and, on return, a last-flagged
		// final per destination (pub is sized so neither ever blocks). The
		// exact path's fill-count tracker cannot be used — under filtering
		// a chunk's planned fill count is never reached.
		mark := make([]uint64, cfg.Tasks)
		copy(mark, cur)
		emit = func(bin int, hi, lo uint64, val uint32) {
			dst := int(owner[bin-passLo])
			i := cur[dst]
			if i >= lim[dst] {
				overflow = true
				return
			}
			st.out.set(i, hi, lo, val)
			i++
			cur[dst] = i
			if i-mark[dst] == tr.chunkTuples {
				tr.pub <- pfChunk{dst: dst, off: mark[dst], cnt: tr.chunkTuples}
				mark[dst] = i
			}
		}
		defer func() {
			for dst := 0; dst < cfg.Tasks; dst++ {
				tr.pub <- pfChunk{dst: dst, off: mark[dst], cnt: cur[dst] - mark[dst], last: true}
			}
		}()
	}
	if tr := st.exchTracker; tr != nil {
		// Streaming exchange: track chunk fills. Each thread flushes its
		// contribution [mark, cur) to the tracker at every chunk boundary
		// inside its sub-region, and at the sub-region's end (bound is
		// clamped to lim — a sub-region ending mid-chunk flushes a partial
		// contribution and the next thread completes the chunk). The hot
		// path gains one predictable compare per tuple; the tracker's
		// atomic is touched once per contribution, not per tuple.
		mark := make([]uint64, cfg.Tasks)
		bound := make([]uint64, cfg.Tasks)
		copy(mark, cur)
		for dst := range bound {
			bound[dst] = tr.nextBound(dst, cur[dst], lim[dst])
		}
		emit = func(bin int, hi, lo uint64, val uint32) {
			dst := int(owner[bin-passLo])
			i := cur[dst]
			if i >= lim[dst] {
				overflow = true
				return
			}
			st.out.set(i, hi, lo, val)
			i++
			cur[dst] = i
			if i == bound[dst] {
				tr.add(dst, mark[dst], i)
				mark[dst] = i
				bound[dst] = tr.nextBound(dst, i, lim[dst])
			}
		}
	}
	if keep := st.keep; keep != nil {
		// Prefilter gate, wrapped around whichever emit variant applies: a
		// k-mer outside the global keep set generates no tuple — it never
		// crosses the wire, enters LocalSort, or spills. One blocked-Bloom
		// probe (a single cache line) per enumerated k-mer.
		write := emit
		emit = func(bin int, hi, lo uint64, val uint32) {
			h1, h2 := sketch.Hash(hi, lo)
			if !keep.Contains(h1, h2) {
				return
			}
			write(bin, hi, lo, val)
		}
	}

	var laneBuf []kmer.Kmer64
	var scanner fastq.ChunkScanner
	obs := st.obs
	tid := obsv.TidWorker + t
	var cBytes, cRecords, cChunks *obsv.Counter
	if obs != nil {
		cBytes = st.counter("kmergen/bytes_read")
		cRecords = st.counter("kmergen/records")
		cChunks = st.counter("kmergen/chunks")
	}
	fetch := newChunkFetcher(st.p.threadChunks[st.rank][t], idx, st.files, cfg.prefetchDepth(),
		obs, st.rank, obsv.TidPrefetch+t)
	defer fetch.close()
	for {
		// Cancellation boundary: one check per chunk keeps a cancelled run's
		// response time bounded by a single chunk's enumeration, without
		// touching the per-record hot loop.
		if err := st.ctx.Err(); err != nil {
			return err
		}
		// KmerGen-I/O: obtain the next chunk. With the prefetcher running,
		// only the time spent *waiting* on an unfinished read is exposed
		// I/O; the serial ablation path charges the whole ReadAt here.
		t0 := time.Now()
		ci, buf, err := fetch.next()
		wait := time.Since(t0)
		*ioTime += wait
		if err != nil {
			return err
		}
		if buf == nil {
			break // all chunks consumed
		}
		obs.RecordSpan(st.rank, tid, "detail", "chunk-wait", t0, wait, nil)
		c := &idx.Chunks[ci]
		cBytes.Add(uint64(len(buf)))
		cRecords.Add(uint64(c.Records))
		cChunks.Add(1)

		// KmerGen: parse records in place and enumerate tuples.
		t0 = time.Now()
		scanner.Reset(buf)
		for n := int32(0); n < c.Records; n++ {
			rec, err := scanner.Next()
			if err != nil {
				return fmt.Errorf("core: chunk %d record %d: %w", ci, n, err)
			}
			readID := idx.ReadIDOf(c, n)
			val := readID
			if cfg.CCOpt && s > 0 {
				// §3.5.1: later passes enumerate the read's current
				// component ID, concentrating LocalCC's random accesses on
				// component roots.
				val = st.dsu.Find(readID)
			}
			if use64 {
				if cfg.NoVectorKmerGen {
					kmer.ForEach64(rec.Seq, k, func(_ int, km kmer.Kmer64) {
						bin := int(kmer.Prefix64(km, k, m))
						if bin >= passLo && bin < passHi {
							emit(bin, 0, uint64(km), val)
						}
					})
				} else {
					laneBuf = kmer.AppendCanonical64(laneBuf[:0], rec.Seq, k)
					for _, km := range laneBuf {
						bin := int(kmer.Prefix64(km, k, m))
						if bin >= passLo && bin < passHi {
							emit(bin, 0, uint64(km), val)
						}
					}
				}
			} else {
				kmer.ForEach128(rec.Seq, k, func(_ int, km kmer.Kmer128) {
					bin := int(kmer.Prefix128(km, k, m))
					if bin >= passLo && bin < passHi {
						emit(bin, km.Hi, km.Lo, val)
					}
				})
			}
		}
		parse := time.Since(t0)
		*genTime += parse
		obs.RecordSpan(st.rank, tid, "detail", "chunk-parse", t0, parse, nil)
		fetch.release(buf)
	}

	// The index promised exact counts; verify this thread filled its
	// sub-regions precisely (a mismatch, like an overflow above, means the
	// FASTQ changed since IndexCreate). Under the prefilter only the upper
	// bound holds — dropped tuples leave the sub-regions part-filled — so
	// the end cursors are recorded instead of checked.
	if overflow {
		return fmt.Errorf("core: task %d thread %d produced more tuples than the index predicts — input changed since IndexCreate?",
			st.rank, t)
	}
	if st.keep != nil {
		for dst := 0; dst < cfg.Tasks; dst++ {
			st.genKept[dst*T+t] = cur[dst]
		}
	} else if sharedCur == nil {
		for dst := 0; dst < cfg.Tasks; dst++ {
			if cur[dst] != lim[dst] {
				return fmt.Errorf("core: task %d thread %d: wrote %d tuples for task %d, index predicts %d — input changed since IndexCreate?",
					st.rank, t, cur[dst], dst, lim[dst])
			}
		}
	}
	return nil
}

// maxOfDur returns the largest duration, the parallel phase's critical-path
// time across threads.
func maxOfDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// openInputs opens every input file once per task; chunk reads use ReadAt
// and need no per-thread handles.
func openInputs(idx *index.Index) ([]*os.File, error) {
	files := make([]*os.File, len(idx.Files))
	for i, path := range idx.Files {
		f, err := os.Open(path)
		if err != nil {
			for _, g := range files[:i] {
				g.Close()
			}
			return nil, fmt.Errorf("core: %w", err)
		}
		files[i] = f
	}
	return files, nil
}
