package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// pool.go implements TuplePool, a size-classed freelist for the two
// per-task tuple buffers (kmerOut/kmerIn). The daemon's job manager owns
// one pool and threads it through every job's Config, so back-to-back jobs
// reuse the multi-GB slices instead of reallocating (and re-faulting) them.
//
// Reuse is safe without zeroing: every range the pipeline reads is fully
// written first in the same pass — KmerGen fills kmerOut's [0, gl.total)
// exactly (the cursor-vs-limit verification enforces it), the exchange
// lands exactly [0, rl.total) of kmerIn, and LocalSort's scatter rewrites
// the partitions it then sorts. Within one run all acquisitions happen
// before any release (a rank cannot finish while a peer has not started:
// the pass barriers order them), so a buffer never changes owner mid-run.

// poolClassLimit caps retained buffers per size class; beyond it, put drops
// the buffer for the GC so an unusually large one-off job cannot pin its
// footprint forever.
const poolClassLimit = 4

// TuplePool recycles tuple buffers across pipeline runs. The zero value is
// not usable; create one with NewTuplePool. All methods are safe for
// concurrent use — the daemon's worker pool runs jobs in parallel against
// one shared pool.
type TuplePool struct {
	mu sync.Mutex
	// free[wide][class] holds retained buffers whose capacity is exactly
	// 2^class tuples (requests round up to the class size, so any buffer
	// in a class satisfies any request mapped to it).
	free [2]map[int][]*tupleBuf

	hits, misses atomic.Uint64
}

// NewTuplePool creates an empty pool.
func NewTuplePool() *TuplePool {
	p := &TuplePool{}
	p.free[0] = make(map[int][]*tupleBuf)
	p.free[1] = make(map[int][]*tupleBuf)
	return p
}

// poolClass maps a tuple count to its size class: the exponent of the next
// power of two (so class capacity is at most 2× the request).
func poolClass(n uint64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(n - 1)
}

// get returns a buffer with at least n tuples of capacity, sliced to
// exactly n, reusing a pooled buffer of the same class when one exists.
func (p *TuplePool) get(n uint64, wide bool) *tupleBuf {
	cls := poolClass(n)
	w := 0
	if wide {
		w = 1
	}
	p.mu.Lock()
	list := p.free[w][cls]
	if len(list) > 0 {
		b := list[len(list)-1]
		p.free[w][cls] = list[:len(list)-1]
		p.mu.Unlock()
		p.hits.Add(1)
		b.lo = b.lo[:n]
		b.val = b.val[:n]
		if wide {
			b.hi = b.hi[:n]
		}
		return b
	}
	p.mu.Unlock()
	p.misses.Add(1)
	// Allocate at the full class capacity so the buffer can serve every
	// future request in its class.
	b := newTupleBuf(uint64(1)<<cls, wide)
	b.lo = b.lo[:n]
	b.val = b.val[:n]
	if wide {
		b.hi = b.hi[:n]
	}
	return b
}

// put returns a buffer to the pool. The caller must no longer reference
// the buffer or any view into it.
func (p *TuplePool) put(b *tupleBuf) {
	if b == nil {
		return
	}
	// Restore full class capacity; drop odd-sized buffers (not allocated
	// by this pool) rather than retain a class lie.
	c := uint64(cap(b.lo))
	if c == 0 || c != uint64(1)<<poolClass(c) {
		return
	}
	b.lo = b.lo[:c]
	b.val = b.val[:c]
	w := 0
	if b.hi != nil {
		b.hi = b.hi[:c]
		w = 1
	}
	cls := poolClass(c)
	p.mu.Lock()
	if len(p.free[w][cls]) < poolClassLimit {
		p.free[w][cls] = append(p.free[w][cls], b)
	}
	p.mu.Unlock()
}

// Hits and Misses report how many buffer acquisitions were served from the
// pool versus freshly allocated — the daemon surfaces them in its stats.
func (p *TuplePool) Hits() uint64   { return p.hits.Load() }
func (p *TuplePool) Misses() uint64 { return p.misses.Load() }

// acquireTupleBuf allocates (or, with a pool, reuses) an n-tuple buffer.
func (c Config) acquireTupleBuf(n uint64, wide bool) *tupleBuf {
	if c.Pool != nil {
		return c.Pool.get(n, wide)
	}
	return newTupleBuf(n, wide)
}

// releaseTupleBuf returns a buffer to the configured pool, if any.
func (c Config) releaseTupleBuf(b *tupleBuf) {
	if c.Pool != nil {
		c.Pool.put(b)
	}
}
