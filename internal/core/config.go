// Package core implements the METAPREP pipeline (§3): KmerGen,
// KmerGen-Comm, LocalSort, LocalCC and MergeCC, orchestrated over a set of
// simulated MPI tasks with a configurable number of threads each, in one or
// more I/O passes over the input.
//
// The package is deliberately structured the way the paper describes the
// tool: a static plan derived from the IndexCreate tables precomputes every
// buffer size and write offset (so threads never synchronize on shared
// buffers), and each step is a separate, separately-timed phase.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/kmer"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
)

// Filter is the k-mer frequency filter of §4.4: read-graph edges are only
// generated from a k-mer whose dataset-wide frequency f satisfies
// Min ≤ f ≤ Max. Zero values disable the corresponding bound. The zero
// Filter generates edges from every shared k-mer (the paper's "None").
type Filter struct {
	Min, Max uint32
}

// Keep reports whether a k-mer with frequency f passes the filter.
func (fl Filter) Keep(f uint32) bool {
	if fl.Min > 0 && f < fl.Min {
		return false
	}
	if fl.Max > 0 && f > fl.Max {
		return false
	}
	return true
}

// String renders the filter the way the paper's tables label it.
func (fl Filter) String() string {
	switch {
	case fl.Min == 0 && fl.Max == 0:
		return "None"
	case fl.Min == 0:
		return fmt.Sprintf("KF<=%d", fl.Max)
	case fl.Max == 0:
		return fmt.Sprintf("KF>=%d", fl.Min)
	default:
		return fmt.Sprintf("%d<=KF<=%d", fl.Min, fl.Max)
	}
}

// Prefilter configures the opt-in two-pass probabilistic singleton
// prefilter: pass 1 is an enumeration-only scan that builds a blocked-Bloom
// repeat ladder (internal/sketch) over every canonical k-mer, the ranks
// combine their ladders into one global "seen ≥ MinCount times" bitmap, and
// the normal pipeline then skips tuple generation for k-mers below the
// threshold — they never cross the all-to-all, enter LocalSort, or spill.
// At MinCount 2 the dropped k-mers are exactly the true singletons (modulo
// Bloom false positives, which only keep extra k-mers — the safe
// direction), so a k-mer run of length ≥ 2 is never lost and the component
// labels are identical to the exact run's. Higher MinCount values trade
// edges for volume and genuinely change labels, which is why the knob is
// part of CanonicalHash.
type Prefilter struct {
	// BitsPerKmer sizes the filter: the pass-1 ladder holds
	// Index.TotalKmers × BitsPerKmer bits split across MinCount levels
	// (8 is a good default; 0 disables the prefilter; max 64). Fewer bits
	// mean more false positives — more singletons kept, never more dropped.
	BitsPerKmer int
	// MinCount is the keep threshold: k-mers seen fewer than MinCount times
	// dataset-wide generate no tuples. 0 defaults to 2 (lossless); 2..8
	// allowed. Values above 2 drop genuinely shared k-mers and change
	// component labels — compose with Filter.Min accordingly.
	MinCount int
}

// Enabled reports whether the prefilter is configured on.
func (pf Prefilter) Enabled() bool { return pf.BitsPerKmer > 0 }

// minCount returns the effective keep threshold: the default 2 when the
// prefilter is on with MinCount unset, 0 when the prefilter is off.
func (pf Prefilter) minCount() int {
	if !pf.Enabled() {
		return 0
	}
	if pf.MinCount == 0 {
		return 2
	}
	return pf.MinCount
}

// Config parameterizes a pipeline run.
type Config struct {
	// Index is the prebuilt IndexCreate output for the input files.
	Index *index.Index
	// Tasks is P, the number of simulated MPI tasks.
	Tasks int
	// Threads is T, the worker threads per task.
	Threads int
	// Passes is S, the number of I/O passes (≥ 1). More passes reduce the
	// per-task tuple-buffer footprint proportionally (§3.7).
	Passes int
	// Filter restricts which k-mer frequencies generate read-graph edges.
	Filter Filter
	// CCOpt enables the multi-pass LocalCC optimization of §3.5.1:
	// from the second pass on, tuples carry the read's current component ID
	// instead of its read ID, concentrating Find lookups on component
	// roots. It has no effect on single-pass runs.
	CCOpt bool
	// Network models inter-task transfer costs (nil: free communication).
	Network *mpirt.NetworkModel
	// OutDir receives the partitioned FASTQ output (one largest-component
	// and one remainder file per thread, §3.6). Empty skips the output
	// step, producing component labels only.
	OutDir string
	// SparseMerge transmits MergeCC payloads as sparse (vertex, parent)
	// pairs instead of the dense 4R-byte array — the direction of the
	// component-contraction methods the paper's conclusion proposes for
	// the MergeCC bottleneck. It pays off when most reads are singletons
	// (diverse metagenomes); the dense encoding is smaller once more than
	// half the reads are in components.
	SparseMerge bool
	// SparseDeltaMerge replaces the one-shot tree merge with the pipelined
	// delta schedule: every non-root rank ships, in each round of the §3.6
	// merge tree, only the parent entries that changed since its previous
	// snapshot (round 0 is the full sparse baseline), over nonblocking sends
	// so a round's transfer overlaps the parent's absorb of the previous
	// round. Results are identical to the dense and sparse one-shot paths;
	// Default turns it on. Takes precedence over SparseMerge (setting both
	// explicitly is a validation error).
	SparseDeltaMerge bool
	// StarBroadcast replaces the binomial-tree broadcast of the global label
	// array with rank 0 sending to every task directly — the flat schedule
	// the tree replaces, kept as an ablation knob for the modeled Merge-Comm
	// comparison. Default leaves it off.
	StarBroadcast bool
	// OverlapOutput switches the CC-I/O step to the zero-copy overlapped
	// path: output chunks are prefetched through the same per-thread chunk
	// machinery KmerGen uses — with the prefetchers started while the merge
	// and broadcast are still in flight — and records whose raw bytes are
	// already in canonical form are blitted verbatim into the group writers
	// instead of being re-parsed through fastq.Reader and re-serialized.
	// Outputs are bit-identical to the reader-based path (the parity suite
	// checks); Default turns it on.
	OverlapOutput bool
	// SplitComponents, when > 0, writes the N largest components to
	// separate output file sets (component 0, 1, …) plus a remainder set,
	// instead of the paper's largest-vs-rest split — the "alternate
	// component-splitting strategies" of the paper's future work. 0 keeps
	// the paper's behavior.
	SplitComponents int
	// PrefetchChunks is the per-thread read-ahead depth of KmerGen's chunk
	// prefetcher: while a thread enumerates tuples from one chunk, an
	// asynchronous reader fills up to PrefetchChunks further chunk buffers,
	// overlapping input I/O with k-mer enumeration. 0 means the default
	// depth of 1 (classic double buffering). Each thread holds
	// 1+PrefetchChunks chunk buffers, which the §3.7 memory accounting
	// charges accordingly.
	PrefetchChunks int
	// NoPrefetch disables the overlapped chunk I/O entirely (the ablation
	// for the prefetcher): chunks are read serially on the enumerating
	// thread, with the full read time charged to KmerGen-I/O, and each
	// thread holds a single chunk buffer. Results are bit-identical either
	// way.
	NoPrefetch bool
	// DynamicOffsets disables the precomputed-offset KmerGen buffers and
	// uses an atomic shared cursor instead. This is the ablation for the
	// paper's claim that the index tables remove synchronization overhead;
	// production runs leave it false.
	DynamicOffsets bool
	// ExchangeChunkTuples, when > 0, switches the §3.3 tuple exchange to
	// the streaming chunked schedule: each (pass, destination) send region
	// is split into fixed-size chunks of this many tuples, KmerGen
	// publishes a chunk the moment its region fills, and a per-task
	// exchange goroutine pair drains published chunks through the P-stage
	// schedule (with double buffering) while enumeration of later chunks is
	// still running — overlapping compute with communication, so the
	// modeled KmerGen+Comm wall time approaches max(T_gen, T_comm) instead
	// of their sum. 0 keeps the bulk-synchronous reference path. Results
	// are bit-identical either way. Incompatible with DynamicOffsets, whose
	// shared cursors interleave threads within a destination region and
	// destroy the chunk-fill accounting.
	ExchangeChunkTuples int
	// SpillBudgetBytes, when > 0, caps the sort/union phase's resident
	// tuple memory per task. When a pass's received partition would exceed
	// the cap, LocalSort goes out-of-core: the exchange lands tuples into
	// fixed-size run builders, each full run is radix-sorted in RAM and
	// spilled to a per-rank temp file (write-behind), and LocalCC consumes
	// a loser-tree k-way merge of the spilled runs as a stream instead of a
	// materialized partition. Results are bit-identical to the in-RAM path
	// (the spill parity suite pins this). 0 disables spilling. Budgets
	// below MinSpillBudgetBytes are a validation error.
	SpillBudgetBytes int64
	// SpillDir is where spill-run temp files go (a per-run directory is
	// created beneath it and removed on every exit path). Empty uses the
	// OS temp dir. Setting it without SpillBudgetBytes is a validation
	// error. Like Pool, it never affects results and is excluded from
	// CanonicalHash.
	SpillDir string
	// SpillCompress delta-encodes the sorted tuple keys of each spilled
	// block as varints, shrinking spill I/O at some encode/decode cost.
	// Only the 64-bit key path (k ≤ 31) supports it; combining it with
	// 128-bit keys is a validation error.
	SpillCompress bool
	// ArtifactOut, when set, writes a persistent partition artifact
	// (internal/artifact format v1) to this path: the globally sorted
	// canonical k-mer tuple stream, the component label map, the frequency
	// histogram and the run's provenance. The tuple stream is teed off the
	// existing LocalSort/merge data paths — no second enumeration pass. The
	// path's directory must exist and be writable. Where the artifact lands
	// never affects results, so the path is excluded from CanonicalHash
	// (whether one is written at all is too: the labels are identical).
	ArtifactOut string
	// ArtifactIn, when set, loads a previously written partition artifact
	// instead of running KmerGen/exchange/sort/CC. Without ArtifactDelta the
	// artifact must match this run's index (digest, read count) and filter —
	// the stored labels are the result, and output writing proceeds as
	// usual. A mismatch fails with an error wrapping artifact.ErrMismatch.
	ArtifactIn string
	// ArtifactDelta switches ArtifactIn to incremental repartitioning:
	// Index names only the NEW (delta) FASTQ files, the artifact holds the
	// base partition, and the run k-way-merges the delta's sorted runs
	// against the stored runs, unioning only the new edges into the
	// reloaded DSU. Requires ArtifactIn; incompatible with Filter.Max
	// (an upper frequency bound can retroactively disqualify base edges,
	// which a union-only structure cannot express). Delta read IDs follow
	// the base's: global read r of the delta index becomes base.Reads + r.
	ArtifactDelta bool
	// Prefilter, when enabled (BitsPerKmer > 0), runs the two-pass
	// probabilistic singleton prefilter before tuple generation. See the
	// Prefilter type for semantics. Incompatible with DynamicOffsets (the
	// shared-cursor ablation needs the index's exact fill counts) and with
	// the artifact paths (a filtered tuple stream would not round-trip).
	Prefilter Prefilter
	// Pool, when non-nil, supplies and reclaims the two per-task tuple
	// buffers (kmerOut/kmerIn) so back-to-back runs — the daemon's jobs —
	// reuse multi-GB slices instead of reallocating them. Never affects
	// results and is excluded from CanonicalHash.
	Pool *TuplePool
	// NoVectorKmerGen disables the 4-lane "vectorized" k-mer generator
	// (§3.2.1, used for k ≤ 31), falling back to the scalar rolling
	// generator; the ablation benchmark compares the two.
	NoVectorKmerGen bool
	// Obs, when non-nil, collects per-step spans (exported as a
	// Perfetto-loadable Chrome trace) and typed counters (bytes read,
	// tuples exchanged per rank pair, radix passes, union–find operation
	// mix, …) for the run. The nil default is a no-op collector: the hot
	// path stays allocation-free and benchmark-neutral (see
	// BenchmarkPipelineObsv and EXPERIMENTS.md).
	Obs *obsv.Collector
	// DriftCal selects the calibration the post-run drift reconciliation
	// predicts with: "edison" (default, also ""), "ganga", or "off" to skip
	// reconciliation entirely. After every run the measured per-step times
	// and byte volumes are compared against model.Predict for this run's
	// actual Workload/Cluster parameters; the report lands in Result.Drift.
	// Never affects pipeline results and is excluded from CanonicalHash.
	DriftCal string
	// Log, when non-nil, receives structured run-lifecycle records (start,
	// finish, failure) with the job correlation ID from the context when the
	// caller threaded one through obsv.WithJobID. Nil logs nothing. Never
	// affects results and is excluded from CanonicalHash.
	Log *slog.Logger
}

// Default returns a single-task configuration with sensible defaults for
// the given index: one pass, one thread, the multi-pass optimization on,
// and the back-half fast paths (pipelined delta merge, zero-copy overlapped
// output) enabled.
func Default(idx *index.Index) Config {
	return Config{Index: idx, Tasks: 1, Threads: 1, Passes: 1, CCOpt: true,
		SparseDeltaMerge: true, OverlapOutput: true}
}

// ErrInvalidConfig is the sentinel every Config validation error wraps, so
// callers (the CLI, the job service's 400 path) can classify a bad
// configuration with a single errors.Is instead of pattern-matching
// messages.
var ErrInvalidConfig = errors.New("core: invalid config")

// ConfigError is a typed validation failure: the offending field plus a
// human-readable reason. It wraps ErrInvalidConfig (errors.Is matches) so a
// service can reject the job with a clean 400 instead of panicking deep in
// the pipeline.
type ConfigError struct {
	// Field names the Config (or embedded IndexOptions) field that failed.
	Field string
	// Reason describes the violated invariant.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s: %s", e.Field, e.Reason)
}

// Unwrap ties every ConfigError to the ErrInvalidConfig sentinel.
func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// Validate checks configuration invariants. Every failure is returned as a
// *ConfigError wrapping ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Index == nil {
		return &ConfigError{Field: "Index", Reason: "nil index"}
	}
	opts := c.Index.Opts
	if err := kmer.CheckK128(opts.K); err != nil {
		return &ConfigError{Field: "Index.Opts.K",
			Reason: fmt.Sprintf("k=%d out of range for the 64/128-bit k-mer paths (1..%d)", opts.K, kmer.MaxK128)}
	}
	if opts.M >= opts.K {
		return &ConfigError{Field: "Index.Opts.M",
			Reason: fmt.Sprintf("m=%d ≥ k=%d: the m-mer prefix must be shorter than the k-mer", opts.M, opts.K)}
	}
	if err := opts.Validate(); err != nil {
		return &ConfigError{Field: "Index.Opts", Reason: err.Error()}
	}
	if c.Tasks < 1 {
		return &ConfigError{Field: "Tasks", Reason: fmt.Sprintf("%d < 1", c.Tasks)}
	}
	if c.Threads < 1 {
		return &ConfigError{Field: "Threads", Reason: fmt.Sprintf("%d < 1", c.Threads)}
	}
	if c.Passes < 1 {
		return &ConfigError{Field: "Passes", Reason: fmt.Sprintf("%d < 1", c.Passes)}
	}
	if c.Filter.Min > 0 && c.Filter.Max > 0 && c.Filter.Min > c.Filter.Max {
		return &ConfigError{Field: "Filter",
			Reason: fmt.Sprintf("min %d > max %d", c.Filter.Min, c.Filter.Max)}
	}
	if c.SplitComponents < 0 {
		return &ConfigError{Field: "SplitComponents", Reason: fmt.Sprintf("%d < 0", c.SplitComponents)}
	}
	if c.PrefetchChunks < 0 {
		return &ConfigError{Field: "PrefetchChunks", Reason: fmt.Sprintf("%d < 0", c.PrefetchChunks)}
	}
	if c.ExchangeChunkTuples < 0 {
		return &ConfigError{Field: "ExchangeChunkTuples", Reason: fmt.Sprintf("%d < 0", c.ExchangeChunkTuples)}
	}
	if c.ExchangeChunkTuples > 0 && c.DynamicOffsets {
		return &ConfigError{Field: "ExchangeChunkTuples",
			Reason: "streaming exchange requires precomputed offsets (incompatible with DynamicOffsets)"}
	}
	if c.SparseDeltaMerge && c.SparseMerge {
		return &ConfigError{Field: "SparseDeltaMerge",
			Reason: "pick one merge payload encoding: SparseDeltaMerge (pipelined deltas) or SparseMerge (one-shot sparse)"}
	}
	if c.SpillBudgetBytes < 0 {
		return &ConfigError{Field: "SpillBudgetBytes", Reason: fmt.Sprintf("%d < 0", c.SpillBudgetBytes)}
	}
	if c.SpillBudgetBytes > 0 && c.SpillBudgetBytes < MinSpillBudgetBytes {
		return &ConfigError{Field: "SpillBudgetBytes",
			Reason: fmt.Sprintf("%d below the %d-byte minimum (run builders and merge read buffers cannot fit a smaller cap)",
				c.SpillBudgetBytes, MinSpillBudgetBytes)}
	}
	if c.SpillCompress && c.SpillBudgetBytes == 0 {
		return &ConfigError{Field: "SpillCompress", Reason: "requires SpillBudgetBytes > 0 (nothing is spilled otherwise)"}
	}
	if c.SpillCompress && !opts.Use64() {
		return &ConfigError{Field: "SpillCompress",
			Reason: fmt.Sprintf("varint/delta key compression supports 64-bit keys only (k=%d uses the 128-bit path)", opts.K)}
	}
	if c.SpillDir != "" {
		if c.SpillBudgetBytes == 0 {
			return &ConfigError{Field: "SpillDir", Reason: "set without SpillBudgetBytes (nothing is spilled)"}
		}
		if err := checkSpillDir(c.SpillDir); err != nil {
			return &ConfigError{Field: "SpillDir", Reason: err.Error()}
		}
	}
	if c.ArtifactDelta && c.ArtifactIn == "" {
		return &ConfigError{Field: "ArtifactDelta", Reason: "requires ArtifactIn (the base partition artifact)"}
	}
	if c.ArtifactDelta && c.Filter.Max > 0 {
		return &ConfigError{Field: "ArtifactDelta",
			Reason: fmt.Sprintf("incompatible with Filter.Max=%d: new occurrences can push a base k-mer over the bound, and edges already merged into the base labels cannot be retracted", c.Filter.Max)}
	}
	if c.ArtifactIn != "" && c.ArtifactOut != "" && !c.ArtifactDelta {
		return &ConfigError{Field: "ArtifactOut",
			Reason: "reloading an artifact (ArtifactIn without ArtifactDelta) skips tuple enumeration, so there is no stream to write; copy the input artifact instead"}
	}
	if c.ArtifactOut != "" {
		dir := filepath.Dir(c.ArtifactOut)
		if err := checkSpillDir(dir); err != nil {
			return &ConfigError{Field: "ArtifactOut", Reason: err.Error()}
		}
	}
	if c.Prefilter.BitsPerKmer < 0 || c.Prefilter.BitsPerKmer > 64 {
		return &ConfigError{Field: "Prefilter.BitsPerKmer",
			Reason: fmt.Sprintf("%d outside 0..64 (0 disables, 8 is a good default)", c.Prefilter.BitsPerKmer)}
	}
	if c.Prefilter.MinCount != 0 && !c.Prefilter.Enabled() {
		return &ConfigError{Field: "Prefilter.MinCount",
			Reason: "set without Prefilter.BitsPerKmer (nothing is filtered)"}
	}
	if mc := c.Prefilter.MinCount; c.Prefilter.Enabled() && mc != 0 && (mc < 2 || mc > 8) {
		return &ConfigError{Field: "Prefilter.MinCount",
			Reason: fmt.Sprintf("%d outside 2..8 (1 drops nothing; the ladder caps at 8 levels)", mc)}
	}
	if c.Prefilter.Enabled() && c.DynamicOffsets {
		return &ConfigError{Field: "Prefilter",
			Reason: "incompatible with DynamicOffsets: the prefilter's compaction needs per-thread sub-regions, which shared cursors interleave"}
	}
	if c.Prefilter.Enabled() && (c.ArtifactOut != "" || c.ArtifactIn != "") {
		return &ConfigError{Field: "Prefilter",
			Reason: "incompatible with partition artifacts: a prefiltered tuple stream is not the exact sorted stream the artifact format stores"}
	}
	if _, _, err := driftCalibration(c.DriftCal); err != nil {
		return &ConfigError{Field: "DriftCal", Reason: err.Error()}
	}
	return nil
}

// MinSpillBudgetBytes is the smallest accepted SpillBudgetBytes: below it
// the three circulating run builders plus the merge read buffers degenerate
// to runs of a handful of tuples and the spill machinery costs more memory
// in bookkeeping than it saves.
const MinSpillBudgetBytes = 64 << 10

// checkSpillDir verifies the spill directory exists, is a directory, and is
// writable — by creating and removing a probe file, the only check that
// works across permission models.
func checkSpillDir(dir string) error {
	st, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("not usable: %v", err)
	}
	if !st.IsDir() {
		return fmt.Errorf("%s is not a directory", dir)
	}
	probe, err := os.CreateTemp(dir, ".metaprep-probe-*")
	if err != nil {
		return fmt.Errorf("not writable: %v", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// prefetchDepth returns the effective chunk read-ahead depth: 0 when the
// prefetcher is ablated away or the host has a single schedulable CPU (a
// reader goroutine cannot overlap anything there — it only adds two context
// switches per chunk), otherwise PrefetchChunks with 0 defaulting to 1
// (double buffering). An explicit PrefetchChunks overrides the single-CPU
// gate so the overlap machinery stays testable everywhere.
func (c Config) prefetchDepth() int {
	if c.NoPrefetch {
		return 0
	}
	if c.PrefetchChunks > 0 {
		return c.PrefetchChunks
	}
	if runtime.GOMAXPROCS(0) == 1 {
		return 0
	}
	return 1
}

// StepTimes holds per-step wall times using the paper's step names
// (Fig. 5–7). Communication steps include modeled network transfer time
// when a NetworkModel is configured.
type StepTimes struct {
	KmerGenIO   time.Duration // reading FASTQ chunks (with prefetch: only non-overlapped wait time)
	KmerGen     time.Duration // enumerating tuples
	KmerGenComm time.Duration // all-to-all tuple exchange
	LocalSort   time.Duration // partition + per-thread radix sort
	LocalCC     time.Duration // union–find over sorted runs
	MergeComm   time.Duration // component-array transfers in the merge tree
	MergeCC     time.Duration // folding received component arrays
	CCIO        time.Duration // writing partitioned FASTQ output
}

// Total sums all steps.
func (s StepTimes) Total() time.Duration {
	return s.KmerGenIO + s.KmerGen + s.KmerGenComm + s.LocalSort +
		s.LocalCC + s.MergeComm + s.MergeCC + s.CCIO
}

// Each visits every step in pipeline order with the paper's display name
// (Fig. 5–7 labels) — the single source of truth for step rendering in
// the CLI table, the metrics output and the trace span names.
func (s StepTimes) Each(fn func(name string, d time.Duration)) {
	fn("KmerGen-I/O", s.KmerGenIO)
	fn("KmerGen", s.KmerGen)
	fn("KmerGen-Comm", s.KmerGenComm)
	fn("LocalSort", s.LocalSort)
	fn("LocalCC", s.LocalCC)
	fn("Merge-Comm", s.MergeComm)
	fn("MergeCC", s.MergeCC)
	fn("CC-I/O", s.CCIO)
}

// Add accumulates other into s (used to fold per-pass times).
func (s *StepTimes) Add(o StepTimes) {
	s.KmerGenIO += o.KmerGenIO
	s.KmerGen += o.KmerGen
	s.KmerGenComm += o.KmerGenComm
	s.LocalSort += o.LocalSort
	s.LocalCC += o.LocalCC
	s.MergeComm += o.MergeComm
	s.MergeCC += o.MergeCC
	s.CCIO += o.CCIO
}

// MaxOf returns the element-wise maximum over per-task step times — the
// quantity the paper's stacked bar charts report.
func MaxOf(ts []StepTimes) StepTimes {
	var m StepTimes
	for _, t := range ts {
		m.KmerGenIO = maxDur(m.KmerGenIO, t.KmerGenIO)
		m.KmerGen = maxDur(m.KmerGen, t.KmerGen)
		m.KmerGenComm = maxDur(m.KmerGenComm, t.KmerGenComm)
		m.LocalSort = maxDur(m.LocalSort, t.LocalSort)
		m.LocalCC = maxDur(m.LocalCC, t.LocalCC)
		m.MergeComm = maxDur(m.MergeComm, t.MergeComm)
		m.MergeCC = maxDur(m.MergeCC, t.MergeCC)
		m.CCIO = maxDur(m.CCIO, t.CCIO)
	}
	return m
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
