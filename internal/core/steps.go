package core

import (
	"fmt"
	"time"

	"metaprep/internal/obsv"
	"metaprep/internal/par"
	"metaprep/internal/unionfind"
)

// steps.go implements the in-memory middle of the pipeline: the tuple
// exchange (§3.3), the two-stage local sort (§3.4) and the concurrent
// union–find over sorted runs (§3.5).

// exchange runs the custom all-to-all of §3.3: P stages of point-to-point
// messages, stage i pairing rank→rank+i. Each received region lands at its
// precomputed offset in kmerIn; counts are validated against the index's
// prediction.
func (st *taskState) exchange(s int, gl genLayout, rl recvLayout) error {
	t0 := time.Now()
	var mismatch error
	st.t.AllToAll(tagTuples+s,
		func(dst int) (any, int) {
			cnt := gl.dstCnt[dst]
			return st.out.msgFor(gl.dstOff[dst], cnt), int(cnt) * st.out.bytesPerTuple()
		},
		func(src int, payload any) {
			var got uint64
			if st.spill != nil {
				// Out-of-core path: land the message in the run builders
				// instead of a partition-sized kmerIn.
				got = st.spill.receive(payload.(tupleMsg))
			} else {
				got = st.in.receive(rl.srcOff[src], payload.(tupleMsg))
			}
			if st.exchTupleCounters != nil {
				// Per-rank-pair volume: the Fig. 8 communication
				// imbalance quantity, keyed on the receiving task. The
				// counters were preformatted in newTaskState, keeping
				// fmt.Sprintf out of the receive path.
				st.exchTupleCounters[src].Add(got)
			}
			if got != rl.srcCnt[src] && mismatch == nil {
				mismatch = fmt.Errorf("core: task %d received %d tuples from %d, index predicts %d",
					st.rank, got, src, rl.srcCnt[src])
			}
		},
	)
	// Messages are zero-copy views into this task's kmerOut; the barrier
	// guarantees every peer has copied its message out before LocalSort
	// reuses the buffer. (A real MPI transfer copies on the wire; this is
	// the in-process equivalent of waiting on the sends.)
	st.t.Barrier()
	d := time.Since(t0) + st.t.TakeCommTime()
	st.rep.Steps.KmerGenComm += d
	st.stepSpan("KmerGen-Comm", t0, d)
	return mismatch
}

// localSort runs the two stages of §3.4 on the received tuples: a parallel
// range partition of kmerIn into T thread partitions of kmerOut (each
// (source region, destination partition) cell writing through its own
// precomputed cursor), then T concurrent serial radix sorts, one partition
// per thread, with kmerIn as the out-of-place scratch.
func (st *taskState) localSort(s int, sl sortLayout) {
	T := st.p.cfg.Threads
	nr := len(sl.regionOff)

	t0 := time.Now()
	obs := st.obs
	// Stage 1: partition. Work units are the P×T source regions of kmerIn.
	// The bin→thread map is a flat lookup table over this task's bin range
	// (the same shape as KmerGen's owner table), filled by walking the cut
	// list once — cuts are contiguous and ordered, so each thread's bin
	// range [cuts[d], cuts[d+1]) is one contiguous fill.
	thrCuts := st.p.pt.ThreadCuts(s, st.rank)
	binLo := thrCuts[0]
	lut := make([]uint16, thrCuts[len(thrCuts)-1]-binLo)
	for d := 0; d < len(thrCuts)-1; d++ {
		for b := thrCuts[d] - binLo; b < thrCuts[d+1]-binLo; b++ {
			lut[b] = uint16(d)
		}
	}
	par.For(T, nr, func(r int) {
		cursor := make([]uint64, T)
		copy(cursor, sl.scatter[r*T:(r+1)*T])
		off, cnt := sl.regionOff[r], sl.regionCnt[r]
		in, out := st.in, st.out
		if in.wide() {
			for i := off; i < off+cnt; i++ {
				d := lut[binOf128(in.hi[i], in.lo[i], st.p.idx.Opts.K, st.p.idx.Opts.M)-binLo]
				j := cursor[d]
				cursor[d]++
				out.moveTuple(j, in, i)
			}
		} else {
			k, m := st.p.idx.Opts.K, st.p.idx.Opts.M
			shift := 2 * uint(k-m)
			for i := off; i < off+cnt; i++ {
				d := lut[int(in.lo[i]>>shift)-binLo]
				j := cursor[d]
				cursor[d]++
				out.moveTuple(j, in, i)
			}
		}
	})
	t1 := time.Now()
	obs.RecordSpan(st.rank, obsv.TidSteps, "detail", "sort-partition", t0, t1.Sub(t0), nil)
	// Stage 2: per-thread serial radix sort of each partition, scratch in
	// the (now consumed) kmerIn. Each partition's bin range bounds its key
	// range, and merHist holds its exact per-bin counts (every tuple whose
	// bin falls in a thread range is routed here), so the sort skips the
	// passes the partitioning already decided.
	shift := 2 * uint(st.p.idx.Opts.K-st.p.idx.Opts.M)
	par.Run(T, func(d int) {
		binCounts := st.p.idx.MerHist[sl.partBinLo[d]:sl.partBinHi[d]]
		if st.keep != nil {
			// MerHist describes the unfiltered tuple stream; under the
			// prefilter the radix sort falls back to its counting path.
			binCounts = nil
		}
		kr := keyRange{
			binLo:     sl.partBinLo[d],
			binHi:     sl.partBinHi[d],
			shift:     shift,
			binCounts: binCounts,
		}
		st.out.sortRange(sl.partOff[d], sl.partCnt[d], kr, st.in)
	})
	obs.RecordSpan(st.rank, obsv.TidSteps, "detail", "sort-radix", t1, time.Since(t1), nil)
	d := time.Since(t0)
	st.rep.Steps.LocalSort += d
	st.stepSpan("LocalSort", t0, d)
}

// binOf128 extracts the m-mer prefix bin from a packed 128-bit key.
func binOf128(hi, lo uint64, k, m int) int {
	shift := 2 * uint(k-m)
	if shift >= 64 {
		return int(hi >> (shift - 64))
	}
	if shift == 0 {
		return int(lo)
	}
	return int(lo>>shift | hi<<(64-shift))
}

// localCC runs §3.5: every thread walks its sorted partition, turns each
// run of an equal k-mer into star edges (first read — every other read) if
// the run's length passes the frequency filter, and feeds them to the
// shared lock-free union–find with Algorithm 1's buffered re-verification.
func (st *taskState) localCC(sl sortLayout) {
	T := st.p.cfg.Threads
	filter := st.p.cfg.Filter
	t0 := time.Now()
	edgeCounts := make([]uint64, T)
	retries := make([][]unionfind.Edge, T)
	hists := make([][]uint64, T)
	par.Run(T, func(d int) {
		var retry []unionfind.Edge
		hist := make([]uint64, freqHistSize)
		st.out.forRuns(sl.partOff[d], sl.partCnt[d], func(start, end uint64) {
			f := uint32(end - start)
			// The frequency spectrum falls out of the sorted runs for free;
			// it is what a user consults to pick the §4.4 filter bounds.
			if f < freqHistSize {
				hist[f]++
			} else {
				hist[freqHistSize-1]++
			}
			if f < 2 || !filter.Keep(f) {
				return
			}
			v0 := st.out.val[start]
			for i := start + 1; i < end; i++ {
				vi := st.out.val[i]
				edgeCounts[d]++
				if st.dsu.Connect(v0, vi) {
					retry = append(retry, unionfind.Edge{U: v0, V: vi})
				}
			}
		})
		retries[d] = retry
		hists[d] = hist
	})
	st.ccFinish(t0, edgeCounts, retries, hists)
}

// ccFinish is the tail of LocalCC shared by the in-RAM and spill paths:
// fold the per-thread frequency histograms, run Algorithm 1's outer
// re-verification loop over the buffered edges, and charge the step.
func (st *taskState) ccFinish(t0 time.Time, edgeCounts []uint64, retries [][]unionfind.Edge, hists [][]uint64) {
	T := st.p.cfg.Threads
	for _, h := range hists {
		for f, c := range h {
			st.freqHist[f] += c
		}
	}
	// Algorithm 1's outer loop: re-verify buffered edges until none remain.
	iters := 1
	for {
		any := false
		for d := range retries {
			if len(retries[d]) > 0 {
				any = true
			}
		}
		if !any {
			break
		}
		iters++
		par.Run(T, func(d int) {
			buf := retries[d][:0]
			for _, e := range retries[d] {
				if st.dsu.Connect(e.U, e.V) {
					buf = append(buf, e)
				}
			}
			retries[d] = buf
		})
	}
	if iters > st.rep.CCIters {
		st.rep.CCIters = iters
	}
	st.rep.Edges += edgesOf(edgeCounts)
	d := time.Since(t0)
	st.rep.Steps.LocalCC += d
	var args map[string]any
	if st.obs != nil { // avoid the map allocation on the disabled path
		args = map[string]any{"edges": edgesOf(edgeCounts), "iterations": iters}
	}
	st.obs.RecordSpan(st.rank, obsv.TidSteps, "step", "LocalCC", t0, d, args)
	st.obs.Histogram(st.rank, "step/LocalCC").Observe(d)
}

func edgesOf(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}
