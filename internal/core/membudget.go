package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
)

// AutoSpillBudget discovers a per-rank spill budget from the memory the
// host actually grants this process: the tightest applicable cgroup limit
// (v2 memory.max, then v1 memory.limit_in_bytes), falling back to
// /proc/meminfo MemAvailable when the process runs uncontained. Half of
// the discovered limit is budgeted for tuples — the other half covers the
// index, label arrays, chunk buffers and merge read-ahead — and divided
// across ranks, floored at MinSpillBudgetBytes so the result always
// validates.
//
// A zero return means no limit could be discovered (an unusual /proc-less
// environment); callers should treat that as "stay in RAM".
func AutoSpillBudget(tasks int) int64 {
	return autoSpillBudget("/", tasks)
}

// autoSpillBudget is AutoSpillBudget against an alternate filesystem root
// (tests point it at a fixture tree).
func autoSpillBudget(root string, tasks int) int64 {
	if tasks < 1 {
		tasks = 1
	}
	limit := cgroupLimit(root)
	if limit == 0 {
		limit = memAvailable(root)
	}
	if limit == 0 {
		return 0
	}
	per := limit / 2 / int64(tasks)
	if per < MinSpillBudgetBytes {
		per = MinSpillBudgetBytes
	}
	return per
}

// cgroupLimit returns the process's memory limit in bytes, or 0 when no
// cgroup constrains it. Values so large they mean "unlimited" (cgroup v1
// reports PAGE_COUNTER_MAX when unset) are treated as no limit.
func cgroupLimit(root string) int64 {
	// cgroup v2 unified hierarchy: "max" means unlimited.
	if b, err := os.ReadFile(filepath.Join(root, "sys/fs/cgroup/memory.max")); err == nil {
		s := string(bytes.TrimSpace(b))
		if s != "max" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
				return v
			}
		}
	}
	// cgroup v1 memory controller.
	if b, err := os.ReadFile(filepath.Join(root, "sys/fs/cgroup/memory/memory.limit_in_bytes")); err == nil {
		if v, err := strconv.ParseInt(string(bytes.TrimSpace(b)), 10, 64); err == nil && v > 0 {
			// v1 reports ~2^63 rounded down to a page multiple when unset.
			if v < int64(1)<<60 {
				return v
			}
		}
	}
	return 0
}

// memAvailable parses MemAvailable (kB) from /proc/meminfo, returning 0 if
// the file or the field is missing.
func memAvailable(root string) int64 {
	b, err := os.ReadFile(filepath.Join(root, "proc/meminfo"))
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(b, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("MemAvailable:")) {
			continue
		}
		fields := bytes.Fields(line[len("MemAvailable:"):])
		if len(fields) == 0 {
			return 0
		}
		v, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil || v <= 0 {
			return 0
		}
		return v * 1024
	}
	return 0
}
