package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/mpirt"
)

// stream_test.go covers the streaming chunked exchange: bit-identical
// results against the bulk reference path across k-mer widths, task counts,
// passes and chunk sizes; clean cancellation mid-stream; and the
// bulk-path-only config constraints.

// assertSameResult asserts the paper-visible outputs of two runs are
// bit-identical: labels, component census, edge and tuple counts, and the
// k-mer frequency spectrum.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Labels) != len(got.Labels) {
		t.Fatalf("label lengths differ: %d vs %d", len(want.Labels), len(got.Labels))
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			t.Fatalf("labels diverge at read %d: %d vs %d", i, got.Labels[i], want.Labels[i])
		}
	}
	if want.Components != got.Components {
		t.Errorf("Components = %d, want %d", got.Components, want.Components)
	}
	if want.LargestRoot != got.LargestRoot || want.LargestSize != got.LargestSize {
		t.Errorf("largest component (%d, %d), want (%d, %d)",
			got.LargestRoot, got.LargestSize, want.LargestRoot, want.LargestSize)
	}
	if want.Edges != got.Edges {
		t.Errorf("Edges = %d, want %d", got.Edges, want.Edges)
	}
	if want.Tuples != got.Tuples {
		t.Errorf("Tuples = %d, want %d", got.Tuples, want.Tuples)
	}
	for f := range want.KmerFreqHist {
		if want.KmerFreqHist[f] != got.KmerFreqHist[f] {
			t.Errorf("KmerFreqHist[%d] = %d, want %d", f, got.KmerFreqHist[f], want.KmerFreqHist[f])
		}
	}
}

// TestStreamingParity asserts the streaming exchange produces bit-identical
// results to the bulk path across 64/128-bit modes, P ∈ {1,2,4}, multiple
// passes, and chunk sizes from degenerate (1 tuple) through larger-than-
// any-region (which reduces to one chunk per destination).
func TestStreamingParity(t *testing.T) {
	modes := []struct {
		name string
		opts index.Options
	}{
		{"64bit", index.Options{K: 11, M: 4, ChunkSize: 1500}},
		{"128bit", index.Options{K: 45, M: 4, ChunkSize: 1500}},
	}
	for mi, mode := range modes {
		rng := rand.New(rand.NewSource(int64(100 + mi)))
		td := overlappingDataset(t, rng, mode.opts, 4, 500, 260, 70)
		for _, tasks := range []int{1, 2, 4} {
			for _, passes := range []int{1, 3} {
				cfg := Default(td.idx)
				cfg.Tasks = tasks
				cfg.Threads = 2
				cfg.Passes = passes
				want, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, chunk := range []int{1, 7, 512} {
					name := fmt.Sprintf("%s/P%d/S%d/chunk%d", mode.name, tasks, passes, chunk)
					t.Run(name, func(t *testing.T) {
						scfg := cfg
						scfg.ExchangeChunkTuples = chunk
						got, err := Run(scfg)
						if err != nil {
							t.Fatal(err)
						}
						assertSameResult(t, want, got)
					})
				}
			}
		}
	}
}

// TestStreamingParityWithNetworkAndFilter layers the remaining production
// knobs — a modeled network, a frequency filter, and the sparse merge — on
// top of the streaming path and checks parity still holds, and that the
// exchange step time is accounted (nonzero under the network model).
func TestStreamingParityWithNetworkAndFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	td := overlappingDataset(t, rng, smallOpts(), 3, 400, 200, 50)
	cfg := Default(td.idx)
	cfg.Tasks = 3
	cfg.Threads = 2
	cfg.Passes = 2
	cfg.Filter = Filter{Min: 2, Max: 100}
	cfg.SparseDeltaMerge = false
	cfg.SparseMerge = true
	cfg.Network = mpirt.EdisonNetwork()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.ExchangeChunkTuples = 64
	got, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
	if got.Steps.KmerGenComm <= 0 {
		t.Errorf("streaming KmerGen-Comm step time = %v, want > 0", got.Steps.KmerGenComm)
	}
}

// TestStreamingCountParity checks the distributed k-mer counter under the
// streaming exchange matches the bulk counter exactly.
func TestStreamingCountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 150, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	want, err := RunCount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExchangeChunkTuples = 32
	got, err := RunCount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("distinct k-mers: %d vs %d", got.Len(), want.Len())
	}
	for i := range want.KmersLo {
		if got.KmersLo[i] != want.KmersLo[i] || got.Counts[i] != want.Counts[i] {
			t.Fatalf("count table diverges at %d: (%x, %d) vs (%x, %d)",
				i, got.KmersLo[i], got.Counts[i], want.KmersLo[i], want.Counts[i])
		}
	}
}

// TestStreamingCancelMidKmerGen cancels a streaming run at a KmerGen chunk
// boundary and checks RunContext returns promptly with context.Canceled and
// no goroutine — rank bodies, prefetchers, exchange senders/receivers,
// outbox flushers — is leaked. Run under -race this exercises the abort
// path through Task.Abort and the tracker publish waits.
func TestStreamingCancelMidKmerGen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 300, 40)

	base := runtime.NumGoroutine()
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.ExchangeChunkTuples = 16
	// Keep the prefetch goroutines in play on single-CPU hosts too — this
	// test exists to check they exit.
	cfg.PrefetchChunks = 2

	ctx := newChunkCancelCtx(3)
	res, err := RunContext(ctx, cfg)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after mid-KmerGen cancel: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("RunContext returned a result alongside cancellation")
	}
	flipped := ctx.cancelledAt()
	if flipped.IsZero() {
		t.Fatalf("context never flipped: the run finished before %d chunk polls", ctx.limit)
	}
	if lat := returned.Sub(flipped); lat > time.Second {
		t.Fatalf("cancellation latency %v, want <= 1s", lat)
	}
	waitGoroutines(t, base, 2, 5*time.Second)
}

// TestStreamingRejectsDynamicOffsets pins the config constraint: the
// chunk-fill accounting requires per-thread precomputed cursors.
func TestStreamingRejectsDynamicOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	td := genDataset(t, rng, smallOpts(), 1, 20, 40)
	cfg := Default(td.idx)
	cfg.ExchangeChunkTuples = 64
	cfg.DynamicOffsets = true
	if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("streaming+DynamicOffsets: err = %v, want ErrInvalidConfig", err)
	}
}
