package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"metaprep/internal/model"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
	"metaprep/internal/radix"
	"metaprep/internal/sketch"
	"metaprep/internal/unionfind"
)

// Message tags. Tuple exchanges are tagged per pass so a lagging task can
// never confuse two passes' messages.
const (
	tagTuples = 100 // +pass number
	tagMerge  = 1
	tagBcast  = 2
	tagDelta  = 10 // +merge round (pipelined delta merge; rounds ≤ log₂P keep it below tagTuples)
)

// taskState is everything one simulated MPI task owns while the pipeline
// runs: its rank, communicator endpoint, the two tuple buffers, its local
// disjoint-set instance, open input files and its accounting.
type taskState struct {
	p    *plan
	rank int
	t    *mpirt.Task
	// ctx is the run's cancellation context. Long compute phases poll it at
	// chunk and step boundaries; blocked communication is woken through the
	// world's abort propagation instead.
	ctx context.Context
	// obs is the run's collector (nil when observability is off). It is
	// the same pointer as p.cfg.Obs, cached for the instrumentation sites.
	obs *obsv.Collector

	// out is kmerOut; in is kmerIn, nil in spill mode (received tuples go
	// through the run builders instead).
	out, in *tupleBuf
	dsu     *unionfind.DSU
	ufStats *unionfind.Stats
	files   []*os.File

	// spill, non-nil only while a spill pass's exchange runs, diverts the
	// receive path into the run builders.
	spill *spillState
	// emit, non-nil when ArtifactOut is set, collects this task's sorted
	// tuple stream into artifact part files as the passes run.
	emit *artifactEmit
	// spillCur/spillPeak gauge the spill machinery's resident tuple bytes
	// (builders plus decoded merge blocks); the peak is exported as the
	// extsort/peak_tuple_bytes counter the budget-compliance test checks.
	spillCur, spillPeak atomic.Int64

	// exchTracker, non-nil only while a streaming exchange pass runs,
	// receives chunk-fill notifications from the KmerGen worker threads.
	exchTracker *chunkTracker
	// pfTracker is exchTracker's prefiltered twin: explicit chunk
	// publication instead of fill counting (see prefilter.go).
	pfTracker *pfTracker

	// keep, non-nil when the prefilter is enabled, is the global "seen ≥
	// MinCount times" Bloom every KmerGen emit consults; filterBytes is the
	// pass-1 ladder's memory charge. genKept[dst*T+t] records thread t's
	// end cursor in dst's send region per pass (kept = end − start cursor);
	// recvGot[src] the actual tuples landed from src this pass.
	keep        *sketch.Bloom
	filterBytes int64
	genKept     []uint64
	recvGot     []uint64
	// exchTupleCounters[src] is the preformatted per-source-rank tuple
	// counter ("exchange/tuples[src->rank]"), resolved once at task setup
	// so the receive path never formats counter names (nil when
	// observability is off).
	exchTupleCounters []*obsv.Counter

	// rep is this task's accounting, accumulated in place as the steps
	// run. Steps, tuples, edges and iteration counts live only here —
	// TaskReport is the one per-task report type, consumed by Result,
	// the metrics snapshot and the load-balance analysis alike.
	rep           TaskReport
	maxChunkBytes int64
	freqHist      [freqHistSize]uint64
}

// newTaskState wires a task's rank, communicator and collector together,
// attaching union–find operation counting when observability is on.
func newTaskState(ctx context.Context, pl *plan, task *mpirt.Task) *taskState {
	st := &taskState{p: pl, rank: task.Rank(), t: task, ctx: ctx, obs: pl.cfg.Obs}
	st.rep.Rank = st.rank
	if st.obs != nil {
		st.ufStats = &unionfind.Stats{}
		st.obs.SetProcessName(st.rank, fmt.Sprintf("task %d", st.rank))
		st.obs.SetThreadName(st.rank, obsv.TidSteps, "steps")
		st.obs.SetThreadName(st.rank, obsv.TidComm, "mpirt comm")
		if pl.cfg.ExchangeChunkTuples > 0 {
			st.obs.SetThreadName(st.rank, obsv.TidExchange, "exchange send")
			st.obs.SetThreadName(st.rank, obsv.TidExchRecv, "exchange recv")
		}
		if pl.spill {
			st.obs.SetThreadName(st.rank, obsv.TidSpill, "spill writer")
		}
		if pl.cfg.ArtifactOut != "" || pl.cfg.ArtifactIn != "" {
			st.obs.SetThreadName(st.rank, obsv.TidArtifact, "artifact")
		}
		// Per-rank-pair tuple counters (the Fig. 8 communication-imbalance
		// quantity, keyed on the receiving task), preformatted here so the
		// exchange receive path does no string formatting per message.
		st.exchTupleCounters = make([]*obsv.Counter, pl.cfg.Tasks)
		for src := range st.exchTupleCounters {
			st.exchTupleCounters[src] =
				st.counter(fmt.Sprintf("exchange/tuples[%03d->%03d]", src, st.rank))
		}
		for t := 0; t < pl.cfg.Threads; t++ {
			st.obs.SetThreadName(st.rank, obsv.TidWorker+t, fmt.Sprintf("worker %d", t))
			if !pl.cfg.NoPrefetch {
				st.obs.SetThreadName(st.rank, obsv.TidPrefetch+t, fmt.Sprintf("prefetch %d", t))
			}
		}
	}
	return st
}

// stepSpan records one "step"-category span on this task's step track and
// folds the duration into the rank's per-step latency histogram. Every
// call site passes the exact duration it just added to rep.Steps —
// including modeled network time — so the per-task sum of step spans
// reconciles with StepTimes.Total (the `metaprep checktrace` invariant).
// The early return keeps the disabled path free of the name concatenation.
func (st *taskState) stepSpan(name string, start time.Time, d time.Duration) {
	if st.obs == nil {
		return
	}
	st.obs.RecordSpan(st.rank, obsv.TidSteps, "step", name, start, d, nil)
	st.obs.Histogram(st.rank, "step/"+name).Observe(d)
}

// counter resolves a per-rank counter (nil, a no-op, when observability
// is off). Hot loops resolve once and keep the pointer.
func (st *taskState) counter(name string) *obsv.Counter {
	return st.obs.Counter(st.rank, name)
}

// spillMemAdd moves the spill tuple-memory gauge by delta bytes, tracking
// its peak. The gauge covers the run builders and the decoded merge blocks
// — the memory the spill budget governs.
func (st *taskState) spillMemAdd(delta int64) {
	cur := st.spillCur.Add(delta)
	for {
		p := st.spillPeak.Load()
		if cur <= p || st.spillPeak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// finishObs registers the end-of-run counters that fall out of the task's
// accounting: volumes, memory and the union–find operation mix.
func (st *taskState) finishObs() {
	if st.obs == nil {
		return
	}
	st.counter("pipeline/tuples").Add(st.rep.Tuples)
	st.counter("pipeline/edges").Add(st.rep.Edges)
	st.counter("pipeline/bytes_sent").Add(uint64(st.rep.BytesSent))
	st.counter("mergecc/bytes_sent").Add(uint64(st.rep.MergeBytes))
	st.counter("memory/planned_bytes").Add(uint64(st.rep.MemoryBytes))
	st.counter("unionfind/finds").Add(st.ufStats.Finds.Load())
	st.counter("unionfind/path_splits").Add(st.ufStats.PathSplits.Load())
	st.counter("unionfind/unions").Add(st.ufStats.Unions.Load())
	st.counter("unionfind/union_races").Add(st.ufStats.UnionRaces.Load())
	if peak := st.spillPeak.Load(); peak > 0 {
		st.counter("extsort/peak_tuple_bytes").Add(uint64(peak))
	}
}

// freqHistSize caps the k-mer frequency spectrum the pipeline collects; the
// last bin aggregates every frequency ≥ freqHistSize-1.
const freqHistSize = 256

// TaskReport is the per-task accounting: the one report type shared by
// the pipeline's internal bookkeeping (taskState accumulates a TaskReport
// in place), Result.PerTask, the metrics snapshot (`metaprep run
// -metrics`) and the load-balance analysis (Fig. 8).
type TaskReport struct {
	Rank      int
	Steps     StepTimes
	Tuples    uint64
	Edges     uint64
	BytesSent int64
	// MergeBytes is the portion of BytesSent spent in the MergeCC tree and
	// label broadcast (dense: 4R per send; sparse: 8 bytes per non-singleton
	// read; delta: 8 bytes per entry changed since the sender's previous
	// round).
	MergeBytes int64
	// CCIters is the largest Algorithm 1 iteration count across this
	// task's passes (§3.5 observes the first iteration dominates).
	CCIters int
	// MemoryBytes is the task's peak planned memory: index tables, both
	// tuple buffers, the two component arrays and the FASTQ chunk buffers
	// (§3.7's inventory).
	MemoryBytes int64
	// SpillBytes is what the out-of-core LocalSort wrote to scratch on this
	// task (0 when every pass stayed in RAM) — the measured side of the
	// drift report's spill comparison.
	SpillBytes int64
	// DriftRatio is this task's total step time against the model's
	// prediction for the run (ε-smoothed, always finite; 0 when drift
	// reconciliation is off). One task drifting alone is load imbalance,
	// not model drift.
	DriftRatio float64
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Labels maps every global read ID to its component root.
	Labels []uint32
	// LargestRoot and LargestSize identify the giant component.
	LargestRoot uint32
	LargestSize int
	// Components is the number of connected components.
	Components int
	// Reads is R, the number of global read IDs.
	Reads uint32
	// Steps is the element-wise maximum of per-task step times — the
	// quantity the paper's figures report.
	Steps StepTimes
	// PerTask holds each task's own accounting.
	PerTask []TaskReport
	// Wall is the end-to-end measured wall time of the run.
	Wall time.Duration
	// Tuples is the total number of (k-mer, read) tuples enumerated.
	Tuples uint64
	// Edges is the number of read-graph edges fed to union–find.
	Edges uint64
	// CCIterations is the largest Algorithm 1 iteration count any task saw.
	CCIterations int
	// KmerFreqHist is the k-mer frequency spectrum: KmerFreqHist[f] counts
	// distinct canonical k-mers of frequency f (the last bin aggregates the
	// tail). It falls out of the sorted runs and is the input to choosing
	// the §4.4 filter bounds.
	KmerFreqHist []uint64
	// MemoryPerTask is the maximum per-task memory figure.
	MemoryPerTask int64
	// LCFiles and OtherFiles list the output FASTQ files (empty when
	// OutDir was not set). With SplitComponents, LCFiles holds component
	// 0's files and OtherFiles the remainder's; SplitFiles has every group.
	LCFiles, OtherFiles []string
	// SplitFiles, indexed [group][...], lists the per-component output
	// file sets when SplitComponents > 0 (groups ordered largest first,
	// remainder last). Nil otherwise.
	SplitFiles [][]string
	// Drift is the post-run model reconciliation: measured step times and
	// byte volumes against model.Predict for this run's actual parameters.
	// Nil when Config.DriftCal is "off".
	Drift *model.DriftReport
}

// LargestFraction returns the largest component's share of all reads, the
// "LC size (% Reads)" quantity of Table 7.
func (r *Result) LargestFraction() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.LargestSize) / float64(r.Reads)
}

// ComponentSizes returns the size of every component keyed by root.
func (r *Result) ComponentSizes() map[uint32]int {
	sizes := make(map[uint32]int)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// Run executes the full METAPREP pipeline under the given configuration.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled or times out,
// compute phases stop at the next chunk or step boundary, blocked ranks are
// woken through mpirt's abort propagation, and RunContext returns ctx.Err()
// with no goroutines left behind (TestRunContextCancelMidKmerGen).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	pl, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}
	// Artifact-driven paths replace the front half of the pipeline: a
	// reload turns a stored partition straight into a Result, and a delta
	// run merges freshly enumerated tuples against the stored base.
	if cfg.ArtifactIn != "" {
		if cfg.ArtifactDelta {
			return runIncremental(ctx, cfg, pl)
		}
		return runFromArtifact(ctx, cfg, pl)
	}
	if cfg.Log != nil {
		cfg.Log.InfoContext(ctx, "pipeline start",
			"tasks", cfg.Tasks, "threads", cfg.Threads, "passes", cfg.Passes,
			"reads", pl.idx.Reads, "tuples", pl.idx.TotalKmers, "spill", pl.spill)
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
	}
	// In spill mode, every rank's run files live in one run-scoped temp
	// directory, removed on every exit path — success, error and
	// cancellation alike (TestSpillCancelLeavesNoRunFiles).
	var spillDir string
	if pl.spill {
		spillDir, err = os.MkdirTemp(cfg.SpillDir, "metaprep-spill-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(spillDir)
	}
	// The artifact emit tees the sorted tuple stream into part files as the
	// passes run; its scratch directory follows the spill-dir lifecycle
	// (removed on success, error and cancellation alike).
	var emit *artifactEmit
	if cfg.ArtifactOut != "" {
		emit, err = newArtifactEmit(cfg, pl)
		if err != nil {
			return nil, err
		}
		defer emit.cleanup()
	}

	world := mpirt.NewWorld(cfg.Tasks, cfg.Network)
	world.SetCollector(cfg.Obs)
	if cfg.Obs != nil {
		radix.EnablePassStats()
		radix.TakePassStats() // discard tallies from earlier, unobserved sorts
		defer func() {
			ex, sk := radix.TakePassStats()
			cfg.Obs.Counter(obsv.RankGlobal, "radix/passes_executed").Add(ex)
			cfg.Obs.Counter(obsv.RankGlobal, "radix/passes_skipped").Add(sk)
			radix.DisablePassStats()
		}()
	}
	reports := make([]TaskReport, cfg.Tasks)
	freqHists := make([][freqHistSize]uint64, cfg.Tasks)
	outFiles := make([][][]string, cfg.Tasks) // [rank][group][thread]
	var final mergeResult

	start := time.Now()
	err = world.RunContext(ctx, func(task *mpirt.Task) error {
		st := newTaskState(ctx, pl, task)
		st.emit = emit
		defer st.closeFiles()
		files, err := openInputs(pl.idx)
		if err != nil {
			return err
		}
		st.files = files
		st.out = cfg.acquireTupleBuf(pl.bufTuples[st.rank], !pl.use64())
		if !pl.spill {
			// Spill mode has no kmerIn: received tuples stream through
			// the budgeted run builders instead.
			st.in = cfg.acquireTupleBuf(pl.bufTuples[st.rank], !pl.use64())
		}
		defer func() {
			// Safe to recycle even on the error path: RunContext joins
			// every rank before returning, so no peer still holds a
			// zero-copy view into these buffers when a later run (the
			// next daemon job) can acquire them.
			cfg.releaseTupleBuf(st.out)
			if st.in != nil {
				cfg.releaseTupleBuf(st.in)
			}
		}()
		st.dsu = unionfind.New(int(pl.idx.Reads))
		st.dsu.SetStats(st.ufStats)
		for _, ci := range pl.taskChunks[st.rank] {
			if sz := pl.idx.Chunks[ci].Size; sz > st.maxChunkBytes {
				st.maxChunkBytes = sz
			}
		}
		if cfg.Prefilter.Enabled() {
			// Pass 1 of the two-pass prefilter: scan, combine, broadcast.
			// Every later pass's KmerGen consults st.keep.
			if err := st.buildPrefilter(); err != nil {
				return err
			}
		}

		for s := 0; s < cfg.Passes; s++ {
			gl := pl.genLayout(s, st.rank)
			rl := pl.recvLayout(s, st.rank)
			if pl.spill {
				if err := st.runSpillPass(s, gl, rl, spillDir); err != nil {
					return err
				}
			} else {
				if err := st.genExchange(s, gl, rl); err != nil {
					return err
				}
				var sl sortLayout
				if st.keep != nil {
					sl = st.sortLayoutFiltered(s, rl)
				} else {
					sl = pl.sortLayout(s, st.rank, rl)
				}
				st.localSort(s, sl)
				// The artifact part writer overlaps LocalCC: both only
				// read the sorted kmerOut. The join below keeps the
				// buffer from being reused (next pass) while encoding.
				var emitDone chan error
				if st.emit != nil {
					emitDone = make(chan error, 1)
					go func(s int, n uint64) {
						t0 := time.Now()
						err := st.emit.writeRun(s, st.rank, st.out, n)
						if st.obs != nil {
							st.obs.RecordSpan(st.rank, obsv.TidArtifact, "detail",
								"artifact-part", t0, time.Since(t0),
								map[string]any{"pass": s, "tuples": n})
						}
						emitDone <- err
					}(s, rl.total)
				}
				st.localCC(sl)
				if emitDone != nil {
					if err := <-emitDone; err != nil {
						return err
					}
				}
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			// Keep passes in lockstep so a fast task cannot start enumerating
			// pass s+1 component IDs while peers still union pass s edges
			// (§3.5.1 requires the local DSU to be quiescent at enumeration).
			task.Barrier()
		}

		// With OverlapOutput, the CC-I/O chunk prefetchers start before the
		// merge so the output re-read streams from disk while Merge-Comm and
		// MergeCC are still in flight. The deferred close covers the abort
		// paths (close is idempotent; writeOutput closes them itself).
		var outFetchers []*chunkFetcher
		if cfg.OutDir != "" && cfg.OverlapOutput {
			outFetchers = st.startOutputFetchers()
			defer func() {
				for _, f := range outFetchers {
					f.close()
				}
			}()
		}
		preMergeBytes := task.BytesSent()
		res := st.mergeCC()
		mergeBytes := task.BytesSent() - preMergeBytes
		if st.rank == 0 {
			final = res
		}
		if cfg.OutDir != "" {
			if err := ctx.Err(); err != nil {
				return err
			}
			paths, err := st.writeOutput(res, outFetchers)
			if err != nil {
				return err
			}
			outFiles[st.rank] = paths
		}

		freqHists[st.rank] = st.freqHist
		st.rep.BytesSent = task.BytesSent()
		st.rep.MergeBytes = mergeBytes
		st.rep.MemoryBytes = st.memoryBytes()
		st.finishObs()
		reports[st.rank] = st.rep
		return nil
	})
	if err != nil {
		if cfg.Log != nil {
			cfg.Log.ErrorContext(ctx, "pipeline failed",
				"err", err, "wall", time.Since(start))
		}
		return nil, err
	}

	res := &Result{
		Labels:      final.labels,
		LargestRoot: final.largestRoot,
		LargestSize: final.largestSize,
		Reads:       pl.idx.Reads,
		Steps:       MaxOf(stepsOf(reports)),
		PerTask:     reports,
		Wall:        time.Since(start),
	}
	comps := make(map[uint32]int)
	for _, l := range final.labels {
		comps[l]++
	}
	res.Components = len(comps)
	singletons := 0
	for _, n := range comps {
		if n == 1 {
			singletons++
		}
	}
	for _, rep := range reports {
		res.Tuples += rep.Tuples
		res.Edges += rep.Edges
		if rep.MemoryBytes > res.MemoryPerTask {
			res.MemoryPerTask = rep.MemoryBytes
		}
	}
	if cfg.OutDir != "" {
		fillOutputFiles(res, outFiles, cfg)
	}
	for _, rep := range reports {
		if rep.CCIters > res.CCIterations {
			res.CCIterations = rep.CCIters
		}
	}
	res.KmerFreqHist = make([]uint64, freqHistSize)
	for rank := range freqHists {
		for f, c := range freqHists[rank] {
			res.KmerFreqHist[f] += c
		}
	}
	// Assemble the artifact once the result is complete: the k-mer parts
	// are copied verbatim, labels and histogram come from the Result, and
	// the file appears atomically (temp + rename) only on success.
	if emit != nil {
		if err := emit.assemble(cfg, pl, res); err != nil {
			return nil, err
		}
	}
	var nonSingletonFrac float64
	if pl.idx.Reads > 0 {
		nonSingletonFrac = float64(int(pl.idx.Reads)-singletons) / float64(pl.idx.Reads)
	}
	reconcileDrift(cfg, res, nonSingletonFrac)
	if cfg.Log != nil {
		attrs := []any{
			"wall", res.Wall, "components", res.Components,
			"largest_frac", res.LargestFraction(), "step_total", res.Steps.Total(),
		}
		if res.Drift != nil {
			attrs = append(attrs, "drift_total", res.Drift.TotalRatio)
		}
		cfg.Log.InfoContext(ctx, "pipeline done", attrs...)
	}
	return res, nil
}

// stepsOf projects the step times out of the reports.
func stepsOf(reports []TaskReport) []StepTimes {
	ts := make([]StepTimes, len(reports))
	for i := range reports {
		ts[i] = reports[i].Steps
	}
	return ts
}

// memoryBytes tallies this task's planned memory per the §3.7 inventory:
// index tables (replicated), kmerOut and kmerIn, the component array p and
// the received array p′ (4R each), and the chunk read buffers — with the
// overlapped-I/O prefetcher, each thread circulates 1+PrefetchChunks
// buffers instead of one, and the inventory charges them all.
func (st *taskState) memoryBytes() int64 {
	idx := st.p.idx
	mem := idx.MemoryBytes()
	mem += st.out.memBytes()
	if st.in != nil {
		mem += st.in.memBytes()
	} else {
		// Spill mode: the receive side is budgeted, not partition-sized.
		mem += st.p.cfg.SpillBudgetBytes
	}
	mem += 2 * 4 * int64(idx.Reads)
	buffersPerThread := int64(1 + st.p.cfg.prefetchDepth())
	mem += int64(st.p.cfg.Threads) * buffersPerThread * st.maxChunkBytes
	if st.p.cfg.SparseDeltaMerge {
		// SnapshotDelta's shadow baseline (lazily allocated on senders).
		mem += 4 * int64(idx.Reads)
	}
	// The prefilter ladder (pass-1 peak; the broadcast keep bitmap is one
	// of its levels).
	mem += st.filterBytes
	return mem
}

// startOutputFetchers spins up one chunk prefetcher per thread over that
// thread's CC-I/O chunk list. Called before mergeCC when OverlapOutput is
// on, so the first prefetch-depth chunks are read while the merge tree and
// label broadcast run. The fetchers reuse the KmerGen prefetch tracks in
// the trace (the KmerGen readers are finished by now).
func (st *taskState) startOutputFetchers() []*chunkFetcher {
	cfg := st.p.cfg
	fs := make([]*chunkFetcher, cfg.Threads)
	for t := range fs {
		fs[t] = newChunkFetcher(st.p.threadChunks[st.rank][t], st.p.idx, st.files,
			cfg.prefetchDepth(), st.obs, st.rank, obsv.TidPrefetch+t)
	}
	return fs
}

// MergeLC concatenates all largest-component output files into one FASTQ
// and all remainder files into another, returning the two paths. It is a
// convenience for feeding the partitions to an assembler.
func MergeLC(res *Result, lcPath, otherPath string) error {
	if len(res.LCFiles) == 0 {
		return fmt.Errorf("core: result has no output files (OutDir was not set)")
	}
	if err := concatFiles(lcPath, res.LCFiles); err != nil {
		return err
	}
	return concatFiles(otherPath, res.OtherFiles)
}
