package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"metaprep/internal/obsv"
)

// TestPipelineTraceSchema runs a 2-task pipeline with a collector and checks
// the exported trace: parseable JSON, metadata events before spans, required
// fields on every event, and monotonically non-decreasing timestamps.
func TestPipelineTraceSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 160, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Passes = 2
	cfg.OutDir = t.TempDir()
	cfg.Obs = obsv.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Obs.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	lastTs := -1.0
	seenSpan := false
	spans := 0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		switch ev.Ph {
		case "M":
			if seenSpan {
				t.Fatalf("event %d: metadata after span events", i)
			}
		case "X":
			seenSpan = true
			spans++
			if ev.Ts < lastTs {
				t.Fatalf("event %d (%s): ts %g < previous %g", i, ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("event %d (%s): missing or negative dur", i, ev.Name)
			}
		default:
			t.Fatalf("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("no span events")
	}
}

// TestTraceSpansMatchStepTimes checks the reconciliation invariant behind
// `metaprep checktrace`: every call site records its step span with the
// exact duration it adds to StepTimes, so the per-task sum of "step"
// category spans equals StepTimes.Total.
func TestTraceSpansMatchStepTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	td := overlappingDataset(t, rng, smallOpts(), 5, 300, 200, 35)
	cfg := Default(td.idx)
	cfg.Tasks = 3
	cfg.Threads = 2
	cfg.Passes = 2
	cfg.OutDir = t.TempDir()
	cfg.Obs = obsv.New()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sums := make(map[int]time.Duration)
	for _, ev := range cfg.Obs.Events() {
		if ev.Cat == "step" {
			sums[ev.Pid] += ev.Dur
		}
	}
	for _, rep := range res.PerTask {
		if got, want := sums[rep.Rank], rep.Steps.Total(); got != want {
			t.Errorf("task %d: step spans sum to %v, StepTimes.Total is %v", rep.Rank, got, want)
		}
	}
}

// TestCounterSnapshotDeterminism runs the identical configuration twice and
// expects identical counter snapshots. Threads must be 1: with more, lost
// union CASes (and the path splits that follow them) depend on scheduling.
func TestCounterSnapshotDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 120, 35)
	snap := func() []obsv.CounterValue {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 1
		cfg.Passes = 2
		cfg.Obs = obsv.New()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return cfg.Obs.Counters()
	}
	a, b := snap(), snap()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("counter snapshots differ between identical runs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty counter snapshot")
	}
}

// TestRunCountObsv covers the counting pipeline's instrumentation path.
func TestRunCountObsv(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	td := overlappingDataset(t, rng, smallOpts(), 3, 300, 100, 30)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Obs = obsv.New()
	res, err := RunCount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[int]time.Duration)
	for _, ev := range cfg.Obs.Events() {
		if ev.Cat == "step" {
			sums[ev.Pid] += ev.Dur
		}
	}
	if len(sums) != 2 {
		t.Fatalf("step spans for %d tasks, want 2", len(sums))
	}
	var kmers uint64
	for _, cv := range cfg.Obs.Counters() {
		if cv.Name == "kmergen/kmers" {
			kmers += cv.Value
		}
	}
	if kmers != res.Tuples {
		t.Errorf("kmergen/kmers counters sum to %d, result reports %d tuples", kmers, res.Tuples)
	}
}

// BenchmarkPipelineObsv measures the full pipeline with the collector off
// (the nil no-op default), on (unbounded), and in flight-recorder ring mode
// — the EXPERIMENTS.md overhead table. The "off" case must be
// indistinguishable from the pre-observability pipeline; "ring" — what the
// daemon runs on every job — must stay within ~2% of "off".
func BenchmarkPipelineObsv(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	td := overlappingDataset(b, rng, smallOpts(), 4, 500, 400, 45)
	for _, mode := range []struct {
		name string
		mk   func() *obsv.Collector
	}{
		{"off", func() *obsv.Collector { return nil }},
		{"on", obsv.New},
		{"ring", func() *obsv.Collector { return obsv.NewRing(0) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Default(td.idx)
				cfg.Tasks = 2
				cfg.Threads = 2
				cfg.Obs = mode.mk()
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
