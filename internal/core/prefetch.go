package core

import (
	"fmt"
	"os"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/obsv"
)

// prefetch.go implements the per-thread chunk prefetcher behind KmerGen's
// overlapped I/O: a single reader goroutine streams the thread's chunk list
// through a small ring of reusable buffers, so chunk i+1 (up to i+depth) is
// read from disk while the owning thread enumerates k-mers from chunk i.
// Buffers are handed back and forth over channels, which both bounds memory
// at depth+1 chunk buffers per thread and establishes the happens-before
// edges the race detector checks.

// fetchedChunk is one filled buffer travelling from the reader goroutine to
// the consuming thread.
type fetchedChunk struct {
	ci  int
	buf []byte
	err error
}

// chunkFetcher yields a thread's chunks in order. With depth 0 it is a
// plain serial loop (the NoPrefetch ablation): next() reads synchronously.
// With depth ≥ 1 an async reader keeps up to depth chunks in flight.
type chunkFetcher struct {
	chunks []int
	idx    *index.Index
	files  []*os.File

	// Tracing identity of the owning thread's prefetch track (obs may be
	// nil; RecordSpan on a nil collector is a no-op).
	obs      *obsv.Collector
	pid, tid int

	// Serial path state.
	pos int
	buf []byte

	// Overlapped path channels; nil on the serial path.
	filled chan fetchedChunk
	free   chan []byte
	stop   chan struct{}
	// stopped latches close() so both the consuming thread and the task's
	// deferred cleanup may call it (the output fetchers are closed by
	// whichever path runs — never concurrently, par.Run joins first).
	stopped bool
}

// newChunkFetcher starts fetching the given chunk list. depth is the number
// of chunks read ahead of the consumer (0 disables the reader goroutine).
func newChunkFetcher(chunks []int, idx *index.Index, files []*os.File, depth int,
	obs *obsv.Collector, pid, tid int) *chunkFetcher {
	f := &chunkFetcher{chunks: chunks, idx: idx, files: files, obs: obs, pid: pid, tid: tid}
	if depth <= 0 || len(chunks) < 2 {
		return f
	}
	// depth+1 buffers circulate: one being parsed, depth filled or filling.
	f.filled = make(chan fetchedChunk, depth)
	f.free = make(chan []byte, depth+1)
	f.stop = make(chan struct{})
	for i := 0; i <= depth; i++ {
		f.free <- nil
	}
	go f.reader()
	return f
}

// reader runs in the prefetch goroutine: it acquires a free buffer, fills
// it with the next chunk and passes it on, until the list is exhausted or
// the consumer closes stop (completion or error abort).
func (f *chunkFetcher) reader() {
	defer close(f.filled)
	for _, ci := range f.chunks {
		var buf []byte
		select {
		case buf = <-f.free:
		case <-f.stop:
			return
		}
		t0 := time.Now()
		buf, err := f.readChunk(ci, buf)
		f.obs.RecordSpan(f.pid, f.tid, "detail", "chunk-read", t0, time.Since(t0), nil)
		select {
		case f.filled <- fetchedChunk{ci: ci, buf: buf, err: err}:
		case <-f.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// readChunk loads chunk ci into buf, growing it as needed.
func (f *chunkFetcher) readChunk(ci int, buf []byte) ([]byte, error) {
	c := &f.idx.Chunks[ci]
	if int64(cap(buf)) < c.Size {
		buf = make([]byte, c.Size)
	}
	buf = buf[:c.Size]
	if _, err := f.files[c.File].ReadAt(buf, c.Offset); err != nil {
		return buf, fmt.Errorf("core: reading chunk %d: %w", ci, err)
	}
	return buf, nil
}

// next returns the next chunk index and its filled buffer, or (0, nil, nil)
// after the last chunk. The caller must hand the buffer back with release
// once it has finished parsing it.
func (f *chunkFetcher) next() (int, []byte, error) {
	if f.filled == nil {
		if f.pos >= len(f.chunks) {
			return 0, nil, nil
		}
		ci := f.chunks[f.pos]
		f.pos++
		buf, err := f.readChunk(ci, f.buf)
		f.buf = buf
		if err != nil {
			return 0, nil, err
		}
		return ci, buf, nil
	}
	fc, ok := <-f.filled
	if !ok {
		return 0, nil, nil
	}
	return fc.ci, fc.buf, fc.err
}

// release returns a consumed buffer to the prefetch ring. The free channel
// holds capacity for every circulating buffer, so this never blocks.
func (f *chunkFetcher) release(buf []byte) {
	if f.filled == nil {
		return
	}
	f.free <- buf
}

// close stops the reader goroutine. It is safe to call on any path,
// including after errors and repeatedly, and leaves the fetcher drained.
func (f *chunkFetcher) close() {
	if f.stop != nil && !f.stopped {
		f.stopped = true
		close(f.stop)
	}
}
