package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"metaprep/internal/artifact"
	"metaprep/internal/extsort"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
	"metaprep/internal/unionfind"
)

// artifact.go wires the persistent partition artifact (internal/artifact)
// into the pipeline: the emit path tees the sorted tuple stream off the
// run's existing data paths into an artifact, the reload path turns a
// stored artifact back into a Result without re-running the front half of
// the pipeline, and the incremental path merges a delta run against a
// stored base.

// artifactEmit collects the pipeline's sorted tuple stream into per-(pass,
// rank[, thread]) part files while the run executes, then assembles them —
// in global key order — into one artifact after the result is known. The
// parts ride the two existing sorted data paths, so no second enumeration
// pass happens:
//
//   - in-RAM passes: after LocalSort, a rank's sorted partition sits
//     read-only in kmerOut while LocalCC walks it, so a goroutine encodes
//     it to a part file concurrently and is joined before the pass barrier
//     (when kmerOut is reused);
//   - spill passes: each LocalCC merge thread tees the tuples it streams
//     out of the k-way run merge into a per-thread part file.
//
// Concatenating parts for pass, then rank, then thread replays the global
// key order (the pass-major/rank-major/bin-major concatenation order that
// count.go documents), so assembly is a verbatim block copy — the artifact
// uses the same extsort block codec as the parts.
//
// Under the §3.5.1 multi-pass optimization (CCOpt with Passes ≥ 2), tuple
// values from the second pass on are component IDs rather than read IDs.
// The artifact stores them as-is: a component ID is a same-component read
// ID, so both the label map (stored separately) and the incremental merge
// (which only needs "some read in the same component") stay correct.
type artifactEmit struct {
	dir         string
	wide        bool
	compress    bool
	blockTuples int
	// parts[pass][rank][thread]; in-RAM passes use a single slot 0 per
	// rank. Distinct goroutines write distinct slots, so no locking.
	parts [][][]artifactPart
}

// artifactPart locates one part file's encoded block range.
type artifactPart struct {
	path   string
	off    int64
	len    int64
	tuples uint64
}

// newArtifactEmit creates the run-scoped part directory (under SpillDir,
// like the spill scratch) and the part table.
func newArtifactEmit(cfg Config, pl *plan) (*artifactEmit, error) {
	dir, err := os.MkdirTemp(cfg.SpillDir, "metaprep-artifact-")
	if err != nil {
		return nil, err
	}
	slots := 1
	if pl.spill {
		slots = cfg.Threads
	}
	e := &artifactEmit{
		dir:  dir,
		wide: !pl.use64(),
		// Narrow keys always get the varint/delta block encoding: the
		// artifact is persistent, so the one-time encode cost buys every
		// later reload its I/O back. 128-bit keys have no compressed path.
		compress:    pl.use64(),
		blockTuples: artifact.DefaultBlockTuples,
		parts:       make([][][]artifactPart, cfg.Passes),
	}
	for s := range e.parts {
		e.parts[s] = make([][]artifactPart, cfg.Tasks)
		for r := range e.parts[s] {
			e.parts[s][r] = make([]artifactPart, slots)
		}
	}
	return e, nil
}

// cleanup removes the part directory. Runs on every exit path; after a
// successful assemble the parts are already copied out.
func (e *artifactEmit) cleanup() { os.RemoveAll(e.dir) }

// writeRun encodes a rank's pass-s sorted partition (kmerOut[0:n]) into a
// part file. It runs concurrently with LocalCC — which only reads the same
// buffer — and the caller joins it before the pass barrier.
func (e *artifactEmit) writeRun(s, rank int, buf *tupleBuf, n uint64) error {
	if n == 0 {
		return nil
	}
	path := filepath.Join(e.dir, fmt.Sprintf("s%02d-r%03d.part", s, rank))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := extsort.NewWriter(f, e.wide, e.compress, e.blockTuples)
	if err != nil {
		return err
	}
	var hi []uint64
	if buf.hi != nil {
		hi = buf.hi[:n]
	}
	info, err := w.WriteRun(buf.lo[:n], hi, buf.val[:n], []uint64{0, n})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	seg := info.Segs[0]
	e.parts[s][rank][0] = artifactPart{path: path, off: seg.Off, len: seg.Len, tuples: seg.Tuples}
	return nil
}

// partTee buffers tuples streaming out of one spill-merge thread and
// encodes them into a per-thread part file with the artifact's block
// parameters (independent of the spill file's own).
type partTee struct {
	e       *artifactEmit
	s, rank int
	thread  int
	f       *os.File
	bw      *bufio.Writer
	path    string
	lo, hi  []uint64
	val     []uint32
	scratch []byte
	bytes   int64
	tuples  uint64
	err     error
	closed  bool
}

func (e *artifactEmit) newPartTee(s, rank, thread int) (*partTee, error) {
	path := filepath.Join(e.dir, fmt.Sprintf("s%02d-r%03d-t%03d.part", s, rank, thread))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := &partTee{
		e: e, s: s, rank: rank, thread: thread, f: f, path: path,
		bw:  bufio.NewWriterSize(f, 256<<10),
		lo:  make([]uint64, 0, e.blockTuples),
		val: make([]uint32, 0, e.blockTuples),
	}
	if e.wide {
		t.hi = make([]uint64, 0, e.blockTuples)
	}
	return t, nil
}

func (t *partTee) add(hi, lo uint64, val uint32) {
	if t.err != nil {
		return
	}
	t.lo = append(t.lo, lo)
	if t.hi != nil {
		t.hi = append(t.hi, hi)
	}
	t.val = append(t.val, val)
	if len(t.lo) >= t.e.blockTuples {
		t.flush()
	}
}

func (t *partTee) flush() {
	if len(t.lo) == 0 || t.err != nil {
		return
	}
	t.scratch = extsort.AppendBlock(t.scratch[:0], t.lo, t.hi, t.val, t.e.compress)
	if _, err := t.bw.Write(t.scratch); err != nil {
		t.err = err
		return
	}
	t.bytes += int64(len(t.scratch))
	t.tuples += uint64(len(t.lo))
	t.lo, t.val = t.lo[:0], t.val[:0]
	if t.hi != nil {
		t.hi = t.hi[:0]
	}
}

// close flushes the final partial block and registers the part.
func (t *partTee) close() error {
	t.flush()
	if t.err == nil {
		t.err = t.bw.Flush()
	}
	t.closed = true
	if cerr := t.f.Close(); t.err == nil {
		t.err = cerr
	}
	if t.err != nil {
		return t.err
	}
	t.e.parts[t.s][t.rank][t.thread] = artifactPart{
		path: t.path, off: 0, len: t.bytes, tuples: t.tuples,
	}
	return nil
}

// discard releases the file handle on abort paths (the part directory is
// removed wholesale by cleanup). No-op after close.
func (t *partTee) discard() {
	if !t.closed {
		t.closed = true
		t.f.Close()
	}
}

// assemble stitches the collected parts, the label map and the histogram
// into the final artifact at cfg.ArtifactOut. Parts are copied verbatim
// (already block-encoded) in pass/rank/thread order — the global key order.
func (e *artifactEmit) assemble(cfg Config, pl *plan, res *Result) error {
	t0 := time.Now()
	w, err := artifact.Create(cfg.ArtifactOut)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := w.BeginKmers(e.wide, e.compress, e.blockTuples); err != nil {
		return err
	}
	for s := range e.parts {
		for r := range e.parts[s] {
			for _, p := range e.parts[s][r] {
				if p.tuples == 0 {
					continue
				}
				f, err := os.Open(p.path)
				if err != nil {
					return err
				}
				err = w.CopyBlocks(io.NewSectionReader(f, p.off, p.len), p.len, p.tuples)
				f.Close()
				if err != nil {
					return err
				}
			}
		}
	}
	if err := w.EndKmers(); err != nil {
		return err
	}
	if got := w.Tuples(); got != res.Tuples {
		return fmt.Errorf("core: artifact emit collected %d tuples, pipeline enumerated %d", got, res.Tuples)
	}
	if err := w.Labels(res.Labels); err != nil {
		return err
	}
	if err := w.Hist(res.KmerFreqHist); err != nil {
		return err
	}
	opts := pl.idx.Opts
	if err := w.Finish(artifact.Meta{
		Kind:        artifact.KindPartition,
		K:           opts.K,
		M:           opts.M,
		FilterMin:   int(cfg.Filter.Min),
		FilterMax:   int(cfg.Filter.Max),
		Reads:       pl.idx.Reads,
		Tuples:      res.Tuples,
		Edges:       res.Edges,
		IndexDigest: pl.idx.Digest(),
		ConfigHash:  cfg.CanonicalHash(),
	}); err != nil {
		return err
	}
	if obs := cfg.Obs; obs != nil {
		obs.Counter(obsv.RankGlobal, "artifact/bytes_written").Add(uint64(w.BytesWritten()))
		obs.RecordSpan(0, obsv.TidArtifact, "detail", "artifact-assemble", t0, time.Since(t0),
			map[string]any{"tuples": res.Tuples, "path": cfg.ArtifactOut})
	}
	return nil
}

// checkArtifactCompat verifies a partition artifact is usable under this
// run's parameters: kind, label presence, k/m and the frequency filter.
// The reload path additionally pins the index digest and read count
// (runFromArtifact); the incremental path deliberately does not — its
// index is the delta, not the base. Meta.ConfigHash is never compared: it
// covers run-shape knobs (tasks, threads, out dir) that cannot change
// labels.
func checkArtifactCompat(r *artifact.Reader, cfg Config, pl *plan) error {
	m := r.Meta()
	opts := pl.idx.Opts
	fail := func(format string, args ...any) error {
		return fmt.Errorf("artifact %s: %s: %w",
			r.Path(), fmt.Sprintf(format, args...), artifact.ErrMismatch)
	}
	if m.Kind != artifact.KindPartition {
		return fail("kind %q, want %q", m.Kind, artifact.KindPartition)
	}
	if !r.HasLabels() {
		return fail("no label section")
	}
	if m.K != opts.K || m.M != opts.M {
		return fail("built with k=%d m=%d, run uses k=%d m=%d", m.K, m.M, opts.K, opts.M)
	}
	if m.FilterMin != int(cfg.Filter.Min) || m.FilterMax != int(cfg.Filter.Max) {
		return fail("built under filter [min=%d,max=%d], run uses [min=%d,max=%d]",
			m.FilterMin, m.FilterMax, cfg.Filter.Min, cfg.Filter.Max)
	}
	return nil
}

// checkLabels bounds-checks a stored label map before it is used to index
// anything: len must equal the read count and every label must be a valid
// read ID.
func checkLabels(r *artifact.Reader, labels []uint32, reads uint32) error {
	if uint32(len(labels)) != reads {
		return fmt.Errorf("artifact %s: %d labels for %d reads: %w",
			r.Path(), len(labels), reads, artifact.ErrBadArtifact)
	}
	for i, l := range labels {
		if l >= reads {
			return fmt.Errorf("artifact %s: label[%d]=%d out of range (%d reads): %w",
				r.Path(), i, l, reads, artifact.ErrBadArtifact)
		}
	}
	return nil
}

// mergeResultFromLabels rebuilds what mergeCC's rank 0 derives — the
// largest component (ties toward the smaller root, matching mergeCC) and
// the split roots — from a stored label map. The sizes map is returned for
// the Components count.
func mergeResultFromLabels(labels []uint32, split int) (mergeResult, map[uint32]int) {
	sizes := make(map[uint32]int, 1024)
	for _, l := range labels {
		sizes[l]++
	}
	var root uint32
	var size int
	for r, s := range sizes {
		if s > size || (s == size && r < root) {
			root, size = r, s
		}
	}
	mr := mergeResult{labels: labels, largestRoot: root, largestSize: size}
	if split > 0 {
		mr.topRoots = topComponents(sizes, split)
	}
	return mr, sizes
}

// outputOnlyRun spins up a world that performs only the CC-I/O step: the
// reload and incremental paths have labels in hand but still partition the
// input FASTQ. The output is byte-identical to a direct run's because
// writeOutput is the same code over the same per-thread chunk lists.
func outputOnlyRun(ctx context.Context, cfg Config, pl *plan, mr mergeResult) ([]TaskReport, [][][]string, error) {
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, nil, err
	}
	world := mpirt.NewWorld(cfg.Tasks, cfg.Network)
	world.SetCollector(cfg.Obs)
	reports := make([]TaskReport, cfg.Tasks)
	outFiles := make([][][]string, cfg.Tasks)
	err := world.RunContext(ctx, func(task *mpirt.Task) error {
		st := newTaskState(ctx, pl, task)
		defer st.closeFiles()
		files, err := openInputs(pl.idx)
		if err != nil {
			return err
		}
		st.files = files
		var fetchers []*chunkFetcher
		if cfg.OverlapOutput {
			fetchers = st.startOutputFetchers()
			defer func() {
				for _, f := range fetchers {
					f.close()
				}
			}()
		}
		paths, err := st.writeOutput(mr, fetchers)
		if err != nil {
			return err
		}
		outFiles[st.rank] = paths
		reports[st.rank] = st.rep
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return reports, outFiles, nil
}

// runFromArtifact is the reload path: ArtifactIn set without ArtifactDelta.
// The artifact's label map IS the result — KmerGen, the exchange, sort and
// CC are all skipped — and output writing (when OutDir is set) replays
// CC-I/O over the same index. Drift reconciliation is skipped: the model
// predicts the full pipeline, and a reload runs only its final step.
func runFromArtifact(ctx context.Context, cfg Config, pl *plan) (*Result, error) {
	start := time.Now()
	r, err := artifact.Open(cfg.ArtifactIn)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := checkArtifactCompat(r, cfg, pl); err != nil {
		return nil, err
	}
	m := r.Meta()
	mismatch := func(format string, args ...any) error {
		return fmt.Errorf("artifact %s: %s: %w",
			r.Path(), fmt.Sprintf(format, args...), artifact.ErrMismatch)
	}
	if m.IndexDigest != pl.idx.Digest() {
		return nil, mismatch("built from index %s, run uses %s", m.IndexDigest, pl.idx.Digest())
	}
	if m.Reads != pl.idx.Reads {
		return nil, mismatch("built over %d reads, index has %d", m.Reads, pl.idx.Reads)
	}
	labels, err := r.Labels()
	if err != nil {
		return nil, err
	}
	if err := checkLabels(r, labels, pl.idx.Reads); err != nil {
		return nil, err
	}
	hist, err := r.Hist()
	if err != nil {
		return nil, err
	}
	// The reload result never dereferences the k-mer section, but a
	// reloaded artifact is trusted as an incremental base later; extsort
	// blocks carry no per-block checksums, so this CRC pass is the only
	// integrity check the tuple stream gets.
	if err := r.VerifyKmers(); err != nil {
		return nil, err
	}
	mr, sizes := mergeResultFromLabels(labels, cfg.SplitComponents)
	if obs := cfg.Obs; obs != nil {
		obs.Counter(obsv.RankGlobal, "artifact/bytes_read").Add(uint64(r.BytesRead()))
		obs.RecordSpan(0, obsv.TidArtifact, "detail", "artifact-load", start, time.Since(start),
			map[string]any{"path": cfg.ArtifactIn, "reads": len(labels)})
	}

	res := &Result{
		Labels:       labels,
		LargestRoot:  mr.largestRoot,
		LargestSize:  mr.largestSize,
		Components:   len(sizes),
		Reads:        pl.idx.Reads,
		Tuples:       m.Tuples,
		Edges:        m.Edges,
		KmerFreqHist: hist,
		PerTask:      make([]TaskReport, cfg.Tasks),
	}
	for i := range res.PerTask {
		res.PerTask[i].Rank = i
	}
	if cfg.OutDir != "" {
		reports, outFiles, err := outputOnlyRun(ctx, cfg, pl, mr)
		if err != nil {
			return nil, err
		}
		res.PerTask = reports
		res.Steps = MaxOf(stepsOf(reports))
		fillOutputFiles(res, outFiles, cfg)
	}
	res.Wall = time.Since(start)
	if cfg.Log != nil {
		cfg.Log.InfoContext(ctx, "pipeline done (artifact reload)",
			"wall", res.Wall, "components", res.Components,
			"largest_frac", res.LargestFraction(), "artifact", cfg.ArtifactIn)
	}
	return res, nil
}

// runIncremental is incremental repartitioning: cfg.Index names only the
// NEW (delta) FASTQ files and ArtifactIn the base partition. The delta is
// enumerated, exchanged and sorted by a normal (recursive) pipeline run
// that writes a temporary delta artifact; the base and delta tuple
// sections are then 2-way merged as streams, and each merged run's star
// edges are unioned into a DSU reconstructed from the base's stored
// labels. Labels over base∪delta come out label-isomorphic to a full
// recompute over the combined input (TestIncrementalParity); the cost is
// proportional to reading the base's tuples, not re-enumerating its FASTQ.
//
// Delta read IDs are rebased: global read r of the delta index becomes
// base.Reads + r in the combined label space.
func runIncremental(ctx context.Context, cfg Config, pl *plan) (*Result, error) {
	start := time.Now()
	base, err := artifact.Open(cfg.ArtifactIn)
	if err != nil {
		return nil, err
	}
	defer base.Close()
	if err := checkArtifactCompat(base, cfg, pl); err != nil {
		return nil, err
	}
	bm := base.Meta()
	wide := !pl.use64()
	if bm.Wide != wide {
		return nil, fmt.Errorf("artifact %s: key width disagrees with k=%d: %w",
			base.Path(), pl.idx.Opts.K, artifact.ErrMismatch)
	}
	baseLabels, err := base.Labels()
	if err != nil {
		return nil, err
	}
	if err := checkLabels(base, baseLabels, bm.Reads); err != nil {
		return nil, err
	}
	// extsort blocks carry no per-block checksums; CRC the base's tuple
	// stream up front so corruption fails fast instead of silently merging
	// garbage edges.
	if err := base.VerifyKmers(); err != nil {
		return nil, err
	}
	baseReads := bm.Reads
	deltaReads := pl.idx.Reads
	if uint64(baseReads)+uint64(deltaReads) > uint64(^uint32(0)) {
		return nil, &ConfigError{Field: "ArtifactDelta",
			Reason: fmt.Sprintf("combined read space %d+%d overflows 32-bit read IDs", baseReads, deltaReads)}
	}

	// The temporary delta artifact lives in a run-scoped scratch dir,
	// removed on every exit path — success, error and cancellation alike.
	scratch, err := os.MkdirTemp(cfg.SpillDir, "metaprep-delta-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	// Enumerate + sort the delta with a plain recursive pipeline run that
	// emits its own artifact. Output and artifact knobs are stripped: only
	// the delta's sorted tuple stream and its accounting are consumed here
	// (its internal DSU is discarded — delta-internal connectivity is
	// re-derived from the merged stream below).
	dcfg := cfg
	dcfg.ArtifactIn, dcfg.ArtifactDelta = "", false
	dcfg.OutDir = ""
	dcfg.SplitComponents = 0
	dcfg.ArtifactOut = filepath.Join(scratch, "delta.mpa")
	dres, err := RunContext(ctx, dcfg)
	if err != nil {
		return nil, err
	}
	delta, err := artifact.Open(dcfg.ArtifactOut)
	if err != nil {
		return nil, err
	}
	defer delta.Close()
	dm := delta.Meta()

	// 2-way streaming merge of the two sorted tuple sections. Leaf 0 is the
	// base: the loser tree breaks key ties toward the lower leaf, so within
	// a run every base tuple precedes every delta tuple.
	t0 := time.Now()
	bf, bseg := base.KmerSeg()
	df, dseg := delta.KmerSeg()
	readers := []*extsort.SegReader{
		extsort.NewSegReader(bf, bseg, bm.Wide, bm.Compress, bm.BlockTuples),
		extsort.NewSegReader(df, dseg, dm.Wide, dm.Compress, dm.BlockTuples),
	}
	mg, err := extsort.NewMerger(readers)
	if err != nil {
		for _, sr := range readers {
			sr.Close()
		}
		return nil, err
	}
	defer mg.Close()

	var out *artifact.Writer
	if cfg.ArtifactOut != "" {
		out, err = artifact.Create(cfg.ArtifactOut)
		if err != nil {
			return nil, err
		}
		defer out.Abort()
		if err := out.BeginKmers(wide, pl.use64(), artifact.DefaultBlockTuples); err != nil {
			return nil, err
		}
	}

	// The base labels are valid DSU parent state (flattened, root = max
	// read ID per component), so the union-by-index invariant holds from
	// the first Connect. The merge is single-goroutine: unions never race,
	// so Algorithm 1's re-verification pass is a no-op and is skipped.
	dsu := unionfind.NewFromLabels(baseLabels, int(deltaReads))
	filter := cfg.Filter
	// Filter.Max is rejected for delta runs at Validate, so streaming edges
	// is possible whenever Min ≤ 2 — the same rule as localCCSpill.
	streaming := filter.Min <= 2
	hist := make([]uint64, freqHistSize)
	var (
		runsMerged, deltaRuns, edges, streamed uint64
		curHi, curLo                           uint64
		f                                      uint32
		v0                                     uint32
		runHasDelta                            bool
		vals                                   []uint32
	)
	endRun := func() {
		if f == 0 {
			return
		}
		runsMerged++
		if runHasDelta {
			deltaRuns++
		}
		if f < freqHistSize {
			hist[f]++
		} else {
			hist[freqHistSize-1]++
		}
		if !streaming && runHasDelta && f >= 2 && filter.Keep(f) {
			// Under Min > 2 a run can cross the bound only because of its
			// delta occurrences, in which case the base run generated no
			// edges at all — every member must be unioned, base–base pairs
			// included.
			for _, vi := range vals[1:] {
				edges++
				dsu.Connect(vals[0], vi)
			}
		}
	}
	for {
		hi, lo, val, ok, err := mg.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		fromDelta := mg.Src() == 1
		if fromDelta {
			val += baseReads
		}
		if out != nil {
			if err := out.Tuple(hi, lo, val); err != nil {
				return nil, err
			}
		}
		streamed++
		if streamed&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if f > 0 && hi == curHi && lo == curLo {
			f++
			runHasDelta = runHasDelta || fromDelta
			if streaming {
				if fromDelta {
					// Base tuples sort ahead of delta tuples within a run,
					// and base–base pairs are already connected in the
					// reloaded labels, so only delta members need an edge
					// to the run head.
					edges++
					dsu.Connect(v0, val)
				}
			} else {
				vals = append(vals, val)
			}
			continue
		}
		endRun()
		curHi, curLo, v0, f = hi, lo, val, 1
		runHasDelta = fromDelta
		if !streaming {
			vals = append(vals[:0], val)
		}
	}
	endRun()

	labels := dsu.Flatten(cfg.Threads)
	mr, sizes := mergeResultFromLabels(labels, cfg.SplitComponents)
	if obs := cfg.Obs; obs != nil {
		logical := streamed * uint64(pl.bytesPerTuple())
		obs.Counter(obsv.RankGlobal, "artifact/bytes_read").
			Add(uint64(base.BytesRead()+delta.BytesRead()) + logical)
		obs.Counter(obsv.RankGlobal, "artifact/runs_merged").Add(runsMerged)
		obs.Counter(obsv.RankGlobal, "artifact/delta_kmers").Add(deltaRuns)
		obs.RecordSpan(0, obsv.TidArtifact, "detail", "incremental-merge", t0, time.Since(t0),
			map[string]any{"runs": runsMerged, "delta_runs": deltaRuns,
				"edges": edges, "tuples": streamed})
	}

	if out != nil {
		if err := out.EndKmers(); err != nil {
			return nil, err
		}
		if err := out.Labels(labels); err != nil {
			return nil, err
		}
		if err := out.Hist(hist); err != nil {
			return nil, err
		}
		baseID := bm.IndexDigest
		if baseID == "" {
			baseID = filepath.Base(base.Path())
		}
		if err := out.Finish(artifact.Meta{
			Kind:      artifact.KindPartition,
			K:         pl.idx.Opts.K,
			M:         pl.idx.Opts.M,
			FilterMin: int(filter.Min),
			FilterMax: int(filter.Max),
			Reads:     baseReads + deltaReads,
			Tuples:    base.Tuples() + delta.Tuples(),
			Edges:     bm.Edges + edges,
			Op:        "incremental",
			Lineage:   []string{baseID, dm.IndexDigest},
		}); err != nil {
			return nil, err
		}
		if obs := cfg.Obs; obs != nil {
			obs.Counter(obsv.RankGlobal, "artifact/bytes_written").Add(uint64(out.BytesWritten()))
		}
	}

	res := &Result{
		Labels:      labels,
		LargestRoot: mr.largestRoot,
		LargestSize: mr.largestSize,
		Components:  len(sizes),
		Reads:       baseReads + deltaReads,
		Steps:       dres.Steps,
		PerTask:     append([]TaskReport(nil), dres.PerTask...),
		Tuples:      base.Tuples() + dres.Tuples,
		// Edges counts what was fed to THIS run's union–find: the merge's
		// star edges over the reloaded DSU. The base's historical edges are
		// folded into the reloaded labels, and the recursive delta run's
		// internal edges were re-derived from the merged stream.
		Edges:         edges,
		CCIterations:  dres.CCIterations,
		KmerFreqHist:  hist,
		MemoryPerTask: dres.MemoryPerTask,
	}
	if cfg.OutDir != "" {
		// Output covers the delta index only (the base FASTQ is not part of
		// this run's input); its reads' labels start at baseReads. Group
		// roots stay in the combined space, consistent with the label
		// values.
		omr := mergeResult{
			labels:      labels[baseReads:],
			largestRoot: mr.largestRoot,
			largestSize: mr.largestSize,
			topRoots:    mr.topRoots,
		}
		reports, outFiles, err := outputOnlyRun(ctx, cfg, pl, omr)
		if err != nil {
			return nil, err
		}
		for i := range res.PerTask {
			res.PerTask[i].Steps.CCIO += reports[i].Steps.CCIO
		}
		res.Steps = MaxOf(stepsOf(res.PerTask))
		fillOutputFiles(res, outFiles, cfg)
	}
	res.Wall = time.Since(start)
	if cfg.Log != nil {
		cfg.Log.InfoContext(ctx, "pipeline done (incremental)",
			"wall", res.Wall, "components", res.Components,
			"base_reads", baseReads, "delta_reads", deltaReads,
			"runs_merged", runsMerged, "delta_kmers", deltaRuns)
	}
	return res, nil
}

// fillOutputFiles flattens the per-rank, per-group output paths into the
// Result's LCFiles/OtherFiles/SplitFiles fields.
func fillOutputFiles(res *Result, outFiles [][][]string, cfg Config) {
	groups := len(outFiles[0])
	res.SplitFiles = make([][]string, groups)
	for rank := 0; rank < cfg.Tasks; rank++ {
		for g := 0; g < groups; g++ {
			res.SplitFiles[g] = append(res.SplitFiles[g], outFiles[rank][g]...)
		}
	}
	res.LCFiles = res.SplitFiles[0]
	res.OtherFiles = res.SplitFiles[groups-1]
	if cfg.SplitComponents == 0 {
		res.SplitFiles = nil
	}
}
