package core

import (
	"fmt"
	"time"

	"metaprep/internal/fastq"
	"metaprep/internal/kmer"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
	"metaprep/internal/par"
	"metaprep/internal/sketch"
)

// prefilter.go implements the opt-in two-pass probabilistic singleton
// prefilter (Config.Prefilter). Pass 1 is an enumeration-only scan of this
// rank's FASTQ chunks — the same overlapped chunk-prefetch path KmerGen
// uses, minus tuple writes — inserting every canonical k-mer into a
// blocked-Bloom repeat ladder (internal/sketch). The ranks then combine
// their ladders exactly (the max-plus convolution over per-bit level
// sequences: Σ_r min(n_r, L) ≥ L ⟺ Σ_r n_r ≥ L) and broadcast the top
// level — the global "seen ≥ MinCount times" bitmap — to every rank.
//
// Pass 2 is the normal pipeline with one change: KmerGen consults the
// bitmap and skips tuple generation for k-mers below the threshold, so
// dropped k-mers never cross the all-to-all, never enter LocalSort, and
// never spill. Because the filter's errors are one-sided (false positives
// keep extra k-mers, never drop repeated ones), MinCount 2 is lossless: a
// dropped k-mer is a true singleton, whose run of length 1 produces no
// edge in the exact pipeline either, so component labels are identical.
//
// The drop rate makes the per-pass tuple counts dynamic, which ripples
// through the offset machinery the static plan otherwise precomputes:
//
//   - KmerGen threads keep their exclusive per-(dst, thread) sub-regions
//     but fill only a prefix of each; the end cursors are recorded in
//     genKept instead of being validated against the index's counts.
//   - The bulk exchange first compacts each destination region in place
//     (a forward copy — writes trail reads) and ships actual counts; the
//     receiver lands regions at their planned offsets and records actual
//     counts in recvGot, erroring only when a region exceeds its exact
//     prediction (the filter can only shrink counts).
//   - The streaming exchange replaces the fill-count chunk tracker (whose
//     "chunk full" condition never fires under filtering) with explicit
//     per-thread chunk publication: each worker publishes its kept ranges
//     at chunk-size boundaries and a last-flagged final per destination,
//     and the sender walks the same P-stage schedule shipping them as
//     they appear, closing each destination with one last-flagged
//     message. The receiver drains each source until that flag.
//   - LocalSort derives its layout from a counting scan of the received
//     tuples (sortLayoutFiltered) instead of the index histograms, and
//     the radix sort falls back to its counting path (MerHist's per-bin
//     counts describe the unfiltered stream).

// Prefilter message tags, below tagDelta's band (see pipeline.go).
const (
	tagPrefilter      = 3 // sub-range ladder all-to-all (rank r's slice of dst's owned words)
	tagPrefilterBcast = 4 // keep-bitmap broadcast (rank 0 → every rank)
	tagPrefilterKeep  = 5 // merged keep sub-range gather (every rank → rank 0)
)

// buildPrefilter runs pass 1: scan, combine, broadcast. On return st.keep
// holds the global keep bitmap every emit consults. Scan I/O and insert
// time are charged to KmerGen-I/O and KmerGen, the combine to KmerGen-Comm
// — the prefilter's cost is part of the front half it shrinks.
func (st *taskState) buildPrefilter() error {
	cfg := st.p.cfg
	P, T := cfg.Tasks, cfg.Threads
	build0 := time.Now()
	f := sketch.NewRepeatFilter(st.p.idx.TotalKmers, cfg.Prefilter.BitsPerKmer,
		cfg.Prefilter.minCount())

	ioTimes := make([]time.Duration, T)
	scanTimes := make([]time.Duration, T)
	errs := make([]error, T)
	par.Run(T, func(t int) {
		errs[t] = st.prefilterScanThread(t, f, &ioTimes[t], &scanTimes[t])
	})
	for _, err := range errs {
		if err != nil {
			// Peers that scanned clean may already be blocked in the
			// combine's sends and receives; fail the world so they wake
			// before this body returns.
			st.t.Abort()
			return err
		}
	}
	ioDur, scanDur := maxOfDur(ioTimes), maxOfDur(scanTimes)
	st.rep.Steps.KmerGenIO += ioDur
	st.rep.Steps.KmerGen += scanDur
	st.stepSpan("KmerGen-I/O", build0, ioDur)
	st.stepSpan("KmerGen", build0.Add(ioDur), scanDur)
	st.obs.RecordSpan(st.rank, obsv.TidSteps, "detail", "prefilter-scan",
		build0, time.Since(build0), nil)

	// Combine by owned sub-range: the ladder's word space [0, nwords) is
	// split into P contiguous ranges, and the all-to-all ships each rank
	// only the slice of every peer's ladder covering the words it owns —
	// L·filterBytes/P per peer instead of the full ladder, so per-rank
	// combine wire volume stays ~filterBytes as P grows rather than the
	// old (P−1)·filterBytes inbound at rank 0. Each owner MergeRanges its
	// slice of all P ladders (bit-identical to a full-ladder fold — the
	// convolution is per-word), then rank 0 gathers the merged keep
	// sub-ranges (filterBytes/L/P each) and broadcasts the assembled
	// bitmap. Zero-copy safety: a rank only mutates words in its own
	// range, while every slice it sent covers other ranks' ranges.
	c0 := time.Now()
	f.Normalize()
	nw := f.NWords()
	cut := func(r int) uint64 { return nw * uint64(r) / uint64(P) }
	myLo, myHi := cut(st.rank), cut(st.rank+1)
	if P > 1 {
		lv := f.Levels()
		st.t.AllToAll(tagPrefilter,
			func(dst int) (any, int) {
				lo, hi := cut(dst), cut(dst+1)
				sub := make([][]uint64, len(lv))
				for i := range lv {
					sub[i] = lv[i][lo:hi]
				}
				return sub, int(hi-lo) * 8 * len(lv)
			},
			func(src int, payload any) {
				if src == st.rank {
					return // stage 0 self-exchange: already our own words
				}
				f.MergeRange(payload.([][]uint64), myLo, myHi)
			},
		)
	}
	keepWords := f.Keep().Words()
	var words []uint64
	if st.rank == 0 {
		for src := 1; src < P; src++ {
			lo, hi := cut(src), cut(src+1)
			copy(keepWords[lo:hi], st.t.Recv(src, tagPrefilterKeep).([]uint64))
		}
		words = keepWords
	} else {
		st.t.Send(0, tagPrefilterKeep, keepWords[myLo:myHi], int(myHi-myLo)*8)
	}
	// Non-root ranks receive first, then relay the stored payload to their
	// subtree — the send closure must serve the received words.
	st.t.TreeBroadcast(tagPrefilterBcast,
		func(dst int) (any, int) { return words, len(words) * 8 },
		func(src int, payload any) { words = payload.([]uint64) },
	)
	keep := sketch.BloomFromWords(words, f.Probes())
	d := time.Since(c0) + st.t.TakeCommTime()
	st.rep.Steps.KmerGenComm += d
	st.stepSpan("KmerGen-Comm", c0, d)
	st.obs.RecordSpan(st.rank, obsv.TidSteps, "detail", "prefilter-combine",
		c0, time.Since(c0), nil)

	st.keep = keep
	st.filterBytes = f.SizeBytes()
	st.recvGot = make([]uint64, P)
	if st.obs != nil {
		st.counter("prefilter/build_us").Add(uint64(time.Since(build0).Microseconds()))
		st.counter("prefilter/filter_bytes").Add(uint64(f.SizeBytes()))
		// Landed(0)−Landed(1) estimates this rank's local singletons; both
		// counts are FP-deflated, so clamp the pathological tiny-filter case.
		if d0, d1 := f.Landed(0), f.Landed(1); d0 > d1 {
			st.counter("prefilter/kmers_dropped").Add(d0 - d1)
		}
		st.counter("prefilter/est_fp_rate").Add(uint64(keep.EstFPRate() * 1e6))
	}
	if cfg.Log != nil && st.rank == 0 {
		cfg.Log.InfoContext(st.ctx, "prefilter built",
			"bits_per_kmer", cfg.Prefilter.BitsPerKmer,
			"min_count", cfg.Prefilter.minCount(),
			"filter_bytes", f.SizeBytes(),
			"est_fp_rate", keep.EstFPRate(),
			"build", time.Since(build0))
	}
	return nil
}

// prefilterScanThread is one worker of the pass-1 scan: the KmerGen chunk
// loop (prefetched reads, in-place parsing, canonical enumeration) with
// ladder inserts in place of tuple writes. Every k-mer is inserted
// regardless of its m-mer bin — the filter is global, not per pass.
func (st *taskState) prefilterScanThread(t int, f *sketch.RepeatFilter,
	ioTime, scanTime *time.Duration) error {

	cfg := st.p.cfg
	idx := st.p.idx
	k := idx.Opts.K
	use64 := st.p.use64()
	var laneBuf []kmer.Kmer64
	var scanner fastq.ChunkScanner
	fetch := newChunkFetcher(st.p.threadChunks[st.rank][t], idx, st.files,
		cfg.prefetchDepth(), st.obs, st.rank, obsv.TidPrefetch+t)
	defer fetch.close()
	for {
		if err := st.ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		ci, buf, err := fetch.next()
		*ioTime += time.Since(t0)
		if err != nil {
			return err
		}
		if buf == nil {
			break
		}
		c := &idx.Chunks[ci]
		t0 = time.Now()
		scanner.Reset(buf)
		for n := int32(0); n < c.Records; n++ {
			rec, err := scanner.Next()
			if err != nil {
				return fmt.Errorf("core: chunk %d record %d: %w", ci, n, err)
			}
			if use64 {
				if cfg.NoVectorKmerGen {
					kmer.ForEach64(rec.Seq, k, func(_ int, km kmer.Kmer64) {
						h1, h2 := sketch.Hash(0, uint64(km))
						f.Insert(h1, h2)
					})
				} else {
					laneBuf = kmer.AppendCanonical64(laneBuf[:0], rec.Seq, k)
					for _, km := range laneBuf {
						h1, h2 := sketch.Hash(0, uint64(km))
						f.Insert(h1, h2)
					}
				}
			} else {
				kmer.ForEach128(rec.Seq, k, func(_ int, km kmer.Kmer128) {
					h1, h2 := sketch.Hash(km.Hi, km.Lo)
					f.Insert(h1, h2)
				})
			}
		}
		*scanTime += time.Since(t0)
		fetch.release(buf)
	}
	return nil
}

// genExchangeFiltered is genExchange's prefiltered twin: the same
// bulk/streaming dispatch, but with dynamic tuple counts flowing through
// compaction (bulk) or explicit chunk publication (streaming).
func (st *taskState) genExchangeFiltered(s int, gl genLayout, rl recvLayout) error {
	if st.p.cfg.ExchangeChunkTuples == 0 {
		if err := st.kmerGen(s, gl); err != nil {
			return err
		}
		act := st.compactGen(gl)
		return st.exchangeFiltered(s, gl, rl, act)
	}
	ex := st.startStreamPF(s, gl, rl)
	if err := st.kmerGen(s, gl); err != nil {
		st.t.Abort()
		ex.join()
		return err
	}
	genEnd := time.Now()
	err := ex.join()
	st.t.Barrier()
	if err != nil {
		return err
	}
	st.streamTail(ex, genEnd)
	return nil
}

// compactGen closes the gaps the prefilter left in kmerOut: within each
// destination region, every thread's kept prefix slides left so the
// region's tuples are contiguous from dstOff. The copies move tuples
// strictly leftward (the write cursor never passes the read cursor), so
// the in-place forward copy is safe. Returns the actual per-destination
// counts. Charged to KmerGen — it is the tail of tuple generation.
func (st *taskState) compactGen(gl genLayout) []uint64 {
	t0 := time.Now()
	T := st.p.cfg.Threads
	act := make([]uint64, len(gl.dstOff))
	for dst := range gl.dstOff {
		w := gl.dstOff[dst]
		for t := 0; t < T; t++ {
			lo := gl.cursor[dst*T+t]
			n := st.genKept[dst*T+t] - lo
			if n > 0 && w != lo {
				st.out.copyRange(w, st.out, lo, n)
			}
			w += n
		}
		act[dst] = w - gl.dstOff[dst]
	}
	d := time.Since(t0)
	st.rep.Steps.KmerGen += d
	st.stepSpan("KmerGen", t0, d)
	return act
}

// exchangeFiltered is the bulk all-to-all with actual (post-filter) send
// counts. Receive offsets stay at their planned positions — regions are
// simply part-filled — and actual counts land in recvGot for the layout
// scan. A region larger than the exact prediction is still an error: the
// filter can only shrink counts, so growth means the input changed.
func (st *taskState) exchangeFiltered(s int, gl genLayout, rl recvLayout, act []uint64) error {
	t0 := time.Now()
	var mismatch error
	st.t.AllToAll(tagTuples+s,
		func(dst int) (any, int) {
			cnt := act[dst]
			return st.out.msgFor(gl.dstOff[dst], cnt), int(cnt) * st.out.bytesPerTuple()
		},
		func(src int, payload any) {
			var got uint64
			if st.spill != nil {
				got = st.spill.receive(payload.(tupleMsg))
			} else {
				got = st.in.receive(rl.srcOff[src], payload.(tupleMsg))
			}
			st.recvGot[src] = got
			if st.exchTupleCounters != nil {
				st.exchTupleCounters[src].Add(got)
			}
			if got > rl.srcCnt[src] && mismatch == nil {
				mismatch = fmt.Errorf("core: task %d received %d tuples from %d, index predicts at most %d — input changed since IndexCreate?",
					st.rank, got, src, rl.srcCnt[src])
			}
		},
	)
	st.t.Barrier()
	d := time.Since(t0) + st.t.TakeCommTime()
	st.rep.Steps.KmerGenComm += d
	st.stepSpan("KmerGen-Comm", t0, d)
	return mismatch
}

// pfChunk is one kept tuple range a KmerGen worker publishes to the
// prefiltered streaming sender: [off, off+cnt) of kmerOut, bound for dst.
// last marks a thread's final contribution to dst (cnt may be 0); the
// sender closes a destination once all T finals have arrived.
type pfChunk struct {
	dst      int
	off, cnt uint64
	last     bool
}

// pfTracker carries published chunks from the KmerGen worker threads to
// the prefiltered streaming sender. Unlike chunkTracker there are no fill
// counts to track — a worker's kept tuples are contiguous within its own
// sub-region, so each publication is a self-describing range.
type pfTracker struct {
	chunkTuples uint64
	pub         chan pfChunk
}

func newPFTracker(gl genLayout, p, t int) *pfTracker {
	// Capacity bounds the worst-case publication count so workers never
	// block: per (dst, thread), ⌈kept/chunkTuples⌉ data chunks plus one
	// final; summed, at most chunkTotal + 2·P·T.
	return &pfTracker{
		chunkTuples: gl.chunkTuples,
		pub:         make(chan pfChunk, gl.chunkTotal+2*p*t),
	}
}

// pfMsg is the streaming prefilter exchange's wire unit: a tuple view plus
// the end-of-source flag (counts are dynamic, so termination is explicit
// rather than derived from the index tables).
type pfMsg struct {
	tupleMsg
	last bool
}

// startStreamPF launches the prefiltered streaming exchange for pass s and
// installs the publication tracker KmerGen's workers feed.
func (st *taskState) startStreamPF(s int, gl genLayout, rl recvLayout) *exchStream {
	ex := &exchStream{st: st, start: time.Now()}
	st.pfTracker = newPFTracker(gl, st.p.cfg.Tasks, st.p.cfg.Threads)
	ex.wg.Add(2)
	go func() {
		defer ex.wg.Done()
		err := mpirt.Guard(func() {
			if e := ex.sendLoopPF(s, gl); e != nil && ex.sendErr == nil {
				ex.sendErr = e
			}
		})
		if err != nil && ex.sendErr == nil {
			ex.sendErr = err
		}
	}()
	go func() {
		defer ex.wg.Done()
		err := mpirt.Guard(func() {
			if e := ex.recvLoopPF(s, rl); e != nil && ex.recvErr == nil {
				ex.recvErr = e
			}
		})
		if err != nil && ex.recvErr == nil {
			ex.recvErr = err
		}
	}()
	return ex
}

// sendLoopPF walks the same P-stage schedule as the exact sender (stage i
// sends to rank+i), shipping published chunks as they arrive. Chunks for
// later stages are queued; the current stage closes when all T worker
// finals for its destination have been seen, whereupon one last-flagged
// (possibly empty) message tells the receiver the source is done. Keeping
// the stage schedule preserves the bulk path's deadlock-freedom argument:
// the globally-first undelivered message's sender is blocked only on
// publication (KmerGen progress) or on strictly earlier sends.
func (ex *exchStream) sendLoopPF(s int, gl genLayout) error {
	st := ex.st
	t := st.t
	P := t.Size()
	T := st.p.cfg.Threads
	tr := st.pfTracker
	obs := st.obs
	queued := make([][]pfChunk, P)
	finals := make([]int, P)
	var inflight []*mpirt.Request
	var sent int
	ship := func(dst int, off, cnt uint64, last bool) {
		req := t.ISend(dst, tagTuples+s,
			pfMsg{tupleMsg: st.out.msgFor(off, cnt), last: last},
			int(cnt)*st.out.bytesPerTuple())
		inflight = append(inflight, req)
		sent++
		if len(inflight) > sendWindow {
			t.Wait(inflight[0])
			inflight = inflight[1:]
		}
	}
	for i := 0; i < P; i++ {
		dst := (st.rank + i) % P
		for _, c := range queued[dst] {
			ship(dst, c.off, c.cnt, false)
		}
		queued[dst] = nil
		for finals[dst] < T {
			var c pfChunk
			select {
			case c = <-tr.pub:
			default:
				// Block: the chunk we need has not been enumerated yet.
				w0 := time.Now()
				select {
				case c = <-tr.pub:
				case <-t.Failed():
					return mpirt.ErrPeerFailed
				}
				ex.pubWait += time.Since(w0)
			}
			if c.last {
				finals[c.dst]++
			}
			if c.cnt > 0 {
				if c.dst == dst {
					ship(dst, c.off, c.cnt, false)
				} else {
					queued[c.dst] = append(queued[c.dst], pfChunk{dst: c.dst, off: c.off, cnt: c.cnt})
				}
			}
		}
		ship(dst, gl.dstOff[dst], 0, true)
	}
	t.WaitAll(inflight)
	if obs != nil {
		st.counter("exchange/chunks_sent").Add(uint64(sent))
		st.counter("exchange/publish_wait_us").Add(uint64(ex.pubWait.Microseconds()))
	}
	return nil
}

// recvLoopPF mirrors the schedule (stage i receives from rank-i), landing
// each source's chunks compactly from its planned region offset until the
// last-flagged message arrives, and recording the actual count in recvGot.
func (ex *exchStream) recvLoopPF(s int, rl recvLayout) error {
	st := ex.st
	t := st.t
	P := t.Size()
	obs := st.obs
	var mismatch error
	var landed int
	for i := 0; i < P; i++ {
		src := (st.rank - i + P) % P
		var got uint64
		for {
			r0 := time.Now()
			m := t.Wait(t.IRecv(src, tagTuples+s)).(pfMsg)
			var n uint64
			if st.spill != nil {
				n = st.spill.receive(m.tupleMsg)
			} else {
				n = st.in.receive(rl.srcOff[src]+got, m.tupleMsg)
			}
			got += n
			landed++
			if obs != nil {
				obs.RecordSpan(st.rank, obsv.TidExchRecv, "detail", "chunk-land", r0, time.Since(r0),
					map[string]any{"src": src, "tuples": n})
			}
			if m.last {
				break
			}
		}
		st.recvGot[src] = got
		if st.exchTupleCounters != nil {
			st.exchTupleCounters[src].Add(got)
		}
		if got > rl.srcCnt[src] && mismatch == nil {
			mismatch = fmt.Errorf("core: task %d received %d tuples from %d, index predicts at most %d — input changed since IndexCreate?",
				st.rank, got, src, rl.srcCnt[src])
		}
	}
	if obs != nil {
		st.counter("exchange/chunks_recv").Add(uint64(landed))
	}
	return mismatch
}

// sortLayoutFiltered replaces the plan's histogram-derived sortLayout when
// tuple counts are dynamic: regions are the P part-filled source areas of
// kmerIn (per-thread sub-regions no longer have knowable extents), and the
// per-(region, partition) counts come from one counting scan of the
// received tuples. The scan is the price of filtering — O(received) reads,
// charged to LocalSort, against the 40%+ of tuples that never arrived.
func (st *taskState) sortLayoutFiltered(s int, rl recvLayout) sortLayout {
	t0 := time.Now()
	p := st.p
	P, T := p.cfg.Tasks, p.cfg.Threads
	l := sortLayout{
		partOff:   make([]uint64, T),
		partCnt:   make([]uint64, T),
		partBinLo: make([]int, T),
		partBinHi: make([]int, T),
		regionOff: rl.srcOff,
		regionCnt: st.recvGot,
		scatter:   make([]uint64, P*T),
	}
	for d := 0; d < T; d++ {
		l.partBinLo[d], l.partBinHi[d] = p.pt.ThreadRange(s, st.rank, d)
	}
	thrCuts := p.pt.ThreadCuts(s, st.rank)
	binLo := thrCuts[0]
	lut := make([]uint16, thrCuts[len(thrCuts)-1]-binLo)
	for d := 0; d < len(thrCuts)-1; d++ {
		for b := thrCuts[d] - binLo; b < thrCuts[d+1]-binLo; b++ {
			lut[b] = uint16(d)
		}
	}
	cnt := make([]uint64, P*T)
	in := st.in
	k, m := p.idx.Opts.K, p.idx.Opts.M
	par.For(T, P, func(r int) {
		off, n := rl.srcOff[r], st.recvGot[r]
		row := cnt[r*T : r*T+T]
		if in.wide() {
			for i := off; i < off+n; i++ {
				row[lut[binOf128(in.hi[i], in.lo[i], k, m)-binLo]]++
			}
		} else {
			shift := 2 * uint(k-m)
			for i := off; i < off+n; i++ {
				row[lut[int(in.lo[i]>>shift)-binLo]]++
			}
		}
	})
	var pOff uint64
	for d := 0; d < T; d++ {
		l.partOff[d] = pOff
		for r := 0; r < P; r++ {
			l.scatter[r*T+d] = pOff
			pOff += cnt[r*T+d]
			l.partCnt[d] += cnt[r*T+d]
		}
	}
	d := time.Since(t0)
	st.rep.Steps.LocalSort += d
	st.stepSpan("LocalSort", t0, d)
	return l
}
