package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"metaprep/internal/index"
	"metaprep/internal/obsv"
)

// counterTotal sums an observed run's counter across ranks.
func counterTotal(obs *obsv.Collector, name string) uint64 {
	var n uint64
	for _, cv := range obs.Counters() {
		if cv.Name == name {
			n += cv.Value
		}
	}
	return n
}

// prefilter_test.go pins the two-pass probabilistic singleton prefilter: at
// MinCount 2 the labels are identical to the exact pipeline's across every
// schedule (the filter's errors keep extra singletons, never drop repeated
// k-mers), the tuple volume genuinely shrinks, and the knobs validate.

// TestPrefilterLosslessMinCount2 runs the full parity matrix — 64/128-bit
// keys × task counts × bulk/streaming exchange × in-RAM/spilled LocalSort —
// and checks prefiltered labels against the exact run, plus that the
// prefiltered run enumerated strictly fewer tuples (the dataset mixes
// overlapping reads with pure-noise reads, so true singletons abound).
func TestPrefilterLosslessMinCount2(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"64bit", 11},
		{"128bit", 35},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			opts := index.Options{K: tc.k, M: 4, ChunkSize: 2000}
			td := overlappingDataset(t, rng, opts, 4, 400, 160, 50)
			want := naiveLabels(td, tc.k, false, Filter{})

			exact, err := Run(Default(td.idx))
			if err != nil {
				t.Fatal(err)
			}
			assertSameLabels(t, want, exact.Labels)

			for _, tasks := range []int{1, 3} {
				for _, stream := range []int{0, 64} {
					for _, spill := range []int64{0, 1 << 17} {
						cfg := Default(td.idx)
						cfg.Tasks = tasks
						cfg.Threads = 2
						cfg.Passes = 2
						cfg.ExchangeChunkTuples = stream
						cfg.SpillBudgetBytes = spill
						cfg.Prefilter = Prefilter{BitsPerKmer: 8}
						res, err := Run(cfg)
						if err != nil {
							t.Fatalf("P=%d stream=%d spill=%d: %v", tasks, stream, spill, err)
						}
						assertSameLabels(t, want, res.Labels)
						if res.Tuples >= exact.Tuples {
							t.Errorf("P=%d stream=%d spill=%d: prefiltered run enumerated %d tuples, exact %d — nothing dropped",
								tasks, stream, spill, res.Tuples, exact.Tuples)
						}
					}
				}
			}
		})
	}
}

// TestPrefilterMinCountRaisesThreshold checks that MinCount composes with
// run semantics the same way Filter.Min does: k-mers below the global
// threshold contribute no edges, so prefiltering at MinCount f matches the
// exact pipeline run with Filter.Min = f when the filter is sized large
// enough that false positives are rare (FP-kept k-mers still pass through
// the exact per-run frequency check downstream — labels can only match or
// keep extra edges, and with Filter.Min set equally, exactly match modulo
// FPs that this sizing makes negligible on the fixture).
func TestPrefilterMinCountRaisesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 150, 40)
	// The exact reference applies the same threshold via the §4.4 filter,
	// so any label difference is a prefilter false *negative* — impossible
	// — or a dropped shared k-mer, which MinCount deliberately causes and
	// Filter.Min mirrors.
	for _, mc := range []int{2, 3, 4} {
		cfg := Default(td.idx)
		cfg.Tasks = 2
		cfg.Threads = 2
		cfg.Filter = Filter{Min: uint32(mc)}
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pf := cfg
		pf.Prefilter = Prefilter{BitsPerKmer: 16, MinCount: mc}
		got, err := Run(pf)
		if err != nil {
			t.Fatalf("MinCount=%d: %v", mc, err)
		}
		assertSameLabels(t, canonLabels(want.Labels), got.Labels)
		if got.Tuples > want.Tuples {
			t.Errorf("MinCount=%d: prefiltered tuples %d exceed exact %d", mc, got.Tuples, want.Tuples)
		}
	}
}

// TestPrefilterValidate pins the typed Validate errors for the knobs.
func TestPrefilterValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	td := genDataset(t, rng, smallOpts(), 1, 20, 40)
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"bits negative", func(c *Config) { c.Prefilter.BitsPerKmer = -1 }, "Prefilter.BitsPerKmer"},
		{"bits huge", func(c *Config) { c.Prefilter.BitsPerKmer = 65 }, "Prefilter.BitsPerKmer"},
		{"mincount without bits", func(c *Config) { c.Prefilter.MinCount = 2 }, "Prefilter.MinCount"},
		{"mincount too low", func(c *Config) { c.Prefilter = Prefilter{BitsPerKmer: 8, MinCount: 1} }, "Prefilter.MinCount"},
		{"mincount too high", func(c *Config) { c.Prefilter = Prefilter{BitsPerKmer: 8, MinCount: 9} }, "Prefilter.MinCount"},
		{"dynamic offsets", func(c *Config) {
			c.Prefilter = Prefilter{BitsPerKmer: 8}
			c.DynamicOffsets = true
		}, "Prefilter"},
		{"artifact out", func(c *Config) {
			c.Prefilter = Prefilter{BitsPerKmer: 8}
			c.ArtifactOut = "x.mpa"
		}, "Prefilter"},
	}
	for _, tc := range cases {
		cfg := Default(td.idx)
		tc.mut(&cfg)
		err := cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
	// And the happy paths.
	for _, pf := range []Prefilter{{}, {BitsPerKmer: 8}, {BitsPerKmer: 12, MinCount: 4}} {
		cfg := Default(td.idx)
		cfg.Prefilter = pf
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid prefilter %+v rejected: %v", pf, err)
		}
	}
}

// TestPrefilterCancelMidPass1 cancels during the prefilter's pass-1 scan
// (the scan polls ctx at every chunk, before the first pipeline pass
// starts) and checks prompt, leak-free unwinding — under -race this shakes
// out the combine's abort paths.
func TestPrefilterCancelMidPass1(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 300, 40)

	base := runtime.NumGoroutine()
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.PrefetchChunks = 2
	cfg.Prefilter = Prefilter{BitsPerKmer: 8}

	ctx := newChunkCancelCtx(3)
	res, err := RunContext(ctx, cfg)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after mid-prefilter cancel: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("RunContext returned a result alongside cancellation")
	}
	flipped := ctx.cancelledAt()
	if flipped.IsZero() {
		t.Fatalf("context never flipped: the run finished before %d chunk polls", ctx.limit)
	}
	if lat := returned.Sub(flipped); lat > time.Second {
		t.Fatalf("cancellation latency %v, want <= 1s", lat)
	}
	waitGoroutines(t, base, 2, 5*time.Second)
}

// TestPrefilterCounters checks the observability surface: the prefilter
// counters exist and are plausible after an observed run.
func TestPrefilterCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	td := overlappingDataset(t, rng, smallOpts(), 4, 400, 120, 40)
	cfg := Default(td.idx)
	cfg.Tasks = 2
	cfg.Threads = 2
	cfg.Obs = obsv.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	exactKmers := counterTotal(cfg.Obs, "kmergen/kmers")

	cfg2 := Default(td.idx)
	cfg2.Tasks = 2
	cfg2.Threads = 2
	cfg2.Prefilter = Prefilter{BitsPerKmer: 8}
	cfg2.Obs = obsv.New()
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	keptKmers := counterTotal(cfg2.Obs, "kmergen/kmers")
	saved := counterTotal(cfg2.Obs, "prefilter/tuples_saved")
	if keptKmers+saved != exactKmers {
		t.Errorf("kept %d + saved %d != exact %d", keptKmers, saved, exactKmers)
	}
	if saved == 0 {
		t.Errorf("prefilter saved no tuples on a singleton-rich dataset")
	}
	if counterTotal(cfg2.Obs, "prefilter/filter_bytes") == 0 {
		t.Errorf("prefilter/filter_bytes not recorded")
	}
	if counterTotal(cfg2.Obs, "prefilter/build_us") == 0 {
		t.Errorf("prefilter/build_us not recorded")
	}
	found := false
	for _, cv := range cfg2.Obs.Counters() {
		if strings.HasPrefix(cv.Name, "prefilter/est_fp_rate") {
			found = true
		}
	}
	if !found {
		t.Errorf("prefilter/est_fp_rate not recorded")
	}
}
