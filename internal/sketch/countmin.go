package sketch

// CountMin is a count–min sketch of saturating 8-bit counters, the
// approximate k-mer counter behind digital normalization. Row i's cell is
// selected by double hashing (h1 + i·h2, range-reduced per row), so a key
// is mixed once for the whole sketch instead of once per row. Not safe for
// concurrent use.
type CountMin struct {
	width uint64
	depth int
	rows  []uint8 // depth × width, row-major
}

// NewCountMin returns a width×depth sketch.
func NewCountMin(width, depth int) *CountMin {
	return &CountMin{
		width: uint64(width),
		depth: depth,
		rows:  make([]uint8, uint64(width)*uint64(depth)),
	}
}

// cell returns the flat index of the key's counter in row d.
func (c *CountMin) cell(h1, h2 uint64, d int) uint64 {
	return uint64(d)*c.width + reduce(h1+uint64(d)*h2, c.width)
}

// Estimate returns the key's count estimate: the minimum over rows, which
// can only overestimate the true count.
func (c *CountMin) Estimate(h1, h2 uint64) uint8 {
	est := uint8(255)
	for d := 0; d < c.depth; d++ {
		if v := c.rows[c.cell(h1, h2, d)]; v < est {
			est = v
		}
	}
	return est
}

// Add increments the key's count (saturating, conservative update: only
// rows at the current minimum are bumped, reducing overestimates).
func (c *CountMin) Add(h1, h2 uint64) {
	est := c.Estimate(h1, h2)
	if est == 255 {
		return
	}
	for d := 0; d < c.depth; d++ {
		if p := &c.rows[c.cell(h1, h2, d)]; *p == est {
			*p = est + 1
		}
	}
}

// SizeBytes is the counter array's memory footprint.
func (c *CountMin) SizeBytes() int64 { return int64(len(c.rows)) }
