// Package sketch holds the probabilistic summaries the pipeline and its
// satellites share: a blocked Bloom filter, the "seen ≥ n times" repeat
// ladder behind the singleton prefilter, and the count–min sketch digital
// normalization uses — all driven by one k-mer hash family.
//
// Every structure derives its probe positions from a single (h1, h2) pair
// per key by double hashing (row i probes at h1 + i·h2), so a k-mer is
// mixed once no matter how many rows or levels consult it. Range reduction
// uses the multiply-shift trick (the high word of h·N) instead of a modulo,
// keeping the per-probe cost to a multiply.
package sketch

import "math/bits"

// splitmix64 is the finalization mix of the SplitMix64 generator — a cheap,
// well-distributed 64→64 bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Hash maps a canonical k-mer, packed as (hi, lo) — hi is 0 on the 64-bit
// key path — to the (h1, h2) pair every sketch in this package probes with.
// h2 is forced odd so the double-hashing stride h1 + i·h2 walks distinct
// positions for every row count.
func Hash(hi, lo uint64) (h1, h2 uint64) {
	h1 = splitmix64(lo ^ splitmix64(hi))
	h2 = splitmix64(h1) | 1
	return h1, h2
}

// reduce maps a 64-bit hash onto [0, n) without a modulo: the high word of
// the 128-bit product h·n is uniform over the range when h is.
func reduce(h, n uint64) uint64 {
	q, _ := bits.Mul64(h, n)
	return q
}
