package sketch

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBloomNoFalseNegatives pins the filter's one-sided error: every added
// key must be reported present.
func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(10_000, 8)
	rng := rand.New(rand.NewSource(1))
	keys := make([][2]uint64, 10_000)
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
		h1, h2 := Hash(keys[i][0], keys[i][1])
		b.Add(h1, h2)
	}
	for i, k := range keys {
		h1, h2 := Hash(k[0], k[1])
		if !b.Contains(h1, h2) {
			t.Fatalf("key %d missing: false negative", i)
		}
	}
}

// TestBloomFPRate checks the measured false-positive rate against the
// f^probes estimate within a loose factor — the sizing math the prefilter's
// est_fp_rate counter relies on.
func TestBloomFPRate(t *testing.T) {
	b := NewBloom(50_000, 8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		h1, h2 := Hash(0, rng.Uint64())
		b.Add(h1, h2)
	}
	probes := 200_000
	fp := 0
	for i := 0; i < probes; i++ {
		h1, h2 := Hash(1, rng.Uint64()) // disjoint key space
		if b.Contains(h1, h2) {
			fp++
		}
	}
	measured := float64(fp) / float64(probes)
	est := b.EstFPRate()
	if measured > 4*est+0.01 {
		t.Fatalf("measured FP rate %.4f far above estimate %.4f", measured, est)
	}
	if est > 0.2 {
		t.Fatalf("estimate %.4f implausibly high at 8 bits/key", est)
	}
}

// TestRepeatFilterLadder pins the core ladder property: after n inserts of
// a key, Keep (the top level) contains it iff n ≥ MinCount — with false
// positives allowed only in the keep direction.
func TestRepeatFilterLadder(t *testing.T) {
	const n = 5000
	f := NewRepeatFilter(3*n, 12, 2)
	rng := rand.New(rand.NewSource(3))
	once := make([][2]uint64, n)
	twice := make([][2]uint64, n)
	for i := 0; i < n; i++ {
		once[i] = [2]uint64{0, rng.Uint64()}
		twice[i] = [2]uint64{0, rng.Uint64()}
		h1, h2 := Hash(once[i][0], once[i][1])
		f.Insert(h1, h2)
		h1, h2 = Hash(twice[i][0], twice[i][1])
		f.Insert(h1, h2)
		f.Insert(h1, h2)
	}
	// Level-0 FPs can make a first insert climb, so the landing count is
	// FP-deflated — but never inflated.
	if got := f.Landed(0); got > 2*n || got < 2*n*95/100 {
		t.Fatalf("landed level 0 = %d, want ≈%d (first inserts land modulo FPs)", got, 2*n)
	}
	f.Normalize()
	keep := f.Keep()
	for i, k := range twice {
		h1, h2 := Hash(k[0], k[1])
		if !keep.Contains(h1, h2) {
			t.Fatalf("repeated key %d not in keep set: false negative", i)
		}
	}
	kept := 0
	for _, k := range once {
		h1, h2 := Hash(k[0], k[1])
		if keep.Contains(h1, h2) {
			kept++
		}
	}
	// FPs may keep some singletons; at 12 bits/key most must be dropped.
	if kept > n/4 {
		t.Fatalf("%d/%d singletons survive the filter — FP rate implausible", kept, n)
	}
	// The singleton estimate tracks the true count (FPs deflate it only).
	est := f.Landed(0) - f.Landed(1)
	if est > uint64(n) || est < uint64(n)*9/10 {
		t.Fatalf("singleton estimate %d, true %d", est, n)
	}
}

// TestRepeatFilterInsertRace exercises concurrent inserts of overlapping
// key sets under -race: the atomic OR must keep the ladder free of false
// negatives regardless of interleaving.
func TestRepeatFilterInsertRace(t *testing.T) {
	const n = 2000
	f := NewRepeatFilter(n, 8, 2)
	keys := make([][2]uint64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				h1, h2 := Hash(k[0], k[1])
				f.Insert(h1, h2)
			}
		}()
	}
	wg.Wait()
	f.Normalize()
	keep := f.Keep()
	for i, k := range keys {
		h1, h2 := Hash(k[0], k[1])
		if !keep.Contains(h1, h2) {
			t.Fatalf("key %d inserted 4× missing from keep set", i)
		}
	}
}

// TestRepeatFilterMerge checks the cross-rank combine against a brute-force
// count: keys are scattered across simulated ranks with known per-rank
// multiplicities, and the merged keep set must contain exactly the keys
// whose global count reaches MinCount (plus FPs, in the keep direction
// only).
func TestRepeatFilterMerge(t *testing.T) {
	for _, minCount := range []int{2, 3, 4} {
		const ranks = 3
		const n = 3000
		fs := make([]*RepeatFilter, ranks)
		for r := range fs {
			fs[r] = NewRepeatFilter(n, 16, minCount)
		}
		rng := rand.New(rand.NewSource(int64(5 + minCount)))
		type key struct {
			hi, lo uint64
			total  int
		}
		keys := make([]key, n)
		for i := range keys {
			k := key{hi: 0, lo: rng.Uint64()}
			h1, h2 := Hash(k.hi, k.lo)
			// Scatter a random multiplicity across ranks.
			for r := 0; r < ranks; r++ {
				c := rng.Intn(minCount) // 0..minCount-1: no rank alone decides
				k.total += c
				for j := 0; j < c; j++ {
					fs[r].Insert(h1, h2)
				}
			}
			keys[i] = k
		}
		for r := range fs {
			fs[r].Normalize()
		}
		for r := 1; r < ranks; r++ {
			fs[0].Merge(fs[r].Levels())
		}
		keep := fs[0].Keep()
		fp := 0
		for i, k := range keys {
			h1, h2 := Hash(k.hi, k.lo)
			in := keep.Contains(h1, h2)
			if k.total >= minCount && !in {
				t.Fatalf("minCount=%d key %d with global count %d missing from merged keep set",
					minCount, i, k.total)
			}
			if k.total < minCount && in {
				fp++
			}
		}
		if fp > n/5 {
			t.Fatalf("minCount=%d: %d/%d below-threshold keys kept — merge inflates too much",
				minCount, fp, n)
		}
	}
}

// TestMergeRangeParity pins the sub-range combine's correctness claim: P
// ranks each owning a contiguous word range and MergeRanging only their
// slice of every peer's ladder yields, once the owned ranges are stitched
// together, the bit-identical ladder of a single-rank full Merge fold.
// This is the invariant the prefilter's all-to-all combine relies on.
func TestMergeRangeParity(t *testing.T) {
	for _, tc := range []struct {
		ranks, minCount int
	}{{2, 2}, {3, 4}, {5, 3}, {7, 2}} {
		const n = 2000
		build := func() []*RepeatFilter {
			fs := make([]*RepeatFilter, tc.ranks)
			rng := rand.New(rand.NewSource(int64(100*tc.ranks + tc.minCount)))
			for r := range fs {
				fs[r] = NewRepeatFilter(n, 16, tc.minCount)
			}
			for i := 0; i < n; i++ {
				hi, lo := rng.Uint64(), rng.Uint64()
				h1, h2 := Hash(hi, lo)
				for r := range fs {
					for c := rng.Intn(tc.minCount + 1); c > 0; c-- {
						fs[r].Insert(h1, h2)
					}
				}
			}
			for r := range fs {
				fs[r].Normalize()
			}
			return fs
		}

		// Reference: full-ladder fold at "rank 0".
		ref := build()
		for r := 1; r < tc.ranks; r++ {
			ref[0].Merge(ref[r].Levels())
		}

		// Sub-range combine: each rank owns a contiguous word range and
		// folds only its slice of every peer's ladder.
		fs := build()
		nw := fs[0].NWords()
		cut := func(r int) uint64 { return nw * uint64(r) / uint64(tc.ranks) }
		for own := range fs {
			lo, hi := cut(own), cut(own+1)
			for peer := range fs {
				if peer == own {
					continue
				}
				sub := make([][]uint64, tc.minCount)
				for i, lv := range fs[peer].Levels() {
					sub[i] = append([]uint64(nil), lv[lo:hi]...)
				}
				fs[own].MergeRange(sub, lo, hi)
			}
		}
		// Stitch the owned ranges and compare every level word for word.
		for i := 0; i < tc.minCount; i++ {
			for own := range fs {
				lo, hi := cut(own), cut(own+1)
				for w := lo; w < hi; w++ {
					if got, want := fs[own].Levels()[i][w], ref[0].Levels()[i][w]; got != want {
						t.Fatalf("ranks=%d minCount=%d level %d word %d: sub-range %#x != full merge %#x",
							tc.ranks, tc.minCount, i, w, got, want)
					}
				}
			}
		}
	}
}

// TestCountMinConservative pins the count–min invariants: estimates never
// undercount, and with a roomy sketch they are exact.
func TestCountMinConservative(t *testing.T) {
	cm := NewCountMin(1<<16, 4)
	rng := rand.New(rand.NewSource(6))
	truth := make(map[uint64]int)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	for i := 0; i < 20_000; i++ {
		k := keys[rng.Intn(len(keys))]
		truth[k]++
		h1, h2 := Hash(0, k)
		cm.Add(h1, h2)
	}
	for k, want := range truth {
		h1, h2 := Hash(0, k)
		got := int(cm.Estimate(h1, h2))
		capped := want
		if capped > 255 {
			capped = 255
		}
		if got < capped {
			t.Fatalf("key %x undercounted: got %d, true %d", k, got, want)
		}
		if got != capped {
			t.Fatalf("key %x overcounted in a roomy sketch: got %d, true %d", k, got, want)
		}
	}
}

// TestCountMinSaturates pins the 8-bit ceiling.
func TestCountMinSaturates(t *testing.T) {
	cm := NewCountMin(64, 2)
	h1, h2 := Hash(0, 42)
	for i := 0; i < 300; i++ {
		cm.Add(h1, h2)
	}
	if got := cm.Estimate(h1, h2); got != 255 {
		t.Fatalf("estimate %d after 300 adds, want saturation at 255", got)
	}
}

// TestHashStrideOdd pins the double-hashing precondition: h2 is always odd,
// so h1 + i·h2 cycles through distinct positions.
func TestHashStrideOdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		_, h2 := Hash(rng.Uint64(), rng.Uint64())
		if h2&1 == 0 {
			t.Fatalf("h2 %x is even", h2)
		}
	}
}
