package sketch

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// bloom.go implements the word-blocked Bloom filter and the repeat ladder
// built from it.
//
// A blocked Bloom filter confines all of a key's probe bits to one 64-bit
// word (selected by h1), so a membership query costs a single cache line:
// the probe mask is assembled from 6-bit chunks of h2 and tested with one
// AND. The false-positive rate for b probes at fill fraction f is ≈ f^b —
// slightly worse than an unblocked filter of equal size, in exchange for
// one memory access per query instead of b.

// maxProbes bounds the per-word probe count: 8 chunks of 6 bits consume 48
// of h2's 64 bits, and past 8 probes per word the blocked FP rate is
// dominated by block collisions anyway.
const maxProbes = 8

// maxLadderLevels bounds RepeatFilter depth; the prefilter's MinCount knob
// validates against the same limit.
const maxLadderLevels = 8

// probesFor derives the per-word probe count from a bits-per-key budget:
// the classic k ≈ (m/n)·ln2 optimum rounded to b = bits/2, clamped to
// [1, maxProbes].
func probesFor(bitsPerKey int) int {
	b := bitsPerKey / 2
	if b < 1 {
		b = 1
	}
	if b > maxProbes {
		b = maxProbes
	}
	return b
}

// probeMask assembles a key's in-word probe bits from consecutive 6-bit
// chunks of h2. Chunks may collide, so the mask carries between 1 and
// probes set bits.
func probeMask(h2 uint64, probes int) uint64 {
	var m uint64
	for i := 0; i < probes; i++ {
		m |= 1 << ((h2 >> (6 * i)) & 63)
	}
	return m
}

// Bloom is a word-blocked Bloom filter. Add is safe for concurrent use
// (one atomic OR per insert); Contains must not race with Add unless the
// caller tolerates missing in-flight inserts.
type Bloom struct {
	words  []uint64
	probes int
}

// NewBloom sizes a filter for the expected key count at the given
// bits-per-key budget.
func NewBloom(keys uint64, bitsPerKey int) *Bloom {
	w := (keys*uint64(bitsPerKey) + 63) / 64
	if w < 1 {
		w = 1
	}
	return &Bloom{words: make([]uint64, w), probes: probesFor(bitsPerKey)}
}

// BloomFromWords wraps an existing bitmap — the receive side of a filter
// broadcast — as a queryable Bloom. The words are aliased, not copied.
func BloomFromWords(words []uint64, probes int) *Bloom {
	return &Bloom{words: words, probes: probes}
}

// Add inserts the key with hash pair (h1, h2).
func (b *Bloom) Add(h1, h2 uint64) {
	w := reduce(h1, uint64(len(b.words)))
	atomic.OrUint64(&b.words[w], probeMask(h2, b.probes))
}

// Contains reports whether the key may have been added. False positives
// occur at roughly FillFraction^probes; false negatives never.
func (b *Bloom) Contains(h1, h2 uint64) bool {
	m := probeMask(h2, b.probes)
	return b.words[reduce(h1, uint64(len(b.words)))]&m == m
}

// Words exposes the underlying bitmap for transport (read-only by
// convention).
func (b *Bloom) Words() []uint64 { return b.words }

// Probes returns the per-word probe count queries use.
func (b *Bloom) Probes() int { return b.probes }

// SizeBytes is the bitmap's memory footprint.
func (b *Bloom) SizeBytes() int64 { return int64(len(b.words)) * 8 }

// FillFraction is the fraction of set bits.
func (b *Bloom) FillFraction() float64 {
	var ones int
	for _, w := range b.words {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(len(b.words)*64)
}

// EstFPRate estimates the false-positive probability of Contains from the
// current fill: every one of the (up to) probes bits must be set, and in a
// blocked filter each is an independent draw from the same word population.
func (b *Bloom) EstFPRate() float64 {
	return math.Pow(b.FillFraction(), float64(b.probes))
}

// RepeatFilter answers "was this key seen at least MinCount times?" with
// one-sided error: a ladder of MinCount blocked Bloom levels where an
// insert sets the key's probe bits in the first level that does not already
// contain them. After n inserts of a key, levels 1..min(n, MinCount)
// contain it, so level MinCount is the "seen ≥ MinCount times" set. False
// positives only promote keys (they are kept when they could have been
// dropped — the safe direction); false negatives cannot occur, even under
// concurrent inserts: the atomic OR returns the pre-update word, so among
// racing inserts of the same key exactly one observes each level as new.
//
// Per-rank filters combine exactly (modulo Bloom FPs): with n_r local
// occurrences on rank r, level i of rank r holds the key iff n_r ≥ i, and
// Σ_r min(n_r, L) ≥ L ⟺ Σ_r n_r ≥ L — the max-plus convolution Merge
// computes per bit position, after Normalize makes each rank's per-bit
// level sequence monotone.
type RepeatFilter struct {
	minCount int
	probes   int
	nwords   uint64
	// levels[i][w]: word w of the "seen ≥ i+1 times" bitmap.
	levels [][]uint64
	// landed[i] counts inserts that found level i new — landed[0]−landed[1]
	// estimates the keys seen exactly once locally.
	landed []atomic.Uint64
}

// NewRepeatFilter sizes a ladder for the expected distinct-key count: the
// total bits-per-key budget is split evenly across the minCount levels.
func NewRepeatFilter(keys uint64, bitsPerKey, minCount int) *RepeatFilter {
	if minCount < 2 {
		minCount = 2
	}
	if minCount > maxLadderLevels {
		minCount = maxLadderLevels
	}
	w := (keys*uint64(bitsPerKey) + 63) / 64 / uint64(minCount)
	if w < 1 {
		w = 1
	}
	f := &RepeatFilter{
		minCount: minCount,
		probes:   probesFor(bitsPerKey),
		nwords:   w,
		levels:   make([][]uint64, minCount),
		landed:   make([]atomic.Uint64, minCount),
	}
	for i := range f.levels {
		f.levels[i] = make([]uint64, w)
	}
	return f
}

// Insert records one occurrence of the key. Safe for concurrent use.
func (f *RepeatFilter) Insert(h1, h2 uint64) {
	w := reduce(h1, f.nwords)
	m := probeMask(h2, f.probes)
	for i := 0; i < f.minCount; i++ {
		if old := atomic.OrUint64(&f.levels[i][w], m); old&m != m {
			f.landed[i].Add(1)
			return
		}
	}
}

// Landed returns how many inserts found level i (0-based) new — an
// FP-deflated count of keys with local multiplicity > i.
func (f *RepeatFilter) Landed(i int) uint64 { return f.landed[i].Load() }

// MinCount returns the ladder depth L.
func (f *RepeatFilter) MinCount() int { return f.minCount }

// Probes returns the per-word probe count, needed to reconstruct a
// queryable Bloom from transported words.
func (f *RepeatFilter) Probes() int { return f.probes }

// SizeBytes is the ladder's total bitmap footprint.
func (f *RepeatFilter) SizeBytes() int64 {
	return int64(f.minCount) * int64(f.nwords) * 8
}

// Normalize makes the per-bit level sequence monotone (bit set in level i
// ⇒ set in every level below) by ANDing each level with its predecessor.
// This is sound per key — a key's own probe bits are set in a prefix of the
// levels by construction — and it is what Merge's convolution requires.
// Call once after all inserts, before Merge or Keep.
func (f *RepeatFilter) Normalize() {
	for i := 1; i < f.minCount; i++ {
		prev, cur := f.levels[i-1], f.levels[i]
		for w := range cur {
			cur[w] &= prev[w]
		}
	}
}

// Merge folds another rank's normalized ladder into this one: per bit
// position the level sequences behave like saturating counters, and the
// combined count is their sum, computed as a max-plus convolution
// R_i = OR over p+q=i of A_p & B_q (with A_0 = B_0 = all-ones). Merge is
// associative and commutative, so any fold order over ranks agrees. Both
// ladders must be Normalized and identically sized; src is not modified.
func (f *RepeatFilter) Merge(src [][]uint64) {
	f.MergeRange(src, 0, f.nwords)
}

// MergeRange is Merge restricted to the word range [lo, hi): src holds the
// peer ladder's slice of exactly that range (src[i] has length hi-lo,
// src[i][0] corresponding to absolute word lo), and only this filter's
// words in [lo, hi) are updated. Because the convolution is independent
// per word, partitioning the word space across ranks and letting each
// owner MergeRange its slice of every peer's ladder yields bit-for-bit
// the same result as full-ladder Merge at one rank — while shipping 1/P
// of each ladder instead of all of it. src is not modified.
func (f *RepeatFilter) MergeRange(src [][]uint64, lo, hi uint64) {
	L := f.minCount
	var out [maxLadderLevels]uint64
	for w := lo; w < hi; w++ {
		s := w - lo
		for i := 1; i <= L; i++ {
			r := f.levels[i-1][w] | src[i-1][s]
			for p := 1; p < i; p++ {
				r |= f.levels[p-1][w] & src[i-p-1][s]
			}
			out[i-1] = r
		}
		for i := 0; i < L; i++ {
			f.levels[i][w] = out[i]
		}
	}
}

// Levels exposes the raw level bitmaps for transport (read-only by
// convention).
func (f *RepeatFilter) Levels() [][]uint64 { return f.levels }

// NWords reports the per-level bitmap length in 64-bit words. Sub-range
// combines partition [0, NWords()) across ranks.
func (f *RepeatFilter) NWords() uint64 { return f.nwords }

// Keep returns the top level — the "seen ≥ MinCount times" set — as a
// queryable Bloom, aliasing the ladder's words. Valid after Normalize (and
// any Merges).
func (f *RepeatFilter) Keep() *Bloom {
	return &Bloom{words: f.levels[f.minCount-1], probes: f.probes}
}
