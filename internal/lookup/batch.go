package lookup

import (
	"runtime"
	"sync"
)

// Result is one key's answer in a batch run.
type Result struct {
	Label uint32
	Count uint32
	Found bool
}

// Batcher executes lookup batches shard-parallel on a fixed pool of
// persistent worker goroutines. Keys are bucketed by shard first (a
// counting sort over scratch buffers drawn from a pool), then contiguous
// shard groups are handed to workers, so each worker's page touches stay
// inside its shards and no goroutine is spawned per request — after
// warm-up a Run performs zero allocations (pinned by TestBatcherZeroAlloc).
type Batcher struct {
	workers int
	jobs    chan batchJob
	done    sync.WaitGroup
	scratch sync.Pool
}

type batchJob struct {
	lk     *Lookup
	s0, s1 int32 // shard group [s0, s1)
	hi, lo []uint64
	out    []Result
	perm   []int32
	start  []int32
	wg     *sync.WaitGroup
}

type batchScratch struct {
	sh    []int32 // shard per key
	perm  []int32 // key indexes grouped by shard
	start []int32 // shard group offsets into perm (len shards+1)
	pos   []int32 // scatter cursors
	wg    sync.WaitGroup
}

// NewBatcher starts a pool of workers (GOMAXPROCS when workers ≤ 0). Close
// it when done.
func NewBatcher(workers int) *Batcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &Batcher{workers: workers, jobs: make(chan batchJob, workers)}
	b.scratch.New = func() any { return new(batchScratch) }
	b.done.Add(workers)
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// Workers returns the pool size.
func (b *Batcher) Workers() int { return b.workers }

func (b *Batcher) worker() {
	defer b.done.Done()
	for j := range b.jobs {
		for s := j.s0; s < j.s1; s++ {
			for x := j.start[s]; x < j.start[s+1]; x++ {
				i := j.perm[x]
				var hi uint64
				if j.hi != nil {
					hi = j.hi[i]
				}
				lab, cnt, ok := j.lk.GetInShard(int(s), hi, j.lo[i])
				j.out[i] = Result{Label: lab, Count: cnt, Found: ok}
			}
		}
		j.wg.Done()
	}
}

// Close stops the worker pool; Run must not be called afterwards.
func (b *Batcher) Close() {
	close(b.jobs)
	b.done.Wait()
}

// smallBatch is the size below which bucketing costs more than it saves.
const smallBatch = 32

// Run answers out[i] for key (hi[i], lo[i]); hi may be nil for 64-bit
// lookups. len(out) must equal len(lo). Safe for concurrent use.
func (b *Batcher) Run(lk *Lookup, hi, lo []uint64, out []Result) {
	n := len(lo)
	if n == 0 {
		return
	}
	shards := lk.Shards()
	if n < smallBatch || b.workers == 1 || shards == 1 {
		runSeq(lk, hi, lo, out)
		return
	}
	sc := b.scratch.Get().(*batchScratch)
	if cap(sc.sh) < n {
		sc.sh = make([]int32, n)
		sc.perm = make([]int32, n)
	}
	sc.sh = sc.sh[:n]
	sc.perm = sc.perm[:n]
	if cap(sc.start) < shards+1 {
		sc.start = make([]int32, shards+1)
		sc.pos = make([]int32, shards+1)
	}
	sc.start = sc.start[:shards+1]
	sc.pos = sc.pos[:shards+1]

	// Counting sort by shard.
	for s := range sc.start {
		sc.start[s] = 0
	}
	for i := 0; i < n; i++ {
		var h uint64
		if hi != nil {
			h = hi[i]
		}
		s := int32(lk.ShardOf(h, lo[i]))
		sc.sh[i] = s
		sc.start[s+1]++
	}
	for s := 1; s <= shards; s++ {
		sc.start[s] += sc.start[s-1]
	}
	copy(sc.pos, sc.start)
	for i := 0; i < n; i++ {
		s := sc.sh[i]
		sc.perm[sc.pos[s]] = int32(i)
		sc.pos[s]++
	}

	// Greedy split of the shard sequence into ≤workers groups of roughly
	// equal key count.
	target := int32((n + b.workers - 1) / b.workers)
	var s0 int32
	var acc int32
	jobs := 0
	for s := int32(0); s < int32(shards); s++ {
		acc += sc.start[s+1] - sc.start[s]
		if acc >= target || s == int32(shards)-1 {
			sc.wg.Add(1)
			jobs++
			b.jobs <- batchJob{
				lk: lk, s0: s0, s1: s + 1,
				hi: hi, lo: lo, out: out,
				perm: sc.perm, start: sc.start, wg: &sc.wg,
			}
			s0, acc = s+1, 0
		}
	}
	_ = jobs
	sc.wg.Wait()
	b.scratch.Put(sc)
}

func runSeq(lk *Lookup, hi, lo []uint64, out []Result) {
	for i := range lo {
		var h uint64
		if hi != nil {
			h = hi[i]
		}
		lab, cnt, ok := lk.Get(h, lo[i])
		out[i] = Result{Label: lab, Count: cnt, Found: ok}
	}
}
