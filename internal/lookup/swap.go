package lookup

import "sync/atomic"

// Swapper publishes a Lookup to concurrent readers with refcounted
// epoch-based hot swap: Swap atomically replaces the served Lookup, and the
// replaced epoch's mapping is unmapped exactly when the last in-flight
// query that acquired it drains — readers never see a torn or closed map,
// and old-epoch memory is released promptly under live traffic.
//
// Protocol: every epoch starts with one owner reference held by the
// Swapper. Acquire increments the refcount with a CAS loop that refuses to
// resurrect a retired epoch (refs observed at 0 means the epoch was already
// replaced AND fully drained — the current pointer has necessarily moved
// on, so the reader reloads it). Swap installs the new epoch first, then
// drops the owner reference of the old one; whoever takes the count to
// zero — the swapper or the last draining reader — closes the Lookup.
type Swapper struct {
	cur atomic.Pointer[Epoch]
	seq atomic.Uint64
}

// NewSwapper returns a Swapper serving nothing; Acquire reports ok=false
// until the first Swap.
func NewSwapper() *Swapper { return &Swapper{} }

// Epoch is one published Lookup generation. Readers obtain one from
// Acquire and must call Release exactly once when done.
type Epoch struct {
	lk   *Lookup
	seq  uint64
	refs atomic.Int64
}

// Lookup returns the epoch's Lookup, valid until Release.
func (e *Epoch) Lookup() *Lookup { return e.lk }

// Seq returns the monotonically increasing swap sequence number, useful
// for reporting which generation answered a query.
func (e *Epoch) Seq() uint64 { return e.seq }

// Release drops one reference; the last one out closes the Lookup.
func (e *Epoch) Release() {
	if e.refs.Add(-1) == 0 && e.lk != nil {
		e.lk.Close()
	}
}

// Acquire pins the current epoch for reading. ok=false means nothing is
// being served. It allocates nothing.
func (s *Swapper) Acquire() (*Epoch, bool) {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil, false
		}
		n := e.refs.Load()
		for n > 0 {
			if e.refs.CompareAndSwap(n, n+1) {
				return e, true
			}
			n = e.refs.Load()
		}
		// refs hit zero between loading cur and the CAS: the epoch retired
		// and drained already, so cur has moved — reload it.
	}
}

// Swap publishes lk as the new current epoch and drops the owner reference
// of the previous one (closing it once in-flight readers drain). It
// returns the new epoch's sequence number.
func (s *Swapper) Swap(lk *Lookup) uint64 {
	ne := &Epoch{lk: lk, seq: s.seq.Add(1)}
	ne.refs.Store(1)
	if old := s.cur.Swap(ne); old != nil {
		old.Release()
	}
	return ne.seq
}

// Stop unpublishes the current epoch (Acquire reports ok=false) and drops
// its owner reference. Safe to call more than once.
func (s *Swapper) Stop() {
	if old := s.cur.Swap(nil); old != nil {
		old.Release()
	}
}
