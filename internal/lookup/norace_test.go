//go:build !race

package lookup

const raceEnabled = false
