// Package lookup implements the query tier's on-disk structure (ROADMAP
// item 5): a compact, page-aligned, mmap-able lookup file (`.mplk`) built
// offline from a partition artifact, and a concurrent read path that answers
// "which component does this k-mer belong to?" with one binary search inside
// one resident page run.
//
// File layout (format v1):
//
//	offset 0      magic "MPLK" + version byte + 3 reserved bytes
//	              zero padding to the 4 KiB page boundary
//	offset 4096   section: blocks  (fixed-stride, page-aligned key blocks)
//	              section: fence   (first key of every block, 16 bytes each)
//	              section: shards  (contiguous block ranges, 16 bytes each)
//	              section: hist    (k-mer frequency histogram, u64 per bin)
//	              section: meta    (JSON Meta)
//	trailer       TOC: one 32-byte entry per section
//	              uint32 TOC byte length, uint32 CRC32C(TOC)
//	              tail magic "MPLKend1"
//
// Each block is a structure-of-arrays page run holding blockKeys sorted keys
// plus their component label and multiplicity:
//
//	64-bit keys (k ≤ 31):  256 keys ×(lo u64 | label u32 | count u32) = 4096 B (1 page)
//	128-bit keys (k ≤ 63): 512 keys ×(hi u64 | lo u64 | label u32 | count u32) = 12288 B (3 pages)
//
// The final block pads unused slots with all-ones sentinel keys (never a
// valid ≤63-base canonical k-mer) and zero counts. The fence section (one
// first-key per block) is decoded into RAM at Open, so a Get is: binary
// search the shard table, binary search the shard's fences, then one binary
// search inside a single block — the only file bytes touched are that
// block's pages. Shards are contiguous balanced runs of whole blocks over
// the globally sorted key space, the same balanced-range partitioning the
// pipeline's k-mer→rank split uses (index.Partition), cut at build time.
//
// Unlike `.mpa` (CRC32 IEEE), every section CRC here is CRC32C (Castagnoli),
// pinned by TestLookupFormatGolden.
package lookup

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Format constants, pinned by TestLookupFormatGolden. Bumping FormatVersion
// is a breaking change: old readers must reject new files and vice versa.
const (
	FormatVersion = 1
	headerLen     = 8
	tocEntryLen   = 32
	trailerLen    = 16 // tocLen u32 + tocCRC u32 + tail magic
	pageSize      = 4096

	// Block geometry. Strides are page multiples so every block starts on a
	// page boundary (the blocks section itself starts at offset pageSize).
	blockKeys64    = 256 // 256×(8+4+4) = 4096 B, exactly one page
	blockStride64  = 4096
	blockKeys128   = 512 // 512×(8+8+4+4) = 12288 B, three pages
	blockStride128 = 12288
	maxTocSections = 64
)

var (
	magic     = [8]byte{'M', 'P', 'L', 'K', FormatVersion, 0, 0, 0}
	tailMagic = [8]byte{'M', 'P', 'L', 'K', 'e', 'n', 'd', '1'}

	// castagnoli is the CRC32C table; the artifact format uses IEEE, the
	// lookup format uses Castagnoli (hardware-accelerated on amd64/arm64).
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Section ids. Part of the format; new section kinds append.
const (
	secBlocks = 1
	secFence  = 2
	secShards = 3
	secHist   = 4
	secMeta   = 5
)

// ErrBadLookup is the sentinel wrapped by every structural error in a
// lookup file: bad magic, truncated file, checksum mismatch, inconsistent
// geometry. Callers test with errors.Is(err, ErrBadLookup).
var ErrBadLookup = errors.New("bad or corrupt lookup file")

// FormatError reports a structural defect in a lookup file. It unwraps to
// ErrBadLookup.
type FormatError struct {
	Path    string
	Section string
	Reason  string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("lookup %s: %s: %s", e.Path, e.Section, e.Reason)
}

func (e *FormatError) Unwrap() error { return ErrBadLookup }

func badf(path, section, format string, args ...any) error {
	return &FormatError{Path: path, Section: section, Reason: fmt.Sprintf(format, args...)}
}

// Meta is the provenance record stored in the meta section (JSON so the
// format can grow fields without a version bump).
type Meta struct {
	// K and M are the k-mer and minimizer lengths of the source artifact.
	K int `json:"k"`
	M int `json:"m"`
	// Wide marks 128-bit keys (k > 31) and selects the block geometry.
	Wide bool `json:"wide"`
	// BlockKeys is the key capacity of each block (geometry check).
	BlockKeys int `json:"block_keys"`
	// Keys is the number of distinct k-mers stored; Blocks and Shards
	// describe the layout.
	Keys   uint64 `json:"keys"`
	Blocks int    `json:"blocks"`
	Shards int    `json:"shards"`
	// Reads and FilterMin/FilterMax are carried over from the source
	// artifact's provenance.
	Reads     uint32 `json:"reads"`
	FilterMin int    `json:"filter_min"`
	FilterMax int    `json:"filter_max"`
	// IndexDigest pins the index that produced the source artifact.
	IndexDigest string `json:"index_digest,omitempty"`
	// Source is the base name of the artifact the lookup was built from;
	// SourceTuples its tuple count before dedup.
	Source       string `json:"source,omitempty"`
	SourceTuples uint64 `json:"source_tuples"`
}

// tocEntry is one 32-byte table-of-contents record (same shape as the
// artifact TOC).
type tocEntry struct {
	id    uint8
	flags uint8
	crc   uint32
	off   int64
	len   int64
	items uint64
}

func (e tocEntry) encode(dst []byte) {
	dst[0] = e.id
	dst[1] = e.flags
	dst[2], dst[3] = 0, 0
	putU32(dst[4:], e.crc)
	putU64(dst[8:], uint64(e.off))
	putU64(dst[16:], uint64(e.len))
	putU64(dst[24:], e.items)
}

func decodeTocEntry(src []byte) tocEntry {
	return tocEntry{
		id:    src[0],
		flags: src[1],
		crc:   getU32(src[4:]),
		off:   int64(getU64(src[8:])),
		len:   int64(getU64(src[16:])),
		items: getU64(src[24:]),
	}
}

func sectionName(id uint8) string {
	switch id {
	case secBlocks:
		return "blocks"
	case secFence:
		return "fence"
	case secShards:
		return "shards"
	case secHist:
		return "hist"
	case secMeta:
		return "meta"
	}
	return fmt.Sprintf("section#%d", id)
}

// geometry returns the block geometry for a key width.
func geometry(wide bool) (blockKeys, stride int) {
	if wide {
		return blockKeys128, blockStride128
	}
	return blockKeys64, blockStride64
}

// Little-endian helpers, open-coded so the hot Get path stays free of
// package-level bounds churn (encoding/binary inlines fine, but keeping
// them local makes the layout arithmetic greppable in one file).
func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
