//go:build unix

package lookup

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The returned cleanup unmaps; the caller may
// close f immediately (the mapping holds its own reference to the file).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
