//go:build !unix

package lookup

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the file into memory;
// the query path is identical, only the residency guarantee differs.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(b)) != size {
		return nil, nil, io.ErrUnexpectedEOF
	}
	return b, func() error { return nil }, nil
}
