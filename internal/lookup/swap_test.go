package lookup

import (
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprep/internal/artifact"
)

// TestSwapTorture hammers the Swapper with queries in flight while the
// served lookup is swapped many times (run under -race in CI): zero failed
// acquires, zero torn reads (every answer matches exactly one generation's
// label scheme), every retired epoch's mapping released once its readers
// drain, and no goroutine leaks.
func TestSwapTorture(t *testing.T) {
	dir := t.TempDir()
	const nkeys = 800

	// Two artifacts over the same key set whose labels differ by a fixed
	// offset — a torn or stale-after-close read would surface as a label
	// in neither scheme.
	const genOffset = 100000
	refA := writeTestArtifact(t, filepath.Join(dir, "a.mpa"), nkeys, false, 0, 99)
	refB := writeTestArtifact(t, filepath.Join(dir, "b.mpa"), nkeys, false, genOffset, 99)
	for i := range refA {
		if refA[i].lo != refB[i].lo || refA[i].label+genOffset != refB[i].label {
			t.Fatal("test artifacts do not line up")
		}
	}
	build := func(which string) string {
		ar, err := artifact.Open(filepath.Join(dir, which+".mpa"))
		if err != nil {
			t.Fatal(err)
		}
		defer ar.Close()
		p := filepath.Join(dir, which+".mplk")
		if _, err := Build(ar, p, BuildOptions{Shards: 4}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pathA, pathB := build("a"), build("b")

	goroutinesBefore := runtime.NumGoroutine()

	sw := NewSwapper()
	first, err := Open(pathA)
	if err != nil {
		t.Fatal(err)
	}
	sw.Swap(first)

	const readers = 8
	const swaps = 200
	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	old := make([]*Lookup, 0, swaps+1)
	old = append(old, first)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for !stop.Load() {
				ep, ok := sw.Acquire()
				if !ok {
					t.Error("Acquire failed while serving")
					return
				}
				lk := ep.Lookup()
				if lk.Closed() {
					t.Error("acquired a closed lookup")
					ep.Release()
					return
				}
				e := refA[i%nkeys]
				lab, cnt, found := lk.Get(e.hi, e.lo)
				if !found || cnt != e.count || (lab != e.label && lab != e.label+genOffset) {
					t.Errorf("torn read: key %d → (%d,%d,%v)", i%nkeys, lab, cnt, found)
					ep.Release()
					return
				}
				ep.Release()
				queries.Add(1)
				i++
			}
		}(r)
	}

	for s := 0; s < swaps; s++ {
		p := pathA
		if s%2 == 0 {
			p = pathB
		}
		lk, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		old = append(old, lk)
		sw.Swap(lk)
		if s%16 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// Let readers overlap the final generation for a moment, then stop.
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	sw.Stop()

	if q := queries.Load(); q == 0 {
		t.Fatal("no queries completed during the torture")
	}
	// Every epoch, including the last (released by Stop), must be closed
	// once its readers drained.
	for i, lk := range old {
		if !lk.Closed() {
			t.Fatalf("epoch %d not closed after drain", i)
		}
	}
	if _, ok := sw.Acquire(); ok {
		t.Fatal("Acquire succeeded after Stop")
	}

	// Goroutine-leak check: readers are joined and the Swapper owns no
	// goroutines, so the count must come back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore {
		t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, n)
	}
}

// TestSwapUnderBatcher swaps while batch queries run through the worker
// pool, ensuring the epoch pin covers a whole batch.
func TestSwapUnderBatcher(t *testing.T) {
	dir := t.TempDir()
	l, ref := buildTestLookup(t, dir, 1000, false, 4)
	sw := NewSwapper()
	sw.Swap(l)
	b := NewBatcher(4)
	defer b.Close()
	defer sw.Stop()

	lo := make([]uint64, 256)
	want := make([]Result, 256)
	for i := range lo {
		e := ref[i*3%len(ref)]
		lo[i] = e.lo
		want[i] = Result{Label: e.label, Count: e.count, Found: true}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]Result, len(lo))
		for !stop.Load() {
			ep, ok := sw.Acquire()
			if !ok {
				t.Error("acquire failed")
				return
			}
			b.Run(ep.Lookup(), nil, lo, out)
			ep.Release()
			for i := range out {
				if out[i] != want[i] {
					t.Errorf("batch result %d = %+v, want %+v", i, out[i], want[i])
					return
				}
			}
		}
	}()
	for s := 0; s < 50; s++ {
		nl, err := Open(filepath.Join(dir, "a.mplk"))
		if err != nil {
			t.Fatal(err)
		}
		sw.Swap(nl)
	}
	stop.Store(true)
	wg.Wait()
}
