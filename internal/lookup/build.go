package lookup

import (
	"bufio"
	"encoding/json"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"metaprep/internal/artifact"
)

// DefaultShards is the shard count used when BuildOptions.Shards is unset.
const DefaultShards = 16

// BuildOptions configure the offline builder.
type BuildOptions struct {
	// Shards is the number of contiguous block ranges the key space is cut
	// into (clamped to the block count; DefaultShards when ≤ 0). Queries
	// for different shards never touch the same pages, which is what makes
	// shard-parallel batch execution cache-friendly.
	Shards int
}

// BuildStats summarize a build.
type BuildStats struct {
	Keys   uint64 // distinct k-mers stored
	Blocks int
	Shards int
	Bytes  int64 // final file size
}

// Build converts an open artifact into a lookup file at path in a single
// streaming pass over the sorted tuple section: equal-key runs are collapsed
// on the fly into (key, label, multiplicity) entries and appended to
// fixed-stride blocks, so nothing but the label map (the serving payload
// itself) and one block buffer is ever resident. The file is written to a
// temp name in path's directory and renamed into place on success.
//
// Partition artifacts map each key to the component label of its first read
// and its tuple multiplicity; kmerset artifacts (whose tuple value already
// is the multiplicity) map to label 0.
func Build(ar *artifact.Reader, path string, opts BuildOptions) (BuildStats, error) {
	am := ar.Meta()
	partition := am.Kind == artifact.KindPartition
	var labels []uint32
	if partition {
		var err error
		if labels, err = ar.Labels(); err != nil {
			return BuildStats{}, err
		}
	}
	hist, err := ar.Hist()
	if err != nil {
		return BuildStats{}, err
	}

	blockKeys, stride := geometry(am.Wide)
	f, err := os.CreateTemp(filepath.Dir(path), ".mplk-*")
	if err != nil {
		return BuildStats{}, err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)

	// Header: magic padded to the first page so the blocks section is
	// page-aligned from offset pageSize on.
	var pad [pageSize]byte
	copy(pad[:], magic[:])
	if _, err := w.Write(pad[:]); err != nil {
		return BuildStats{}, err
	}

	// SoA offsets inside one block.
	var hiOff, loOff, labOff, cntOff int
	if am.Wide {
		hiOff, loOff = 0, 8*blockKeys
		labOff = loOff + 8*blockKeys
	} else {
		loOff = 0
		labOff = 8 * blockKeys
	}
	cntOff = labOff + 4*blockKeys

	blk := make([]byte, stride)
	var (
		kib      int // keys in the current block
		keys     uint64
		nblocks  int
		crcBlk   uint32
		fenceBuf []byte
	)
	emit := func(hi, lo uint64, label uint32, count uint64) error {
		if kib == 0 {
			var fe [16]byte
			putU64(fe[0:], hi)
			putU64(fe[8:], lo)
			fenceBuf = append(fenceBuf, fe[:]...)
		}
		if am.Wide {
			putU64(blk[hiOff+8*kib:], hi)
		}
		putU64(blk[loOff+8*kib:], lo)
		putU32(blk[labOff+4*kib:], label)
		if count > math.MaxUint32 {
			count = math.MaxUint32
		}
		putU32(blk[cntOff+4*kib:], uint32(count))
		kib++
		keys++
		if kib == blockKeys {
			crcBlk = crc32.Update(crcBlk, castagnoli, blk)
			if _, err := w.Write(blk); err != nil {
				return err
			}
			nblocks++
			kib = 0
		}
		return nil
	}
	flushPartial := func() error {
		if kib == 0 {
			return nil
		}
		// Pad unused slots with all-ones sentinel keys (sorting after every
		// valid k-mer) and zero counts, which Get treats as misses.
		for i := kib; i < blockKeys; i++ {
			if am.Wide {
				putU64(blk[hiOff+8*i:], ^uint64(0))
			}
			putU64(blk[loOff+8*i:], ^uint64(0))
			putU32(blk[labOff+4*i:], 0)
			putU32(blk[cntOff+4*i:], 0)
		}
		crcBlk = crc32.Update(crcBlk, castagnoli, blk)
		if _, err := w.Write(blk); err != nil {
			return err
		}
		nblocks++
		kib = 0
		return nil
	}

	st, err := ar.Kmers()
	if err != nil {
		return BuildStats{}, err
	}
	var (
		curHi, curLo uint64
		curLabel     uint32
		curCount     uint64
		have         bool
	)
	for {
		hi, lo, val, ok, serr := st.Next()
		if serr != nil {
			st.Close()
			return BuildStats{}, serr
		}
		if !ok {
			break
		}
		if have && hi == curHi && lo == curLo {
			if partition {
				curCount++
			} else {
				curCount += uint64(val)
			}
			continue
		}
		if have {
			if hi < curHi || (hi == curHi && lo < curLo) {
				st.Close()
				return BuildStats{}, badf(ar.Path(), "kmers", "tuple stream is not sorted")
			}
			if err := emit(curHi, curLo, curLabel, curCount); err != nil {
				st.Close()
				return BuildStats{}, err
			}
		}
		curHi, curLo, have = hi, lo, true
		if partition {
			if int(val) >= len(labels) {
				st.Close()
				return BuildStats{}, badf(ar.Path(), "kmers", "read id %d outside label map (%d reads)", val, len(labels))
			}
			curLabel, curCount = labels[val], 1
		} else {
			curLabel, curCount = 0, uint64(val)
		}
	}
	st.Close()
	if have {
		if err := emit(curHi, curLo, curLabel, curCount); err != nil {
			return BuildStats{}, err
		}
	}
	if err := flushPartial(); err != nil {
		return BuildStats{}, err
	}

	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if nblocks > 0 && shards > nblocks {
		shards = nblocks
	}
	if nblocks == 0 {
		shards = 1
	}
	shardBuf := make([]byte, 16*shards)
	q, r := nblocks/shards, nblocks%shards
	first := 0
	for s := 0; s < shards; s++ {
		n := q
		if s < r {
			n++
		}
		sk := uint64(n) * uint64(blockKeys)
		if n > 0 && first+n == nblocks { // last shard owns the partial tail block
			sk = keys - uint64(first)*uint64(blockKeys)
		}
		putU32(shardBuf[16*s:], uint32(first))
		putU32(shardBuf[16*s+4:], uint32(n))
		putU64(shardBuf[16*s+8:], sk)
		first += n
	}

	histBuf := make([]byte, 8*len(hist))
	for i, v := range hist {
		putU64(histBuf[8*i:], v)
	}

	meta := Meta{
		K: am.K, M: am.M, Wide: am.Wide,
		BlockKeys: blockKeys, Keys: keys, Blocks: nblocks, Shards: shards,
		Reads: am.Reads, FilterMin: am.FilterMin, FilterMax: am.FilterMax,
		IndexDigest:  am.IndexDigest,
		Source:       filepath.Base(ar.Path()),
		SourceTuples: am.Tuples,
	}
	metaBuf, err := json.Marshal(meta)
	if err != nil {
		return BuildStats{}, err
	}

	var blkFlags uint8
	if am.Wide {
		blkFlags = 1
	}
	toc := []tocEntry{
		{id: secBlocks, flags: blkFlags, crc: crcBlk, off: pageSize, len: int64(nblocks) * int64(stride), items: keys},
	}
	off := pageSize + int64(nblocks)*int64(stride)
	appendSec := func(id uint8, buf []byte, items uint64) error {
		toc = append(toc, tocEntry{
			id: id, crc: crc32.Checksum(buf, castagnoli),
			off: off, len: int64(len(buf)), items: items,
		})
		off += int64(len(buf))
		_, werr := w.Write(buf)
		return werr
	}
	if err := appendSec(secFence, fenceBuf, uint64(nblocks)); err != nil {
		return BuildStats{}, err
	}
	if err := appendSec(secShards, shardBuf, uint64(shards)); err != nil {
		return BuildStats{}, err
	}
	if err := appendSec(secHist, histBuf, uint64(len(hist))); err != nil {
		return BuildStats{}, err
	}
	if err := appendSec(secMeta, metaBuf, 1); err != nil {
		return BuildStats{}, err
	}

	tocBuf := make([]byte, tocEntryLen*len(toc))
	for i, e := range toc {
		e.encode(tocBuf[tocEntryLen*i:])
	}
	var trailer [trailerLen]byte
	putU32(trailer[0:], uint32(len(tocBuf)))
	putU32(trailer[4:], crc32.Checksum(tocBuf, castagnoli))
	copy(trailer[8:], tailMagic[:])
	if _, err := w.Write(tocBuf); err != nil {
		return BuildStats{}, err
	}
	if _, err := w.Write(trailer[:]); err != nil {
		return BuildStats{}, err
	}
	if err := w.Flush(); err != nil {
		return BuildStats{}, err
	}
	if err := f.Sync(); err != nil {
		return BuildStats{}, err
	}
	size := off + int64(len(tocBuf)) + trailerLen
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return BuildStats{}, err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return BuildStats{}, err
	}
	return BuildStats{Keys: keys, Blocks: nblocks, Shards: shards, Bytes: size}, nil
}
