//go:build race

package lookup

// raceEnabled gates allocation-count assertions: the race detector
// instruments synchronization with heap allocations, so AllocsPerRun is
// only meaningful in uninstrumented builds.
const raceEnabled = true
