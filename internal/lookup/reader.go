package lookup

import (
	"encoding/json"
	"hash/crc32"
	"os"
	"sync/atomic"
)

// Lookup is an open, memory-mapped lookup file. The fence-pointer index and
// shard table are decoded into RAM at Open; the key blocks stay on the map
// and a Get touches exactly one block's pages. All query methods are safe
// for concurrent use; Close must not race with queries — the Swapper's
// epoch refcount provides that guarantee for the serving path.
type Lookup struct {
	path  string
	data  []byte // whole-file map
	unmap func() error
	meta  Meta
	hist  []uint64

	wide      bool
	blockKeys int
	stride    int
	nblocks   int
	blocksOff int64

	// SoA offsets inside one block.
	hiOff, loOff, labOff, cntOff int

	fenceHi, fenceLo []uint64 // first key per block
	shardStart       []int32  // len shards+1, block index bounds
	shardHi, shardLo []uint64 // first key per shard

	closed atomic.Bool
}

// Open maps a lookup file and verifies its framing and every section CRC
// (CRC32C), including a full pass over the blocks section — a hot swap
// should never install a damaged file. Structural problems return errors
// wrapping ErrBadLookup.
func Open(path string) (*Lookup, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	data, unmap, err := mmapFile(f, size)
	// The map outlives the descriptor on every platform we build for.
	f.Close()
	if err != nil {
		return nil, err
	}
	l := &Lookup{path: path, data: data, unmap: unmap}
	if err := l.load(); err != nil {
		unmap()
		return nil, err
	}
	return l, nil
}

func (l *Lookup) load() error {
	data, path := l.data, l.path
	if int64(len(data)) < headerLen+trailerLen {
		return badf(path, "header", "file too short (%d bytes)", len(data))
	}
	if [headerLen]byte(data[:headerLen]) != magic {
		if string(data[:4]) == string(magic[:4]) {
			return badf(path, "header", "format version %d, want %d", data[4], FormatVersion)
		}
		return badf(path, "header", "bad magic %q", data[:headerLen])
	}
	tr := data[len(data)-trailerLen:]
	if [8]byte(tr[8:]) != tailMagic {
		return badf(path, "trailer", "bad tail magic (truncated file?)")
	}
	tocLen := int64(getU32(tr[0:]))
	tocCRC := getU32(tr[4:])
	tocOff := int64(len(data)) - trailerLen - tocLen
	if tocLen%tocEntryLen != 0 || tocLen > maxTocSections*tocEntryLen || tocOff < headerLen {
		return badf(path, "trailer", "implausible TOC length %d", tocLen)
	}
	toc := data[tocOff : tocOff+tocLen]
	if crc32.Checksum(toc, castagnoli) != tocCRC {
		return badf(path, "trailer", "TOC checksum mismatch")
	}
	secs := make(map[uint8]tocEntry, tocLen/tocEntryLen)
	for i := int64(0); i < tocLen; i += tocEntryLen {
		e := decodeTocEntry(toc[i:])
		if e.off < headerLen || e.len < 0 || e.off+e.len > tocOff {
			return badf(path, sectionName(e.id), "section out of bounds [%d,+%d)", e.off, e.len)
		}
		if _, dup := secs[e.id]; dup {
			return badf(path, sectionName(e.id), "duplicate section")
		}
		secs[e.id] = e
	}
	section := func(id uint8) ([]byte, error) {
		e, ok := secs[id]
		if !ok {
			return nil, badf(path, sectionName(id), "section missing")
		}
		buf := data[e.off : e.off+e.len]
		if crc32.Checksum(buf, castagnoli) != e.crc {
			return nil, badf(path, sectionName(id), "checksum mismatch")
		}
		return buf, nil
	}

	mj, err := section(secMeta)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(mj, &l.meta); err != nil {
		return badf(path, "meta", "bad JSON: %v", err)
	}
	m := l.meta
	blockKeys, stride := geometry(m.Wide)
	if m.BlockKeys != blockKeys {
		return badf(path, "meta", "block_keys %d, want %d", m.BlockKeys, blockKeys)
	}
	if m.Blocks < 0 || m.Shards < 1 {
		return badf(path, "meta", "implausible geometry: %d blocks, %d shards", m.Blocks, m.Shards)
	}
	// Bound the counts by what the file can physically hold before using
	// them in size arithmetic (overflow safety on corrupt metadata).
	if int64(m.Blocks) > int64(len(data))/int64(stride) {
		return badf(path, "meta", "%d blocks exceed file size", m.Blocks)
	}
	if m.Shards > m.Blocks && !(m.Blocks == 0 && m.Shards == 1) {
		return badf(path, "meta", "%d shards for %d blocks", m.Shards, m.Blocks)
	}
	maxKeys := uint64(m.Blocks) * uint64(blockKeys)
	if m.Keys > maxKeys || (m.Blocks > 0 && m.Keys <= maxKeys-uint64(blockKeys)) {
		return badf(path, "meta", "%d keys do not fit %d blocks", m.Keys, m.Blocks)
	}
	l.wide, l.blockKeys, l.stride, l.nblocks = m.Wide, blockKeys, stride, m.Blocks
	if m.Wide {
		l.hiOff, l.loOff = 0, 8*blockKeys
		l.labOff = l.loOff + 8*blockKeys
	} else {
		l.loOff, l.labOff = 0, 8*blockKeys
	}
	l.cntOff = l.labOff + 4*blockKeys

	be, ok := secs[secBlocks]
	if !ok {
		return badf(path, "blocks", "section missing")
	}
	wantFlags := uint8(0)
	if m.Wide {
		wantFlags = 1
	}
	if be.flags != wantFlags {
		return badf(path, "blocks", "section flags %#x disagree with meta %#x", be.flags, wantFlags)
	}
	if be.off%pageSize != 0 {
		return badf(path, "blocks", "section offset %d not page-aligned", be.off)
	}
	if be.len != int64(m.Blocks)*int64(stride) || be.items != m.Keys {
		return badf(path, "blocks", "section length %d/%d items disagree with meta", be.len, be.items)
	}
	if _, err := section(secBlocks); err != nil {
		return err
	}
	l.blocksOff = be.off

	fb, err := section(secFence)
	if err != nil {
		return err
	}
	if len(fb) != 16*m.Blocks {
		return badf(path, "fence", "length %d != 16×%d blocks", len(fb), m.Blocks)
	}
	l.fenceHi = make([]uint64, m.Blocks)
	l.fenceLo = make([]uint64, m.Blocks)
	for i := 0; i < m.Blocks; i++ {
		l.fenceHi[i] = getU64(fb[16*i:])
		l.fenceLo[i] = getU64(fb[16*i+8:])
		if i > 0 && keyLess(l.fenceHi[i], l.fenceLo[i], l.fenceHi[i-1], l.fenceLo[i-1]) {
			return badf(path, "fence", "fence keys not sorted at block %d", i)
		}
	}

	sb, err := section(secShards)
	if err != nil {
		return err
	}
	if len(sb) != 16*m.Shards {
		return badf(path, "shards", "length %d != 16×%d shards", len(sb), m.Shards)
	}
	l.shardStart = make([]int32, m.Shards+1)
	l.shardHi = make([]uint64, m.Shards)
	l.shardLo = make([]uint64, m.Shards)
	next := int64(0)
	for s := 0; s < m.Shards; s++ {
		first := int64(getU32(sb[16*s:]))
		n := int64(getU32(sb[16*s+4:]))
		if first != next || first+n > int64(m.Blocks) {
			return badf(path, "shards", "shard %d range [%d,+%d) not contiguous", s, first, n)
		}
		l.shardStart[s] = int32(first)
		if n > 0 {
			l.shardHi[s] = l.fenceHi[first]
			l.shardLo[s] = l.fenceLo[first]
		}
		next = first + n
	}
	if next != int64(m.Blocks) {
		return badf(path, "shards", "shards cover %d of %d blocks", next, m.Blocks)
	}
	l.shardStart[m.Shards] = int32(m.Blocks)

	hb, err := section(secHist)
	if err != nil {
		return err
	}
	if len(hb)%8 != 0 {
		return badf(path, "hist", "length %d not a multiple of 8", len(hb))
	}
	l.hist = make([]uint64, len(hb)/8)
	for i := range l.hist {
		l.hist[i] = getU64(hb[8*i:])
	}
	return nil
}

// keyLess reports (ahi,alo) < (bhi,blo) in 128-bit numeric order.
func keyLess(ahi, alo, bhi, blo uint64) bool {
	return ahi < bhi || (ahi == bhi && alo < blo)
}

// Meta returns the provenance record parsed by Open.
func (l *Lookup) Meta() Meta { return l.meta }

// Hist returns the k-mer frequency histogram copied from the source
// artifact (bin i counts distinct k-mers of multiplicity i, last bin
// clamped), so a serving process needs only the lookup file.
func (l *Lookup) Hist() []uint64 { return l.hist }

// Path returns the path the lookup was opened from.
func (l *Lookup) Path() string { return l.path }

// Size returns the mapped file size in bytes.
func (l *Lookup) Size() int64 { return int64(len(l.data)) }

// Keys returns the number of distinct k-mers stored.
func (l *Lookup) Keys() uint64 { return l.meta.Keys }

// Blocks returns the block count.
func (l *Lookup) Blocks() int { return l.nblocks }

// Shards returns the shard count.
func (l *Lookup) Shards() int { return len(l.shardStart) - 1 }

// ShardOf returns the shard whose key range contains (hi, lo). Keys below
// the first fence map to shard 0, where the block search reports a miss.
func (l *Lookup) ShardOf(hi, lo uint64) int {
	i, j := 0, len(l.shardHi)
	for i < j {
		m := int(uint(i+j) >> 1)
		if keyLess(hi, lo, l.shardHi[m], l.shardLo[m]) {
			j = m
		} else {
			i = m + 1
		}
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// Get returns the component label and multiplicity for a canonical k-mer
// key, ok=false if the key is not present. It allocates nothing.
func (l *Lookup) Get(hi, lo uint64) (label, count uint32, ok bool) {
	return l.GetInShard(l.ShardOf(hi, lo), hi, lo)
}

// GetInShard is Get with the shard already resolved (batch execution
// buckets keys by shard first, so the shard search is done once per run of
// keys, and all block pages a worker touches belong to one shard).
func (l *Lookup) GetInShard(shard int, hi, lo uint64) (label, count uint32, ok bool) {
	if !l.wide && hi != 0 {
		return 0, 0, false
	}
	// Last block in the shard whose fence is ≤ key.
	i, j := int(l.shardStart[shard]), int(l.shardStart[shard+1])
	for i < j {
		m := int(uint(i+j) >> 1)
		if keyLess(hi, lo, l.fenceHi[m], l.fenceLo[m]) {
			j = m
		} else {
			i = m + 1
		}
	}
	blk := i - 1
	if blk < int(l.shardStart[shard]) {
		return 0, 0, false
	}
	base := int(l.blocksOff) + blk*l.stride
	data := l.data
	// First slot in the block with key ≥ target. Sentinel padding in the
	// tail block is all-ones, so it never compares below a valid key.
	i, j = 0, l.blockKeys
	if l.wide {
		hiBase, loBase := base+l.hiOff, base+l.loOff
		for i < j {
			m := int(uint(i+j) >> 1)
			sh := getU64(data[hiBase+8*m:])
			sl := getU64(data[loBase+8*m:])
			if keyLess(sh, sl, hi, lo) {
				i = m + 1
			} else {
				j = m
			}
		}
		if i == l.blockKeys ||
			getU64(data[hiBase+8*i:]) != hi || getU64(data[loBase+8*i:]) != lo {
			return 0, 0, false
		}
	} else {
		loBase := base + l.loOff
		for i < j {
			m := int(uint(i+j) >> 1)
			if getU64(data[loBase+8*m:]) < lo {
				i = m + 1
			} else {
				j = m
			}
		}
		if i == l.blockKeys || getU64(data[loBase+8*i:]) != lo {
			return 0, 0, false
		}
	}
	count = getU32(data[base+l.cntOff+4*i:])
	if count == 0 { // sentinel padding
		return 0, 0, false
	}
	return getU32(data[base+l.labOff+4*i:]), count, true
}

// Closed reports whether Close has run — the swap tests use it to verify
// the old epoch's memory is released once the last in-flight query drains.
func (l *Lookup) Closed() bool { return l.closed.Load() }

// Close unmaps the file. Idempotent; must not race with queries (the
// Swapper guarantees this by refcounting epochs).
func (l *Lookup) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	if l.unmap != nil {
		return l.unmap()
	}
	return nil
}
