package lookup

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"metaprep/internal/artifact"
)

// refEntry is the expected answer for one key.
type refEntry struct {
	hi, lo uint64
	label  uint32
	count  uint32
}

// writeTestArtifact synthesizes a partition artifact with nkeys distinct
// sorted keys, 1–3 tuples per key, and a deterministic label per key.
// labelBase offsets every label so two artifacts over the same keys can be
// told apart (the swap torture test relies on this).
func writeTestArtifact(t *testing.T, path string, nkeys int, wide bool, labelBase uint32, seed int64) []refEntry {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := 21
	if wide {
		k = 33
	}
	mask := uint64(1)<<(2*21) - 1

	keys := make([]refEntry, 0, nkeys)
	seen := map[[2]uint64]bool{}
	for len(keys) < nkeys {
		var hi, lo uint64
		if wide {
			hi = rng.Uint64() & 3 // small hi so collisions in hi exercise lo compares
			lo = rng.Uint64()
		} else {
			lo = rng.Uint64() & mask
		}
		if seen[[2]uint64{hi, lo}] {
			continue
		}
		seen[[2]uint64{hi, lo}] = true
		keys = append(keys, refEntry{hi: hi, lo: lo})
	}
	sort.Slice(keys, func(i, j int) bool {
		return keyLess(keys[i].hi, keys[i].lo, keys[j].hi, keys[j].lo)
	})

	w, err := artifact.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(wide, false, 512); err != nil {
		t.Fatal(err)
	}
	var labels []uint32
	for i := range keys {
		n := 1 + rng.Intn(3)
		lab := labelBase + uint32(i%17)
		keys[i].label = lab
		keys[i].count = uint32(n)
		for j := 0; j < n; j++ {
			if err := w.Tuple(keys[i].hi, keys[i].lo, uint32(len(labels))); err != nil {
				t.Fatal(err)
			}
			labels = append(labels, lab)
		}
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Labels(labels); err != nil {
		t.Fatal(err)
	}
	hist := make([]uint64, 256)
	for i := range hist {
		hist[i] = uint64(i) * 7
	}
	if err := w.Hist(hist); err != nil {
		t.Fatal(err)
	}
	err = w.Finish(artifact.Meta{
		Kind: artifact.KindPartition, K: k, M: 8,
		Reads: uint32(len(labels)), FilterMin: 1, IndexDigest: "test-digest",
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func buildTestLookup(t *testing.T, dir string, nkeys int, wide bool, shards int) (*Lookup, []refEntry) {
	t.Helper()
	apath := filepath.Join(dir, "a.mpa")
	ref := writeTestArtifact(t, apath, nkeys, wide, 0, 42)
	ar, err := artifact.Open(apath)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	lpath := filepath.Join(dir, "a.mplk")
	st, err := Build(ar, lpath, BuildOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != uint64(nkeys) {
		t.Fatalf("built %d keys, want %d", st.Keys, nkeys)
	}
	bk, _ := geometry(wide)
	wantBlocks := (nkeys + bk - 1) / bk
	if st.Blocks != wantBlocks {
		t.Fatalf("built %d blocks, want %d", st.Blocks, wantBlocks)
	}
	l, err := Open(lpath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, ref
}

func TestBuildAndGet(t *testing.T) {
	for _, wide := range []bool{false, true} {
		name := "narrow"
		if wide {
			name = "wide"
		}
		t.Run(name, func(t *testing.T) {
			const nkeys = 3000
			l, ref := buildTestLookup(t, t.TempDir(), nkeys, wide, 4)
			if l.Shards() != 4 {
				t.Fatalf("shards = %d, want 4", l.Shards())
			}
			if l.Meta().IndexDigest != "test-digest" {
				t.Fatalf("meta digest = %q", l.Meta().IndexDigest)
			}
			if got := l.Hist()[3]; got != 21 {
				t.Fatalf("hist[3] = %d, want 21", got)
			}
			for i, e := range ref {
				lab, cnt, ok := l.Get(e.hi, e.lo)
				if !ok || lab != e.label || cnt != e.count {
					t.Fatalf("key %d: got (%d,%d,%v), want (%d,%d,true)", i, lab, cnt, ok, e.label, e.count)
				}
			}
			// Misses: probe keys adjacent to stored ones.
			misses := 0
			for _, e := range ref {
				if _, _, ok := l.Get(e.hi, e.lo+1); ok {
					continue // neighbor may legitimately exist
				}
				misses++
			}
			if misses == 0 {
				t.Fatal("no misses at all — miss path untested")
			}
			// Extremes.
			if _, _, ok := l.Get(0, 0); ok && ref[0].lo != 0 {
				t.Fatal("key (0,0) found but never stored")
			}
		})
	}
}

func TestBatcherParity(t *testing.T) {
	for _, wide := range []bool{false, true} {
		name := "narrow"
		if wide {
			name = "wide"
		}
		t.Run(name, func(t *testing.T) {
			l, ref := buildTestLookup(t, t.TempDir(), 2000, wide, 8)
			b := NewBatcher(4)
			defer b.Close()
			for _, n := range []int{0, 1, 17, 100, 2000} {
				hi := make([]uint64, n)
				lo := make([]uint64, n)
				out := make([]Result, n)
				rng := rand.New(rand.NewSource(int64(n)))
				for i := 0; i < n; i++ {
					e := ref[rng.Intn(len(ref))]
					hi[i], lo[i] = e.hi, e.lo
					if i%5 == 0 {
						lo[i] ^= 0x55 // mix in likely misses
					}
				}
				var hiArg []uint64
				if wide {
					hiArg = hi
				}
				b.Run(l, hiArg, lo, out)
				for i := 0; i < n; i++ {
					var h uint64
					if wide {
						h = hi[i]
					}
					lab, cnt, ok := l.Get(h, lo[i])
					if out[i] != (Result{Label: lab, Count: cnt, Found: ok}) {
						t.Fatalf("n=%d i=%d: batch %+v != direct (%d,%d,%v)", n, i, out[i], lab, cnt, ok)
					}
				}
			}
		})
	}
}

func TestEmptyArtifact(t *testing.T) {
	dir := t.TempDir()
	apath := filepath.Join(dir, "e.mpa")
	w, err := artifact.Create(apath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, false, 512); err != nil {
		t.Fatal(err)
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Labels(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(make([]uint64, 256)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(artifact.Meta{Kind: artifact.KindPartition, K: 21, M: 8}); err != nil {
		t.Fatal(err)
	}
	ar, err := artifact.Open(apath)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	lpath := filepath.Join(dir, "e.mplk")
	if _, err := Build(ar, lpath, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(lpath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, ok := l.Get(0, 12345); ok {
		t.Fatal("hit in empty lookup")
	}
}

// TestLookupFormatGolden pins the on-disk format: magic bytes, geometry,
// section ids, and bit-for-bit deterministic output for identical input.
func TestLookupFormatGolden(t *testing.T) {
	if magic != [8]byte{'M', 'P', 'L', 'K', 1, 0, 0, 0} {
		t.Fatalf("magic changed: %v", magic)
	}
	if tailMagic != [8]byte{'M', 'P', 'L', 'K', 'e', 'n', 'd', '1'} {
		t.Fatalf("tail magic changed: %v", tailMagic)
	}
	if FormatVersion != 1 || headerLen != 8 || tocEntryLen != 32 || trailerLen != 16 || pageSize != 4096 {
		t.Fatal("framing constants changed")
	}
	if blockKeys64 != 256 || blockStride64 != 4096 || blockKeys128 != 512 || blockStride128 != 12288 {
		t.Fatal("block geometry changed")
	}
	if secBlocks != 1 || secFence != 2 || secShards != 3 || secHist != 4 || secMeta != 5 {
		t.Fatal("section ids changed")
	}

	dir := t.TempDir()
	apath := filepath.Join(dir, "g.mpa")
	writeTestArtifact(t, apath, 700, false, 0, 7)
	var prev []byte
	for i := 0; i < 2; i++ {
		ar, err := artifact.Open(apath)
		if err != nil {
			t.Fatal(err)
		}
		lpath := filepath.Join(dir, "g.mplk")
		if _, err := Build(ar, lpath, BuildOptions{Shards: 3}); err != nil {
			t.Fatal(err)
		}
		ar.Close()
		raw, err := os.ReadFile(lpath)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && string(prev) != string(raw) {
			t.Fatal("build is not deterministic")
		}
		prev = raw
	}
	// Header and trailer framing.
	if string(prev[:8]) != string(magic[:]) {
		t.Fatalf("header bytes %v", prev[:8])
	}
	if string(prev[len(prev)-8:]) != string(tailMagic[:]) {
		t.Fatalf("trailer bytes %v", prev[len(prev)-8:])
	}
	// 700 keys → 3 blocks of 256; blocks at page 1, 5 sections in the TOC.
	if getU32(prev[len(prev)-16:]) != 5*tocEntryLen {
		t.Fatalf("TOC length %d, want %d", getU32(prev[len(prev)-16:]), 5*tocEntryLen)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := buildTestLookup(t, dir, 600, false, 2)
	l.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "a.mplk"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"magic":     func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"version":   func(b []byte) []byte { b[4] = 99; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"tail":      func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b },
		"block":     func(b []byte) []byte { b[pageSize+100] ^= 0xFF; return b },
		"toc":       func(b []byte) []byte { b[len(b)-trailerLen-10] ^= 0xFF; return b },
		"late":      func(b []byte) []byte { b[len(b)-trailerLen-tocEntryLen-40] ^= 0xFF; return b },
	}
	for name, mut := range cases {
		buf := append([]byte(nil), raw...)
		p := filepath.Join(dir, name+".mplk")
		if err := os.WriteFile(p, mut(buf), 0o644); err != nil {
			t.Fatal(err)
		}
		bad, err := Open(p)
		if err == nil {
			bad.Close()
			t.Fatalf("%s: corruption not detected", name)
		}
		if !errors.Is(err, ErrBadLookup) {
			t.Fatalf("%s: error %v does not wrap ErrBadLookup", name, err)
		}
	}
}

// TestGetZeroAlloc and TestBatcherZeroAlloc pin the acceptance criterion:
// the query path performs zero allocations per request after warm-up.
func TestGetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	l, ref := buildTestLookup(t, t.TempDir(), 1500, false, 4)
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			l.Get(ref[i].hi, ref[i].lo)
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v per run", n)
	}
}

func TestBatcherZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	l, ref := buildTestLookup(t, t.TempDir(), 1500, false, 8)
	b := NewBatcher(4)
	defer b.Close()
	n := 512
	lo := make([]uint64, n)
	out := make([]Result, n)
	for i := 0; i < n; i++ {
		lo[i] = ref[i%len(ref)].lo
	}
	b.Run(l, nil, lo, out) // warm up pools
	if a := testing.AllocsPerRun(50, func() {
		b.Run(l, nil, lo, out)
	}); a != 0 {
		t.Fatalf("Batcher.Run allocates %v per run after warm-up", a)
	}
}
