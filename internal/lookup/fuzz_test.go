package lookup

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"metaprep/internal/artifact"
)

// FuzzLookupCodec feeds mutated lookup files to Open: it must never panic
// and must either reject the bytes with an error wrapping ErrBadLookup or
// produce a Lookup whose query methods stay in bounds.
func FuzzLookupCodec(f *testing.F) {
	dir := f.TempDir()
	apath := filepath.Join(dir, "seed.mpa")
	w, err := artifact.Create(apath)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.BeginKmers(false, false, 64); err != nil {
		f.Fatal(err)
	}
	var labels []uint32
	for i := 0; i < 400; i++ {
		if err := w.Tuple(0, uint64(i)*977, uint32(i)); err != nil {
			f.Fatal(err)
		}
		labels = append(labels, uint32(i%7))
	}
	if err := w.EndKmers(); err != nil {
		f.Fatal(err)
	}
	if err := w.Labels(labels); err != nil {
		f.Fatal(err)
	}
	if err := w.Hist(make([]uint64, 256)); err != nil {
		f.Fatal(err)
	}
	if err := w.Finish(artifact.Meta{Kind: artifact.KindPartition, K: 21, M: 8, Reads: 400}); err != nil {
		f.Fatal(err)
	}
	ar, err := artifact.Open(apath)
	if err != nil {
		f.Fatal(err)
	}
	lpath := filepath.Join(dir, "seed.mplk")
	if _, err := Build(ar, lpath, BuildOptions{Shards: 2}); err != nil {
		f.Fatal(err)
	}
	ar.Close()
	seed, err := os.ReadFile(lpath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add([]byte("MPLK"))
	trunc := append([]byte(nil), seed...)
	trunc[pageSize+17] ^= 0xA5
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		p := filepath.Join(t.TempDir(), "in.mplk")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(p)
		if err != nil {
			if _, isPath := err.(*os.PathError); !isPath && !errors.Is(err, ErrBadLookup) {
				t.Fatalf("error %v wraps neither ErrBadLookup nor os.PathError", err)
			}
			return
		}
		defer l.Close()
		// Whatever opened must answer queries without going out of bounds.
		for i := uint64(0); i < 600; i += 13 {
			l.Get(0, i*977)
		}
		l.Get(^uint64(0), ^uint64(0))
		if l.Shards() < 1 {
			t.Fatalf("opened lookup reports %d shards", l.Shards())
		}
	})
}
