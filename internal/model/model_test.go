package model

import (
	"testing"
	"time"
)

func TestPaperWorkloads(t *testing.T) {
	for _, name := range []string{"HG", "LL", "MM", "IS"} {
		w := PaperWorkload(name)
		if w.Bases == 0 || w.Reads == 0 || w.Tuples == 0 {
			t.Errorf("%s: empty workload %+v", name, w)
		}
		if w.Tuples > w.Bases {
			t.Errorf("%s: tuples %d exceed bases %d", name, w.Tuples, w.Bases)
		}
	}
	if w := PaperWorkload("nope"); w.Bases != 0 {
		t.Error("unknown workload nonempty")
	}
}

func TestPredictISMatchesPaperHeadline(t *testing.T) {
	// The paper's headline: IS (223 Gbp) on 16 Edison nodes with 8 passes
	// runs in ~14 minutes; Fig. 7 shows ~860 s. The Edison-fitted model
	// must land in that neighborhood (generously ±50%).
	s := Predict(Edison(), PaperWorkload("IS"), Cluster{P: 16, T: 24, S: 8})
	total := s.Total()
	if total < 430*time.Second || total > 1300*time.Second {
		t.Errorf("IS@16 nodes predicted %v, paper ~860 s", total)
	}
	// And the 64-node, 2-pass run is ~3.25× faster (Fig. 7).
	s64 := Predict(Edison(), PaperWorkload("IS"), Cluster{P: 64, T: 24, S: 2})
	speedup := total.Seconds() / s64.Total().Seconds()
	if speedup < 2 || speedup > 5 {
		t.Errorf("16→64 node speedup = %.2f, paper 3.25", speedup)
	}
}

func TestPredictTable3Shape(t *testing.T) {
	// Varying passes on MM at 4 nodes must reproduce Table 3's directions:
	// KmerGen grows with S, KmerGen-Comm shrinks, LocalSort ~constant,
	// LocalCC shrinks, memory shrinks.
	w := PaperWorkload("MM")
	var prev Steps
	var prevMem int64
	for i, s := range []int{1, 2, 4, 8} {
		cur := Predict(Edison(), w, Cluster{P: 4, T: 24, S: s})
		mem := MemoryPerTask(w, Cluster{P: 4, T: 24, S: s})
		if i > 0 {
			if cur.KmerGen <= prev.KmerGen {
				t.Errorf("S=%d: KmerGen %v did not grow from %v", s, cur.KmerGen, prev.KmerGen)
			}
			if cur.KmerGenComm >= prev.KmerGenComm {
				t.Errorf("S=%d: KmerGen-Comm %v did not shrink from %v", s, cur.KmerGenComm, prev.KmerGenComm)
			}
			if cur.LocalCC >= prev.LocalCC {
				t.Errorf("S=%d: LocalCC %v did not shrink from %v", s, cur.LocalCC, prev.LocalCC)
			}
			if cur.LocalSort != prev.LocalSort {
				t.Errorf("S=%d: LocalSort changed: %v vs %v", s, cur.LocalSort, prev.LocalSort)
			}
			if mem >= prevMem {
				t.Errorf("S=%d: memory %d did not shrink from %d", s, mem, prevMem)
			}
		}
		prev, prevMem = cur, mem
	}
}

func TestPredictTable3Absolute(t *testing.T) {
	// The fitted constants should land near Table 3's measured values for
	// MM on 4 nodes (tolerances 40% — the point is magnitude, not digits).
	w := PaperWorkload("MM")
	s1 := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 1})
	approx := func(name string, got time.Duration, want float64) {
		g := got.Seconds()
		if g < want*0.6 || g > want*1.4 {
			t.Errorf("%s = %.2fs, Table 3 reports %.2fs", name, g, want)
		}
	}
	approx("KmerGen(S=1)", s1.KmerGen, 10.95)
	approx("KmerGenComm(S=1)", s1.KmerGenComm, 20.91)
	approx("LocalSort(S=1)", s1.LocalSort, 12.48)
	approx("LocalCC(S=1)", s1.LocalCC, 6.51)
	s8 := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 8})
	approx("KmerGenComm(S=8)", s8.KmerGenComm, 8.56)
	approx("LocalCC(S=8)", s8.LocalCC, 2.52)
}

func TestPredictOverlappedExchange(t *testing.T) {
	// The streaming chunked exchange hides communication behind KmerGen:
	// the modeled step must shrink versus the bulk exchange, stay positive
	// (the ε chunking overhead), and grow again as chunks degenerate to
	// single tuples (one message latency per tuple).
	w := PaperWorkload("MM")
	bulk := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 2})
	stream := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 2, ChunkTuples: 1 << 20})
	if stream.KmerGenComm >= bulk.KmerGenComm {
		t.Errorf("streaming KmerGen-Comm %v did not improve on bulk %v",
			stream.KmerGenComm, bulk.KmerGenComm)
	}
	if stream.KmerGenComm <= 0 {
		t.Errorf("streaming KmerGen-Comm %v, want > 0 (ε overhead)", stream.KmerGenComm)
	}
	if stream.Total() >= bulk.Total() {
		t.Errorf("streaming total %v did not improve on bulk %v", stream.Total(), bulk.Total())
	}
	// All other steps are untouched by the exchange schedule.
	stream.KmerGenComm = bulk.KmerGenComm
	if stream != bulk {
		t.Errorf("streaming changed a non-exchange step: %+v vs %+v", stream, bulk)
	}
	// Degenerate 1-tuple chunks pay a latency per tuple and must be worse
	// than sane chunking (and can exceed even the bulk exchange).
	tiny := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 2, ChunkTuples: 1})
	big := Predict(Edison(), w, Cluster{P: 4, T: 24, S: 2, ChunkTuples: 1 << 20})
	if tiny.KmerGenComm <= big.KmerGenComm {
		t.Errorf("1-tuple chunks %v not worse than 1M-tuple chunks %v",
			tiny.KmerGenComm, big.KmerGenComm)
	}
	// Single node: no exchange either way.
	p1 := Predict(Edison(), w, Cluster{P: 1, T: 24, S: 2, ChunkTuples: 1 << 20})
	if p1.KmerGenComm != 0 {
		t.Errorf("P=1 streaming KmerGen-Comm = %v, want 0", p1.KmerGenComm)
	}
}

func TestPredictThreadScaling(t *testing.T) {
	// Single node: more threads must shrink compute steps and not change
	// communication.
	w := PaperWorkload("HG")
	t1 := Predict(Edison(), w, Cluster{P: 1, T: 1, S: 1})
	t24 := Predict(Edison(), w, Cluster{P: 1, T: 24, S: 1})
	if t24.KmerGen >= t1.KmerGen || t24.LocalSort >= t1.LocalSort {
		t.Error("threads did not speed up compute steps")
	}
	if t1.KmerGenComm != 0 || t24.KmerGenComm != 0 {
		t.Error("single node has no exchange")
	}
	sp := t1.Total().Seconds() / t24.Total().Seconds()
	if sp < 5 || sp > 24 {
		t.Errorf("24-thread speedup = %.1f, want sublinear but substantial (Fig. 5: 14.5×)", sp)
	}
}

func TestPredictGangaSlower(t *testing.T) {
	// Fig. 5: an Edison node is ~5× faster than a Ganga node on HG, and
	// Ganga's relative thread scaling is worse (shared-FS writes).
	w := PaperWorkload("HG")
	e := Predict(Edison(), w, Cluster{P: 1, T: 24, S: 1})
	g := Predict(Ganga(), w, Cluster{P: 1, T: 24, S: 1})
	ratio := g.Total().Seconds() / e.Total().Seconds()
	if ratio < 2.5 {
		t.Errorf("Ganga only %.1f× slower than Edison", ratio)
	}
	eSp := Predict(Edison(), w, Cluster{P: 1, T: 1, S: 1}).Total().Seconds() / e.Total().Seconds()
	gSp := Predict(Ganga(), w, Cluster{P: 1, T: 1, S: 1}).Total().Seconds() / g.Total().Seconds()
	if gSp >= eSp {
		t.Errorf("Ganga relative speedup %.1f not worse than Edison %.1f", gSp, eSp)
	}
}

func TestPredictMultiNodeSpeedupShape(t *testing.T) {
	// Fig. 6: multi-node speedups are real but clearly sub-ideal because
	// of the exchange and merge steps.
	w := PaperWorkload("MM")
	base := Predict(Edison(), w, Cluster{P: 1, T: 24, S: 4}).Total().Seconds()
	prev := base
	for _, p := range []int{2, 4, 8, 16} {
		cur := Predict(Edison(), w, Cluster{P: p, T: 24, S: 4}).Total().Seconds()
		if cur >= prev {
			t.Errorf("P=%d did not improve on %d nodes", p, p/2)
		}
		prev = cur
	}
	sp16 := base / prev
	if sp16 < 2 || sp16 >= 16 {
		t.Errorf("16-node speedup = %.1f, want sub-ideal (paper: 7.5× for MM)", sp16)
	}
}

func TestMemoryPerTaskIS(t *testing.T) {
	// §3.7's worked example: IS with 8 passes, 16 tasks, 24 threads ≈
	// 49 GB per task (6 GB index + 7 GB chunks + 2×14 GB tuples + 8 GB p).
	w := PaperWorkload("IS")
	mem := MemoryPerTask(w, Cluster{P: 16, T: 24, S: 8})
	gb := float64(mem) / float64(1<<30)
	if gb < 35 || gb > 65 {
		t.Errorf("IS memory/task = %.1f GB, paper computes ≈49 GB", gb)
	}
}

func TestCalibrateProducesSaneRates(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes ~1s")
	}
	cal := Calibrate(t.TempDir())
	check := func(name string, v float64, lo, hi float64) {
		if v < lo || v > hi {
			t.Errorf("%s = %g, want within [%g, %g]", name, v, lo, hi)
		}
	}
	check("scan", cal.ScanBasesPerSec, 1e6, 1e10)
	check("emit", cal.EmitTuplesPerSec, 1e6, 1e10)
	check("sort", cal.SortTuplesPerSec, 1e5, 1e9)
	check("cc", cal.CCEdgesPerSec, 1e5, 1e9)
	check("absorb", cal.AbsorbOpsPerSec, 1e5, 1e9)
	check("readBW", cal.ReadBW, 1e7, 1e11)
	check("writeBW", cal.WriteBW, 1e7, 1e11)
	check("commBW", cal.CommBW, 1e7, 1e12)
	if cal.CCOptBoost < 1 {
		t.Errorf("CCOptBoost = %v", cal.CCOptBoost)
	}
}

func TestPredictMonotoneInWorkload(t *testing.T) {
	// A strictly larger workload must never predict a faster run.
	small := PaperWorkload("HG")
	big := PaperWorkload("MM")
	for _, c := range []Cluster{{P: 1, T: 1, S: 1}, {P: 4, T: 24, S: 2}, {P: 16, T: 24, S: 8}} {
		ts := Predict(Edison(), small, c).Total()
		tb := Predict(Edison(), big, c).Total()
		if tb <= ts {
			t.Errorf("cluster %+v: MM (%v) not slower than HG (%v)", c, tb, ts)
		}
	}
}

func TestPredictDegenerateDims(t *testing.T) {
	// Zero/negative dimensions clamp to 1 rather than dividing by zero.
	w := PaperWorkload("HG")
	s := Predict(Edison(), w, Cluster{P: 0, T: 0, S: 0})
	if s.Total() <= 0 {
		t.Errorf("degenerate cluster predicted %v", s.Total())
	}
}

func TestPredictBackHalfKnobs(t *testing.T) {
	// The back-half knobs must only move the back-half steps: delta merge
	// shrinks MergeComm and MergeCC, the star broadcast grows MergeComm, and
	// overlapped output shrinks CC-I/O — the front of the pipeline is
	// untouched by all three.
	w := PaperWorkload("MM")
	base := Predict(Edison(), w, Cluster{P: 16, T: 24, S: 2})

	assertFrontUnchanged := func(name string, got Steps) {
		t.Helper()
		if got.KmerGenIO != base.KmerGenIO || got.KmerGen != base.KmerGen ||
			got.KmerGenComm != base.KmerGenComm || got.LocalSort != base.LocalSort ||
			got.LocalCC != base.LocalCC {
			t.Errorf("%s changed a front-half step: %+v vs %+v", name, got, base)
		}
	}

	delta := Predict(Edison(), w, Cluster{P: 16, T: 24, S: 2, SparseDeltaMerge: true})
	assertFrontUnchanged("delta", delta)
	if delta.MergeComm >= base.MergeComm {
		t.Errorf("delta MergeComm %v did not improve on dense %v", delta.MergeComm, base.MergeComm)
	}
	if delta.MergeCC >= base.MergeCC {
		t.Errorf("delta MergeCC %v did not improve on dense %v", delta.MergeCC, base.MergeCC)
	}

	star := Predict(Edison(), w, Cluster{P: 16, T: 24, S: 2, StarBroadcast: true})
	assertFrontUnchanged("star", star)
	if star.MergeComm <= base.MergeComm {
		t.Errorf("star MergeComm %v not worse than tree %v", star.MergeComm, base.MergeComm)
	}
	if star.MergeCC != base.MergeCC || star.CCIO != base.CCIO {
		t.Errorf("star broadcast moved a non-broadcast step")
	}

	overlap := Predict(Edison(), w, Cluster{P: 16, T: 24, S: 2, OverlapOutput: true})
	assertFrontUnchanged("overlap", overlap)
	if overlap.CCIO >= base.CCIO {
		t.Errorf("overlapped CC-I/O %v did not improve on %v", overlap.CCIO, base.CCIO)
	}
	if hidden := base.CCIO - overlap.CCIO; hidden > base.MergeComm+base.MergeCC+time.Millisecond {
		t.Errorf("overlap hid %v, more than the merge phase offers (%v)",
			hidden, base.MergeComm+base.MergeCC)
	}

	// On a single node there is no merge phase to hide behind and no merge
	// or broadcast to restructure: every knob is a no-op at P=1.
	for _, c := range []Cluster{
		{P: 1, T: 24, S: 2, SparseDeltaMerge: true},
		{P: 1, T: 24, S: 2, StarBroadcast: true},
		{P: 1, T: 24, S: 2, OverlapOutput: true},
	} {
		if got := Predict(Edison(), w, c); got != Predict(Edison(), w, Cluster{P: 1, T: 24, S: 2}) {
			t.Errorf("P=1 cluster %+v changed the prediction", c)
		}
	}
}

func TestPredictNonSingletonFrac(t *testing.T) {
	// A sparser read graph (smaller f) must shrink the delta merge terms;
	// f=0 (unknown) must behave exactly like the conservative f=1.
	w := PaperWorkload("MM")
	c := Cluster{P: 16, T: 24, S: 2, SparseDeltaMerge: true}
	full := Predict(Edison(), w, c)
	wUnknown := w
	wUnknown.NonSingletonFrac = 0
	if got := Predict(Edison(), wUnknown, c); got != full {
		t.Errorf("f=0 differs from f=1: %+v vs %+v", got, full)
	}
	wSparse := w
	wSparse.NonSingletonFrac = 0.1
	sparse := Predict(Edison(), wSparse, c)
	if sparse.MergeComm >= full.MergeComm || sparse.MergeCC >= full.MergeCC {
		t.Errorf("f=0.1 merge (%v, %v) not below f=1 (%v, %v)",
			sparse.MergeComm, sparse.MergeCC, full.MergeComm, full.MergeCC)
	}
	// The dense path ignores f entirely.
	cd := Cluster{P: 16, T: 24, S: 2}
	if Predict(Edison(), wSparse, cd) != Predict(Edison(), w, cd) {
		t.Errorf("NonSingletonFrac leaked into the dense merge")
	}
}

func TestMergeWireBytes(t *testing.T) {
	w := PaperWorkload("HG")
	R := float64(w.Reads)
	// Dense at P=16: 15 merge sends + 15 broadcast edges of 4R bytes each.
	dense := MergeWireBytes(w, Cluster{P: 16})
	if want := int64(30 * 4 * R); dense != want {
		t.Errorf("dense wire bytes = %d, want %d", dense, want)
	}
	// The delta tree must ship strictly fewer bytes than the dense star at
	// P=16 — the acceptance criterion's modeled comparison — at every f.
	for _, f := range []float64{0, 0.3, 1} {
		wf := w
		wf.NonSingletonFrac = f
		delta := MergeWireBytes(wf, Cluster{P: 16, SparseDeltaMerge: true})
		if delta >= dense {
			t.Errorf("f=%.1f: delta-tree wire bytes %d not below dense %d", f, delta, dense)
		}
	}
	// Broadcast volume is schedule-independent; star changes serialization,
	// not bytes.
	if MergeWireBytes(w, Cluster{P: 16, StarBroadcast: true}) != dense {
		t.Errorf("star broadcast changed total wire bytes")
	}
	if MergeWireBytes(w, Cluster{P: 1}) != 0 {
		t.Errorf("P=1 has wire bytes")
	}
}

// TestPredictSpillKnobs pins the out-of-core model's shape: under-budget
// runs are untouched, spilling adds overhead that grows as the budget
// shrinks, compression trades disk bytes down, and the memory inventory is
// capped at the budget.
func TestPredictSpillKnobs(t *testing.T) {
	cal := Edison()
	w := PaperWorkload("MM")
	base := Cluster{P: 4, T: 24, S: 1, SparseDeltaMerge: true, OverlapOutput: true}

	inRAM := Predict(cal, w, base)
	passBytes := w.Tuples / int64(base.P) * int64(w.TupleBytes)

	// A budget the pass fits inside changes nothing.
	big := base
	big.SpillBudgetBytes = 2 * passBytes
	if got := Predict(cal, w, big); got != inRAM {
		t.Errorf("under-budget spill config changed the prediction:\n%+v\n%+v", got, inRAM)
	}

	// Halving the budget can only slow the run down, monotonically.
	prev := inRAM.Total()
	prevCC := inRAM.LocalCC
	for _, div := range []int64{4, 8, 16, 64} {
		c := base
		c.SpillBudgetBytes = passBytes / div
		s := Predict(cal, w, c)
		if s.Total() < prev {
			t.Errorf("budget 1/%d: total %v faster than larger budget %v", div, s.Total(), prev)
		}
		if s.LocalCC <= prevCC {
			t.Errorf("budget 1/%d: LocalCC %v not above %v (read-back + log(runs) merge term)", div, s.LocalCC, prevCC)
		}
		prev, prevCC = s.Total(), s.LocalCC
	}

	// Compression shrinks the disk terms of a spilling run.
	spill := base
	spill.SpillBudgetBytes = passBytes / 8
	comp := spill
	comp.SpillCompress = true
	su, sc := Predict(cal, w, spill), Predict(cal, w, comp)
	if sc.LocalCC >= su.LocalCC {
		t.Errorf("compressed read-back %v not below raw %v", sc.LocalCC, su.LocalCC)
	}
	if sc.Total() >= su.Total() {
		t.Errorf("compressed total %v not below raw %v", sc.Total(), su.Total())
	}

	// The memory model honors the cap: resident tuple bytes stop growing at
	// the budget while the in-RAM inventory keeps the full working set.
	memRAM := MemoryPerTask(w, base)
	memSpill := MemoryPerTask(w, spill)
	wantDrop := 2*int64(w.TupleBytes)*(w.Tuples/int64(base.P)) - spill.SpillBudgetBytes
	if memRAM-memSpill != wantDrop {
		t.Errorf("MemoryPerTask spill cap: got %d, want %d less than %d", memSpill, wantDrop, memRAM)
	}
}
