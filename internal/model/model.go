// Package model implements the analytic performance model of §3.7 as a
// small cluster simulator. It exists because wall-clock scaling curves
// cannot be measured on the single-core build host: the pipeline's real
// concurrent implementation is validated for correctness by the core
// package's tests, and this model — the paper's own cost analysis, with
// measured or Edison-fitted constants — regenerates the multi-node scaling
// figures (Figs. 5–7) and the multi-pass time/memory table (Table 3).
//
// The model follows §3.7's inventory. With M the total bases, R the reads,
// and the tuple count N ≈ M (one tuple per valid k-mer window):
//
//	KmerGen-I/O  = S·(disk bytes)/P ÷ io bandwidth      (S redundant reads)
//	KmerGen      = S·(M/P)/(T·scan) + (N/P)/(T·emit)
//	KmerGen-Comm = cross bytes · (1/β + warmup/S) + P·S·α
//	               (streaming: max(0, that − KmerGen) + chunks·α + 1 chunk/β)
//	LocalSort    = (N/P)/(T·sort)
//	LocalCC      = edges at base rate; passes ≥ 2 run ccOptBoost× faster
//	               under the §3.5.1 optimization
//	Merge        = ⌈log P⌉ rounds of 4R-byte transfers plus absorbs
//	               (delta merge: 8R·f total wire bytes and R·f absorbs,
//	               f = NonSingletonFrac, pipelined across ~2P messages)
//	Broadcast    = the 4R-byte label array back out: ⌈log P⌉ relay hops on
//	               the binomial tree, or P−1 serialized sends for the star
//	CC-I/O       = re-read + write of the partition output; with
//	               OverlapOutput the re-read hides behind Merge+Broadcast
//
// The KmerGen-Comm warmup term models the paper's observation that the
// first pass's exchange is much more expensive than later passes (Table 3:
// 20.9 s at S=1 falling to 8.6 s at S=8 for constant total bytes) — the
// cost is proportional to the bytes of the first pass, i.e. ∝ 1/S.
package model

import (
	"math"
	"time"

	"metaprep/internal/index"
)

// Workload describes a dataset as the model sees it.
type Workload struct {
	// Name labels the dataset in reports.
	Name string
	// Bases is M, total base pairs across all reads.
	Bases int64
	// DiskBytes is the FASTQ volume on disk.
	DiskBytes int64
	// Reads is R, the number of global read IDs.
	Reads int64
	// Tuples is the number of (k-mer, read) tuples enumerated.
	Tuples int64
	// Edges is the number of read-graph edges LocalCC processes. When 0,
	// Tuples is used as a proxy.
	Edges int64
	// TupleBytes is 12 for k ≤ 31 and 20 for k ≤ 63.
	TupleBytes int
	// IndexBytes is the resident size of merHist + FASTQPart, and
	// ChunkBytes the size of one FASTQ chunk, for the memory model.
	IndexBytes int64
	ChunkBytes int64
	// NonSingletonFrac is f, the fraction of reads whose parent pointer is
	// non-trivial by merge time — the entries a sparse or delta payload must
	// carry. 0 means unknown and is treated as 1.0 (every read shares a
	// k-mer with another), the conservative bound for metagenome data.
	NonSingletonFrac float64
	// SingletonKmerFrac is g, the fraction of enumerated tuples whose k-mer
	// occurs fewer than the prefilter's MinCount times globally — the mass
	// the Bloom gate can drop before the exchange. Real metagenomes sit high
	// (sequencing errors make most distinct k-mers singletons; ~50–80% of
	// tuple volume on error-rich short reads). 0 means unknown and is
	// treated as no droppable mass, the bound under which the prefilter is
	// pure overhead.
	SingletonKmerFrac float64
}

// FromIndex derives a Workload from a built index.
func FromIndex(idx *index.Index) Workload {
	var disk int64
	var chunk int64
	for ci := range idx.Chunks {
		disk += idx.Chunks[ci].Size
		if idx.Chunks[ci].Size > chunk {
			chunk = idx.Chunks[ci].Size
		}
	}
	tb := 12
	if !idx.Opts.Use64() {
		tb = 20
	}
	return Workload{
		Bases:      idx.TotalBases,
		DiskBytes:  disk,
		Reads:      int64(idx.Reads),
		Tuples:     int64(idx.TotalKmers),
		TupleBytes: tb,
		IndexBytes: idx.MemoryBytes(),
		ChunkBytes: chunk,
	}
}

// PaperWorkload returns the paper-scale datasets of Table 2 (HG, LL, MM,
// IS) for paper-scale predictions. Read length ~197 bp (M/R); tuples ≈
// bases minus (k-1) per read; disk bytes ≈ 2.5 bytes per base of FASTQ.
func PaperWorkload(name string) Workload {
	type row struct {
		reads float64 // ×1e6 read pairs
		gbp   float64
	}
	rows := map[string]row{
		"HG": {12.7, 2.29},
		"LL": {21.3, 4.26},
		"MM": {54.8, 11.07},
		"IS": {1132.8, 223.26},
	}
	r, ok := rows[name]
	if !ok {
		return Workload{}
	}
	bases := int64(r.gbp * 1e9)
	reads := int64(r.reads * 1e6)
	records := reads * 2
	tuples := bases - records*26 // k=27 windows lost per record
	if tuples < 0 {
		tuples = bases
	}
	disk := int64(float64(bases) * 2.5)
	chunks := int64(384) // Table 5: 384 chunks for HG/LL/MM, 1536 for IS
	if name == "IS" {
		chunks = 1536
	}
	return Workload{
		Name:       name,
		Bases:      bases,
		DiskBytes:  disk,
		Reads:      reads,
		Tuples:     tuples,
		TupleBytes: 12,
		// merHist (4 MB at m=10) plus 4 MB per chunk of FASTQPart (§3.7's
		// worked example: ≈6 GB for IS's 1536 chunks).
		IndexBytes: 4<<20 + chunks*(4<<20),
		ChunkBytes: disk / chunks,
	}
}

// Cluster is a machine configuration: P tasks (nodes), T threads each,
// S passes. ChunkTuples > 0 models the streaming chunked exchange
// (core.Config.ExchangeChunkTuples): KmerGen-Comm proceeds concurrently
// with KmerGen, so only the communication KmerGen cannot hide is charged,
// plus a per-chunk latency overhead. 0 models the bulk post-generation
// exchange.
type Cluster struct {
	P, T, S     int
	ChunkTuples int
	// SparseDeltaMerge models core.Config.SparseDeltaMerge: the §3.6 merge
	// ships change-only sparse payloads over a multi-round pipeline instead
	// of one dense 4R-byte array per tree hop, cutting both wire bytes and
	// absorb work by the workload's NonSingletonFrac.
	SparseDeltaMerge bool
	// StarBroadcast models the flat P−1-send label broadcast ablation; the
	// default is the ⌈log P⌉-hop binomial TreeBroadcast.
	StarBroadcast bool
	// OverlapOutput models the overlapped CC-I/O: the output re-read streams
	// while Merge-Comm/MergeCC run, so only the un-hidden read time is
	// charged to CC-I/O.
	OverlapOutput bool
	// SpillBudgetBytes models core.Config.SpillBudgetBytes: when a pass's
	// received tuple bytes exceed it, LocalSort runs out of core — sorted
	// runs stream to disk during the exchange (write-behind on a dedicated
	// worker, so only the cost generation cannot hide is charged) and
	// LocalCC pays the read-back plus a k-way merge term that grows with
	// log₂(runs). 0 keeps every pass in RAM.
	SpillBudgetBytes int64
	// SpillCompress models the varint/delta run codec: spilled bytes shrink
	// by SpillCompressRatio in both directions for extra encode/decode CPU
	// folded into the same disk terms.
	SpillCompress bool
	// PrefilterBits models core.Config.Prefilter.BitsPerKmer: a pass-1
	// enumeration-only scan builds a Bloom ladder sized at this many bits
	// per distinct k-mer, and pass 2's KmerGen drops tuples whose k-mer the
	// ladder never saw MinCount times. The scan re-reads and re-parses the
	// input once (charged to KmerGen-I/O and KmerGen) and the per-rank
	// filters combine over the wire (charged to KmerGen-Comm); in exchange
	// the workload's SingletonKmerFrac of the tuple volume never enters the
	// exchange, sort, spill, or CC terms. 0 disables the prefilter.
	PrefilterBits int
	// PrefilterMinCount is the ladder depth (core MinCount); 0 means the
	// default of 2. It only affects the modeled filter footprint — the
	// droppable mass at the chosen threshold is the workload's
	// SingletonKmerFrac.
	PrefilterMinCount int
}

// prefilterKeepFrac returns the modeled fraction of tuples surviving the
// Bloom gate: 1 with the prefilter off, else the repeated mass plus the
// false-positive share of the droppable mass. The FP term uses the classic
// b-bits-per-key Bloom optimum ≈ 0.6185^b — the blocked layout is slightly
// worse, the ladder's per-level split slightly better; the difference is
// noise next to the uncertainty in g itself.
func (c Cluster) prefilterKeepFrac(w Workload) float64 {
	if c.PrefilterBits <= 0 {
		return 1
	}
	g := w.SingletonKmerFrac
	if g < 0 {
		g = 0
	}
	if g > 1 {
		g = 1
	}
	fp := math.Pow(0.6185, float64(c.PrefilterBits))
	return 1 - g*(1-fp)
}

// prefilterBytes is the modeled ladder footprint: BitsPerKmer for every
// enumerated tuple (core sizes the filter on idx.TotalKmers — an upper
// bound on the distinct-key count), split across the MinCount levels.
func (c Cluster) prefilterBytes(w Workload) int64 {
	if c.PrefilterBits <= 0 {
		return 0
	}
	return int64(float64(w.Tuples) * float64(c.PrefilterBits) / 8)
}

// SpillCompressRatio is the modeled compressed/raw size of a spilled run.
// Sorted tuple keys delta-encode well: neighboring k-mer codes share high
// bits, so most gaps fit 2-3 varint bytes against 8 raw key bytes.
const SpillCompressRatio = 0.6

// spillRuns returns the modeled sorted-run count per pass, mirroring
// core's sizing: runs hold budget/3 bytes each (two exchange-facing
// builders plus sort scratch), so runs = ⌈passBytes / (budget/3)⌉.
func (c Cluster) spillRuns(passTupleBytes float64) float64 {
	if c.SpillBudgetBytes <= 0 || passTupleBytes <= float64(c.SpillBudgetBytes) {
		return 0
	}
	return math.Ceil(passTupleBytes / (float64(c.SpillBudgetBytes) / 3))
}

// Steps is the model's per-step prediction, aligned with core.StepTimes.
type Steps struct {
	KmerGenIO   time.Duration
	KmerGen     time.Duration
	KmerGenComm time.Duration
	LocalSort   time.Duration
	LocalCC     time.Duration
	MergeComm   time.Duration
	MergeCC     time.Duration
	CCIO        time.Duration
}

// Total sums the steps.
func (s Steps) Total() time.Duration {
	return s.KmerGenIO + s.KmerGen + s.KmerGenComm + s.LocalSort +
		s.LocalCC + s.MergeComm + s.MergeCC + s.CCIO
}

// Calibration holds the machine constants. Rates are per core; bandwidths
// per node.
type Calibration struct {
	// Name labels the machine ("edison", "ganga", "host").
	Name string
	// ScanBasesPerSec is FASTQ parsing + k-mer rolling throughput.
	ScanBasesPerSec float64
	// EmitTuplesPerSec is the marginal cost of binning and storing tuples.
	EmitTuplesPerSec float64
	// SortTuplesPerSec covers the partition plus 8-pass radix sort.
	SortTuplesPerSec float64
	// CCEdgesPerSec is union–find edge processing.
	CCEdgesPerSec float64
	// CCOptBoost is the speedup of LocalCC passes ≥ 2 under §3.5.1.
	CCOptBoost float64
	// AbsorbOpsPerSec is the MergeCC fold rate.
	AbsorbOpsPerSec float64
	// ReadBW / WriteBW are per-node file-system bandwidths; IOScalesWithT
	// marks file systems whose per-node bandwidth requires multiple
	// streams to saturate (Edison's Lustre) as opposed to ones serialized
	// regardless of threads (Ganga's shared NFS, §4.1.1). AggregateIOBW,
	// when nonzero, caps the file system's total bandwidth across all
	// nodes — the contention that makes "KmerGen-I/O not scale to high
	// process counts" in §4.1.2.
	ReadBW, WriteBW float64
	AggregateIOBW   float64
	IOScalesWithT   bool
	// PerThreadIOBW limits a single stream when IOScalesWithT.
	PerThreadIOBW float64
	// CommBW is the effective exchange bandwidth (bytes/s); Latency the
	// per-message cost; CommWarmup the first-pass extra seconds per byte.
	CommBW     float64
	Latency    time.Duration
	CommWarmup float64
	// CoreCap bounds the effective parallelism of the memory-bound compute
	// kernels: beyond it, extra threads only contend for the node's memory
	// bandwidth (Fig. 5's 14.5× ceiling on 24 Edison cores). 0 = no cap.
	CoreCap int
	// Startup is the fixed per-run cost (launch, opening every chunk,
	// first barriers). It does not shrink with P, which is why the paper's
	// smallest dataset scales worst across nodes (HG: 3.23× on 16 nodes).
	Startup time.Duration
	// LookupProbesPerSec is single-thread query-tier probe throughput
	// (shard + fence + in-block binary search) measured at the reference
	// 2^20-key lookup; see PredictQuerySeconds for the depth scaling.
	LookupProbesPerSec float64
}

// Edison returns constants fitted to the paper's own measurements (Table 3
// and §4's machine description: 24-core nodes, 99 GB/s STREAM, 8 GB/s
// links; effective exchange bandwidth and warmup fitted to the Table 3
// KmerGen-Comm column).
func Edison() Calibration {
	// Fitted to Table 3 (MM on 4 nodes, 24 threads/node): the published
	// KmerGen column covers both chunk reads and parsing, split here
	// half-and-half between ReadBW and ScanBasesPerSec so the per-pass sum
	// matches the measured 3.2 s/pass with a 7.7 s one-time emit cost.
	// Rates are fitted at the effective parallelism CoreCap=15, the point
	// where Edison's 24 threads saturate its memory system.
	return Calibration{
		Name:             "edison",
		ScanBasesPerSec:  115e6,
		EmitTuplesPerSec: 17.7e6,
		SortTuplesPerSec: 10.95e6,
		CCEdgesPerSec:    21e6,
		CCOptBoost:       3.2,
		AbsorbOpsPerSec:  8e6,
		ReadBW:           4.3e9,
		WriteBW:          2.6e9,
		AggregateIOBW:    30e9,
		IOScalesWithT:    true,
		PerThreadIOBW:    0.4e9,
		CommBW:           3.15e9,
		Latency:          time.Microsecond,
		CommWarmup:       0.75e-9,
		CoreCap:          15,
		Startup:          2 * time.Second,
		// A probe is ~28 dependent compares across three resident pages;
		// an Edison core sustains about 8M of them per second.
		LookupProbesPerSec: 8e6,
	}
}

// Ganga returns constants for the Penn State Ganga node of §4.1.1: a
// ~5× slower node whose shared file system does not scale parallel writes.
func Ganga() Calibration {
	// Ganga's cores are close to Edison's per-thread (§4.1.1's 5× gap at
	// full node width comes from having half the cores, a lower memory
	// ceiling, and a shared NFS whose reads and writes do not scale).
	c := Edison()
	c.Name = "ganga"
	c.ScanBasesPerSec /= 1.3
	c.EmitTuplesPerSec /= 1.3
	c.SortTuplesPerSec /= 1.3
	c.CCEdgesPerSec /= 1.3
	c.AbsorbOpsPerSec /= 1.3
	c.LookupProbesPerSec /= 1.3
	c.ReadBW = 0.15e9
	c.WriteBW = 0.06e9
	c.IOScalesWithT = false
	c.CoreCap = 8
	return c
}

// Predict evaluates the cost model. With PrefilterBits set, the pipeline
// terms are evaluated on the gated tuple volume (keepFrac · Tuples) and
// the pass-1 scan-and-combine cost is added on top of the KmerGen steps.
func Predict(cal Calibration, w Workload, c Cluster) Steps {
	if c.PrefilterBits <= 0 {
		return predictPipeline(cal, w, c)
	}
	keep := c.prefilterKeepFrac(w)
	wf := w
	wf.Tuples = int64(float64(w.Tuples) * keep)
	if w.Edges == 0 {
		// Keep the edge proxy on the unfiltered volume: dropped k-mers are
		// below the count threshold, so they produced no edges in the exact
		// run either — LocalCC and the merge shrink by far less than the
		// tuple volume does. (With measured Edges the caller already knows.)
		wf.Edges = w.Tuples
	}
	s := predictPipeline(cal, wf, c)
	pre := prefilterCost(cal, w, c)
	s.KmerGenIO += pre.KmerGenIO
	s.KmerGen += pre.KmerGen
	s.KmerGenComm += pre.KmerGenComm
	return s
}

// prefilterCost is the pass-1 bill: one extra read and parse of the whole
// input (at pass-1 the chunk prefetch path runs without tuple emission —
// inserts cost about one emit each), plus the sub-range cross-rank
// combine: the ladder's word space is partitioned into P owned ranges, an
// all-to-all ships each rank only its (P−1)/P share of every peer's
// ladder, each owner merges its range, rank 0 gathers the merged keep
// sub-ranges ((P−1)/P of one level), and ⌈log P⌉ broadcast hops return
// the assembled bitmap. Per-rank combine volume is thus ~fb + kb + log P·kb
// (kb = one level = fb/L) — flat in P, where the old rank-0 gather paid
// (P−1)·fb inbound at the root.
func prefilterCost(cal Calibration, w Workload, c Cluster) Steps {
	if c.P < 1 {
		c.P = 1
	}
	if c.T < 1 {
		c.T = 1
	}
	P := float64(c.P)
	T := float64(c.T)
	if cal.CoreCap > 0 && T > float64(cal.CoreCap) {
		T = float64(cal.CoreCap)
	}
	readBW := cal.ReadBW
	if cal.IOScalesWithT {
		readBW = minf(T*cal.PerThreadIOBW, cal.ReadBW)
	}
	if cal.AggregateIOBW > 0 {
		readBW = minf(readBW, cal.AggregateIOBW/P)
	}
	var s Steps
	s.KmerGenIO = sec(float64(w.DiskBytes) / P / readBW)
	s.KmerGen = sec(float64(w.Bases)/P/(T*cal.ScanBasesPerSec) +
		float64(w.Tuples)/P/(T*cal.EmitTuplesPerSec))
	if c.P > 1 {
		fb := float64(c.prefilterBytes(w))
		L := float64(c.prefilterLevels())
		kb := fb / L // one level: the keep bitmap's share of the ladder
		rounds := 0
		for step := 1; step < c.P; step <<= 1 {
			rounds++
		}
		s.KmerGenComm = sec((fb*(P-1)/P+kb*(P-1)/P+float64(rounds)*kb)/cal.CommBW) +
			time.Duration(2*(c.P-1)+rounds)*cal.Latency
	}
	return s
}

// prefilterLevels is the modeled ladder depth L: PrefilterMinCount clamped
// to the sketch package's [2, 8] range (core defaults unset MinCount to 2).
func (c Cluster) prefilterLevels() int {
	L := c.PrefilterMinCount
	if L < 2 {
		L = 2
	}
	if L > 8 {
		L = 8
	}
	return L
}

// predictPipeline evaluates the exact-pipeline cost model.
func predictPipeline(cal Calibration, w Workload, c Cluster) Steps {
	if c.P < 1 {
		c.P = 1
	}
	if c.T < 1 {
		c.T = 1
	}
	if c.S < 1 {
		c.S = 1
	}
	P := float64(c.P)
	T := float64(c.T)
	if cal.CoreCap > 0 && T > float64(cal.CoreCap) {
		T = float64(cal.CoreCap)
	}
	S := float64(c.S)
	edges := float64(w.Edges)
	if edges == 0 {
		edges = float64(w.Tuples)
	}
	tuplesTask := float64(w.Tuples) / P
	basesTask := float64(w.Bases) / P
	diskTask := float64(w.DiskBytes) / P

	readBW := cal.ReadBW
	writeBW := cal.WriteBW
	if cal.IOScalesWithT {
		readBW = minf(T*cal.PerThreadIOBW, cal.ReadBW)
		writeBW = minf(T*cal.PerThreadIOBW, cal.WriteBW)
	}
	if cal.AggregateIOBW > 0 {
		readBW = minf(readBW, cal.AggregateIOBW/P)
		writeBW = minf(writeBW, cal.AggregateIOBW/P)
	}

	var s Steps
	s.KmerGenIO = cal.Startup + sec(S*diskTask/readBW)
	s.KmerGen = sec(S*basesTask/(T*cal.ScanBasesPerSec) + tuplesTask/(T*cal.EmitTuplesPerSec))
	if c.P > 1 {
		cross := tuplesTask * float64(w.TupleBytes) * (P - 1) / P
		comm := sec(cross/cal.CommBW+cross*cal.CommWarmup/S) +
			time.Duration(float64(c.P)*S)*cal.Latency
		if c.ChunkTuples > 0 {
			// Streaming chunked exchange: tuples ship while KmerGen is
			// still producing, so the step models max(T_gen, T_comm)
			// instead of T_gen + T_comm — only the communication KmerGen
			// cannot hide is exposed, plus ε: one message latency per
			// chunk and the drain of the last in-flight chunk after
			// generation ends.
			chunkBytes := float64(c.ChunkTuples * w.TupleBytes)
			chunks := math.Ceil(cross / chunkBytes)
			eps := time.Duration(chunks)*cal.Latency + sec(chunkBytes/cal.CommBW)
			exposed := comm - s.KmerGen
			if exposed < 0 {
				exposed = 0
			}
			s.KmerGenComm = exposed + eps
		} else {
			s.KmerGenComm = comm
		}
	}
	s.LocalSort = sec(tuplesTask / (T * cal.SortTuplesPerSec))
	var spillCC time.Duration
	if runs := c.spillRuns(tuplesTask / S * float64(w.TupleBytes)); runs > 0 {
		// Out of core: each pass's tuples are sorted into `runs` bounded runs
		// and written behind the exchange by one dedicated worker, so
		// LocalSort is charged only what generation + exchange cannot hide.
		diskBytes := tuplesTask * float64(w.TupleBytes)
		if c.SpillCompress {
			diskBytes *= SpillCompressRatio
		}
		spillCost := sec(tuplesTask/cal.SortTuplesPerSec + diskBytes/writeBW)
		if hidden := s.KmerGen + s.KmerGenComm; spillCost > hidden {
			s.LocalSort = spillCost - hidden
		} else {
			s.LocalSort = 0
		}
		// LocalCC consumes the merged order straight off disk: the read-back
		// plus one loser-tree comparison path (log₂ runs) per tuple.
		spillCC = sec(diskBytes/readBW + tuplesTask*math.Log2(runs)/(T*cal.SortTuplesPerSec))
	}
	edgesTask := edges / P
	if c.S > 1 {
		// First pass at base rate, later passes boosted by §3.5.1.
		s.LocalCC = sec(edgesTask/S/(T*cal.CCEdgesPerSec) +
			edgesTask*(S-1)/S/(T*cal.CCEdgesPerSec*cal.CCOptBoost))
	} else {
		s.LocalCC = sec(edgesTask / (T * cal.CCEdgesPerSec))
	}
	s.LocalCC += spillCC
	if c.P > 1 {
		rounds := 0
		for step := 1; step < c.P; step <<= 1 {
			rounds++
		}
		labelBytes := 4 * float64(w.Reads)
		f := w.NonSingletonFrac
		if f <= 0 || f > 1 {
			f = 1
		}
		if c.SparseDeltaMerge {
			// Pipelined delta merge: across all rounds each non-singleton
			// entry crosses the wire as one 8-byte (vertex, parent) pair per
			// hop it has not already been seen on — ≈ 2·4R·f bytes total on
			// the critical inbound path — and the multi-round schedule costs
			// ~2P messages instead of one per hop. Absorb work shrinks the
			// same way: rank 0 folds ≈ R·f pairs once, not rounds·R entries.
			deltaBytes := 2 * labelBytes * f
			s.MergeComm = sec(deltaBytes*(1/cal.CommBW+cal.CommWarmup/S)) +
				time.Duration(2*c.P)*cal.Latency
			s.MergeCC = sec(float64(w.Reads) * f / (T * cal.AbsorbOpsPerSec))
		} else {
			s.MergeComm = sec(float64(rounds)*labelBytes*(1/cal.CommBW+cal.CommWarmup/S)) +
				time.Duration(rounds)*cal.Latency
			s.MergeCC = sec(float64(rounds) * float64(w.Reads) / (T * cal.AbsorbOpsPerSec))
		}
		// Label broadcast (§3.6): the binomial tree's critical path is one
		// 4R-byte hop per level; the star ablation serializes P−1 sends on
		// rank 0's link.
		bcastHops := float64(rounds)
		if c.StarBroadcast {
			bcastHops = P - 1
		}
		s.MergeComm += sec(bcastHops*labelBytes/cal.CommBW) +
			time.Duration(bcastHops)*cal.Latency
	}
	ccRead := sec(diskTask / readBW)
	if c.OverlapOutput {
		// The output re-read streams while Merge-Comm and MergeCC are in
		// flight, so only the portion the merge cannot hide is charged.
		hidden := s.MergeComm + s.MergeCC
		if hidden > ccRead {
			hidden = ccRead
		}
		ccRead -= hidden
	}
	s.CCIO = ccRead + sec(diskTask/writeBW)
	return s
}

// MergeWireBytes returns the model's total MergeCC + broadcast wire volume
// in bytes for a cluster — the quantity the delta-tree schedule shrinks
// versus the dense star (EXPERIMENTS.md's modeled ablation). Merge-up bytes
// count every tree hop; broadcast bytes count every edge of the fan-out
// (tree and star both move (P−1)·4R bytes in total — the star's saving is
// serialization on rank 0's link, not volume).
func MergeWireBytes(w Workload, c Cluster) int64 {
	if c.P <= 1 {
		return 0
	}
	rounds := 0
	for step := 1; step < c.P; step <<= 1 {
		rounds++
	}
	labelBytes := 4 * float64(w.Reads)
	f := w.NonSingletonFrac
	if f <= 0 || f > 1 {
		f = 1
	}
	var up float64
	if c.SparseDeltaMerge {
		// Change-only rounds mean each non-singleton entry crosses each hop
		// of its path to rank 0 once, as an 8-byte (vertex, parent) pair.
		// The average binomial-tree path length is the average popcount of
		// 0..P−1 ≈ ⌈log₂P⌉/2.
		up = float64(rounds) / 2 * 2 * labelBytes * f
	} else {
		up = float64(c.P-1) * labelBytes
	}
	bcast := float64(c.P-1) * labelBytes
	return int64(up + bcast)
}

// MemoryPerTask evaluates §3.7's per-task memory inventory in bytes:
// index tables + T chunk buffers + kmerOut + kmerIn + p + p′. With a spill
// budget that a pass would exceed, resident tuple memory is the budget
// itself — that cap is the whole point of the out-of-core path. A
// prefilter adds its ladder (BitsPerKmer per enumerated k-mer) but scales
// the resident tuple buffers by the keep fraction — the trade the
// low-memory mode exists for.
func MemoryPerTask(w Workload, c Cluster) int64 {
	tuples := int64(float64(w.Tuples) * c.prefilterKeepFrac(w))
	tuples = tuples / int64(c.P) / int64(c.S)
	tupleBytes := 2 * int64(w.TupleBytes) * tuples
	if c.SpillBudgetBytes > 0 && tupleBytes > c.SpillBudgetBytes {
		tupleBytes = c.SpillBudgetBytes
	}
	return w.IndexBytes +
		int64(c.T)*w.ChunkBytes +
		tupleBytes +
		c.prefilterBytes(w) +
		8*w.Reads
}

// PrefilterCrossover returns the minimum SingletonKmerFrac at which the
// two-pass prefiltered run is predicted faster than the exact single-scan
// pipeline — the g* above which paying the extra read pays off. Evaluated
// at the cluster's PrefilterBits (or the 8-bit default sizing when unset).
// Returns 0 when the prefilter wins at any droppable mass and 1 when it
// never does. With the sub-range combine the per-rank wire volume is flat
// in P (~fb + log P·kb rather than the old (P−1)·fb at rank 0), so the
// crossover no longer collapses to "never" at high task counts — the
// prefilter now keeps paying well beyond P=4.
func PrefilterCrossover(cal Calibration, w Workload, c Cluster) float64 {
	if c.PrefilterBits <= 0 {
		c.PrefilterBits = 8
	}
	off := c
	off.PrefilterBits = 0
	base := Predict(cal, w, off).Total()
	wins := func(g float64) bool {
		wg := w
		wg.SingletonKmerFrac = g
		return Predict(cal, wg, c).Total() < base
	}
	const eps = 1e-3
	if wins(eps) {
		return 0
	}
	if !wins(1) {
		return 1
	}
	lo, hi := eps, 1.0 // !wins(lo), wins(hi)
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if wins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Round(hi*1000) / 1000
}

func sec(x float64) time.Duration {
	return time.Duration(x * float64(time.Second))
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
