package model

import (
	"math"
	"time"
)

// serve.go models the query tier (ROADMAP item 5): what one k-mer probe
// against a memory-mapped lookup costs, and what sustained QPS a daemon
// can serve at a given concurrency. A probe is three binary searches
// (shard first-keys, fence pointers, one in-block run), so its cost grows
// with the key count only through the combined search depth — the model
// scales the calibrated probe rate (measured at the reference 2^20 keys)
// by relative depth rather than assuming constant time.

// refProbeKeys is the key count the LookupProbesPerSec calibration is
// measured at.
const refProbeKeys = 1 << 20

// probeDepth is the comparison count of one lookup: log2 of the key space
// plus the fixed in-block tail (a 256-key block is 8 more halvings, landing
// in the same page).
func probeDepth(keys uint64) float64 {
	if keys < 2 {
		return 1
	}
	return math.Log2(float64(keys))
}

// PredictQuerySeconds estimates the service time of one POST /query batch
// of n k-mer probes against a lookup holding keys distinct k-mers,
// excluding queueing: per-probe search cost at depth-scaled calibration
// rate, plus two latency constants for dispatch and response assembly.
func PredictQuerySeconds(cal Calibration, keys uint64, batch int) time.Duration {
	if batch <= 0 || cal.LookupProbesPerSec <= 0 {
		return 0
	}
	perProbe := probeDepth(keys) / probeDepth(refProbeKeys) / cal.LookupProbesPerSec
	sec := float64(batch)*perProbe + 2*cal.Latency.Seconds()
	return time.Duration(sec * float64(time.Second))
}

// PredictServeQPS estimates sustained closed-loop requests/s at concurrency
// conc: each in-flight request occupies one worker for its service time,
// and the probe work itself cannot exceed the machine's effective
// parallelism (CoreCap, the same memory-bandwidth ceiling the pipeline
// kernels hit).
func PredictServeQPS(cal Calibration, conc int, keys uint64, batch int) float64 {
	if conc <= 0 {
		return 0
	}
	per := PredictQuerySeconds(cal, keys, batch).Seconds()
	if per <= 0 {
		return 0
	}
	eff := float64(conc)
	if cal.CoreCap > 0 && eff > float64(cal.CoreCap) {
		eff = float64(cal.CoreCap)
	}
	return eff / per
}
