package model

import (
	"testing"
	"time"
)

func TestArtifactBytes(t *testing.T) {
	w := PaperWorkload("MM")
	b := ArtifactBytes(w)
	// Narrow keys: compressed tuples + 4R labels + overhead.
	want := int64(float64(w.Tuples)*12*SpillCompressRatio) + 4*w.Reads + 4096
	if b != want {
		t.Fatalf("ArtifactBytes = %d, want %d", b, want)
	}
	// Wide keys store raw.
	w.TupleBytes = 20
	if got := ArtifactBytes(w); got <= b {
		t.Fatalf("wide artifact (%d) not larger than narrow (%d)", got, b)
	}
}

func TestArtifactReloadBeatsFullRun(t *testing.T) {
	cal := Edison()
	w := PaperWorkload("MM")
	reload := ArtifactReloadSeconds(cal, w)
	if reload <= 0 {
		t.Fatal("reload cost not positive")
	}
	// Reload is cheaper than recomputing on any cluster, and ≥5× cheaper
	// than a single-node run (the mpbench acceptance bar).
	wide := Predict(cal, w, Cluster{P: 4, T: 24, S: 1}).Total()
	if reload >= wide {
		t.Fatalf("reload %v not cheaper than 4×24 full run %v", reload, wide)
	}
	narrow := Predict(cal, w, Cluster{P: 1, T: 1, S: 1}).Total()
	if reload*5 >= narrow {
		t.Fatalf("reload %v not ≥5× faster than single-core full %v", reload, narrow)
	}
	if wr := ArtifactWriteSeconds(cal, w); wr <= 0 || wr >= wide {
		t.Fatalf("write cost %v out of range (full %v)", wr, wide)
	}
}

func TestPredictIncrementalMonotone(t *testing.T) {
	cal := Edison()
	w := PaperWorkload("MM")
	c := Cluster{P: 1, T: 1, S: 1}
	// Cost grows with the delta fraction.
	var prev time.Duration
	for _, f := range []float64{0.05, 0.25, 0.5, 0.9} {
		inc := PredictIncremental(cal, scaleWorkload(w, 1-f), scaleWorkload(w, f), c)
		if inc <= prev {
			t.Fatalf("incremental cost not increasing at f=%.2f: %v <= %v", f, inc, prev)
		}
		prev = inc
	}
	// On a narrow machine — where the full run is as serialized as the
	// merge — a small delta beats the full recompute.
	small := PredictIncremental(cal, scaleWorkload(w, 0.95), scaleWorkload(w, 0.05), c)
	full := Predict(cal, w, c).Total()
	if small >= full {
		t.Fatalf("5%% delta (%v) not cheaper than full run (%v)", small, full)
	}
}

// TestIncrementalCrossover pins the model's central planning insight: the
// crossover fraction shrinks as the cluster widens, because the full
// pipeline parallelizes over P×T cores while the base/delta merge is a
// single stream. On one core incremental wins for sizable deltas; on the
// paper's 4×24 configuration it never wins at all (crossover 0) — reload
// the artifact when nothing changed, recompute when anything did.
func TestIncrementalCrossover(t *testing.T) {
	cal := Edison()
	w := PaperWorkload("MM")

	narrow := IncrementalCrossover(cal, w, Cluster{P: 1, T: 1, S: 1})
	if narrow <= 0 || narrow > 1 {
		t.Fatalf("narrow-cluster crossover %v out of (0, 1]", narrow)
	}
	// Consistent with its own definition below the crossover.
	c := Cluster{P: 1, T: 1, S: 1}
	below := PredictIncremental(cal, scaleWorkload(w, 1-narrow/2), scaleWorkload(w, narrow/2), c)
	full := Predict(cal, w, c).Total()
	if below >= full {
		t.Fatalf("below crossover (%v) not cheaper than full (%v)", below, full)
	}

	wide := IncrementalCrossover(cal, w, Cluster{P: 4, T: 24, S: 1})
	if wide >= narrow {
		t.Fatalf("crossover did not shrink with cluster width: narrow=%v wide=%v", narrow, wide)
	}
}
