package model

import (
	"fmt"
	"math"
	"time"
)

// reconcile.go closes the loop between the §3.7 cost model and the live
// pipeline: after every run the measured per-step times and byte volumes
// are compared against what Predict would have said for the same workload
// and cluster. The resulting DriftReport is the continuous-validation
// signal — a ratio near 1.0 means the model still describes the machine;
// sustained drift on one step localizes what changed (I/O regressed, the
// exchange got slower, a calibration constant went stale).

// driftEpsilon is the smoothing added to both sides of every time ratio so
// ratios are guaranteed finite and near-zero steps (an empty merge on P=1)
// do not explode the comparison. One millisecond is far below any step the
// model resolves, so real steps are essentially unaffected.
const driftEpsilon = time.Millisecond

// driftByteEpsilon plays the same role for byte-volume ratios.
const driftByteEpsilon = 1 << 20

// Measured is the per-run observation fed to Reconcile, aggregated the
// same way the paper reports: step times are the element-wise maximum
// across tasks (core.Result.Steps), byte volumes are totals across tasks.
type Measured struct {
	// Steps is the measured per-step critical path.
	Steps Steps
	// WireBytes is the total bytes sent by all tasks (exchange + merge +
	// broadcast).
	WireBytes int64
	// SpillBytes is the total bytes the out-of-core LocalSort wrote to
	// scratch (0 when every pass stayed in RAM).
	SpillBytes int64
}

// StepDrift is one step's predicted-vs-measured comparison.
type StepDrift struct {
	// Step is the step name, aligned with core.StepTimes ("KmerGen-I/O" …).
	Step string `json:"step"`
	// Predicted and Measured are the model's and the run's durations.
	Predicted time.Duration `json:"predicted_ns"`
	Measured  time.Duration `json:"measured_ns"`
	// Ratio is (measured+ε)/(predicted+ε): >1 means slower than modeled.
	Ratio float64 `json:"ratio"`
}

// DriftReport is the full reconciliation of one run against the model.
type DriftReport struct {
	// Calibration names the constant set the prediction used.
	Calibration string `json:"calibration"`
	// Steps holds one entry per pipeline step, in StepTimes order.
	Steps []StepDrift `json:"steps"`
	// TotalPredicted/TotalMeasured/TotalRatio compare the summed critical
	// path.
	TotalPredicted time.Duration `json:"total_predicted_ns"`
	TotalMeasured  time.Duration `json:"total_measured_ns"`
	TotalRatio     float64       `json:"total_ratio"`
	// Wire* compare total bytes on the wire (exchange + merge + broadcast).
	WirePredicted int64   `json:"wire_predicted_bytes"`
	WireMeasured  int64   `json:"wire_measured_bytes"`
	WireRatio     float64 `json:"wire_ratio"`
	// Spill* compare out-of-core scratch traffic.
	SpillPredicted int64   `json:"spill_predicted_bytes"`
	SpillMeasured  int64   `json:"spill_measured_bytes"`
	SpillRatio     float64 `json:"spill_ratio"`
}

// Worst returns the step whose ratio is farthest from 1.0 in log space —
// the first place to look when the total drifts.
func (r DriftReport) Worst() StepDrift {
	var worst StepDrift
	var worstDev float64 = -1
	for _, s := range r.Steps {
		dev := math.Abs(math.Log(s.Ratio))
		if dev > worstDev {
			worstDev = dev
			worst = s
		}
	}
	return worst
}

// Finite reports whether every ratio in the report is a positive finite
// number — the invariant the ε-smoothing guarantees and CI asserts.
func (r DriftReport) Finite() bool {
	ok := func(x float64) bool {
		return x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
	}
	if !ok(r.TotalRatio) || !ok(r.WireRatio) || !ok(r.SpillRatio) {
		return false
	}
	for _, s := range r.Steps {
		if !ok(s.Ratio) {
			return false
		}
	}
	return true
}

// String renders the report as a compact one-line summary for logs.
func (r DriftReport) String() string {
	w := r.Worst()
	return fmt.Sprintf("drift(%s): total %.2fx (pred %v, meas %v), worst %s %.2fx, wire %.2fx, spill %.2fx",
		r.Calibration, r.TotalRatio,
		r.TotalPredicted.Round(time.Millisecond), r.TotalMeasured.Round(time.Millisecond),
		w.Step, w.Ratio, r.WireRatio, r.SpillRatio)
}

// timeRatio is the ε-smoothed measured/predicted ratio.
func timeRatio(m, p time.Duration) float64 {
	return float64(m+driftEpsilon) / float64(p+driftEpsilon)
}

// byteRatio is the ε-smoothed ratio for byte volumes.
func byteRatio(m, p int64) float64 {
	return float64(m+driftByteEpsilon) / float64(p+driftByteEpsilon)
}

// stepList flattens Steps into (name, duration) pairs in StepTimes order.
func stepList(s Steps) []StepDrift {
	return []StepDrift{
		{Step: "KmerGen-I/O", Predicted: s.KmerGenIO},
		{Step: "KmerGen", Predicted: s.KmerGen},
		{Step: "KmerGen-Comm", Predicted: s.KmerGenComm},
		{Step: "LocalSort", Predicted: s.LocalSort},
		{Step: "LocalCC", Predicted: s.LocalCC},
		{Step: "Merge-Comm", Predicted: s.MergeComm},
		{Step: "MergeCC", Predicted: s.MergeCC},
		{Step: "CC-I/O", Predicted: s.CCIO},
	}
}

// ExchangeWireBytes returns the model's total KmerGen exchange volume in
// bytes: every tuple not destined for its producing task crosses the wire
// once, regardless of pass count or chunking. A prefilter shrinks the
// volume to the keep fraction (this is the headline quantity the Bloom
// gate exists to cut).
func ExchangeWireBytes(w Workload, c Cluster) int64 {
	if c.P <= 1 {
		return 0
	}
	P := float64(c.P)
	tuples := float64(w.Tuples) * c.prefilterKeepFrac(w)
	return int64(tuples * float64(w.TupleBytes) * (P - 1) / P)
}

// SpillBytes returns the model's total out-of-core scratch write volume:
// when a pass's received tuple bytes exceed the budget, every tuple of the
// run is spilled once (compressed by SpillCompressRatio under the varint
// codec); otherwise nothing touches scratch.
func SpillBytes(w Workload, c Cluster) int64 {
	if c.SpillBudgetBytes <= 0 {
		return 0
	}
	P := c.P
	if P < 1 {
		P = 1
	}
	S := c.S
	if S < 1 {
		S = 1
	}
	// The out-of-core path only sees tuples the Bloom gate kept.
	kept := float64(w.Tuples) * c.prefilterKeepFrac(w)
	tuplesTask := kept / float64(P)
	if c.spillRuns(tuplesTask/float64(S)*float64(w.TupleBytes)) == 0 {
		return 0
	}
	total := kept * float64(w.TupleBytes)
	if c.SpillCompress {
		total *= SpillCompressRatio
	}
	return int64(total)
}

// Reconcile predicts the run with the given calibration and compares it
// against the measurement. Every ratio in the returned report is finite.
func Reconcile(cal Calibration, w Workload, c Cluster, m Measured) DriftReport {
	pred := Predict(cal, w, c)
	r := DriftReport{
		Calibration:    cal.Name,
		Steps:          stepList(pred),
		TotalPredicted: pred.Total(),
		TotalMeasured:  m.Steps.Total(),
		WirePredicted:  ExchangeWireBytes(w, c) + MergeWireBytes(w, c),
		WireMeasured:   m.WireBytes,
		SpillPredicted: SpillBytes(w, c),
		SpillMeasured:  m.SpillBytes,
	}
	meas := stepList(m.Steps)
	for i := range r.Steps {
		r.Steps[i].Measured = meas[i].Predicted
		r.Steps[i].Ratio = timeRatio(r.Steps[i].Measured, r.Steps[i].Predicted)
	}
	r.TotalRatio = timeRatio(r.TotalMeasured, r.TotalPredicted)
	r.WireRatio = byteRatio(r.WireMeasured, r.WirePredicted)
	r.SpillRatio = byteRatio(r.SpillMeasured, r.SpillPredicted)
	return r
}
