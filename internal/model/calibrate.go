package model

import (
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"metaprep/internal/kmer"
	"metaprep/internal/radix"
	"metaprep/internal/unionfind"
)

// Calibrate measures this host's kernel throughputs with short
// micro-benchmarks (a few hundred milliseconds total) and returns a
// Calibration for model predictions on this machine. dir is scratch space
// for the I/O probe (e.g. os.TempDir()).
//
// In-process "communication" is a memory copy, so CommBW is set from
// measured copy bandwidth and the warmup term is zero: on one host the
// model's multi-node predictions describe a cluster of nodes with this
// host's core, fed by an Edison-like interconnect unless the caller
// overrides CommBW.
func Calibrate(dir string) Calibration {
	cal := Calibration{
		Name:          "host",
		CCOptBoost:    measureCCOptBoost(),
		IOScalesWithT: false,
		Latency:       time.Microsecond,
	}
	cal.ScanBasesPerSec = measureScan()
	cal.EmitTuplesPerSec = measureEmit()
	cal.SortTuplesPerSec = measureSort()
	cal.CCEdgesPerSec = measureCC()
	cal.AbsorbOpsPerSec = measureAbsorb()
	cal.ReadBW, cal.WriteBW = measureIO(dir)
	cal.CommBW = measureCopyBW()
	cal.CommWarmup = 0
	cal.LookupProbesPerSec = measureLookupProbes()
	return cal
}

// measureLookupProbes times the query tier's probe shape at the reference
// 2^20 keys: a fence binary search over block first-keys followed by an
// in-block search over a 256-key run, matching internal/lookup's two
// resident levels.
func measureLookupProbes() float64 {
	const keys = 1 << 20
	const blockKeys = 256
	rng := rand.New(rand.NewSource(9))
	sorted := make([]uint64, keys)
	v := uint64(0)
	for i := range sorted {
		v += 1 + uint64(rng.Intn(1<<20))
		sorted[i] = v
	}
	fence := make([]uint64, keys/blockKeys)
	for i := range fence {
		fence[i] = sorted[i*blockKeys]
	}
	probes := make([]uint64, 1<<16)
	for i := range probes {
		probes[i] = sorted[rng.Intn(keys)]
	}
	var sink uint64
	start := time.Now()
	reps := 20
	for r := 0; r < reps; r++ {
		for _, p := range probes {
			i, j := 0, len(fence)
			for i < j {
				m := int(uint(i+j) >> 1)
				if p < fence[m] {
					j = m
				} else {
					i = m + 1
				}
			}
			blk := (i - 1) * blockKeys
			i, j = blk, blk+blockKeys
			for i < j {
				m := int(uint(i+j) >> 1)
				if sorted[m] < p {
					i = m + 1
				} else {
					j = m
				}
			}
			sink += sorted[i]
		}
	}
	el := time.Since(start).Seconds()
	_ = sink
	return float64(reps) * float64(len(probes)) / el
}

func synthSeq(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// measureScan times rolling k-mer enumeration without tuple storage.
func measureScan() float64 {
	seq := synthSeq(1 << 20)
	var sink kmer.Kmer64
	start := time.Now()
	reps := 50
	for r := 0; r < reps; r++ {
		kmer.ForEach64(seq, 27, func(_ int, m kmer.Kmer64) { sink ^= m })
	}
	el := time.Since(start).Seconds()
	_ = sink
	return float64(reps) * float64(len(seq)) / el
}

// measureEmit times the 4-lane generator including buffer stores, the
// closest proxy for KmerGen's per-tuple marginal cost.
func measureEmit() float64 {
	seq := synthSeq(1 << 20)
	buf := make([]kmer.Kmer64, 0, 1<<20)
	start := time.Now()
	reps := 50
	for r := 0; r < reps; r++ {
		buf = kmer.AppendCanonical64(buf[:0], seq, 27)
	}
	el := time.Since(start).Seconds()
	return float64(reps) * float64(len(buf)) / el
}

func measureSort() float64 {
	n := 1 << 20
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, n)
	vals := make([]uint32, n)
	work := make([]uint64, n)
	workV := make([]uint32, n)
	tmpK := make([]uint64, n)
	tmpV := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint64() & (1<<54 - 1)
		vals[i] = uint32(i)
	}
	start := time.Now()
	reps := 5
	for r := 0; r < reps; r++ {
		copy(work, keys)
		copy(workV, vals)
		radix.SortPairs64(work, workV, tmpK, tmpV, 8)
	}
	el := time.Since(start).Seconds()
	return float64(reps) * float64(n) / el
}

func measureCC() float64 {
	n := 1 << 20
	rng := rand.New(rand.NewSource(3))
	edges := make([]unionfind.Edge, n)
	for i := range edges {
		edges[i] = unionfind.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	start := time.Now()
	reps := 3
	for r := 0; r < reps; r++ {
		d := unionfind.New(n)
		d.ProcessEdges(edges, 1)
	}
	el := time.Since(start).Seconds()
	return float64(reps) * float64(n) / el
}

// measureCCOptBoost compares edge processing against read IDs (scattered)
// with processing against component roots (concentrated), the §3.5.1
// locality effect.
func measureCCOptBoost() float64 {
	n := 1 << 20
	rng := rand.New(rand.NewSource(4))
	scattered := make([]unionfind.Edge, n)
	for i := range scattered {
		scattered[i] = unionfind.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	concentrated := make([]unionfind.Edge, n)
	for i := range concentrated {
		concentrated[i] = unionfind.Edge{U: uint32(rng.Intn(1024)), V: uint32(rng.Intn(1024))}
	}
	timeFor := func(edges []unionfind.Edge) float64 {
		start := time.Now()
		d := unionfind.New(n)
		d.ProcessEdges(edges, 1)
		return time.Since(start).Seconds()
	}
	slow := timeFor(scattered)
	fast := timeFor(concentrated)
	if fast <= 0 {
		return 1
	}
	boost := slow / fast
	if boost < 1 {
		boost = 1
	}
	return boost
}

func measureAbsorb() float64 {
	n := 1 << 20
	rng := rand.New(rand.NewSource(5))
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(rng.Intn(n))
	}
	d := unionfind.New(n)
	start := time.Now()
	d.Absorb(p, 1)
	el := time.Since(start).Seconds()
	return float64(n) / el
}

func measureIO(dir string) (readBW, writeBW float64) {
	path := filepath.Join(dir, "metaprep_io_probe.bin")
	defer os.Remove(path)
	buf := make([]byte, 32<<20)
	start := time.Now()
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return 500e6, 300e6
	}
	writeBW = float64(len(buf)) / time.Since(start).Seconds()
	start = time.Now()
	got, err := os.ReadFile(path)
	if err != nil || len(got) != len(buf) {
		return 500e6, writeBW
	}
	readBW = float64(len(buf)) / time.Since(start).Seconds()
	return readBW, writeBW
}

func measureCopyBW() float64 {
	src := make([]byte, 64<<20)
	dst := make([]byte, 64<<20)
	start := time.Now()
	copy(dst, src)
	copy(src, dst)
	el := time.Since(start).Seconds()
	return 2 * float64(len(src)) / el
}
