package model

// artifact.go extends the §3.7 cost model to persistent partition
// artifacts: how many bytes an artifact occupies, what emitting and
// reloading one costs, and — the planning question incremental
// repartitioning raises — at what delta fraction rerunning from scratch
// becomes cheaper than merging the delta into a stored base.

import (
	"math"
	"time"
)

// ArtifactBytes returns the modeled on-disk size of a partition artifact:
// the sorted tuple runs (delta/varint block-compressed for narrow 64-bit
// keys, raw for wide ones), the 4R-byte label map, the frequency histogram
// and a small fixed overhead for metadata, TOC and block headers.
func ArtifactBytes(w Workload) int64 {
	tb := float64(w.TupleBytes)
	if tb <= 0 {
		tb = 12
	}
	tupleBytes := float64(w.Tuples) * tb
	if tb <= 12 {
		// Narrow keys persist through the same varint/delta codec as spill
		// runs; sorted keys delta-encode well.
		tupleBytes *= SpillCompressRatio
	}
	return int64(tupleBytes) + 4*w.Reads + 4096
}

// ArtifactWriteSeconds models the artifact emit added to a run: the tuple
// tee overlaps LocalCC on a dedicated worker, so only the final assembly —
// one sequential write of the artifact — is charged.
func ArtifactWriteSeconds(cal Calibration, w Workload) time.Duration {
	if cal.WriteBW <= 0 {
		return 0
	}
	return sec(float64(ArtifactBytes(w)) / cal.WriteBW)
}

// ArtifactReloadSeconds models satisfying a run from a stored artifact:
// one sequential read of the artifact (the k-mer section is CRC-verified
// even though only the labels are dereferenced) plus a linear label scan
// to rebuild component sizes.
func ArtifactReloadSeconds(cal Calibration, w Workload) time.Duration {
	var s float64
	if cal.ReadBW > 0 {
		s += float64(ArtifactBytes(w)) / cal.ReadBW
	}
	if cal.AbsorbOpsPerSec > 0 {
		s += float64(w.Reads) / cal.AbsorbOpsPerSec
	}
	return sec(s)
}

// PredictIncremental models an incremental repartitioning: the full
// pipeline over the delta alone, plus the base/delta merge — a streaming
// read of both artifacts, a 2-way merge pass over their combined tuples,
// and union work for the delta's edges.
func PredictIncremental(cal Calibration, base, delta Workload, c Cluster) time.Duration {
	s := Predict(cal, delta, c).Total().Seconds()
	mergedTuples := float64(base.Tuples + delta.Tuples)
	if cal.ReadBW > 0 {
		s += float64(ArtifactBytes(base)+ArtifactBytes(delta)) / cal.ReadBW
	}
	if cal.EmitTuplesPerSec > 0 {
		// The merge loop is single-stream: decode, compare, run-detect.
		s += mergedTuples / cal.EmitTuplesPerSec
	}
	edges := float64(delta.Edges)
	if edges == 0 {
		edges = float64(delta.Tuples)
	}
	if cal.CCEdgesPerSec > 0 {
		s += edges / cal.CCEdgesPerSec
	}
	if cal.WriteBW > 0 {
		// The merged artifact is written back for chaining.
		merged := base
		merged.Tuples = base.Tuples + delta.Tuples
		merged.Reads = base.Reads + delta.Reads
		s += float64(ArtifactBytes(merged)) / cal.WriteBW
	}
	return sec(s)
}

// scaleWorkload returns w with its volume figures scaled by f (shape
// constants like TupleBytes and ChunkBytes are left alone).
func scaleWorkload(w Workload, f float64) Workload {
	w.Bases = int64(float64(w.Bases) * f)
	w.DiskBytes = int64(float64(w.DiskBytes) * f)
	w.Reads = int64(float64(w.Reads) * f)
	w.Tuples = int64(float64(w.Tuples) * f)
	w.Edges = int64(float64(w.Edges) * f)
	return w
}

// IncrementalCrossover returns the delta fraction below which merging into
// a stored base beats recomputing from scratch: the largest f in (0, 1]
// such that an incremental run with delta = f·w and base = (1−f)·w is
// predicted faster than the full pipeline over w. Returns 1 when
// incremental wins at any fraction (the merge overhead never catches the
// full run's fixed costs), and 0 when it never does.
func IncrementalCrossover(cal Calibration, w Workload, c Cluster) float64 {
	full := Predict(cal, w, c).Total().Seconds()
	wins := func(f float64) bool {
		inc := PredictIncremental(cal,
			scaleWorkload(w, 1-f), scaleWorkload(w, f), c)
		return inc.Seconds() < full
	}
	const eps = 1e-3
	if wins(1) {
		return 1
	}
	if !wins(eps) {
		return 0
	}
	lo, hi := eps, 1.0 // wins(lo), !wins(hi)
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if wins(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Round(lo*1000) / 1000
}
