package model

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestReconcileFiniteOnZeroMeasurement is the degenerate case the
// ε-smoothing exists for: an all-zero measurement against a real
// prediction must still yield positive finite ratios everywhere.
func TestReconcileFiniteOnZeroMeasurement(t *testing.T) {
	w := PaperWorkload("HG")
	c := Cluster{P: 4, T: 4, S: 2}
	r := Reconcile(Edison(), w, c, Measured{})
	if !r.Finite() {
		t.Fatalf("zero measurement produced non-finite ratios: %+v", r)
	}
	for _, s := range r.Steps {
		if s.Ratio <= 0 || s.Ratio > 1 {
			t.Fatalf("%s: zero measurement should give ratio in (0,1], got %v", s.Step, s.Ratio)
		}
	}
}

// TestReconcilePerfectMeasurement feeds the prediction back as the
// measurement: every ratio must be exactly 1.
func TestReconcilePerfectMeasurement(t *testing.T) {
	w := PaperWorkload("MM")
	c := Cluster{P: 8, T: 8, S: 4, SparseDeltaMerge: true}
	w.NonSingletonFrac = 0.5
	pred := Predict(Edison(), w, c)
	m := Measured{
		Steps:     pred,
		WireBytes: ExchangeWireBytes(w, c) + MergeWireBytes(w, c),
	}
	r := Reconcile(Edison(), w, c, m)
	for _, s := range r.Steps {
		if math.Abs(s.Ratio-1) > 1e-12 {
			t.Fatalf("%s: self-comparison ratio = %v", s.Step, s.Ratio)
		}
	}
	if math.Abs(r.TotalRatio-1) > 1e-12 || math.Abs(r.WireRatio-1) > 1e-12 {
		t.Fatalf("total %v wire %v, want 1", r.TotalRatio, r.WireRatio)
	}
	if r.SpillPredicted != 0 || r.SpillMeasured != 0 {
		t.Fatalf("in-RAM run predicted spill: %d/%d", r.SpillPredicted, r.SpillMeasured)
	}
}

// TestReconcileStepOrderAndWorst pins the step ordering to StepTimes order
// and checks Worst picks the largest log-space deviation.
func TestReconcileStepOrderAndWorst(t *testing.T) {
	w := PaperWorkload("HG")
	c := Cluster{P: 4, T: 4, S: 2}
	pred := Predict(Edison(), w, c)
	m := Measured{Steps: pred}
	m.Steps.LocalSort *= 10 // one step drifts hard
	r := Reconcile(Edison(), w, c, m)
	wantOrder := []string{"KmerGen-I/O", "KmerGen", "KmerGen-Comm", "LocalSort",
		"LocalCC", "Merge-Comm", "MergeCC", "CC-I/O"}
	if len(r.Steps) != len(wantOrder) {
		t.Fatalf("%d steps", len(r.Steps))
	}
	for i, s := range r.Steps {
		if s.Step != wantOrder[i] {
			t.Fatalf("step[%d] = %s, want %s", i, s.Step, wantOrder[i])
		}
	}
	if w := r.Worst(); w.Step != "LocalSort" || w.Ratio < 5 {
		t.Fatalf("Worst = %+v, want LocalSort at ~10x", w)
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestSpillBytesPrediction checks the out-of-core volume prediction: zero
// without a budget or within budget, the full tuple volume beyond it, and
// the codec ratio under compression.
func TestSpillBytesPrediction(t *testing.T) {
	w := Workload{Tuples: 1 << 20, TupleBytes: 12}
	if got := SpillBytes(w, Cluster{P: 1, T: 1, S: 1}); got != 0 {
		t.Fatalf("no budget: %d", got)
	}
	roomy := Cluster{P: 1, T: 1, S: 1, SpillBudgetBytes: 1 << 30}
	if got := SpillBytes(w, roomy); got != 0 {
		t.Fatalf("within budget: %d", got)
	}
	tight := Cluster{P: 1, T: 1, S: 1, SpillBudgetBytes: 1 << 20}
	raw := int64(w.Tuples) * int64(w.TupleBytes)
	if got := SpillBytes(w, tight); got != raw {
		t.Fatalf("over budget: %d, want %d", got, raw)
	}
	tight.SpillCompress = true
	if got := SpillBytes(w, tight); got != int64(float64(raw)*SpillCompressRatio) {
		t.Fatalf("compressed: %d", got)
	}
}

// TestExchangeWireBytes checks the (P-1)/P cross-traffic fraction.
func TestExchangeWireBytes(t *testing.T) {
	w := Workload{Tuples: 1000, TupleBytes: 12}
	if got := ExchangeWireBytes(w, Cluster{P: 1}); got != 0 {
		t.Fatalf("P=1: %d", got)
	}
	if got := ExchangeWireBytes(w, Cluster{P: 4}); got != 9000 {
		t.Fatalf("P=4: %d, want 9000", got)
	}
}

// TestDriftReportJSONRoundTrip ensures the report survives the JSONL
// trajectory file and the job-result API unchanged.
func TestDriftReportJSONRoundTrip(t *testing.T) {
	w := PaperWorkload("HG")
	c := Cluster{P: 2, T: 2, S: 1}
	r := Reconcile(Ganga(), w, c, Measured{Steps: Predict(Ganga(), w, c)})
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back DriftReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Calibration != "ganga" || len(back.Steps) != 8 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.TotalPredicted != r.TotalPredicted || back.Steps[3].Ratio != r.Steps[3].Ratio {
		t.Fatal("round trip changed values")
	}
	_ = time.Duration(back.TotalMeasured)
}
