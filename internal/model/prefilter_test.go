package model

import "testing"

// prefilter_test.go pins the §3.7 extension for the probabilistic
// prefilter: the pass-1 scan is pure overhead at zero droppable mass, pays
// off once the singleton fraction crosses PrefilterCrossover, and the
// byte-volume predictions shrink with the keep fraction.

func TestPrefilterModel(t *testing.T) {
	w := PaperWorkload("MM")
	w.SingletonKmerFrac = 0.7 // error-rich short reads: most distinct k-mers singletons
	cal := Edison()
	// Two tasks: the sub-range combine ships each rank ~one ladder's worth
	// of sub-slices, so the saved exchange and sort dominate. (At very
	// high P the flat ~fb wire term still outweighs the per-task savings,
	// which shrink as 1/P; PrefilterCrossover reports that as g* = 1.)
	off := Cluster{P: 2, T: 24, S: 2}
	on := off
	on.PrefilterBits = 8

	base := Predict(cal, w, off)
	pf := Predict(cal, w, on)

	// At 70% droppable mass the saved exchange and sort dwarf one extra scan.
	if pf.Total() >= base.Total() {
		t.Errorf("prefilter at g=0.7: total %v, exact %v — second scan never paid off", pf.Total(), base.Total())
	}
	if pf.LocalSort >= base.LocalSort {
		t.Errorf("LocalSort did not shrink: %v vs %v", pf.LocalSort, base.LocalSort)
	}
	// The scan overhead lands on the KmerGen steps.
	if pf.KmerGenIO <= base.KmerGenIO {
		t.Errorf("KmerGen-I/O did not grow by the pass-1 read: %v vs %v", pf.KmerGenIO, base.KmerGenIO)
	}

	// With nothing droppable the prefilter is pure overhead.
	w0 := w
	w0.SingletonKmerFrac = 0
	if got := Predict(cal, w0, on).Total(); got <= Predict(cal, w0, off).Total() {
		t.Errorf("prefilter at g=0 predicted faster than exact: %v", got)
	}
}

func TestPrefilterCrossover(t *testing.T) {
	cal := Edison()
	w := PaperWorkload("MM")
	c := Cluster{P: 2, T: 24, S: 2}
	g := PrefilterCrossover(cal, w, c)
	if g <= 0 || g >= 1 {
		t.Fatalf("crossover = %v, want interior point on a multi-node run", g)
	}
	// The crossover separates the regimes it claims to.
	lo, hi := w, w
	lo.SingletonKmerFrac = g / 2
	hi.SingletonKmerFrac = (1 + g) / 2
	on := c
	on.PrefilterBits = 8
	if Predict(cal, lo, on).Total() < Predict(cal, lo, c).Total() {
		t.Errorf("below crossover (g=%v) the prefilter still wins", lo.SingletonKmerFrac)
	}
	if Predict(cal, hi, on).Total() >= Predict(cal, hi, c).Total() {
		t.Errorf("above crossover (g=%v) the prefilter loses", hi.SingletonKmerFrac)
	}

	// The sub-range combine keeps per-rank wire volume flat in P, so the
	// crossover stays interior well past P=4 — under the old rank-0
	// full-ladder gather, P=8 was already degenerate (g* = 1).
	if g8 := PrefilterCrossover(cal, w, Cluster{P: 8, T: 24, S: 2}); g8 <= 0 || g8 >= 1 {
		t.Errorf("P=8 crossover = %v, want interior point (sub-range combine stays affordable)", g8)
	}
	// Crossover worsens monotonically with P: the combine is flat while
	// the per-task exchange and sort savings shrink as 1/P.
	if g4, g8 := PrefilterCrossover(cal, w, Cluster{P: 4, T: 24, S: 2}),
		PrefilterCrossover(cal, w, Cluster{P: 8, T: 24, S: 2}); g4 > g8 {
		t.Errorf("crossover not monotone in P: g4=%v > g8=%v", g4, g8)
	}
	// At 16 tasks the 1/P savings finally lose to the flat fb term even at
	// all-singleton mass — the prefilter never pays at default sizing.
	if g16 := PrefilterCrossover(cal, w, Cluster{P: 16, T: 24, S: 2}); g16 != 1 {
		t.Errorf("P=16 crossover = %v, want 1 (flat wire term outlasts 1/P savings)", g16)
	}
}

func TestPrefilterBytesModel(t *testing.T) {
	w := PaperWorkload("MM")
	w.SingletonKmerFrac = 0.6
	on := Cluster{P: 8, T: 24, S: 2, PrefilterBits: 8}
	off := Cluster{P: 8, T: 24, S: 2}

	if got, want := ExchangeWireBytes(w, on), ExchangeWireBytes(w, off); got >= want {
		t.Errorf("wire bytes did not shrink: %d vs %d", got, want)
	}
	// Memory: the ladder is charged at bits-per-kmer while the tuple
	// buffers shrink with the keep fraction. On a single wide task the
	// 24-bytes-per-tuple buffers dominate the 1-byte-per-kmer ladder, so
	// the net moves down; under a spill cap the buffers are already pinned
	// at the budget and the ladder is a pure addition.
	one := Cluster{P: 1, T: 24, S: 1}
	onePF := one
	onePF.PrefilterBits = 8
	if got, want := MemoryPerTask(w, onePF), MemoryPerTask(w, one); got >= want {
		t.Errorf("prefilter memory %d ≥ exact %d at g=0.6 on one task", got, want)
	}
	capped := one
	capped.SpillBudgetBytes = 1 << 30
	cappedPF := capped
	cappedPF.PrefilterBits = 8
	if got, want := MemoryPerTask(w, cappedPF), MemoryPerTask(w, capped)+cappedPF.prefilterBytes(w); got != want {
		t.Errorf("capped memory %d, want budget-pinned buffers plus the ladder = %d", got, want)
	}
	// Spill: a budget the exact run exceeds but the gated run fits.
	exactBytes := w.Tuples / 8 / 2 * int64(w.TupleBytes)
	tight := off
	tight.SpillBudgetBytes = exactBytes / 2
	gated := tight
	gated.PrefilterBits = 8
	if SpillBytes(w, tight) == 0 {
		t.Fatalf("fixture error: exact run does not spill")
	}
	if got, want := SpillBytes(w, gated), SpillBytes(w, tight); got >= want {
		t.Errorf("spill bytes did not shrink: %d vs %d", got, want)
	}
}
