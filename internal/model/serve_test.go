package model

import (
	"testing"
	"time"
)

func TestPredictQuerySecondsShape(t *testing.T) {
	cal := Edison()
	// Bigger batches cost more; more keys cost more (deeper searches);
	// everything is positive and finite.
	small := PredictQuerySeconds(cal, 1<<20, 64)
	big := PredictQuerySeconds(cal, 1<<20, 4096)
	if small <= 0 || big <= small {
		t.Fatalf("batch scaling broken: batch64=%v batch4096=%v", small, big)
	}
	deep := PredictQuerySeconds(cal, 1<<34, 4096)
	if deep <= big {
		t.Fatalf("depth scaling broken: 2^20 keys %v, 2^34 keys %v", big, deep)
	}
	// At the reference key count the per-probe cost is exactly the
	// calibrated rate (plus the two latency constants).
	want := time.Duration((1000/cal.LookupProbesPerSec + 2*cal.Latency.Seconds()) * float64(time.Second))
	got := PredictQuerySeconds(cal, 1<<20, 1000)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("reference probe cost: got %v, want %v", got, want)
	}
	if PredictQuerySeconds(cal, 1<<20, 0) != 0 {
		t.Fatal("zero batch should cost zero")
	}
}

func TestPredictServeQPSShape(t *testing.T) {
	cal := Edison()
	q1 := PredictServeQPS(cal, 1, 1<<20, 256)
	q4 := PredictServeQPS(cal, 4, 1<<20, 256)
	if q1 <= 0 || q4 <= q1 {
		t.Fatalf("concurrency scaling broken: c1=%f c4=%f", q1, q4)
	}
	// Beyond CoreCap extra concurrency adds nothing: queueing, not service.
	atCap := PredictServeQPS(cal, cal.CoreCap, 1<<20, 256)
	over := PredictServeQPS(cal, 4*cal.CoreCap, 1<<20, 256)
	if over != atCap {
		t.Fatalf("CoreCap ceiling broken: atCap=%f over=%f", atCap, over)
	}
	// Larger batches lower request QPS but raise probe throughput.
	qBig := PredictServeQPS(cal, 4, 1<<20, 4096)
	if qBig >= q4 {
		t.Fatalf("batch should lower request QPS: 256→%f 4096→%f", q4, qBig)
	}
	if 4096*qBig <= 256*q4*0.99 {
		t.Fatalf("bigger batches should not lose probe throughput: %f vs %f probes/s", 4096*qBig, 256*q4)
	}
}

func TestMeasureLookupProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmark")
	}
	r := measureLookupProbes()
	if r <= 0 {
		t.Fatalf("measureLookupProbes = %f", r)
	}
}
