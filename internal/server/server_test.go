package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metaprep/internal/core"
	"metaprep/internal/fastq"
	"metaprep/internal/index"
	"metaprep/internal/jobs"
)

// buildIndexFile writes a small overlapping-read dataset plus its saved
// index file, returning the index path.
func buildIndexFile(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	genomes := make([][]byte, 3)
	for g := range genomes {
		genomes[g] = make([]byte, 300)
		for j := range genomes[g] {
			genomes[g][j] = "ACGT"[rng.Intn(4)]
		}
	}
	fq := filepath.Join(dir, "reads.fastq")
	f, err := os.Create(fq)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	const readLen = 40
	for i := 0; i < 150; i++ {
		g := genomes[rng.Intn(len(genomes))]
		pos := rng.Intn(len(g) - readLen)
		if err := w.Write(fastq.Record{
			ID:   []byte("r"),
			Seq:  g[pos : pos+readLen],
			Qual: bytes.Repeat([]byte("I"), readLen),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idx, err := index.Build([]string{fq}, index.Options{K: 11, M: 4, ChunkSize: 1500})
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "reads.idx")
	if err := idx.Save(idxPath); err != nil {
		t.Fatal(err)
	}
	return idxPath
}

// newTestServer stands up a Server over a manager with the given options and
// registers cleanup.
func newTestServer(t *testing.T, mopts jobs.Options, sopts Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr := jobs.NewManager(mopts)
	srv := httptest.NewServer(New(mgr, sopts))
	t.Cleanup(func() {
		srv.Close()
		mgr.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return srv, mgr
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

// pollDone polls the status endpoint until the job is terminal.
func pollDone(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st jobs.Status
		resp := getJSON(t, base+"/jobs/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitPollResultMatchesDirect is the headline e2e: a job submitted
// over HTTP produces byte-identical partition labels to calling the
// pipeline directly, and its status carries real per-step progress
// counters.
func TestSubmitPollResultMatchesDirect(t *testing.T) {
	idxPath := buildIndexFile(t, 11)
	srv, _ := newTestServer(t, jobs.Options{}, Options{})

	body := fmt.Sprintf(`{"index": %q, "tasks": 2, "threads": 2}`, idxPath)
	resp, data := postJSON(t, srv.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Deduped || sub.CacheHit {
		t.Fatalf("first submission flagged deduped/cached: %+v", sub)
	}

	st := pollDone(t, srv.URL, sub.ID)
	if st.State != jobs.Done {
		t.Fatalf("job finished %s: %+v", st.State, st)
	}
	if len(st.Counters) == 0 {
		t.Fatalf("done job carries no progress counters")
	}

	var got core.Result
	if resp := getJSON(t, srv.URL+"/jobs/"+sub.ID+"/result", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}

	idx, err := index.Load(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Default(idx)
	cfg.Tasks, cfg.Threads = 2, 2
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Components != want.Components || got.Reads != want.Reads ||
		got.LargestSize != want.LargestSize || len(got.Labels) != len(want.Labels) {
		t.Fatalf("service result diverges: got {comps %d reads %d largest %d}, want {%d %d %d}",
			got.Components, got.Reads, got.LargestSize,
			want.Components, want.Reads, want.LargestSize)
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("labels diverge at read %d: %d vs %d", i, got.Labels[i], want.Labels[i])
		}
	}

	// Resubmitting the identical job is a cache hit: no re-execution,
	// immediately done.
	resp2, data2 := postJSON(t, srv.URL+"/jobs", body)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, data2)
	}
	var sub2 SubmitResponse
	if err := json.Unmarshal(data2, &sub2); err != nil {
		t.Fatal(err)
	}
	if !sub2.Deduped || !sub2.CacheHit || sub2.State != jobs.Done {
		t.Fatalf("resubmission not served from cache: %+v", sub2)
	}
	var cached core.Result
	getJSON(t, srv.URL+"/jobs/"+sub2.ID+"/result", &cached)
	if len(cached.Labels) != len(want.Labels) {
		t.Fatalf("cached result truncated: %d labels", len(cached.Labels))
	}
}

// TestSSEProgressStream checks the events endpoint emits periodic progress
// snapshots and a final state event.
func TestSSEProgressStream(t *testing.T) {
	idxPath := buildIndexFile(t, 12)
	release := make(chan struct{})
	srv, _ := newTestServer(t, jobs.Options{
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			cfg.Obs.Counter(0, "kmergen/chunks").Add(7)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return core.RunContext(ctx, cfg)
		},
	}, Options{ProgressInterval: 10 * time.Millisecond})

	_, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, idxPath))
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var progressEvents int
	var sawCounter bool
	var finalState jobs.State
	var event string
	released := false
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
scan:
	for {
		var line string
		select {
		case l, ok := <-lines:
			if !ok {
				break scan
			}
			line = l
		case <-deadline:
			t.Fatal("SSE stream stalled")
		}
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var st jobs.Status
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			switch event {
			case "progress":
				progressEvents++
				for _, cv := range st.Counters {
					if cv.Name == "kmergen/chunks" && cv.Value == 7 {
						sawCounter = true
					}
				}
				// Let the job finish once we have seen live progress.
				if progressEvents >= 2 && !released {
					released = true
					close(release)
				}
			case "state":
				finalState = st.State
			}
		}
	}
	if progressEvents < 2 {
		t.Fatalf("saw %d progress events, want >= 2", progressEvents)
	}
	if !sawCounter {
		t.Fatalf("progress events never carried the runner's counter")
	}
	if finalState != jobs.Done {
		t.Fatalf("final SSE state = %q, want done", finalState)
	}
}

// TestCancelOverHTTP submits a job whose runner blocks until cancelled and
// checks POST /jobs/{id}/cancel brings it to cancelled within a second.
func TestCancelOverHTTP(t *testing.T) {
	idxPath := buildIndexFile(t, 13)
	srv, _ := newTestServer(t, jobs.Options{
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}, Options{})

	_, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, idxPath))
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	// Wait until running so cancellation exercises the context path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st jobs.Status
		getJSON(t, srv.URL+"/jobs/"+sub.ID, &st)
		if st.State == jobs.Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	cancelAt := time.Now()
	resp, body := postJSON(t, srv.URL+"/jobs/"+sub.ID+"/cancel", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST cancel: %d %s", resp.StatusCode, body)
	}
	st := pollDone(t, srv.URL, sub.ID)
	if st.State != jobs.Cancelled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	if lat := time.Since(cancelAt); lat > time.Second {
		t.Fatalf("cancellation took %v, want <= 1s", lat)
	}
	if resp := getJSON(t, srv.URL+"/jobs/"+sub.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", resp.StatusCode)
	}
}

// TestAdmissionControl429 fills the single worker and the queue, then
// expects 429 + Retry-After on the next distinct submission.
func TestAdmissionControl429(t *testing.T) {
	idxPath := buildIndexFile(t, 14)
	release := make(chan struct{})
	srv, _ := newTestServer(t, jobs.Options{
		Workers:  1,
		QueueCap: 1,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &core.Result{}, nil
		},
	}, Options{RetryAfter: 3 * time.Second})
	defer close(release)

	submit := func(split int) (*http.Response, []byte) {
		return postJSON(t, srv.URL+"/jobs",
			fmt.Sprintf(`{"index": %q, "split_components": %d}`, idxPath, split))
	}
	resp, body := submit(1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	var first SubmitResponse
	json.Unmarshal(body, &first)
	// Wait for the worker to pick it up so the queue slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st jobs.Status
		getJSON(t, srv.URL+"/jobs/"+first.ID, &st)
		if st.State == jobs.Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", resp.StatusCode, body)
	}
	resp3, body3 := submit(3)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit beyond capacity: %d %s, want 429", resp3.StatusCode, body3)
	}
	if ra := resp3.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
}

// TestErrorMapping covers the 400/404/409 paths.
func TestErrorMapping(t *testing.T) {
	idxPath := buildIndexFile(t, 15)
	srv, _ := newTestServer(t, jobs.Options{}, Options{})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"index":`, http.StatusBadRequest},
		{"unknown field", `{"index": "x", "bogus": 1}`, http.StatusBadRequest},
		{"missing index", `{"tasks": 2}`, http.StatusBadRequest},
		{"nonexistent index", `{"index": "/nope/missing.idx"}`, http.StatusBadRequest},
		{"invalid filter", fmt.Sprintf(`{"index": %q, "kf_min": 9, "kf_max": 3}`, idxPath), http.StatusBadRequest},
		{"negative split", fmt.Sprintf(`{"index": %q, "split_components": -1}`, idxPath), http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, srv.URL+"/jobs", c.body)
			if resp.StatusCode != c.want {
				t.Fatalf("POST %s: %d %s, want %d", c.body, resp.StatusCode, body, c.want)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not {error: ...}", body)
			}
		})
	}

	if resp := getJSON(t, srv.URL+"/jobs/j999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status of unknown job: %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/jobs/j999/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result of unknown job: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs/j999/cancel", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: %d", resp.StatusCode)
	}
}

// TestHealthMetricsAndDrain covers the probe endpoints, the Prometheus
// rendering and drain semantics: readiness flips, submission answers 503,
// running work completes.
func TestHealthMetricsAndDrain(t *testing.T) {
	idxPath := buildIndexFile(t, 16)
	mgr := jobs.NewManager(jobs.Options{})
	s := New(mgr, Options{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	defer mgr.Stop()

	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %d", resp.StatusCode)
	}

	// Run one real job so /metrics has job counters to render.
	_, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, idxPath))
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	pollDone(t, srv.URL, sub.ID)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"metaprepd_queue_capacity 16",
		"metaprepd_workers 1",
		"metaprepd_ready 1",
		`metaprepd_jobs{state="done"} 1`,
		"metaprepd_job_counter{job=\"" + sub.ID + "\"",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// pprof is wired.
	if resp := getJSON(t, srv.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}

	// Drain: readiness flips, admission answers 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if resp := getJSON(t, srv.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q, "tasks": 2}`, idxPath)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestIndexCacheReload checks the server notices a rebuilt index file and
// treats it as different work.
func TestIndexCacheReload(t *testing.T) {
	idxPathA := buildIndexFile(t, 17)
	idxPathB := buildIndexFile(t, 18)
	srv, _ := newTestServer(t, jobs.Options{}, Options{})

	shared := filepath.Join(t.TempDir(), "shared.idx")
	cp := func(from string) {
		data, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(shared, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Ensure a distinct mtime even on coarse filesystem clocks.
		old := time.Now().Add(-time.Duration(rand.Intn(1000)+1) * time.Second)
		if err := os.Chtimes(shared, old, old); err != nil {
			t.Fatal(err)
		}
	}

	cp(idxPathA)
	_, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, shared))
	var subA SubmitResponse
	if err := json.Unmarshal(data, &subA); err != nil {
		t.Fatal(err)
	}
	pollDone(t, srv.URL, subA.ID)

	cp(idxPathB)
	_, data = postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, shared))
	var subB SubmitResponse
	if err := json.Unmarshal(data, &subB); err != nil {
		t.Fatal(err)
	}
	if subB.Deduped || subB.CacheHit {
		t.Fatalf("rebuilt index wrongly treated as cached work: %+v", subB)
	}
	st := pollDone(t, srv.URL, subB.ID)
	if st.State != jobs.Done {
		t.Fatalf("job on rebuilt index: %+v", st)
	}
}

// TestSubmitSpillKnobs checks the out-of-core fields flow from the request
// body into the pipeline config: an invalid budget is rejected at admission
// with a 400 naming the field, and a valid spill submission (budget + codec,
// per-job scratch under the manager's spill root) matches the in-RAM run.
func TestSubmitSpillKnobs(t *testing.T) {
	idxPath := buildIndexFile(t, 13)
	root := t.TempDir()
	srv, _ := newTestServer(t, jobs.Options{SpillDir: root}, Options{})

	// Below core.MinSpillBudgetBytes: rejected before a job exists.
	bad := fmt.Sprintf(`{"index": %q, "spill_budget_bytes": 1024}`, idxPath)
	resp, data := postJSON(t, srv.URL+"/jobs", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /jobs with tiny budget: %d %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "SpillBudgetBytes") {
		t.Fatalf("400 body does not name the offending field: %s", data)
	}

	body := fmt.Sprintf(
		`{"index": %q, "tasks": 2, "threads": 2, "spill_budget_bytes": %d, "spill_compress": true}`,
		idxPath, core.MinSpillBudgetBytes)
	resp, data = postJSON(t, srv.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := pollDone(t, srv.URL, sub.ID); st.State != jobs.Done {
		t.Fatalf("spill job finished %s: %+v", st.State, st)
	}
	var got core.Result
	if resp := getJSON(t, srv.URL+"/jobs/"+sub.ID+"/result", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}

	idx, err := index.Load(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Default(idx)
	cfg.Tasks, cfg.Threads = 2, 2
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Components != want.Components || len(got.Labels) != len(want.Labels) {
		t.Fatalf("spill result diverges: {comps %d labels %d}, want {%d %d}",
			got.Components, len(got.Labels), want.Components, len(want.Labels))
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("labels diverge at read %d: %d vs %d", i, got.Labels[i], want.Labels[i])
		}
	}
	// Terminal job: its per-job scratch under the spill root is gone.
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill root not empty after job done: %v", ents)
	}
}

// TestSubmitPrefilterKnobs covers the prefilter request fields and the
// daemon-wide default: bad knobs 400 with the offending field named, an
// explicit prefilter_bits_per_kmer produces the exact run's labels with
// fewer tuples, and a daemon started with DefaultPrefilterBits applies the
// gate to requests that don't mention it.
func TestSubmitPrefilterKnobs(t *testing.T) {
	idxPath := buildIndexFile(t, 17)

	idx, err := index.Load(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Default(idx)
	cfg.Tasks, cfg.Threads = 2, 2
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, base, body string) {
		resp, data := postJSON(t, base+"/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		if st := pollDone(t, base, sub.ID); st.State != jobs.Done {
			t.Fatalf("prefilter job finished %s: %+v", st.State, st)
		}
		var got core.Result
		if resp := getJSON(t, base+"/jobs/"+sub.ID+"/result", &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET result: %d", resp.StatusCode)
		}
		for i := range got.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("labels diverge at read %d: %d vs %d", i, got.Labels[i], want.Labels[i])
			}
		}
		if got.Tuples >= want.Tuples {
			t.Fatalf("prefiltered job enumerated %d tuples, exact %d — gate never applied", got.Tuples, want.Tuples)
		}
	}

	t.Run("explicit", func(t *testing.T) {
		srv, _ := newTestServer(t, jobs.Options{}, Options{})
		bad := fmt.Sprintf(`{"index": %q, "prefilter_min_count": 2}`, idxPath)
		resp, data := postJSON(t, srv.URL+"/jobs", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /jobs with min_count but no bits: %d %s", resp.StatusCode, data)
		}
		if !strings.Contains(string(data), "Prefilter.MinCount") {
			t.Fatalf("400 body does not name the offending field: %s", data)
		}
		check(t, srv.URL, fmt.Sprintf(
			`{"index": %q, "tasks": 2, "threads": 2, "prefilter_bits_per_kmer": 8}`, idxPath))
	})

	t.Run("daemon default", func(t *testing.T) {
		srv, _ := newTestServer(t, jobs.Options{}, Options{DefaultPrefilterBits: 8})
		check(t, srv.URL, fmt.Sprintf(`{"index": %q, "tasks": 2, "threads": 2}`, idxPath))
	})
}
