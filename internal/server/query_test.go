package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"metaprep/internal/artifact"
	"metaprep/internal/jobs"
	"metaprep/internal/kmer"
)

const queryTestK = 21

// writeQueryArtifact synthesizes a partition artifact whose keys come from
// real k-mer strings, so HTTP queries can be issued as sequence text and
// verified against the labels written here. The same seed yields the same
// k-mer set, so two artifacts with different labelBase are swap-detectable.
func writeQueryArtifact(t *testing.T, path string, labelBase uint32, seed int64) (kmers []string, labels []uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type keyed struct {
		key uint64
		s   string
	}
	var ks []keyed
	seen := map[uint64]bool{}
	for len(ks) < 60 {
		b := make([]byte, queryTestK)
		for i := range b {
			b[i] = "ACGT"[rng.Intn(4)]
		}
		m, ok := kmer.Encode64(b)
		if !ok {
			t.Fatal("encode failed")
		}
		key := uint64(kmer.Canonical64(m, queryTestK))
		if seen[key] {
			continue
		}
		seen[key] = true
		ks = append(ks, keyed{key, string(b)})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })

	w, err := artifact.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, false, 512); err != nil {
		t.Fatal(err)
	}
	for i, e := range ks {
		if err := w.Tuple(0, e.key, uint32(i)); err != nil {
			t.Fatal(err)
		}
		kmers = append(kmers, e.s)
		labels = append(labels, labelBase+uint32(i))
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Labels(labels); err != nil {
		t.Fatal(err)
	}
	hist := make([]uint64, 4)
	hist[1] = uint64(len(ks)) // every key has exactly one tuple
	if err := w.Hist(hist); err != nil {
		t.Fatal(err)
	}
	err = w.Finish(artifact.Meta{
		Kind: artifact.KindPartition, K: queryTestK, M: 8,
		Reads: uint32(len(ks)), FilterMin: 1, IndexDigest: "query-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return kmers, labels
}

// absentKmer finds a k-mer string whose canonical key is not in the
// artifact, so miss paths can be exercised without false hits.
func absentKmer(t *testing.T, present []string) string {
	t.Helper()
	seen := map[uint64]bool{}
	for _, s := range present {
		m, _ := kmer.Encode64([]byte(s))
		seen[uint64(kmer.Canonical64(m, queryTestK))] = true
	}
	rng := rand.New(rand.NewSource(999))
	for tries := 0; tries < 1000; tries++ {
		b := make([]byte, queryTestK)
		for i := range b {
			b[i] = "ACGT"[rng.Intn(4)]
		}
		m, _ := kmer.Encode64(b)
		if !seen[uint64(kmer.Canonical64(m, queryTestK))] {
			return string(b)
		}
	}
	t.Fatal("could not find absent k-mer")
	return ""
}

func waitSwaps(t *testing.T, tier *QueryTier, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tier.Swaps() < want {
		if time.Now().After(deadline) {
			t.Fatalf("tier never reached %d swaps (at %d)", want, tier.Swaps())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQueryEndpoint is the query-tier e2e: serve an artifact, answer k-mer
// and sequence batches over HTTP with labels verified against what the
// artifact recorded, report siblings from the histogram, reject malformed
// requests, and hot-swap to a newer artifact committed under the followed
// key without dropping a query.
func TestQueryEndpoint(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.mpa")
	pathB := filepath.Join(dir, "b.mpa")
	kms, labsA := writeQueryArtifact(t, pathA, 0, 7)
	_, labsB := writeQueryArtifact(t, pathB, 10000, 7)

	tier, err := NewQueryTier(QueryOptions{
		Dir:      filepath.Join(dir, "serve"),
		Artifact: pathA,
		Key:      "p-test.mpa",
		MaxBatch: 16, MaxConcurrent: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tier.Close)
	srv, _ := newTestServer(t, jobs.Options{Workers: 1}, Options{Query: tier})

	// K-mer batch with siblings: labels must match the artifact's, every
	// key has multiplicity 1, and its sibling count is nkeys-1.
	miss := absentKmer(t, kms)
	body := fmt.Sprintf(`{"kmers":[%q,%q,%q,%q],"siblings":true}`, kms[0], kms[7], kms[59], miss)
	resp, data := postJSON(t, srv.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %d %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	mustUnmarshal(t, data, &qr)
	if qr.K != queryTestK || qr.Keys != uint64(len(kms)) || qr.Epoch != 1 {
		t.Fatalf("response header wrong: %+v", qr)
	}
	wantLabels := []uint32{labsA[0], labsA[7], labsA[59]}
	for i, want := range wantLabels {
		a := qr.Kmers[i]
		if !a.Found || a.Label != want || a.Count != 1 {
			t.Fatalf("kmers[%d] = %+v, want label %d count 1", i, a, want)
		}
		if a.Siblings != uint64(len(kms)-1) {
			t.Fatalf("kmers[%d].Siblings = %d, want %d", i, a.Siblings, len(kms)-1)
		}
	}
	if qr.Kmers[3].Found {
		t.Fatalf("absent k-mer reported found: %+v", qr.Kmers[3])
	}

	// Sequence path: a sequence that IS one stored k-mer resolves to its
	// label; an unknown sequence misses on every window.
	body = fmt.Sprintf(`{"sequences":[%q,%q]}`, kms[3], miss)
	resp, data = postJSON(t, srv.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query sequences: %d %s", resp.StatusCode, data)
	}
	qr = QueryResponse{}
	mustUnmarshal(t, data, &qr)
	if s := qr.Sequences[0]; !s.Found || s.Label != labsA[3] || s.Kmers != 1 || s.Hits != 1 {
		t.Fatalf("sequence[0] = %+v, want label %d", s, labsA[3])
	}
	if s := qr.Sequences[1]; s.Found || s.Hits != 0 {
		t.Fatalf("sequence[1] = %+v, want miss", s)
	}

	// Malformed requests map to 400: wrong k, invalid base, empty batch,
	// oversized batch.
	for _, bad := range []string{
		`{"kmers":["ACGT"]}`,
		fmt.Sprintf(`{"kmers":[%q]}`, strings.Repeat("N", queryTestK)),
		`{}`,
		fmt.Sprintf(`{"kmers":[%s]}`, strings.Repeat(fmt.Sprintf("%q,", kms[0]), 16)+fmt.Sprintf("%q", kms[0])),
	} {
		resp, data := postJSON(t, srv.URL+"/query", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %s: got %d %s, want 400", bad[:min(len(bad), 40)], resp.StatusCode, data)
		}
	}

	// Metrics: query families present, histogram observed our requests.
	resp, data = postJSON(t, srv.URL+"/query", fmt.Sprintf(`{"kmers":[%q]}`, kms[1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d", resp.StatusCode)
	}
	mresp := getJSON(t, srv.URL+"/metrics", nil)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", mresp.StatusCode)
	}
	mbody := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		"metaprepd_query_seconds_bucket", "metaprepd_queries_total",
		"metaprepd_query_lookup_keys 60", "metaprepd_query_swaps_total 1",
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Hot swap: committing under the followed key republishes; the same
	// query then answers with artifact B's labels and epoch 2. A commit
	// under an unrelated name must not swap.
	tier.ArtifactCommitted("p-other.mpa", pathA)
	tier.ArtifactCommitted("p-test.mpa", pathB)
	waitSwaps(t, tier, 2)
	resp, data = postJSON(t, srv.URL+"/query", fmt.Sprintf(`{"kmers":[%q]}`, kms[5]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap query: %d %s", resp.StatusCode, data)
	}
	qr = QueryResponse{}
	mustUnmarshal(t, data, &qr)
	if qr.Epoch != 2 || qr.Kmers[0].Label != labsB[5] {
		t.Fatalf("post-swap answer = %+v, want epoch 2 label %d", qr, labsB[5])
	}
}

// TestQueryTierAutoKey: with Key "auto" and no initial artifact, the tier
// answers 503 until the first committed partition artifact is adopted, then
// follows that name only.
func TestQueryTierAutoKey(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.mpa")
	_, labsA := writeQueryArtifact(t, pathA, 500, 7)
	kms, _ := writeQueryArtifact(t, filepath.Join(dir, "same.mpa"), 0, 7)

	tier, err := NewQueryTier(QueryOptions{Dir: filepath.Join(dir, "serve"), Key: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tier.Close)

	if _, code, err := tier.Execute(QueryRequest{Kmers: kms[:1]}); code != http.StatusServiceUnavailable || err == nil {
		t.Fatalf("expected 503 before first artifact, got %d %v", code, err)
	}
	// Incremental artifacts never get adopted.
	tier.ArtifactCommitted("i-job1.mpa", pathA)
	if k := tier.FollowedKey(); k != "auto" {
		t.Fatalf("adopted incremental artifact: key %q", k)
	}
	tier.ArtifactCommitted("p-first.mpa", pathA)
	if k := tier.FollowedKey(); k != "p-first.mpa" {
		t.Fatalf("key = %q, want p-first.mpa", k)
	}
	waitSwaps(t, tier, 1)
	resp, code, err := tier.Execute(QueryRequest{Kmers: kms[:1]})
	if err != nil {
		t.Fatalf("execute after adoption: %d %v", code, err)
	}
	if !resp.Kmers[0].Found || resp.Kmers[0].Label != labsA[0] {
		t.Fatalf("answer = %+v, want label %d", resp.Kmers[0], labsA[0])
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
