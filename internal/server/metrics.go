package server

// metrics.go renders GET /metrics in the Prometheus text exposition format
// (0.0.4). Every family carries HELP and TYPE before its samples, histogram
// buckets are cumulative with the canonical `le` labels, and series within a
// family are emitted in deterministic sorted order — properties the strict
// validator in metrics_test.go pins.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"metaprep/internal/jobs"
	"metaprep/internal/obsv"
)

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// writeMetrics is the body of /metrics, split out so tests can render to a
// buffer without an HTTP round trip.
func (s *Server) writeMetrics(w io.Writer) {
	st := s.mgr.StatsSnapshot()

	family(w, "metaprepd_queue_depth", "Submitted jobs waiting for a worker.", "gauge")
	fmt.Fprintf(w, "metaprepd_queue_depth %d\n", st.QueueDepth)
	family(w, "metaprepd_queue_capacity", "Admission-control bound on the submission queue.", "gauge")
	fmt.Fprintf(w, "metaprepd_queue_capacity %d\n", st.QueueCapacity)
	family(w, "metaprepd_workers", "Concurrent pipeline runs the daemon executes.", "gauge")
	fmt.Fprintf(w, "metaprepd_workers %d\n", st.Workers)
	family(w, "metaprepd_cache_entries", "Entries resident in the content-addressed result cache.", "gauge")
	fmt.Fprintf(w, "metaprepd_cache_entries %d\n", st.CacheEntries)
	family(w, "metaprepd_cache_hits_total", "Submissions satisfied from the result cache.", "counter")
	fmt.Fprintf(w, "metaprepd_cache_hits_total %d\n", st.CacheHits)
	family(w, "metaprepd_cache_bytes", "Estimated resident bytes of the cached results (labels dominate).", "gauge")
	fmt.Fprintf(w, "metaprepd_cache_bytes %d\n", st.CacheBytes)
	if s.mgr.ArtifactStoreEnabled() {
		family(w, "metaprepd_artifact_entries", "Artifacts resident in the on-disk partition artifact store.", "gauge")
		fmt.Fprintf(w, "metaprepd_artifact_entries %d\n", st.ArtifactEntries)
		family(w, "metaprepd_artifact_bytes", "Disk bytes the artifact store occupies.", "gauge")
		fmt.Fprintf(w, "metaprepd_artifact_bytes %d\n", st.ArtifactBytes)
		family(w, "metaprepd_artifact_hits_total", "Jobs satisfied by reloading a stored partition artifact.", "counter")
		fmt.Fprintf(w, "metaprepd_artifact_hits_total %d\n", st.ArtifactHits)
		family(w, "metaprepd_artifact_misses_total", "Store lookups that fell through to a full pipeline run.", "counter")
		fmt.Fprintf(w, "metaprepd_artifact_misses_total %d\n", st.ArtifactMisses)
	}
	family(w, "metaprepd_orphans_swept_total", "Orphaned spill scratch directories removed by the startup sweep.", "counter")
	fmt.Fprintf(w, "metaprepd_orphans_swept_total %d\n", s.opts.OrphansSwept)
	family(w, "metaprepd_traces_dumped_total", "Automatic flight-recorder dumps written for failed, cancelled or SLO-breaching jobs.", "counter")
	fmt.Fprintf(w, "metaprepd_traces_dumped_total %d\n", st.TracesDumped)

	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	family(w, "metaprepd_ready", "1 while accepting submissions, 0 once draining.", "gauge")
	fmt.Fprintf(w, "metaprepd_ready %d\n", ready)

	family(w, "metaprepd_jobs", "Jobs by lifecycle state.", "gauge")
	states := make([]string, 0, len(st.Jobs))
	for state := range st.Jobs {
		states = append(states, string(state))
	}
	sort.Strings(states)
	for _, state := range states {
		fmt.Fprintf(w, "metaprepd_jobs{state=%q} %d\n", state, st.Jobs[jobs.State(state)])
	}

	// Jobs-layer latency histograms plus the merged per-step distributions
	// of every completed run. All families share obsv's fixed log2 bucket
	// boundaries, so series from different daemons aggregate cleanly.
	h := s.mgr.Histograms()
	les := histBucketLabels()
	writeHistFamily(w, "metaprepd_job_queue_seconds",
		"Queue wait per executed job.", []labeledHist{{"", h.Queue}}, les)
	writeHistFamily(w, "metaprepd_job_run_seconds",
		"Pipeline run time per executed job.", []labeledHist{{"", h.Run}}, les)
	writeHistFamily(w, "metaprepd_job_total_seconds",
		"End-to-end latency (submit to terminal state) per executed job.", []labeledHist{{"", h.Total}}, les)
	stepNames := make([]string, 0, len(h.Steps))
	for name := range h.Steps {
		stepNames = append(stepNames, name)
	}
	sort.Strings(stepNames)
	steps := make([]labeledHist, 0, len(stepNames))
	for _, name := range stepNames {
		steps = append(steps, labeledHist{"step=" + strconv.Quote(name), h.Steps[name]})
	}
	writeHistFamily(w, "metaprepd_step_seconds",
		"Per-step pipeline latency across all ranks of completed jobs.", steps, les)

	// Model drift: measured-vs-predicted ratio per step from the most recent
	// completed job's reconciliation, plus the run-wide total and the wire-
	// and spill-byte ratios under reserved lowercase step values (step names
	// themselves are CamelCase, so they cannot collide).
	if d := s.mgr.LastDrift(); d != nil {
		family(w, "metaprepd_model_drift_ratio",
			"Measured/predicted ratio per pipeline step from the last completed job (1.0 = model exact).", "gauge")
		for _, sd := range d.Steps {
			fmt.Fprintf(w, "metaprepd_model_drift_ratio{step=%q} %s\n", sd.Step, fmtFloat(sd.Ratio))
		}
		fmt.Fprintf(w, "metaprepd_model_drift_ratio{step=\"total\"} %s\n", fmtFloat(d.TotalRatio))
		fmt.Fprintf(w, "metaprepd_model_drift_ratio{step=\"wire\"} %s\n", fmtFloat(d.WireRatio))
		fmt.Fprintf(w, "metaprepd_model_drift_ratio{step=\"spill\"} %s\n", fmtFloat(d.SpillRatio))
	}

	// Query tier: lookup state gauges, traffic counters and the request
	// latency histogram (admission to response encode).
	if t := s.opts.Query; t != nil {
		var keys, epoch uint64
		if ep, ok := t.swap.Acquire(); ok {
			keys = ep.Lookup().Keys()
			epoch = ep.Seq()
			ep.Release()
		}
		family(w, "metaprepd_query_lookup_keys", "Distinct k-mers in the served lookup (0 = nothing served).", "gauge")
		fmt.Fprintf(w, "metaprepd_query_lookup_keys %d\n", keys)
		family(w, "metaprepd_query_epoch", "Hot-swap generation of the served lookup (0 = nothing served).", "gauge")
		fmt.Fprintf(w, "metaprepd_query_epoch %d\n", epoch)
		family(w, "metaprepd_queries_total", "Query batches answered.", "counter")
		fmt.Fprintf(w, "metaprepd_queries_total %d\n", t.queries.Load())
		family(w, "metaprepd_query_kmers_total", "K-mers probed across all query batches.", "counter")
		fmt.Fprintf(w, "metaprepd_query_kmers_total %d\n", t.kmers.Load())
		family(w, "metaprepd_query_misses_total", "Probed k-mers absent from the served lookup.", "counter")
		fmt.Fprintf(w, "metaprepd_query_misses_total %d\n", t.misses.Load())
		family(w, "metaprepd_query_rejected_total", "Query batches rejected by admission control (429).", "counter")
		fmt.Fprintf(w, "metaprepd_query_rejected_total %d\n", t.rejected.Load())
		family(w, "metaprepd_query_swaps_total", "Lookup publications (initial serve + hot swaps).", "counter")
		fmt.Fprintf(w, "metaprepd_query_swaps_total %d\n", t.swaps.Load())
		writeHistFamily(w, "metaprepd_query_seconds",
			"Query request latency (admission to response encode).", []labeledHist{{"", t.hist.Snapshot()}}, les)
	}

	// Per-job pipeline counters: the obsv snapshot, one sample per
	// (job, counter, rank). Counter names become label values, not metric
	// names, so arbitrary "/"-separated obsv names need no escaping.
	family(w, "metaprepd_job_counter", "Per-job obsv counters, one series per (job, counter, rank).", "gauge")
	for _, js := range s.mgr.List() {
		full, err := s.mgr.Status(js.ID)
		if err != nil {
			continue
		}
		for _, cv := range full.Counters {
			fmt.Fprintf(w, "metaprepd_job_counter{job=%q,name=%q,rank=\"%d\"} %d\n",
				js.ID, cv.Name, cv.Rank, cv.Value)
		}
	}
}

// family writes the HELP and TYPE header every metric family must lead with.
func family(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fmtFloat renders a float the way Prometheus expects (shortest round-trip
// form; "+Inf"/"NaN" never occur here because drift ratios are ε-smoothed).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// histBucketLabels returns the `le` label values shared by every histogram
// family: obsv's pinned log2 bounds in seconds, then +Inf.
func histBucketLabels() []string {
	bounds := obsv.HistogramBounds()
	out := make([]string, len(bounds)+1)
	for i, b := range bounds {
		out[i] = fmtFloat(b.Seconds())
	}
	out[len(bounds)] = "+Inf"
	return out
}

// labeledHist pairs one histogram series with its pre-rendered extra labels
// ("" for none, `step="LocalSort"` for a step series).
type labeledHist struct {
	labels string
	snap   obsv.HistogramSnapshot
}

// writeHistFamily renders one histogram family: cumulative `le` buckets,
// then _sum (seconds) and _count per series.
func writeHistFamily(w io.Writer, name, help string, series []labeledHist, les []string) {
	family(w, name, help, "histogram")
	for _, s := range series {
		var cum uint64
		for i, le := range les {
			cum += s.snap.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, withLe(s.labels, le), cum)
		}
		fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", s.labels),
			fmtFloat(time.Duration(s.snap.SumNanos).Seconds()))
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", s.labels), s.snap.Count)
	}
}

// withLe appends the le label to a pre-rendered label list.
func withLe(labels, le string) string {
	if labels == "" {
		return `le=` + strconv.Quote(le)
	}
	return labels + `,le=` + strconv.Quote(le)
}

// seriesName renders a sample name with an optional label set.
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}
