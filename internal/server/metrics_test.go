package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"metaprep/internal/jobs"
)

// splitSample tears one exposition line into (name, labels, value).
func splitSample(t *testing.T, line string) (name, labels, value string) {
	t.Helper()
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("malformed sample %q", line)
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:])
	}
	f := strings.Fields(line)
	if len(f) != 2 {
		t.Fatalf("malformed sample %q", line)
	}
	return f[0], "", f[1]
}

// familyOf maps a sample name onto its declared family: itself, or — for
// histogram families — the base of a _bucket/_sum/_count suffix.
func familyOf(name string, typ map[string]string) (family, suffix string) {
	if _, ok := typ[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typ[base] == "histogram" {
			return base, suf
		}
	}
	return "", ""
}

// extractLe splits the le pair off a bucket sample's label list, returning
// its parsed bound and the remaining labels.
func extractLe(t *testing.T, labels string) (le float64, rest string) {
	t.Helper()
	const marker = `le="`
	i := strings.Index(labels, marker)
	if i < 0 {
		t.Fatalf("bucket sample without le label: %q", labels)
	}
	end := strings.IndexByte(labels[i+len(marker):], '"')
	if end < 0 {
		t.Fatalf("unterminated le label: %q", labels)
	}
	v := labels[i+len(marker) : i+len(marker)+end]
	rest = strings.TrimSuffix(labels[:i], ",")
	if v == "+Inf" {
		return math.Inf(1), rest
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("bad le bound %q: %v", v, err)
	}
	return f, rest
}

// validateProm is the strict Prometheus text-format (0.0.4) check: every
// family declares HELP then TYPE before any sample, no family or series is
// emitted twice, every value parses, and each histogram series has strictly
// increasing le bounds, non-decreasing cumulative buckets ending at +Inf,
// with the +Inf bucket equal to _count and a _sum alongside.
func validateProm(t *testing.T, text string) {
	t.Helper()
	help := make(map[string]bool)
	typ := make(map[string]string)
	seen := make(map[string]bool)
	type hkey struct{ family, labels string }
	type bucket struct{ le, val float64 }
	buckets := make(map[hkey][]bucket)
	counts := make(map[hkey]float64)
	sums := make(map[hkey]bool)

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP without text: %q", line)
			}
			if help[parts[0]] {
				t.Fatalf("duplicate HELP for %s", parts[0])
			}
			help[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			name, ty := parts[0], parts[1]
			if !help[name] {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			typ[name] = ty
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, labels, valStr := splitSample(t, line)
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			series := name + "{" + labels + "}"
			if seen[series] {
				t.Fatalf("duplicate series %q", series)
			}
			seen[series] = true
			fam, suffix := familyOf(name, typ)
			if fam == "" {
				t.Fatalf("sample %q precedes its HELP/TYPE declaration", line)
			}
			if typ[fam] != "histogram" {
				continue
			}
			switch suffix {
			case "_bucket":
				le, rest := extractLe(t, labels)
				k := hkey{fam, rest}
				buckets[k] = append(buckets[k], bucket{le, v})
			case "_sum":
				sums[hkey{fam, labels}] = true
			case "_count":
				counts[hkey{fam, labels}] = v
			default:
				t.Fatalf("bare sample %q in histogram family %s", line, fam)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for k, bs := range buckets {
		prevLe, prevVal := math.Inf(-1), 0.0
		for _, b := range bs {
			if b.le <= prevLe {
				t.Fatalf("%s{%s}: le bounds not increasing (%v after %v)", k.family, k.labels, b.le, prevLe)
			}
			if b.val < prevVal {
				t.Fatalf("%s{%s}: cumulative bucket decreased at le=%v", k.family, k.labels, b.le)
			}
			prevLe, prevVal = b.le, b.val
		}
		if !math.IsInf(prevLe, 1) {
			t.Fatalf("%s{%s}: last bucket is not +Inf", k.family, k.labels)
		}
		c, ok := counts[k]
		if !ok {
			t.Fatalf("%s{%s}: missing _count", k.family, k.labels)
		}
		if prevVal != c {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", k.family, k.labels, prevVal, c)
		}
		if !sums[k] {
			t.Fatalf("%s{%s}: missing _sum", k.family, k.labels)
		}
	}
}

// TestMetricsStrictFormat runs a real job through the daemon and holds the
// full /metrics output to the strict format check, then spot-checks the
// families the observability layer added.
func TestMetricsStrictFormat(t *testing.T) {
	idxPath := buildIndexFile(t, 41)
	srv, _ := newTestServer(t, jobs.Options{}, Options{OrphansSwept: 7})

	resp, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index":%q,"tasks":2,"threads":2}`, idxPath))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := pollDone(t, srv.URL, sub.ID); st.State != jobs.Done {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	// The terminal observation runs just after the done signal; poll until
	// the run histogram has the job.
	var text string
	deadline := 50
	for ; deadline > 0; deadline-- {
		r, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		text = string(b)
		if strings.Contains(text, "metaprepd_job_run_seconds_count 1") {
			break
		}
	}
	if deadline == 0 {
		t.Fatalf("job never observed in run histogram:\n%s", text)
	}

	validateProm(t, text)

	for _, want := range []string{
		"metaprepd_orphans_swept_total 7\n",
		"metaprepd_traces_dumped_total 0\n",
		`metaprepd_job_queue_seconds_bucket{le="+Inf"} 1`,
		`metaprepd_job_total_seconds_count 1`,
		`metaprepd_step_seconds_bucket{step="KmerGen",le="+Inf"}`,
		`metaprepd_step_seconds_bucket{step="LocalSort",le="+Inf"}`,
		`metaprepd_model_drift_ratio{step="KmerGen"}`,
		`metaprepd_model_drift_ratio{step="total"}`,
		`metaprepd_model_drift_ratio{step="wire"}`,
		`metaprepd_model_drift_ratio{step="spill"}`,
		`metaprepd_jobs{state="done"} 1`,
		"metaprepd_job_counter{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Drift ratios are ε-smoothed: every exported ratio must be a positive
	// finite number.
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "metaprepd_model_drift_ratio{") {
			continue
		}
		_, _, valStr := splitSample(t, line)
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil || math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
			t.Errorf("drift ratio not positive finite: %q", line)
		}
	}
}

// TestMetricsBucketGolden pins the exported le labels: these are scraped
// boundaries — changing them breaks continuity of every deployed dashboard,
// so a change here must be deliberate.
func TestMetricsBucketGolden(t *testing.T) {
	les := histBucketLabels()
	if len(les) != 37 {
		t.Fatalf("%d le labels, want 37", len(les))
	}
	for i, want := range map[int]string{
		0:  "1e-06",
		1:  "2e-06",
		5:  "3.2e-05",
		10: "0.001024",
		20: "1.048576",
		35: "34359.738368",
		36: "+Inf",
	} {
		if les[i] != want {
			t.Errorf("le[%d] = %q, want %q", i, les[i], want)
		}
	}
}

// TestTraceEndpoint fetches a completed job's flight-recorder dump over
// HTTP and checks shape and the 404 path.
func TestTraceEndpoint(t *testing.T) {
	idxPath := buildIndexFile(t, 42)
	srv, _ := newTestServer(t, jobs.Options{}, Options{})

	resp, data := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index":%q,"tasks":2,"threads":2}`, idxPath))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := pollDone(t, srv.URL, sub.ID); st.State != jobs.Done {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	r, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", r.StatusCode, body)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content type %q", ct)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans, metaSeen := 0, false
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			metaSeen = true
			if spans > 0 {
				t.Fatal("metadata event after the first span")
			}
		case "X":
			spans++
		}
	}
	if !metaSeen || spans == 0 {
		t.Fatalf("trace has meta=%v spans=%d", metaSeen, spans)
	}
	if trace.OtherData["ring_capacity"] == nil {
		t.Fatal("trace missing flight-recorder provenance (ring_capacity)")
	}

	if r, err := http.Get(srv.URL + "/jobs/nope/trace"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job trace: %d, want 404", r.StatusCode)
		}
	}
}
