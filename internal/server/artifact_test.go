package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"metaprep/internal/jobs"
)

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

// TestArtifactEndToEnd drives the artifact surface over HTTP with real
// pipeline runs: a first job persists its artifact, an identical-key
// submission at a different shape reloads it, the artifact bytes stream
// from /jobs/{id}/artifact, /artifacts lists the store, and a delta_of
// submission runs an incremental repartitioning chained on the first job.
func TestArtifactEndToEnd(t *testing.T) {
	idx1 := buildIndexFile(t, 41)
	idx2 := buildIndexFile(t, 43) // a different read set = the delta
	srv, _ := newTestServer(t,
		jobs.Options{ArtifactDir: t.TempDir()}, Options{})

	// Job 1: computed, artifact persisted.
	resp, body := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, idx1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	mustUnmarshal(t, body, &sub)
	st := pollDone(t, srv.URL, sub.ID)
	if !st.Artifact || st.ArtifactReload {
		t.Fatalf("first job: %+v", st)
	}

	// The stored artifact streams back with the format magic.
	araw, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(araw.Body)
	araw.Body.Close()
	if araw.StatusCode != http.StatusOK || len(blob) < 8 || string(blob[:4]) != "MPAF" {
		t.Fatalf("artifact fetch: %d, %d bytes", araw.StatusCode, len(blob))
	}

	// /artifacts lists it.
	var ents []jobs.ArtifactEntry
	if resp := getJSON(t, srv.URL+"/artifacts", &ents); resp.StatusCode != http.StatusOK {
		t.Fatalf("/artifacts: %d", resp.StatusCode)
	}
	if len(ents) != 1 || !strings.HasPrefix(ents[0].Name, "p-") || ents[0].Bytes != int64(len(blob)) {
		t.Fatalf("/artifacts listing: %+v", ents)
	}
	if ents[0].ModTime.IsZero() || ents[0].LastAccess.IsZero() {
		t.Fatalf("/artifacts entry missing timestamps: %+v", ents[0])
	}

	// Same key at a different shape: served by artifact reload, and the
	// result agrees with the computed one.
	resp, body = postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q, "tasks": 2}`, idx1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reload submit: %d %s", resp.StatusCode, body)
	}
	var sub2 SubmitResponse
	mustUnmarshal(t, body, &sub2)
	st2 := pollDone(t, srv.URL, sub2.ID)
	if !st2.ArtifactReload {
		t.Fatalf("second job did not reload: %+v", st2)
	}

	// Incremental: idx2 as a delta over job 1's artifact.
	resp, body = postJSON(t, srv.URL+"/jobs",
		fmt.Sprintf(`{"index": %q, "delta_of": %q}`, idx2, sub.ID))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delta submit: %d %s", resp.StatusCode, body)
	}
	var sub3 SubmitResponse
	mustUnmarshal(t, body, &sub3)
	st3 := pollDone(t, srv.URL, sub3.ID)
	if st3.State != jobs.Done || !st3.Artifact {
		t.Fatalf("delta job: %+v", st3)
	}
	// The merged artifact is retrievable and can chain.
	if resp := getJSON(t, srv.URL+"/jobs/"+sub3.ID+"/artifact", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("merged artifact fetch: %d", resp.StatusCode)
	}

	// The /metrics surface reports the store.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"metaprepd_cache_bytes ", "metaprepd_artifact_entries ",
		"metaprepd_artifact_hits_total 1", "metaprepd_artifact_bytes ",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Unknown delta_of base is a 400, as is an artifact request once the
	// store is disabled.
	if resp, _ := postJSON(t, srv.URL+"/jobs",
		fmt.Sprintf(`{"index": %q, "delta_of": "j999"}`, idx2)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad delta_of: %d", resp.StatusCode)
	}
}

func TestArtifactWithoutStore(t *testing.T) {
	idx := buildIndexFile(t, 47)
	srv, _ := newTestServer(t, jobs.Options{}, Options{})

	if resp, body := postJSON(t, srv.URL+"/jobs",
		fmt.Sprintf(`{"index": %q, "artifact": true}`, idx)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("artifact on storeless daemon: %d %s", resp.StatusCode, body)
	}
	if resp := getJSON(t, srv.URL+"/artifacts", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/artifacts on storeless daemon: %d", resp.StatusCode)
	}
	// A plain job on a storeless daemon has no artifact endpoint result.
	resp, body := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"index": %q}`, idx))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	mustUnmarshal(t, body, &sub)
	pollDone(t, srv.URL, sub.ID)
	if resp := getJSON(t, srv.URL+"/jobs/"+sub.ID+"/artifact", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("artifact of storeless job: %d", resp.StatusCode)
	}
}
