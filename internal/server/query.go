package server

// query.go is the high-QPS read path (ROADMAP item 5): POST /query answers
// component-label lookups for batches of k-mers or raw sequences from a
// memory-mapped lookup file (internal/lookup) built out of a partition
// artifact. The tier hot-swaps the served lookup when the artifact store
// admits a newer artifact for the followed key, admission-controls bursts
// with the jobs-layer 429 machinery, and reports latency through an obsv
// log2 histogram (metaprepd_query_seconds).

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metaprep/internal/artifact"
	"metaprep/internal/jobs"
	"metaprep/internal/kmer"
	"metaprep/internal/lookup"
	"metaprep/internal/obsv"
)

// QueryOptions configures the query tier.
type QueryOptions struct {
	// Dir is where built lookup files (.mplk) are written (required).
	Dir string
	// Artifact, when set, is served from startup: a .mpa is converted to a
	// lookup first, a .mplk is mapped in place. Startup fails if it cannot
	// be served.
	Artifact string
	// Key is the artifact-store name to follow for hot swap: every time
	// the store admits an artifact committed under this name, the tier
	// rebuilds and atomically swaps the served lookup. The special value
	// "auto" adopts the first committed partition artifact ("p-…") and
	// follows that name from then on. Empty disables auto swap.
	Key string
	// Shards is the lookup build shard count (default lookup.DefaultShards).
	Shards int
	// MaxBatch bounds the items (k-mers + sequences) per request (default
	// 8192); larger requests are rejected with 400.
	MaxBatch int
	// MaxConcurrent bounds requests in flight; excess is rejected with 429
	// + Retry-After, reusing the jobs-layer admission contract (default 64).
	MaxConcurrent int
	// Workers sizes the shard-parallel batch pool (default GOMAXPROCS).
	Workers int
	// Logger receives swap and rebuild records. Nil logs nothing.
	Logger *slog.Logger
}

// QueryTier owns the served lookup, its swap lifecycle, admission gate and
// metrics. Create with NewQueryTier, hand to server.Options.Query, wire
// ArtifactCommitted into jobs.Options.OnArtifactCommit, and Close on
// shutdown.
type QueryTier struct {
	opts QueryOptions
	lg   *slog.Logger

	swap    *lookup.Swapper
	batcher *lookup.Batcher
	sem     chan struct{}
	hist    *obsv.Histogram

	queries  atomic.Uint64
	kmers    atomic.Uint64
	misses   atomic.Uint64
	rejected atomic.Uint64
	swaps    atomic.Uint64

	keyMu sync.Mutex
	key   string // followed store key; "auto" until adopted, "" = disabled

	rebuildC chan string
	quit     chan struct{}
	wg       sync.WaitGroup
	prevFile string // lookup file of the previous epoch, removed on swap
	buildSeq atomic.Uint64

	scratch sync.Pool
}

type queryScratch struct {
	hi, lo []uint64
	res    []lookup.Result
	labs   []uint32
}

// NewQueryTier builds the tier and, when opts.Artifact is set, serves it
// synchronously before returning (so a daemon flagged to serve fails fast
// on a bad artifact).
func NewQueryTier(opts QueryOptions) (*QueryTier, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("query tier: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if opts.Shards <= 0 {
		opts.Shards = lookup.DefaultShards
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 8192
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	t := &QueryTier{
		opts:     opts,
		lg:       opts.Logger,
		swap:     lookup.NewSwapper(),
		batcher:  lookup.NewBatcher(opts.Workers),
		sem:      make(chan struct{}, opts.MaxConcurrent),
		hist:     obsv.NewHistogram(),
		key:      opts.Key,
		rebuildC: make(chan string, 1),
		quit:     make(chan struct{}),
	}
	t.scratch.New = func() any { return new(queryScratch) }
	if opts.Artifact != "" {
		lk, file, err := t.buildLookup(opts.Artifact)
		if err != nil {
			t.batcher.Close()
			return nil, err
		}
		t.swap.Swap(lk)
		t.swaps.Add(1)
		t.prevFile = file
		if t.lg != nil {
			t.lg.Info("query tier serving", "source", lk.Meta().Source,
				"keys", lk.Keys(), "shards", lk.Shards(), "bytes", lk.Size())
		}
	}
	t.wg.Add(1)
	go t.rebuildLoop()
	return t, nil
}

// buildLookup turns src (.mpa or .mplk) into an open Lookup. For
// artifacts it runs the offline builder into Dir under a unique name and
// returns that file's path so the swap loop can unlink the previous
// generation (the mapping keeps the old file alive until its epoch
// drains). For .mplk inputs the file is served in place ("" path: never
// unlinked).
func (t *QueryTier) buildLookup(src string) (*lookup.Lookup, string, error) {
	if strings.HasSuffix(src, ".mplk") {
		lk, err := lookup.Open(src)
		return lk, "", err
	}
	ar, err := artifact.Open(src)
	if err != nil {
		return nil, "", err
	}
	defer ar.Close()
	base := strings.TrimSuffix(filepath.Base(src), ".mpa")
	out := filepath.Join(t.opts.Dir, fmt.Sprintf("%s.%d.mplk", base, t.buildSeq.Add(1)))
	if _, err := lookup.Build(ar, out, lookup.BuildOptions{Shards: t.opts.Shards}); err != nil {
		return nil, "", err
	}
	lk, err := lookup.Open(out)
	if err != nil {
		os.Remove(out)
		return nil, "", err
	}
	return lk, out, nil
}

// ArtifactCommitted is the jobs.Options.OnArtifactCommit hook: when the
// committed name matches the followed key (or adopts it under "auto"), the
// artifact is queued for an asynchronous rebuild + hot swap. Queueing
// coalesces — only the newest pending artifact is built.
func (t *QueryTier) ArtifactCommitted(name, path string) {
	t.keyMu.Lock()
	key := t.key
	if key == "auto" && strings.HasPrefix(name, "p-") {
		t.key = name
		key = name
		if t.lg != nil {
			t.lg.Info("query tier adopted artifact key", "key", name)
		}
	}
	t.keyMu.Unlock()
	if key == "" || name != key {
		return
	}
	select {
	case <-t.rebuildC: // drop a stale pending build
	default:
	}
	select {
	case t.rebuildC <- path:
	default:
	}
}

// FollowedKey returns the store key the tier currently follows.
func (t *QueryTier) FollowedKey() string {
	t.keyMu.Lock()
	defer t.keyMu.Unlock()
	return t.key
}

// Swaps returns how many times a lookup has been (re)published.
func (t *QueryTier) Swaps() uint64 { return t.swaps.Load() }

func (t *QueryTier) rebuildLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.quit:
			return
		case p := <-t.rebuildC:
			start := time.Now()
			lk, file, err := t.buildLookup(p)
			if err != nil {
				if t.lg != nil {
					t.lg.Warn("query tier rebuild failed", "artifact", p, "err", err)
				}
				continue
			}
			t.swap.Swap(lk)
			t.swaps.Add(1)
			if t.prevFile != "" && t.prevFile != file {
				// Safe while the old epoch still maps it: the mapping pins
				// the inode until the last in-flight query drains.
				os.Remove(t.prevFile)
			}
			t.prevFile = file
			if t.lg != nil {
				t.lg.Info("query tier swapped", "source", lk.Meta().Source,
					"keys", lk.Keys(), "build", time.Since(start))
			}
		}
	}
}

// Close stops the rebuild loop and worker pool and unpublishes the served
// lookup (closing it once in-flight queries drain).
func (t *QueryTier) Close() {
	close(t.quit)
	t.wg.Wait()
	t.batcher.Close()
	t.swap.Stop()
}

// QueryRequest is the POST /query body: a batch of exact k-mers (length
// must equal the served k) and/or raw sequences (each scanned into its
// canonical k-mers). Siblings additionally reports, per found k-mer, how
// many other distinct k-mers share its multiplicity (from the artifact's
// frequency histogram).
type QueryRequest struct {
	Kmers     []string `json:"kmers,omitempty"`
	Sequences []string `json:"sequences,omitempty"`
	Siblings  bool     `json:"siblings,omitempty"`
}

// KmerAnswer is one k-mer's result.
type KmerAnswer struct {
	Label    uint32 `json:"label"`
	Count    uint32 `json:"count"`
	Found    bool   `json:"found"`
	Siblings uint64 `json:"siblings,omitempty"`
}

// SequenceAnswer aggregates one sequence: the majority component label
// over its found k-mers, how many k-mers were scanned and how many hit.
type SequenceAnswer struct {
	Label uint32 `json:"label"`
	Found bool   `json:"found"`
	Kmers int    `json:"kmers"`
	Hits  int    `json:"hits"`
}

// QueryResponse answers POST /query.
type QueryResponse struct {
	// Source is the artifact the served lookup was built from; Epoch the
	// hot-swap generation that answered (monotonic per process).
	Source    string           `json:"source"`
	Epoch     uint64           `json:"epoch"`
	K         int              `json:"k"`
	Keys      uint64           `json:"keys"`
	Kmers     []KmerAnswer     `json:"kmers,omitempty"`
	Sequences []SequenceAnswer `json:"sequences,omitempty"`
}

// Execute runs one query batch against the pinned current epoch. It
// returns the HTTP status to use on error.
func (t *QueryTier) Execute(req QueryRequest) (*QueryResponse, int, error) {
	if len(req.Kmers)+len(req.Sequences) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("empty query: provide kmers or sequences")
	}
	if len(req.Kmers)+len(req.Sequences) > t.opts.MaxBatch {
		return nil, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds max_batch %d", len(req.Kmers)+len(req.Sequences), t.opts.MaxBatch)
	}
	ep, ok := t.swap.Acquire()
	if !ok {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("no artifact is being served")
	}
	defer ep.Release()
	lk := ep.Lookup()
	m := lk.Meta()

	sc := t.scratch.Get().(*queryScratch)
	defer t.scratch.Put(sc)

	resp := &QueryResponse{Source: m.Source, Epoch: ep.Seq(), K: m.K, Keys: m.Keys}
	var totalKmers, misses uint64

	if len(req.Kmers) > 0 {
		n := len(req.Kmers)
		sc.grow(n)
		for i, ks := range req.Kmers {
			if len(ks) != m.K {
				return nil, http.StatusBadRequest,
					fmt.Errorf("kmers[%d]: length %d, want k=%d", i, len(ks), m.K)
			}
			if !encodeCanonical(ks, m.K, m.Wide, &sc.hi[i], &sc.lo[i]) {
				return nil, http.StatusBadRequest,
					fmt.Errorf("kmers[%d]: invalid base (ACGT only)", i)
			}
		}
		t.runBatch(lk, m.Wide, sc, n)
		resp.Kmers = make([]KmerAnswer, n)
		for i, r := range sc.res[:n] {
			a := KmerAnswer{Label: r.Label, Count: r.Count, Found: r.Found}
			if req.Siblings && r.Found {
				a.Siblings = siblings(lk.Hist(), r.Count)
			}
			if !r.Found {
				misses++
			}
			resp.Kmers[i] = a
		}
		totalKmers += uint64(n)
	}

	if len(req.Sequences) > 0 {
		resp.Sequences = make([]SequenceAnswer, len(req.Sequences))
		for si, seq := range req.Sequences {
			n := 0
			if m.Wide {
				kmer.ForEach128([]byte(seq), m.K, func(_ int, km kmer.Kmer128) {
					sc.growTo(n + 1)
					sc.hi[n], sc.lo[n] = km.Hi, km.Lo
					n++
				})
			} else {
				kmer.ForEach64([]byte(seq), m.K, func(_ int, km kmer.Kmer64) {
					sc.growTo(n + 1)
					sc.hi[n], sc.lo[n] = 0, uint64(km)
					n++
				})
			}
			t.runBatch(lk, m.Wide, sc, n)
			ans := SequenceAnswer{Kmers: n}
			sc.labs = sc.labs[:0]
			for _, r := range sc.res[:n] {
				if r.Found {
					sc.labs = append(sc.labs, r.Label)
				} else {
					misses++
				}
			}
			ans.Hits = len(sc.labs)
			if ans.Hits > 0 {
				ans.Found = true
				ans.Label = majorityLabel(sc.labs)
			}
			totalKmers += uint64(n)
			resp.Sequences[si] = ans
		}
	}

	t.kmers.Add(totalKmers)
	t.misses.Add(misses)
	return resp, 0, nil
}

// runBatch executes the first n scratch keys shard-parallel.
func (t *QueryTier) runBatch(lk *lookup.Lookup, wide bool, sc *queryScratch, n int) {
	if cap(sc.res) < n {
		sc.res = make([]lookup.Result, n)
	}
	sc.res = sc.res[:n]
	var hi []uint64
	if wide {
		hi = sc.hi[:n]
	}
	t.batcher.Run(lk, hi, sc.lo[:n], sc.res)
}

func (sc *queryScratch) grow(n int) {
	if cap(sc.hi) < n {
		sc.hi = make([]uint64, n)
		sc.lo = make([]uint64, n)
	}
	sc.hi = sc.hi[:n]
	sc.lo = sc.lo[:n]
}

func (sc *queryScratch) growTo(n int) {
	if n <= len(sc.hi) {
		return
	}
	if cap(sc.hi) >= n {
		sc.hi = sc.hi[:n]
		sc.lo = sc.lo[:n]
		return
	}
	nhi := make([]uint64, n, 2*n)
	nlo := make([]uint64, n, 2*n)
	copy(nhi, sc.hi)
	copy(nlo, sc.lo)
	sc.hi, sc.lo = nhi, nlo
}

// encodeCanonical parses one k-mer string into its canonical key.
func encodeCanonical(s string, k int, wide bool, hi, lo *uint64) bool {
	if wide {
		km, ok := kmer.Encode128([]byte(s))
		if !ok {
			return false
		}
		c := kmer.Canonical128(km, k)
		*hi, *lo = c.Hi, c.Lo
		return true
	}
	km, ok := kmer.Encode64([]byte(s))
	if !ok {
		return false
	}
	*hi, *lo = 0, uint64(kmer.Canonical64(km, k))
	return true
}

// siblings reports how many other distinct k-mers share this multiplicity
// (frequency-spectrum bin population minus the k-mer itself; the last bin
// aggregates everything at or beyond it, matching the artifact histogram).
func siblings(hist []uint64, count uint32) uint64 {
	if len(hist) == 0 {
		return 0
	}
	bin := int(count)
	if bin >= len(hist) {
		bin = len(hist) - 1
	}
	if hist[bin] == 0 {
		return 0
	}
	return hist[bin] - 1
}

// majorityLabel returns the most frequent label (ties break low). labs is
// sorted in place.
func majorityLabel(labs []uint32) uint32 {
	slices.Sort(labs)
	best, bestN := labs[0], 0
	cur, curN := labs[0], 0
	for _, l := range labs {
		if l != cur {
			cur, curN = l, 0
		}
		curN++
		if curN > bestN {
			best, bestN = cur, curN
		}
	}
	return best
}

// maxQueryBody bounds the POST /query body (16 MiB comfortably covers a
// MaxBatch of long reads).
const maxQueryBody = 16 << 20

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t := s.opts.Query
	start := time.Now()
	// Admission: bounded concurrency, rejected with the same 429 +
	// Retry-After contract job submission uses.
	select {
	case t.sem <- struct{}{}:
		defer func() { <-t.sem }()
	default:
		t.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, fmt.Errorf("query admission: %w", jobs.ErrQueueFull))
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	resp, code, err := t.Execute(req)
	if err != nil {
		writeErr(w, code, err)
		return
	}
	t.queries.Add(1)
	t.hist.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}
