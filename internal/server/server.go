// Package server exposes the jobs.Manager as the metaprepd HTTP API: a
// partition-as-a-service front end with job submission, status, results,
// cancellation, per-step progress (polling and SSE), health/readiness
// probes, an obsv-backed /metrics endpoint and /debug/pprof.
//
// Endpoints:
//
//	POST   /jobs              submit a partition job (JSON body, below)
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status + live progress counters
//	GET    /jobs/{id}/result  completed job's pipeline result
//	GET    /jobs/{id}/artifact  done job's stored partition artifact (.mpa)
//	GET    /artifacts         list the daemon's artifact store
//	POST   /query             batch k-mer / sequence label lookups against
//	                          the served partition (when a query tier is
//	                          configured; see QueryTier)
//	GET    /jobs/{id}/trace   flight-recorder dump (Perfetto trace JSON)
//	POST   /jobs/{id}/cancel  request cancellation
//	GET    /jobs/{id}/events  Server-Sent Events progress stream
//	GET    /healthz           liveness (always 200 while serving)
//	GET    /readyz            readiness (503 once draining)
//	GET    /metrics           gauges, latency histograms, drift ratios,
//	                          per-job obsv counters (Prometheus text format)
//	GET    /debug/pprof/      the standard pprof handlers
//
// Admission control surfaces as HTTP status codes: an invalid configuration
// is a 400 carrying the typed validation message, a full queue is a 429
// with Retry-After, and a draining server answers 503.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"metaprep/internal/core"
	"metaprep/internal/index"
	"metaprep/internal/jobs"
	"metaprep/internal/mpirt"
	"metaprep/internal/obsv"
)

// Options configures a Server.
type Options struct {
	// ProgressInterval is the SSE snapshot cadence (default 200 ms).
	ProgressInterval time.Duration
	// RetryAfter is the Retry-After hint returned with 429 (default 1 s).
	RetryAfter time.Duration
	// OrphansSwept is how many orphaned spill directories the daemon's
	// startup sweep removed; /metrics exports it as
	// metaprepd_orphans_swept_total.
	OrphansSwept int
	// DefaultPrefilterBits / DefaultPrefilterMinCount apply the two-pass
	// Bloom singleton prefilter to every job whose request leaves the
	// prefilter fields zero — a daemon-wide low-memory policy
	// (metaprepd -prefilter-bits/-prefilter-min). A request that sets
	// prefilter_bits_per_kmer overrides both.
	DefaultPrefilterBits     int
	DefaultPrefilterMinCount int
	// Logger receives request-level records (submissions, trace fetches),
	// stamped with the job correlation ID where one exists. Nil logs
	// nothing.
	Logger *slog.Logger
	// Query, when non-nil, enables POST /query backed by this tier and
	// adds the metaprepd_query_* families to /metrics. The caller owns the
	// tier's lifecycle (NewQueryTier / Close).
	Query *QueryTier
}

// Server is the HTTP front end over a jobs.Manager.
type Server struct {
	mgr  *jobs.Manager
	opts Options
	mux  *http.ServeMux
	// ready flips false when draining begins; /readyz reports it so a load
	// balancer stops routing new work while running jobs finish.
	ready atomic.Bool

	// idxMu guards the index cache: loaded indexes keyed by path, with the
	// file's (size, mtime) to spot rebuilt datasets.
	idxMu   sync.Mutex
	indexes map[string]*cachedIndex
}

type cachedIndex struct {
	idx   *index.Index
	size  int64
	mtime time.Time
}

// New wires a server around a manager.
func New(mgr *jobs.Manager, opts Options) *Server {
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 200 * time.Millisecond
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	s := &Server{mgr: mgr, opts: opts, indexes: make(map[string]*cachedIndex)}
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /artifacts", s.handleArtifacts)
	if opts.Query != nil {
		mux.HandleFunc("POST /query", s.handleQuery)
	}
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetReady flips the /readyz signal (false at drain start).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SubmitRequest is the POST /jobs body. Index is the path to an index file
// built with `metaprep index`; the rest mirror core.Config (zero values
// default to a single-task, single-pass run with CCOpt on, like
// core.Default).
type SubmitRequest struct {
	Index       string `json:"index"`
	Tasks       int    `json:"tasks"`
	Threads     int    `json:"threads"`
	Passes      int    `json:"passes"`
	KFMin       uint32 `json:"kf_min"`
	KFMax       uint32 `json:"kf_max"`
	CCOpt       *bool  `json:"ccopt"`
	SparseMerge bool   `json:"sparse_merge"`
	// SparseDeltaMerge and OverlapOutput default to on (core.Default);
	// pointers distinguish "unset" from an explicit false, so clients can
	// select the one-shot/reader-based reference paths.
	SparseDeltaMerge *bool  `json:"sparse_delta_merge"`
	StarBroadcast    bool   `json:"star_broadcast"`
	OverlapOutput    *bool  `json:"overlap_output"`
	SplitComponents  int    `json:"split_components"`
	OutDir           string `json:"out_dir"`
	EdisonNet        bool   `json:"edison_net"`
	PrefetchChunks   int    `json:"prefetch_chunks"`
	NoPrefetch       bool   `json:"no_prefetch"`
	// SpillBudgetBytes caps resident tuple memory per rank; when the
	// exchange would exceed it, LocalSort runs out of core via sorted runs
	// on disk. Scratch placement is the daemon's concern (-spill-dir), so
	// there is deliberately no spill_dir field here.
	SpillBudgetBytes int64 `json:"spill_budget_bytes"`
	SpillCompress    bool  `json:"spill_compress"`
	// PrefilterBitsPerKmer enables the two-pass Bloom singleton prefilter
	// for this job, sized at this many bits per k-mer; PrefilterMinCount is
	// its count threshold (0 = the lossless default of 2, which requires
	// the bits field). Zero bits falls back to the daemon's -prefilter-bits
	// default, if any.
	PrefilterBitsPerKmer int `json:"prefilter_bits_per_kmer"`
	PrefilterMinCount    int `json:"prefilter_min_count"`
	// Artifact requires the daemon to persist this job's partition artifact
	// (400 when the daemon runs without -artifact-dir). With a store
	// configured the daemon persists and reuses artifacts for every job
	// anyway; the flag exists so a client that intends to fetch
	// /jobs/{id}/artifact or chain a delta fails fast on a storeless
	// daemon instead of discovering it after the run.
	Artifact bool `json:"artifact"`
	// DeltaOf names an earlier done job whose stored artifact becomes the
	// base of an incremental repartitioning: this job's index is treated as
	// a delta read set, merged into the base instead of recomputed from
	// scratch. The merged artifact is stored too, so deltas chain.
	DeltaOf string `json:"delta_of"`
}

// SubmitResponse answers POST /jobs.
type SubmitResponse struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	// Deduped marks a submission coalesced onto an existing pending/running
	// job or satisfied from the result cache (no new execution started).
	Deduped  bool `json:"deduped"`
	CacheHit bool `json:"cache_hit"`
}

// errorBody is every error response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// configFor resolves a submit request into a pipeline Config.
func (s *Server) configFor(req SubmitRequest) (core.Config, error) {
	if req.Index == "" {
		return core.Config{}, fmt.Errorf("missing required field: index")
	}
	idx, err := s.loadIndex(req.Index)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Default(idx)
	if req.Tasks > 0 {
		cfg.Tasks = req.Tasks
	}
	if req.Threads > 0 {
		cfg.Threads = req.Threads
	}
	if req.Passes > 0 {
		cfg.Passes = req.Passes
	}
	cfg.Filter = core.Filter{Min: req.KFMin, Max: req.KFMax}
	if req.CCOpt != nil {
		cfg.CCOpt = *req.CCOpt
	}
	cfg.SparseMerge = req.SparseMerge
	if req.SparseDeltaMerge != nil {
		cfg.SparseDeltaMerge = *req.SparseDeltaMerge
	}
	if req.SparseMerge && req.SparseDeltaMerge == nil {
		// An explicit sparse-merge request selects the one-shot encoding.
		cfg.SparseDeltaMerge = false
	}
	cfg.StarBroadcast = req.StarBroadcast
	if req.OverlapOutput != nil {
		cfg.OverlapOutput = *req.OverlapOutput
	}
	cfg.SplitComponents = req.SplitComponents
	cfg.OutDir = req.OutDir
	cfg.PrefetchChunks = req.PrefetchChunks
	cfg.NoPrefetch = req.NoPrefetch
	cfg.SpillBudgetBytes = req.SpillBudgetBytes
	cfg.SpillCompress = req.SpillCompress
	switch {
	case req.PrefilterBitsPerKmer != 0 || req.PrefilterMinCount != 0:
		// A min count without bits is carried through so validation rejects
		// it with the field name rather than silently ignoring the request.
		cfg.Prefilter = core.Prefilter{
			BitsPerKmer: req.PrefilterBitsPerKmer,
			MinCount:    req.PrefilterMinCount,
		}
	case s.opts.DefaultPrefilterBits != 0:
		// Daemon-wide low-memory policy for requests that don't choose.
		cfg.Prefilter = core.Prefilter{
			BitsPerKmer: s.opts.DefaultPrefilterBits,
			MinCount:    s.opts.DefaultPrefilterMinCount,
		}
	}
	if req.EdisonNet {
		cfg.Network = mpirt.EdisonNetwork()
	}
	if (req.Artifact || req.DeltaOf != "") && !s.mgr.ArtifactStoreEnabled() {
		return core.Config{}, fmt.Errorf("daemon has no artifact store (start metaprepd with -artifact-dir)")
	}
	if req.DeltaOf != "" {
		base, err := s.mgr.ArtifactPath(req.DeltaOf)
		if err != nil {
			return core.Config{}, fmt.Errorf("delta_of %s: %w", req.DeltaOf, err)
		}
		cfg.ArtifactIn = base
		cfg.ArtifactDelta = true
	}
	return cfg, nil
}

// loadIndex returns the cached index for path, reloading when the file on
// disk changed (size or mtime).
func (s *Server) loadIndex(path string) (*index.Index, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("index %s: %w", path, err)
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if c := s.indexes[path]; c != nil && c.size == st.Size() && c.mtime.Equal(st.ModTime()) {
		return c.idx, nil
	}
	idx, err := index.Load(path)
	if err != nil {
		return nil, fmt.Errorf("index %s: %w", path, err)
	}
	if err := idx.Verify(); err != nil {
		return nil, err
	}
	s.indexes[path] = &cachedIndex{idx: idx, size: st.Size(), mtime: st.ModTime()}
	return idx, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cfg, err := s.configFor(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, fresh, err := s.mgr.Submit(cfg)
	switch {
	case errors.Is(err, core.ErrInvalidConfig):
		writeErr(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st, _ := s.mgr.Status(job.ID)
	if lg := s.opts.Logger; lg != nil {
		// The correlation ID is born here: every later record for this job —
		// HTTP, jobs layer, pipeline ranks — carries the same "job" attr.
		lg.InfoContext(obsv.WithJobID(r.Context(), job.ID), "job submitted",
			"index", req.Index, "tasks", cfg.Tasks, "threads", cfg.Threads,
			"deduped", !fresh, "cache_hit", st.CacheHit)
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: job.ID, State: st.State, Deduped: !fresh, CacheHit: st.CacheHit,
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrNotDone):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// handleArtifact streams a done job's partition artifact (.mpa bytes) —
// the file a client feeds back as delta_of's base, inspects with `metaprep
// artifact info`, or reloads locally with -artifact-in.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path, err := s.mgr.ArtifactPath(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
		return
	case errors.Is(err, jobs.ErrNotDone):
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="job-`+id+`.mpa"`)
	http.ServeFile(w, r, path)
}

// handleArtifacts lists the daemon's artifact store, newest first (404 when
// the daemon runs without one).
func (s *Server) handleArtifacts(w http.ResponseWriter, _ *http.Request) {
	if !s.mgr.ArtifactStoreEnabled() {
		writeErr(w, http.StatusNotFound, fmt.Errorf("daemon has no artifact store"))
		return
	}
	ents := s.mgr.Artifacts()
	if ents == nil {
		ents = []jobs.ArtifactEntry{}
	}
	writeJSON(w, http.StatusOK, ents)
}

// handleTrace serves a job's flight-recorder window as Chrome trace-event
// JSON (open it in Perfetto or chrome://tracing). Valid in any job state: a
// running job yields its window so far. The trace renders into a buffer
// first so an encoding failure still becomes a clean 500, not a torn body.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var buf bytes.Buffer
	err := s.mgr.WriteTrace(id, &buf)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if lg := s.opts.Logger; lg != nil {
		lg.InfoContext(obsv.WithJobID(r.Context(), id), "trace fetched", "bytes", buf.Len())
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="job-`+id+`.trace.json"`)
	w.Write(buf.Bytes())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	st, _ := s.mgr.Status(id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() {
		fmt.Fprintln(w, "ready")
		return
	}
	http.Error(w, "draining", http.StatusServiceUnavailable)
}

// handleEvents streams job progress as Server-Sent Events: a "progress"
// event with the status JSON every ProgressInterval, then one final "state"
// event when the job reaches a terminal state (or the client disconnects).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.mgr.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string) bool {
		st, err := s.mgr.Status(id)
		if err != nil {
			return false
		}
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
		return true
	}
	ticker := time.NewTicker(s.opts.ProgressInterval)
	defer ticker.Stop()
	for {
		if !send("progress") {
			return
		}
		select {
		case <-job.Done():
			send("state")
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// Drain begins graceful shutdown: readiness flips to 503, admission stops,
// and the call blocks until every queued and running job finishes or ctx
// expires. The HTTP listener itself is shut down by the caller afterwards
// (cmd/metaprepd pairs this with http.Server.Shutdown).
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	return s.mgr.Drain(ctx)
}
