package kmer

import "math/bits"

// Kmer128 is a k-mer of length k ≤ 63 packed into two uint64 words forming a
// 128-bit big-endian value: Hi holds the more significant bits. As with
// Kmer64, the first base occupies the most significant 2-bit group of the
// low 2k bits and numeric (Hi, Lo) order equals lexicographic order.
//
// This is the paper's §4.4 extension: with a 16-byte k-mer and a 4-byte read
// ID, each tuple is 20 bytes, and LocalSort needs 16 radix passes instead
// of 8.
type Kmer128 struct {
	Hi, Lo uint64
}

// Encode128 packs seq (ASCII bases, len(seq) = k ≤ 63) into a Kmer128.
// It reports false if seq contains a non-ACGT byte or has an unsupported
// length.
func Encode128(seq []byte) (Kmer128, bool) {
	if len(seq) < 1 || len(seq) > MaxK128 {
		return Kmer128{}, false
	}
	var m Kmer128
	for _, b := range seq {
		c, ok := CodeOf(b)
		if !ok {
			return Kmer128{}, false
		}
		m = m.ShiftLeft2().OrBase(c)
	}
	return m, true
}

// String128 decodes a Kmer128 of length k back to its ASCII base string.
func String128(m Kmer128, k int) string {
	buf := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		buf[i] = CharOf(uint8(m.Lo & 3))
		m = m.ShiftRight2()
	}
	return string(buf)
}

// Less reports whether m sorts before o (numeric order on the 128-bit value,
// which equals lexicographic order for equal-length k-mers).
func (m Kmer128) Less(o Kmer128) bool {
	if m.Hi != o.Hi {
		return m.Hi < o.Hi
	}
	return m.Lo < o.Lo
}

// Equal reports whether m and o are the same k-mer.
func (m Kmer128) Equal(o Kmer128) bool { return m.Hi == o.Hi && m.Lo == o.Lo }

// ShiftLeft2 shifts the 128-bit value left by one base (2 bits).
func (m Kmer128) ShiftLeft2() Kmer128 {
	return Kmer128{Hi: m.Hi<<2 | m.Lo>>62, Lo: m.Lo << 2}
}

// ShiftRight2 shifts the 128-bit value right by one base (2 bits).
func (m Kmer128) ShiftRight2() Kmer128 {
	return Kmer128{Hi: m.Hi >> 2, Lo: m.Lo>>2 | m.Hi<<62}
}

// OrBase ORs a 2-bit base code into the least significant base position.
func (m Kmer128) OrBase(c uint8) Kmer128 {
	return Kmer128{Hi: m.Hi, Lo: m.Lo | uint64(c&3)}
}

// And masks the value with the low-2k-bit mask for length k.
func (m Kmer128) And(k int) Kmer128 {
	n := 2 * uint(k)
	if n >= 64 {
		return Kmer128{Hi: m.Hi & ((uint64(1) << (n - 64)) - 1), Lo: m.Lo}
	}
	return Kmer128{Hi: 0, Lo: m.Lo & ((uint64(1) << n) - 1)}
}

// rev2Groups64 reverses the 32 2-bit groups of a single word.
func rev2Groups64(x uint64) uint64 {
	x = (x>>2)&0x3333333333333333 | (x&0x3333333333333333)<<2
	x = (x>>4)&0x0F0F0F0F0F0F0F0F | (x&0x0F0F0F0F0F0F0F0F)<<4
	return bits.ReverseBytes64(x)
}

// RevComp128 returns the reverse complement of a length-k Kmer128.
func RevComp128(m Kmer128, k int) Kmer128 {
	// Complement, reverse the 64 2-bit groups across both words (reverse
	// each word, then swap), then shift the result down by 128-2k bits.
	r := Kmer128{Hi: rev2Groups64(^m.Lo), Lo: rev2Groups64(^m.Hi)}
	shift := 128 - 2*uint(k)
	if shift >= 64 {
		return Kmer128{Hi: 0, Lo: r.Hi >> (shift - 64)}
	}
	if shift == 0 {
		return r
	}
	return Kmer128{Hi: r.Hi >> shift, Lo: r.Lo>>shift | r.Hi<<(64-shift)}
}

// Canonical128 returns the lexicographically smaller of a length-k Kmer128
// and its reverse complement.
func Canonical128(m Kmer128, k int) Kmer128 {
	rc := RevComp128(m, k)
	if rc.Less(m) {
		return rc
	}
	return m
}

// Prefix128 returns the m-mer prefix of a length-k Kmer128 as an integer bin
// in [0, 4^m). It requires m ≤ k and m ≤ 16 (bins fit in uint32).
func Prefix128(km Kmer128, k, m int) uint32 {
	shift := 2 * uint(k-m)
	if shift >= 64 {
		return uint32(km.Hi >> (shift - 64))
	}
	if shift == 0 {
		return uint32(km.Lo)
	}
	return uint32(km.Lo>>shift | km.Hi<<(64-shift))
}

// OrBaseAt ORs a 2-bit base code into the most significant base position of
// a length-k k-mer (the rolling reverse-complement update and the de Bruijn
// predecessor step both prepend bases).
func (m Kmer128) OrBaseAt(c uint8, k int) Kmer128 {
	sh := 2 * uint(k-1)
	if sh >= 64 {
		return Kmer128{Hi: m.Hi | uint64(c&3)<<(sh-64), Lo: m.Lo}
	}
	return Kmer128{Hi: m.Hi, Lo: m.Lo | uint64(c&3)<<sh}
}

// FirstBase returns the 2-bit code of the first (most significant) base of
// a length-k k-mer.
func (m Kmer128) FirstBase(k int) uint8 {
	sh := 2 * uint(k-1)
	if sh >= 64 {
		return uint8(m.Hi >> (sh - 64) & 3)
	}
	return uint8(m.Lo >> sh & 3)
}
