package kmer

import "testing"

// FuzzScan64 checks the rolling scanner on arbitrary byte sequences: never
// panics, and each produced k-mer equals the canonical encoding of its
// window.
func FuzzScan64(f *testing.F) {
	f.Add([]byte("ACGTACGTNNNACGT"), 5)
	f.Add([]byte(""), 3)
	f.Add([]byte("acgtACGT"), 31)
	f.Fuzz(func(t *testing.T, seq []byte, k int) {
		if k < 1 || k > MaxK64 {
			return
		}
		ForEach64(seq, k, func(pos int, m Kmer64) {
			if pos < 0 || pos+k > len(seq) {
				t.Fatalf("window [%d,%d) out of range", pos, pos+k)
			}
			enc, ok := Encode64(seq[pos : pos+k])
			if !ok {
				t.Fatalf("scanner emitted window with invalid bases at %d", pos)
			}
			if Canonical64(enc, k) != m {
				t.Fatalf("window %d: scanner %d, reference %d", pos, m, Canonical64(enc, k))
			}
		})
	})
}
