package kmer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// revCompString computes the reverse complement of an ASCII DNA string the
// slow, obviously-correct way.
func revCompString(s string) string {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		b[len(s)-1-i] = comp[s[i]]
	}
	return string(b)
}

// randSeq returns a random ACGT string of length n.
func randSeq(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = baseChar[rng.Intn(4)]
	}
	return b
}

func TestCodeOf(t *testing.T) {
	for _, c := range []struct {
		b    byte
		code uint8
		ok   bool
	}{
		{'A', BaseA, true}, {'C', BaseC, true}, {'G', BaseG, true}, {'T', BaseT, true},
		{'a', BaseA, true}, {'c', BaseC, true}, {'g', BaseG, true}, {'t', BaseT, true},
		{'N', 0, false}, {'n', 0, false}, {'X', 0, false}, {0, 0, false}, {'@', 0, false},
	} {
		code, ok := CodeOf(c.b)
		if ok != c.ok || (ok && code != c.code) {
			t.Errorf("CodeOf(%q) = %d,%v want %d,%v", c.b, code, ok, c.code, c.ok)
		}
	}
}

func TestComplementCode(t *testing.T) {
	want := map[uint8]uint8{BaseA: BaseT, BaseC: BaseG, BaseG: BaseC, BaseT: BaseA}
	for in, out := range want {
		if got := ComplementCode(in); got != out {
			t.Errorf("ComplementCode(%d) = %d, want %d", in, got, out)
		}
	}
}

func TestEncode64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= MaxK64; k++ {
		seq := randSeq(rng, k)
		m, ok := Encode64(seq)
		if !ok {
			t.Fatalf("Encode64(%q) failed", seq)
		}
		if got := String64(m, k); got != string(seq) {
			t.Errorf("k=%d round trip: got %q want %q", k, got, seq)
		}
	}
}

func TestEncode64Rejects(t *testing.T) {
	if _, ok := Encode64([]byte("ACGN")); ok {
		t.Error("Encode64 accepted N")
	}
	if _, ok := Encode64(nil); ok {
		t.Error("Encode64 accepted empty")
	}
	if _, ok := Encode64([]byte(strings.Repeat("A", 32))); ok {
		t.Error("Encode64 accepted k=32")
	}
}

func TestEncode64Order(t *testing.T) {
	// Numeric order must equal lexicographic order of the base strings.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK64)
		a, b := randSeq(rng, k), randSeq(rng, k)
		ma, _ := Encode64(a)
		mb, _ := Encode64(b)
		if (ma < mb) != (string(a) < string(b)) {
			t.Fatalf("order mismatch: %q vs %q -> %d vs %d", a, b, ma, mb)
		}
	}
}

func TestRevComp64AgainstString(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 1; k <= MaxK64; k++ {
		seq := randSeq(rng, k)
		m, _ := Encode64(seq)
		want := revCompString(string(seq))
		if got := String64(RevComp64(m, k), k); got != want {
			t.Errorf("k=%d RevComp64(%q) = %q, want %q", k, seq, got, want)
		}
	}
}

func TestRevComp64Involution(t *testing.T) {
	// Property: reverse complement is an involution.
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK64 + 1
		m := Kmer64(v & Mask64(k))
		return RevComp64(RevComp64(m, k), k) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCanonical64(t *testing.T) {
	// Property: canonical form is idempotent and shared by a k-mer and its
	// reverse complement, and is ≤ both.
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK64 + 1
		m := Kmer64(v & Mask64(k))
		c := Canonical64(m, k)
		rc := RevComp64(m, k)
		return c == Canonical64(rc, k) && c == Canonical64(c, k) && c <= m && c <= rc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPrefix64(t *testing.T) {
	m, _ := Encode64([]byte("ACGTACGT"))
	// Prefix of length 2 is "AC" = 0b0001 = 1.
	if got := Prefix64(m, 8, 2); got != 1 {
		t.Errorf("Prefix64 = %d, want 1", got)
	}
	// Prefix of full length is the k-mer itself.
	if got := Prefix64(m, 8, 8); uint64(got) != uint64(m)&0xFFFF_FFFF {
		t.Errorf("full prefix = %d, want low bits of %d", got, m)
	}
}

func TestEncode128RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for k := 1; k <= MaxK128; k++ {
		seq := randSeq(rng, k)
		m, ok := Encode128(seq)
		if !ok {
			t.Fatalf("Encode128(%q) failed", seq)
		}
		if got := String128(m, k); got != string(seq) {
			t.Errorf("k=%d round trip: got %q want %q", k, got, seq)
		}
	}
}

func TestEncode128MatchesEncode64(t *testing.T) {
	// For k ≤ 31 the 128-bit value must have Hi = 0 and Lo equal to the
	// 64-bit encoding.
	rng := rand.New(rand.NewSource(5))
	for k := 1; k <= MaxK64; k++ {
		seq := randSeq(rng, k)
		m64, _ := Encode64(seq)
		m128, _ := Encode128(seq)
		if m128.Hi != 0 || m128.Lo != uint64(m64) {
			t.Errorf("k=%d: Encode128=%+v, Encode64=%d", k, m128, m64)
		}
	}
}

func TestRevComp128AgainstString(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for k := 1; k <= MaxK128; k++ {
		seq := randSeq(rng, k)
		m, _ := Encode128(seq)
		want := revCompString(string(seq))
		if got := String128(RevComp128(m, k), k); got != want {
			t.Errorf("k=%d RevComp128(%q) = %q, want %q", k, seq, got, want)
		}
	}
}

func TestRevComp128Involution(t *testing.T) {
	f := func(hi, lo uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK128 + 1
		m := Kmer128{Hi: hi, Lo: lo}.And(k)
		rc := RevComp128(RevComp128(m, k), k)
		return rc.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKmer128Order(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK128)
		a, b := randSeq(rng, k), randSeq(rng, k)
		ma, _ := Encode128(a)
		mb, _ := Encode128(b)
		if ma.Less(mb) != (string(a) < string(b)) {
			t.Fatalf("order mismatch at k=%d: %q vs %q", k, a, b)
		}
	}
}

func TestPrefix128MatchesPrefix64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(MaxK64-1)
		m := 1 + rng.Intn(k)
		if m > 16 {
			m = 16
		}
		seq := randSeq(rng, k)
		m64, _ := Encode64(seq)
		m128, _ := Encode128(seq)
		if Prefix64(m64, k, m) != Prefix128(m128, k, m) {
			t.Fatalf("prefix mismatch k=%d m=%d seq=%q", k, m, seq)
		}
	}
}

func TestPrefix128LargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		k := 33 + rng.Intn(MaxK128-32)
		m := 1 + rng.Intn(16)
		seq := randSeq(rng, k)
		m128, _ := Encode128(seq)
		// The prefix must equal the encoding of the first m bases.
		want, _ := Encode64(seq[:m])
		if got := Prefix128(m128, k, m); uint64(got) != uint64(want) {
			t.Fatalf("k=%d m=%d: got %d want %d", k, m, got, want)
		}
	}
}

func TestForEach64Basic(t *testing.T) {
	var got []string
	var pos []int
	ForEach64([]byte("ACGTA"), 3, func(p int, m Kmer64) {
		pos = append(pos, p)
		got = append(got, String64(m, 3))
	})
	// Windows: ACG (canon ACG vs CGT -> ACG), CGT (canon ACG), GTA (canon GTA vs TAC -> GTA... revcomp(GTA)=TAC; min(GTA,TAC)=GTA).
	want := []string{"ACG", "ACG", "GTA"}
	if len(got) != 3 {
		t.Fatalf("got %d k-mers, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] || pos[i] != i {
			t.Errorf("window %d: got %s@%d want %s@%d", i, got[i], pos[i], want[i], i)
		}
	}
}

func TestForEach64SkipsN(t *testing.T) {
	var got []int
	ForEach64([]byte("ACGTNACGT"), 3, func(p int, _ Kmer64) { got = append(got, p) })
	want := []int{0, 1, 5, 6} // windows overlapping the N are skipped
	if len(got) != len(want) {
		t.Fatalf("positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	}
}

func TestForEach64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(20)
		n := rng.Intn(200)
		seq := randSeq(rng, n)
		// Sprinkle Ns.
		for i := range seq {
			if rng.Intn(20) == 0 {
				seq[i] = 'N'
			}
		}
		var got []Kmer64
		ForEach64(seq, k, func(_ int, m Kmer64) { got = append(got, m) })
		var want []Kmer64
		for i := 0; i+k <= len(seq); i++ {
			if m, ok := Encode64(seq[i : i+k]); ok {
				want = append(want, Canonical64(m, k))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d len=%d: got %d k-mers, want %d", k, n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d window %d: got %s want %s", k, i, String64(got[i], k), String64(want[i], k))
			}
		}
	}
}

func TestForEach128MatchesForEach64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(29)
		seq := randSeq(rng, 150)
		var a []Kmer64
		ForEach64(seq, k, func(_ int, m Kmer64) { a = append(a, m) })
		var b []Kmer128
		ForEach128(seq, k, func(_ int, m Kmer128) { b = append(b, m) })
		if len(a) != len(b) {
			t.Fatalf("count mismatch: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if b[i].Hi != 0 || b[i].Lo != uint64(a[i]) {
				t.Fatalf("k=%d window %d: 128=%+v 64=%d", k, i, b[i], a[i])
			}
		}
	}
}

func TestForEach128LargeKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		k := 33 + rng.Intn(31)
		seq := randSeq(rng, 300)
		for i := range seq {
			if rng.Intn(30) == 0 {
				seq[i] = 'N'
			}
		}
		var got []Kmer128
		ForEach128(seq, k, func(_ int, m Kmer128) { got = append(got, m) })
		var want []Kmer128
		for i := 0; i+k <= len(seq); i++ {
			if m, ok := Encode128(seq[i : i+k]); ok {
				want = append(want, Canonical128(m, k))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d want %d", k, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("k=%d window %d mismatch", k, i)
			}
		}
	}
}

func TestCount64(t *testing.T) {
	cases := []struct {
		seq  string
		k, n int
	}{
		{"ACGTACGT", 3, 6},
		{"ACGTNACGT", 3, 4},
		{"NNNN", 2, 0},
		{"AC", 3, 0},
		{"ACGT", 4, 1},
	}
	for _, c := range cases {
		if got := Count64([]byte(c.seq), c.k); got != c.n {
			t.Errorf("Count64(%q, %d) = %d, want %d", c.seq, c.k, got, c.n)
		}
	}
}

func TestCount64MatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(25)
		seq := randSeq(rng, rng.Intn(300))
		for i := range seq {
			if rng.Intn(15) == 0 {
				seq[i] = 'N'
			}
		}
		n := 0
		ForEach64(seq, k, func(int, Kmer64) { n++ })
		if got := Count64(seq, k); got != n {
			t.Fatalf("Count64 = %d, ForEach64 produced %d", got, n)
		}
	}
}

func TestAppendCanonical64MatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(29)
		seq := randSeq(rng, rng.Intn(500))
		for i := range seq {
			if rng.Intn(40) == 0 {
				seq[i] = 'N'
			}
		}
		var want []Kmer64
		ForEach64(seq, k, func(_ int, m Kmer64) { want = append(want, m) })
		got := AppendCanonical64(nil, seq, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: lanes produced %d k-mers, scalar %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d window %d: lanes %s scalar %s", k, i,
					String64(got[i], k), String64(want[i], k))
			}
		}
	}
}

func TestAppendCanonical64AppendsToExisting(t *testing.T) {
	pre := []Kmer64{1, 2, 3}
	got := AppendCanonical64(pre, []byte("ACGTACGTACGTACGTACGTACGTACGT"), 5)
	if len(got) < 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatal("prefix of dst was not preserved")
	}
}

func TestMinimizer64(t *testing.T) {
	// Manually: k-mer GTAC (k=4, m=2). m-mers: GT(0b1011=11), TA(0b1100=12), AC(0b0001=1). Min = AC at pos 2.
	m, _ := Encode64([]byte("GTAC"))
	val, pos := Minimizer64(m, 4, 2)
	if val != 1 || pos != 2 {
		t.Errorf("Minimizer64(GTAC,2) = %d@%d, want 1@2", val, pos)
	}
}

func TestMinimizer64Leftmost(t *testing.T) {
	// AAAA: all m-mers equal; leftmost (pos 0) must win.
	m, _ := Encode64([]byte("AAAA"))
	_, pos := Minimizer64(m, 4, 2)
	if pos != 0 {
		t.Errorf("tie position = %d, want 0", pos)
	}
}

func TestMinimizer64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(29)
		m := 1 + rng.Intn(k)
		seq := randSeq(rng, k)
		km, _ := Encode64(seq)
		val, pos := Minimizer64(km, k, m)
		// Naive: encode every m-mer substring.
		bestVal, bestPos := ^uint64(0), -1
		for p := 0; p+m <= k; p++ {
			mm, _ := Encode64(seq[p : p+m])
			if uint64(mm) < bestVal {
				bestVal, bestPos = uint64(mm), p
			}
		}
		if val != bestVal || pos != bestPos {
			t.Fatalf("k=%d m=%d seq=%q: got %d@%d want %d@%d", k, m, seq, val, pos, bestVal, bestPos)
		}
	}
}

func TestCheckK(t *testing.T) {
	if CheckK64(0) == nil || CheckK64(32) == nil || CheckK64(27) != nil {
		t.Error("CheckK64 bounds wrong")
	}
	if CheckK128(0) == nil || CheckK128(64) == nil || CheckK128(63) != nil {
		t.Error("CheckK128 bounds wrong")
	}
}

func BenchmarkForEach64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := randSeq(rng, 100)
	b.SetBytes(100)
	for i := 0; i < b.N; i++ {
		ForEach64(seq, 27, func(int, Kmer64) {})
	}
}

func BenchmarkAppendCanonical64Lanes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := randSeq(rng, 100)
	buf := make([]Kmer64, 0, 128)
	b.SetBytes(100)
	for i := 0; i < b.N; i++ {
		buf = AppendCanonical64(buf[:0], seq, 27)
	}
}

func BenchmarkForEach128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := randSeq(rng, 100)
	b.SetBytes(100)
	for i := 0; i < b.N; i++ {
		ForEach128(seq, 55, func(int, Kmer128) {})
	}
}
