package kmer

// minimizer.go provides m-mer minimizers of k-mers, used by the KMC 2-style
// baseline counter (package kmc) to bin consecutive k-mers into super
// k-mers. The minimizer of a k-mer is its lexicographically smallest m-mer
// substring (computed on the packed 2-bit form, where numeric order equals
// lexicographic order); ties keep the leftmost occurrence.

// Minimizer64 returns the smallest m-mer of a length-k Kmer64 and the
// 0-based position at which it occurs. It requires 1 ≤ m ≤ k ≤ 31.
func Minimizer64(km Kmer64, k, m int) (uint64, int) {
	mask := uint64(1)<<(2*uint(m)) - 1
	v := uint64(km)
	best := uint64(1) << 63 // larger than any 2m-bit value (m ≤ 31)
	bestPos := 0
	for pos := 0; pos <= k-m; pos++ {
		// The m-mer at position pos occupies bits [2(k-pos-m), 2(k-pos)).
		mm := v >> (2 * uint(k-pos-m)) & mask
		if mm < best {
			best, bestPos = mm, pos
		}
	}
	return best, bestPos
}
