package kmer

// lanes.go implements the paper's "vectorized" k-mer generation scheme
// (§3.2.1, Fig. 3). The original uses SIMD registers to roll four k-mers at
// once from four equidistant points of a read. Go has no portable SIMD, so
// the same schedule is expressed as four independent rolling states advanced
// in one loop body; the compiler can then overlap the four dependency chains
// (instruction-level parallelism), which is the property the SIMD scheme
// exploits.
//
// The lane generator requires an ACGT-only sequence; callers split reads
// into maximal valid runs first (see AppendCanonical64).

// laneMinWindows is the smallest number of k-mer windows for which the
// 4-lane path is used; shorter runs fall back to the scalar roll.
const laneMinWindows = 16

// appendLanes64 appends the canonical k-mers of an ACGT-only seq to dst in
// position order using four rolling lanes, and returns the extended slice.
func appendLanes64(dst []Kmer64, seq []byte, k int) []Kmer64 {
	nw := len(seq) - k + 1 // number of k-mer windows
	base := len(dst)
	dst = append(dst, make([]Kmer64, nw)...)
	out := dst[base:]

	// Lane l covers windows [cut[l], cut[l+1]).
	q, r := nw/4, nw%4
	var cut [5]int
	for l := 0; l < 4; l++ {
		cut[l+1] = cut[l] + q
		if l < r {
			cut[l+1]++
		}
	}

	mask := Mask64(k)
	rcShift := 2 * uint(k-1)

	// Prime each lane with the first k-1 bases of its segment.
	var f0, f1, f2, f3, r0, r1, r2, r3 uint64
	prime := func(start int) (f, rcv uint64) {
		for _, b := range seq[start : start+k-1] {
			c := uint64(baseCode[b])
			f = f<<2 | c
			rcv = rcv>>2 | (^c&3)<<rcShift
		}
		return f & mask, rcv
	}
	f0, r0 = prime(cut[0])
	f1, r1 = prime(cut[1])
	f2, r2 = prime(cut[2])
	f3, r3 = prime(cut[3])

	// Advance all four lanes in lockstep for the common length, then finish
	// the longer lanes (segment lengths differ by at most one).
	step := func(f, rcv uint64, b byte) (uint64, uint64) {
		c := uint64(baseCode[b])
		return (f<<2 | c) & mask, rcv>>2 | (^c&3)<<rcShift
	}
	emit := func(f, rcv uint64) Kmer64 {
		if rcv < f {
			return Kmer64(rcv)
		}
		return Kmer64(f)
	}
	for i := 0; i < q; i++ {
		f0, r0 = step(f0, r0, seq[cut[0]+i+k-1])
		f1, r1 = step(f1, r1, seq[cut[1]+i+k-1])
		f2, r2 = step(f2, r2, seq[cut[2]+i+k-1])
		f3, r3 = step(f3, r3, seq[cut[3]+i+k-1])
		out[cut[0]+i] = emit(f0, r0)
		out[cut[1]+i] = emit(f1, r1)
		out[cut[2]+i] = emit(f2, r2)
		out[cut[3]+i] = emit(f3, r3)
	}
	fs := [4]uint64{f0, f1, f2, f3}
	rs := [4]uint64{r0, r1, r2, r3}
	for l := 0; l < 4; l++ {
		for i := cut[l] + q; i < cut[l+1]; i++ {
			fs[l], rs[l] = step(fs[l], rs[l], seq[i+k-1])
			out[i] = emit(fs[l], rs[l])
		}
	}
	return dst
}

// AppendCanonical64 appends all canonical k-mers of seq (skipping windows
// containing non-ACGT bytes) to dst in position order and returns the
// extended slice. Long valid runs use the 4-lane generator; short runs use
// the scalar roll. The result is identical to collecting ForEach64 output.
func AppendCanonical64(dst []Kmer64, seq []byte, k int) []Kmer64 {
	i := 0
	for i < len(seq) {
		// Find the next maximal ACGT run [i, j).
		if _, ok := CodeOf(seq[i]); !ok {
			i++
			continue
		}
		j := i + 1
		for j < len(seq) {
			if _, ok := CodeOf(seq[j]); !ok {
				break
			}
			j++
		}
		if nw := j - i - k + 1; nw >= laneMinWindows {
			dst = appendLanes64(dst, seq[i:j], k)
		} else if nw >= 1 {
			ForEach64(seq[i:j], k, func(_ int, m Kmer64) {
				dst = append(dst, m)
			})
		}
		i = j + 1
	}
	return dst
}
