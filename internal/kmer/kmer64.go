package kmer

import "math/bits"

// Kmer64 is a k-mer of length k ≤ 31 packed into a uint64. The first base of
// the k-mer is the most significant 2-bit group of the low 2k bits; bits
// above 2k are zero. Numeric order equals lexicographic order of the base
// string for k-mers of equal length.
type Kmer64 uint64

// Encode64 packs seq (ASCII bases, len(seq) = k ≤ 31) into a Kmer64.
// It reports false if seq contains a non-ACGT byte or has an unsupported
// length.
func Encode64(seq []byte) (Kmer64, bool) {
	if len(seq) < 1 || len(seq) > MaxK64 {
		return 0, false
	}
	var v uint64
	for _, b := range seq {
		c, ok := CodeOf(b)
		if !ok {
			return 0, false
		}
		v = v<<2 | uint64(c)
	}
	return Kmer64(v), true
}

// String64 decodes a Kmer64 of length k back to its ASCII base string.
func String64(m Kmer64, k int) string {
	buf := make([]byte, k)
	v := uint64(m)
	for i := k - 1; i >= 0; i-- {
		buf[i] = CharOf(uint8(v & 3))
		v >>= 2
	}
	return string(buf)
}

// RevComp64 returns the reverse complement of a length-k Kmer64.
//
// Complementing a base is bitwise NOT of its 2-bit group, so complementing
// the whole word and reversing its 2-bit groups yields the reverse
// complement in the high bits; the final shift realigns it into the low 2k
// bits.
func RevComp64(m Kmer64, k int) Kmer64 {
	x := ^uint64(m)
	x = (x>>2)&0x3333333333333333 | (x&0x3333333333333333)<<2
	x = (x>>4)&0x0F0F0F0F0F0F0F0F | (x&0x0F0F0F0F0F0F0F0F)<<4
	x = bits.ReverseBytes64(x)
	return Kmer64(x >> (64 - 2*uint(k)))
}

// Canonical64 returns the lexicographically smaller of a length-k Kmer64 and
// its reverse complement — the canonical form the pipeline enumerates.
func Canonical64(m Kmer64, k int) Kmer64 {
	rc := RevComp64(m, k)
	if rc < m {
		return rc
	}
	return m
}

// Prefix64 returns the m-mer prefix of a length-k Kmer64 as an integer bin
// in [0, 4^m). It requires m ≤ k.
func Prefix64(km Kmer64, k, m int) uint32 {
	return uint32(uint64(km) >> (2 * uint(k-m)))
}

// Mask64 returns the low-2k-bit mask used by rolling k-mer updates.
func Mask64(k int) uint64 {
	return (uint64(1) << (2 * uint(k))) - 1
}
