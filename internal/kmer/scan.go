package kmer

// scan.go implements rolling canonical k-mer enumeration over read
// sequences. K-mers containing a non-ACGT byte (such as 'N') are skipped, as
// in the paper's KmerGen step (§3.2): the scanner restarts its rolling state
// after each invalid byte, so exactly the k-mers fully contained in maximal
// ACGT runs are produced.

// ForEach64 calls fn(pos, canonical) for every canonical k-mer of seq, in
// position order. pos is the 0-based offset of the k-mer's first base.
// The function does nothing when len(seq) < k.
func ForEach64(seq []byte, k int, fn func(pos int, m Kmer64)) {
	mask := Mask64(k)
	rcShift := 2 * uint(k-1)
	var fwd, rc uint64
	run := 0 // number of consecutive valid bases ending at the current one
	for i, b := range seq {
		c, ok := CodeOf(b)
		if !ok {
			run = 0
			continue
		}
		fwd = (fwd<<2 | uint64(c)) & mask
		rc = rc>>2 | uint64(^c&3)<<rcShift
		run++
		if run >= k {
			m := Kmer64(fwd)
			if r := Kmer64(rc); r < m {
				m = r
			}
			fn(i-k+1, m)
		}
	}
}

// ForEach128 is ForEach64 for the 128-bit representation (k ≤ 63).
func ForEach128(seq []byte, k int, fn func(pos int, m Kmer128)) {
	var fwd, rc Kmer128
	run := 0
	for i, b := range seq {
		c, ok := CodeOf(b)
		if !ok {
			run = 0
			continue
		}
		fwd = fwd.ShiftLeft2().OrBase(c).And(k)
		rc = rc.ShiftRight2().OrBaseAt(^c&3, k)
		run++
		if run >= k {
			m := fwd
			if rc.Less(m) {
				m = rc
			}
			fn(i-k+1, m)
		}
	}
}

// Count64 returns the number of k-mers ForEach64 would produce for seq:
// the number of length-k windows that contain only ACGT bases. IndexCreate
// uses it (via prefix histograms) to size every downstream buffer exactly.
func Count64(seq []byte, k int) int {
	n, run := 0, 0
	for _, b := range seq {
		if _, ok := CodeOf(b); !ok {
			run = 0
			continue
		}
		run++
		if run >= k {
			n++
		}
	}
	return n
}
