// Package kmer implements compact 2-bit DNA k-mer representations and the
// k-mer enumeration kernels used by the METAPREP preprocessing pipeline.
//
// Two fixed-width representations are provided:
//
//   - Kmer64 packs k ≤ 31 bases into a uint64 (the paper's default path,
//     12-byte (k-mer, read) tuples with a 32-bit read ID), and
//   - Kmer128 packs k ≤ 63 bases into two uint64 words (the paper's §4.4
//     extension, 20-byte tuples).
//
// In both, the first base of the k-mer occupies the most significant 2-bit
// group of the low 2k bits, so lexicographic order on the base string equals
// numeric order on the packed value. That property is what lets the pipeline
// radix sort packed k-mers directly and lets an m-mer prefix of the k-mer act
// as a histogram bin (package index) and as an owner-task selector.
package kmer

import (
	"errors"
	"fmt"
)

// Base codes. DNA bases are encoded in 2 bits such that complementing a base
// is bitwise NOT of the 2-bit group: A(00)↔T(11) and C(01)↔G(10).
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// MaxK64 and MaxK128 are the largest k-mer lengths representable by Kmer64
// and Kmer128 respectively.
const (
	MaxK64  = 31
	MaxK128 = 63
)

// invalidBase marks a byte that does not encode A, C, G or T (e.g. 'N').
const invalidBase = 0xFF

// baseCode maps an ASCII byte to its 2-bit base code, or invalidBase.
var baseCode [256]uint8

// baseChar maps a 2-bit base code back to its upper-case ASCII letter.
var baseChar = [4]byte{'A', 'C', 'G', 'T'}

func init() {
	for i := range baseCode {
		baseCode[i] = invalidBase
	}
	baseCode['A'], baseCode['a'] = BaseA, BaseA
	baseCode['C'], baseCode['c'] = BaseC, BaseC
	baseCode['G'], baseCode['g'] = BaseG, BaseG
	baseCode['T'], baseCode['t'] = BaseT, BaseT
}

// CodeOf returns the 2-bit code of an ASCII base and whether the byte is a
// valid base. Lower-case bases are accepted; every other byte (including
// 'N') is invalid.
func CodeOf(b byte) (uint8, bool) {
	c := baseCode[b]
	return c, c != invalidBase
}

// CharOf returns the upper-case ASCII letter of a 2-bit base code.
// The code must be in [0, 3].
func CharOf(code uint8) byte { return baseChar[code&3] }

// ComplementCode returns the complement of a 2-bit base code.
func ComplementCode(code uint8) uint8 { return ^code & 3 }

// ErrInvalidK reports a k outside the supported range of a representation.
var ErrInvalidK = errors.New("kmer: k out of range")

// CheckK64 validates k for the 64-bit representation.
func CheckK64(k int) error {
	if k < 1 || k > MaxK64 {
		return fmt.Errorf("%w: k=%d, want 1..%d", ErrInvalidK, k, MaxK64)
	}
	return nil
}

// CheckK128 validates k for the 128-bit representation.
func CheckK128(k int) error {
	if k < 1 || k > MaxK128 {
		return fmt.Errorf("%w: k=%d, want 1..%d", ErrInvalidK, k, MaxK128)
	}
	return nil
}
