package artifact

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"metaprep/internal/extsort"
)

// DefaultBlockTuples is the encoded-block granularity for artifacts written
// tuple-at-a-time (set operations, incremental merge tees). The pipeline
// emit path instead inherits the extsort writer's block size so spilled
// runs copy in verbatim.
const DefaultBlockTuples = 4096

// Writer streams an artifact to disk: sections in one pass, TOC at the end,
// then an atomic rename onto the target path. Not safe for concurrent use.
// On any error the Writer is dead; Abort (safe after Finish) removes the
// temp file.
type Writer struct {
	path string
	tmp  string
	f    *os.File
	bw   *bufio.Writer
	off  int64
	err  error

	crc    uint32 // running CRC of the open section
	curID  uint8
	curOff int64
	curFl  uint8
	open   bool
	toc    []tocEntry
	done   bool

	// Tuple-at-a-time k-mer buffering.
	wide        bool
	compress    bool
	blockTuples int
	kLo, kHi    []uint64
	kVal        []uint32
	kTuples     uint64
	scratch     []byte
}

// Create opens a Writer targeting path. The artifact is assembled in a temp
// file beside it and renamed into place by Finish, so a crashed or aborted
// write never leaves a partial artifact at path.
func Create(path string) (*Writer, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("artifact: create %s: %w", path, err)
	}
	w := &Writer{path: path, tmp: f.Name(), f: f, bw: bufio.NewWriterSize(f, 256<<10)}
	w.write(magic[:])
	return w, nil
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return
	}
	if w.open {
		w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	}
	w.off += int64(len(p))
}

func (w *Writer) begin(id uint8, flags uint8) {
	w.open = true
	w.curID = id
	w.curOff = w.off
	w.curFl = flags
	w.crc = 0
}

func (w *Writer) end(items uint64) {
	w.toc = append(w.toc, tocEntry{
		id: w.curID, flags: w.curFl, crc: w.crc,
		off: w.curOff, len: w.off - w.curOff, items: items,
	})
	w.open = false
}

// BeginKmers opens the k-mer section. blockTuples bounds tuples per encoded
// block and must match the blocks later copied in via CopyBlocks.
func (w *Writer) BeginKmers(wide, compress bool, blockTuples int) error {
	if w.err != nil {
		return w.err
	}
	if compress && wide {
		w.err = fmt.Errorf("artifact: varint/delta compression supports 64-bit keys only")
		return w.err
	}
	if blockTuples < 1 {
		w.err = fmt.Errorf("artifact: blockTuples %d < 1", blockTuples)
		return w.err
	}
	w.wide, w.compress, w.blockTuples = wide, compress, blockTuples
	var fl uint8
	if wide {
		fl |= 1
	}
	if compress {
		fl |= 2
	}
	w.begin(secKmers, fl)
	return nil
}

// CopyBlocks copies n bytes of already-encoded extsort blocks (holding
// tuples sorted tuples, encoded with the Begin parameters) into the k-mer
// section. The pipeline uses this to splice spill-run segments and in-RAM
// run files straight into the artifact without re-encoding.
func (w *Writer) CopyBlocks(r io.Reader, n int64, tuples uint64) error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushKmerBlock(); err != nil {
		return err
	}
	buf := make([]byte, 256<<10)
	for n > 0 {
		m := int64(len(buf))
		if m > n {
			m = n
		}
		k, err := io.ReadFull(r, buf[:m])
		if k > 0 {
			w.write(buf[:k])
		}
		if err != nil {
			w.err = fmt.Errorf("artifact: copy blocks: %w", err)
			return w.err
		}
		n -= int64(k)
	}
	w.kTuples += tuples
	return w.err
}

// Tuple appends one sorted tuple to the k-mer section, buffering into
// blocks of blockTuples. hi is ignored unless the section is wide.
func (w *Writer) Tuple(hi, lo uint64, val uint32) error {
	if w.err != nil {
		return w.err
	}
	w.kLo = append(w.kLo, lo)
	if w.wide {
		w.kHi = append(w.kHi, hi)
	}
	w.kVal = append(w.kVal, val)
	w.kTuples++
	if len(w.kLo) >= w.blockTuples {
		return w.flushKmerBlock()
	}
	return nil
}

func (w *Writer) flushKmerBlock() error {
	if len(w.kLo) == 0 {
		return w.err
	}
	w.scratch = extsort.AppendBlock(w.scratch[:0], w.kLo, w.kHi, w.kVal, w.compress)
	w.write(w.scratch)
	w.kLo = w.kLo[:0]
	w.kHi = w.kHi[:0]
	w.kVal = w.kVal[:0]
	return w.err
}

// EndKmers closes the k-mer section, flushing any partial block.
func (w *Writer) EndKmers() error {
	if err := w.flushKmerBlock(); err != nil {
		return err
	}
	w.end(w.kTuples)
	return w.err
}

// Labels writes the component label section (one uint32 per read).
func (w *Writer) Labels(labels []uint32) error {
	if w.err != nil {
		return w.err
	}
	w.begin(secLabels, 0)
	buf := make([]byte, 4<<10)
	for off := 0; off < len(labels); {
		n := 0
		for off < len(labels) && n+4 <= len(buf) {
			binary.LittleEndian.PutUint32(buf[n:], labels[off])
			n += 4
			off++
		}
		w.write(buf[:n])
	}
	w.end(uint64(len(labels)))
	return w.err
}

// Hist writes the k-mer frequency histogram section.
func (w *Writer) Hist(hist []uint64) error {
	if w.err != nil {
		return w.err
	}
	w.begin(secHist, 0)
	buf := make([]byte, 8*len(hist))
	for i, v := range hist {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	w.write(buf)
	w.end(uint64(len(hist)))
	return w.err
}

// Tuples returns the number of tuples written to the k-mer section so far.
func (w *Writer) Tuples() uint64 { return w.kTuples }

// BytesWritten returns the bytes emitted so far (final size after Finish).
func (w *Writer) BytesWritten() int64 { return w.off }

// Finish writes the meta section and trailer, syncs, and renames the temp
// file onto the target path. meta's encoding fields (Wide, Compress,
// BlockTuples, Tuples) are overwritten from what was actually written.
func (w *Writer) Finish(meta Meta) error {
	if w.err != nil {
		return w.err
	}
	meta.Wide, meta.Compress = w.wide, w.compress
	meta.BlockTuples = w.blockTuples
	meta.Tuples = w.kTuples
	mj, err := json.Marshal(meta)
	if err != nil {
		w.err = err
		return err
	}
	w.begin(secMeta, 0)
	w.write(mj)
	w.end(0)

	toc := make([]byte, len(w.toc)*tocEntryLen)
	for i, e := range w.toc {
		e.encode(toc[i*tocEntryLen:])
	}
	w.write(toc)
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], uint32(len(toc)))
	binary.LittleEndian.PutUint32(tr[4:], crc32.ChecksumIEEE(toc))
	copy(tr[8:], tailMagic[:])
	w.write(tr[:])

	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		os.Remove(w.tmp)
		return w.err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		w.err = err
		return err
	}
	w.done = true
	return nil
}

// Abort discards the temp file. Safe to defer alongside Finish: it is a
// no-op once Finish has succeeded.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.f.Close()
	os.Remove(w.tmp)
}
