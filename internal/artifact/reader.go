package artifact

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"

	"metaprep/internal/extsort"
)

// maxTocSections bounds the trailer we are willing to parse; format v1
// defines four sections, so anything much larger is corruption.
const maxTocSections = 64

// Reader opens an artifact for random-access section reads and streaming
// k-mer scans. The trailer, TOC, and meta section are parsed and verified
// by Open; other sections verify their CRC when read. Safe for concurrent
// section reads (all I/O is offset-based), but each Stream is single-user.
type Reader struct {
	f    *os.File
	path string
	size int64
	meta Meta
	secs map[uint8]tocEntry

	bytesRead int64
}

// Open parses and validates the artifact's framing: magic, trailer, TOC
// (CRC-checked), and the meta section. Structural problems return errors
// wrapping ErrBadArtifact.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, path: path}
	if err := r.load(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) load() error {
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	r.size = st.Size()
	if r.size < headerLen+trailerLen {
		return badf(r.path, "header", "file too short (%d bytes)", r.size)
	}
	var hdr [headerLen]byte
	if _, err := r.f.ReadAt(hdr[:], 0); err != nil {
		return badf(r.path, "header", "read: %v", err)
	}
	if hdr != magic {
		if string(hdr[:4]) == string(magic[:4]) {
			return badf(r.path, "header", "format version %d, want %d", hdr[4], FormatVersion)
		}
		return badf(r.path, "header", "bad magic %q", hdr[:])
	}
	var tr [trailerLen]byte
	if _, err := r.f.ReadAt(tr[:], r.size-trailerLen); err != nil {
		return badf(r.path, "trailer", "read: %v", err)
	}
	if [8]byte(tr[8:]) != tailMagic {
		return badf(r.path, "trailer", "bad tail magic (truncated file?)")
	}
	tocLen := int64(binary.LittleEndian.Uint32(tr[0:]))
	tocCRC := binary.LittleEndian.Uint32(tr[4:])
	if tocLen%tocEntryLen != 0 || tocLen > maxTocSections*tocEntryLen ||
		headerLen+tocLen+trailerLen > r.size {
		return badf(r.path, "trailer", "implausible TOC length %d", tocLen)
	}
	toc := make([]byte, tocLen)
	tocOff := r.size - trailerLen - tocLen
	if _, err := r.f.ReadAt(toc, tocOff); err != nil {
		return badf(r.path, "trailer", "read TOC: %v", err)
	}
	if crc32.ChecksumIEEE(toc) != tocCRC {
		return badf(r.path, "trailer", "TOC checksum mismatch")
	}
	r.secs = make(map[uint8]tocEntry, tocLen/tocEntryLen)
	for i := int64(0); i < tocLen; i += tocEntryLen {
		e := decodeTocEntry(toc[i:])
		if e.off < headerLen || e.len < 0 || e.off+e.len > tocOff {
			return badf(r.path, sectionName(e.id), "section out of bounds [%d,+%d)", e.off, e.len)
		}
		if _, dup := r.secs[e.id]; dup {
			return badf(r.path, sectionName(e.id), "duplicate section")
		}
		r.secs[e.id] = e
	}
	r.bytesRead += headerLen + trailerLen + tocLen

	mj, err := r.section(secMeta)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(mj, &r.meta); err != nil {
		return badf(r.path, "meta", "bad JSON: %v", err)
	}
	if r.meta.BlockTuples < 1 {
		return badf(r.path, "meta", "block_tuples %d < 1", r.meta.BlockTuples)
	}
	ke, ok := r.secs[secKmers]
	if !ok {
		return badf(r.path, "kmers", "section missing")
	}
	wantFl := uint8(0)
	if r.meta.Wide {
		wantFl |= 1
	}
	if r.meta.Compress {
		wantFl |= 2
	}
	if ke.flags != wantFl {
		return badf(r.path, "kmers", "section flags %#x disagree with meta %#x", ke.flags, wantFl)
	}
	return nil
}

// section reads and CRC-verifies one section in full.
func (r *Reader) section(id uint8) ([]byte, error) {
	e, ok := r.secs[id]
	if !ok {
		return nil, badf(r.path, sectionName(id), "section missing")
	}
	buf := make([]byte, e.len)
	if _, err := r.f.ReadAt(buf, e.off); err != nil {
		return nil, badf(r.path, sectionName(id), "read: %v", err)
	}
	if crc32.ChecksumIEEE(buf) != e.crc {
		return nil, badf(r.path, sectionName(id), "checksum mismatch")
	}
	r.bytesRead += e.len
	return buf, nil
}

// Meta returns the provenance record parsed by Open.
func (r *Reader) Meta() Meta { return r.meta }

// Path returns the path the artifact was opened from.
func (r *Reader) Path() string { return r.path }

// Size returns the artifact file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// BytesRead returns the bytes read through this Reader so far — the
// artifact/bytes_read counter's source.
func (r *Reader) BytesRead() int64 { return r.bytesRead }

// HasLabels reports whether the artifact carries a label section
// (partitions do, kmersets do not).
func (r *Reader) HasLabels() bool { _, ok := r.secs[secLabels]; return ok }

// Labels reads and verifies the component label map.
func (r *Reader) Labels() ([]uint32, error) {
	e := r.secs[secLabels]
	buf, err := r.section(secLabels)
	if err != nil {
		return nil, err
	}
	if uint64(len(buf)) != e.items*4 {
		return nil, badf(r.path, "labels", "length %d != 4×%d items", len(buf), e.items)
	}
	labels := make([]uint32, e.items)
	for i := range labels {
		labels[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return labels, nil
}

// Hist reads and verifies the k-mer frequency histogram.
func (r *Reader) Hist() ([]uint64, error) {
	e := r.secs[secHist]
	buf, err := r.section(secHist)
	if err != nil {
		return nil, err
	}
	if uint64(len(buf)) != e.items*8 {
		return nil, badf(r.path, "hist", "length %d != 8×%d items", len(buf), e.items)
	}
	hist := make([]uint64, e.items)
	for i := range hist {
		hist[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return hist, nil
}

// KmerSeg locates the k-mer section as an extsort segment, for callers that
// merge artifacts with extsort.NewSegReader/NewMerger (the incremental
// path). The returned file is the Reader's own handle: keep the Reader open
// while segment readers are live, and note that reads through it are not
// counted by BytesRead.
func (r *Reader) KmerSeg() (*os.File, extsort.SegInfo) {
	e := r.secs[secKmers]
	return r.f, extsort.SegInfo{Off: e.off, Len: e.len, Tuples: e.items}
}

// Tuples returns the k-mer section's tuple count.
func (r *Reader) Tuples() uint64 { return r.secs[secKmers].items }

// Kmers opens a streaming scan of the sorted tuple section. Close the
// stream before closing the Reader.
func (r *Reader) Kmers() (*Stream, error) {
	f, seg := r.KmerSeg()
	sr := extsort.NewSegReader(f, seg, r.meta.Wide, r.meta.Compress, r.meta.BlockTuples)
	return &Stream{r: r, sr: sr}, nil
}

// VerifyKmers re-reads the k-mer section and checks its CRC. The streaming
// readers skip this (the block framing already catches most damage); batch
// tools like `metaprep artifact info -verify` call it explicitly.
func (r *Reader) VerifyKmers() error {
	e := r.secs[secKmers]
	sum := uint32(0)
	buf := make([]byte, 256<<10)
	sr := io.NewSectionReader(r.f, e.off, e.len)
	for {
		n, err := sr.Read(buf)
		if n > 0 {
			sum = crc32.Update(sum, crc32.IEEETable, buf[:n])
			r.bytesRead += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return badf(r.path, "kmers", "read: %v", err)
		}
	}
	if sum != e.crc {
		return badf(r.path, "kmers", "checksum mismatch")
	}
	return nil
}

// Close releases the file. Streams and KmerSeg readers must be closed
// first.
func (r *Reader) Close() error { return r.f.Close() }

// Stream iterates the sorted k-mer tuple section in key order. It is
// backed by an extsort.SegReader (decode goroutine with read-ahead);
// Close releases it and is required even after an error or early exit.
type Stream struct {
	r   *Reader
	sr  *extsort.SegReader
	blk *extsort.Block
	pos int
	n   uint64
}

// Next returns the next tuple, ok=false at end of section. Decode errors
// wrap ErrBadArtifact.
func (s *Stream) Next() (hi, lo uint64, val uint32, ok bool, err error) {
	for s.blk == nil || s.pos >= s.blk.Len() {
		if s.blk != nil {
			s.sr.Release(s.blk)
			s.blk = nil
		}
		b, err := s.sr.Next()
		if err != nil {
			return 0, 0, 0, false, badf(s.r.path, "kmers", "decode: %v", err)
		}
		if b == nil {
			if s.n != s.r.Tuples() {
				return 0, 0, 0, false, badf(s.r.path, "kmers",
					"section holds %d tuples, TOC says %d", s.n, s.r.Tuples())
			}
			return 0, 0, 0, false, nil
		}
		s.blk, s.pos = b, 0
	}
	lo = s.blk.Lo[s.pos]
	if s.blk.Hi != nil {
		hi = s.blk.Hi[s.pos]
	}
	val = s.blk.Val[s.pos]
	s.pos++
	s.n++
	s.r.bytesRead += 12 // logical tuple bytes; encoded size tracked coarsely
	return hi, lo, val, true, nil
}

// Close stops the underlying segment reader. Idempotent.
func (s *Stream) Close() {
	if s.blk != nil {
		s.sr.Release(s.blk)
		s.blk = nil
	}
	s.sr.Close()
}

// Info summarizes an artifact for display: provenance plus per-section
// sizes. With verify set it also CRC-checks every section including the
// k-mer blocks.
type SectionInfo struct {
	Name  string
	Bytes int64
	Items uint64
	CRC   uint32
}

type InfoData struct {
	Path     string
	Size     int64
	Meta     Meta
	Sections []SectionInfo
}

func Info(path string, verify bool) (InfoData, error) {
	r, err := Open(path)
	if err != nil {
		return InfoData{}, err
	}
	defer r.Close()
	d := InfoData{Path: path, Size: r.size, Meta: r.meta}
	for _, id := range []uint8{secKmers, secLabels, secHist, secMeta} {
		e, ok := r.secs[id]
		if !ok {
			continue
		}
		d.Sections = append(d.Sections, SectionInfo{
			Name: sectionName(id), Bytes: e.len, Items: e.items, CRC: e.crc,
		})
	}
	if verify {
		if err := r.VerifyKmers(); err != nil {
			return d, err
		}
		if r.HasLabels() {
			if _, err := r.Labels(); err != nil {
				return d, err
			}
		}
		if _, err := r.Hist(); err != nil {
			return d, err
		}
	}
	return d, nil
}
