// Package artifact defines the versioned on-disk partition artifact: the
// durable product of a pipeline run (ROADMAP item 2). An artifact holds the
// globally sorted canonical k-mer tuple stream (encoded with the
// internal/extsort block codec, so spill runs can be copied in verbatim and
// merge readers can stream it back without a decode detour), the component
// label map, the k-mer frequency histogram, and provenance tying the file to
// the exact index and configuration that produced it.
//
// File layout (format v1):
//
//	offset 0     magic "MPAF" + version byte + 3 reserved bytes
//	             section: kmers   (extsort blocks, globally sorted)
//	             section: labels  (raw little-endian uint32 per read)
//	             section: hist    (raw little-endian uint64 per bin)
//	             section: meta    (JSON Meta)
//	trailer      TOC: one 32-byte entry per section
//	             uint32 TOC byte length, uint32 CRC32(TOC)
//	             tail magic "MPAFend1"
//
// Every section carries a CRC32 (IEEE) in its TOC entry; readers verify on
// access. The TOC lives at the end so writers emit sections in one streaming
// pass — the pipeline writes k-mer blocks while LocalCC is still consuming
// the same buffers, with no second pass over the data.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Format constants, pinned by TestFormatGolden. Bumping FormatVersion is a
// breaking change: old readers must reject new files and vice versa.
const (
	FormatVersion = 1
	headerLen     = 8
	tocEntryLen   = 32
	trailerLen    = 16 // tocLen u32 + tocCRC u32 + tail magic
)

var (
	magic     = [8]byte{'M', 'P', 'A', 'F', FormatVersion, 0, 0, 0}
	tailMagic = [8]byte{'M', 'P', 'A', 'F', 'e', 'n', 'd', '1'}
)

// Section ids. The ids are part of the format; new section kinds append.
const (
	secKmers  = 1
	secLabels = 2
	secHist   = 3
	secMeta   = 4
)

// Artifact kinds.
const (
	// KindPartition is a full pipeline product: sorted tuple runs keyed by
	// canonical k-mer with read-id values, plus the label map.
	KindPartition = "partition"
	// KindKmerset is a set-operation product: one tuple per distinct k-mer
	// whose value is its multiplicity (clamped to uint32). No labels.
	KindKmerset = "kmerset"
)

// ErrBadArtifact is the sentinel wrapped by every structural error: bad
// magic, truncated file, checksum mismatch, undecodable section. Callers
// test with errors.Is(err, ErrBadArtifact).
var ErrBadArtifact = errors.New("bad or corrupt artifact")

// ErrMismatch is the sentinel wrapped when a structurally valid artifact
// does not match the requested use: wrong index digest, k/m, filter, or
// kind. Distinct from ErrBadArtifact so callers can distinguish "re-run the
// pipeline" from "the file is damaged".
var ErrMismatch = errors.New("artifact does not match request")

// FormatError reports a structural defect in an artifact file. It unwraps
// to ErrBadArtifact.
type FormatError struct {
	Path    string // file being read
	Section string // section name, or "trailer"/"header" for framing errors
	Reason  string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("artifact %s: %s: %s", e.Path, e.Section, e.Reason)
}

func (e *FormatError) Unwrap() error { return ErrBadArtifact }

func badf(path, section, format string, args ...any) error {
	return &FormatError{Path: path, Section: section, Reason: fmt.Sprintf(format, args...)}
}

// Meta is the provenance record stored in the meta section. It is JSON so
// the format can grow fields without a version bump; unknown fields are
// ignored on read.
type Meta struct {
	// Kind is KindPartition or KindKmerset.
	Kind string `json:"kind"`
	// K and M are the k-mer and minimizer lengths the tuples were built with.
	K int `json:"k"`
	M int `json:"m"`
	// Wide marks 128-bit keys (k > 32); Compress marks varint/delta block
	// payloads. Both must match the kmers section encoding.
	Wide     bool `json:"wide"`
	Compress bool `json:"compress"`
	// BlockTuples is the max tuples per encoded block — the decode buffer
	// bound readers must honor.
	BlockTuples int `json:"block_tuples"`
	// FilterMin/FilterMax are the frequency filter the labels were computed
	// under (0 = unbounded max).
	FilterMin int `json:"filter_min"`
	FilterMax int `json:"filter_max"`
	// Reads is the read-id space size; len(labels) == Reads for partitions.
	Reads uint32 `json:"reads"`
	// Tuples and Edges summarize the run that produced the artifact.
	Tuples uint64 `json:"tuples"`
	Edges  uint64 `json:"edges"`
	// IndexDigest pins the exact input index (index.Digest). Empty for
	// derived artifacts (incremental merges, set operations).
	IndexDigest string `json:"index_digest,omitempty"`
	// ConfigHash is the producing run's CanonicalHash. Informational only:
	// it covers run-shape knobs (tasks, out dir) that do not affect labels,
	// so compatibility checks use IndexDigest + k/m/filter instead.
	ConfigHash string `json:"config_hash,omitempty"`
	// Op names the derivation for non-pipeline artifacts: "incremental",
	// "union", "intersect", "diff".
	Op string `json:"op,omitempty"`
	// Lineage lists the parents of a derived artifact (index digests when
	// known, file names otherwise).
	Lineage []string `json:"lineage,omitempty"`
}

// tocEntry is one 32-byte table-of-contents record.
type tocEntry struct {
	id    uint8
	flags uint8
	crc   uint32
	off   int64
	len   int64
	items uint64
}

func (e tocEntry) encode(dst []byte) {
	dst[0] = e.id
	dst[1] = e.flags
	dst[2], dst[3] = 0, 0
	binary.LittleEndian.PutUint32(dst[4:], e.crc)
	binary.LittleEndian.PutUint64(dst[8:], uint64(e.off))
	binary.LittleEndian.PutUint64(dst[16:], uint64(e.len))
	binary.LittleEndian.PutUint64(dst[24:], e.items)
}

func decodeTocEntry(src []byte) tocEntry {
	return tocEntry{
		id:    src[0],
		flags: src[1],
		crc:   binary.LittleEndian.Uint32(src[4:]),
		off:   int64(binary.LittleEndian.Uint64(src[8:])),
		len:   int64(binary.LittleEndian.Uint64(src[16:])),
		items: binary.LittleEndian.Uint64(src[24:]),
	}
}

func sectionName(id uint8) string {
	switch id {
	case secKmers:
		return "kmers"
	case secLabels:
		return "labels"
	case secHist:
		return "hist"
	case secMeta:
		return "meta"
	}
	return fmt.Sprintf("section#%d", id)
}
