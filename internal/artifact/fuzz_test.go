package artifact

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeed builds a small valid artifact's bytes for seeding.
func fuzzSeed(tb testing.TB, n int, wide, compress bool) []byte {
	dir, err := os.MkdirTemp("", "artifact-fuzz-")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.mpa")
	w, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(wide, compress, 8); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Tuple(uint64(i/5), uint64(i*3), uint32(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.EndKmers(); err != nil {
		tb.Fatal(err)
	}
	if err := w.Labels([]uint32{2, 2, 2}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Hist([]uint64{0, 1, 2}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Finish(Meta{Kind: KindPartition, K: 27, M: 15, Reads: 3}); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzArtifactCodec feeds arbitrary bytes through the full artifact read
// path: Open, every section accessor, the streaming tuple scan, and the
// checksum verifier. The invariant is error discipline, not success — every
// failure must be a typed error wrapping ErrBadArtifact (or a clean read),
// never a panic, hang, or unbounded allocation. Mutations of valid
// artifacts (bit flips, truncations) are the interesting corpus; the seeds
// cover both key widths and the compressed payload path.
func FuzzArtifactCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MPAF"))
	f.Add(make([]byte, headerLen+trailerLen))
	f.Add(fuzzSeed(f, 20, false, true))
	f.Add(fuzzSeed(f, 20, false, false))
	f.Add(fuzzSeed(f, 20, true, false))
	// A truncated and a bit-flipped variant of a valid file.
	seed := fuzzSeed(f, 40, false, true)
	f.Add(seed[:len(seed)-10])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.mpa")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			if !errors.Is(err, ErrBadArtifact) {
				t.Fatalf("Open error not typed: %v", err)
			}
			return
		}
		defer r.Close()
		if r.HasLabels() {
			if _, err := r.Labels(); err != nil && !errors.Is(err, ErrBadArtifact) {
				t.Fatalf("Labels error not typed: %v", err)
			}
		}
		if _, err := r.Hist(); err != nil && !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("Hist error not typed: %v", err)
		}
		if err := r.VerifyKmers(); err != nil && !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("VerifyKmers error not typed: %v", err)
		}
		s, err := r.Kmers()
		if err != nil {
			if !errors.Is(err, ErrBadArtifact) {
				t.Fatalf("Kmers error not typed: %v", err)
			}
			return
		}
		defer s.Close()
		var prevHi, prevLo uint64
		first := true
		for n := 0; n < 1<<20; n++ {
			hi, lo, _, ok, err := s.Next()
			if err != nil {
				if !errors.Is(err, ErrBadArtifact) {
					t.Fatalf("Next error not typed: %v", err)
				}
				return
			}
			if !ok {
				return
			}
			if !first && keyLess(hi, lo, prevHi, prevLo) {
				// The format promises sorted order only for writer-produced
				// files; fuzz-mutated payloads that still frame-decode may
				// be unsorted. Not an error — just stop scanning.
				return
			}
			prevHi, prevLo, first = hi, lo, false
		}
	})
}

// FuzzMetaJSON mutates only the meta section's JSON bytes: Open must reject
// undecodable or implausible metadata with a typed error.
func FuzzMetaJSON(f *testing.F) {
	f.Add([]byte(`{"kind":"partition","k":27,"m":15,"block_tuples":8}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"block_tuples":-1}`))
	f.Fuzz(func(t *testing.T, mj []byte) {
		raw := fuzzSeed(t, 4, false, true)
		// Locate the meta TOC entry and splice mj in its place, fixing the
		// entry's length and CRC so only the JSON-decode layer is exercised.
		tocLen := int64(binary.LittleEndian.Uint32(raw[len(raw)-trailerLen:]))
		tocOff := int64(len(raw)) - trailerLen - tocLen
		var rebuilt []byte
		var metaOff, metaLen int64
		for i := tocOff; i < tocOff+tocLen; i += tocEntryLen {
			e := decodeTocEntry(raw[i:])
			if e.id == secMeta {
				metaOff, metaLen = e.off, e.len
			}
		}
		if metaLen == 0 {
			t.Skip("seed has no meta section")
		}
		rebuilt = append(rebuilt, raw[:metaOff]...)
		rebuilt = append(rebuilt, mj...)
		tail := raw[metaOff+metaLen:]
		shift := int64(len(mj)) - metaLen
		rebuilt = append(rebuilt, tail...)
		// Patch TOC entries that referenced bytes at or after the meta
		// section, then the trailer CRC.
		newTocOff := tocOff + shift
		for i := newTocOff; i < newTocOff+tocLen; i += tocEntryLen {
			e := decodeTocEntry(rebuilt[i:])
			if e.id == secMeta {
				e.len = int64(len(mj))
				e.crc = crc32.ChecksumIEEE(mj)
			} else if e.off >= metaOff {
				e.off += shift
			}
			e.encode(rebuilt[i:])
		}
		trailer := rebuilt[len(rebuilt)-trailerLen:]
		binary.LittleEndian.PutUint32(trailer[4:], crc32.ChecksumIEEE(rebuilt[newTocOff:newTocOff+tocLen]))

		path := filepath.Join(t.TempDir(), "meta.mpa")
		if err := os.WriteFile(path, rebuilt, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			if !errors.Is(err, ErrBadArtifact) {
				t.Fatalf("Open error not typed: %v", err)
			}
			return
		}
		r.Close()
	})
}
