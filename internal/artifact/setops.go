package artifact

import (
	"fmt"
	"math"
	"path/filepath"
)

// Set operations view an artifact as a multiset of canonical k-mers: a
// partition artifact contributes each distinct key with multiplicity = run
// length, a kmerset artifact contributes each key with multiplicity = its
// stored count. The output is always a kmerset (one tuple per distinct
// key, value = clamped count), so operations compose: union of unions,
// diff of an intersect, and so on — the unikmer-style algebra ROADMAP
// item 2 calls for, built on the same sorted-stream merge the incremental
// path uses.

// SetOpStats summarizes one set operation.
type SetOpStats struct {
	Op       string
	Output   string
	Inputs   []string
	Distinct []uint64 // distinct k-mers per input
	Emitted  uint64   // distinct k-mers written
}

// Union writes the multiset union (counts sum) of the inputs to out.
func Union(out string, inputs []string) (SetOpStats, error) {
	return setOp("union", out, inputs)
}

// Intersect writes the k-mers present in every input (counts take the
// minimum) to out.
func Intersect(out string, inputs []string) (SetOpStats, error) {
	return setOp("intersect", out, inputs)
}

// Diff writes the k-mers present in the first input but in none of the
// others (keeping the first input's counts) to out.
func Diff(out string, inputs []string) (SetOpStats, error) {
	return setOp("diff", out, inputs)
}

// distinctStream adapts a tuple Stream to a distinct-key stream with
// multiplicities, collapsing the runs of a partition artifact.
type distinctStream struct {
	s         *Stream
	partition bool

	hi, lo uint64 // current key, valid when ok
	count  uint64
	ok     bool

	pendHi, pendLo uint64 // lookahead tuple not yet folded into a key
	pendVal        uint32
	pend           bool
}

func newDistinctStream(r *Reader) (*distinctStream, error) {
	s, err := r.Kmers()
	if err != nil {
		return nil, err
	}
	return &distinctStream{s: s, partition: r.meta.Kind != KindKmerset}, nil
}

// next advances to the next distinct key; returns false at end.
func (d *distinctStream) next() (bool, error) {
	if !d.pend {
		var ok bool
		var err error
		d.pendHi, d.pendLo, d.pendVal, ok, err = d.s.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			d.ok = false
			return false, nil
		}
		d.pend = true
	}
	d.hi, d.lo, d.ok = d.pendHi, d.pendLo, true
	if !d.partition {
		d.count = uint64(d.pendVal)
		d.pend = false
		return true, nil
	}
	// Partition: count the run of tuples sharing this key.
	d.count = 0
	for {
		d.count++
		hi, lo, val, ok, err := d.s.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			d.pend = false
			return true, nil
		}
		if hi != d.hi || lo != d.lo {
			d.pendHi, d.pendLo, d.pendVal, d.pend = hi, lo, val, true
			return true, nil
		}
	}
}

func (d *distinctStream) close() { d.s.Close() }

// keyLess orders 128-bit keys.
func keyLess(aHi, aLo, bHi, bLo uint64) bool {
	return aHi < bHi || (aHi == bHi && aLo < bLo)
}

func setOp(op, out string, inputs []string) (SetOpStats, error) {
	if len(inputs) < 2 {
		return SetOpStats{}, fmt.Errorf("artifact %s: need at least 2 inputs, got %d", op, len(inputs))
	}
	readers := make([]*Reader, 0, len(inputs))
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	var ref Meta
	lineage := make([]string, len(inputs))
	for i, p := range inputs {
		r, err := Open(p)
		if err != nil {
			return SetOpStats{}, err
		}
		readers = append(readers, r)
		m := r.Meta()
		if i == 0 {
			ref = m
		} else if m.K != ref.K || m.M != ref.M || m.Wide != ref.Wide {
			return SetOpStats{}, fmt.Errorf(
				"artifact %s: %s has k=%d m=%d wide=%v, %s has k=%d m=%d wide=%v: %w",
				op, inputs[0], ref.K, ref.M, ref.Wide, p, m.K, m.M, m.Wide, ErrMismatch)
		}
		if m.IndexDigest != "" {
			lineage[i] = m.IndexDigest
		} else {
			lineage[i] = filepath.Base(p)
		}
	}

	streams := make([]*distinctStream, len(readers))
	defer func() {
		for _, d := range streams {
			if d != nil {
				d.close()
			}
		}
	}()
	st := SetOpStats{Op: op, Output: out, Inputs: inputs, Distinct: make([]uint64, len(inputs))}
	for i, r := range readers {
		d, err := newDistinctStream(r)
		if err != nil {
			return st, err
		}
		streams[i] = d
		if _, err := d.next(); err != nil {
			return st, err
		}
		if d.ok {
			st.Distinct[i] = 1 // counted as streams advance below
		}
	}

	w, err := Create(out)
	if err != nil {
		return st, err
	}
	defer w.Abort()
	if err := w.BeginKmers(ref.Wide, !ref.Wide, DefaultBlockTuples); err != nil {
		return st, err
	}
	hist := make([]uint64, 256)

	for {
		// Find the minimum key among live streams.
		first := true
		var mHi, mLo uint64
		for _, d := range streams {
			if !d.ok {
				continue
			}
			if first || keyLess(d.hi, d.lo, mHi, mLo) {
				mHi, mLo, first = d.hi, d.lo, false
			}
		}
		if first {
			break // all streams exhausted
		}
		var sum, minC uint64
		present := 0
		inFirst, inRest := false, false
		for i, d := range streams {
			if !d.ok || d.hi != mHi || d.lo != mLo {
				continue
			}
			present++
			sum += d.count
			if present == 1 || d.count < minC {
				minC = d.count
			}
			if i == 0 {
				inFirst = true
			} else {
				inRest = true
			}
		}
		emit, count := false, uint64(0)
		switch op {
		case "union":
			emit, count = true, sum
		case "intersect":
			emit, count = present == len(streams), minC
		case "diff":
			if inFirst && !inRest {
				emit, count = true, streams[0].count
			}
		}
		if emit {
			if count > math.MaxUint32 {
				count = math.MaxUint32
			}
			if err := w.Tuple(mHi, mLo, uint32(count)); err != nil {
				return st, err
			}
			st.Emitted++
			bin := count
			if bin >= uint64(len(hist)) {
				bin = uint64(len(hist)) - 1
			}
			hist[bin]++
		}
		// Advance every stream sitting on the minimum key.
		for i, d := range streams {
			if d.ok && d.hi == mHi && d.lo == mLo {
				adv, err := d.next()
				if err != nil {
					return st, err
				}
				if adv {
					st.Distinct[i]++
				}
			}
		}
	}
	if err := w.EndKmers(); err != nil {
		return st, err
	}
	if err := w.Hist(hist); err != nil {
		return st, err
	}
	meta := Meta{
		Kind: KindKmerset, K: ref.K, M: ref.M,
		FilterMin: ref.FilterMin, FilterMax: ref.FilterMax,
		Op: op, Lineage: lineage,
	}
	if err := w.Finish(meta); err != nil {
		return st, err
	}
	return st, nil
}
