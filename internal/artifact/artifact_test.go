package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// testTuples builds a deterministic sorted tuple set: distinct keys with
// run lengths cycling 1..4, values increasing.
func testTuples(n int, wide bool) (hi, lo []uint64, val []uint32) {
	key := uint64(100)
	v := uint32(0)
	for len(lo) < n {
		run := len(lo)%4 + 1
		for j := 0; j < run && len(lo) < n; j++ {
			lo = append(lo, key*7)
			if wide {
				hi = append(hi, key/3)
			}
			val = append(val, v)
			v++
		}
		key += uint64(len(lo)%5 + 1)
	}
	if !wide {
		hi = nil
	}
	return hi, lo, val
}

func writeTestArtifact(t *testing.T, path string, n int, wide, compress bool) ([]uint64, []uint64, []uint32, []uint32, []uint64) {
	t.Helper()
	hi, lo, val := testTuples(n, wide)
	labels := make([]uint32, 50)
	for i := range labels {
		labels[i] = uint32(i % 7 * 8)
	}
	hist := make([]uint64, 256)
	hist[1], hist[2], hist[255] = 10, 4, 1
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(wide, compress, 16); err != nil {
		t.Fatal(err)
	}
	for i := range lo {
		h := uint64(0)
		if wide {
			h = hi[i]
		}
		if err := w.Tuple(h, lo[i], val[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Labels(labels); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(hist); err != nil {
		t.Fatal(err)
	}
	meta := Meta{
		Kind: KindPartition, K: 27, M: 15, FilterMin: 2,
		Reads: uint32(len(labels)), Edges: 33, IndexDigest: "test-digest",
		ConfigHash: "test-hash",
	}
	if err := w.Finish(meta); err != nil {
		t.Fatal(err)
	}
	return hi, lo, val, labels, hist
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name           string
		wide, compress bool
	}{
		{"narrow-raw", false, false},
		{"narrow-compress", false, true},
		{"wide-raw", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "a.mpa")
			hi, lo, val, labels, hist := writeTestArtifact(t, path, 1000, tc.wide, tc.compress)
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			m := r.Meta()
			if m.Kind != KindPartition || m.K != 27 || m.M != 15 || m.FilterMin != 2 ||
				m.Wide != tc.wide || m.Compress != tc.compress || m.BlockTuples != 16 ||
				m.Tuples != 1000 || m.IndexDigest != "test-digest" {
				t.Fatalf("meta mismatch: %+v", m)
			}
			gl, err := r.Labels()
			if err != nil {
				t.Fatal(err)
			}
			if len(gl) != len(labels) {
				t.Fatalf("labels len %d != %d", len(gl), len(labels))
			}
			for i := range gl {
				if gl[i] != labels[i] {
					t.Fatalf("label[%d] = %d, want %d", i, gl[i], labels[i])
				}
			}
			gh, err := r.Hist()
			if err != nil {
				t.Fatal(err)
			}
			for i := range gh {
				if gh[i] != hist[i] {
					t.Fatalf("hist[%d] = %d, want %d", i, gh[i], hist[i])
				}
			}
			s, err := r.Kmers()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := range lo {
				ghi, glo, gv, ok, err := s.Next()
				if err != nil || !ok {
					t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
				}
				wantHi := uint64(0)
				if tc.wide {
					wantHi = hi[i]
				}
				if ghi != wantHi || glo != lo[i] || gv != val[i] {
					t.Fatalf("tuple %d = (%d,%d,%d), want (%d,%d,%d)", i, ghi, glo, gv, wantHi, lo[i], val[i])
				}
			}
			if _, _, _, ok, err := s.Next(); ok || err != nil {
				t.Fatalf("expected end of stream, ok=%v err=%v", ok, err)
			}
			if err := r.VerifyKmers(); err != nil {
				t.Fatal(err)
			}
			if r.BytesRead() == 0 {
				t.Fatal("BytesRead not tracked")
			}
		})
	}
}

func TestCopyBlocksSplicesVerbatim(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.mpa")
	writeTestArtifact(t, a, 500, false, true)
	ra, err := Open(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	// Splice a's encoded kmer section into b without re-encoding.
	b := filepath.Join(dir, "b.mpa")
	w, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, true, ra.Meta().BlockTuples); err != nil {
		t.Fatal(err)
	}
	f, seg := ra.KmerSeg()
	sr := io.NewSectionReader(f, seg.Off, seg.Len)
	if err := w.CopyBlocks(sr, seg.Len, seg.Tuples); err != nil {
		t.Fatal(err)
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(make([]uint64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Meta{Kind: KindKmerset, K: 27, M: 15}); err != nil {
		t.Fatal(err)
	}
	rb, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if rb.Tuples() != 500 {
		t.Fatalf("spliced tuples = %d, want 500", rb.Tuples())
	}
	sa, _ := ra.Kmers()
	sb, _ := rb.Kmers()
	defer sa.Close()
	defer sb.Close()
	for {
		h1, l1, v1, ok1, err1 := sa.Next()
		h2, l2, v2, ok2, err2 := sb.Next()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ok1 != ok2 || h1 != h2 || l1 != l2 || v1 != v2 {
			t.Fatalf("spliced stream diverges: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
				h1, l1, v1, ok1, h2, l2, v2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

// TestFormatGolden pins format v1: the exact bytes of a fixed artifact. Any
// change to the magic, section layout, TOC encoding, checksums, meta JSON
// field set, or extsort block codec shows up here — bump FormatVersion
// instead of re-pinning silently.
func TestFormatGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.mpa")
	writeTestArtifact(t, path, 64, false, true)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:4]) != "MPAF" || raw[4] != FormatVersion {
		t.Fatalf("header = %q", raw[:8])
	}
	if string(raw[len(raw)-8:]) != "MPAFend1" {
		t.Fatalf("tail = %q", raw[len(raw)-8:])
	}
	const want = "4b7c1f7f0fd4d000c39dd42944d8149922fa7883826342dd26c8cc16ddbf02cd"
	got := sha256.Sum256(raw)
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("format v1 golden changed:\n got %x\nwant %s\n(size %d bytes) — a byte-level format change requires a version bump",
			got, want, len(raw))
	}
}

func TestOpenErrorsAreTyped(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.mpa")
	writeTestArtifact(t, good, 200, false, true)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(good)
	if err != nil {
		t.Fatal(err)
	}
	secs := map[string]tocEntry{}
	for id, e := range r.secs {
		secs[sectionName(id)] = e
	}
	r.Close()

	write := func(t *testing.T, mut func(b []byte) []byte) string {
		t.Helper()
		b := append([]byte(nil), raw...)
		b = mut(b)
		p := filepath.Join(t.TempDir(), "bad.mpa")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("bad-magic", func(t *testing.T) {
		p := write(t, func(b []byte) []byte { b[0] = 'X'; return b })
		if _, err := Open(p); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		p := write(t, func(b []byte) []byte { b[4] = FormatVersion + 1; return b })
		_, err := Open(p)
		if !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
		var fe *FormatError
		if !errors.As(err, &fe) || fe.Section != "header" {
			t.Fatalf("err = %v, want header FormatError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		p := write(t, func(b []byte) []byte { return b[:len(b)/2] })
		if _, err := Open(p); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		p := write(t, func(b []byte) []byte { return b[:0] })
		if _, err := Open(p); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
	})
	t.Run("toc-corrupt", func(t *testing.T) {
		p := write(t, func(b []byte) []byte { b[len(b)-trailerLen-1] ^= 0xff; return b })
		if _, err := Open(p); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
	})
	t.Run("meta-corrupt", func(t *testing.T) {
		e := secs["meta"]
		p := write(t, func(b []byte) []byte { b[e.off] ^= 0xff; return b })
		var fe *FormatError
		_, err := Open(p)
		if !errors.As(err, &fe) || fe.Section != "meta" {
			t.Fatalf("err = %v, want meta FormatError", err)
		}
	})
	t.Run("labels-corrupt", func(t *testing.T) {
		e := secs["labels"]
		p := write(t, func(b []byte) []byte { b[e.off+1] ^= 0x01; return b })
		r, err := Open(p) // labels verify lazily
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		_, err = r.Labels()
		var fe *FormatError
		if !errors.As(err, &fe) || fe.Section != "labels" || !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want labels FormatError", err)
		}
	})
	t.Run("hist-corrupt", func(t *testing.T) {
		e := secs["hist"]
		p := write(t, func(b []byte) []byte { b[e.off] ^= 0x80; return b })
		r, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Hist(); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("err = %v, want ErrBadArtifact", err)
		}
	})
	t.Run("kmers-corrupt", func(t *testing.T) {
		e := secs["kmers"]
		p := write(t, func(b []byte) []byte { b[e.off+3] ^= 0xff; return b })
		r, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.VerifyKmers(); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("VerifyKmers = %v, want ErrBadArtifact", err)
		}
		// The streaming path must fail too (framing or count check), never
		// silently return wrong data without an error... a flipped payload
		// byte may decode to different tuples, which VerifyKmers catches;
		// here we only require no panic and a clean close.
		s, err := r.Kmers()
		if err == nil {
			for {
				_, _, _, ok, err := s.Next()
				if !ok || err != nil {
					break
				}
			}
			s.Close()
		}
	})
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.mpa")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginKmers(false, true, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Tuple(0, 42, 1); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("abort left files: %v", ents)
	}
}

func TestInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.mpa")
	writeTestArtifact(t, path, 300, false, true)
	d, err := Info(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Kind != KindPartition || len(d.Sections) != 4 {
		t.Fatalf("info = %+v", d)
	}
	for _, s := range d.Sections {
		if s.Name == "kmers" && s.Items != 300 {
			t.Fatalf("kmers items = %d", s.Items)
		}
	}
}

// writeKmerset builds a kmerset artifact from (key, count) pairs.
func writeKmerset(t *testing.T, path string, keys []uint64, counts []uint32) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, true, 8); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := w.Tuple(0, k, counts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(make([]uint64, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Meta{Kind: KindKmerset, K: 27, M: 15}); err != nil {
		t.Fatal(err)
	}
}

func readKmerset(t *testing.T, path string) map[uint64]uint32 {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s, err := r.Kmers()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := map[uint64]uint32{}
	var last uint64
	first := true
	for {
		_, lo, v, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return got
		}
		if !first && lo <= last {
			t.Fatalf("output not strictly sorted: %d after %d", lo, last)
		}
		last, first = lo, false
		got[lo] = v
	}
}

func TestSetOps(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.mpa")
	b := filepath.Join(dir, "b.mpa")
	writeKmerset(t, a, []uint64{1, 3, 5, 9}, []uint32{2, 1, 4, 1})
	writeKmerset(t, b, []uint64{3, 4, 5, 10}, []uint32{5, 2, 1, 7})

	out := filepath.Join(dir, "u.mpa")
	st, err := Union(out, []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if st.Distinct[0] != 4 || st.Distinct[1] != 4 || st.Emitted != 6 {
		t.Fatalf("union stats = %+v", st)
	}
	want := map[uint64]uint32{1: 2, 3: 6, 4: 2, 5: 5, 9: 1, 10: 7}
	got := readKmerset(t, out)
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("union[%d] = %d, want %d", k, got[k], v)
		}
	}

	out = filepath.Join(dir, "i.mpa")
	if _, err := Intersect(out, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	got = readKmerset(t, out)
	want = map[uint64]uint32{3: 1, 5: 1}
	if len(got) != 2 || got[3] != 1 || got[5] != 1 {
		t.Fatalf("intersect = %v, want %v", got, want)
	}

	out = filepath.Join(dir, "d.mpa")
	if _, err := Diff(out, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	got = readKmerset(t, out)
	if len(got) != 2 || got[1] != 2 || got[9] != 1 {
		t.Fatalf("diff = %v, want {1:2 9:1}", got)
	}

	ro, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	m := ro.Meta()
	ro.Close()
	if m.Kind != KindKmerset || m.Op != "diff" || len(m.Lineage) != 2 {
		t.Fatalf("setop meta = %+v", m)
	}
}

func TestSetOpPartitionInput(t *testing.T) {
	// A partition artifact's runs collapse to distinct keys with
	// multiplicity = run length.
	dir := t.TempDir()
	p := filepath.Join(dir, "p.mpa")
	w, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, true, 8); err != nil {
		t.Fatal(err)
	}
	// Runs: key 2 ×3, key 7 ×1, key 9 ×2.
	for _, tp := range [][2]uint64{{2, 0}, {2, 1}, {2, 2}, {7, 3}, {9, 4}, {9, 5}} {
		if err := w.Tuple(0, tp[0], uint32(tp[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Labels([]uint32{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(make([]uint64, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Meta{Kind: KindPartition, K: 27, M: 15, Reads: 3}); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.mpa")
	writeKmerset(t, b, []uint64{2, 9}, []uint32{1, 1})
	out := filepath.Join(dir, "u.mpa")
	st, err := Union(out, []string{p, b})
	if err != nil {
		t.Fatal(err)
	}
	if st.Distinct[0] != 3 {
		t.Fatalf("partition distinct = %d, want 3", st.Distinct[0])
	}
	got := readKmerset(t, out)
	if got[2] != 4 || got[7] != 1 || got[9] != 3 {
		t.Fatalf("union = %v", got)
	}
}

func TestSetOpMismatch(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.mpa")
	writeKmerset(t, a, []uint64{1}, []uint32{1})
	b := filepath.Join(dir, "b.mpa")
	w, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(false, true, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.EndKmers(); err != nil {
		t.Fatal(err)
	}
	if err := w.Hist(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(Meta{Kind: KindKmerset, K: 31, M: 15}); err != nil {
		t.Fatal(err)
	}
	if _, err := Union(filepath.Join(dir, "u.mpa"), []string{a, b}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestSetOpEmptyInput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.mpa")
	writeKmerset(t, a, []uint64{1, 2}, []uint32{1, 1})
	b := filepath.Join(dir, "b.mpa")
	writeKmerset(t, b, nil, nil)
	got, err := Intersect(filepath.Join(dir, "i.mpa"), []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.Emitted != 0 {
		t.Fatalf("intersect with empty = %d emitted", got.Emitted)
	}
	u, err := Union(filepath.Join(dir, "u.mpa"), []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if u.Emitted != 2 {
		t.Fatalf("union with empty = %d emitted", u.Emitted)
	}
}

func TestWriterRejectsWideCompress(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "a.mpa"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.BeginKmers(true, true, 8); err == nil {
		t.Fatal("wide+compress accepted")
	}
}

func ExampleInfo() {
	// Kept tiny: Info is the `metaprep artifact info` backend.
	fmt.Println("sections: kmers labels hist meta")
	// Output: sections: kmers labels hist meta
}
