package traj

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metaprep/internal/model"
)

func sample(job string, wall time.Duration) Record {
	w := model.PaperWorkload("HG")
	c := model.Cluster{P: 2, T: 2, S: 1}
	drift := model.Reconcile(model.Edison(), w, c,
		model.Measured{Steps: model.Predict(model.Edison(), w, c)})
	return Record{
		Time: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Job:  job, Dataset: "hg",
		Tasks: 2, Threads: 2, Passes: 1,
		Reads: 1000, Tuples: 50000, Components: 42,
		WallNanos: wall.Nanoseconds(),
		StepNanos: []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Drift:     &drift,
	}
}

// TestAppendLoadRoundTrip appends several records and loads them back.
func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trajectory.jsonl")
	for i, job := range []string{"j1", "j2", "j3"} {
		if err := Append(path, sample(job, time.Duration(i+1)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1].Job != "j2" || recs[1].Wall() != 2*time.Second {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[0].Drift == nil || len(recs[0].Drift.Steps) != 8 {
		t.Fatalf("drift lost: %+v", recs[0].Drift)
	}
	if len(recs[2].StepNanos) != 8 {
		t.Fatalf("steps lost: %v", recs[2].StepNanos)
	}
	// One line per record — the JSONL contract.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n != 3 {
		t.Fatalf("%d lines for 3 records", n)
	}
}

// TestLoadSkipsBlanksRejectsGarbage checks tolerant-but-strict loading:
// blank lines pass, malformed JSON fails with the line number.
func TestLoadSkipsBlanksRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := Append(path, sample("a", time.Second)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n")
	f.Close()
	if err := Append(path, sample("b", time.Second)); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Job != "b" {
		t.Fatalf("records = %+v", recs)
	}

	f, _ = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("{not json\n")
	f.Close()
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), ":4:") {
		t.Fatalf("garbage line not rejected with line number: %v", err)
	}
}

// TestLoadMissingFile returns an error rather than an empty trajectory.
func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file loaded")
	}
}
