// Package traj maintains the performance trajectory: an append-only JSONL
// file with one record per pipeline run, carrying the run's shape, its
// wall time and the model-drift report. The daemon appends on every job
// completion (-trajectory), `metaprep run -trajectory` appends locally,
// and `metaprep drift` renders the file as a predicted-vs-measured table —
// regressions become visible across runs, commits and machines instead of
// only within one process lifetime.
//
// JSONL (one JSON object per line) is the format on purpose: appends are a
// single O_APPEND write (atomic at this size on POSIX), partial files stay
// loadable line by line, and the file diffs and greps cleanly.
package traj

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"metaprep/internal/core"
	"metaprep/internal/model"
)

// Record is one trajectory entry — one pipeline run.
type Record struct {
	// Time is when the run finished.
	Time time.Time `json:"time"`
	// Job is the daemon job ID ("" for direct CLI runs).
	Job string `json:"job,omitempty"`
	// Dataset labels the input (the CLI uses the index path's base name).
	Dataset string `json:"dataset,omitempty"`
	// Tasks/Threads/Passes are the run's P, T and S.
	Tasks   int `json:"tasks"`
	Threads int `json:"threads"`
	Passes  int `json:"passes"`
	// Reads, Tuples and Components summarize the workload and its outcome.
	Reads      uint32 `json:"reads"`
	Tuples     uint64 `json:"tuples"`
	Components int    `json:"components"`
	// WallNanos is the measured end-to-end wall time.
	WallNanos int64 `json:"wall_nanos"`
	// StepNanos is the per-step critical path (StepTimes order, 8 entries).
	StepNanos []int64 `json:"step_nanos,omitempty"`
	// Drift is the run's model reconciliation (nil when disabled).
	Drift *model.DriftReport `json:"drift,omitempty"`
}

// FromResult builds a trajectory record for one finished run. The caller
// stamps Time, Job and Dataset.
func FromResult(cfg core.Config, res *core.Result) Record {
	r := Record{
		Tasks:      cfg.Tasks,
		Threads:    cfg.Threads,
		Passes:     cfg.Passes,
		Reads:      res.Reads,
		Tuples:     res.Tuples,
		Components: res.Components,
		WallNanos:  res.Wall.Nanoseconds(),
		Drift:      res.Drift,
	}
	res.Steps.Each(func(name string, d time.Duration) {
		r.StepNanos = append(r.StepNanos, d.Nanoseconds())
	})
	return r
}

// Wall returns the record's wall time as a duration.
func (r Record) Wall() time.Duration { return time.Duration(r.WallNanos) }

// Append writes one record to the end of the trajectory file, creating it
// if needed. Each record is exactly one line.
func Append(path string, r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("traj: encode record: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("traj: open %s: %w", path, err)
	}
	_, werr := f.Write(append(b, '\n'))
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("traj: append to %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("traj: close %s: %w", path, cerr)
	}
	return nil
}

// Load reads every record of a trajectory file, in file order. Blank lines
// are skipped; a malformed line fails with its line number so a corrupted
// file is diagnosable.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traj: open %s: %w", path, err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("traj: %s:%d: %w", path, line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traj: read %s: %w", path, err)
	}
	return out, nil
}
