//go:build linux

package jobs

import (
	"io/fs"
	"syscall"
	"time"
)

// atime extracts the file's access time — the artifact store's last-access
// clock (os.Chtimes on every cache hit sets atime and mtime together, so
// this tracks reads even on relatime mounts).
func atime(fi fs.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
