package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"metaprep/internal/core"
)

// artifactStore is the daemon's content-addressed partition-artifact store:
// a directory of .mpa files bounded by a byte budget and evicted least-
// recently-used (mtime is the recency clock — bumped on every lookup hit,
// so a hot base artifact survives commits that push the store over budget).
//
// Two entry kinds share the budget:
//
//   - "p-<indexDigest>-min<N>-max<N>.mpa": full partition artifacts, served
//     to later jobs over the same (index, filter) key as a reload instead
//     of a recompute. Tasks/threads/passes are absent from the key on
//     purpose — labels are shape-independent, so any shape's artifact
//     satisfies any other shape's submission.
//   - "i-<jobID>.mpa": merged artifacts of incremental (delta) jobs. These
//     carry no index digest (their read space is base∪delta), so they are
//     never served by key lookup; they exist to be fetched via
//     GET /jobs/{id}/artifact and chained as the base of a further delta.
//
// Eviction unlinks files that a running job may hold open; that is safe —
// the open descriptor keeps the bytes readable until the job closes it.
type artifactStore struct {
	dir    string
	budget int64 // <= 0 means unbounded

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

// newArtifactStore roots a store at dir, creating it if needed and
// sweeping stale staging files from a previous daemon process.
func newArtifactStore(dir string, budget int64) (*artifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "staging-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &artifactStore{dir: dir, budget: budget}, nil
}

// key names the store entry a configuration's partition artifact lives at.
// Only inputs that change the label map participate: the index digest
// (covering the read set, k, m and pairing) and the edge filter.
func artifactKey(cfg core.Config) string {
	return fmt.Sprintf("p-%s-min%d-max%d.mpa",
		cfg.Index.Digest(), cfg.Filter.Min, cfg.Filter.Max)
}

// lookup returns the stored artifact path for cfg's key, bumping its
// recency. The second return is false on miss.
func (s *artifactStore) lookup(cfg core.Config) (string, bool) {
	path := filepath.Join(s.dir, artifactKey(cfg))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(path); err != nil {
		s.misses++
		return "", false
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	s.hits++
	return path, true
}

// staging returns a private path a job writes its artifact to before
// commit; the file is removed by the caller on failure (and swept at
// startup if the process dies first).
func (s *artifactStore) staging(jobID string) string {
	return filepath.Join(s.dir, "staging-"+jobID+".mpa")
}

// commit renames a staged artifact into the store under name (an
// artifactKey or an "i-<jobID>.mpa" incremental name) and evicts until the
// store is back under budget. Returns the committed path.
func (s *artifactStore) commit(staged, name string) (string, error) {
	path := filepath.Join(s.dir, name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(staged, path); err != nil {
		return "", err
	}
	s.evictLocked(path)
	return path, nil
}

// drop removes a store entry (a corrupt or mismatched artifact discovered
// at reload time).
func (s *artifactStore) drop(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(path)
}

// evictLocked removes oldest-first .mpa entries until total size fits the
// budget, never evicting keep (the entry just committed — a store whose
// budget is smaller than one artifact still serves that artifact).
func (s *artifactStore) evictLocked(keep string) {
	if s.budget <= 0 {
		return
	}
	type ent struct {
		path  string
		size  int64
		mtime time.Time
	}
	var ents []ent
	var total int64
	for _, e := range s.listLocked() {
		ents = append(ents, ent{e.Path, e.Bytes, e.ModTime})
		total += e.Bytes
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime.Before(ents[j].mtime) })
	for _, e := range ents {
		if total <= s.budget {
			return
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
		}
	}
}

// ArtifactEntry describes one stored artifact for the /artifacts listing.
type ArtifactEntry struct {
	// Name is the store-relative file name (the content key for partition
	// entries, "i-<jobID>.mpa" for incremental ones).
	Name  string `json:"name"`
	Path  string `json:"-"`
	Bytes int64  `json:"bytes"`
	// ModTime is the LRU recency clock (bumped on every cache hit);
	// LastAccess is the file's access time — the same clock where the
	// filesystem records atime, ModTime where it does not (noatime).
	ModTime    time.Time `json:"mtime"`
	LastAccess time.Time `json:"last_access"`
}

func (s *artifactStore) listLocked() []ArtifactEntry {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []ArtifactEntry
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".mpa") || strings.HasPrefix(name, "staging-") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, ArtifactEntry{
			Name: name, Path: filepath.Join(s.dir, name),
			Bytes: fi.Size(), ModTime: fi.ModTime(),
			LastAccess: atime(fi),
		})
	}
	return out
}

// list snapshots the store, newest first; equal timestamps break on name
// so the listing is deterministic.
func (s *artifactStore) list() []ArtifactEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.listLocked()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.After(out[j].ModTime)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// stats returns entry count, total bytes and the hit/miss counters.
func (s *artifactStore) stats() (entries int, bytes int64, hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.listLocked() {
		entries++
		bytes += e.Bytes
	}
	return entries, bytes, s.hits, s.misses
}
