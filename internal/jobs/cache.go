package jobs

import (
	"container/list"

	"metaprep/internal/core"
)

// resultCache is a small LRU of completed pipeline results, keyed by the
// content-addressed (index digest, canonical config hash) pair. Results are
// immutable once a run completes, so entries are shared by pointer; the
// LRU bound keeps the resident label arrays proportional to the configured
// capacity rather than to the daemon's lifetime.
type resultCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *core.Result
}

// newResultCache returns a cache bounded to capacity entries; capacity < 0
// disables caching (every get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached result for key (nil on miss), refreshing its
// recency. Callers hold the manager mutex.
func (c *resultCache) get(key string) *core.Result {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores a result, evicting the least recently used entry beyond
// capacity. Callers hold the manager mutex.
func (c *resultCache) put(key string, res *core.Result) {
	if c.cap < 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }
