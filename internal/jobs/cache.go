package jobs

import (
	"container/list"

	"metaprep/internal/core"
)

// resultCache is a small LRU of completed pipeline results, keyed by the
// content-addressed (index digest, canonical config hash) pair. Results are
// immutable once a run completes, so entries are shared by pointer; the
// LRU is bounded twice over — by entry count and by resident bytes — so
// the cached label arrays stay proportional to the configured budget
// rather than to the daemon's lifetime or to dataset size.
type resultCache struct {
	cap     int
	budget  int64 // resident-byte bound; <= 0 means unbounded
	bytes   int64
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key   string
	res   *core.Result
	bytes int64
}

// newResultCache returns a cache bounded to capacity entries and budget
// resident bytes; capacity < 0 disables caching (every get misses).
func newResultCache(capacity int, budget int64) *resultCache {
	return &resultCache{
		cap:     capacity,
		budget:  budget,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// resultBytes estimates the resident size of a cached result: the label
// array dominates, with the histogram and per-task reports behind it.
func resultBytes(res *core.Result) int64 {
	if res == nil {
		return 0
	}
	b := int64(len(res.Labels)) * 4
	b += int64(len(res.KmerFreqHist)) * 8
	b += int64(len(res.PerTask)) * 256 // step times + memory accounting
	for _, f := range res.LCFiles {
		b += int64(len(f))
	}
	for _, f := range res.OtherFiles {
		b += int64(len(f))
	}
	return b + 512 // struct overhead
}

// get returns the cached result for key (nil on miss), refreshing its
// recency. Callers hold the manager mutex.
func (c *resultCache) get(key string) *core.Result {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores a result, evicting least-recently-used entries beyond the
// entry capacity or the byte budget (a result larger than the whole budget
// is not retained at all). Callers hold the manager mutex.
func (c *resultCache) put(key string, res *core.Result) {
	if c.cap < 0 {
		return
	}
	size := resultBytes(res)
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.bytes
		e.res, e.bytes = res, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, bytes: size})
		c.bytes += size
	}
	for c.order.Len() > 0 &&
		(c.order.Len() > c.cap || (c.budget > 0 && c.bytes > c.budget)) {
		last := c.order.Back()
		e := last.Value.(*cacheEntry)
		c.order.Remove(last)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }

// residentBytes reports the estimated bytes the cached results occupy.
func (c *resultCache) residentBytes() int64 { return c.bytes }
