// Package jobs is the partition-as-a-service job manager behind the
// metaprepd daemon: a bounded submission queue with admission control, a
// worker pool sized to the configured concurrency, a per-job lifecycle
// (pending → running → done/failed/cancelled), retries for transient I/O
// failures, and a content-addressed result cache keyed by
// (index digest, canonical config hash).
//
// The manager is deliberately independent of HTTP: internal/server maps its
// typed errors (ErrQueueFull → 429 + Retry-After, core.ErrInvalidConfig →
// 400, ErrDraining → 503) onto the wire, and any other front end (a CLI, a
// message queue) could drive the same Manager.
//
// Identical work is never executed twice concurrently: a submission whose
// cache key matches a pending or running job coalesces onto that job, and a
// key whose result is cached completes immediately as a cache hit.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"metaprep/internal/artifact"
	"metaprep/internal/core"
	"metaprep/internal/model"
	"metaprep/internal/obsv"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: Pending (queued, not yet picked up) → Running →
// exactly one of Done, Failed, Cancelled.
const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Typed admission errors, mapped by the HTTP layer onto status codes.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (the server answers 429 with Retry-After).
	ErrQueueFull = errors.New("jobs: submission queue is full")
	// ErrDraining rejects submissions after Drain has begun (503).
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound reports an unknown job ID (404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone reports a result request for a job that has not finished
	// successfully (409).
	ErrNotDone = errors.New("jobs: job has no result")
)

// Runner executes one partition job. The default is core.RunContext; tests
// inject fakes.
type Runner func(ctx context.Context, cfg core.Config) (*core.Result, error)

// Options configures a Manager. Zero values take the documented defaults.
type Options struct {
	// Workers is the worker-pool size — the number of pipeline runs the
	// manager executes concurrently (default 1; each run already
	// parallelizes internally over Tasks×Threads goroutines).
	Workers int
	// QueueCap bounds the submission queue; a submission beyond it is
	// rejected with ErrQueueFull (default 16).
	QueueCap int
	// CacheCap bounds the result cache in entries, evicted LRU (default 64;
	// 0 uses the default, negative disables caching).
	CacheCap int
	// CacheBytes bounds the result cache's resident bytes — the label
	// arrays dominate, so an entry bound alone would let memory scale with
	// dataset size. Entries are evicted LRU once the estimate exceeds the
	// budget (default 256 MiB; negative = no byte bound).
	CacheBytes int64
	// ArtifactDir, when set, roots the daemon's content-addressed partition
	// artifact store: every fresh partition job writes its artifact there
	// (keyed by index digest + filter), later jobs over the same key reload
	// it instead of recomputing, and the store is evicted
	// least-recently-used to stay under ArtifactBudgetBytes. Empty disables
	// the store.
	ArtifactDir string
	// ArtifactBudgetBytes bounds the artifact store's disk footprint
	// (default 4 GiB; negative = unbounded).
	ArtifactBudgetBytes int64
	// Retries is how many times a job is re-run after a transient failure
	// (default 2). Non-transient failures never retry.
	Retries int
	// Transient classifies retryable errors; nil uses IsTransient.
	Transient func(error) bool
	// Runner executes jobs; nil uses core.RunContext.
	Runner Runner
	// SpillDir, when set, roots the out-of-core scratch space: every job
	// submitted with SpillBudgetBytes > 0 (and no explicit SpillDir of its
	// own) runs with a private job-<ID> directory beneath it, removed when
	// the job reaches any terminal state — done, failed and cancelled alike.
	// Pair with SweepSpillDir at startup to reclaim scratch a previous
	// daemon process left behind. Empty leaves spill placement to the
	// job's Config (the OS temp dir by default).
	SpillDir string
	// RingEvents sizes each job's flight recorder: the per-job collector
	// keeps the most recent RingEvents spans in a bounded ring, cheap enough
	// to leave on for every job (default obsv.DefaultRingEvents; negative
	// selects an unbounded collector for offline-trace use).
	RingEvents int
	// TraceDir, when set, receives an automatic Perfetto trace dump
	// (job-<ID>.trace.json) whenever a job fails, is cancelled, or breaches
	// TraceSLO — the flight recorder's "what was it doing" answer without
	// anyone having asked for a trace in advance.
	TraceDir string
	// TraceSLO is the run-time latency SLO: a successful job whose run time
	// exceeds it dumps its trace to TraceDir like a failure would. 0
	// disables the SLO trigger.
	TraceSLO time.Duration
	// Trajectory, when set, is the JSONL perf-trajectory file every
	// successful job appends its record (shape, wall time, drift report) to.
	Trajectory string
	// DriftCal is the default model calibration for jobs that do not set
	// Config.DriftCal themselves ("" keeps core's default, edison).
	DriftCal string
	// OnArtifactCommit, when set, is invoked (off the manager lock, on the
	// worker goroutine) every time the artifact store admits a newly
	// committed artifact, with its store name and final path. The query
	// tier uses it to hot-swap the served lookup when a newer artifact
	// lands for the served key. The callback must not block for long — it
	// runs before the job is finalized.
	OnArtifactCommit func(name, path string)
	// Logger receives structured job-lifecycle records, each stamped with
	// the job correlation ID; it is also threaded into every run's
	// Config.Log so pipeline records carry the same ID. Nil logs nothing.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueCap < 1 {
		o.QueueCap = 16
	}
	if o.CacheCap == 0 {
		o.CacheCap = 64
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.ArtifactBudgetBytes == 0 {
		o.ArtifactBudgetBytes = 4 << 30
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Transient == nil {
		o.Transient = IsTransient
	}
	if o.Runner == nil {
		o.Runner = core.RunContext
	}
	return o
}

// Job is one submitted partition run. All mutable state is guarded by the
// owning Manager's mutex; read a consistent view with Status.
type Job struct {
	// ID is the manager-assigned identifier ("j1", "j2", …).
	ID string
	// Key is the content-addressed cache key: indexDigest + ":" + configHash.
	Key string
	// Config is the run's configuration with Obs set to this job's private
	// collector.
	Config core.Config

	obs *obsv.Collector
	// done closes when the job reaches a terminal state.
	done chan struct{}

	state           State
	cacheHit        bool
	artifactReload  bool   // satisfied by reloading a stored artifact
	artifact        string // path of this job's artifact in the store
	submitted       time.Time
	started         time.Time
	finished        time.Time
	attempts        int
	err             error
	result          *core.Result
	cancelRequested bool
	cancel          context.CancelFunc
}

// Status is a point-in-time snapshot of a job, JSON-shaped for the API.
type Status struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// CacheHit marks a job satisfied from the result cache without running.
	CacheHit bool `json:"cache_hit"`
	// ArtifactReload marks a job satisfied by reloading a stored partition
	// artifact (the pipeline's compute steps were skipped).
	ArtifactReload bool `json:"artifact_reload,omitempty"`
	// Artifact is set when the job's partition artifact is retrievable from
	// the daemon's store.
	Artifact  bool      `json:"artifact,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Attempts counts runner invocations (> 1 after transient retries).
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// Counters is the job's live obsv counter snapshot — the per-step
	// progress signal (bytes/chunks/k-mers so far, tuples exchanged, …).
	Counters []obsv.CounterValue `json:"counters,omitempty"`
}

// Done reports completion; the returned channel closes when the job reaches
// a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Manager owns the queue, the workers, the job table and the result cache.
type Manager struct {
	opts Options

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // IDs in submission order, for listing
	inflight map[string]*Job // live (pending/running) job per cache key
	cache    *resultCache
	// artifacts is the on-disk partition artifact store (nil when
	// Options.ArtifactDir is empty). It has its own lock — never taken
	// under mu.
	artifacts *artifactStore
	seq       int
	draining  bool
	hits      uint64 // cache + coalesced-submit hits

	// pool recycles the pipeline's two per-task tuple buffers across jobs:
	// back-to-back daemon runs reuse multi-GB slices instead of
	// reallocating them. Buffers only return to the pool after a run has
	// fully joined its ranks, so jobs running concurrently on the worker
	// pool never share a live buffer.
	pool *core.TuplePool

	// Jobs-layer latency histograms (queue wait, run time, end-to-end) and
	// the per-step histograms merged out of each finished job's collector —
	// the /metrics p50/p99 substrate. Histograms are internally atomic;
	// stepHists' map shape is guarded by hmu.
	queueHist, runHist, totalHist *obsv.Histogram
	hmu                           sync.Mutex
	stepHists                     map[string]*obsv.Histogram
	// lastDrift is the most recent completed job's model reconciliation
	// (guarded by mu); tracesDumped counts automatic flight-recorder dumps.
	lastDrift    *model.DriftReport
	tracesDumped uint64

	queue chan *Job
	wg    sync.WaitGroup
	// stopCtx cancels every running job on Stop (the hard counterpart to
	// the graceful Drain).
	stopCtx  context.Context
	stopAll  context.CancelFunc
	stopOnce sync.Once
}

// NewManager starts a manager with its worker pool.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:      opts,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		cache:     newResultCache(opts.CacheCap, opts.CacheBytes),
		pool:      core.NewTuplePool(),
		queue:     make(chan *Job, opts.QueueCap),
		queueHist: obsv.NewHistogram(),
		runHist:   obsv.NewHistogram(),
		totalHist: obsv.NewHistogram(),
		stepHists: make(map[string]*obsv.Histogram),
	}
	if opts.ArtifactDir != "" {
		st, err := newArtifactStore(opts.ArtifactDir, opts.ArtifactBudgetBytes)
		if err != nil {
			if lg := opts.Logger; lg != nil {
				lg.Error("artifact store disabled", "dir", opts.ArtifactDir, "err", err)
			}
		} else {
			m.artifacts = st
		}
	}
	m.stopCtx, m.stopAll = context.WithCancel(context.Background())
	m.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go m.worker()
	}
	return m
}

// CacheKey returns the content-addressed key of a configuration:
// the index digest paired with the canonical config hash.
func CacheKey(cfg core.Config) string {
	return cfg.Index.Digest() + ":" + cfg.CanonicalHash()
}

// Submit validates cfg and admits it as a job. The three outcomes beyond
// plain admission:
//
//   - invalid config: error wrapping core.ErrInvalidConfig (HTTP 400);
//   - queue full: ErrQueueFull (HTTP 429), draining: ErrDraining (503);
//   - duplicate work: a submission whose key matches a pending/running job
//     returns that job (fresh=false, no second execution); a key with a
//     cached result returns a job born Done with CacheHit set.
func (m *Manager) Submit(cfg core.Config) (job *Job, fresh bool, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	key := CacheKey(cfg)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if live := m.inflight[key]; live != nil {
		m.hits++
		return live, false, nil
	}
	if res := m.cache.get(key); res != nil {
		m.hits++
		j := m.newJobLocked(key, cfg)
		j.state = Done
		j.cacheHit = true
		j.result = res
		j.finished = time.Now()
		close(j.done)
		return j, false, nil
	}
	j := m.newJobLocked(key, cfg)
	select {
	case m.queue <- j:
	default:
		// Admission control: undo the registration; the caller gets a 429.
		delete(m.jobs, j.ID)
		m.order = m.order[:len(m.order)-1]
		return nil, false, ErrQueueFull
	}
	m.inflight[key] = j
	return j, true, nil
}

// newJobLocked allocates and registers a pending job. Caller holds m.mu.
func (m *Manager) newJobLocked(key string, cfg core.Config) *Job {
	m.seq++
	// Every job gets a flight recorder: tracing is always on, bounded to
	// the most recent RingEvents spans, so a failing or slow job can be
	// dumped after the fact without having been asked about in advance.
	obs := obsv.NewRing(m.opts.RingEvents)
	if m.opts.RingEvents < 0 {
		obs = obsv.New()
	}
	j := &Job{
		ID:        fmt.Sprintf("j%d", m.seq),
		Key:       key,
		state:     Pending,
		submitted: time.Now(),
		obs:       obs,
		done:      make(chan struct{}),
	}
	cfg.Obs = j.obs
	j.Config = cfg
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	return j
}

// worker drains the queue until Drain closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through running → terminal, retrying transient
// failures.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	if j.cancelRequested || j.state != Pending {
		// Cancelled while queued; finalized by Cancel already.
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.stopCtx)
	defer cancel()
	j.cancel = cancel
	j.state = Running
	j.started = time.Now()
	cfg := j.Config
	// Thread the shared buffer pool through this run only (not the stored
	// Config): recycling is an executor concern, invisible to the job's
	// identity and cache key. The logger, drift calibration and the job
	// correlation ID on the context are executor concerns the same way.
	cfg.Pool = m.pool
	if cfg.Log == nil {
		cfg.Log = m.opts.Logger
	}
	if cfg.DriftCal == "" {
		cfg.DriftCal = m.opts.DriftCal
	}
	m.mu.Unlock()
	ctx = obsv.WithJobID(ctx, j.ID)
	if lg := m.opts.Logger; lg != nil {
		lg.InfoContext(ctx, "job started",
			"queue_wait", j.started.Sub(j.submitted), "key", j.Key)
	}

	// Spill scratch is an executor concern too (SpillDir is excluded from
	// the cache key): give a spilling job a private directory under the
	// manager's spill root and remove it on every exit path, so cancelled
	// and failed jobs cannot strand run files.
	if m.opts.SpillDir != "" && cfg.SpillBudgetBytes > 0 && cfg.SpillDir == "" {
		dir := filepath.Join(m.opts.SpillDir, "job-"+j.ID)
		if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
			cfg.SpillDir = dir
			defer os.RemoveAll(dir)
		}
	}

	// Artifact-store participation is an executor concern the same way
	// (absent from the cache key). A job with its own artifact settings is
	// left alone; otherwise a stored artifact for the same (index, filter)
	// key is reloaded instead of recomputed, and a miss emits one for later
	// jobs. Incremental (delta) jobs stage their merged artifact so it can
	// be fetched via the API and chained as a further delta's base.
	var artifactIn string // store path injected as the reload source
	var commitName string // store name the staged artifact commits under
	if st := m.artifacts; st != nil {
		switch {
		case cfg.ArtifactDelta && cfg.ArtifactOut == "":
			commitName = "i-" + j.ID + ".mpa"
			cfg.ArtifactOut = st.staging(j.ID)
		case !cfg.ArtifactDelta && cfg.ArtifactIn == "" && cfg.ArtifactOut == "":
			if p, ok := st.lookup(cfg); ok {
				artifactIn = p
				cfg.ArtifactIn = p
			} else {
				commitName = artifactKey(cfg)
				cfg.ArtifactOut = st.staging(j.ID)
			}
		}
		// No-op after a successful commit (the rename moved it away).
		defer os.Remove(st.staging(j.ID))
	}

	var res *core.Result
	var err error
	for attempt := 1; ; attempt++ {
		m.mu.Lock()
		j.attempts = attempt
		m.mu.Unlock()
		res, err = m.opts.Runner(ctx, cfg)
		if err != nil && artifactIn != "" && ctx.Err() == nil &&
			(errors.Is(err, artifact.ErrBadArtifact) || errors.Is(err, artifact.ErrMismatch)) {
			// The stored artifact turned out corrupt or mismatched: drop it
			// and fall back to a full recompute (emitting a replacement).
			if lg := m.opts.Logger; lg != nil {
				lg.WarnContext(ctx, "stored artifact unusable, recomputing",
					"path", artifactIn, "err", err)
			}
			m.artifacts.drop(artifactIn)
			cfg.ArtifactIn = ""
			artifactIn = ""
			commitName = artifactKey(cfg)
			cfg.ArtifactOut = m.artifacts.staging(j.ID)
			continue
		}
		if err == nil || ctx.Err() != nil || attempt > m.opts.Retries || !m.opts.Transient(err) {
			break
		}
	}

	// Commit the staged artifact before touching job state (the store has
	// its own lock; never nested under m.mu).
	var committed string
	if err == nil && commitName != "" {
		if p, cErr := m.artifacts.commit(cfg.ArtifactOut, commitName); cErr == nil {
			committed = p
			if cb := m.opts.OnArtifactCommit; cb != nil {
				cb(commitName, p)
			}
		} else if lg := m.opts.Logger; lg != nil {
			lg.WarnContext(ctx, "artifact commit failed", "err", cErr)
		}
	}

	m.mu.Lock()
	j.finished = time.Now()
	delete(m.inflight, j.Key)
	switch {
	case j.cancelRequested || (err != nil && ctx.Err() != nil):
		j.state = Cancelled
		if err == nil {
			err = context.Canceled
		}
		j.err = err
	case err != nil:
		j.state = Failed
		j.err = err
	default:
		j.state = Done
		j.result = res
		if artifactIn != "" {
			j.artifactReload = true
			j.artifact = artifactIn
		} else if committed != "" {
			j.artifact = committed
		}
		m.cache.put(j.Key, res)
		if res.Drift != nil {
			m.lastDrift = res.Drift
		}
	}
	state := j.state
	queued := j.started.Sub(j.submitted)
	ran := j.finished.Sub(j.started)
	total := j.finished.Sub(j.submitted)
	close(j.done)
	m.mu.Unlock()

	m.observeTerminal(j, cfg, state, res, err, queued, ran, total)
}

// Cancel requests cancellation of a job: a pending job is finalized
// immediately; a running job's context is cancelled, aborting blocked ranks
// through the pipeline's abort propagation. Terminal jobs are unaffected
// (no error — cancel is idempotent).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	switch j.state {
	case Pending:
		j.cancelRequested = true
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		delete(m.inflight, j.Key)
		close(j.done)
	case Running:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	return nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return j, nil
}

// Result returns a done job's pipeline result.
func (m *Manager) Result(id string) (*core.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	if j.state != Done {
		if j.err != nil {
			return nil, fmt.Errorf("%w: state %s: %v", ErrNotDone, j.state, j.err)
		}
		return nil, fmt.Errorf("%w: state %s", ErrNotDone, j.state)
	}
	return j.result, nil
}

// Status snapshots a job, including its live progress counters.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return Status{}, ErrNotFound
	}
	return m.statusOf(j, true), nil
}

// List snapshots every job in submission order, without the (potentially
// large) counter sets.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = m.statusOf(j, false)
	}
	return out
}

func (m *Manager) statusOf(j *Job, counters bool) Status {
	m.mu.Lock()
	s := Status{
		ID: j.ID, Key: j.Key, State: j.state, CacheHit: j.cacheHit,
		ArtifactReload: j.artifactReload, Artifact: j.artifact != "",
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Attempts: j.attempts,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	m.mu.Unlock()
	if counters {
		// The collector has its own lock; don't nest it under m.mu.
		s.Counters = j.obs.Counters()
	}
	return s
}

// Stats is the manager-level snapshot the /metrics endpoint renders.
type Stats struct {
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Workers       int           `json:"workers"`
	Jobs          map[State]int `json:"jobs"`
	CacheEntries  int           `json:"cache_entries"`
	CacheHits     uint64        `json:"cache_hits"`
	// CacheBytes is the estimated resident size of the cached results.
	CacheBytes int64 `json:"cache_bytes"`
	// Artifact-store figures (all zero when the store is disabled).
	ArtifactEntries int    `json:"artifact_entries,omitempty"`
	ArtifactBytes   int64  `json:"artifact_bytes,omitempty"`
	ArtifactHits    uint64 `json:"artifact_hits,omitempty"`
	ArtifactMisses  uint64 `json:"artifact_misses,omitempty"`
	// BufPoolHits/BufPoolMisses count tuple-buffer acquisitions served from
	// the cross-job pool versus freshly allocated.
	BufPoolHits   uint64 `json:"buf_pool_hits"`
	BufPoolMisses uint64 `json:"buf_pool_misses"`
	// TracesDumped counts automatic flight-recorder dumps (failure,
	// cancellation or SLO breach).
	TracesDumped uint64 `json:"traces_dumped"`
	Draining     bool   `json:"draining"`
}

// StatsSnapshot returns current queue, job-state, cache and artifact-store
// figures.
func (m *Manager) StatsSnapshot() Stats {
	// The store has its own lock; sample it outside m.mu.
	var aEntries int
	var aBytes int64
	var aHits, aMisses uint64
	if m.artifacts != nil {
		aEntries, aBytes, aHits, aMisses = m.artifacts.stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		QueueDepth:      len(m.queue),
		QueueCapacity:   m.opts.QueueCap,
		Workers:         m.opts.Workers,
		Jobs:            map[State]int{Pending: 0, Running: 0, Done: 0, Failed: 0, Cancelled: 0},
		CacheEntries:    m.cache.len(),
		CacheHits:       m.hits,
		CacheBytes:      m.cache.residentBytes(),
		ArtifactEntries: aEntries,
		ArtifactBytes:   aBytes,
		ArtifactHits:    aHits,
		ArtifactMisses:  aMisses,
		BufPoolHits:     m.pool.Hits(),
		BufPoolMisses:   m.pool.Misses(),
		TracesDumped:    m.tracesDumped,
		Draining:        m.draining,
	}
	for _, j := range m.jobs {
		s.Jobs[j.state]++
	}
	return s
}

// ArtifactPath returns the store path of a done job's partition artifact.
// ErrNotDone covers both a job that produced no artifact and one whose
// artifact the store has since evicted.
func (m *Manager) ArtifactPath(id string) (string, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return "", ErrNotFound
	}
	m.mu.Lock()
	state, path := j.state, j.artifact
	m.mu.Unlock()
	if state != Done || path == "" {
		return "", fmt.Errorf("%w: job has no stored artifact", ErrNotDone)
	}
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("%w: artifact was evicted from the store", ErrNotDone)
	}
	return path, nil
}

// Artifacts lists the artifact store's entries, newest first (nil when the
// store is disabled).
func (m *Manager) Artifacts() []ArtifactEntry {
	if m.artifacts == nil {
		return nil
	}
	return m.artifacts.list()
}

// ArtifactStoreEnabled reports whether the manager persists artifacts.
func (m *Manager) ArtifactStoreEnabled() bool { return m.artifacts != nil }

// Drain stops admission (Submit returns ErrDraining) and waits for every
// queued and running job to finish, or for ctx to expire — the graceful
// half of SIGTERM handling. On ctx expiry the remaining jobs keep running;
// call Stop to hard-cancel them.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue) // workers exit once the backlog is gone
	}
	m.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop hard-cancels every running job (their contexts are children of the
// manager's stop context) after marking the manager draining. It does not
// wait; follow with Drain for that.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	m.stopOnce.Do(m.stopAll)
}

// IsTransient is the default retry classifier: context cancellations and
// configuration errors never retry; errors that declare themselves
// transient (a Transient() bool method, as injected fault types do) or wrap
// ErrTransient do.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, core.ErrInvalidConfig) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// ErrTransient marks an error as retryable when wrapped
// (fmt.Errorf("...: %w", jobs.ErrTransient)).
var ErrTransient = errors.New("jobs: transient failure")

// SweepSpillDir removes orphaned spill scratch under dir, returning the
// paths it removed: the per-job "job-*" directories this package creates
// and the "metaprep-spill-*" run directories the pipeline creates beneath
// them. Orphans can only exist if a previous daemon process died mid-job
// (every live code path removes its own scratch), so the daemon calls this
// once at startup before accepting work — and logs each returned path,
// since deleting scratch silently is how shared filesystems get haunted. A
// missing dir is not an error. Files and directories with other names are
// left untouched — the spill root may be a shared scratch filesystem.
func SweepSpillDir(dir string) (removed []string, err error) {
	ents, readErr := os.ReadDir(dir)
	if readErr != nil {
		if os.IsNotExist(readErr) {
			return nil, nil
		}
		return nil, readErr
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() ||
			(!strings.HasPrefix(name, "job-") && !strings.HasPrefix(name, "metaprep-spill-")) {
			continue
		}
		path := filepath.Join(dir, name)
		if rmErr := os.RemoveAll(path); rmErr != nil {
			if err == nil {
				err = rmErr
			}
			continue
		}
		removed = append(removed, path)
	}
	return removed, err
}
