package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprep/internal/core"
	"metaprep/internal/index"
)

// testConfig returns a valid config over a synthetic in-memory index.
// Validate and CacheKey only read the options and index tables, so no
// dataset is needed to exercise the manager.
func testConfig() core.Config {
	idx := &index.Index{
		Opts:    index.Options{K: 27, M: 10, ChunkSize: 1 << 20},
		Files:   []string{"synthetic.fastq"},
		MerHist: []uint64{1, 2, 3},
		Reads:   10,
	}
	return core.Default(idx)
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, m *Manager, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDone blocks on the job's done channel with a timeout.
func waitDone(t *testing.T, j *Job, d time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %s did not finish within %v", j.ID, d)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	want := &core.Result{}
	var runs atomic.Int64
	m := NewManager(Options{Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		runs.Add(1)
		return want, nil
	}})
	defer m.Stop()

	j, fresh, err := m.Submit(testConfig())
	if err != nil || !fresh {
		t.Fatalf("Submit: job=%v fresh=%v err=%v", j, fresh, err)
	}
	waitDone(t, j, 5*time.Second)
	st, err := m.Status(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.CacheHit || st.Attempts != 1 {
		t.Fatalf("status after run: %+v", st)
	}
	res, err := m.Result(j.ID)
	if err != nil || res != want {
		t.Fatalf("Result: %v, %v", res, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("runner executed %d times", runs.Load())
	}
}

func TestSubmitRejectsInvalidConfig(t *testing.T) {
	m := NewManager(Options{Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		return &core.Result{}, nil
	}})
	defer m.Stop()
	cfg := testConfig()
	cfg.Tasks = 0
	if _, _, err := m.Submit(cfg); !errors.Is(err, core.ErrInvalidConfig) {
		t.Fatalf("Submit(invalid): err = %v, want ErrInvalidConfig", err)
	}
}

// TestConcurrentIdenticalSubmits is the single-execution-per-key guarantee
// under -race: many goroutines submit the same config while the runner is
// still executing; exactly one execution happens and everyone lands on the
// same job. After completion, resubmission is a cache hit.
func TestConcurrentIdenticalSubmits(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	m := NewManager(Options{Workers: 4, Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		runs.Add(1)
		<-release
		return &core.Result{}, nil
	}})
	defer m.Stop()

	const N = 24
	var wg sync.WaitGroup
	ids := make([]string, N)
	freshCount := atomic.Int64{}
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, fresh, err := m.Submit(testConfig())
			if err != nil {
				t.Error(err)
				return
			}
			if fresh {
				freshCount.Add(1)
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	if freshCount.Load() != 1 {
		t.Fatalf("%d fresh submissions, want 1", freshCount.Load())
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("submissions landed on different jobs: %v", ids)
		}
	}
	close(release)
	j, _ := m.Get(ids[0])
	waitDone(t, j, 5*time.Second)
	if runs.Load() != 1 {
		t.Fatalf("runner executed %d times for one key", runs.Load())
	}

	// The completed result now serves resubmissions from the cache.
	j2, fresh, err := m.Submit(testConfig())
	if err != nil || fresh {
		t.Fatalf("resubmit: fresh=%v err=%v", fresh, err)
	}
	if j2.ID == ids[0] {
		t.Fatalf("cache hit reused the original job object")
	}
	waitDone(t, j2, time.Second)
	st, _ := m.Status(j2.ID)
	if st.State != Done || !st.CacheHit {
		t.Fatalf("cache-hit status: %+v", st)
	}
	if runs.Load() != 1 {
		t.Fatalf("cache hit re-executed the runner")
	}
	if s := m.StatsSnapshot(); s.CacheHits < uint64(N) {
		t.Fatalf("StatsSnapshot.CacheHits = %d, want >= %d", s.CacheHits, N)
	}
}

// TestConcurrentDistinctSubmits checks distinct keys run independently,
// once each, under -race.
func TestConcurrentDistinctSubmits(t *testing.T) {
	var mu sync.Mutex
	runsPerKey := map[int]int{}
	m := NewManager(Options{Workers: 4, QueueCap: 64,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			mu.Lock()
			runsPerKey[cfg.SplitComponents]++
			mu.Unlock()
			return &core.Result{}, nil
		}})
	defer m.Stop()

	const N = 12
	var wg sync.WaitGroup
	jobs := make([]*Job, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := testConfig()
			cfg.SplitComponents = i + 1 // distinct cache keys
			j, fresh, err := m.Submit(cfg)
			if err != nil || !fresh {
				t.Errorf("submit %d: fresh=%v err=%v", i, fresh, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for _, j := range jobs {
		if j != nil {
			waitDone(t, j, 5*time.Second)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(runsPerKey) != N {
		t.Fatalf("%d distinct keys executed, want %d", len(runsPerKey), N)
	}
	for k, n := range runsPerKey {
		if n != 1 {
			t.Fatalf("key %d executed %d times", k, n)
		}
	}
}

// TestQueueFullAdmission checks the bounded queue rejects with ErrQueueFull
// once the single worker is busy and the queue is at capacity, and admits
// again after the backlog drains.
func TestQueueFullAdmission(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(Options{Workers: 1, QueueCap: 2,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			started <- fmt.Sprint(cfg.SplitComponents)
			<-release
			return &core.Result{}, nil
		}})
	defer m.Stop()

	submit := func(i int) (*Job, error) {
		cfg := testConfig()
		cfg.SplitComponents = i
		j, _, err := m.Submit(cfg)
		return j, err
	}

	// First job occupies the worker…
	first, err := submit(1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	// …two more fill the queue…
	if _, err := submit(2); err != nil {
		t.Fatal(err)
	}
	if _, err := submit(3); err != nil {
		t.Fatal(err)
	}
	// …and the next distinct submission is rejected.
	if _, err := submit(4); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond capacity: err = %v, want ErrQueueFull", err)
	}
	// A duplicate of queued work still coalesces rather than erroring.
	cfg := testConfig()
	cfg.SplitComponents = 2
	if _, fresh, err := m.Submit(cfg); err != nil || fresh {
		t.Fatalf("duplicate during full queue: fresh=%v err=%v", fresh, err)
	}

	close(release)
	waitDone(t, first, 5*time.Second)
	// Once the backlog drains, admission resumes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := submit(4); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelPendingJob(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	m := NewManager(Options{Workers: 1,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			runs.Add(1)
			<-release
			return &core.Result{}, nil
		}})
	defer m.Stop()

	blocker := testConfig()
	blocker.SplitComponents = 1
	bj, _, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, bj.ID, Running)

	queued := testConfig()
	queued.SplitComponents = 2
	qj, _, err := m.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(qj.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, qj, time.Second) // finalized immediately, not on dequeue
	st, _ := m.Status(qj.ID)
	if st.State != Cancelled {
		t.Fatalf("pending job after cancel: %+v", st)
	}
	// Cancel is idempotent, including on terminal jobs.
	if err := m.Cancel(qj.ID); err != nil {
		t.Fatal(err)
	}

	close(release)
	waitDone(t, bj, 5*time.Second)
	if runs.Load() != 1 {
		t.Fatalf("cancelled pending job was executed (%d runs)", runs.Load())
	}
	// A fresh submission of the cancelled key runs normally (no poisoning).
	qj2, fresh, err := m.Submit(queued)
	if err != nil || !fresh {
		t.Fatalf("resubmit after cancel: fresh=%v err=%v", fresh, err)
	}
	waitDone(t, qj2, 5*time.Second)
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Options{
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			<-ctx.Done() // a well-behaved pipeline returns ctx.Err() promptly
			return nil, ctx.Err()
		}})
	defer m.Stop()

	j, _, err := m.Submit(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Running)
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, time.Second) // the acceptance bound: cancel returns < 1s
	st, _ := m.Status(j.ID)
	if st.State != Cancelled {
		t.Fatalf("running job after cancel: %+v", st)
	}
	if _, err := m.Result(j.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("Result of cancelled job: err = %v, want ErrNotDone", err)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	m := NewManager(Options{Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		return &core.Result{}, nil
	}})
	defer m.Stop()
	if err := m.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown): err = %v, want ErrNotFound", err)
	}
	if _, err := m.Status("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status(unknown): err = %v, want ErrNotFound", err)
	}
}

// TestTransientRetry checks transient failures retry up to Retries and then
// succeed, while permanent failures fail on the first attempt.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(Options{Retries: 2,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			if calls.Add(1) < 3 {
				return nil, fmt.Errorf("flaky read: %w", ErrTransient)
			}
			return &core.Result{}, nil
		}})
	defer m.Stop()

	j, _, err := m.Submit(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 5*time.Second)
	st, _ := m.Status(j.ID)
	if st.State != Done || st.Attempts != 3 {
		t.Fatalf("after transient retries: %+v", st)
	}

	permanent := errors.New("corrupt index")
	var permCalls atomic.Int64
	m2 := NewManager(Options{Retries: 2,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			permCalls.Add(1)
			return nil, permanent
		}})
	defer m2.Stop()
	j2, _, err := m2.Submit(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2, 5*time.Second)
	st2, _ := m2.Status(j2.ID)
	if st2.State != Failed || st2.Attempts != 1 || permCalls.Load() != 1 {
		t.Fatalf("permanent failure retried: %+v (calls %d)", st2, permCalls.Load())
	}
}

// selfDescribingFault declares its own retryability via a Transient method,
// the way instrumented I/O fault types do.
type selfDescribingFault struct{ retryable bool }

func (f *selfDescribingFault) Error() string   { return "io stall" }
func (f *selfDescribingFault) Transient() bool { return f.retryable }

func TestIsTransientClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), false},
		{&core.ConfigError{Field: "Tasks", Reason: "0"}, false},
		{ErrTransient, true},
		{fmt.Errorf("pass 2: %w", ErrTransient), true},
		{&selfDescribingFault{retryable: true}, true},
		{fmt.Errorf("chunk 3: %w", &selfDescribingFault{retryable: true}), true},
		{&selfDescribingFault{retryable: false}, false},
		{errors.New("plain failure"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestCacheEviction checks the LRU bound: with capacity 1, an older result
// is evicted and its key re-executes on resubmission.
func TestCacheEviction(t *testing.T) {
	var runs atomic.Int64
	m := NewManager(Options{CacheCap: 1,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			runs.Add(1)
			return &core.Result{}, nil
		}})
	defer m.Stop()

	run := func(i int) {
		cfg := testConfig()
		cfg.SplitComponents = i
		j, _, err := m.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j, 5*time.Second)
	}
	run(1)
	run(2) // evicts key 1
	if s := m.StatsSnapshot(); s.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", s.CacheEntries)
	}
	run(1) // re-executes
	if runs.Load() != 3 {
		t.Fatalf("runner executed %d times, want 3 (eviction forces re-run)", runs.Load())
	}
}

// TestDrainGraceful checks Drain rejects new work, finishes queued work and
// returns; Stop hard-cancels instead.
func TestDrainGraceful(t *testing.T) {
	var runs atomic.Int64
	m := NewManager(Options{Workers: 2,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			runs.Add(1)
			time.Sleep(10 * time.Millisecond)
			return &core.Result{}, nil
		}})

	var jobsList []*Job
	for i := 1; i <= 4; i++ {
		cfg := testConfig()
		cfg.SplitComponents = i
		j, _, err := m.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, j := range jobsList {
		st, _ := m.Status(j.ID)
		if st.State != Done {
			t.Fatalf("job %s after drain: %+v", j.ID, st)
		}
	}
	if runs.Load() != 4 {
		t.Fatalf("drain lost work: %d runs, want 4", runs.Load())
	}
	if _, _, err := m.Submit(testConfig()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining: err = %v, want ErrDraining", err)
	}
	if !m.StatsSnapshot().Draining {
		t.Fatalf("StatsSnapshot.Draining = false after Drain")
	}
}

func TestStopCancelsRunning(t *testing.T) {
	m := NewManager(Options{
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	j, _, err := m.Submit(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Running)
	m.Stop()
	waitDone(t, j, time.Second)
	st, _ := m.Status(j.ID)
	if st.State != Cancelled {
		t.Fatalf("job after Stop: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain after Stop: %v", err)
	}
}

// TestBufferPoolThreadedThroughJobs checks every job's runner receives the
// manager's shared tuple-buffer pool (so back-to-back jobs reuse kmerIn and
// kmerOut), while the job's stored Config — and therefore its identity and
// cache key — stays pool-free, and that the pool's hit/miss figures surface
// in the stats snapshot.
func TestBufferPoolThreadedThroughJobs(t *testing.T) {
	var pools []*core.TuplePool
	var mu sync.Mutex
	m := NewManager(Options{Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		mu.Lock()
		pools = append(pools, cfg.Pool)
		mu.Unlock()
		return &core.Result{}, nil
	}})
	defer m.Stop()

	cfg1 := testConfig()
	j1, _, err := m.Submit(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1, 5*time.Second)
	cfg2 := testConfig()
	cfg2.Passes = 2 // distinct cache key: forces a second execution
	j2, _, err := m.Submit(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2, 5*time.Second)

	mu.Lock()
	defer mu.Unlock()
	if len(pools) != 2 {
		t.Fatalf("runner executed %d times, want 2", len(pools))
	}
	if pools[0] == nil || pools[0] != pools[1] {
		t.Fatalf("jobs did not share one pool: %p vs %p", pools[0], pools[1])
	}
	if j1.Config.Pool != nil || j2.Config.Pool != nil {
		t.Fatalf("pool leaked into the stored job Config")
	}
	s := m.StatsSnapshot()
	if s.BufPoolHits != 0 || s.BufPoolMisses != 0 {
		// The fake runner never acquires buffers; the figures must simply
		// be present and zero (core's pool tests cover real reuse).
		t.Fatalf("unexpected pool figures: hits=%d misses=%d", s.BufPoolHits, s.BufPoolMisses)
	}
}

// TestSpillDirPerJobLifecycle checks the executor-concern contract for spill
// scratch: a spilling job runs with a private job-<ID> directory under the
// manager's spill root, the stored Config stays clean, and the directory is
// gone once the job is terminal — for success, failure and cancellation.
func TestSpillDirPerJobLifecycle(t *testing.T) {
	root := t.TempDir()
	type seen struct {
		dir    string
		exists bool
	}
	outcomes := map[int]error{1: nil, 2: errors.New("pass 1: disk on fire")}
	var mu sync.Mutex
	dirs := map[int]seen{}
	block := make(chan struct{})
	m := NewManager(Options{Workers: 1, SpillDir: root,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			_, statErr := os.Stat(cfg.SpillDir)
			mu.Lock()
			dirs[cfg.SplitComponents] = seen{cfg.SpillDir, statErr == nil}
			mu.Unlock()
			if cfg.SplitComponents == 3 {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			<-block
			return &core.Result{}, outcomes[cfg.SplitComponents]
		}})
	defer m.Stop()

	submit := func(i int) *Job {
		cfg := testConfig()
		cfg.SplitComponents = i
		cfg.SpillBudgetBytes = 1 << 20
		j, _, err := m.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	done := submit(1)
	failed := submit(2)
	waitState(t, m, done.ID, Running)
	close(block)
	waitDone(t, done, 5*time.Second)
	waitDone(t, failed, 5*time.Second)

	cancelled := submit(3)
	waitState(t, m, cancelled.ID, Running)
	if err := m.Cancel(cancelled.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, cancelled, 5*time.Second)

	jobsByKey := map[int]*Job{1: done, 2: failed, 3: cancelled}
	mu.Lock()
	defer mu.Unlock()
	for key, j := range jobsByKey {
		s, ok := dirs[key]
		if !ok {
			t.Fatalf("job %d never ran", key)
		}
		want := filepath.Join(root, "job-"+j.ID)
		if s.dir != want {
			t.Errorf("job %d ran with SpillDir %q, want %q", key, s.dir, want)
		}
		if !s.exists {
			t.Errorf("job %d: spill dir did not exist while running", key)
		}
		if _, err := os.Stat(s.dir); !os.IsNotExist(err) {
			t.Errorf("job %d: spill dir survived terminal state: stat err = %v", key, err)
		}
		if j.Config.SpillDir != "" {
			t.Errorf("job %d: spill dir leaked into the stored Config: %q", key, j.Config.SpillDir)
		}
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill root not empty after all jobs terminal: %v", ents)
	}
}

// TestSpillDirRespectsExplicitConfig checks the manager never overrides a
// job-supplied SpillDir and injects nothing for non-spilling jobs.
func TestSpillDirRespectsExplicitConfig(t *testing.T) {
	root := t.TempDir()
	own := t.TempDir()
	var mu sync.Mutex
	got := map[int]string{}
	m := NewManager(Options{SpillDir: root,
		Runner: func(ctx context.Context, cfg core.Config) (*core.Result, error) {
			mu.Lock()
			got[cfg.SplitComponents] = cfg.SpillDir
			mu.Unlock()
			return &core.Result{}, nil
		}})
	defer m.Stop()

	explicit := testConfig()
	explicit.SplitComponents = 1
	explicit.SpillBudgetBytes = 1 << 20
	explicit.SpillDir = own
	j1, _, err := m.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	noSpill := testConfig()
	noSpill.SplitComponents = 2
	j2, _, err := m.Submit(noSpill)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1, 5*time.Second)
	waitDone(t, j2, 5*time.Second)

	mu.Lock()
	defer mu.Unlock()
	if got[1] != own {
		t.Errorf("explicit SpillDir overridden: got %q, want %q", got[1], own)
	}
	if got[2] != "" {
		t.Errorf("non-spilling job got a spill dir: %q", got[2])
	}
	if _, err := os.Stat(own); err != nil {
		t.Errorf("manager removed a directory it did not create: %v", err)
	}
}

// TestSweepSpillDir checks the startup sweep removes exactly the orphan
// shapes this package and the pipeline create, leaving foreign entries in a
// shared scratch directory alone.
func TestSweepSpillDir(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"job-j12", "job-j9", "metaprep-spill-8842"} {
		if err := os.MkdirAll(filepath.Join(root, d, "nested"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(root, "unrelated"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A plain file that happens to share the prefix must survive: the sweep
	// only ever removes directories.
	if err := os.WriteFile(filepath.Join(root, "job-notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepSpillDir(root)
	if err != nil {
		t.Fatalf("SweepSpillDir: %v", err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v, want 3 orphans", removed)
	}
	// The returned paths are the full paths removed — what the daemon logs,
	// so scratch deletion is never silent.
	for _, p := range removed {
		if filepath.Dir(p) != root {
			t.Errorf("removed path %q not under %q", p, root)
		}
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "job-notes.txt" || names[1] != "unrelated" {
		t.Fatalf("survivors = %v, want [job-notes.txt unrelated]", names)
	}

	// Sweeping a directory that does not exist is a no-op, not an error:
	// the daemon may start before its spill root is first used.
	if paths, err := SweepSpillDir(filepath.Join(root, "missing")); len(paths) != 0 || err != nil {
		t.Fatalf("SweepSpillDir(missing) = %v, %v", paths, err)
	}
}
